"""TurboAttention core — the paper's primary contribution.

* :mod:`repro.core.config` — :class:`TurboConfig` hyper-parameters
  (block sizes ``B_r``/``B_c``, buffer size ``n_b``, SAS threshold ``n_r``,
  KV bit-widths, head-wise mixed precision).
* :mod:`repro.core.headwise` — head-priority metric (Eq. 11/12) and the
  ablation baselines (entropy / min-max / variation / random).
* :mod:`repro.core.kvcache` — blockwise progressively-quantized KV cache.
* :mod:`repro.core.buffer` — enhanced decode buffer (§3.3): INT8 staging
  with a frozen universal scale and outlier clamping.
* :mod:`repro.core.prefill` — Algorithm 1 (quantized flash-attention
  prefill that emits the compressed cache).
* :mod:`repro.core.decode` — Algorithm 2 (single-token decode against the
  compressed cache + buffer).
* :mod:`repro.core.turbo` — :class:`TurboAttention`, the user-facing API.
"""

from repro.core.config import TurboConfig
from repro.core.headwise import (
    head_priority,
    select_two_bit_heads,
    HeadSelectionMethod,
)
from repro.core.kvcache import CacheBlock, QuantizedKVCache
from repro.core.buffer import DecodeBuffer
from repro.core.prefill import turbo_prefill
from repro.core.decode import turbo_decode_step, turbo_decode_step_split_k
from repro.core.turbo import TurboAttention, TurboKVState
from repro.core.serialization import (
    SalvageResult,
    load_state,
    salvage_state,
    save_state,
    state_from_arrays,
    state_to_arrays,
)

__all__ = [
    "TurboConfig",
    "head_priority",
    "select_two_bit_heads",
    "HeadSelectionMethod",
    "CacheBlock",
    "QuantizedKVCache",
    "DecodeBuffer",
    "turbo_prefill",
    "turbo_decode_step",
    "turbo_decode_step_split_k",
    "TurboAttention",
    "TurboKVState",
    "save_state",
    "load_state",
    "state_to_arrays",
    "state_from_arrays",
    "salvage_state",
    "SalvageResult",
]

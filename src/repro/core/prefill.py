"""TurboAttention prefill kernel (paper Algorithm 1).

The flash-attention tiling loop with three changes:

1. Q/K/V tiles are quantized to symmetric INT8 (scale ``max|x|/119`` per
   (head, tile)) and both MatMuls run as integer GEMMs (Eq. 6).
2. The exponential — both the probability tile and the running-max
   correction factor — is SAS instead of FP32 ``exp``.
3. After a key/value tile is consumed it is progressively compressed
   (INT8 -> INT4/2, channel-wise, integer scales) and written to the
   quantized KV cache; the ragged tail that doesn't fill a block goes to
   the decode buffer instead, already in INT8 under the universal scale.

Grouped-query attention is supported: ``q`` may carry ``G`` query heads per
KV head; the kernel broadcasts K/V across the group while the cache stores
only the KV heads.

Numerics note: integer products are computed with int32 accumulation via
:func:`repro.quant.integer_gemm.int_matmul` and then scaled in float64.
Because every scale here is a per-(head, tile) *scalar*, this is bit-exact
to an implementation that keeps the accumulator in integers until the final
scaling, i.e. exactly what the Triton kernel in the paper executes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.attention.masks import causal_mask_block
from repro.core.buffer import DecodeBuffer
from repro.core.config import TurboConfig
from repro.core.kvcache import QuantizedKVCache
from repro.fp.formats import fp16_matmul
from repro.guard.numerics import check_finite_tile, check_scale, guarded_int_matmul
from repro.guard.report import GuardConfig, GuardReport
from repro.quant.integer_gemm import int_matmul
from repro.sas.softmax import shared_sas

__all__ = ["PrefillResult", "turbo_prefill", "quantize_tile"]


@dataclass
class PrefillResult:
    """Output of the prefill kernel.

    Attributes
    ----------
    output:
        Attention output, shape ``(q_heads, n, head_dim)``.
    lse:
        Row-wise log-sum-exp, shape ``(q_heads, n)``.
    cache:
        The progressive KV cache holding all full blocks.
    buffer:
        Decode buffer holding the ragged tail tokens (may be empty).
    head_bits:
        Per-KV-head storage bit-widths used.
    report:
        Guard counters for this prefill (``None`` when no guard ran).
    """

    output: np.ndarray
    lse: np.ndarray
    cache: QuantizedKVCache
    buffer: DecodeBuffer
    head_bits: np.ndarray
    report: Optional[GuardReport] = None


def quantize_tile(
    x: np.ndarray, max_code: int, scale: Optional[np.ndarray] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Symmetric INT8 quantization with one scalar scale per leading index.

    Statistics reduce over the last two axes (tokens x channels of a tile),
    matching Algorithm 1's ``s = max(abs(X)) / 119`` per tile.
    """
    x = np.asarray(x, dtype=np.float64)
    if scale is None:
        absmax = np.abs(x).max(axis=(-2, -1), keepdims=True)
        scale = np.maximum(absmax, 1e-12) / float(max_code)
    codes = np.clip(np.rint(x / scale), -max_code, max_code).astype(np.int8)
    return codes, scale


def _exp_fn(config: TurboConfig) -> Callable[[np.ndarray], np.ndarray]:
    if config.use_sas:
        return shared_sas(config.sas)
    return lambda x: np.where(np.isfinite(x), np.exp(np.minimum(x, 0.0)), 0.0)


def turbo_prefill(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    config: TurboConfig,
    head_bits: np.ndarray,
    causal: bool = True,
    scale: Optional[float] = None,
    guard: Optional[GuardConfig] = None,
    report: Optional[GuardReport] = None,
) -> PrefillResult:
    """Run Algorithm 1 over a full prompt.

    Parameters
    ----------
    q:
        Queries, shape ``(q_heads, n, head_dim)``.
    k, v:
        Keys/values, shape ``(kv_heads, n, head_dim)`` with
        ``q_heads % kv_heads == 0``.
    config:
        Kernel hyper-parameters.
    head_bits:
        Per-KV-head storage widths (from
        :func:`repro.core.headwise.assign_head_bits` or uniform).
    causal:
        Apply the causal mask (always true for LLM prefill; off for tests).
    scale:
        Score scale, default ``1/sqrt(head_dim)``.
    guard:
        Optional numerics guard.  Every Q/K/V tile is checked for NaN/Inf
        before quantization and every scale for degeneracy; under the
        ``fallback`` policy an offending tile's MatMuls rerun on the FP16
        reference path (the sanitized floats) instead of the integer path,
        and the event is recorded.  Integer GEMMs get the recoverable
        accumulator-headroom guard.
    report:
        Counter sink; created automatically when ``guard`` is given.
    """
    q = np.asarray(q, dtype=np.float64)
    k = np.asarray(k, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    hq, n, d = q.shape
    hkv, nk, _ = k.shape
    if hq % hkv != 0:
        raise ValueError(f"q_heads {hq} not a multiple of kv_heads {hkv}")
    g = hq // hkv
    if scale is None:
        scale = 1.0 / np.sqrt(d)
    offset = nk - n
    exp = _exp_fn(config)
    mc = config.int8_max_code
    if guard is not None and report is None:
        report = GuardReport()

    qg = q.reshape(hkv, g, n, d)
    bq, bk = config.block_q, config.block_k

    # --- Pass 0: quantize K/V tiles once; codes serve compute AND storage.
    # Under a guard each float tile is screened first (a single NaN would
    # otherwise poison the tile's absmax and hence every code in it); the
    # sanitized floats are kept for the FP16 fallback path and the tail.
    # Unguarded, all full tiles quantize in ONE batched call — the tile
    # statistics reduce over the trailing (tokens, channels) axes, so a
    # stacked leading tile axis yields bit-identical scales and codes.
    k_tiles: List[Tuple[np.ndarray, np.ndarray]] = []
    v_tiles: List[Tuple[np.ndarray, np.ndarray]] = []
    f_tiles: List[Tuple[np.ndarray, np.ndarray]] = []
    bad_kv: set = set()
    bounds = [(s, min(s + bk, nk)) for s in range(0, nk, bk)]
    if guard is None:
        n_full = nk // bk
        if n_full:
            k_stack = (
                k[:, : n_full * bk, :].reshape(hkv, n_full, bk, d).transpose(1, 0, 2, 3)
            )
            v_stack = (
                v[:, : n_full * bk, :].reshape(hkv, n_full, bk, d).transpose(1, 0, 2, 3)
            )
            kc_all, ksc_all = quantize_tile(k_stack, mc)
            vc_all, vsc_all = quantize_tile(v_stack, mc)
            k_tiles = [(kc_all[j], ksc_all[j]) for j in range(n_full)]
            v_tiles = [(vc_all[j], vsc_all[j]) for j in range(n_full)]
        if n_full * bk < nk:
            k_tiles.append(quantize_tile(k[:, n_full * bk :, :], mc))
            v_tiles.append(quantize_tile(v[:, n_full * bk :, :], mc))
        f_tiles = [(k[:, ks:ke, :], v[:, ks:ke, :]) for ks, ke in bounds]
    else:
        for j, (ks, ke) in enumerate(bounds):
            kt = k[:, ks:ke, :]
            vt = v[:, ks:ke, :]
            kt, fb_k = check_finite_tile(kt, f"prefill k tile {j}", guard, report)
            vt, fb_v = check_finite_tile(vt, f"prefill v tile {j}", guard, report)
            if fb_k or fb_v:
                bad_kv.add(j)
                report.fallback_tiles += 1
            kc, ksc = quantize_tile(kt, mc)
            vc, vsc = quantize_tile(vt, mc)
            ksc = check_scale(ksc, f"prefill k scale tile {j}", guard, report)
            vsc = check_scale(vsc, f"prefill v scale tile {j}", guard, report)
            k_tiles.append((kc, ksc))
            v_tiles.append((vc, vsc))
            f_tiles.append((kt, vt))

    # --- Storage: full blocks go to the cache; the ragged tail to the buffer.
    cache = QuantizedKVCache(hkv, d, head_bits=head_bits, block_size=bk)
    k_all = np.concatenate([t[0] for t in f_tiles], axis=-2) if guard is not None else k
    v_all = np.concatenate([t[1] for t in f_tiles], axis=-2) if guard is not None else v
    k_univ = np.maximum(np.abs(k_all).max(axis=(-2, -1), keepdims=True), 1e-12) / float(mc)
    v_univ = np.maximum(np.abs(v_all).max(axis=(-2, -1), keepdims=True), 1e-12) / float(mc)
    buffer = DecodeBuffer(
        hkv, d, capacity=config.buffer_size,
        k_scale=k_univ, v_scale=v_univ, clamp_code=config.clamp_code,
    )
    for j, (ks, ke) in enumerate(bounds):
        if ke - ks == bk:
            cache.append_block(
                k_tiles[j][0], v_tiles[j][0],
                k_tiles[j][1].reshape(hkv, 1, 1), v_tiles[j][1].reshape(hkv, 1, 1),
            )
        else:
            buffer.extend(f_tiles[j][0], f_tiles[j][1])

    def _imatmul(a, b, where):
        if guard is not None:
            return guarded_int_matmul(a, b, where, guard, report)
        return int_matmul(a, b)

    # --- Compute: tiled online-softmax attention on the INT8 codes.
    # Unguarded integer prefill takes the flattened path: per query tile,
    # ONE integer GEMM against the concatenated key codes, one SAS/exp
    # evaluation over the whole score row, one batched P quantization,
    # and stacked PV GEMMs — bit-identical to the tile loop below (same
    # argument as repro.core.decode._attend_spans_batched, with the
    # l/acc online-softmax rescale fused into in-place ufunc passes).
    if (
        guard is None
        and config.quantize_matmuls
        and mc * mc * max(d, bk) <= np.iinfo(np.int32).max
    ):
        return _prefill_fast(
            qg, k_tiles, v_tiles, bounds, config, exp, scale, causal, offset,
            cache, buffer, head_bits, hq, hkv, g, n, d,
        )
    out = np.zeros((hkv, g, n, d), dtype=np.float64)
    lse = np.zeros((hkv, g, n), dtype=np.float64)
    for qs in range(0, n, bq):
        qe = min(qs + bq, n)
        q_tile = qg[:, :, qs:qe, :]
        bad_q = False
        if guard is not None:
            q_tile, bad_q = check_finite_tile(
                q_tile, f"prefill q tile {qs // bq}", guard, report
            )
            if bad_q:
                report.fallback_tiles += 1
        qc, qsc = quantize_tile(q_tile, mc)  # scale shape (hkv, g, 1, 1)
        m = np.full((hkv, g, qe - qs), -np.inf)
        l = np.zeros((hkv, g, qe - qs))
        acc = np.zeros((hkv, g, qe - qs, d))
        for j, (ks, ke) in enumerate(bounds):
            if causal and ks > qe - 1 + offset:
                break
            kc, ksc = k_tiles[j]
            vc, vsc = v_tiles[j]
            # A tile flagged by the guard reruns on the FP16 reference path
            # (its sanitized floats) instead of the integer path.
            use_int = config.quantize_matmuls and not (bad_q or j in bad_kv)
            if use_int:
                s_tile = (
                    qsc
                    * ksc[:, None, :, :]
                    * _imatmul(
                        qc, np.swapaxes(kc, -1, -2)[:, None, :, :],
                        f"prefill qk q{qs // bq} k{j}",
                    )
                ) * scale
            else:
                s_tile = fp16_matmul(
                    q_tile, np.swapaxes(f_tiles[j][0], -1, -2)[:, None, :, :]
                ) * scale
            if causal:
                s_tile = s_tile + causal_mask_block(qs, qe - qs, ks, ke - ks, offset)
            m_new = np.maximum(m, s_tile.max(axis=-1))
            with np.errstate(invalid="ignore"):
                corr = exp(m - m_new)
            corr = np.where(np.isfinite(m), corr, 0.0)
            p = exp(s_tile - m_new[..., None])
            l = corr * l + p.sum(axis=-1)
            if use_int:
                pc, psc = quantize_tile(p, mc)
                pv = psc * vsc[:, None, :, :] * _imatmul(
                    pc, vc[:, None, :, :], f"prefill pv q{qs // bq} k{j}"
                )
            else:
                pv = fp16_matmul(
                    p.astype(np.float16).astype(np.float64),
                    f_tiles[j][1][:, None, :, :],
                )
            acc = corr[..., None] * acc + pv
            m = m_new
        safe_l = np.where(l > 0, l, 1.0)
        out[:, :, qs:qe, :] = acc / safe_l[..., None]
        lse[:, :, qs:qe] = np.where(l > 0, m + np.log(safe_l), -np.inf)

    return PrefillResult(
        output=out.reshape(hq, n, d),
        lse=lse.reshape(hq, n),
        cache=cache,
        buffer=buffer,
        head_bits=np.asarray(head_bits, dtype=np.int32),
        report=report,
    )


def _prefill_fast(
    qg: np.ndarray,
    k_tiles: List[Tuple[np.ndarray, np.ndarray]],
    v_tiles: List[Tuple[np.ndarray, np.ndarray]],
    bounds: List[Tuple[int, int]],
    config: TurboConfig,
    exp: Callable[[np.ndarray], np.ndarray],
    scale: float,
    causal: bool,
    offset: int,
    cache: QuantizedKVCache,
    buffer: DecodeBuffer,
    head_bits: np.ndarray,
    hq: int,
    hkv: int,
    g: int,
    n: int,
    d: int,
) -> PrefillResult:
    """Flattened integer prefill: whole-row GEMMs with the online-softmax
    recursion folded over precomputed per-tile segments.

    Bit-exact to the tile loop in :func:`turbo_prefill`: integer GEMM
    columns are independent, the mask/exponential/quantizer are
    element-wise, segmented ``max`` is exact in any order, and the
    ``l``/``acc`` rescales run the identical multiply-then-add per tile
    (in place, which changes allocation, not floats).
    """
    mc = config.int8_max_code
    bq, bk = config.block_q, config.block_k
    n_tiles = len(bounds)
    lens_all = np.array([ke - ks for ks, ke in bounds], dtype=np.int64)
    tile_starts = np.array([ks for ks, _ke in bounds], dtype=np.int64)
    kT_all = np.swapaxes(
        np.concatenate([t[0] for t in k_tiles], axis=-2), -1, -2
    )  # (hkv, d, nk)
    k_scale_stack = np.stack([t[1] for t in k_tiles], axis=-1).reshape(
        hkv, 1, 1, n_tiles
    )
    n_full_all = n_tiles - (1 if lens_all[-1] != bk else 0)
    vf_full = (
        np.stack([v_tiles[j][0] for j in range(n_full_all)], axis=1).astype(np.float64)
        if n_full_all
        else None
    )  # (hkv, n_full, bk, d)
    vf_tail = (
        v_tiles[-1][0].astype(np.float64) if n_full_all < n_tiles else None
    )  # (hkv, tail, d)

    out = np.zeros((hkv, g, n, d), dtype=np.float64)
    lse = np.zeros((hkv, g, n), dtype=np.float64)
    for qs in range(0, n, bq):
        qe = min(qs + bq, n)
        nq = qe - qs
        if causal:
            j_lim = int(np.searchsorted(tile_starts, qe - 1 + offset, side="right"))
        else:
            j_lim = n_tiles
        if j_lim == 0:
            lse[:, :, qs:qe] = -np.inf
            continue
        lens = lens_all[:j_lim]
        kmax_e = bounds[j_lim - 1][1]
        n_full = min(j_lim, n_full_all)
        full_e = n_full * bk

        qc, qsc = quantize_tile(qg[:, :, qs:qe, :], mc)
        gemm = int_matmul(qc, kT_all[:, None, :, :kmax_e])
        s_row = (np.repeat(qsc * k_scale_stack[..., :j_lim], lens, axis=-1) * gemm) * scale
        if causal:
            s_row = s_row + causal_mask_block(qs, nq, 0, kmax_e, offset)

        smax = s_row[..., :full_e].reshape(hkv, g, nq, n_full, bk).max(axis=-1)
        if full_e < kmax_e:
            smax = np.concatenate(
                [smax, s_row[..., full_e:].max(axis=-1, keepdims=True)], axis=-1
            )
        m_new = np.maximum.accumulate(smax, axis=-1)  # (hkv, g, nq, j_lim)
        m_prev = np.concatenate(
            [np.full((hkv, g, nq, 1), -np.inf), m_new[..., :-1]], axis=-1
        )
        with np.errstate(invalid="ignore"):
            corr_all = exp(m_prev - m_new)
        corr_all = np.where(np.isfinite(m_prev), corr_all, 0.0)
        p_row = exp(s_row - np.repeat(m_new, lens, axis=-1))

        abs_p = np.abs(p_row)
        p_absmax = abs_p[..., :full_e].reshape(hkv, g, nq, n_full, bk).max(axis=-1).max(axis=2)
        if full_e < kmax_e:
            p_absmax = np.concatenate(
                [p_absmax, abs_p[..., full_e:].max(axis=(-2, -1))[..., None]], axis=-1
            )
        p_scale = np.maximum(p_absmax, 1e-12) / float(mc)  # (hkv, g, j_lim)
        pc = np.clip(
            np.rint(p_row / np.repeat(p_scale[:, :, None, :], lens, axis=-1)), -mc, mc
        ).astype(np.int8)

        # Stacked PV GEMMs: exact-integer float64 BLAS (headroom certified
        # by the caller's mc*mc*max(d, bk) gate).
        pcf = pc.astype(np.float64)
        if n_full:
            pv_full = (
                pcf[..., :full_e].reshape(hkv, g, nq, n_full, bk).transpose(0, 1, 3, 2, 4)
                @ vf_full[:, None, :n_full]
            )  # (hkv, g, n_full, nq, d)
        if full_e < kmax_e:
            pv_tail = pcf[..., full_e:] @ vf_tail[:, None, :, :]  # (hkv, g, nq, d)

        l = np.zeros((hkv, g, nq))
        acc = np.zeros((hkv, g, nq, d))
        pos = 0
        for j in range(j_lim):
            length = int(lens[j])
            corr = corr_all[..., j]
            np.multiply(l, corr, out=l)
            np.add(l, p_row[..., pos : pos + length].sum(axis=-1), out=l)
            gemm_pv = pv_full[:, :, j] if j < n_full else pv_tail
            pv = (
                p_scale[..., j][..., None, None] * v_tiles[j][1][:, None, :, :]
            ) * gemm_pv
            np.multiply(acc, corr[..., None], out=acc)
            np.add(acc, pv, out=acc)
            pos += length
        safe_l = np.where(l > 0, l, 1.0)
        out[:, :, qs:qe, :] = acc / safe_l[..., None]
        lse[:, :, qs:qe] = np.where(l > 0, m_new[..., -1] + np.log(safe_l), -np.inf)

    return PrefillResult(
        output=out.reshape(hq, n, d),
        lse=lse.reshape(hq, n),
        cache=cache,
        buffer=buffer,
        head_bits=np.asarray(head_bits, dtype=np.int32),
        report=None,
    )

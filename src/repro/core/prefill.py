"""TurboAttention prefill kernel (paper Algorithm 1).

The flash-attention tiling loop with three changes:

1. Q/K/V tiles are quantized to symmetric INT8 (scale ``max|x|/119`` per
   (head, tile)) and both MatMuls run as integer GEMMs (Eq. 6).
2. The exponential — both the probability tile and the running-max
   correction factor — is SAS instead of FP32 ``exp``.
3. After a key/value tile is consumed it is progressively compressed
   (INT8 -> INT4/2, channel-wise, integer scales) and written to the
   quantized KV cache; the ragged tail that doesn't fill a block goes to
   the decode buffer instead, already in INT8 under the universal scale.

Grouped-query attention is supported: ``q`` may carry ``G`` query heads per
KV head; the kernel broadcasts K/V across the group while the cache stores
only the KV heads.

Numerics note: integer products are computed with int32 accumulation via
:func:`repro.quant.integer_gemm.int_matmul` and then scaled in float64.
Because every scale here is a per-(head, tile) *scalar*, this is bit-exact
to an implementation that keeps the accumulator in integers until the final
scaling, i.e. exactly what the Triton kernel in the paper executes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.attention.masks import causal_mask_block
from repro.core.buffer import DecodeBuffer
from repro.core.config import TurboConfig
from repro.core.kvcache import QuantizedKVCache
from repro.fp.formats import fp16_matmul
from repro.quant.integer_gemm import int_matmul
from repro.sas.softmax import SAS

__all__ = ["PrefillResult", "turbo_prefill", "quantize_tile"]


@dataclass
class PrefillResult:
    """Output of the prefill kernel.

    Attributes
    ----------
    output:
        Attention output, shape ``(q_heads, n, head_dim)``.
    lse:
        Row-wise log-sum-exp, shape ``(q_heads, n)``.
    cache:
        The progressive KV cache holding all full blocks.
    buffer:
        Decode buffer holding the ragged tail tokens (may be empty).
    head_bits:
        Per-KV-head storage bit-widths used.
    """

    output: np.ndarray
    lse: np.ndarray
    cache: QuantizedKVCache
    buffer: DecodeBuffer
    head_bits: np.ndarray


def quantize_tile(
    x: np.ndarray, max_code: int, scale: Optional[np.ndarray] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Symmetric INT8 quantization with one scalar scale per leading index.

    Statistics reduce over the last two axes (tokens x channels of a tile),
    matching Algorithm 1's ``s = max(abs(X)) / 119`` per tile.
    """
    x = np.asarray(x, dtype=np.float64)
    if scale is None:
        absmax = np.abs(x).max(axis=(-2, -1), keepdims=True)
        scale = np.maximum(absmax, 1e-12) / float(max_code)
    codes = np.clip(np.rint(x / scale), -max_code, max_code).astype(np.int8)
    return codes, scale


def _exp_fn(config: TurboConfig) -> Callable[[np.ndarray], np.ndarray]:
    if config.use_sas:
        return SAS(config.sas)
    return lambda x: np.where(np.isfinite(x), np.exp(np.minimum(x, 0.0)), 0.0)


def turbo_prefill(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    config: TurboConfig,
    head_bits: np.ndarray,
    causal: bool = True,
    scale: Optional[float] = None,
) -> PrefillResult:
    """Run Algorithm 1 over a full prompt.

    Parameters
    ----------
    q:
        Queries, shape ``(q_heads, n, head_dim)``.
    k, v:
        Keys/values, shape ``(kv_heads, n, head_dim)`` with
        ``q_heads % kv_heads == 0``.
    config:
        Kernel hyper-parameters.
    head_bits:
        Per-KV-head storage widths (from
        :func:`repro.core.headwise.assign_head_bits` or uniform).
    causal:
        Apply the causal mask (always true for LLM prefill; off for tests).
    scale:
        Score scale, default ``1/sqrt(head_dim)``.
    """
    q = np.asarray(q, dtype=np.float64)
    k = np.asarray(k, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    hq, n, d = q.shape
    hkv, nk, _ = k.shape
    if hq % hkv != 0:
        raise ValueError(f"q_heads {hq} not a multiple of kv_heads {hkv}")
    g = hq // hkv
    if scale is None:
        scale = 1.0 / np.sqrt(d)
    offset = nk - n
    exp = _exp_fn(config)
    mc = config.int8_max_code

    qg = q.reshape(hkv, g, n, d)
    bq, bk = config.block_q, config.block_k

    # --- Pass 0: quantize K/V tiles once; codes serve compute AND storage.
    k_tiles: List[Tuple[np.ndarray, np.ndarray]] = []
    v_tiles: List[Tuple[np.ndarray, np.ndarray]] = []
    bounds = [(s, min(s + bk, nk)) for s in range(0, nk, bk)]
    for ks, ke in bounds:
        kc, ksc = quantize_tile(k[:, ks:ke, :], mc)
        vc, vsc = quantize_tile(v[:, ks:ke, :], mc)
        k_tiles.append((kc, ksc))
        v_tiles.append((vc, vsc))

    # --- Storage: full blocks go to the cache; the ragged tail to the buffer.
    cache = QuantizedKVCache(hkv, d, head_bits=head_bits, block_size=bk)
    k_univ = np.maximum(np.abs(k).max(axis=(-2, -1), keepdims=True), 1e-12) / float(mc)
    v_univ = np.maximum(np.abs(v).max(axis=(-2, -1), keepdims=True), 1e-12) / float(mc)
    buffer = DecodeBuffer(
        hkv, d, capacity=config.buffer_size,
        k_scale=k_univ, v_scale=v_univ, clamp_code=config.clamp_code,
    )
    for j, (ks, ke) in enumerate(bounds):
        if ke - ks == bk:
            cache.append_block(
                k_tiles[j][0], v_tiles[j][0],
                k_tiles[j][1].reshape(hkv, 1, 1), v_tiles[j][1].reshape(hkv, 1, 1),
            )
        else:
            buffer.extend(k[:, ks:ke, :], v[:, ks:ke, :])

    # --- Compute: tiled online-softmax attention on the INT8 codes.
    out = np.zeros((hkv, g, n, d), dtype=np.float64)
    lse = np.zeros((hkv, g, n), dtype=np.float64)
    for qs in range(0, n, bq):
        qe = min(qs + bq, n)
        q_tile = qg[:, :, qs:qe, :]
        qc, qsc = quantize_tile(q_tile, mc)  # scale shape (hkv, g, 1, 1)
        m = np.full((hkv, g, qe - qs), -np.inf)
        l = np.zeros((hkv, g, qe - qs))
        acc = np.zeros((hkv, g, qe - qs, d))
        for j, (ks, ke) in enumerate(bounds):
            if causal and ks > qe - 1 + offset:
                break
            kc, ksc = k_tiles[j]
            vc, vsc = v_tiles[j]
            if config.quantize_matmuls:
                s_tile = (
                    qsc
                    * ksc[:, None, :, :]
                    * int_matmul(qc, np.swapaxes(kc, -1, -2)[:, None, :, :])
                ) * scale
            else:
                s_tile = fp16_matmul(
                    q_tile, np.swapaxes(k[:, ks:ke, :], -1, -2)[:, None, :, :]
                ) * scale
            if causal:
                s_tile = s_tile + causal_mask_block(qs, qe - qs, ks, ke - ks, offset)
            m_new = np.maximum(m, s_tile.max(axis=-1))
            with np.errstate(invalid="ignore"):
                corr = exp(m - m_new)
            corr = np.where(np.isfinite(m), corr, 0.0)
            p = exp(s_tile - m_new[..., None])
            l = corr * l + p.sum(axis=-1)
            if config.quantize_matmuls:
                pc, psc = quantize_tile(p, mc)
                pv = psc * vsc[:, None, :, :] * int_matmul(pc, vc[:, None, :, :])
            else:
                pv = fp16_matmul(
                    p.astype(np.float16).astype(np.float64), v[:, ks:ke, :][:, None, :, :]
                )
            acc = corr[..., None] * acc + pv
            m = m_new
        safe_l = np.where(l > 0, l, 1.0)
        out[:, :, qs:qe, :] = acc / safe_l[..., None]
        lse[:, :, qs:qe] = np.where(l > 0, m + np.log(safe_l), -np.inf)

    return PrefillResult(
        output=out.reshape(hq, n, d),
        lse=lse.reshape(hq, n),
        cache=cache,
        buffer=buffer,
        head_bits=np.asarray(head_bits, dtype=np.int32),
    )

"""Head-wise mixed precision: priority metric and selection (paper §3.2).

Each KV head ``h`` receives a priority score

    priority(h) = gap(h) * std(h)                              (Eq. 11)

where ``gap(h)`` is the max-minus-min over *all channels* of the head (the
overall value range) and ``std(h)`` is the standard deviation of the
per-channel gaps (how uneven the channel ranges are).  Heads are ranked and
the ``n_h`` lowest-priority heads are compressed to 2-bit, the rest to
4-bit (Eq. 12).

The ablation of Figure 7b compares this metric against simpler selectors —
entropy, raw min-max range, channel-gap variation — implemented here under
the same interface so the harness can sweep them.

Selection happens once, from prefill statistics — but assignments are no
longer final: the adaptive-precision escalator
(:mod:`repro.guard.escalation`) moves heads along a widths *ladder* at
decode-time flush boundaries when the stream drifts away from the prefill
distribution.  :func:`snap_to_ladder` and :func:`ladder_step` are the
assignment-mutation primitives it uses, kept here so every way a head's
width can change lives in one module.
"""

from __future__ import annotations

import enum
from typing import Optional, Sequence

import numpy as np

__all__ = [
    "HeadSelectionMethod",
    "channel_gaps",
    "head_priority",
    "head_entropy",
    "head_minmax",
    "head_variation",
    "head_scores",
    "select_two_bit_heads",
    "assign_head_bits",
    "snap_to_ladder",
    "ladder_step",
]


class HeadSelectionMethod(str, enum.Enum):
    """Selector used to pick the 2-bit heads."""

    PRIORITY = "priority"
    ENTROPY = "entropy"
    MINMAX = "minmax"
    VARIATION = "variation"
    RANDOM = "random"


def channel_gaps(x: np.ndarray) -> np.ndarray:
    """Per-(head, channel) max-minus-min gap.

    ``x`` has shape ``(heads, tokens, channels)``; the gap reduces over the
    token axis, returning ``(heads, channels)``.
    """
    x = np.asarray(x, dtype=np.float64)
    return x.max(axis=-2) - x.min(axis=-2)


def head_priority(x: np.ndarray) -> np.ndarray:
    """Eq. 11: ``gap(h) * std(h)`` per head; shape ``(heads,)``.

    ``gap(h)`` is the range over *everything* in the head; ``std(h)`` is the
    std-dev of the per-channel gaps.
    """
    x = np.asarray(x, dtype=np.float64)
    gap = x.max(axis=(-2, -1)) - x.min(axis=(-2, -1))
    std = channel_gaps(x).std(axis=-1)
    return gap * std


def head_entropy(x: np.ndarray, bins: int = 64) -> np.ndarray:
    """Ablation baseline: Shannon entropy of each head's value histogram."""
    x = np.asarray(x, dtype=np.float64)
    out = np.empty(x.shape[0])
    for h in range(x.shape[0]):
        hist, _ = np.histogram(x[h].ravel(), bins=bins)
        p = hist / max(hist.sum(), 1)
        p = p[p > 0]
        out[h] = float(-(p * np.log(p)).sum())
    return out


def head_minmax(x: np.ndarray) -> np.ndarray:
    """Ablation baseline: overall min-max range of the head."""
    x = np.asarray(x, dtype=np.float64)
    return x.max(axis=(-2, -1)) - x.min(axis=(-2, -1))


def head_variation(x: np.ndarray) -> np.ndarray:
    """Ablation baseline: variation (std) of the channel-wise gaps only."""
    return channel_gaps(x).std(axis=-1)


def head_scores(x: np.ndarray, method: HeadSelectionMethod) -> np.ndarray:
    """Dispatch a selector; higher score == more sensitive to quantization."""
    method = HeadSelectionMethod(method)
    if method is HeadSelectionMethod.PRIORITY:
        return head_priority(x)
    if method is HeadSelectionMethod.ENTROPY:
        return head_entropy(x)
    if method is HeadSelectionMethod.MINMAX:
        return head_minmax(x)
    if method is HeadSelectionMethod.VARIATION:
        return head_variation(x)
    raise ValueError(f"{method} requires an RNG; use select_two_bit_heads")


def select_two_bit_heads(
    k: np.ndarray,
    v: np.ndarray,
    n_two_bit: int,
    method: HeadSelectionMethod = HeadSelectionMethod.PRIORITY,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Pick the ``n_two_bit`` lowest-priority heads (Eq. 12).

    Scores from keys and values are combined by summation: a head matters if
    *either* tensor is quantization-sensitive.  Returns a boolean mask of
    shape ``(heads,)`` (True = compress this head to 2-bit).
    """
    n_heads = np.asarray(k).shape[0]
    if not 0 <= n_two_bit <= n_heads:
        raise ValueError(f"n_two_bit={n_two_bit} out of range for {n_heads} heads")
    method = HeadSelectionMethod(method)
    mask = np.zeros(n_heads, dtype=bool)
    if n_two_bit == 0:
        return mask
    if method is HeadSelectionMethod.RANDOM:
        rng = rng if rng is not None else np.random.default_rng(0)
        mask[rng.choice(n_heads, size=n_two_bit, replace=False)] = True
        return mask
    scores = head_scores(k, method) + head_scores(v, method)
    order = np.argsort(scores, kind="stable")  # ascending: lowest first
    mask[order[:n_two_bit]] = True
    return mask


def assign_head_bits(two_bit_mask: np.ndarray, high_bits: int = 4) -> np.ndarray:
    """Translate a 2-bit mask into a per-head bit-width array."""
    mask = np.asarray(two_bit_mask, dtype=bool)
    return np.where(mask, 2, high_bits).astype(np.int32)


def snap_to_ladder(head_bits: np.ndarray, ladder: Sequence[int]) -> np.ndarray:
    """Raise assignments below the ladder's bottom rung onto it.

    Widths *above* the bottom rung pass through unchanged even when they
    are not themselves rungs (e.g. a 3-bit head under a (2, 4, 8) ladder):
    such heads simply never move until their width coincides with a rung.
    """
    ladder = sorted(set(int(b) for b in ladder))
    if not ladder:
        raise ValueError("ladder must be non-empty")
    bits = np.asarray(head_bits, dtype=np.int32).copy()
    bits[bits < ladder[0]] = ladder[0]
    return bits


def ladder_step(
    head_bits: np.ndarray,
    ladder: Sequence[int],
    direction: int,
    mask: np.ndarray,
) -> np.ndarray:
    """Move masked heads one rung up (``+1``) or down (``-1``) the ladder.

    Heads whose current width is not a rung, or already at the ladder's
    end, stay put.  Returns a new array; the input is not modified.
    """
    if direction not in (-1, 1):
        raise ValueError("direction must be +1 or -1")
    rungs = sorted(set(int(b) for b in ladder))
    bits = np.asarray(head_bits, dtype=np.int32)
    mask = np.asarray(mask, dtype=bool)
    out = bits.copy()
    for h in np.flatnonzero(mask):
        b = int(bits[h])
        if b not in rungs:
            continue
        i = rungs.index(b) + direction
        if 0 <= i < len(rungs):
            out[h] = rungs[i]
    return out

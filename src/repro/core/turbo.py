"""User-facing TurboAttention API.

:class:`TurboAttention` bundles head-selection, the prefill kernel, the
quantized cache/buffer state and the decode kernel behind two calls::

    turbo = TurboAttention(TurboConfig(mixed_precision=True))
    out, state = turbo.prefill(q, k, v)          # (heads, n, d) each
    ...
    out_t = turbo.decode_step(q_t, k_t, v_t, state)   # (heads, d) each

The state object exposes honest storage accounting
(:attr:`TurboKVState.storage_bits`) used by the memory/throughput models.

Passing a :class:`repro.guard.GuardConfig` arms the numerics guard on both
kernels (NaN/Inf tiles, degenerate scales, accumulator headroom — with
``raise | sanitize | fallback`` policies) and, when the config carries an
:class:`repro.guard.EscalationConfig`, adaptive per-head precision
escalation at every buffer flush.  The per-state
:attr:`TurboKVState.report` accumulates what the guards saw and did.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.buffer import DecodeBuffer
from repro.core.config import TurboConfig
from repro.core.decode import turbo_decode_step
from repro.core.headwise import HeadSelectionMethod, assign_head_bits, select_two_bit_heads
from repro.core.kvcache import QuantizedKVCache
from repro.core.prefill import turbo_prefill
from repro.guard.escalation import PrecisionEscalator
from repro.guard.report import GuardConfig, GuardReport

__all__ = ["TurboAttention", "TurboKVState"]


@dataclass
class TurboKVState:
    """Per-layer attention state: progressive cache + INT8 buffer.

    ``report`` and ``escalator`` are populated when the owning
    :class:`TurboAttention` runs with a guard; they are runtime-only and
    deliberately not persisted (a restored state re-arms lazily on the
    next guarded decode step).
    """

    cache: QuantizedKVCache
    buffer: DecodeBuffer
    head_bits: np.ndarray
    report: Optional[GuardReport] = None
    escalator: Optional[PrecisionEscalator] = None

    @property
    def seq_len(self) -> int:
        """Total tokens represented (cache blocks + staged buffer)."""
        return self.cache.seq_len + len(self.buffer)

    @property
    def storage_bits(self) -> int:
        return self.cache.storage_bits + self.buffer.storage_bits

    @property
    def storage_bytes(self) -> float:
        return self.storage_bits / 8.0

    def effective_bits_per_value(self) -> float:
        """Average stored bits per K/V element across cache and buffer."""
        n = 2 * self.seq_len * self.cache.n_heads * self.cache.head_dim
        return self.storage_bits / n if n else 0.0

    def compression_ratio(self, reference_bits: int = 16) -> float:
        n = 2 * self.seq_len * self.cache.n_heads * self.cache.head_dim
        if n == 0 or self.storage_bits == 0:
            return 1.0
        return (n * reference_bits) / self.storage_bits


class TurboAttention:
    """TurboAttention = FlashQ + SAS behind a prefill/decode interface."""

    def __init__(
        self,
        config: Optional[TurboConfig] = None,
        guard: Optional[GuardConfig] = None,
    ):
        self.config = config if config is not None else TurboConfig()
        self.guard = guard

    def _arm(self, state: TurboKVState) -> None:
        """Lazily attach guard runtime objects to a state (covers both
        fresh prefills and states restored from persistence)."""
        if self.guard is None:
            return
        if state.report is None:
            state.report = GuardReport()
        if self.guard.escalation is not None and state.escalator is None:
            state.escalator = PrecisionEscalator(
                self.guard.escalation, state.head_bits
            )

    def choose_head_bits(self, k: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Assign per-head bit-widths from prefill K/V statistics.

        Uniform ``kv_bits`` unless mixed precision is enabled, in which case
        the configured selector marks ``two_bit_fraction`` of the heads for
        2-bit storage (Eq. 12) and the rest stay at 4-bit.
        """
        n_heads = np.asarray(k).shape[0]
        cfg = self.config
        if not cfg.mixed_precision:
            return np.full(n_heads, cfg.kv_bits, dtype=np.int32)
        n_two = int(round(cfg.two_bit_fraction * n_heads))
        mask = select_two_bit_heads(
            k, v, n_two, method=HeadSelectionMethod(cfg.head_selection)
        )
        return assign_head_bits(mask, high_bits=4)

    def prefill(
        self,
        q: np.ndarray,
        k: np.ndarray,
        v: np.ndarray,
        causal: bool = True,
        scale: Optional[float] = None,
        head_bits: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, TurboKVState]:
        """Process the prompt; returns output and the compressed KV state."""
        if head_bits is None:
            head_bits = self.choose_head_bits(k, v)
        result = turbo_prefill(
            q, k, v, config=self.config, head_bits=head_bits, causal=causal,
            scale=scale, guard=self.guard,
        )
        state = TurboKVState(
            cache=result.cache, buffer=result.buffer, head_bits=result.head_bits,
            report=result.report,
        )
        self._arm(state)
        return result.output, state

    def decode_step(
        self,
        q_t: np.ndarray,
        k_t: np.ndarray,
        v_t: np.ndarray,
        state: TurboKVState,
        scale: Optional[float] = None,
    ) -> np.ndarray:
        """Process one generated token against the compressed state."""
        self._arm(state)
        out = turbo_decode_step(
            q_t, k_t, v_t, cache=state.cache, buffer=state.buffer,
            config=self.config, scale=scale, guard=self.guard,
            report=state.report, escalator=state.escalator,
        )
        if state.escalator is not None:
            # Escalation retunes the cache's widths; keep the state's view
            # (used by serialization and storage accounting) in sync.
            state.head_bits = state.cache.head_bits
        return out

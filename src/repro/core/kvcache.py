"""Blockwise progressively-quantized KV cache (FlashQ storage, §3.1-§3.2).

The cache is a list of fixed-size blocks.  Each block holds the INT4/INT2
progressive codes of ``block_size`` tokens for all KV heads, together with
the integer channel scales/zero-points (INT8) and the per-(head, block)
FP16 stage-1 scale.  Head-wise mixed precision simply means the per-head
``bits`` array handed to :func:`repro.quant.progressive.pq_compress` is not
constant.

Blocks are immutable once written: decode never recompresses old tokens
(the enhanced buffer guarantees new tokens arrive already aligned to block
boundaries).

Because each :class:`ProgressiveBlock` carries its *own* per-head bit
array, blocks within one cache may legally differ in width: the adaptive
precision escalator (:mod:`repro.guard.escalation`) retunes
``head_bits`` between flushes via :meth:`QuantizedKVCache.set_head_bits`,
and only blocks appended afterwards pay the new cost.  Storage accounting
and serialization both honour per-block widths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

from repro.quant.progressive import ProgressiveBlock, pq_compress, pq_decompress_to_int8

__all__ = ["CacheBlock", "QuantizedKVCache"]


@dataclass
class CacheBlock:
    """One block of compressed keys and values.

    ``k``/``v`` codes have shape ``(heads, length, head_dim)``; the stage-1
    scales live inside the :class:`ProgressiveBlock` (shape
    ``(heads, 1, 1)``).
    """

    k: ProgressiveBlock
    v: ProgressiveBlock
    length: int

    @property
    def storage_bits(self) -> int:
        return self.k.storage_bits + self.v.storage_bits


class QuantizedKVCache:
    """Append-only cache of :class:`CacheBlock` objects.

    Parameters
    ----------
    n_heads, head_dim:
        KV head count and per-head dimension.
    head_bits:
        Per-head storage bit-width array, shape ``(n_heads,)`` with values
        in {2, 4} (or a uniform width when mixed precision is off).
    block_size:
        Tokens per block (``B_c`` / ``n_b`` — the paper fixes both to 64).
    """

    def __init__(self, n_heads: int, head_dim: int, head_bits: np.ndarray, block_size: int):
        head_bits = np.asarray(head_bits, dtype=np.int32)
        if head_bits.shape != (n_heads,):
            raise ValueError(
                f"head_bits must have shape ({n_heads},), got {head_bits.shape}"
            )
        self.n_heads = n_heads
        self.head_dim = head_dim
        self.head_bits = head_bits
        self.block_size = block_size
        self.blocks: List[CacheBlock] = []

    def __len__(self) -> int:
        return len(self.blocks)

    def set_head_bits(self, head_bits: np.ndarray) -> None:
        """Retune the widths used for *future* blocks (escalation hook).

        Existing blocks are untouched — they already store their own bit
        arrays — so this is a constant-time policy change, not a rewrite.
        """
        head_bits = np.asarray(head_bits, dtype=np.int32)
        if head_bits.shape != (self.n_heads,):
            raise ValueError(
                f"head_bits must have shape ({self.n_heads},), got {head_bits.shape}"
            )
        if np.any(~np.isin(head_bits, (2, 3, 4, 8))):
            raise ValueError(f"unsupported bit-widths: {np.unique(head_bits)}")
        self.head_bits = head_bits

    @property
    def seq_len(self) -> int:
        """Total cached tokens across blocks."""
        return sum(b.length for b in self.blocks)

    def append_block(
        self,
        k_codes: np.ndarray,
        v_codes: np.ndarray,
        k_scale: np.ndarray,
        v_scale: np.ndarray,
    ) -> CacheBlock:
        """Compress INT8 codes into a new block and append it.

        ``k_codes``/``v_codes`` have shape ``(heads, length, head_dim)``
        (``length <= block_size``), with their per-(head, block) symmetric
        scales of shape ``(heads, 1, 1)``.
        """
        k_codes = np.asarray(k_codes)
        v_codes = np.asarray(v_codes)
        if k_codes.shape != v_codes.shape:
            raise ValueError("key and value code shapes must match")
        h, length, d = k_codes.shape
        if h != self.n_heads or d != self.head_dim:
            raise ValueError(
                f"block shape {k_codes.shape} does not match cache "
                f"({self.n_heads} heads, dim {self.head_dim})"
            )
        if length > self.block_size:
            raise ValueError(f"block length {length} exceeds block_size {self.block_size}")
        bits = self.head_bits.reshape(-1, 1, 1)
        block = CacheBlock(
            k=pq_compress(k_codes, bits=bits, float_scale=np.asarray(k_scale)),
            v=pq_compress(v_codes, bits=bits, float_scale=np.asarray(v_scale)),
            length=length,
        )
        self.blocks.append(block)
        return block

    def iter_decompressed(
        self,
    ) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]]:
        """Yield per-block ``(k_int8, v_int8, k_scale, v_scale, length)``.

        Decompression to INT8 is the integer path of Algorithm 2; the float
        scales are the stage-1 symmetric scales needed for the score/output
        scaling.
        """
        for block in self.blocks:
            yield (
                pq_decompress_to_int8(block.k),
                pq_decompress_to_int8(block.v),
                block.k.float_scale,
                block.v.float_scale,
                block.length,
            )

    @property
    def storage_bits(self) -> int:
        return sum(b.storage_bits for b in self.blocks)

    @property
    def storage_bytes(self) -> float:
        return self.storage_bits / 8.0

    def effective_bits_per_value(self) -> float:
        """Average stored bits per cached K/V element, metadata included."""
        n = 2 * self.seq_len * self.n_heads * self.head_dim
        return self.storage_bits / n if n else 0.0

    def compression_ratio(self, reference_bits: int = 16) -> float:
        """Compression vs an FP16 cache of the same logical size."""
        n = 2 * self.seq_len * self.n_heads * self.head_dim
        if n == 0 or self.storage_bits == 0:
            return 1.0
        return (n * reference_bits) / self.storage_bits

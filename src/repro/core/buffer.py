"""Enhanced KV cache buffer for decode (paper §3.3).

Newly generated key/value vectors are staged in INT8 using a *universal*
(frozen) symmetric scale fixed at prefill time; values that exceed the
scale's range are clamped rather than triggering a rescale, so previously
staged tokens are never recompressed.  When the buffer reaches ``n_b``
tokens it is flushed — progressively compressed into one cache block — and
cleared.

The contrast with KIVI/GEAR, which keep their residual window in FP16, is
what lets TurboAttention run the *entire* decode attention in integer
arithmetic (and is charged accordingly in the performance model).

Because the frozen scale is the pipeline's one open-loop assumption (a
decode stream hotter than the prefill silently saturates the clamp), the
buffer keeps per-head saturation accounting: ``clamped_total`` is the
monotone lifetime count, and per-flush-window clamp fractions plus the
window's observed absmax feed the adaptive-precision escalator
(:mod:`repro.guard.escalation`).  Rescaling is only ever allowed at a
flush boundary, when the buffer is empty — cache blocks carry their own
scales, so growing the universal scale there recompresses nothing.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["DecodeBuffer"]


class DecodeBuffer:
    """INT8 staging buffer with a frozen universal scale.

    Parameters
    ----------
    n_heads, head_dim:
        KV geometry.
    capacity:
        ``n_b`` — flush threshold.
    k_scale, v_scale:
        Universal symmetric scales, shape ``(n_heads, 1, 1)``; typically
        ``max|K_prefill| / 119`` per head.
    clamp_code:
        Magnitude bound for staged codes (the paper clamps outliers into
        the frozen scale; 119 leaves INT8 headroom).
    """

    def __init__(
        self,
        n_heads: int,
        head_dim: int,
        capacity: int,
        k_scale: np.ndarray,
        v_scale: np.ndarray,
        clamp_code: int = 119,
    ):
        if capacity <= 0:
            raise ValueError("buffer capacity must be positive")
        self.n_heads = n_heads
        self.head_dim = head_dim
        self.capacity = capacity
        self.clamp_code = int(clamp_code)
        self.k_scale = np.asarray(k_scale, dtype=np.float64).reshape(n_heads, 1, 1)
        self.v_scale = np.asarray(v_scale, dtype=np.float64).reshape(n_heads, 1, 1)
        self._k_codes = np.zeros((n_heads, capacity, head_dim), dtype=np.int8)
        self._v_codes = np.zeros((n_heads, capacity, head_dim), dtype=np.int8)
        self._len = 0
        self.clamped_total = 0  # lifetime elements clamped (monotone)
        # Per-flush-window saturation stats (reset by drain()); the
        # escalator reads the *last* window's copies after a flush.
        self._win_clamped = np.zeros(n_heads, dtype=np.int64)
        self._win_tokens = 0
        self._win_k_absmax = np.zeros(n_heads, dtype=np.float64)
        self._win_v_absmax = np.zeros(n_heads, dtype=np.float64)
        self.last_clamp_fraction = np.zeros(n_heads, dtype=np.float64)
        self.last_k_absmax = np.zeros(n_heads, dtype=np.float64)
        self.last_v_absmax = np.zeros(n_heads, dtype=np.float64)

    def __len__(self) -> int:
        return self._len

    @property
    def is_full(self) -> bool:
        return self._len >= self.capacity

    def _quantize(self, x: np.ndarray, scale: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Quantize ``(n_heads, t, head_dim)`` floats; returns codes plus
        the per-head clamped-element counts."""
        codes = np.rint(np.asarray(x, dtype=np.float64) / scale)
        clamped = np.count_nonzero(np.abs(codes) > self.clamp_code, axis=(-2, -1))
        codes = np.clip(codes, -self.clamp_code, self.clamp_code)
        return codes.astype(np.int8), clamped.astype(np.int64)

    def append(self, k_t: np.ndarray, v_t: np.ndarray) -> None:
        """Stage one token's K/V vectors, shape ``(n_heads, head_dim)`` or
        ``(n_heads, 1, head_dim)``.  Raises if the buffer is full — callers
        must flush first (see :meth:`drain`)."""
        self.extend(
            np.asarray(k_t, dtype=np.float64).reshape(self.n_heads, 1, self.head_dim),
            np.asarray(v_t, dtype=np.float64).reshape(self.n_heads, 1, self.head_dim),
        )

    def extend(self, k: np.ndarray, v: np.ndarray) -> None:
        """Stage multiple tokens in one bulk quantize (used for the ragged
        prefill tail and multi-token speculative steps).

        ``k``/``v`` have shape ``(n_heads, t, head_dim)``.  If ``t``
        exceeds the remaining capacity, the buffer fills up to capacity
        and *then* raises ``RuntimeError`` — matching the historical
        per-token behaviour callers rely on.
        """
        k = np.asarray(k, dtype=np.float64).reshape(self.n_heads, -1, self.head_dim)
        v = np.asarray(v, dtype=np.float64).reshape(self.n_heads, -1, self.head_dim)
        if k.shape != v.shape:
            raise ValueError("key and value shapes must match")
        t = k.shape[1]
        if t == 0:
            return
        if self.is_full:
            raise RuntimeError("buffer full: flush before appending")
        fits = min(t, self.capacity - self._len)
        k_codes, ck = self._quantize(k[:, :fits, :], self.k_scale)
        v_codes, cv = self._quantize(v[:, :fits, :], self.v_scale)
        self._k_codes[:, self._len : self._len + fits, :] = k_codes
        self._v_codes[:, self._len : self._len + fits, :] = v_codes
        self._len += fits
        clamped = ck + cv
        self.clamped_total += int(clamped.sum())
        self._win_clamped += clamped
        self._win_tokens += fits
        np.maximum(
            self._win_k_absmax, np.abs(k[:, :fits, :]).max(axis=(-2, -1)),
            out=self._win_k_absmax,
        )
        np.maximum(
            self._win_v_absmax, np.abs(v[:, :fits, :]).max(axis=(-2, -1)),
            out=self._win_v_absmax,
        )
        if fits < t:
            raise RuntimeError("buffer full: flush before appending")

    def window_clamp_fraction(self) -> np.ndarray:
        """Per-head clamped share of the current (undrained) window."""
        n = self._win_tokens * 2 * self.head_dim
        if n == 0:
            return np.zeros(self.n_heads, dtype=np.float64)
        return self._win_clamped / float(n)

    def codes(self) -> Tuple[np.ndarray, np.ndarray]:
        """Current staged INT8 codes, shapes ``(n_heads, len, head_dim)``."""
        return (
            self._k_codes[:, : self._len, :],
            self._v_codes[:, : self._len, :],
        )

    def restore(self, k_codes: np.ndarray, v_codes: np.ndarray) -> None:
        """Overwrite the staged contents with already-quantized INT8 codes
        (the deserialization entry point — no private pokes needed).

        ``k_codes``/``v_codes`` have shape ``(n_heads, t, head_dim)`` with
        ``t <= capacity``; the buffer length becomes ``t``.  Saturation
        windows are reset: a restored buffer starts a fresh window.
        """
        k_codes = np.asarray(k_codes)
        v_codes = np.asarray(v_codes)
        if k_codes.shape != v_codes.shape:
            raise ValueError("key and value code shapes must match")
        if k_codes.ndim != 3 or k_codes.shape[0] != self.n_heads or k_codes.shape[2] != self.head_dim:
            raise ValueError(
                f"restore codes shape {k_codes.shape} does not match buffer "
                f"({self.n_heads} heads, dim {self.head_dim})"
            )
        t = k_codes.shape[1]
        if t > self.capacity:
            raise ValueError(
                f"restore length {t} exceeds buffer capacity {self.capacity}"
            )
        self._k_codes[:, :t, :] = k_codes.astype(np.int8)
        self._v_codes[:, :t, :] = v_codes.astype(np.int8)
        self._len = t
        self._win_clamped[:] = 0
        self._win_tokens = 0
        self._win_k_absmax[:] = 0.0
        self._win_v_absmax[:] = 0.0

    def drain(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Return staged codes + scales and clear the buffer.

        The caller hands these to
        :meth:`repro.core.kvcache.QuantizedKVCache.append_block`.  The
        window saturation stats are published to ``last_clamp_fraction`` /
        ``last_k_absmax`` / ``last_v_absmax`` and reset.
        """
        k_codes, v_codes = self.codes()
        k_codes, v_codes = k_codes.copy(), v_codes.copy()
        self._len = 0
        self.last_clamp_fraction = self.window_clamp_fraction()
        self.last_k_absmax = self._win_k_absmax.copy()
        self.last_v_absmax = self._win_v_absmax.copy()
        self._win_clamped[:] = 0
        self._win_tokens = 0
        self._win_k_absmax[:] = 0.0
        self._win_v_absmax[:] = 0.0
        return k_codes, v_codes, self.k_scale.copy(), self.v_scale.copy()

    def grow_scale(self, heads: np.ndarray) -> int:
        """Regrow the frozen universal scale for the masked heads so the
        *last* window's observed absmax would no longer clamp.

        Only legal when the buffer is empty (a flush boundary): staged
        codes would otherwise be re-interpreted under the new scale.
        Scales only ever grow.  Returns the number of heads rescaled.
        """
        if self._len:
            raise RuntimeError("scale regrow is only safe on an empty buffer")
        heads = np.asarray(heads, dtype=bool).reshape(self.n_heads)
        wanted_k = self.last_k_absmax / float(self.clamp_code)
        wanted_v = self.last_v_absmax / float(self.clamp_code)
        grew = heads & (
            (wanted_k > self.k_scale.reshape(-1)) | (wanted_v > self.v_scale.reshape(-1))
        )
        if not grew.any():
            return 0
        sel = grew.reshape(-1, 1, 1)
        self.k_scale = np.where(sel, np.maximum(self.k_scale, wanted_k.reshape(-1, 1, 1)), self.k_scale)
        self.v_scale = np.where(sel, np.maximum(self.v_scale, wanted_v.reshape(-1, 1, 1)), self.v_scale)
        return int(np.count_nonzero(grew))

    @property
    def storage_bits(self) -> int:
        """Bits held by staged codes (INT8) plus the two universal scales."""
        return 2 * self._len * self.n_heads * self.head_dim * 8 + 2 * self.n_heads * 16

"""Enhanced KV cache buffer for decode (paper §3.3).

Newly generated key/value vectors are staged in INT8 using a *universal*
(frozen) symmetric scale fixed at prefill time; values that exceed the
scale's range are clamped rather than triggering a rescale, so previously
staged tokens are never recompressed.  When the buffer reaches ``n_b``
tokens it is flushed — progressively compressed into one cache block — and
cleared.

The contrast with KIVI/GEAR, which keep their residual window in FP16, is
what lets TurboAttention run the *entire* decode attention in integer
arithmetic (and is charged accordingly in the performance model).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = ["DecodeBuffer"]


class DecodeBuffer:
    """INT8 staging buffer with a frozen universal scale.

    Parameters
    ----------
    n_heads, head_dim:
        KV geometry.
    capacity:
        ``n_b`` — flush threshold.
    k_scale, v_scale:
        Universal symmetric scales, shape ``(n_heads, 1, 1)``; typically
        ``max|K_prefill| / 119`` per head.
    clamp_code:
        Magnitude bound for staged codes (the paper clamps outliers into
        the frozen scale; 119 leaves INT8 headroom).
    """

    def __init__(
        self,
        n_heads: int,
        head_dim: int,
        capacity: int,
        k_scale: np.ndarray,
        v_scale: np.ndarray,
        clamp_code: int = 119,
    ):
        if capacity <= 0:
            raise ValueError("buffer capacity must be positive")
        self.n_heads = n_heads
        self.head_dim = head_dim
        self.capacity = capacity
        self.clamp_code = int(clamp_code)
        self.k_scale = np.asarray(k_scale, dtype=np.float64).reshape(n_heads, 1, 1)
        self.v_scale = np.asarray(v_scale, dtype=np.float64).reshape(n_heads, 1, 1)
        self._k_codes = np.zeros((n_heads, capacity, head_dim), dtype=np.int8)
        self._v_codes = np.zeros((n_heads, capacity, head_dim), dtype=np.int8)
        self._len = 0
        self.clamped_total = 0  # elements clamped so far (observability)

    def __len__(self) -> int:
        return self._len

    @property
    def is_full(self) -> bool:
        return self._len >= self.capacity

    def _quantize(self, x: np.ndarray, scale: np.ndarray) -> Tuple[np.ndarray, int]:
        codes = np.rint(np.asarray(x, dtype=np.float64) / scale)
        clamped = int(np.count_nonzero(np.abs(codes) > self.clamp_code))
        codes = np.clip(codes, -self.clamp_code, self.clamp_code)
        return codes.astype(np.int8), clamped

    def append(self, k_t: np.ndarray, v_t: np.ndarray) -> None:
        """Stage one token's K/V vectors, shape ``(n_heads, head_dim)`` or
        ``(n_heads, 1, head_dim)``.  Raises if the buffer is full — callers
        must flush first (see :meth:`flush_if_full`)."""
        if self.is_full:
            raise RuntimeError("buffer full: flush before appending")
        k_t = np.asarray(k_t, dtype=np.float64).reshape(self.n_heads, 1, self.head_dim)
        v_t = np.asarray(v_t, dtype=np.float64).reshape(self.n_heads, 1, self.head_dim)
        k_codes, ck = self._quantize(k_t, self.k_scale)
        v_codes, cv = self._quantize(v_t, self.v_scale)
        self._k_codes[:, self._len : self._len + 1, :] = k_codes
        self._v_codes[:, self._len : self._len + 1, :] = v_codes
        self._len += 1
        self.clamped_total += ck + cv

    def extend(self, k: np.ndarray, v: np.ndarray) -> None:
        """Stage multiple tokens (used for the ragged prefill tail)."""
        k = np.asarray(k, dtype=np.float64)
        for t in range(k.shape[-2]):
            self.append(k[..., t, :], np.asarray(v)[..., t, :])

    def codes(self) -> Tuple[np.ndarray, np.ndarray]:
        """Current staged INT8 codes, shapes ``(n_heads, len, head_dim)``."""
        return (
            self._k_codes[:, : self._len, :],
            self._v_codes[:, : self._len, :],
        )

    def drain(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Return staged codes + scales and clear the buffer.

        The caller hands these to
        :meth:`repro.core.kvcache.QuantizedKVCache.append_block`.
        """
        k_codes, v_codes = self.codes()
        k_codes, v_codes = k_codes.copy(), v_codes.copy()
        self._len = 0
        return k_codes, v_codes, self.k_scale.copy(), self.v_scale.copy()

    @property
    def storage_bits(self) -> int:
        """Bits held by staged codes (INT8) plus the two universal scales."""
        return 2 * self._len * self.n_heads * self.head_dim * 8 + 2 * self.n_heads * 16

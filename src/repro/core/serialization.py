"""Corruption-safe KV-state serialization.

Serving systems persist compressed caches (prefix caching, request
migration, host offload).  This module round-trips a
:class:`repro.core.turbo.TurboKVState` through a flat dict of NumPy arrays
— INT4/2 codes *actually packed* via :mod:`repro.quant.packing` and
integer scales/zeros as int16 — so the on-disk footprint matches the
library's storage accounting, and ``np.savez`` works directly.

Round-trip is exact: codes, scales, buffer contents, and head-bit
assignments are all preserved bit-for-bit (tested).

Persistence is guarded (schema v2):

* a ``meta.schema`` version tag rejects files from the future;
* every array carries a CRC32 (dtype + shape + payload, see
  :mod:`repro.guard.checksum`) verified on load — a flipped bit inside a
  packed code payload is otherwise *valid data* and undetectable;
* geometry and value validation (head counts, staged tokens vs buffer
  capacity, block lengths vs ``block_size``, packed payload sizes,
  positive finite scales, ``s_int >= 1``, legal bit-widths) rejects
  states that would deserialize into garbage;
* failures raise typed :class:`repro.guard.errors.CacheCorruptionError`
  subclasses, and :func:`salvage_state` recovers the longest valid prefix
  instead, reporting exactly which token ranges must be recomputed.

Legacy (schema-less) dicts written before v2 still load: they carry no
checksums to verify, but get full geometry/value validation.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.buffer import DecodeBuffer
from repro.core.kvcache import CacheBlock, QuantizedKVCache
from repro.core.turbo import TurboKVState
from repro.guard.checksum import array_crc32, checksum_key, is_checksum_key
from repro.guard.errors import (
    CacheCorruptionError,
    ChecksumMismatchError,
    CorruptValueError,
    GeometryError,
    SchemaError,
)
from repro.quant.packing import pack_codes, packed_nbytes, unpack_codes
from repro.quant.progressive import ProgressiveBlock

__all__ = [
    "SCHEMA_VERSION",
    "SalvageResult",
    "state_to_arrays",
    "state_from_arrays",
    "salvage_state",
    "save_state",
    "load_state",
    "state_digest",
]

#: Current on-disk schema.  v1 (implicit, tagless) lacked checksums and
#: the ``meta.seq_len`` recovery hint.
SCHEMA_VERSION = 2

_LEGAL_BITS = (2, 3, 4, 8)


def _pack_block(prefix: str, block: ProgressiveBlock, out: Dict[str, np.ndarray]) -> None:
    bits_arr = np.asarray(block.bits, dtype=np.int8)
    if bits_arr.ndim == 0:
        bits_arr = np.full((block.codes.shape[0], 1, 1), int(bits_arr), dtype=np.int8)
    out[f"{prefix}.bits"] = bits_arr
    out[f"{prefix}.shape"] = np.asarray(block.codes.shape, dtype=np.int64)
    out[f"{prefix}.s_int"] = block.s_int.astype(np.int16)
    out[f"{prefix}.z_int"] = block.z_int.astype(np.int16)
    # Stored float64 for an exact round-trip; the storage *accounting*
    # charges these at FP16 (ProgressiveBlock.storage_bits), matching what
    # a deployment would persist.
    out[f"{prefix}.float_scale"] = np.asarray(block.float_scale, dtype=np.float64)
    # Pack per head (heads may differ in width under mixed precision).
    for h in range(block.codes.shape[0]):
        width = int(bits_arr.reshape(-1)[h])
        packed, length = pack_codes(block.codes[h].reshape(-1), width)
        out[f"{prefix}.codes{h}"] = packed
        out[f"{prefix}.len{h}"] = np.asarray(length, dtype=np.int64)


def _unpack_block(prefix: str, arrays: Dict[str, np.ndarray]) -> ProgressiveBlock:
    bits_arr = arrays[f"{prefix}.bits"].astype(np.int32)
    shape = tuple(int(x) for x in arrays[f"{prefix}.shape"])
    codes = np.empty(shape, dtype=np.uint8)
    for h in range(shape[0]):
        width = int(bits_arr.reshape(-1)[h])
        length = int(arrays[f"{prefix}.len{h}"])
        codes[h] = unpack_codes(arrays[f"{prefix}.codes{h}"], width, length).reshape(
            shape[1:]
        )
    return ProgressiveBlock(
        codes=codes,
        s_int=arrays[f"{prefix}.s_int"].astype(np.int16),
        z_int=arrays[f"{prefix}.z_int"].astype(np.int16),
        bits=bits_arr,
        float_scale=arrays[f"{prefix}.float_scale"].astype(np.float64),
    )


def state_to_arrays(state: TurboKVState, checksums: bool = True) -> Dict[str, np.ndarray]:
    """Flatten a KV state into named arrays (``np.savez``-compatible).

    With ``checksums`` (the default) every payload array gets a companion
    ``crc.<key>`` uint32 entry verified by :func:`state_from_arrays`.
    """
    cache = state.cache
    out: Dict[str, np.ndarray] = {
        "meta.schema": np.asarray(SCHEMA_VERSION, dtype=np.int64),
        "meta.n_heads": np.asarray(cache.n_heads, dtype=np.int64),
        "meta.head_dim": np.asarray(cache.head_dim, dtype=np.int64),
        "meta.block_size": np.asarray(cache.block_size, dtype=np.int64),
        "meta.head_bits": cache.head_bits.astype(np.int8),
        "meta.n_blocks": np.asarray(len(cache.blocks), dtype=np.int64),
        "meta.seq_len": np.asarray(state.seq_len, dtype=np.int64),
    }
    for i, block in enumerate(cache.blocks):
        out[f"block{i}.length"] = np.asarray(block.length, dtype=np.int64)
        _pack_block(f"block{i}.k", block.k, out)
        _pack_block(f"block{i}.v", block.v, out)
    buf = state.buffer
    k_codes, v_codes = buf.codes()
    out["buffer.capacity"] = np.asarray(buf.capacity, dtype=np.int64)
    out["buffer.clamp_code"] = np.asarray(buf.clamp_code, dtype=np.int64)
    out["buffer.k_codes"] = k_codes.astype(np.int8)
    out["buffer.v_codes"] = v_codes.astype(np.int8)
    out["buffer.k_scale"] = buf.k_scale.astype(np.float64)
    out["buffer.v_scale"] = buf.v_scale.astype(np.float64)
    if checksums:
        for key in list(out):
            out[checksum_key(key)] = np.asarray(array_crc32(out[key]), dtype=np.uint32)
    return out


# --------------------------------------------------------------------------
# Validated loading
# --------------------------------------------------------------------------

def _schema_version(arrays: Dict[str, np.ndarray]) -> int:
    if "meta.schema" not in arrays:
        if "meta.n_heads" not in arrays:
            raise SchemaError("not a serialized KV state (no meta arrays)")
        return 1  # legacy, tagless
    version = int(arrays["meta.schema"])
    if not 1 <= version <= SCHEMA_VERSION:
        raise SchemaError(f"unsupported schema version {version}", key="meta.schema")
    return version


def _require(arrays: Dict[str, np.ndarray], key: str) -> np.ndarray:
    if key not in arrays:
        raise SchemaError(f"missing array {key!r} (truncated state?)", key=key)
    return arrays[key]


def _checked(arrays: Dict[str, np.ndarray], key: str, verify: bool) -> np.ndarray:
    """Fetch ``key``, verifying its CRC when the schema carries one."""
    arr = _require(arrays, key)
    if verify:
        crc_key = checksum_key(key)
        if crc_key not in arrays:
            raise SchemaError(f"missing checksum for {key!r}", key=key)
        expected = int(arrays[crc_key])
        actual = array_crc32(arr)
        if actual != expected:
            raise ChecksumMismatchError(key, expected, actual)
    return arr


def _as_int(arrays: Dict[str, np.ndarray], key: str, verify: bool) -> int:
    arr = _checked(arrays, key, verify)
    if np.asarray(arr).size != 1:
        raise GeometryError(f"{key!r} must be a scalar", key=key)
    return int(arr)


def _validate_meta(arrays: Dict[str, np.ndarray], verify: bool) -> Tuple[int, int, int, int, np.ndarray]:
    n_heads = _as_int(arrays, "meta.n_heads", verify)
    head_dim = _as_int(arrays, "meta.head_dim", verify)
    block_size = _as_int(arrays, "meta.block_size", verify)
    n_blocks = _as_int(arrays, "meta.n_blocks", verify)
    if n_heads <= 0 or head_dim <= 0 or block_size <= 0 or n_blocks < 0:
        raise GeometryError(
            f"non-positive geometry: heads={n_heads} dim={head_dim} "
            f"block_size={block_size} n_blocks={n_blocks}"
        )
    head_bits = _checked(arrays, "meta.head_bits", verify).astype(np.int32)
    if head_bits.shape != (n_heads,):
        raise GeometryError(
            f"meta.head_bits shape {head_bits.shape} != ({n_heads},)",
            key="meta.head_bits",
        )
    if np.any(~np.isin(head_bits, _LEGAL_BITS)):
        raise CorruptValueError(
            f"illegal head bit-widths {np.unique(head_bits)}", key="meta.head_bits"
        )
    return n_heads, head_dim, block_size, n_blocks, head_bits


def _load_block(
    arrays: Dict[str, np.ndarray],
    i: int,
    n_heads: int,
    head_dim: int,
    block_size: int,
    verify: bool,
) -> CacheBlock:
    """Validate and unpack one cache block; raises typed errors."""
    length = _as_int(arrays, f"block{i}.length", verify)
    if not 0 < length <= block_size:
        raise GeometryError(
            f"block{i} length {length} outside (0, block_size={block_size}]",
            key=f"block{i}.length",
        )
    halves = {}
    for part in ("k", "v"):
        prefix = f"block{i}.{part}"
        shape_arr = _checked(arrays, f"{prefix}.shape", verify)
        if shape_arr.size != 3:
            raise GeometryError(f"{prefix}.shape must have 3 dims", key=f"{prefix}.shape")
        shape = tuple(int(x) for x in shape_arr)
        if shape[0] != n_heads or shape[2] != head_dim or shape[1] != length:
            raise GeometryError(
                f"{prefix} shape {shape} inconsistent with "
                f"(heads={n_heads}, length={length}, dim={head_dim})",
                key=f"{prefix}.shape",
            )
        bits = _checked(arrays, f"{prefix}.bits", verify).astype(np.int32)
        if bits.reshape(-1).shape[0] != n_heads:
            raise GeometryError(
                f"{prefix}.bits has {bits.reshape(-1).shape[0]} entries for "
                f"{n_heads} heads",
                key=f"{prefix}.bits",
            )
        if np.any(~np.isin(bits, _LEGAL_BITS)):
            raise CorruptValueError(
                f"{prefix}.bits contains illegal widths {np.unique(bits)}",
                key=f"{prefix}.bits",
            )
        s_int = _checked(arrays, f"{prefix}.s_int", verify)
        if s_int.size and int(np.min(s_int)) < 1:
            raise CorruptValueError(
                f"{prefix}.s_int has entries < 1 (zeroed integer scale)",
                key=f"{prefix}.s_int",
            )
        _checked(arrays, f"{prefix}.z_int", verify)
        float_scale = _checked(arrays, f"{prefix}.float_scale", verify)
        fs = np.asarray(float_scale, dtype=np.float64)
        if not np.all(np.isfinite(fs)) or np.any(fs <= 0):
            raise CorruptValueError(
                f"{prefix}.float_scale non-finite or non-positive",
                key=f"{prefix}.float_scale",
            )
        for h in range(n_heads):
            width = int(bits.reshape(-1)[h])
            declared = _as_int(arrays, f"{prefix}.len{h}", verify)
            if declared != length * head_dim:
                raise GeometryError(
                    f"{prefix}.len{h} = {declared}, expected {length * head_dim}",
                    key=f"{prefix}.len{h}",
                )
            payload = _checked(arrays, f"{prefix}.codes{h}", verify)
            need = packed_nbytes(declared, width)
            if payload.size < need:
                raise GeometryError(
                    f"{prefix}.codes{h} holds {payload.size} bytes, "
                    f"needs {need} for {declared} {width}-bit codes",
                    key=f"{prefix}.codes{h}",
                )
        halves[part] = _unpack_block(prefix, arrays)
    return CacheBlock(k=halves["k"], v=halves["v"], length=length)


def _load_buffer(
    arrays: Dict[str, np.ndarray],
    n_heads: int,
    head_dim: int,
    verify: bool,
) -> DecodeBuffer:
    """Validate and rebuild the decode buffer; raises typed errors."""
    capacity = _as_int(arrays, "buffer.capacity", verify)
    clamp_code = _as_int(arrays, "buffer.clamp_code", verify)
    if capacity <= 0:
        raise GeometryError(f"buffer capacity {capacity} must be positive",
                            key="buffer.capacity")
    if not 1 <= clamp_code <= 127:
        raise CorruptValueError(f"buffer clamp_code {clamp_code} outside [1, 127]",
                                key="buffer.clamp_code")
    k_codes = _checked(arrays, "buffer.k_codes", verify)
    v_codes = _checked(arrays, "buffer.v_codes", verify)
    if k_codes.shape != v_codes.shape:
        raise GeometryError(
            f"buffer code shapes differ: {k_codes.shape} vs {v_codes.shape}",
            key="buffer.k_codes",
        )
    if k_codes.ndim != 3 or k_codes.shape[0] != n_heads or k_codes.shape[2] != head_dim:
        raise GeometryError(
            f"buffer codes shape {k_codes.shape} inconsistent with "
            f"(heads={n_heads}, dim={head_dim})",
            key="buffer.k_codes",
        )
    n_staged = k_codes.shape[1]
    if n_staged > capacity:
        # A cache saved with a larger buffer than the restoring config
        # previously crashed with a raw broadcast error here.
        raise GeometryError(
            f"buffer holds {n_staged} staged tokens but capacity is {capacity}",
            key="buffer.k_codes",
        )
    scales = {}
    for name in ("buffer.k_scale", "buffer.v_scale"):
        sc = np.asarray(_checked(arrays, name, verify), dtype=np.float64)
        if sc.size != n_heads:
            raise GeometryError(
                f"{name} has {sc.size} entries for {n_heads} heads", key=name
            )
        if not np.all(np.isfinite(sc)) or np.any(sc <= 0):
            raise CorruptValueError(f"{name} non-finite or non-positive", key=name)
        scales[name] = sc
    buffer = DecodeBuffer(
        n_heads, head_dim, capacity=capacity,
        k_scale=scales["buffer.k_scale"], v_scale=scales["buffer.v_scale"],
        clamp_code=clamp_code,
    )
    if n_staged:
        buffer.restore(k_codes, v_codes)
    return buffer


def state_from_arrays(arrays: Dict[str, np.ndarray]) -> TurboKVState:
    """Inverse of :func:`state_to_arrays`, with full validation.

    Raises a typed :class:`CacheCorruptionError` subclass on the first
    problem found; use :func:`salvage_state` to recover what's intact
    instead.
    """
    version = _schema_version(arrays)
    verify = version >= 2
    n_heads, head_dim, block_size, n_blocks, head_bits = _validate_meta(arrays, verify)
    cache = QuantizedKVCache(
        n_heads, head_dim, head_bits=head_bits, block_size=block_size
    )
    for i in range(n_blocks):
        cache.blocks.append(
            _load_block(arrays, i, n_heads, head_dim, block_size, verify)
        )
    buffer = _load_buffer(arrays, n_heads, head_dim, verify)
    state = TurboKVState(cache=cache, buffer=buffer, head_bits=head_bits)
    if verify:
        declared = _as_int(arrays, "meta.seq_len", verify)
        if declared != state.seq_len:
            raise GeometryError(
                f"declared seq_len {declared} != reconstructed {state.seq_len}",
                key="meta.seq_len",
            )
    return state


# --------------------------------------------------------------------------
# Salvage
# --------------------------------------------------------------------------

@dataclass
class SalvageResult:
    """Outcome of :func:`salvage_state`.

    The recovered ``state`` holds the longest *valid prefix* of the
    persisted sequence: blocks after the first corrupt one are dropped
    even if individually intact, because cache blocks are positional —
    keeping a later block would silently shift every token after the gap.
    """

    state: TurboKVState
    #: Block indices that failed validation (first one) or were dropped
    #: as a consequence (the rest).
    dropped_blocks: List[int] = field(default_factory=list)
    #: Whether the staged decode buffer had to be dropped.
    buffer_dropped: bool = False
    #: Token ranges ``[start, end)`` of the original sequence that must be
    #: recomputed (re-prefilled / re-appended) by the caller.
    recompute_ranges: List[Tuple[int, int]] = field(default_factory=list)
    #: The typed errors encountered, in walk order.
    errors: List[CacheCorruptionError] = field(default_factory=list)

    @property
    def intact(self) -> bool:
        return not self.dropped_blocks and not self.buffer_dropped

    @property
    def recovered_tokens(self) -> int:
        return self.state.seq_len

    def summary(self) -> str:
        if self.intact:
            return f"salvage: state intact ({self.recovered_tokens} tokens)"
        lost = ", ".join(f"[{s}, {e})" for s, e in self.recompute_ranges) or "none"
        return (
            f"salvage: kept {self.recovered_tokens} tokens, dropped "
            f"{len(self.dropped_blocks)} block(s)"
            f"{' + buffer' if self.buffer_dropped else ''}; recompute {lost}"
        )


def salvage_state(arrays: Dict[str, np.ndarray]) -> SalvageResult:
    """Best-effort recovery of a corrupted serialized state.

    Metadata must be intact (there is nothing to salvage without
    geometry) — a corrupt meta raises.  Blocks are validated in order;
    the first failure truncates the cache there.  A corrupt buffer is
    replaced by an empty one.  Every dropped token lands in
    ``recompute_ranges`` so the caller knows exactly what to regenerate —
    corruption is never silently decoded into garbage.
    """
    version = _schema_version(arrays)
    verify = version >= 2
    n_heads, head_dim, block_size, n_blocks, head_bits = _validate_meta(arrays, verify)

    result_errors: List[CacheCorruptionError] = []
    cache = QuantizedKVCache(
        n_heads, head_dim, head_bits=head_bits, block_size=block_size
    )
    dropped: List[int] = []
    declared_lengths: List[Optional[int]] = []
    for i in range(n_blocks):
        try:
            declared_lengths.append(_as_int(arrays, f"block{i}.length", False))
        except CacheCorruptionError:
            declared_lengths.append(None)
    first_bad: Optional[int] = None
    for i in range(n_blocks):
        try:
            block = _load_block(arrays, i, n_heads, head_dim, block_size, verify)
        except CacheCorruptionError as err:
            result_errors.append(err)
            first_bad = i
            break
        cache.blocks.append(block)
    if first_bad is not None:
        dropped = list(range(first_bad, n_blocks))

    buffer_dropped = False
    try:
        buffer = _load_buffer(arrays, n_heads, head_dim, verify)
    except CacheCorruptionError as err:
        result_errors.append(err)
        buffer_dropped = True
        capacity = block_size
        try:
            capacity = max(1, _as_int(arrays, "buffer.capacity", False))
        except CacheCorruptionError:
            pass
        buffer = DecodeBuffer(
            n_heads, head_dim, capacity=capacity,
            k_scale=np.ones((n_heads, 1, 1)), v_scale=np.ones((n_heads, 1, 1)),
        )
    if first_bad is not None and len(buffer):
        # Staged buffer tokens sit *after* the dropped blocks in sequence
        # order; keeping them would leave a gap.  Drop them (the frozen
        # scales stay — they are still the right scales for re-appends).
        buffer_dropped = True
        buffer = DecodeBuffer(
            n_heads, head_dim, capacity=buffer.capacity,
            k_scale=buffer.k_scale, v_scale=buffer.v_scale,
            clamp_code=buffer.clamp_code,
        )

    state = TurboKVState(cache=cache, buffer=buffer, head_bits=head_bits)

    # Token accounting: [0, kept) survives; everything after the first
    # corruption must be recomputed.
    kept = state.cache.seq_len
    total: Optional[int] = None
    try:
        total = _as_int(arrays, "meta.seq_len", False) if version >= 2 else None
    except CacheCorruptionError:
        total = None
    if total is None:
        # Legacy best-effort: declared block lengths + staged buffer.
        total = sum(x for x in declared_lengths if x is not None)
        if "buffer.k_codes" in arrays and not buffer_dropped:
            total += len(buffer)
        elif "buffer.k_codes" in arrays:
            kb = arrays["buffer.k_codes"]
            total += kb.shape[1] if getattr(kb, "ndim", 0) == 3 else 0
    recompute: List[Tuple[int, int]] = []
    end_valid = kept + (len(buffer) if not buffer_dropped and first_bad is None else 0)
    if first_bad is not None or buffer_dropped:
        if total > end_valid:
            recompute.append((end_valid, total))
    return SalvageResult(
        state=state,
        dropped_blocks=dropped,
        buffer_dropped=buffer_dropped,
        recompute_ranges=recompute,
        errors=result_errors,
    )


def state_digest(arrays: Dict[str, np.ndarray]) -> str:
    """Stable blake2b digest of a serialized state dict.

    Key-order independent (keys are walked sorted) and covers dtype,
    shape, and payload bytes of every array, so two dicts digest equal
    iff the persisted bytes would be equal.  Checkpointing
    (:mod:`repro.recover`) uses this as the snapshot identity a restart
    verifies before trusting the state.
    """
    h = hashlib.blake2b(digest_size=16)
    for key in sorted(arrays):
        arr = np.ascontiguousarray(np.asarray(arrays[key]))
        h.update(key.encode())
        h.update(str(arr.dtype).encode())
        h.update(np.asarray(arr.shape, dtype=np.int64).tobytes())
        h.update(arr.tobytes())
    return h.hexdigest()


def save_state(path, state: TurboKVState, checksums: bool = True) -> None:
    """Persist a state to ``path`` (npz)."""
    arrays = state_to_arrays(state, checksums=checksums)
    # npz keys cannot contain '/', dots are fine.
    np.savez(path, **arrays)


def load_state(path, salvage: bool = False):
    """Load a state persisted by :func:`save_state`.

    With ``salvage=False`` (default) returns a :class:`TurboKVState`,
    raising a typed :class:`CacheCorruptionError` on any damage.  With
    ``salvage=True`` returns a :class:`SalvageResult` recovering the
    longest valid prefix.
    """
    with np.load(path) as data:
        arrays = {k: data[k] for k in data.files}
    if salvage:
        return salvage_state(arrays)
    return state_from_arrays(arrays)

"""KV-state serialization.

Serving systems persist compressed caches (prefix caching, request
migration, host offload).  This module round-trips a
:class:`repro.core.turbo.TurboKVState` through a flat dict of NumPy arrays
— INT4/2 codes *actually packed* via :mod:`repro.quant.packing` and
integer scales/zeros as int16 — so the on-disk footprint matches the
library's storage accounting, and ``np.savez`` works directly.

Round-trip is exact: codes, scales, buffer contents, and head-bit
assignments are all preserved bit-for-bit (tested).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.buffer import DecodeBuffer
from repro.core.kvcache import CacheBlock, QuantizedKVCache
from repro.core.turbo import TurboKVState
from repro.quant.packing import pack_codes, unpack_codes
from repro.quant.progressive import ProgressiveBlock

__all__ = ["state_to_arrays", "state_from_arrays", "save_state", "load_state"]


def _pack_block(prefix: str, block: ProgressiveBlock, out: Dict[str, np.ndarray]) -> None:
    bits_arr = np.asarray(block.bits, dtype=np.int8)
    if bits_arr.ndim == 0:
        bits_arr = np.full((block.codes.shape[0], 1, 1), int(bits_arr), dtype=np.int8)
    out[f"{prefix}.bits"] = bits_arr
    out[f"{prefix}.shape"] = np.asarray(block.codes.shape, dtype=np.int64)
    out[f"{prefix}.s_int"] = block.s_int.astype(np.int16)
    out[f"{prefix}.z_int"] = block.z_int.astype(np.int16)
    # Stored float64 for an exact round-trip; the storage *accounting*
    # charges these at FP16 (ProgressiveBlock.storage_bits), matching what
    # a deployment would persist.
    out[f"{prefix}.float_scale"] = np.asarray(block.float_scale, dtype=np.float64)
    # Pack per head (heads may differ in width under mixed precision).
    for h in range(block.codes.shape[0]):
        width = int(bits_arr.reshape(-1)[h])
        packed, length = pack_codes(block.codes[h].reshape(-1), width)
        out[f"{prefix}.codes{h}"] = packed
        out[f"{prefix}.len{h}"] = np.asarray(length, dtype=np.int64)


def _unpack_block(prefix: str, arrays: Dict[str, np.ndarray]) -> ProgressiveBlock:
    bits_arr = arrays[f"{prefix}.bits"].astype(np.int32)
    shape = tuple(int(x) for x in arrays[f"{prefix}.shape"])
    codes = np.empty(shape, dtype=np.uint8)
    for h in range(shape[0]):
        width = int(bits_arr.reshape(-1)[h])
        length = int(arrays[f"{prefix}.len{h}"])
        codes[h] = unpack_codes(arrays[f"{prefix}.codes{h}"], width, length).reshape(
            shape[1:]
        )
    return ProgressiveBlock(
        codes=codes,
        s_int=arrays[f"{prefix}.s_int"].astype(np.int16),
        z_int=arrays[f"{prefix}.z_int"].astype(np.int16),
        bits=bits_arr,
        float_scale=arrays[f"{prefix}.float_scale"].astype(np.float64),
    )


def state_to_arrays(state: TurboKVState) -> Dict[str, np.ndarray]:
    """Flatten a KV state into named arrays (``np.savez``-compatible)."""
    cache = state.cache
    out: Dict[str, np.ndarray] = {
        "meta.n_heads": np.asarray(cache.n_heads, dtype=np.int64),
        "meta.head_dim": np.asarray(cache.head_dim, dtype=np.int64),
        "meta.block_size": np.asarray(cache.block_size, dtype=np.int64),
        "meta.head_bits": cache.head_bits.astype(np.int8),
        "meta.n_blocks": np.asarray(len(cache.blocks), dtype=np.int64),
    }
    for i, block in enumerate(cache.blocks):
        out[f"block{i}.length"] = np.asarray(block.length, dtype=np.int64)
        _pack_block(f"block{i}.k", block.k, out)
        _pack_block(f"block{i}.v", block.v, out)
    buf = state.buffer
    k_codes, v_codes = buf.codes()
    out["buffer.capacity"] = np.asarray(buf.capacity, dtype=np.int64)
    out["buffer.clamp_code"] = np.asarray(buf.clamp_code, dtype=np.int64)
    out["buffer.k_codes"] = k_codes.astype(np.int8)
    out["buffer.v_codes"] = v_codes.astype(np.int8)
    out["buffer.k_scale"] = buf.k_scale.astype(np.float64)
    out["buffer.v_scale"] = buf.v_scale.astype(np.float64)
    return out


def state_from_arrays(arrays: Dict[str, np.ndarray]) -> TurboKVState:
    """Inverse of :func:`state_to_arrays`."""
    n_heads = int(arrays["meta.n_heads"])
    head_dim = int(arrays["meta.head_dim"])
    head_bits = arrays["meta.head_bits"].astype(np.int32)
    cache = QuantizedKVCache(
        n_heads, head_dim, head_bits=head_bits,
        block_size=int(arrays["meta.block_size"]),
    )
    for i in range(int(arrays["meta.n_blocks"])):
        cache.blocks.append(
            CacheBlock(
                k=_unpack_block(f"block{i}.k", arrays),
                v=_unpack_block(f"block{i}.v", arrays),
                length=int(arrays[f"block{i}.length"]),
            )
        )
    buffer = DecodeBuffer(
        n_heads, head_dim,
        capacity=int(arrays["buffer.capacity"]),
        k_scale=arrays["buffer.k_scale"],
        v_scale=arrays["buffer.v_scale"],
        clamp_code=int(arrays["buffer.clamp_code"]),
    )
    k_codes = arrays["buffer.k_codes"]
    n_staged = k_codes.shape[1]
    if n_staged:
        buffer._k_codes[:, :n_staged, :] = k_codes
        buffer._v_codes[:, :n_staged, :] = arrays["buffer.v_codes"]
        buffer._len = n_staged
    return TurboKVState(cache=cache, buffer=buffer, head_bits=head_bits)


def save_state(path, state: TurboKVState) -> None:
    """Persist a state to ``path`` (npz)."""
    arrays = state_to_arrays(state)
    # npz keys cannot contain '/', dots are fine.
    np.savez(path, **arrays)


def load_state(path) -> TurboKVState:
    """Load a state persisted by :func:`save_state`."""
    with np.load(path) as data:
        return state_from_arrays({k: data[k] for k in data.files})

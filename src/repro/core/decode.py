"""TurboAttention decode kernel (paper Algorithm 2).

One autoregressive step: the new token's K/V are staged into the INT8
buffer (frozen universal scale, outliers clamped), the query is quantized
to INT8, and attention streams over

1. every progressive cache block — decompressed *to INT8* with pure integer
   arithmetic (``q1 = q2 * s_int + z_int``) — and
2. the current buffer contents, which are already INT8.

All score and output MatMuls are integer GEMMs; exponentiation is SAS.
After the attention, a full buffer is flushed into the cache (progressive
compression), so the number of cached FP16 bytes is always zero — the
property that distinguishes TurboAttention from KIVI/GEAR's FP16 residual
windows.

:func:`turbo_decode_step_split_k` is the FlashDecoding-composed variant:
cache blocks are partitioned into splits, each split runs the same integer
inner loop independently, and the partial ``(output, logsumexp)`` pairs
merge exactly (see :mod:`repro.attention.split_k`) — demonstrating the
paper's claim that TurboAttention slots into existing attention
schedulers.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.attention.split_k import merge_partials
from repro.core.buffer import DecodeBuffer
from repro.core.config import TurboConfig
from repro.core.kvcache import QuantizedKVCache
from repro.guard.escalation import PrecisionEscalator
from repro.guard.numerics import check_finite_tile, check_scale, guarded_int_matmul
from repro.guard.report import GuardConfig, GuardReport
from repro.quant.integer_gemm import int_matmul
from repro.quant.progressive import pq_decompress_to_int8
from repro.sas.softmax import shared_sas

__all__ = ["turbo_decode_step", "turbo_decode_steps", "turbo_decode_step_split_k"]

Span = Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]

_INT32_MAX = np.iinfo(np.int32).max


def _exp_fn(config: TurboConfig) -> Callable[[np.ndarray], np.ndarray]:
    if config.use_sas:
        return shared_sas(config.sas)
    return lambda x: np.where(np.isfinite(x), np.exp(np.minimum(x, 0.0)), 0.0)


def _quantize_query(q_t: np.ndarray, hkv: int, g: int, d: int, mc: int):
    qg = np.asarray(q_t, dtype=np.float64).reshape(hkv, g, 1, d)
    q_absmax = np.maximum(np.abs(qg).max(axis=(-2, -1), keepdims=True), 1e-12)
    q_scale = q_absmax / float(mc)
    qc = np.clip(np.rint(qg / q_scale), -mc, mc).astype(np.int8)
    return qc, q_scale


def _attend_spans(
    spans: Sequence[Span],
    qc: np.ndarray,
    q_scale: np.ndarray,
    config: TurboConfig,
    exp: Callable[[np.ndarray], np.ndarray],
    scale: float,
    hkv: int,
    g: int,
    d: int,
    guard: Optional[GuardConfig] = None,
    report: Optional[GuardReport] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Run Algorithm 2's integer inner loop over a list of INT8 spans.

    Returns the normalized partial output ``(hkv, g, 1, d)`` and its
    logsumexp ``(hkv, g, 1)`` — the mergeable split-K contract.

    The unguarded integer path dispatches to
    :func:`_attend_spans_batched`, which produces bit-identical results
    from whole-history GEMMs instead of a per-span loop; the span loop
    below remains the reference (and the guard/ablation path, which needs
    per-span scale screening and FP16 MatMuls).
    """
    if (
        guard is None
        and config.quantize_matmuls
        and len(spans) > 0
        and qc.shape[-2] == 1
    ):
        batched = _attend_spans_batched(
            spans, qc, q_scale, config, exp, scale, hkv, g, d
        )
        if batched is not None:
            return batched
    mc = config.int8_max_code

    def _imatmul(a, b, where):
        if guard is not None:
            return guarded_int_matmul(a, b, where, guard, report)
        return int_matmul(a, b)

    m = np.full((hkv, g, 1), -np.inf)
    l = np.zeros((hkv, g, 1))
    acc = np.zeros((hkv, g, 1, d))
    for i, (k_codes, v_codes, k_scale, v_scale) in enumerate(spans):
        if guard is not None:
            # A restored/corrupted span can carry degenerate scales; the
            # codes themselves are integers and cannot be non-finite.
            k_scale = check_scale(k_scale, f"decode span {i} k scale", guard, report)
            v_scale = check_scale(v_scale, f"decode span {i} v scale", guard, report)
        s_tile = (
            q_scale
            * np.reshape(k_scale, (hkv, 1, 1, 1))
            * _imatmul(
                qc, np.swapaxes(k_codes, -1, -2)[:, None, :, :], f"decode qk span {i}"
            )
        ) * scale
        m_new = np.maximum(m, s_tile.max(axis=-1))
        with np.errstate(invalid="ignore"):
            corr = exp(m - m_new)
        corr = np.where(np.isfinite(m), corr, 0.0)
        p = exp(s_tile - m_new[..., None])
        l = corr * l + p.sum(axis=-1)
        if config.quantize_matmuls:
            p_absmax = np.maximum(np.abs(p).max(axis=(-2, -1), keepdims=True), 1e-12)
            p_scale = p_absmax / float(mc)
            pc = np.clip(np.rint(p / p_scale), -mc, mc).astype(np.int8)
            pv = (
                p_scale
                * np.reshape(v_scale, (hkv, 1, 1, 1))
                * _imatmul(pc, v_codes[:, None, :, :], f"decode pv span {i}")
            )
        else:
            pv = p @ (
                v_codes.astype(np.float64) * np.reshape(v_scale, (hkv, 1, 1))
            )[:, None, :, :]
        acc = corr[..., None] * acc + pv
        m = m_new
    safe_l = np.where(l > 0, l, 1.0)
    out = acc / safe_l[..., None]
    lse = np.where(l > 0, m + np.log(safe_l), -np.inf)
    return out, lse


def _attend_spans_batched(
    spans: Sequence[Span],
    qc: np.ndarray,
    q_scale: np.ndarray,
    config: TurboConfig,
    exp: Callable[[np.ndarray], np.ndarray],
    scale: float,
    hkv: int,
    g: int,
    d: int,
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Flattened Algorithm 2 inner loop: one QK GEMM and one segmented PV
    reduction over the concatenated history, bit-identical to the span
    loop in :func:`_attend_spans`.

    Why identical: integer GEMM columns are independent, so slicing one
    concatenated product equals per-span products; ``max`` is exact in
    any order, so segmented ``maximum.reduceat`` + ``maximum.accumulate``
    reproduces the running-max trajectory; the exponential and the
    quantizer are element-wise, so one batched call over the row equals
    per-span calls; and the ``l``/``acc`` online-softmax folds keep the
    original per-span recursion (floats are order-sensitive there — each
    span's probability sum still uses the same pairwise ``.sum`` on the
    same-length slice).  Returns ``None`` when a worst-case accumulator
    bound cannot be certified int32-safe — the caller's loop (and its
    per-span overflow policy) then runs instead.
    """
    mc = config.int8_max_code
    nseg = len(spans)
    lens = np.array([s[0].shape[-2] for s in spans], dtype=np.int64)
    starts = np.zeros(nseg, dtype=np.int64)
    np.cumsum(lens[:-1], out=starts[1:])
    k_all = np.concatenate([s[0] for s in spans], axis=-2)
    v_all = np.concatenate([s[1] for s in spans], axis=-2)
    # The scalar loop's overflow guard triggers per span; bail to it when
    # the batched bound (which is only ever looser) cannot rule overflow
    # out, so the policy fires with the scalar path's exact semantics.
    k_amax = int(np.max(np.abs(k_all), initial=0))
    v_amax = int(np.max(np.abs(v_all), initial=0))
    q_amax = int(np.max(np.abs(qc), initial=0))
    if q_amax * k_amax * d > _INT32_MAX or mc * v_amax * int(lens.max()) > _INT32_MAX:
        return None

    gemm = int_matmul(qc, np.swapaxes(k_all, -1, -2)[:, None, :, :])
    qk_scale = q_scale * np.stack(
        [np.reshape(s[2], (hkv, 1, 1)) for s in spans], axis=-1
    ).reshape(hkv, 1, 1, nseg)
    s_row = (np.repeat(qk_scale, lens, axis=-1) * gemm) * scale

    # Segmented max: ``max`` returns one of its inputs, so any grouping is
    # exact.  Uniform spans (the common case — cache blocks share one
    # block size) reshape to a dense axis; ragged histories fall back to
    # reduceat.
    uniform = bool((lens == lens[0]).all())
    if uniform:
        seg_view = s_row.reshape(hkv, g, 1, nseg, int(lens[0]))
        smax = seg_view.max(axis=-1)
    else:
        smax = np.maximum.reduceat(s_row, starts, axis=-1)
    m_new = np.maximum.accumulate(smax, axis=-1)
    m_prev = np.concatenate(
        [np.full((hkv, g, 1, 1), -np.inf), m_new[..., :-1]], axis=-1
    )
    with np.errstate(invalid="ignore"):
        corr_all = exp(m_prev - m_new)
    corr_all = np.where(np.isfinite(m_prev), corr_all, 0.0)
    p = exp(s_row - np.repeat(m_new, lens, axis=-1))

    abs_p = np.abs(p)
    if uniform:
        seg_absmax = abs_p.reshape(hkv, g, 1, nseg, int(lens[0])).max(axis=-1)
    else:
        seg_absmax = np.maximum.reduceat(abs_p, starts, axis=-1)
    p_absmax = np.maximum(seg_absmax, 1e-12)
    p_scale = p_absmax / float(mc)
    pc = np.clip(np.rint(p / np.repeat(p_scale, lens, axis=-1)), -mc, mc).astype(
        np.int8
    )
    # Segmented PV, one integer GEMM per history: the int32 headroom
    # check above certifies every product and partial sum is an exactly
    # representable float64 integer, so BLAS dgemm over the codes *is*
    # the per-span integer GEMM result (see repro.quant.integer_gemm).
    pcf = pc.astype(np.float64)[:, :, 0, :]
    vf = v_all.astype(np.float64)
    if uniform:
        length = int(lens[0])
        pv_seg = (
            pcf.reshape(hkv, g, nseg, 1, length)
            @ vf.reshape(hkv, nseg, length, d)[:, None, :, :, :]
        )[:, :, :, 0, :]
    else:
        pv_seg = np.empty((hkv, g, nseg, d), dtype=np.float64)
        for j in range(nseg):
            sl = slice(starts[j], starts[j] + lens[j])
            pv_seg[:, :, j, :] = (pcf[:, :, None, sl] @ vf[:, None, sl, :])[
                :, :, 0, :
            ]

    l = np.zeros((hkv, g, 1))
    acc = np.zeros((hkv, g, 1, d))
    for j in range(nseg):
        sl = slice(starts[j], starts[j] + lens[j])
        corr = corr_all[..., j]
        l = corr * l + p[..., sl].sum(axis=-1)
        pv = p_scale[..., j : j + 1] * np.reshape(
            spans[j][3], (hkv, 1, 1, 1)
        ) * pv_seg[:, :, j : j + 1, :]
        acc = corr[..., None] * acc + pv
    safe_l = np.where(l > 0, l, 1.0)
    out = acc / safe_l[..., None]
    lse = np.where(l > 0, m_new[..., -1] + np.log(safe_l), -np.inf)
    return out, lse


def _gather_spans(cache: QuantizedKVCache, buffer: DecodeBuffer) -> List[Span]:
    spans: List[Span] = [
        (k_codes, v_codes, k_sc, v_sc)
        for k_codes, v_codes, k_sc, v_sc, _length in cache.iter_decompressed()
    ]
    buf_k, buf_v = buffer.codes()
    if buf_k.shape[-2] > 0:
        spans.append((buf_k, buf_v, buffer.k_scale, buffer.v_scale))
    return spans


def _flush_full_buffer(
    cache: QuantizedKVCache,
    buffer: DecodeBuffer,
    escalator: Optional[PrecisionEscalator],
    report: Optional[GuardReport],
) -> None:
    """Flush the buffer into a cache block, consulting the escalator.

    With an escalator, the flushed block's saturation stats update the
    per-head bit assignments *before* the block is compressed — the block
    that triggered escalation is already stored at the wider width — and
    clamp-hot heads regrow the frozen scale at this (empty-buffer)
    boundary.
    """
    if escalator is None:
        cache.append_block(*buffer.drain())
        return
    k_codes, v_codes, k_sc, v_sc = buffer.drain()
    decision = escalator.observe_flush(
        k_codes, v_codes, k_sc, v_sc, buffer.last_clamp_fraction, report
    )
    if decision.changed:
        cache.set_head_bits(decision.head_bits)
    cache.append_block(k_codes, v_codes, k_sc, v_sc)
    if decision.clamp_hot.any():
        grew = buffer.grow_scale(decision.clamp_hot)
        if grew and report is not None:
            report.scale_regrows += grew
            report.record(f"scale_regrow:{grew} heads")


def _prepare_step(
    q_t: np.ndarray,
    k_t: np.ndarray,
    v_t: np.ndarray,
    cache: QuantizedKVCache,
    buffer: DecodeBuffer,
    config: TurboConfig,
    scale: Optional[float],
    guard: Optional[GuardConfig] = None,
    report: Optional[GuardReport] = None,
    escalator: Optional[PrecisionEscalator] = None,
):
    q_t = np.asarray(q_t, dtype=np.float64)
    hq, d = q_t.shape
    hkv = cache.n_heads
    if hq % hkv != 0:
        raise ValueError(f"q_heads {hq} not a multiple of kv_heads {hkv}")
    g = hq // hkv
    if scale is None:
        scale = 1.0 / np.sqrt(d)
    wants_fallback = False
    if guard is not None:
        q_t, fb_q = check_finite_tile(q_t, "decode q_t", guard, report)
        k_t, fb_k = check_finite_tile(
            np.asarray(k_t, dtype=np.float64), "decode k_t", guard, report
        )
        v_t, fb_v = check_finite_tile(
            np.asarray(v_t, dtype=np.float64), "decode v_t", guard, report
        )
        wants_fallback = fb_q or fb_k or fb_v
    if buffer.is_full:
        _flush_full_buffer(cache, buffer, escalator, report)
    buffer.append(k_t, v_t)
    qc, q_scale = _quantize_query(q_t, hkv, g, d, config.int8_max_code)
    return qc, q_scale, scale, hq, hkv, g, d, q_t, wants_fallback


def _reference_step_from_spans(
    spans: Sequence[Span],
    q_t: np.ndarray,
    scale: float,
    hkv: int,
    g: int,
    d: int,
) -> np.ndarray:
    """FP16-reference decode: dequantize every span and run exact softmax
    attention — the fallback path for a guard-flagged step.

    The cache stores only codes + scales, so ``codes * scale`` *is* the
    reference-precision view of the history; what this path removes is the
    integer score/output arithmetic and SAS for the poisoned step.
    """
    k_f = np.concatenate(
        [c.astype(np.float64) * np.reshape(s, (hkv, 1, 1)) for c, _, s, _ in spans],
        axis=-2,
    )
    v_f = np.concatenate(
        [c.astype(np.float64) * np.reshape(s, (hkv, 1, 1)) for _, c, _, s in spans],
        axis=-2,
    )
    qg = q_t.reshape(hkv, g, 1, d)
    s = (qg @ np.swapaxes(k_f, -1, -2)[:, None, :, :]) * scale
    m = s.max(axis=-1, keepdims=True)
    p = np.exp(s - m)
    p = p / p.sum(axis=-1, keepdims=True)
    return p @ v_f[:, None, :, :]


def turbo_decode_step(
    q_t: np.ndarray,
    k_t: np.ndarray,
    v_t: np.ndarray,
    cache: QuantizedKVCache,
    buffer: DecodeBuffer,
    config: TurboConfig,
    scale: Optional[float] = None,
    guard: Optional[GuardConfig] = None,
    report: Optional[GuardReport] = None,
    escalator: Optional[PrecisionEscalator] = None,
) -> np.ndarray:
    """One decode step.

    Parameters
    ----------
    q_t:
        Query for the new token, shape ``(q_heads, head_dim)``.
    k_t, v_t:
        The new token's key/value, shape ``(kv_heads, head_dim)``; staged
        into the buffer before attention so the token attends to itself.
    cache, buffer:
        State produced by :func:`repro.core.prefill.turbo_prefill` (and
        mutated by previous decode steps).
    config:
        Kernel hyper-parameters.
    scale:
        Score scale, default ``1/sqrt(head_dim)``.
    guard:
        Optional numerics guard: step inputs are screened for NaN/Inf,
        span scales for degeneracy, and the integer GEMMs get the
        recoverable overflow guard.  Under the ``fallback`` policy a
        poisoned step reruns through the FP16 reference path over the
        dequantized history.
    report:
        Counter sink (created automatically when ``guard`` is given).
    escalator:
        Optional adaptive-precision escalator consulted at every buffer
        flush (see :mod:`repro.guard.escalation`).

    Returns
    -------
    Attention output for the token, shape ``(q_heads, head_dim)``.
    """
    if guard is not None and report is None:
        report = GuardReport()
    qc, q_scale, scale, hq, hkv, g, d, q_f, wants_fallback = _prepare_step(
        q_t, k_t, v_t, cache, buffer, config, scale, guard, report, escalator
    )
    spans = _gather_spans(cache, buffer)
    if wants_fallback:
        report.fallback_steps += 1
        report.record("fallback_step:decode")
        out = _reference_step_from_spans(spans, q_f, scale, hkv, g, d)
        return out.reshape(hq, d)
    exp = _exp_fn(config)
    out, _lse = _attend_spans(
        spans, qc, q_scale, config, exp, scale, hkv, g, d, guard, report
    )
    return out.reshape(hq, d)


def turbo_decode_steps(
    qs: np.ndarray,
    ks: np.ndarray,
    vs: np.ndarray,
    cache: QuantizedKVCache,
    buffer: DecodeBuffer,
    config: TurboConfig,
    scale: Optional[float] = None,
    guard: Optional[GuardConfig] = None,
    report: Optional[GuardReport] = None,
    escalator: Optional[PrecisionEscalator] = None,
) -> np.ndarray:
    """Decode a run of tokens: bit-exact to calling
    :func:`turbo_decode_step` once per token, amortizing the per-step
    fixed costs across the run.

    ``qs``/``ks``/``vs`` have shapes ``(steps, q_heads, head_dim)`` and
    ``(steps, kv_heads, head_dim)``; the result is ``(steps, q_heads,
    head_dim)`` with row ``t`` identical to the per-token call (the
    cache/buffer mutations interleave in the same order).  Two costs
    collapse: cache blocks are decompressed *once when they first appear*
    instead of once per step — blocks are immutable after
    :meth:`~repro.core.kvcache.QuantizedKVCache.append_block`, so the
    INT8 view never changes — and the SAS callable is resolved once.
    Guarded runs fall back to the per-token loop: the guard screens every
    span's scales per step, and that bookkeeping is the semantics.
    """
    qs = np.asarray(qs, dtype=np.float64)
    ks = np.asarray(ks, dtype=np.float64)
    vs = np.asarray(vs, dtype=np.float64)
    steps = qs.shape[0]
    if ks.shape[0] != steps or vs.shape[0] != steps:
        raise ValueError("qs/ks/vs must carry the same number of tokens")
    if steps == 0:
        return np.zeros(qs.shape, dtype=np.float64)
    if guard is not None:
        if report is None:
            report = GuardReport()
        return np.stack(
            [
                turbo_decode_step(
                    qs[t], ks[t], vs[t], cache, buffer, config,
                    scale=scale, guard=guard, report=report,
                    escalator=escalator,
                )
                for t in range(steps)
            ]
        )
    exp = _exp_fn(config)
    cache_spans: List[Span] = [
        (kc, vc, ksc, vsc) for kc, vc, ksc, vsc, _len in cache.iter_decompressed()
    ]
    out = None
    for t in range(steps):
        qc, q_scale, scale_t, hq, hkv, g, d, _qf, _fb = _prepare_step(
            qs[t], ks[t], vs[t], cache, buffer, config, scale,
            escalator=escalator,
        )
        # A flush inside _prepare_step appended new (immutable) blocks;
        # decompress only those.
        while len(cache_spans) < len(cache.blocks):
            block = cache.blocks[len(cache_spans)]
            cache_spans.append(
                (
                    pq_decompress_to_int8(block.k),
                    pq_decompress_to_int8(block.v),
                    block.k.float_scale,
                    block.v.float_scale,
                )
            )
        spans = list(cache_spans)
        buf_k, buf_v = buffer.codes()
        if buf_k.shape[-2] > 0:
            spans.append((buf_k, buf_v, buffer.k_scale, buffer.v_scale))
        step_out, _lse = _attend_spans(
            spans, qc, q_scale, config, exp, scale_t, hkv, g, d
        )
        if out is None:
            out = np.empty((steps, hq, d), dtype=np.float64)
        out[t] = step_out.reshape(hq, d)
    return out


def turbo_decode_step_split_k(
    q_t: np.ndarray,
    k_t: np.ndarray,
    v_t: np.ndarray,
    cache: QuantizedKVCache,
    buffer: DecodeBuffer,
    config: TurboConfig,
    n_splits: int = 4,
    scale: Optional[float] = None,
) -> np.ndarray:
    """Split-K decode: the cache's spans are partitioned across
    ``n_splits`` independent workers whose partials merge exactly.

    Identical output (up to float addition order) to
    :func:`turbo_decode_step`; exists to demonstrate — and test — that the
    quantized path composes with FlashDecoding-style scheduling.
    """
    if n_splits < 1:
        raise ValueError("n_splits must be >= 1")
    qc, q_scale, scale, hq, hkv, g, d, _q_f, _fb = _prepare_step(
        q_t, k_t, v_t, cache, buffer, config, scale
    )
    exp = _exp_fn(config)
    spans = _gather_spans(cache, buffer)
    n_splits = min(n_splits, len(spans))
    bounds = np.linspace(0, len(spans), n_splits + 1, dtype=int)
    outs, lses = [], []
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        if hi == lo:
            continue
        out, lse = _attend_spans(
            spans[lo:hi], qc, q_scale, config, exp, scale, hkv, g, d
        )
        outs.append(out)
        lses.append(lse)
    merged, _ = merge_partials(outs, lses)
    return merged.reshape(hq, d)

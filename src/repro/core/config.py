"""TurboAttention configuration.

Defaults follow §5.2 of the paper: block sizes ``B_r = B_c = 64``, decode
buffer ``n_b = 64``, SAS threshold ``n_r = -6``, and head-wise mixed
precision with half the heads at 2-bit (the rest at 4-bit).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sas.softmax import SASConfig

__all__ = ["TurboConfig"]


@dataclass(frozen=True)
class TurboConfig:
    """Hyper-parameters of the TurboAttention kernels.

    Attributes
    ----------
    block_q:
        Query tile size ``B_r``.
    block_k:
        Key/value tile size ``B_c`` (also the cache block size).
    buffer_size:
        Decode buffer capacity ``n_b``; the buffer flushes into the
        progressive cache every ``buffer_size`` generated tokens.
    kv_bits:
        Storage bit-width of the KV cache when mixed precision is off.
    mixed_precision:
        Enable head-wise 2/4-bit mixed precision (§3.2).
    two_bit_fraction:
        Fraction of heads compressed to 2-bit under mixed precision; the
        paper uses 0.5.
    head_selection:
        Name of the head-selection metric: ``"priority"`` (Eq. 11) or one of
        the ablation baselines ``"entropy"`` / ``"minmax"`` /
        ``"variation"`` / ``"random"``.
    sas:
        SAS configuration; set ``use_sas=False`` to fall back to exact FP32
        exponentiation (the FlashQ-only ablation of Table 4).
    use_sas:
        Whether the kernels use SAS or exact ``exp``.
    quantize_matmuls:
        Whether the QK^T and PV MatMuls run on INT8 codes (FlashQ).  With
        this off and ``use_sas=True`` the kernels become the SAS-only
        ablation of Table 4.
    int8_max_code:
        Symmetric INT8 code bound; the paper uses 119 to leave clamping
        headroom (Algorithm 1).
    clamp_code:
        Clamp bound applied when decode tokens are quantized with the
        frozen universal scale (§3.3).
    """

    block_q: int = 64
    block_k: int = 64
    buffer_size: int = 64
    kv_bits: int = 4
    mixed_precision: bool = False
    two_bit_fraction: float = 0.5
    head_selection: str = "priority"
    sas: SASConfig = field(default_factory=SASConfig)
    use_sas: bool = True
    quantize_matmuls: bool = True
    int8_max_code: int = 119
    clamp_code: int = 119

    def __post_init__(self) -> None:
        if self.block_q <= 0 or self.block_k <= 0:
            raise ValueError("block sizes must be positive")
        if self.buffer_size <= 0:
            raise ValueError("buffer_size must be positive")
        if self.kv_bits not in (2, 3, 4, 8):
            raise ValueError(f"unsupported kv_bits: {self.kv_bits}")
        if not 0.0 <= self.two_bit_fraction <= 1.0:
            raise ValueError("two_bit_fraction must lie in [0, 1]")
        if self.head_selection not in ("priority", "entropy", "minmax", "variation", "random"):
            raise ValueError(f"unknown head_selection: {self.head_selection!r}")
        if not 1 <= self.int8_max_code <= 127:
            raise ValueError("int8_max_code must lie in [1, 127]")

    def average_kv_bits(self) -> float:
        """Nominal average code bits per cached value (excl. metadata)."""
        if not self.mixed_precision:
            return float(self.kv_bits)
        return 2.0 * self.two_bit_fraction + 4.0 * (1.0 - self.two_bit_fraction)

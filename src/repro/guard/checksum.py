"""Array checksums for corruption-safe KV persistence.

One CRC32 per serialized array, computed over the dtype descriptor, the
shape, and the raw payload bytes — so a bit flip, a silently reshaped
array, and a dtype swap are all detected.  Kept in its own dependency-free
module because both the serializer (:mod:`repro.core.serialization`) and
the chaos injector (:mod:`repro.guard.chaos`) need it without importing
each other.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["array_crc32", "checksum_key", "is_checksum_key", "base_key"]

_PREFIX = "crc."


def array_crc32(arr: np.ndarray) -> int:
    """CRC32 over an array's dtype, shape, and contiguous payload."""
    arr = np.asarray(arr)
    header = f"{arr.dtype.str}|{arr.shape}".encode()
    crc = zlib.crc32(header)
    crc = zlib.crc32(np.ascontiguousarray(arr).tobytes(), crc)
    return crc & 0xFFFFFFFF


def checksum_key(key: str) -> str:
    """Serialized-dict key holding the CRC of array ``key``."""
    return _PREFIX + key


def is_checksum_key(key: str) -> bool:
    return key.startswith(_PREFIX)


def base_key(key: str) -> str:
    """Inverse of :func:`checksum_key`."""
    return key[len(_PREFIX):] if is_checksum_key(key) else key

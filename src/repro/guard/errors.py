"""Typed failure modes of the guarded quantized-attention pipeline.

Two families:

* :class:`NumericsError` — a runtime numerics hazard (non-finite tile,
  degenerate scale, accumulator overflow) surfaced under the ``raise``
  guard policy.  Carries the check name and tile location so operators can
  correlate with request logs.
* :class:`CacheCorruptionError` — a persisted KV state failed validation
  on load.  Subclasses distinguish *how* it failed (schema, checksum,
  geometry, value range) so callers can decide between hard-fail and
  salvage.
"""

from __future__ import annotations

__all__ = [
    "NumericsError",
    "CacheCorruptionError",
    "SchemaError",
    "ChecksumMismatchError",
    "GeometryError",
    "CorruptValueError",
]


class NumericsError(RuntimeError):
    """A numerics guard check failed under the ``raise`` policy.

    Attributes
    ----------
    check:
        Which guard tripped (``"nonfinite"``, ``"bad_scale"``,
        ``"overflow"``).
    where:
        Human-readable tile/span location (e.g. ``"prefill k tile 3"``).
    """

    def __init__(self, check: str, where: str, detail: str = ""):
        self.check = check
        self.where = where
        msg = f"numerics guard [{check}] tripped at {where}"
        if detail:
            msg += f": {detail}"
        super().__init__(msg)


class CacheCorruptionError(Exception):
    """Base class: a persisted KV state failed load-time validation.

    Attributes
    ----------
    key:
        The serialized-array key implicated (empty when the failure is not
        attributable to a single array).
    """

    def __init__(self, message: str, key: str = ""):
        self.key = key
        super().__init__(message)


class SchemaError(CacheCorruptionError):
    """Missing/unknown schema tag or a required array is absent entirely
    (e.g. a truncated file that lost whole members)."""


class ChecksumMismatchError(CacheCorruptionError):
    """An array's stored CRC32 does not match its payload."""

    def __init__(self, key: str, expected: int, actual: int):
        self.expected = expected
        self.actual = actual
        super().__init__(
            f"checksum mismatch for {key!r}: stored {expected:#010x}, "
            f"computed {actual:#010x}",
            key=key,
        )


class GeometryError(CacheCorruptionError):
    """Array shapes/lengths are inconsistent with the state's metadata
    (wrong head count, staged tokens exceeding buffer capacity, block
    longer than ``block_size``, packed payload shorter than declared)."""


class CorruptValueError(CacheCorruptionError):
    """Array contents are semantically invalid even though shapes agree
    (non-finite or non-positive scales, zero integer scales, bit-widths
    outside {2, 3, 4, 8})."""

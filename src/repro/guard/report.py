"""Guard policy configuration and the run report.

The analytic bounds in :mod:`repro.quant.bounds` say how far quantization
*may* drift; this module is how the runtime reacts when a tile is outside
the regime those bounds assume (non-finite values, degenerate scales, an
accumulator with no headroom).  Each check carries one of three policies:

* ``raise``    — fail loudly with a typed :class:`~repro.guard.errors.NumericsError`.
* ``sanitize`` — repair in place (zero non-finite values, floor bad
  scales) and count the repair.
* ``fallback`` — repair, then reroute the offending tile/step through the
  FP16 reference path and record that it happened.

A :class:`GuardReport` accumulates counters across prefill and every
decode step — the ``ClusterMetrics``-style observability surface the
escalator and the harness read.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.guard.escalation import EscalationConfig

__all__ = ["GuardPolicy", "GuardConfig", "GuardReport"]


class GuardPolicy(str, enum.Enum):
    """Reaction to a failed numerics check."""

    RAISE = "raise"
    SANITIZE = "sanitize"
    FALLBACK = "fallback"


@dataclass(frozen=True)
class GuardConfig:
    """Numerics-guard knobs.

    Attributes
    ----------
    on_nonfinite:
        Policy when a Q/K/V tile (or decode-step input) contains NaN/Inf.
    on_bad_scale:
        Policy when a quantization scale is non-finite, zero, or below
        ``scale_floor``.  ``fallback`` behaves like ``sanitize`` for
        cached spans — the original floats no longer exist, so the best
        recovery is a floored scale — but is still counted separately.
    on_overflow:
        Policy when the worst-case INT32 accumulator for an integer GEMM
        exceeds ``headroom_fraction`` of the INT32 range.  ``sanitize``
        and ``fallback`` both reroute through chunked accumulation
        (:func:`repro.quant.integer_gemm.int_matmul` with
        ``on_overflow="chunk"``), which is exact.
    scale_floor:
        Smallest scale considered healthy.
    headroom_fraction:
        Fraction of the INT32 range the worst-case accumulator may use
        before the overflow guard trips.
    escalation:
        Optional adaptive-precision escalation config
        (:class:`repro.guard.escalation.EscalationConfig`); ``None``
        disables escalation.
    """

    on_nonfinite: GuardPolicy = GuardPolicy.FALLBACK
    on_bad_scale: GuardPolicy = GuardPolicy.SANITIZE
    on_overflow: GuardPolicy = GuardPolicy.FALLBACK
    scale_floor: float = 1e-30
    headroom_fraction: float = 1.0
    escalation: Optional["EscalationConfig"] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "on_nonfinite", GuardPolicy(self.on_nonfinite))
        object.__setattr__(self, "on_bad_scale", GuardPolicy(self.on_bad_scale))
        object.__setattr__(self, "on_overflow", GuardPolicy(self.on_overflow))
        if not 0.0 < self.headroom_fraction <= 1.0:
            raise ValueError("headroom_fraction must lie in (0, 1]")
        if self.scale_floor <= 0.0:
            raise ValueError("scale_floor must be positive")


@dataclass
class GuardReport:
    """Mutable counters describing what the guards saw and did.

    All counters are monotone; ``merge`` folds another report in (useful
    when prefill and decode keep separate reports).
    """

    checks_run: int = 0
    nonfinite_tiles: int = 0
    sanitized_values: int = 0
    bad_scales: int = 0
    fallback_tiles: int = 0
    fallback_steps: int = 0
    overflow_chunked: int = 0
    escalations: int = 0
    deescalations: int = 0
    hot_flushes: int = 0
    bound_violations: int = 0
    scale_regrows: int = 0
    events: List[str] = field(default_factory=list)

    #: Cap on retained event strings (counters keep counting past it).
    max_events: int = 128

    def record(self, event: str) -> None:
        if len(self.events) < self.max_events:
            self.events.append(event)

    def merge(self, other: "GuardReport") -> "GuardReport":
        for name in self._counter_names():
            setattr(self, name, getattr(self, name) + getattr(other, name))
        for event in other.events:
            self.record(event)
        return self

    @staticmethod
    def _counter_names():
        return (
            "checks_run", "nonfinite_tiles", "sanitized_values", "bad_scales",
            "fallback_tiles", "fallback_steps", "overflow_chunked",
            "escalations", "deescalations", "hot_flushes",
            "bound_violations", "scale_regrows",
        )

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self._counter_names()}

    @property
    def clean(self) -> bool:
        """True when no guard ever fired (checks may still have run)."""
        return all(
            getattr(self, name) == 0
            for name in self._counter_names()
            if name != "checks_run"
        )

    def summary(self) -> str:
        fired = {k: v for k, v in self.as_dict().items() if k != "checks_run" and v}
        if not fired:
            return f"guard: clean ({self.checks_run} checks)"
        inner = ", ".join(f"{k}={v}" for k, v in sorted(fired.items()))
        return f"guard: {inner} ({self.checks_run} checks)"

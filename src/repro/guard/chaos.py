"""Seeded corruption injector for persisted KV states (guard layer 3's
test driver).

Operates on the flat array dict produced by
:func:`repro.core.serialization.state_to_arrays` — the exact bytes a
deployment would persist — so every corruption a disk, network, or
truncated write can produce is reproducible from a seed:

* ``bit_flip``   — one bit flipped inside a packed code payload (disk/DMA
  rot; only a checksum can catch it, the mutated byte is valid data).
* ``scale_zero`` — a stored quantization scale zeroed (the classic
  "garbage block decodes to silence" failure).
* ``nan_poison`` — NaN written into a float scale array.
* ``truncate``   — a trailing array dropped wholesale, as a truncated
  ``.npz`` member list would present.

By default a corruption leaves the stored CRC32 stale, so the checksum
layer detects it.  ``stealth=True`` re-stamps the checksum after
mutating — modelling corruption *before* the checksum was computed (or an
adversarial writer) — which forces detection down onto the semantic
validators (finite/positive scales, geometry).  A stealthy ``bit_flip``
is explicitly undetectable-by-design: the flipped code is legal data,
which is precisely the argument for checksumming at write time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.guard.checksum import array_crc32, checksum_key, is_checksum_key

__all__ = ["CORRUPTION_KINDS", "ChaosEvent", "ChaosInjector"]

#: Every corruption kind the injector can produce.
CORRUPTION_KINDS = ("bit_flip", "scale_zero", "nan_poison", "truncate")


@dataclass(frozen=True)
class ChaosEvent:
    """One injected corruption: what was done to which array."""

    kind: str
    key: str
    detail: str
    #: Whether the stored checksum was re-stamped to match the corruption.
    stealth: bool = False


class ChaosInjector:
    """Deterministic, seeded corruption of a serialized state dict."""

    def __init__(self, seed: int = 0):
        self.rng = np.random.default_rng(seed)

    # -- target selection ------------------------------------------------
    @staticmethod
    def _code_keys(arrays: Dict[str, np.ndarray]) -> List[str]:
        return sorted(
            k for k in arrays
            if not is_checksum_key(k)
            and (".codes" in k or k in ("buffer.k_codes", "buffer.v_codes"))
            and arrays[k].size > 0
        )

    @staticmethod
    def _scale_keys(arrays: Dict[str, np.ndarray]) -> List[str]:
        return sorted(
            k for k in arrays
            if not is_checksum_key(k)
            and (k.endswith(".float_scale") or k in ("buffer.k_scale", "buffer.v_scale"))
            and arrays[k].size > 0
        )

    def _pick(self, keys: List[str]) -> str:
        if not keys:
            raise ValueError("no eligible arrays to corrupt")
        return keys[int(self.rng.integers(len(keys)))]

    # -- corruption ------------------------------------------------------
    def corrupt(
        self,
        arrays: Dict[str, np.ndarray],
        kind: str,
        stealth: bool = False,
    ) -> Tuple[Dict[str, np.ndarray], ChaosEvent]:
        """Return a corrupted copy of ``arrays`` plus the event record.

        The input dict is not modified; mutated arrays are copies.
        """
        if kind not in CORRUPTION_KINDS:
            raise ValueError(f"unknown corruption kind: {kind!r}")
        out = dict(arrays)
        if kind == "bit_flip":
            key = self._pick(self._code_keys(out))
            arr = out[key].copy()
            flat = arr.reshape(-1).view(np.uint8)
            idx = int(self.rng.integers(flat.size))
            bit = int(self.rng.integers(8))
            flat[idx] ^= np.uint8(1 << bit)
            out[key] = arr
            detail = f"byte {idx} bit {bit}"
        elif kind == "scale_zero":
            key = self._pick(self._scale_keys(out))
            arr = out[key].astype(np.float64, copy=True)
            idx = int(self.rng.integers(arr.size))
            arr.reshape(-1)[idx] = 0.0
            out[key] = arr
            detail = f"element {idx} zeroed"
        elif kind == "nan_poison":
            key = self._pick(self._scale_keys(out))
            arr = out[key].astype(np.float64, copy=True)
            idx = int(self.rng.integers(arr.size))
            arr.reshape(-1)[idx] = np.nan
            out[key] = arr
            detail = f"element {idx} = NaN"
        else:  # truncate
            candidates = sorted(
                k for k in out
                if not is_checksum_key(k) and not k.startswith("meta.")
            )
            key = self._pick(candidates)
            del out[key]
            out.pop(checksum_key(key), None)
            detail = "array dropped"
        if stealth and kind != "truncate" and checksum_key(key) in out:
            out[checksum_key(key)] = np.asarray(array_crc32(out[key]), dtype=np.uint32)
        return out, ChaosEvent(kind=kind, key=key, detail=detail, stealth=stealth)

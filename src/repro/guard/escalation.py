"""Adaptive per-head precision escalation (guard layer 2).

The frozen-scale decode buffer (§3.3) and the 2/4-bit progressive cache
are tuned for the *prefill* distribution.  A decode stream whose K/V
statistics drift — outlier-heavy heads, growing activations — silently
saturates the buffer's clamp and blows past the analytic reconstruction
bound of the head's storage width.  Instead of failing silently, the
escalator watches two per-head signals at every buffer flush:

* **clamp fraction** — the share of staged elements the frozen scale
  clamped this window (from the buffer's per-head accounting behind
  ``DecodeBuffer.clamped_total``), and
* **measured stage-2 error** — the actual reconstruction error of the
  flushed block at the head's current width, compared against the
  analytic :func:`repro.quant.bounds.progressive_bound` evaluated at the
  configured *quality* width.

A head persistently (``patience`` consecutive flushes) exceeding either
signal escalates one rung up the ``ladder`` (2 -> 4 -> 8 bits); a head
that stays cool for ``cooldown`` consecutive flushes de-escalates one
rung, never below its original assignment (hysteresis: ``cooldown >
patience`` so assignments don't flap).  Clamp-hot heads additionally
request a frozen-scale regrow, which the decode path applies at the
flush boundary — the only instant it is safe, because the buffer is
empty and cache blocks carry their own scales, so no stored token is
ever recompressed.

Storage cost is bounded and observable: escalation only changes the
width of *future* blocks (``QuantizedKVCache`` blocks each carry their
own bit array), and every transition is counted in the
:class:`~repro.guard.report.GuardReport`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.guard.report import GuardReport
from repro.quant.bounds import progressive_bound
from repro.quant.progressive import pq_compress, pq_decompress_to_int8

__all__ = [
    "DEFAULT_LADDER",
    "EscalationConfig",
    "EscalationDecision",
    "PrecisionEscalator",
]

#: The storage-width ladder shared by per-head escalation (quality goes
#: *up* under numeric stress) and the overload brownout controller
#: (quality goes *down* under load stress, :mod:`repro.overload.brownout`).
#: Both walk the same rungs via :func:`repro.core.headwise.snap_to_ladder`
#: / :func:`repro.core.headwise.ladder_step`, so a fleet that browns out
#: and then escalates a hot head lands on widths the cache can store.
DEFAULT_LADDER: tuple = (2, 4, 8)


@dataclass(frozen=True)
class EscalationConfig:
    """Escalation thresholds and hysteresis.

    Attributes
    ----------
    ladder:
        Allowed storage widths, ascending.
    clamp_threshold:
        Per-head clamp fraction (clamped elements / staged elements in the
        flush window) above which the head counts as hot.
    quality_bits:
        The width whose analytic :func:`progressive_bound` serves as the
        per-head quality target; a head whose *measured* error exceeds
        ``error_margin`` times that target is hot.
    error_margin:
        Multiplier on the quality target (>= 1 loosens, < 1 tightens).
    patience:
        Consecutive hot flushes before a head escalates one rung.
    cooldown:
        Consecutive cool flushes before a head de-escalates one rung
        (kept > ``patience`` so assignments don't flap).
    grow_scale:
        Whether clamp-hot heads also regrow the buffer's frozen scale at
        the flush boundary (see module docstring).
    """

    ladder: Tuple[int, ...] = DEFAULT_LADDER
    clamp_threshold: float = 0.01
    quality_bits: int = 4
    error_margin: float = 1.0
    patience: int = 2
    cooldown: int = 6
    grow_scale: bool = True

    def __post_init__(self) -> None:
        if len(self.ladder) < 2 or list(self.ladder) != sorted(set(self.ladder)):
            raise ValueError("ladder must be >= 2 strictly ascending widths")
        if any(b not in (2, 3, 4, 8) for b in self.ladder):
            raise ValueError(f"unsupported widths in ladder: {self.ladder}")
        if not 0.0 <= self.clamp_threshold <= 1.0:
            raise ValueError("clamp_threshold must lie in [0, 1]")
        if self.patience < 1 or self.cooldown < 1:
            raise ValueError("patience and cooldown must be >= 1")
        if self.error_margin <= 0:
            raise ValueError("error_margin must be positive")


@dataclass
class EscalationDecision:
    """Outcome of one flush observation."""

    head_bits: np.ndarray
    changed: bool
    #: Heads whose clamp fraction ran hot this window — candidates for a
    #: frozen-scale regrow at the (empty-buffer) flush boundary.
    clamp_hot: np.ndarray


class PrecisionEscalator:
    """Per-head hot/cool streak tracker driving the bits ladder."""

    def __init__(self, config: EscalationConfig, head_bits: np.ndarray):
        # Deferred import: repro.core.headwise owns every assignment
        # mutation, but importing it at module level would cycle through
        # repro.core.__init__ back into this module.
        from repro.core.headwise import snap_to_ladder

        self.config = config
        bits = snap_to_ladder(head_bits, config.ladder)
        self.head_bits = bits
        #: De-escalation floor: the original (selection-time) assignment.
        self.floor_bits = bits.copy()
        n = bits.shape[0]
        self._hot_streak = np.zeros(n, dtype=np.int64)
        self._cool_streak = np.zeros(n, dtype=np.int64)

    def _rung(self, direction: int, bits: np.ndarray, mask: np.ndarray) -> np.ndarray:
        from repro.core.headwise import ladder_step

        return ladder_step(bits, self.config.ladder, direction, mask)

    def measure_block_error(
        self,
        codes: np.ndarray,
        float_scale: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Measured stage-2 error vs the analytic quality target, per head.

        Returns ``(measured, target)`` in real units, shape ``(heads,)``.
        ``measured`` is the max reconstruction error of compressing the
        INT8 block at the head's *current* width; ``target`` is
        :func:`progressive_bound` at ``quality_bits`` for the block's
        worst channel range, times ``error_margin``.
        """
        codes = np.asarray(codes, dtype=np.int32)
        scale = np.asarray(float_scale, dtype=np.float64).reshape(-1)
        block = pq_compress(
            codes, bits=self.head_bits.reshape(-1, 1, 1), float_scale=scale
        )
        rec = pq_decompress_to_int8(block).astype(np.int32)
        measured = np.abs(rec - codes).max(axis=(-2, -1)) * scale
        ranges = (codes.max(axis=-2) - codes.min(axis=-2)).max(axis=-1)
        target = (
            progressive_bound(scale, ranges, self.config.quality_bits)
            * self.config.error_margin
        )
        return measured, target

    def observe_flush(
        self,
        k_codes: np.ndarray,
        v_codes: np.ndarray,
        k_scale: np.ndarray,
        v_scale: np.ndarray,
        clamp_fraction: np.ndarray,
        report: Optional[GuardReport] = None,
    ) -> EscalationDecision:
        """Update streaks from one flushed block; return new assignments.

        ``clamp_fraction`` is the buffer's per-head clamped share for the
        window that produced this block.
        """
        cfg = self.config
        n = self.head_bits.shape[0]
        clamp_fraction = np.asarray(clamp_fraction, dtype=np.float64)
        if clamp_fraction.shape != (n,) or np.asarray(k_codes).shape[0] != n:
            raise ValueError(
                f"flush observation is for {np.asarray(k_codes).shape[0]} heads "
                f"(clamp fraction {clamp_fraction.shape}); escalator tracks {n}"
            )
        clamp_hot = clamp_fraction > cfg.clamp_threshold
        err_k, tgt_k = self.measure_block_error(k_codes, k_scale)
        err_v, tgt_v = self.measure_block_error(v_codes, v_scale)
        bound_hot = (err_k > tgt_k) | (err_v > tgt_v)
        hot = clamp_hot | bound_hot

        self._hot_streak = np.where(hot, self._hot_streak + 1, 0)
        self._cool_streak = np.where(hot, 0, self._cool_streak + 1)

        at_top = self.head_bits >= cfg.ladder[-1]
        up = (self._hot_streak >= cfg.patience) & ~at_top
        down = (
            (self._cool_streak >= cfg.cooldown)
            & (self.head_bits > self.floor_bits)
        )
        new_bits = self._rung(+1, self.head_bits, up)
        new_bits = self._rung(-1, new_bits, down)
        changed = bool(np.any(new_bits != self.head_bits))

        if report is not None:
            report.hot_flushes += int(np.any(hot))
            report.bound_violations += int(np.count_nonzero(bound_hot))
            report.escalations += int(np.count_nonzero(up))
            report.deescalations += int(np.count_nonzero(down & ~up))
            for h in np.flatnonzero(up):
                report.record(
                    f"escalate:head{h}:{int(self.head_bits[h])}->{int(new_bits[h])}"
                )
            for h in np.flatnonzero(down & ~up):
                report.record(
                    f"deescalate:head{h}:{int(self.head_bits[h])}->{int(new_bits[h])}"
                )

        # Streaks reset on any transition so a fresh verdict accrues at the
        # new width.
        moved = new_bits != self.head_bits
        self._hot_streak[moved] = 0
        self._cool_streak[moved] = 0
        self.head_bits = new_bits
        grow = clamp_hot if cfg.grow_scale else np.zeros_like(clamp_hot)
        return EscalationDecision(
            head_bits=self.head_bits.copy(), changed=changed, clamp_hot=grow
        )

"""Runtime guardrails for the all-integer attention pipeline.

TurboAttention has no FP16 residual window to absorb distribution drift
(the deliberate contrast with KIVI/GEAR), so this package makes the
quantized pipeline **fail soft instead of fail silent**, in three layers:

* :mod:`repro.guard.numerics` — tile-level NaN/Inf, scale, and
  accumulator-headroom checks with per-check ``raise | sanitize |
  fallback`` policies (:class:`GuardConfig`), accounted in a
  :class:`GuardReport`.
* :mod:`repro.guard.escalation` — adaptive per-head precision escalation
  (2 -> 4 -> 8 bits with hysteresis) driven by clamp fractions and
  measured error vs the analytic bounds.
* :mod:`repro.guard.chaos` + the typed errors consumed by
  :mod:`repro.core.serialization` — corruption-safe persistence: schema
  tags, per-array CRC32, geometry/value validation, and a salvage mode,
  all exercised by a seeded corruption injector.
"""

from repro.guard.checksum import array_crc32, checksum_key, is_checksum_key
from repro.guard.chaos import CORRUPTION_KINDS, ChaosEvent, ChaosInjector
from repro.guard.errors import (
    CacheCorruptionError,
    ChecksumMismatchError,
    CorruptValueError,
    GeometryError,
    NumericsError,
    SchemaError,
)
from repro.guard.escalation import (
    DEFAULT_LADDER,
    EscalationConfig,
    EscalationDecision,
    PrecisionEscalator,
)
from repro.guard.numerics import check_finite_tile, check_scale, guarded_int_matmul
from repro.guard.report import GuardConfig, GuardPolicy, GuardReport

__all__ = [
    "GuardConfig",
    "GuardPolicy",
    "GuardReport",
    "NumericsError",
    "CacheCorruptionError",
    "SchemaError",
    "ChecksumMismatchError",
    "GeometryError",
    "CorruptValueError",
    "DEFAULT_LADDER",
    "EscalationConfig",
    "EscalationDecision",
    "PrecisionEscalator",
    "ChaosInjector",
    "ChaosEvent",
    "CORRUPTION_KINDS",
    "check_finite_tile",
    "check_scale",
    "guarded_int_matmul",
    "array_crc32",
    "checksum_key",
    "is_checksum_key",
]

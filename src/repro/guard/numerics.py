"""Tile-level numerics checks (NaN/Inf, scales, accumulator headroom).

These are the primitives :mod:`repro.core.prefill` and
:mod:`repro.core.decode` call on every tile when a
:class:`~repro.guard.report.GuardConfig` is active.  Each check applies
its configured :class:`~repro.guard.report.GuardPolicy` and accounts for
itself in a :class:`~repro.guard.report.GuardReport`; ``fallback``
decisions are returned to the caller (only the kernel knows what the FP16
reference path for a given tile looks like).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.guard.errors import NumericsError
from repro.guard.report import GuardConfig, GuardPolicy, GuardReport
from repro.quant.integer_gemm import int32_headroom_ok, int_matmul

__all__ = ["check_finite_tile", "check_scale", "guarded_int_matmul"]


def check_finite_tile(
    x: np.ndarray,
    where: str,
    guard: GuardConfig,
    report: GuardReport,
) -> Tuple[np.ndarray, bool]:
    """Detect NaN/Inf in a float tile.

    Returns ``(tile, wants_fallback)``.  Under ``sanitize``/``fallback``
    the returned tile has non-finite entries replaced by zero (a poisoned
    lane must never reach the quantizer: one NaN makes the whole tile's
    absmax — and hence its scale — NaN, corrupting every other value in
    the tile).  ``wants_fallback`` asks the caller to reroute this tile
    through the FP16 reference path.
    """
    report.checks_run += 1
    x = np.asarray(x, dtype=np.float64)
    finite = np.isfinite(x)
    if finite.all():
        return x, False
    n_bad = int(x.size - np.count_nonzero(finite))
    policy = guard.on_nonfinite
    if policy is GuardPolicy.RAISE:
        raise NumericsError("nonfinite", where, f"{n_bad} non-finite values")
    report.nonfinite_tiles += 1
    report.sanitized_values += n_bad
    report.record(f"nonfinite:{where}:{n_bad}")
    x = np.where(finite, x, 0.0)
    return x, policy is GuardPolicy.FALLBACK


def check_scale(
    scale: np.ndarray,
    where: str,
    guard: GuardConfig,
    report: GuardReport,
) -> np.ndarray:
    """Detect zero / underflowed / non-finite quantization scales.

    Under ``sanitize`` (and ``fallback`` — for a stored span the original
    floats are gone, so flooring is the only repair) bad entries are
    replaced by ``guard.scale_floor``.
    """
    report.checks_run += 1
    scale = np.asarray(scale, dtype=np.float64)
    bad = ~np.isfinite(scale) | (scale < guard.scale_floor)
    if not bad.any():
        return scale
    n_bad = int(np.count_nonzero(bad))
    if guard.on_bad_scale is GuardPolicy.RAISE:
        raise NumericsError("bad_scale", where, f"{n_bad} degenerate scales")
    report.bad_scales += n_bad
    report.record(f"bad_scale:{where}:{n_bad}")
    return np.where(bad, guard.scale_floor, scale)


def guarded_int_matmul(
    a_codes: np.ndarray,
    b_codes: np.ndarray,
    where: str,
    guard: GuardConfig,
    report: GuardReport,
) -> np.ndarray:
    """Integer GEMM with a recoverable accumulator-headroom guard.

    When the worst-case accumulator would use more than
    ``guard.headroom_fraction`` of the INT32 range, ``raise`` surfaces a
    :class:`NumericsError`; the other policies reroute through the exact
    chunked-accumulation path (split-K partials summed in INT64) and
    count the event.
    """
    report.checks_run += 1
    if int32_headroom_ok(a_codes, b_codes, guard.headroom_fraction):
        return int_matmul(a_codes, b_codes)
    if guard.on_overflow is GuardPolicy.RAISE:
        raise NumericsError("overflow", where, "int32 accumulator headroom exhausted")
    report.overflow_chunked += 1
    report.record(f"overflow_chunked:{where}")
    return int_matmul(a_codes, b_codes, on_overflow="chunk")

"""Reactive queue-depth autoscaler.

The simplest policy a fleet actually runs: watch the mean waiting-queue
depth per active replica, add a replica when it exceeds
``scale_up_queue``, retire one (drain, never kill) when it falls below
``scale_down_queue``, and never act twice within ``cooldown_s``.

Decisions are evaluated at arrival-dispatch instants — the moments the
cluster simulator already synchronises the fleet — which matches the
"metrics-server polls, controller reacts" cadence of real deployments
closely enough for capacity studies while keeping the simulation
deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.cluster.replica import Replica

__all__ = ["AutoscalerConfig", "Autoscaler"]


@dataclass(frozen=True)
class AutoscalerConfig:
    min_replicas: int = 1
    max_replicas: int = 8
    #: Mean waiting requests per active replica above which one replica
    #: is added.
    scale_up_queue: float = 6.0
    #: Mean waiting requests per active replica below which one replica
    #: is drained (only when every survivor would stay under the up
    #: threshold).
    scale_down_queue: float = 0.25
    cooldown_s: float = 20.0
    #: Warm-cache scale-down veto: a replica whose prefix pool holds at
    #: least this many resident shared blocks is never picked as the
    #: drain victim (retiring it would throw hot cache away and re-cold
    #: every session pinned to it).  ``None`` disables the veto.
    warm_block_veto: Optional[int] = None

    def __post_init__(self) -> None:
        if self.min_replicas < 1:
            raise ValueError("min_replicas must be >= 1")
        if self.max_replicas < self.min_replicas:
            raise ValueError("max_replicas must be >= min_replicas")
        if self.scale_down_queue >= self.scale_up_queue:
            raise ValueError("scale_down_queue must be below scale_up_queue")
        if self.warm_block_veto is not None and self.warm_block_veto < 1:
            raise ValueError("warm_block_veto must be >= 1 (or None)")


class Autoscaler:
    """Stateful threshold controller over the active replica set."""

    def __init__(self, config: AutoscalerConfig = AutoscalerConfig()):
        self.config = config
        self._last_action_at = float("-inf")

    def decide(self, now: float, active: Sequence[Replica]) -> Optional[str]:
        """Return ``"up"``, ``"down"``, or ``None`` for the fleet at ``now``."""
        if not active:
            return "up"
        if len(active) < self.config.min_replicas:
            # Crash replacement: restoring the fleet floor is not subject
            # to the cooldown — lost capacity is replaced immediately.
            self._last_action_at = now
            return "up"
        if now - self._last_action_at < self.config.cooldown_s:
            return None
        mean_queue = sum(r.queue_depth for r in active) / len(active)
        if mean_queue > self.config.scale_up_queue:
            if len(active) < self.config.max_replicas:
                self._last_action_at = now
                return "up"
            return None
        if mean_queue < self.config.scale_down_queue:
            if len(active) > self.config.min_replicas:
                self._last_action_at = now
                return "down"
        return None

    def pick_victim(self, active: List[Replica]) -> Optional[Replica]:
        """Replica to drain on scale-down: the least-loaded, then the
        youngest (highest id) — it empties fastest.

        With ``warm_block_veto`` set, replicas holding that many resident
        shared prefix blocks are protected; ``None`` means every
        candidate is warm and this scale-down round is skipped.
        """
        veto = self.config.warm_block_veto
        if veto is not None:
            active = [r for r in active if r.warm_blocks < veto]
        if not active:
            return None
        return min(active, key=lambda r: (r.outstanding_tokens, -r.replica_id))

"""One serving replica: a (possibly tensor-parallel) engine in a fleet.

A :class:`Replica` is a thin identity-and-lifecycle wrapper around the
open-loop :class:`repro.serving.ServingEngine` API: the cluster simulator
owns arrival dispatch and time synchronisation; the replica exposes the
load signals routers read (queue depth, outstanding tokens, KV pressure)
and the drain state the autoscaler manages.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.perf.attention_costs import MethodSpec
from repro.perf.e2e import ModelGeometry
from repro.perf.gpu import A100_80GB, GPUSpec
from repro.serving.engine import EngineConfig, ServingEngine
from repro.serving.request import Request, RequestRecord
from repro.sim.trace import TraceSink

__all__ = ["Replica"]


class Replica:
    """A serving engine plus fleet bookkeeping."""

    def __init__(
        self,
        replica_id: int,
        model: ModelGeometry,
        method: MethodSpec,
        config: EngineConfig = EngineConfig(),
        gpu: GPUSpec = A100_80GB,
        trace: Optional[TraceSink] = None,
        role: str = "unified",
    ):
        self.replica_id = replica_id
        #: Pool membership: ``"unified"`` (classic), ``"prefill"`` or
        #: ``"decode"`` (disaggregated fleets; see :mod:`repro.migrate`).
        self.role = role
        # The engine's lifecycle marks land in the cluster-wide trace
        # under this replica's clock name, so one trace file interleaves
        # the fleet timeline with every replica's per-request events.
        self.engine = ServingEngine(
            model, method, config, gpu,
            trace=trace, trace_clock=f"replica{replica_id}",
        )
        #: Draining replicas accept no new dispatches; the autoscaler
        #: retires them once their admitted/queued work completes.
        self.draining = False
        #: Crashed replicas are down: no dispatches, no stepping; the
        #: fault layer restarts them (empty) once ``down_until`` passes.
        self.crashed = False
        self.down_until = 0.0
        #: Cluster time at which this replica joined the fleet.
        self.started_at = 0.0

    # -- fault lifecycle ----------------------------------------------------
    @property
    def dispatchable(self) -> bool:
        """Can the router hand this replica new work right now?"""
        return not self.draining and not self.crashed

    def crash(self, down_until: float) -> List[RequestRecord]:
        """Kill the replica: all in-flight and queued KV state is lost.

        Returns the evicted records (oldest admission first) for the
        cluster to re-dispatch; finished-request history survives.
        """
        if self.crashed:
            raise RuntimeError(f"replica {self.replica_id} is already down")
        self.crashed = True
        self.down_until = down_until
        self.engine.time_scale = 1.0  # a restart clears any stall
        return self.engine.evict_unfinished()

    def recover(self, now: float) -> None:
        """Restart after downtime: healthy, empty, clock caught up."""
        self.crashed = False
        self.engine.time_scale = 1.0
        self.engine.advance_to(now)

    def stall(self, slowdown: float) -> None:
        """Enter straggler mode: steps take ``slowdown`` times longer."""
        self.engine.time_scale = max(self.engine.time_scale, slowdown)

    def clear_stall(self) -> None:
        self.engine.time_scale = 1.0

    # -- engine delegation -------------------------------------------------
    def submit(self, request: Request):
        return self.submit_record(RequestRecord(request=request))

    def submit_record(self, record: RequestRecord):
        """Offer a record to the engine; returns its admission verdict
        (always ACCEPT when the engine runs without overload protection)."""
        if self.draining:
            raise RuntimeError(f"replica {self.replica_id} is draining")
        if self.crashed:
            raise RuntimeError(f"replica {self.replica_id} is down (crashed)")
        return self.engine.submit_record(record)

    def restore_record(self, record: RequestRecord) -> bool:
        """Warm-restart re-entry (see :mod:`repro.recover`).  Bypasses
        the ``dispatchable`` gate deliberately: restored work was
        admitted before the crash, and the restart itself is what makes
        the replica healthy again."""
        if self.crashed:
            raise RuntimeError(f"replica {self.replica_id} is down (crashed)")
        return self.engine.restore_record(record)

    def cancel(self, request_id: int):
        return self.engine.cancel(request_id)

    def step(self) -> float:
        return self.engine.step()

    def advance_to(self, t: float) -> None:
        self.engine.advance_to(t)

    @property
    def clock(self) -> float:
        return self.engine.clock

    @property
    def busy(self) -> bool:
        return self.engine.busy

    @property
    def records(self) -> Dict[int, RequestRecord]:
        return self.engine.records

    # -- load signals for routing ------------------------------------------
    @property
    def queue_depth(self) -> int:
        return self.engine.queue_depth

    @property
    def outstanding_tokens(self) -> int:
        return self.engine.outstanding_tokens

    @property
    def kv_pressure(self) -> float:
        return self.engine.kv_pressure

    @property
    def peak_running(self) -> int:
        return self.engine.peak_running

    @property
    def kv_utilization(self) -> float:
        return self.engine.allocator.utilization

    def prefix_warmth(self, request: Request) -> int:
        """Prompt tokens of ``request`` resident in this replica's prefix
        pool (0 without one) — the affinity router's locality signal."""
        return self.engine.prefix_warmth(request)

    @property
    def warm_blocks(self) -> int:
        """Shared prefix-cache blocks currently resident on this replica
        (0 without a pool) — the autoscaler's scale-down veto signal:
        retiring a warm replica throws away cache other requests would
        hit."""
        pool = self.engine.prefix_pool
        return pool.resident_blocks if pool is not None else 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Replica(id={self.replica_id}, clock={self.clock:.2f}, "
            f"queue={self.queue_depth}, running={len(self.engine.running)}, "
            f"draining={self.draining})"
        )

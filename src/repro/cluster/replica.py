"""One serving replica: a (possibly tensor-parallel) engine in a fleet.

A :class:`Replica` is a thin identity-and-lifecycle wrapper around the
open-loop :class:`repro.serving.ServingEngine` API: the cluster simulator
owns arrival dispatch and time synchronisation; the replica exposes the
load signals routers read (queue depth, outstanding tokens, KV pressure)
and the drain state the autoscaler manages.
"""

from __future__ import annotations

from typing import Dict

from repro.perf.attention_costs import MethodSpec
from repro.perf.e2e import ModelGeometry
from repro.perf.gpu import A100_80GB, GPUSpec
from repro.serving.engine import EngineConfig, ServingEngine
from repro.serving.request import Request, RequestRecord

__all__ = ["Replica"]


class Replica:
    """A serving engine plus fleet bookkeeping."""

    def __init__(
        self,
        replica_id: int,
        model: ModelGeometry,
        method: MethodSpec,
        config: EngineConfig = EngineConfig(),
        gpu: GPUSpec = A100_80GB,
    ):
        self.replica_id = replica_id
        self.engine = ServingEngine(model, method, config, gpu)
        #: Draining replicas accept no new dispatches; the autoscaler
        #: retires them once their admitted/queued work completes.
        self.draining = False
        #: Cluster time at which this replica joined the fleet.
        self.started_at = 0.0

    # -- engine delegation -------------------------------------------------
    def submit(self, request: Request) -> None:
        if self.draining:
            raise RuntimeError(f"replica {self.replica_id} is draining")
        self.engine.submit(request)

    def step(self) -> float:
        return self.engine.step()

    def advance_to(self, t: float) -> None:
        self.engine.advance_to(t)

    @property
    def clock(self) -> float:
        return self.engine.clock

    @property
    def busy(self) -> bool:
        return self.engine.busy

    @property
    def records(self) -> Dict[int, RequestRecord]:
        return self.engine.records

    # -- load signals for routing ------------------------------------------
    @property
    def queue_depth(self) -> int:
        return self.engine.queue_depth

    @property
    def outstanding_tokens(self) -> int:
        return self.engine.outstanding_tokens

    @property
    def kv_pressure(self) -> float:
        return self.engine.kv_pressure

    @property
    def peak_running(self) -> int:
        return self.engine.peak_running

    @property
    def kv_utilization(self) -> float:
        return self.engine.allocator.utilization

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Replica(id={self.replica_id}, clock={self.clock:.2f}, "
            f"queue={self.queue_depth}, running={len(self.engine.running)}, "
            f"draining={self.draining})"
        )

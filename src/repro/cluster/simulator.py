"""Multi-replica cluster serving simulator.

Composes N tensor-parallel :class:`~repro.cluster.replica.Replica` engines
behind one router.  Time runs as a discrete-event loop — the fleet's
timeline of request arrivals, fault-injection events, recovery events,
and retry re-dispatches lives on one :class:`repro.sim.EventScheduler`
(the same kernel the engine's closed loop drives), which owns
same-instant ordering, cancellation, monotonic time, and optional
per-event trace output:

1. **Synchronise** — before handling the event at time ``t``, every busy
   replica steps forward until its local clock reaches ``t`` (engine
   steps are atomic, so a replica may overshoot slightly — the same
   "decision reads state as of the last completed iteration" staleness a
   real router has); idle replicas jump their clocks to ``t``.
2. **Autoscale** — the optional queue-depth controller may add a fresh
   replica or mark one draining (no new dispatches; it finishes what it
   holds and retires when empty); a fleet that crashes below its floor is
   topped back up immediately.
3. **Handle the event** — arrivals and re-dispatches are routed to a
   dispatchable replica; crash/stall faults hit a victim chosen by the
   event's salt; recoveries bring replicas back; timeouts pull back
   requests still waiting for their first token.
4. **Drain** — after the last event, replicas run to completion.

Fault recovery (see :mod:`repro.cluster.faults`): a crash evicts every
admitted and queued request on the victim; each evicted request is
re-dispatched through the router after capped exponential backoff, its
KV re-prefilled at real cost on the new replica.  A request whose retry
budget is exhausted is recorded as ``FAILED`` — the run degrades, it
never crashes or loses a request.

Overload protection (see :mod:`repro.overload`): cluster-level admission
gates fresh arrivals on fleet-aggregate queue depth and KV pressure
before any replica is chosen (re-dispatches of already-admitted work
bypass it); per-replica circuit breakers steer dispatches away from
replicas that keep timing out; engine-level admission/shedding/brownout
run inside each replica when configured on the engine.  Every submitted
request still terminates exactly once —
``completed + failed + rejected + shed == total`` — which the test
suite asserts from the returned data, byte-identical across reruns.

Determinism is verified at the event level: pass a
:class:`repro.sim.TraceSink` and every kernel operation plus every
replica's request-lifecycle marks stream into one diffable trace whose
blake2b digest must reproduce seed-for-seed
(``python -m repro cluster --faults --trace run.jsonl``, then
``python -m repro trace-diff`` between reruns).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.autoscaler import Autoscaler, AutoscalerConfig
from repro.cluster.faults import (
    FaultConfig,
    FaultEvent,
    FaultInjector,
    downtime_within,
)
from repro.cluster.metrics import (
    SLO,
    ClusterMetrics,
    FaultCounters,
    ReplicaStats,
    ScaleEvent,
    summarize_cluster,
)
from repro.cluster.replica import Replica
from repro.cluster.router import make_router
from repro.migrate import (
    MigrationConfig,
    build_payload,
    corrupt_payload,
    kv_wire_bytes,
    receive_payload,
)
from repro.overload.admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionVerdict,
)
from repro.overload.breaker import BreakerConfig, CircuitBreaker
from repro.recover import (
    FleetOp,
    RecoverConfig,
    ReplicaRecoveryState,
    take_snapshot,
    verify_snapshot,
)
from repro.perf.attention_costs import MethodSpec
from repro.perf.e2e import ModelGeometry
from repro.perf.gpu import A100_80GB, GPUSpec
from repro.serving.engine import EngineConfig
from repro.serving.request import Request, RequestRecord, RequestStatus
from repro.sim.kernel import Event, EventScheduler
from repro.sim.trace import TraceSink

__all__ = [
    "CLUSTER_EVENT_ORDER",
    "ClusterConfig",
    "ClusterSimulator",
    "DisaggConfig",
]

# The cluster's closed event taxonomy (see :mod:`repro.sim.kernel`).
# Same-instant events resolve in a fixed order so runs are reproducible:
# replicas recover and stalls clear before new work is placed, faults
# strike before dispatches (a request arriving "as" a replica dies never
# lands on the corpse), and timeout checks run after everything else.
# The kernel enforces the map's closure — a new event kind without an
# order class here raises instead of silently sorting by name.
CLUSTER_EVENT_ORDER = {
    "recover": 0,
    "stall_end": 1,
    "link_stall_end": 1,
    "fault": 2,
    "arrival": 3,
    "redispatch": 3,
    # KV handoffs share the work-placement order class: a transfer
    # arriving "as" the timeout deadline fires still beats the deadline.
    "migrate_arrive": 3,
    "migrate_retry": 3,
    "timeout": 4,
    # lifecycle marks (not scheduled; registered to pin the taxonomy).
    # Existing order-class values are frozen by the golden trace
    # fixtures — new kinds only ever append, never renumber.
    "scale_up": 10,
    "scale_down": 11,
    "breaker_trip": 12,
    "migrate_send": 13,
    "migrate_drop": 14,
    "migrate_corrupt": 15,
    "migrate_reroute": 16,
    "handoff_done": 17,
    "local_fallback": 18,
    # -- checkpointing / warm restart / fleet ops (repro.recover) ------------
    # None of these kinds ever appear unless ``ClusterConfig.recover`` or
    # ``ClusterConfig.ops`` is set, so golden traces of every existing
    # scenario are byte-identical.  Scheduled kinds: a warm restart ends
    # a crash's downtime in the recover slot (before faults and work
    # placement, like "recover"); fleet ops and their polls share the
    # fault/work slots; snapshots run last at their instant so they
    # checkpoint the post-event state.
    "warm_restart": 0,
    "fleet_op": 2,
    "requeue": 3,
    "op_check": 4,
    "snapshot": 5,
    # lifecycle marks (append-only, values frozen by golden fixtures).
    "snapshot_taken": 19,
    "snapshot_corrupt": 20,
    "snapshot_salvage": 21,
    "warm_restore": 22,
    "cold_restore": 23,
    "wal_replay": 24,
    "drain_begin": 25,
    "drain_done": 26,
    "rejoin": 27,
}


@dataclass(frozen=True)
class DisaggConfig:
    """Disaggregated prefill/decode fleet layout (see :mod:`repro.migrate`).

    Replicas split into a prefill pool (engines run ``prefill_only``:
    requests park at prefill completion with KV pinned) and a decode
    pool; completed prefills migrate across the inter-pool link as
    first-class cluster events, charged real width-dependent transfer
    time.  Each pool routes and autoscales independently.
    """

    n_prefill: int = 1
    n_decode: int = 2
    #: Routing policy within each pool.  Prefill placement is compute-
    #: bound (spread by outstanding tokens); decode placement is KV-bound.
    prefill_policy: str = "least_tokens"
    decode_policy: str = "least_kv"
    migration: MigrationConfig = MigrationConfig()
    #: Per-pool autoscalers; ``None`` pins that pool at its initial size.
    #: ``ClusterConfig.autoscaler`` is ignored in disaggregated mode.
    prefill_autoscaler: Optional[AutoscalerConfig] = None
    decode_autoscaler: Optional[AutoscalerConfig] = None

    def __post_init__(self) -> None:
        if self.n_prefill < 1 or self.n_decode < 1:
            raise ValueError("each pool needs at least one replica")


@dataclass(frozen=True)
class ClusterConfig:
    """Fleet tunables."""

    n_replicas: int = 2
    #: Tensor-parallel degree of every replica (homogeneous fleet).
    tp: int = 1
    policy: str = "round_robin"
    slo: SLO = SLO()
    engine: EngineConfig = EngineConfig()
    #: ``None`` disables autoscaling (fixed fleet of ``n_replicas``).
    autoscaler: Optional[AutoscalerConfig] = None
    #: ``None`` disables fault injection (the healthy-hardware baseline).
    faults: Optional[FaultConfig] = None
    #: Cluster-level admission control: fresh arrivals are gated on the
    #: fleet's aggregate queue depth and mean KV pressure *before* any
    #: replica is chosen.  Fault-recovery re-dispatches bypass it (their
    #: work is already admitted and partially paid for).
    admission: Optional[AdmissionConfig] = None
    #: Per-replica circuit breaker on consecutive dispatch timeouts, so
    #: one sick replica spills its load instead of eating retry storms.
    breaker: Optional[BreakerConfig] = None
    #: Global engine-iteration guard across the whole fleet.
    max_steps: int = 20_000_000
    #: Disaggregated prefill/decode mode; ``None`` keeps the classic
    #: unified fleet (``n_replicas`` is ignored when set — the fleet is
    #: ``n_prefill + n_decode``).
    disagg: Optional[DisaggConfig] = None
    #: Crash-consistent checkpointing + warm restart (see
    #: :mod:`repro.recover`); ``None`` keeps the classic cold-retry
    #: recovery, byte-identical to the pre-checkpoint behaviour.
    recover: Optional[RecoverConfig] = None
    #: Operator-initiated fleet operations (graceful drains, rolling
    #: restarts), executed as first-class cluster events.
    ops: Tuple[FleetOp, ...] = ()

    def __post_init__(self) -> None:
        if self.n_replicas < 1:
            raise ValueError("n_replicas must be >= 1")


class ClusterSimulator:
    """Serve one arrival stream on a simulated replica fleet."""

    def __init__(
        self,
        model: ModelGeometry,
        method: MethodSpec,
        config: ClusterConfig = ClusterConfig(),
        gpu: GPUSpec = A100_80GB,
        trace: Optional[TraceSink] = None,
    ):
        self.model = model
        self.method = method
        self.config = config
        self.gpu = gpu
        #: Optional structured trace: the cluster's kernel and every
        #: replica's engine write interleaved records to this one sink.
        self.trace = trace
        #: The fleet's event kernel — the one timeline of arrivals,
        #: re-dispatches, faults, recoveries, and timeout deadlines.
        self.kernel = EventScheduler(
            CLUSTER_EVENT_ORDER, clock="cluster", trace=trace
        )
        self._engine_config = replace(config.engine, tp=config.tp)
        self._prefill_config = replace(self._engine_config, prefill_only=True)
        disagg = config.disagg
        if disagg is None:
            self.replicas: List[Replica] = [
                self._new_replica(i) for i in range(config.n_replicas)
            ]
            self.router = make_router(config.policy)
            self.decode_router = None
            self.autoscaler = (
                Autoscaler(config.autoscaler)
                if config.autoscaler is not None
                else None
            )
            self.prefill_autoscaler = None
            self.decode_autoscaler = None
        else:
            self.replicas = [
                self._new_replica(i, role="prefill")
                for i in range(disagg.n_prefill)
            ] + [
                self._new_replica(disagg.n_prefill + i, role="decode")
                for i in range(disagg.n_decode)
            ]
            # ``router`` places arrivals — the prefill pool's policy; the
            # decode router places migrated-in handoffs.
            self.router = make_router(disagg.prefill_policy)
            self.decode_router = make_router(disagg.decode_policy)
            self.autoscaler = None
            self.prefill_autoscaler = (
                Autoscaler(disagg.prefill_autoscaler)
                if disagg.prefill_autoscaler is not None
                else None
            )
            self.decode_autoscaler = (
                Autoscaler(disagg.decode_autoscaler)
                if disagg.decode_autoscaler is not None
                else None
            )
        self.scale_events: List[ScaleEvent] = []
        self.fault_counters = FaultCounters()
        self.failed: Dict[int, RequestRecord] = {}
        #: Requests turned away by cluster-level admission (terminal).
        self.rejected: Dict[int, RequestRecord] = {}
        self.admission = (
            AdmissionController(config.admission)
            if config.admission is not None
            else None
        )
        self.breakers: Dict[int, CircuitBreaker] = {}
        self.peak_replicas = len(self.replicas)
        self._steps = 0
        self._location: Dict[int, Replica] = {}
        #: Live timeout-deadline events by request id, cancelled when the
        #: request leaves the replica the deadline was armed against.
        self._timeout_events: Dict[int, Event] = {}
        #: Live in-flight migration events (arrive/retry) by request id —
        #: the cancellation handles a destination crash or a source
        #: eviction uses to revoke a transfer mid-flight.
        self._inflight: Dict[int, Event] = {}
        #: Overlapping link-congestion stalls currently active.
        self._active_link_stalls = 0
        self._injector = (
            FaultInjector(config.faults) if config.faults is not None else None
        )
        # -- checkpointing / warm restart / fleet ops (repro.recover) -----
        #: Per-replica checkpoint bookkeeping (lazy; only populated when
        #: ``config.recover`` is set).
        self._rstates: Dict[int, ReplicaRecoveryState] = {}
        #: Snapshot events currently scheduled — subtracted from the
        #: kernel's length when deciding whether the chain should keep
        #: itself alive, so snapshots alone never prevent termination.
        self._live_snapshots = 0
        #: Fleet operations queued behind the single active one.
        self._op_backlog: List[dict] = []
        self._op_active: Optional[dict] = None
        #: Per-crash ``(crash_time, recovery_time)`` windows; at the end
        #: of a recovery-enabled run they replace the incremental
        #: ``downtime_s`` with the makespan-clipped figure.
        self._downtime_windows: List[Tuple[float, float]] = []

    # -- fleet management ---------------------------------------------------
    def _new_replica(self, replica_id: int, role: str = "unified") -> Replica:
        engine_config = (
            self._prefill_config if role == "prefill" else self._engine_config
        )
        return Replica(
            replica_id, self.model, self.method, engine_config, self.gpu,
            trace=self.trace, role=role,
        )

    @property
    def active_replicas(self) -> List[Replica]:
        """Replicas the fleet can count on: neither draining nor down."""
        return [r for r in self.replicas if r.dispatchable]

    def _pool(self, role: str) -> List[Replica]:
        """Dispatchable members of one pool."""
        return [r for r in self.replicas if r.role == role and r.dispatchable]

    def _step_replica(self, replica: Replica) -> None:
        self._steps += 1
        if self._steps > self.config.max_steps:
            raise RuntimeError("cluster step limit exceeded (livelock?)")
        replica.step()

    def _advance_replica(self, replica: Replica, t: Optional[float]) -> None:
        """One advance quantum: a bulk decode stretch when the engine is in
        a homogeneous state (see ``ServingEngine.decode_steps``), else one
        scalar step.  Bulk steps count against ``max_steps`` one-for-one
        with the scalar steps they replace."""
        n = replica.engine.decode_steps(t)
        if n:
            self._steps += n
            if self._steps > self.config.max_steps:
                raise RuntimeError("cluster step limit exceeded (livelock?)")
        else:
            self._step_replica(replica)

    def _advance_fleet_to(self, t: float, role: Optional[str] = None) -> None:
        for replica in self.replicas:
            if replica.crashed or (role is not None and replica.role != role):
                continue  # a down replica holds no work and does not step
            while (
                replica.busy
                and replica.clock < t
                and not replica.engine.migration_blocked
            ):
                self._advance_replica(replica, t)
            if replica.engine.migration_blocked and replica.clock < t:
                # Admission is wedged behind KV pinned by in-flight
                # handoffs: only a cluster event can free it, so jump the
                # clock instead of burning 1e-6 s idle steps up to ``t``.
                replica.engine.clock = t
            replica.advance_to(t)

    def _autoscale(self, now: float) -> None:
        if self.config.disagg is not None:
            self._autoscale_pool(now, "prefill", self.prefill_autoscaler)
            self._autoscale_pool(now, "decode", self.decode_autoscaler)
            return
        if self.autoscaler is None:
            return
        active = self.active_replicas
        decision = self.autoscaler.decide(now, active)
        if decision == "up":
            replica = self._new_replica(len(self.replicas))
            replica.started_at = now
            replica.advance_to(now)
            self.replicas.append(replica)
            self.peak_replicas = max(self.peak_replicas, len(self.active_replicas))
            self.scale_events.append(
                ScaleEvent(time=now, action="up", n_active=len(self.active_replicas))
            )
            self.kernel.mark(
                "scale_up", f"n={len(self.active_replicas)}", time=now
            )
        elif decision == "down":
            victim = self.autoscaler.pick_victim(active)
            if victim is None:
                return  # every candidate is warm-cache-vetoed
            victim.draining = True
            self.scale_events.append(
                ScaleEvent(time=now, action="down", n_active=len(self.active_replicas))
            )
            self.kernel.mark(
                "scale_down",
                f"replica{victim.replica_id}:n={len(self.active_replicas)}",
                time=now,
            )

    def _autoscale_pool(
        self, now: float, role: str, autoscaler: Optional[Autoscaler]
    ) -> None:
        """One pool's independent scaling decision (disaggregated mode)."""
        if autoscaler is None:
            return
        pool = self._pool(role)
        decision = autoscaler.decide(now, pool)
        if decision == "up":
            replica = self._new_replica(len(self.replicas), role=role)
            replica.started_at = now
            replica.advance_to(now)
            self.replicas.append(replica)
            self.peak_replicas = max(self.peak_replicas, len(self.active_replicas))
            n = len(self._pool(role))
            self.scale_events.append(
                ScaleEvent(time=now, action="up", n_active=n, pool=role)
            )
            self.kernel.mark("scale_up", f"{role}:n={n}", time=now)
        elif decision == "down":
            victim = autoscaler.pick_victim(pool)
            if victim is None:
                return  # every candidate holds warm cache; skip this round
            victim.draining = True
            n = len(self._pool(role))
            self.scale_events.append(
                ScaleEvent(time=now, action="down", n_active=n, pool=role)
            )
            self.kernel.mark(
                "scale_down", f"{role}:replica{victim.replica_id}:n={n}", time=now
            )

    # -- event plumbing ------------------------------------------------------
    def _push(
        self, time: float, kind: str, payload: object, label: str = ""
    ) -> Event:
        return self.kernel.schedule(time, kind, payload, label=label)

    # -- overload protection -------------------------------------------------
    def _breaker_for(self, replica: Replica) -> Optional[CircuitBreaker]:
        if self.config.breaker is None:
            return None
        breaker = self.breakers.get(replica.replica_id)
        if breaker is None:
            breaker = self.breakers[replica.replica_id] = CircuitBreaker(
                self.config.breaker
            )
        return breaker

    def _fleet_signals(self, targets: List[Replica]) -> Tuple[int, float]:
        """(total queue depth, mean finite KV pressure) over ``targets``."""
        depth = sum(r.queue_depth for r in targets)
        pressures = [
            r.kv_pressure for r in targets if r.kv_pressure != float("inf")
        ]
        mean_kv = sum(pressures) / len(pressures) if pressures else float("inf")
        return depth, mean_kv

    def _cluster_admit(self, record: RequestRecord, now: float) -> bool:
        """Cluster-level admission for a first dispatch.  Returns whether
        dispatch should proceed now (DEFER re-enters the event kernel)."""
        if self.admission is None or record.retries > 0:
            return True
        targets = (
            self._pool("prefill")
            if self.config.disagg is not None
            else self.active_replicas
        )
        if not targets:
            # Fleet-down handling (park + retry) owns this case; admission
            # re-evaluates when the record is re-offered after recovery.
            return True
        depth, mean_kv = self._fleet_signals(targets)
        verdict, reason = self.admission.decide(record, now, depth, mean_kv)
        if verdict is AdmissionVerdict.REJECT:
            record.mark_rejected(now, reason)
            self.rejected[record.request.request_id] = record
            return False
        if verdict is AdmissionVerdict.DEFER:
            self._push(
                now + self.config.admission.defer_retry_s, "redispatch", record,
                label=f"r{record.request.request_id}:defer",
            )
            return False
        return True

    # -- dispatch and recovery ----------------------------------------------
    def _dispatch(
        self, record: RequestRecord, now: float, gate: bool = True
    ) -> None:
        # ``gate=False`` skips cluster admission: work re-routed off a
        # draining replica was already admitted once and must not be
        # double-charged against queue-depth or defer budgets.
        if gate and not self._cluster_admit(record, now):
            return
        # Disaggregated fleets prefill everything in the prefill pool —
        # including fault re-dispatches, whose KV died with their source.
        targets = (
            self._pool("prefill")
            if self.config.disagg is not None
            else self.active_replicas
        )
        if not targets:
            # Whole fleet (pool) is down/draining: park until recovery.
            downed = [r for r in self.replicas if r.crashed]
            if not downed:
                if self._op_active is not None:
                    # A fleet op has the whole pool draining at once; the
                    # drained replica rejoins within a poll interval.
                    self._push(
                        now + self._op_active["op"].poll_s, "redispatch",
                        record, label=f"r{record.request.request_id}:op_wait",
                    )
                    return
                raise RuntimeError("no replica can ever accept work (all draining)")
            wake = max(min(r.down_until for r in downed), now)
            self._push(
                wake, "redispatch", record,
                label=f"r{record.request.request_id}:fleet_down",
            )
            return
        if self.config.breaker is not None:
            # Breakers are advisory at the fleet edge: prefer replicas
            # whose breaker admits traffic, but never leave work
            # unroutable when every breaker is open.
            allowed = [
                r for r in targets if self._breaker_for(r).allows(now)
            ]
            if allowed:
                targets = allowed
        target = self.router.choose(record.request, targets)
        breaker = self._breaker_for(target)
        if breaker is not None:
            breaker.record_dispatch(now)
        verdict = target.submit_record(record)
        rid = record.request.request_id
        if verdict is AdmissionVerdict.REJECT:
            # Engine-level admission turned it away; the record is
            # terminal inside the replica and counted from its records.
            self._location.pop(rid, None)
            return
        if verdict is AdmissionVerdict.DEFER:
            self._push(
                now + target.engine.defer_retry_s, "redispatch", record,
                label=f"r{rid}:engine_defer",
            )
            return
        self._location[rid] = target
        if self.config.recover is not None:
            # Post-snapshot lifecycle mark: a crash between this accept
            # and the next checkpoint replays the request from the WAL.
            self._rstate(target).wal.append("submit", rid, now)
        faults = self.config.faults
        if faults is not None and faults.request_timeout_s is not None:
            # The deadline is armed per dispatch; record.retries is the
            # dispatch epoch, so deadlines from superseded dispatches are
            # recognised as stale when they fire.  The handle is kept so
            # a fault eviction cancels the now-moot deadline outright.
            self._timeout_events[rid] = self._push(
                now + faults.request_timeout_s,
                "timeout",
                (record, record.retries),
                label=f"r{rid}@{record.retries}",
            )

    def _retry_or_fail(self, record: RequestRecord, now: float) -> None:
        faults = self.config.faults
        record.reset_for_retry()
        rid = record.request.request_id
        self._location.pop(rid, None)
        # A transfer in flight for this request is moot now — its source
        # KV is gone (crash) or the request left the replica (timeout).
        self._abort_migration(rid)
        # The deadline armed for the dispatch this request just lost can
        # never matter again — cancel it instead of letting it fire stale.
        deadline = self._timeout_events.pop(rid, None)
        if deadline is not None:
            self.kernel.cancel(deadline)
        if record.retries > faults.max_retries:
            record.mark_failed(now)
            self.failed[rid] = record
            return
        self.fault_counters.redispatches += 1
        self._push(
            now + faults.backoff(record.retries), "redispatch", record,
            label=f"r{rid}:retry{record.retries}",
        )

    def _apply_fault(self, event: FaultEvent, now: float) -> None:
        candidates = [r for r in self.replicas if not r.crashed]
        if not candidates:
            return  # the whole fleet is already down; the fault is moot
        victim = candidates[event.salt % len(candidates)]
        if event.kind == "crash":
            self.fault_counters.crashes += 1
            self.fault_counters.downtime_s += event.duration_s
            self._downtime_windows.append((now, now + event.duration_s))
            evicted = victim.crash(down_until=now + event.duration_s)
            warm = self.config.recover is not None
            self._push(
                now + event.duration_s,
                "warm_restart" if warm else "recover",
                victim,
                label=f"replica{victim.replica_id}",
            )
            # Destination crash mid-transfer: the in-flight handoff can
            # never land — cancel it and re-route from the (intact)
            # source.  Source crashes are covered by the eviction loop
            # below (the pinned KV died with the box: full re-prefill).
            for rid, ev in list(self._inflight.items()):
                if ev.kind != "migrate_arrive" or not ev.live:
                    continue
                rec, source, target, _corrupt = ev.payload
                if target is not victim:
                    continue
                self.kernel.cancel(ev)
                del self._inflight[rid]
                self.kernel.mark(
                    "migrate_reroute", f"r{rid}:replica{victim.replica_id}",
                    time=now,
                )
                self._retry_migration(rec, source, now)
            if warm:
                # Hold the evicted records for the warm restart that ends
                # the downtime: the checkpoint (not a cold re-prefill)
                # decides how much of their progress survives.
                state = self._rstate(victim)
                for record in evicted:
                    rid = record.request.request_id
                    self._location.pop(rid, None)
                    self._abort_migration(rid)
                    deadline = self._timeout_events.pop(rid, None)
                    if deadline is not None:
                        self.kernel.cancel(deadline)
                    state.pending.append(record)
            else:
                for record in evicted:
                    self._retry_or_fail(record, now)
        elif event.kind == "stall":
            self.fault_counters.stalls += 1
            victim.stall(event.slowdown)
            self._push(
                now + event.duration_s, "stall_end", victim,
                label=f"replica{victim.replica_id}",
            )
        elif event.kind == "link_stall":
            # Congestion on the migration link: transfers *started* while
            # any stall is active are stretched by the slowdown.
            self.fault_counters.link_stalls += 1
            self._active_link_stalls += 1
            self._push(
                now + event.duration_s, "link_stall_end", None, label="link"
            )
        else:  # pragma: no cover - schedule generation only emits the above
            raise ValueError(f"unknown fault kind {event.kind!r}")

    def _handle_timeout(self, payload, now: float) -> None:
        record, epoch = payload
        rid = record.request.request_id
        # Stale if the request terminated, was re-dispatched since the
        # deadline was armed, or already started streaming tokens.
        if record.retries != epoch or record.first_token_at is not None:
            if record.first_token_at is not None and record.retries == epoch:
                # The dispatch beat its deadline: a breaker success signal
                # (closes a half-open breaker, clears failure streaks).
                replica = self._location.get(rid)
                if replica is not None:
                    breaker = self._breaker_for(replica)
                    if breaker is not None:
                        breaker.record_success(now)
            return
        replica = self._location.get(rid)
        if replica is None or replica.cancel(rid) is None:
            return
        breaker = self._breaker_for(replica)
        if breaker is not None:
            trips_before = breaker.trips
            breaker.record_failure(now)
            if breaker.trips > trips_before:
                self.kernel.mark(
                    "breaker_trip", f"replica{replica.replica_id}", time=now
                )
        self.fault_counters.timeouts += 1
        self._retry_or_fail(record, now)

    # -- checkpointing and warm restart (see repro.recover) ------------------
    def _rstate(self, replica: Replica) -> ReplicaRecoveryState:
        state = self._rstates.get(replica.replica_id)
        if state is None:
            state = self._rstates[replica.replica_id] = (
                ReplicaRecoveryState.fresh(
                    replica.replica_id, self.config.recover.keep_epochs
                )
            )
        return state

    def _schedule_snapshot(self, replica: Replica, t: float) -> None:
        self._live_snapshots += 1
        self._push(t, "snapshot", replica, label=f"replica{replica.replica_id}")

    def _snapshot_work_remains(self) -> bool:
        """Should the snapshot chains stay alive?

        Snapshot events are excluded from the kernel count so the chains
        never keep *themselves* (or each other) alive: once only
        snapshots remain and every surviving replica is idle with nothing
        pending restore, the chains wind down and the run can terminate.
        """
        if len(self.kernel) - self._live_snapshots > 0:
            return True
        if any(state.pending for state in self._rstates.values()):
            return True
        return any(
            not r.crashed and (r.busy or r.engine.migrating)
            for r in self.replicas
        )

    def _handle_snapshot(self, replica: Replica, now: float) -> None:
        self._live_snapshots -= 1
        cfg = self.config.recover
        if not replica.crashed:
            state = self._rstate(replica)
            snap = take_snapshot(
                replica.replica_id, replica.engine, state.epoch, now, cfg,
                self.model, self.method.kv_bits,
            )
            state.epoch += 1
            state.snapshots.append(snap)
            # Everything the WAL recorded is inside the checkpoint now.
            state.wal.truncate()
            self.fault_counters.snapshots_taken += 1
            self.fault_counters.snapshot_bytes += snap.nbytes
            self.kernel.mark(
                "snapshot_taken",
                f"replica{replica.replica_id}:e{snap.epoch}:{snap.digest[:8]}",
                time=now,
            )
        if self._snapshot_work_remains():
            self._schedule_snapshot(replica, now + cfg.snapshot_interval_s)

    def _load_snapshot_ladder(self, state: ReplicaRecoveryState, now: float):
        """Walk the recovery ladder, newest epoch first.

        Returns ``(snapshot, kept, total)`` where ``kept/total`` is the
        verified fraction of the epoch's payload (``kept == total`` for
        an intact epoch), or ``(None, 0, total)`` when no epoch is usable
        and the restart degrades to a cold start.
        """
        cfg = self.config.recover
        for snap in reversed(state.snapshots):
            if not snap.corrupt:
                return snap, cfg.payload_tokens, cfg.payload_tokens
            self.fault_counters.snapshot_corruptions += 1
            self.kernel.mark(
                "snapshot_corrupt",
                f"replica{snap.replica_id}:e{snap.epoch}",
                time=now,
            )
            kept, total = verify_snapshot(snap, cfg)
            if kept > 0:
                self.fault_counters.snapshot_salvages += 1
                self.kernel.mark(
                    "snapshot_salvage",
                    f"replica{snap.replica_id}:e{snap.epoch}:{kept}/{total}",
                    time=now,
                )
                return snap, kept, total
        return None, 0, cfg.payload_tokens

    def _handle_warm_restart(self, replica: Replica, now: float) -> None:
        """End a crash's downtime by restoring from the last checkpoint.

        Held requests captured by the restored epoch resume at the
        verified fraction of their snapshotted progress (exact
        ``[valid, prompt_len)`` recompute ranges, like a salvaged
        migration payload); requests that arrived after the checkpoint
        replay from the write-ahead log from token zero.  If no epoch is
        usable the restart degrades to the classic cold retry path —
        degraded, never lost.
        """
        replica.recover(now)
        state = self._rstate(replica)
        held = list(state.pending)
        state.pending.clear()
        self.fault_counters.warm_restarts += 1
        snap, kept, total = self._load_snapshot_ladder(state, now)
        if snap is None:
            self.fault_counters.cold_restores += 1
            self.kernel.mark(
                "cold_restore", f"replica{replica.replica_id}", time=now
            )
            for record in held:
                self._retry_or_fail(record, now)
            return
        snap_map = {s.rid: s for s in snap.requests}
        faults = self.config.faults
        restored = 0
        for record in held:
            rid = record.request.request_id
            s = snap_map.get(rid)
            if s is None:
                # Post-checkpoint arrival: the WAL has its submit but no
                # KV — it replays from token zero on the restarted box.
                self.kernel.mark("wal_replay", f"r{rid}", time=now)
                record.reset_for_recovery(0, 0)
            else:
                # Map the epoch's verified fraction onto this request's
                # snapshotted context, rounding down: the resume point
                # never claims a token the checksums did not cover.
                valid = s.context_tokens * kept // total
                keep_p = min(valid, s.prefilled)
                keep_g = max(0, valid - s.prefilled)
                record.reset_for_recovery(keep_p, keep_g, s.first_token_at)
                self.fault_counters.restored_prefill_tokens += keep_p
                self.fault_counters.restored_decode_tokens += keep_g
            replica.restore_record(record)
            restored += 1
            self.fault_counters.recovered_requests += 1
            self._location[rid] = replica
            state.wal.append("submit", rid, now)
            if (
                faults is not None
                and faults.request_timeout_s is not None
                and record.first_token_at is None
            ):
                self._timeout_events[rid] = self._push(
                    now + faults.request_timeout_s, "timeout",
                    (record, record.retries),
                    label=f"r{rid}@{record.retries}",
                )
        self.kernel.mark(
            "warm_restore",
            f"replica{replica.replica_id}:e{snap.epoch}:{restored}",
            time=now,
        )

    # -- operator-initiated fleet operations ---------------------------------
    def _handle_fleet_op(self, op: FleetOp, now: float) -> None:
        if op.kind == "drain":
            targets = [op.replica_id]
        else:  # rolling_restart drains one replica at a time, in id order
            targets = [r.replica_id for r in self.replicas]
        self._op_backlog.append({"op": op, "targets": targets, "current": None})
        self._op_advance(now)

    def _op_advance(self, now: float) -> None:
        """Advance the single active fleet op's drain state machine."""
        while True:
            state = self._op_active
            if state is None:
                if not self._op_backlog:
                    return
                state = self._op_active = self._op_backlog.pop(0)
            if state["current"] is None:
                if not state["targets"]:
                    if state["op"].kind == "rolling_restart":
                        self.fault_counters.rolling_restarts += 1
                    self._op_active = None
                    continue
                target_id = state["targets"].pop(0)
                if target_id >= len(self.replicas):
                    continue  # the op named a replica that never existed
                state["current"] = target_id
                self._begin_drain(self.replicas[target_id], now)
            replica = self.replicas[state["current"]]
            if self._drained(replica):
                self._finish_drain(replica, now)
                state["current"] = None
                continue
            self._push(
                now + state["op"].poll_s, "op_check", None,
                label=f"replica{state['current']}",
            )
            return

    def _begin_drain(self, replica: Replica, now: float) -> None:
        replica.draining = True
        self.kernel.mark("drain_begin", f"replica{replica.replica_id}", time=now)
        # Queued (not yet admitted) work re-routes to the rest of the
        # fleet immediately; admitted work finishes in place — a graceful
        # drain never discards live progress and never drops a request.
        for rid in list(replica.engine.waiting):
            record = replica.cancel(rid)
            if record is None:
                continue
            self._location.pop(rid, None)
            deadline = self._timeout_events.pop(rid, None)
            if deadline is not None:
                self.kernel.cancel(deadline)
            if record.prefilled or record.generated:
                # A queued record can carry migrated-in progress; that KV
                # dies with the re-route and is charged as recovery waste.
                record.reset_for_recovery(0, 0)
            self._push(now, "requeue", record, label=f"r{rid}:drain")

    def _drained(self, replica: Replica) -> bool:
        return (
            not replica.crashed
            and not replica.engine.busy
            and not replica.engine.migrating
            and not replica.engine.handoff_ready
        )

    def _finish_drain(self, replica: Replica, now: float) -> None:
        self.kernel.mark("drain_done", f"replica{replica.replica_id}", time=now)
        # The restart itself: the engine is empty by construction, so it
        # reduces to clearing any stall and rejoining the dispatchable
        # set with the clock caught up over the (instant) restart.
        replica.engine.time_scale = 1.0
        replica.advance_to(now)
        replica.draining = False
        self.fault_counters.drains += 1
        self.kernel.mark("rejoin", f"replica{replica.replica_id}", time=now)

    # -- KV migration (disaggregated mode; see repro.migrate) ----------------
    @property
    def _link_slowdown(self) -> float:
        """Transfer-time multiplier while link-congestion stalls are live."""
        if self._active_link_stalls > 0 and self.config.faults is not None:
            return self.config.faults.link_stall_slowdown
        return 1.0

    @property
    def _migration_budget(self) -> int:
        faults = self.config.faults
        return faults.max_migration_retries if faults is not None else 2

    def _migration_backoff(self, retries: int) -> float:
        faults = self.config.faults
        if faults is not None:
            return faults.backoff(retries)
        # Clean runs still retry (e.g. no decode target yet): use the
        # fault model's default capped-exponential shape.
        return min(0.5 * 2.0 ** (retries - 1), 8.0)

    def _abort_migration(self, rid: int) -> None:
        """Revoke the in-flight transfer/retry for one request, if any."""
        ev = self._inflight.pop(rid, None)
        if ev is not None:
            self.kernel.cancel(ev)

    def _collect_handoffs(self, now: float) -> None:
        """Turn newly prefill-complete requests into migration events.

        Called after every handled cluster event and each drain round;
        a no-op for unified fleets.  The transfer starts no earlier than
        the engine-reported prefill completion and no earlier than the
        kernel's clock (the fleet-sync staleness every dispatch has).
        """
        if self.config.disagg is None:
            return
        for replica in self.replicas:
            if replica.role != "prefill" or replica.crashed:
                continue
            for record in replica.engine.take_handoffs():
                start = max(record.prefill_done_at, now, self.kernel.now)
                self._begin_migration(record, replica, start)

    def _begin_migration(
        self, record: RequestRecord, source: Replica, now: float
    ) -> None:
        """Ship one request's KV toward a decode replica.

        Charges the width-dependent wire cost (a 4-bit cache migrates
        ~4x cheaper than FP16), rolls the seeded per-attempt fault
        outcome, and schedules the arrival as a cancellable kernel event.
        """
        rid = record.request.request_id
        attempt = record.migration_retries
        targets = self._pool("decode")
        if self.config.breaker is not None and targets:
            allowed = [r for r in targets if self._breaker_for(r).allows(now)]
            if allowed:
                targets = allowed
        if not targets:
            self.kernel.mark("migrate_reroute", f"r{rid}:no_target", time=now)
            self._retry_migration(record, source, now)
            return
        target = self.decode_router.choose(record.request, targets)
        kv_bits = (
            record.kv_bits if record.kv_bits is not None else self.method.kv_bits
        )
        nbytes = kv_wire_bytes(self.model, record.request.prompt_len, kv_bits)
        transfer = self.gpu.transfer_time(nbytes) * self._link_slowdown
        # Wire bytes are spent whether or not the transfer lands.
        record.migrated_bytes += nbytes
        self.kernel.mark(
            "migrate_send", f"r{rid}->replica{target.replica_id}", time=now
        )
        roll = (
            self._injector.migration_roll(rid, attempt)
            if self._injector is not None
            else "ok"
        )
        if roll == "drop":
            self.fault_counters.migration_drops += 1
            self.kernel.mark("migrate_drop", f"r{rid}#{attempt}", time=now)
            self._retry_migration(record, source, now + transfer)
            return
        ev = self._push(
            now + transfer, "migrate_arrive",
            (record, source, target, roll == "corrupt"),
            label=f"r{rid}->replica{target.replica_id}",
        )
        self._inflight[rid] = ev

    def _retry_migration(
        self, record: RequestRecord, source: Replica, now: float
    ) -> None:
        """Re-send after capped backoff; the budget check runs at fire
        time so a late local-fallback decision sees the current fleet."""
        rid = record.request.request_id
        record.migration_retries += 1
        ev = self._push(
            now + self._migration_backoff(record.migration_retries),
            "migrate_retry", (record, source),
            label=f"r{rid}:retry{record.migration_retries}",
        )
        self._inflight[rid] = ev

    def _handle_migrate_retry(self, fired: Event, now: float) -> None:
        record, source = fired.payload
        rid = record.request.request_id
        if self._inflight.get(rid) is not fired:
            return  # superseded (re-routed, evicted, or timed out)
        del self._inflight[rid]
        if rid not in source.engine.migrating:
            return  # the source lost the request meanwhile (crash/timeout)
        if record.migration_retries > self._migration_budget:
            # Budget exhausted: degrade to decoding on the prefill
            # replica — the KV is already resident there.  Slower for
            # the pool, terminal-never-lost for the request.
            source.engine.resume_local_decode(rid)
            self.kernel.mark("local_fallback", f"r{rid}", time=now)
            return
        self._begin_migration(record, source, now)

    def _handle_migrate_arrive(self, fired: Event, now: float) -> None:
        record, source, target, corrupt = fired.payload
        rid = record.request.request_id
        if self._inflight.get(rid) is not fired:
            return  # superseded by a reroute/abort
        del self._inflight[rid]
        if rid not in source.engine.migrating:
            return  # the source lost the request meanwhile (crash/timeout)
        if not target.dispatchable:
            # Destination drained/crashed while the bytes were in flight.
            self.kernel.mark(
                "migrate_reroute", f"r{rid}:replica{target.replica_id}", time=now
            )
            self._retry_migration(record, source, now)
            return
        disagg = self.config.disagg
        if corrupt:
            # Run the *real* serialization/checksum/salvage machinery on
            # a miniature faithful payload: CRC32 detects the flip,
            # salvage keeps the longest valid block prefix, and the kept
            # fraction maps back onto prompt tokens — the decode replica
            # resumes from ``valid`` and re-prefills only [valid, len).
            self.fault_counters.migration_corruptions += 1
            cfg = disagg.migration
            seed = self.config.faults.seed if self.config.faults is not None else 0
            attempt = record.migration_retries
            kv_bits = (
                record.kv_bits if record.kv_bits is not None else self.method.kv_bits
            )
            arrays = build_payload(rid, attempt, seed, kv_bits, cfg)
            damaged = corrupt_payload(arrays, rid, attempt, seed, cfg)
            outcome = receive_payload(damaged, record.request.prompt_len, cfg)
            record.prefilled = outcome.valid_tokens
            record.salvage_recomputed_tokens += outcome.recompute_tokens
            self.kernel.mark(
                "migrate_corrupt",
                f"r{rid}:valid{outcome.valid_tokens}/{record.request.prompt_len}",
                time=now,
            )
        record.status = RequestStatus.WAITING
        verdict = target.submit_record(record)
        if verdict is AdmissionVerdict.ACCEPT:
            source.engine.release_migrated(rid)
            record.migrations += 1
            if record.prefill_done_at is not None:
                record.handoff_latency = now - record.prefill_done_at
            self._location[rid] = target
            if self.config.recover is not None:
                self._rstate(target).wal.append("submit", rid, now)
            self.kernel.mark(
                "handoff_done", f"r{rid}->replica{target.replica_id}", time=now
            )
        elif verdict is AdmissionVerdict.DEFER:
            # Target saturated: KV stays pinned on the source; re-offer
            # the (already verified) delivery after a wait.
            record.status = RequestStatus.MIGRATING
            ev = self._push(
                now + disagg.migration.defer_retry_s, "migrate_arrive",
                (record, source, target, False), label=f"r{rid}:defer",
            )
            self._inflight[rid] = ev
        else:  # REJECT — terminal inside the target's records
            # The source's real prefill work dies with the rejection:
            # charge it to the record's waste counters before the source
            # releases the pinned KV, or it silently vanishes from the
            # wasted-token accounting.
            record.wasted_prefill_tokens += record.prefilled
            record.wasted_decode_tokens += record.generated
            source.engine.release_migrated(rid)
            self._location.pop(rid, None)
            deadline = self._timeout_events.pop(rid, None)
            if deadline is not None:
                self.kernel.cancel(deadline)

    # -- simulation ----------------------------------------------------------
    def run(self, requests: Sequence[Request]) -> ClusterMetrics:
        arrivals = sorted(requests, key=lambda r: (r.arrival_time, r.request_id))
        for request in arrivals:
            self._push(
                request.arrival_time, "arrival", request,
                label=f"r{request.request_id}",
            )
        if self._injector is not None and arrivals:
            horizon = arrivals[-1].arrival_time + self.config.faults.horizon_pad_s
            for event in self._injector.schedule(horizon):
                self._push(
                    event.time, "fault", event,
                    label=f"{event.kind}#{event.salt}",
                )
        if self.config.recover is not None and arrivals:
            for replica in self.replicas:
                self._schedule_snapshot(
                    replica, self.config.recover.snapshot_interval_s
                )
        for op in self.config.ops:
            self._push(op.time, "fleet_op", op, label=op.kind)

        # Event loop and drain are one cycle: handling an event (or a
        # drain round) can surface prefill-complete requests whose
        # migrations schedule *new* kernel events, so neither phase is
        # ever finally "done" until both are quiet.  For unified fleets
        # this reduces exactly to the classic pop-all-then-drain order
        # (no handoffs exist, and popping an empty kernel emits nothing),
        # keeping golden cluster traces byte-identical.
        while True:
            if self.config.disagg is not None:
                # Pull prefill replicas forward *before* popping: prompts
                # that complete between cluster events must start their
                # transfer at the true prefill-completion time (which is
                # still >= kernel.now pre-pop), not at the next event's
                # time — otherwise every handoff pays event-granularity
                # latency.  The scheduled arrival may land before the
                # event we were about to pop; the heap sorts that out.
                t_next = self.kernel.next_time
                if t_next is not None:
                    self._advance_fleet_to(t_next, role="prefill")
                    self._collect_handoffs(self.kernel.now)
                # The pre-pop pull must re-run between events, so disagg
                # fleets pop one at a time; unified fleets drain the whole
                # same-instant batch without re-entering the outer loop.
                head = self.kernel.pop()
                batch = iter(()) if head is None else iter((head,))
            else:
                batch = self.kernel.pop_batch()
            fired_any = False
            for fired in batch:
                fired_any = True
                t, kind, payload = fired.time, fired.kind, fired.payload
                self._advance_fleet_to(t)
                self._autoscale(t)
                if kind == "arrival":
                    self._dispatch(RequestRecord(request=payload), t)
                elif kind == "redispatch":
                    self._dispatch(payload, t)
                elif kind == "fault":
                    self._apply_fault(payload, t)
                elif kind == "recover":
                    payload.recover(t)
                elif kind == "stall_end":
                    payload.clear_stall()
                elif kind == "timeout":
                    self._handle_timeout(payload, t)
                elif kind == "link_stall_end":
                    self._active_link_stalls -= 1
                elif kind == "migrate_arrive":
                    self._handle_migrate_arrive(fired, t)
                elif kind == "migrate_retry":
                    self._handle_migrate_retry(fired, t)
                elif kind == "warm_restart":
                    self._handle_warm_restart(payload, t)
                elif kind == "snapshot":
                    self._handle_snapshot(payload, t)
                elif kind == "fleet_op":
                    self._handle_fleet_op(payload, t)
                elif kind == "op_check":
                    self._op_advance(t)
                elif kind == "requeue":
                    self._dispatch(payload, t, gate=False)
                self._collect_handoffs(t)
            if fired_any:
                continue
            # Drain round: run surviving replicas to completion.  A
            # replica still down here lost its work to _retry_or_fail
            # already.  Prefill engines park finished prompts in
            # ``migrating`` (not busy), so the round stops early at each
            # fresh handoff and the collect below ships it.
            progressed = False
            if self.config.disagg is not None:
                # Disaggregated drain interleaves the pools one step at a
                # time so late handoffs deliver while decode replicas are
                # still near the handoff clock, not after they finished
                # their whole resident batch.
                for replica in self.replicas:
                    if replica.crashed:
                        continue
                    if replica.busy and not replica.engine.migration_blocked:
                        self._step_replica(replica)
                        progressed = True
            else:
                for replica in self.replicas:
                    if replica.crashed:
                        continue
                    while replica.busy:
                        self._advance_replica(replica, None)
                        progressed = True
            self._collect_handoffs(self.kernel.now)
            if self.kernel.empty and not progressed:
                break

        worked = [r for r in self.replicas if r.records]
        makespan = max((r.clock for r in worked), default=0.0)
        if self._downtime_windows:
            # Clip each crash's downtime window to the observed makespan:
            # a crash near the end of a run schedules recovery past the
            # point the run stopped observing, and those phantom
            # replica-seconds must not be charged against availability.
            self.fault_counters.downtime_s = downtime_within(
                self._downtime_windows, makespan
            )
        records_by_replica = {
            r.replica_id: list(r.records.values()) for r in self.replicas
        }
        stats = [
            ReplicaStats(
                replica_id=r.replica_id,
                completed=sum(
                    1 for rec in r.records.values() if rec.finished_at is not None
                ),
                peak_running=r.peak_running,
                preemptions=sum(rec.preemptions for rec in r.records.values()),
                kv_utilization=r.kv_utilization,
                drained=r.draining,
            )
            for r in self.replicas
        ]
        return summarize_cluster(
            records_by_replica,
            slo=self.config.slo,
            makespan=makespan,
            replica_stats=stats,
            scale_events=self.scale_events,
            peak_replicas=self.peak_replicas,
            final_replicas=len(self.active_replicas),
            failed_records=list(self.failed.values()),
            fault_counters=self.fault_counters,
            rejected_records=list(self.rejected.values()),
            base_kv_bits=self.method.kv_bits,
            breaker_trips=sum(b.trips for b in self.breakers.values()),
            shared_blocks=sum(
                r.engine.prefix_pool.peak_resident_blocks
                for r in self.replicas
                if r.engine.prefix_pool is not None
            ),
        )

"""Multi-replica cluster serving simulator.

Composes N tensor-parallel :class:`~repro.cluster.replica.Replica` engines
behind one router.  Time runs as a discrete-event loop over the shared
arrival stream:

1. **Synchronise** — before dispatching the arrival at time ``t``, every
   busy replica steps forward until its local clock reaches ``t`` (engine
   steps are atomic, so a replica may overshoot slightly — the same
   "decision reads state as of the last completed iteration" staleness a
   real router has); idle replicas jump their clocks to ``t``.
2. **Autoscale** — the optional queue-depth controller may add a fresh
   replica or mark one draining (no new dispatches; it finishes what it
   holds and retires when empty).
3. **Route** — the policy picks an active replica from its load signals
   and the request is submitted to that replica's FCFS queue.
4. **Drain** — after the last arrival, replicas run to completion.

Every request is dispatched to exactly one replica and every replica's
records are aggregated into the :class:`~repro.cluster.metrics.ClusterMetrics`,
so conservation ("each request finishes exactly once") holds by
construction and is asserted by the test suite from the returned data.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from repro.cluster.autoscaler import Autoscaler, AutoscalerConfig
from repro.cluster.metrics import (
    SLO,
    ClusterMetrics,
    ReplicaStats,
    ScaleEvent,
    summarize_cluster,
)
from repro.cluster.replica import Replica
from repro.cluster.router import make_router
from repro.perf.attention_costs import MethodSpec
from repro.perf.e2e import ModelGeometry
from repro.perf.gpu import A100_80GB, GPUSpec
from repro.serving.engine import EngineConfig
from repro.serving.request import Request

__all__ = ["ClusterConfig", "ClusterSimulator"]


@dataclass(frozen=True)
class ClusterConfig:
    """Fleet tunables."""

    n_replicas: int = 2
    #: Tensor-parallel degree of every replica (homogeneous fleet).
    tp: int = 1
    policy: str = "round_robin"
    slo: SLO = SLO()
    engine: EngineConfig = EngineConfig()
    #: ``None`` disables autoscaling (fixed fleet of ``n_replicas``).
    autoscaler: Optional[AutoscalerConfig] = None
    #: Global engine-iteration guard across the whole fleet.
    max_steps: int = 20_000_000

    def __post_init__(self) -> None:
        if self.n_replicas < 1:
            raise ValueError("n_replicas must be >= 1")


class ClusterSimulator:
    """Serve one arrival stream on a simulated replica fleet."""

    def __init__(
        self,
        model: ModelGeometry,
        method: MethodSpec,
        config: ClusterConfig = ClusterConfig(),
        gpu: GPUSpec = A100_80GB,
    ):
        self.model = model
        self.method = method
        self.config = config
        self.gpu = gpu
        self._engine_config = replace(config.engine, tp=config.tp)
        self.replicas: List[Replica] = [
            self._new_replica(i) for i in range(config.n_replicas)
        ]
        self.router = make_router(config.policy)
        self.autoscaler = (
            Autoscaler(config.autoscaler) if config.autoscaler is not None else None
        )
        self.scale_events: List[ScaleEvent] = []
        self.peak_replicas = config.n_replicas
        self._steps = 0

    # -- fleet management ---------------------------------------------------
    def _new_replica(self, replica_id: int) -> Replica:
        return Replica(
            replica_id, self.model, self.method, self._engine_config, self.gpu
        )

    @property
    def active_replicas(self) -> List[Replica]:
        return [r for r in self.replicas if not r.draining]

    def _step_replica(self, replica: Replica) -> None:
        self._steps += 1
        if self._steps > self.config.max_steps:
            raise RuntimeError("cluster step limit exceeded (livelock?)")
        replica.step()

    def _advance_fleet_to(self, t: float) -> None:
        for replica in self.replicas:
            while replica.busy and replica.clock < t:
                self._step_replica(replica)
            replica.advance_to(t)

    def _autoscale(self, now: float) -> None:
        if self.autoscaler is None:
            return
        active = self.active_replicas
        decision = self.autoscaler.decide(now, active)
        if decision == "up":
            replica = self._new_replica(len(self.replicas))
            replica.started_at = now
            replica.advance_to(now)
            self.replicas.append(replica)
            self.peak_replicas = max(self.peak_replicas, len(self.active_replicas))
            self.scale_events.append(
                ScaleEvent(time=now, action="up", n_active=len(self.active_replicas))
            )
        elif decision == "down":
            victim = Autoscaler.pick_victim(active)
            victim.draining = True
            self.scale_events.append(
                ScaleEvent(time=now, action="down", n_active=len(self.active_replicas))
            )

    # -- simulation ----------------------------------------------------------
    def run(self, requests: Sequence[Request]) -> ClusterMetrics:
        arrivals = sorted(requests, key=lambda r: (r.arrival_time, r.request_id))
        for request in arrivals:
            t = request.arrival_time
            self._advance_fleet_to(t)
            self._autoscale(t)
            target = self.router.choose(request, self.active_replicas)
            target.submit(request)

        # Drain: run every replica to completion.
        for replica in self.replicas:
            while replica.busy:
                self._step_replica(replica)

        worked = [r for r in self.replicas if r.records]
        makespan = max((r.clock for r in worked), default=0.0)
        records_by_replica = {
            r.replica_id: list(r.records.values()) for r in self.replicas
        }
        stats = [
            ReplicaStats(
                replica_id=r.replica_id,
                completed=sum(
                    1 for rec in r.records.values() if rec.finished_at is not None
                ),
                peak_running=r.peak_running,
                preemptions=sum(rec.preemptions for rec in r.records.values()),
                kv_utilization=r.kv_utilization,
                drained=r.draining,
            )
            for r in self.replicas
        ]
        return summarize_cluster(
            records_by_replica,
            slo=self.config.slo,
            makespan=makespan,
            replica_stats=stats,
            scale_events=self.scale_events,
            peak_replicas=self.peak_replicas,
            final_replicas=len(self.active_replicas),
        )

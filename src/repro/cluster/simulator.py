"""Multi-replica cluster serving simulator.

Composes N tensor-parallel :class:`~repro.cluster.replica.Replica` engines
behind one router.  Time runs as a discrete-event loop — the fleet's
timeline of request arrivals, fault-injection events, recovery events,
and retry re-dispatches lives on one :class:`repro.sim.EventScheduler`
(the same kernel the engine's closed loop drives), which owns
same-instant ordering, cancellation, monotonic time, and optional
per-event trace output:

1. **Synchronise** — before handling the event at time ``t``, every busy
   replica steps forward until its local clock reaches ``t`` (engine
   steps are atomic, so a replica may overshoot slightly — the same
   "decision reads state as of the last completed iteration" staleness a
   real router has); idle replicas jump their clocks to ``t``.
2. **Autoscale** — the optional queue-depth controller may add a fresh
   replica or mark one draining (no new dispatches; it finishes what it
   holds and retires when empty); a fleet that crashes below its floor is
   topped back up immediately.
3. **Handle the event** — arrivals and re-dispatches are routed to a
   dispatchable replica; crash/stall faults hit a victim chosen by the
   event's salt; recoveries bring replicas back; timeouts pull back
   requests still waiting for their first token.
4. **Drain** — after the last event, replicas run to completion.

Fault recovery (see :mod:`repro.cluster.faults`): a crash evicts every
admitted and queued request on the victim; each evicted request is
re-dispatched through the router after capped exponential backoff, its
KV re-prefilled at real cost on the new replica.  A request whose retry
budget is exhausted is recorded as ``FAILED`` — the run degrades, it
never crashes or loses a request.

Overload protection (see :mod:`repro.overload`): cluster-level admission
gates fresh arrivals on fleet-aggregate queue depth and KV pressure
before any replica is chosen (re-dispatches of already-admitted work
bypass it); per-replica circuit breakers steer dispatches away from
replicas that keep timing out; engine-level admission/shedding/brownout
run inside each replica when configured on the engine.  Every submitted
request still terminates exactly once —
``completed + failed + rejected + shed == total`` — which the test
suite asserts from the returned data, byte-identical across reruns.

Determinism is verified at the event level: pass a
:class:`repro.sim.TraceSink` and every kernel operation plus every
replica's request-lifecycle marks stream into one diffable trace whose
blake2b digest must reproduce seed-for-seed
(``python -m repro cluster --faults --trace run.jsonl``, then
``python -m repro trace-diff`` between reruns).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.autoscaler import Autoscaler, AutoscalerConfig
from repro.cluster.faults import FaultConfig, FaultEvent, FaultInjector
from repro.cluster.metrics import (
    SLO,
    ClusterMetrics,
    FaultCounters,
    ReplicaStats,
    ScaleEvent,
    summarize_cluster,
)
from repro.cluster.replica import Replica
from repro.cluster.router import make_router
from repro.overload.admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionVerdict,
)
from repro.overload.breaker import BreakerConfig, CircuitBreaker
from repro.perf.attention_costs import MethodSpec
from repro.perf.e2e import ModelGeometry
from repro.perf.gpu import A100_80GB, GPUSpec
from repro.serving.engine import EngineConfig
from repro.serving.request import Request, RequestRecord
from repro.sim.kernel import Event, EventScheduler
from repro.sim.trace import TraceSink

__all__ = ["CLUSTER_EVENT_ORDER", "ClusterConfig", "ClusterSimulator"]

# The cluster's closed event taxonomy (see :mod:`repro.sim.kernel`).
# Same-instant events resolve in a fixed order so runs are reproducible:
# replicas recover and stalls clear before new work is placed, faults
# strike before dispatches (a request arriving "as" a replica dies never
# lands on the corpse), and timeout checks run after everything else.
# The kernel enforces the map's closure — a new event kind without an
# order class here raises instead of silently sorting by name.
CLUSTER_EVENT_ORDER = {
    "recover": 0,
    "stall_end": 1,
    "fault": 2,
    "arrival": 3,
    "redispatch": 3,
    "timeout": 4,
    # lifecycle marks (not scheduled; registered to pin the taxonomy)
    "scale_up": 10,
    "scale_down": 11,
    "breaker_trip": 12,
}


@dataclass(frozen=True)
class ClusterConfig:
    """Fleet tunables."""

    n_replicas: int = 2
    #: Tensor-parallel degree of every replica (homogeneous fleet).
    tp: int = 1
    policy: str = "round_robin"
    slo: SLO = SLO()
    engine: EngineConfig = EngineConfig()
    #: ``None`` disables autoscaling (fixed fleet of ``n_replicas``).
    autoscaler: Optional[AutoscalerConfig] = None
    #: ``None`` disables fault injection (the healthy-hardware baseline).
    faults: Optional[FaultConfig] = None
    #: Cluster-level admission control: fresh arrivals are gated on the
    #: fleet's aggregate queue depth and mean KV pressure *before* any
    #: replica is chosen.  Fault-recovery re-dispatches bypass it (their
    #: work is already admitted and partially paid for).
    admission: Optional[AdmissionConfig] = None
    #: Per-replica circuit breaker on consecutive dispatch timeouts, so
    #: one sick replica spills its load instead of eating retry storms.
    breaker: Optional[BreakerConfig] = None
    #: Global engine-iteration guard across the whole fleet.
    max_steps: int = 20_000_000

    def __post_init__(self) -> None:
        if self.n_replicas < 1:
            raise ValueError("n_replicas must be >= 1")


class ClusterSimulator:
    """Serve one arrival stream on a simulated replica fleet."""

    def __init__(
        self,
        model: ModelGeometry,
        method: MethodSpec,
        config: ClusterConfig = ClusterConfig(),
        gpu: GPUSpec = A100_80GB,
        trace: Optional[TraceSink] = None,
    ):
        self.model = model
        self.method = method
        self.config = config
        self.gpu = gpu
        #: Optional structured trace: the cluster's kernel and every
        #: replica's engine write interleaved records to this one sink.
        self.trace = trace
        #: The fleet's event kernel — the one timeline of arrivals,
        #: re-dispatches, faults, recoveries, and timeout deadlines.
        self.kernel = EventScheduler(
            CLUSTER_EVENT_ORDER, clock="cluster", trace=trace
        )
        self._engine_config = replace(config.engine, tp=config.tp)
        self.replicas: List[Replica] = [
            self._new_replica(i) for i in range(config.n_replicas)
        ]
        self.router = make_router(config.policy)
        self.autoscaler = (
            Autoscaler(config.autoscaler) if config.autoscaler is not None else None
        )
        self.scale_events: List[ScaleEvent] = []
        self.fault_counters = FaultCounters()
        self.failed: Dict[int, RequestRecord] = {}
        #: Requests turned away by cluster-level admission (terminal).
        self.rejected: Dict[int, RequestRecord] = {}
        self.admission = (
            AdmissionController(config.admission)
            if config.admission is not None
            else None
        )
        self.breakers: Dict[int, CircuitBreaker] = {}
        self.peak_replicas = config.n_replicas
        self._steps = 0
        self._location: Dict[int, Replica] = {}
        #: Live timeout-deadline events by request id, cancelled when the
        #: request leaves the replica the deadline was armed against.
        self._timeout_events: Dict[int, Event] = {}

    # -- fleet management ---------------------------------------------------
    def _new_replica(self, replica_id: int) -> Replica:
        return Replica(
            replica_id, self.model, self.method, self._engine_config, self.gpu,
            trace=self.trace,
        )

    @property
    def active_replicas(self) -> List[Replica]:
        """Replicas the fleet can count on: neither draining nor down."""
        return [r for r in self.replicas if r.dispatchable]

    def _step_replica(self, replica: Replica) -> None:
        self._steps += 1
        if self._steps > self.config.max_steps:
            raise RuntimeError("cluster step limit exceeded (livelock?)")
        replica.step()

    def _advance_fleet_to(self, t: float) -> None:
        for replica in self.replicas:
            if replica.crashed:
                continue  # a down replica holds no work and does not step
            while replica.busy and replica.clock < t:
                self._step_replica(replica)
            replica.advance_to(t)

    def _autoscale(self, now: float) -> None:
        if self.autoscaler is None:
            return
        active = self.active_replicas
        decision = self.autoscaler.decide(now, active)
        if decision == "up":
            replica = self._new_replica(len(self.replicas))
            replica.started_at = now
            replica.advance_to(now)
            self.replicas.append(replica)
            self.peak_replicas = max(self.peak_replicas, len(self.active_replicas))
            self.scale_events.append(
                ScaleEvent(time=now, action="up", n_active=len(self.active_replicas))
            )
            self.kernel.mark(
                "scale_up", f"n={len(self.active_replicas)}", time=now
            )
        elif decision == "down":
            victim = Autoscaler.pick_victim(active)
            victim.draining = True
            self.scale_events.append(
                ScaleEvent(time=now, action="down", n_active=len(self.active_replicas))
            )
            self.kernel.mark(
                "scale_down",
                f"replica{victim.replica_id}:n={len(self.active_replicas)}",
                time=now,
            )

    # -- event plumbing ------------------------------------------------------
    def _push(
        self, time: float, kind: str, payload: object, label: str = ""
    ) -> Event:
        return self.kernel.schedule(time, kind, payload, label=label)

    # -- overload protection -------------------------------------------------
    def _breaker_for(self, replica: Replica) -> Optional[CircuitBreaker]:
        if self.config.breaker is None:
            return None
        breaker = self.breakers.get(replica.replica_id)
        if breaker is None:
            breaker = self.breakers[replica.replica_id] = CircuitBreaker(
                self.config.breaker
            )
        return breaker

    def _fleet_signals(self, targets: List[Replica]) -> Tuple[int, float]:
        """(total queue depth, mean finite KV pressure) over ``targets``."""
        depth = sum(r.queue_depth for r in targets)
        pressures = [
            r.kv_pressure for r in targets if r.kv_pressure != float("inf")
        ]
        mean_kv = sum(pressures) / len(pressures) if pressures else float("inf")
        return depth, mean_kv

    def _cluster_admit(self, record: RequestRecord, now: float) -> bool:
        """Cluster-level admission for a first dispatch.  Returns whether
        dispatch should proceed now (DEFER re-enters the event kernel)."""
        if self.admission is None or record.retries > 0:
            return True
        targets = self.active_replicas
        if not targets:
            # Fleet-down handling (park + retry) owns this case; admission
            # re-evaluates when the record is re-offered after recovery.
            return True
        depth, mean_kv = self._fleet_signals(targets)
        verdict, reason = self.admission.decide(record, now, depth, mean_kv)
        if verdict is AdmissionVerdict.REJECT:
            record.mark_rejected(now, reason)
            self.rejected[record.request.request_id] = record
            return False
        if verdict is AdmissionVerdict.DEFER:
            self._push(
                now + self.config.admission.defer_retry_s, "redispatch", record,
                label=f"r{record.request.request_id}:defer",
            )
            return False
        return True

    # -- dispatch and recovery ----------------------------------------------
    def _dispatch(self, record: RequestRecord, now: float) -> None:
        if not self._cluster_admit(record, now):
            return
        targets = self.active_replicas
        if not targets:
            # Whole fleet is down/draining: park until the first recovery.
            downed = [r for r in self.replicas if r.crashed]
            if not downed:
                raise RuntimeError("no replica can ever accept work (all draining)")
            wake = max(min(r.down_until for r in downed), now)
            self._push(
                wake, "redispatch", record,
                label=f"r{record.request.request_id}:fleet_down",
            )
            return
        if self.config.breaker is not None:
            # Breakers are advisory at the fleet edge: prefer replicas
            # whose breaker admits traffic, but never leave work
            # unroutable when every breaker is open.
            allowed = [
                r for r in targets if self._breaker_for(r).allows(now)
            ]
            if allowed:
                targets = allowed
        target = self.router.choose(record.request, targets)
        breaker = self._breaker_for(target)
        if breaker is not None:
            breaker.record_dispatch(now)
        verdict = target.submit_record(record)
        rid = record.request.request_id
        if verdict is AdmissionVerdict.REJECT:
            # Engine-level admission turned it away; the record is
            # terminal inside the replica and counted from its records.
            self._location.pop(rid, None)
            return
        if verdict is AdmissionVerdict.DEFER:
            self._push(
                now + target.engine.defer_retry_s, "redispatch", record,
                label=f"r{rid}:engine_defer",
            )
            return
        self._location[rid] = target
        faults = self.config.faults
        if faults is not None and faults.request_timeout_s is not None:
            # The deadline is armed per dispatch; record.retries is the
            # dispatch epoch, so deadlines from superseded dispatches are
            # recognised as stale when they fire.  The handle is kept so
            # a fault eviction cancels the now-moot deadline outright.
            self._timeout_events[rid] = self._push(
                now + faults.request_timeout_s,
                "timeout",
                (record, record.retries),
                label=f"r{rid}@{record.retries}",
            )

    def _retry_or_fail(self, record: RequestRecord, now: float) -> None:
        faults = self.config.faults
        record.reset_for_retry()
        rid = record.request.request_id
        self._location.pop(rid, None)
        # The deadline armed for the dispatch this request just lost can
        # never matter again — cancel it instead of letting it fire stale.
        deadline = self._timeout_events.pop(rid, None)
        if deadline is not None:
            self.kernel.cancel(deadline)
        if record.retries > faults.max_retries:
            record.mark_failed(now)
            self.failed[rid] = record
            return
        self.fault_counters.redispatches += 1
        self._push(
            now + faults.backoff(record.retries), "redispatch", record,
            label=f"r{rid}:retry{record.retries}",
        )

    def _apply_fault(self, event: FaultEvent, now: float) -> None:
        candidates = [r for r in self.replicas if not r.crashed]
        if not candidates:
            return  # the whole fleet is already down; the fault is moot
        victim = candidates[event.salt % len(candidates)]
        if event.kind == "crash":
            self.fault_counters.crashes += 1
            self.fault_counters.downtime_s += event.duration_s
            evicted = victim.crash(down_until=now + event.duration_s)
            self._push(
                now + event.duration_s, "recover", victim,
                label=f"replica{victim.replica_id}",
            )
            for record in evicted:
                self._retry_or_fail(record, now)
        elif event.kind == "stall":
            self.fault_counters.stalls += 1
            victim.stall(event.slowdown)
            self._push(
                now + event.duration_s, "stall_end", victim,
                label=f"replica{victim.replica_id}",
            )
        else:  # pragma: no cover - schedule generation only emits the above
            raise ValueError(f"unknown fault kind {event.kind!r}")

    def _handle_timeout(self, payload, now: float) -> None:
        record, epoch = payload
        rid = record.request.request_id
        # Stale if the request terminated, was re-dispatched since the
        # deadline was armed, or already started streaming tokens.
        if record.retries != epoch or record.first_token_at is not None:
            if record.first_token_at is not None and record.retries == epoch:
                # The dispatch beat its deadline: a breaker success signal
                # (closes a half-open breaker, clears failure streaks).
                replica = self._location.get(rid)
                if replica is not None:
                    breaker = self._breaker_for(replica)
                    if breaker is not None:
                        breaker.record_success(now)
            return
        replica = self._location.get(rid)
        if replica is None or replica.cancel(rid) is None:
            return
        breaker = self._breaker_for(replica)
        if breaker is not None:
            trips_before = breaker.trips
            breaker.record_failure(now)
            if breaker.trips > trips_before:
                self.kernel.mark(
                    "breaker_trip", f"replica{replica.replica_id}", time=now
                )
        self.fault_counters.timeouts += 1
        self._retry_or_fail(record, now)

    # -- simulation ----------------------------------------------------------
    def run(self, requests: Sequence[Request]) -> ClusterMetrics:
        arrivals = sorted(requests, key=lambda r: (r.arrival_time, r.request_id))
        for request in arrivals:
            self._push(
                request.arrival_time, "arrival", request,
                label=f"r{request.request_id}",
            )
        if self.config.faults is not None and arrivals:
            horizon = arrivals[-1].arrival_time + self.config.faults.horizon_pad_s
            for event in FaultInjector(self.config.faults).schedule(horizon):
                self._push(
                    event.time, "fault", event,
                    label=f"{event.kind}#{event.salt}",
                )

        while (fired := self.kernel.pop()) is not None:
            t, kind, payload = fired.time, fired.kind, fired.payload
            self._advance_fleet_to(t)
            self._autoscale(t)
            if kind == "arrival":
                self._dispatch(RequestRecord(request=payload), t)
            elif kind == "redispatch":
                self._dispatch(payload, t)
            elif kind == "fault":
                self._apply_fault(payload, t)
            elif kind == "recover":
                payload.recover(t)
            elif kind == "stall_end":
                payload.clear_stall()
            elif kind == "timeout":
                self._handle_timeout(payload, t)

        # Drain: run every surviving replica to completion.  A replica
        # still down here lost its work to _retry_or_fail already.
        for replica in self.replicas:
            if replica.crashed:
                continue
            while replica.busy:
                self._step_replica(replica)

        worked = [r for r in self.replicas if r.records]
        makespan = max((r.clock for r in worked), default=0.0)
        records_by_replica = {
            r.replica_id: list(r.records.values()) for r in self.replicas
        }
        stats = [
            ReplicaStats(
                replica_id=r.replica_id,
                completed=sum(
                    1 for rec in r.records.values() if rec.finished_at is not None
                ),
                peak_running=r.peak_running,
                preemptions=sum(rec.preemptions for rec in r.records.values()),
                kv_utilization=r.kv_utilization,
                drained=r.draining,
            )
            for r in self.replicas
        ]
        return summarize_cluster(
            records_by_replica,
            slo=self.config.slo,
            makespan=makespan,
            replica_stats=stats,
            scale_events=self.scale_events,
            peak_replicas=self.peak_replicas,
            final_replicas=len(self.active_replicas),
            failed_records=list(self.failed.values()),
            fault_counters=self.fault_counters,
            rejected_records=list(self.rejected.values()),
            base_kv_bits=self.method.kv_bits,
            breaker_trips=sum(b.trips for b in self.breakers.values()),
            shared_blocks=sum(
                r.engine.prefix_pool.peak_resident_blocks
                for r in self.replicas
                if r.engine.prefix_pool is not None
            ),
        )

"""Multi-replica, tensor-parallel cluster serving simulator.

The paper argues KV-cache compression at the *kernel* level; this
subpackage measures what it buys at the *fleet* level, where the ROADMAP's
"millions of users" traffic actually lands.  Smaller KV footprints raise
the admission capacity of every replica, which changes how a router
should spread load, how many replicas a workload needs, and how much
goodput an SLO-bound deployment extracts from the same GPUs.

* :mod:`repro.cluster.replica` — one engine (optionally tensor-parallel
  via :mod:`repro.perf.tp`) plus the load signals routers read.
* :mod:`repro.cluster.router` — round-robin, least-outstanding-tokens,
  least-KV-pressure, and session-affinity dispatch policies.
* :mod:`repro.cluster.autoscaler` — reactive queue-depth scale-up/-down
  (and replacement of crashed capacity below the fleet floor).
* :mod:`repro.cluster.faults` — seeded crash/stall/timeout injection with
  retry-with-backoff recovery and graceful degradation.
* :mod:`repro.cluster.simulator` — the discrete-event fleet loop (on the
  shared :mod:`repro.sim` kernel, with per-event trace output), with
  cluster-level admission control and per-replica circuit breakers from
  :mod:`repro.overload` when configured.
* :mod:`repro.cluster.metrics` — SLOs, goodput, tail attainment, and
  availability/degradation accounting under faults and overload
  (rejected/shed/brownout-token counters).

The simulator also runs a **disaggregated** mode
(:class:`repro.cluster.simulator.DisaggConfig`): replicas split into a
prefill pool and a decode pool, and finished prompts migrate their
quantized KV over the interconnect through :mod:`repro.migrate` —
checksummed, fault-injected, salvage-recovered handoffs scheduled as
first-class kernel events.  Later scaling work (heterogeneous replicas,
multi-tenant fairness) plugs into the same seam: a new
router/replica/autoscaler variant behind the same simulator.
"""

from repro.cluster.autoscaler import Autoscaler, AutoscalerConfig
from repro.cluster.faults import (
    FaultConfig,
    FaultEvent,
    FaultInjector,
    downtime_within,
)
from repro.cluster.metrics import (
    SLO,
    ClusterMetrics,
    FaultCounters,
    ReplicaStats,
    ScaleEvent,
    summarize_cluster,
)
from repro.cluster.replica import Replica
from repro.cluster.router import (
    ROUTER_POLICIES,
    LeastKVPressureRouter,
    LeastOutstandingTokensRouter,
    RoundRobinRouter,
    Router,
    SessionAffinityRouter,
    make_router,
)
from repro.cluster.simulator import ClusterConfig, ClusterSimulator, DisaggConfig

__all__ = [
    "Autoscaler",
    "AutoscalerConfig",
    "FaultConfig",
    "FaultEvent",
    "FaultInjector",
    "FaultCounters",
    "SLO",
    "ClusterMetrics",
    "ReplicaStats",
    "ScaleEvent",
    "summarize_cluster",
    "Replica",
    "Router",
    "RoundRobinRouter",
    "LeastOutstandingTokensRouter",
    "LeastKVPressureRouter",
    "SessionAffinityRouter",
    "ROUTER_POLICIES",
    "make_router",
    "ClusterConfig",
    "DisaggConfig",
    "ClusterSimulator",
    "downtime_within",
]

"""Router policies: which replica serves the next arrival.

All policies are deterministic (ties break on the lowest replica id) so
cluster simulations are reproducible.  The load signals they read come
from :class:`repro.cluster.replica.Replica`:

* ``round_robin`` — classic stateless cycling; the baseline every
  load-aware policy is measured against.
* ``least_tokens`` — join-the-shortest-queue measured in *work*: the
  replica with the fewest outstanding (un-prefilled + un-generated)
  tokens.  Prompt/generation length heterogeneity is what makes this
  beat request-count balancing.
* ``least_kv`` — KV-pressure-aware: the replica whose resident KV blocks
  plus queued prompt demand is the smallest fraction of its capacity.
  This is the policy that *sees* cache compression — a TurboAttention
  replica under the same byte budget reports lower pressure than an FP16
  one, so mixed fleets and tight-memory regimes route around OOM-driven
  queueing (the cluster-level restatement of the paper's §5 capacity
  argument).
* ``affinity`` — session/prefix affinity: a session hashes to a home
  replica (its KV prefix would be cache-resident there), spilling to the
  least-loaded replica only when the home queue exceeds
  ``spill_queue_depth``.

Under fault injection the simulator hands every policy only the
dispatchable replicas (neither draining nor crashed), so crash-recovery
re-dispatches flow through the same ``choose`` call as fresh arrivals —
a policy never needs to know whether a request is on its first or its
fourth attempt.  With circuit breakers enabled
(:mod:`repro.overload.breaker`) the candidate list is additionally
filtered to replicas whose breaker admits traffic (OPEN breakers are
skipped; HALF_OPEN ones accept probe dispatches), falling back to all
dispatchable replicas only when every breaker is open — a policy
therefore also never needs to know breaker state.  Note ``affinity`` homes on ``session_id % len(replicas)``,
so a fleet shrunk by a crash may re-home sessions until the replica
recovers; that cache-warmth loss is part of the blast radius the fault
harness measures.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

from repro.cluster.replica import Replica
from repro.serving.request import Request

__all__ = [
    "Router",
    "RoundRobinRouter",
    "LeastOutstandingTokensRouter",
    "LeastKVPressureRouter",
    "SessionAffinityRouter",
    "ROUTER_POLICIES",
    "make_router",
]


class Router:
    """Base router: subclasses pick a replica for each arrival."""

    name = "base"

    def choose(self, request: Request, replicas: Sequence[Replica]) -> Replica:
        raise NotImplementedError

    @staticmethod
    def _require(replicas: Sequence[Replica]) -> None:
        if not replicas:
            raise ValueError("no active replicas to route to")


class RoundRobinRouter(Router):
    name = "round_robin"

    def __init__(self) -> None:
        self._cursor = 0

    def choose(self, request: Request, replicas: Sequence[Replica]) -> Replica:
        self._require(replicas)
        chosen = replicas[self._cursor % len(replicas)]
        self._cursor += 1
        return chosen


class LeastOutstandingTokensRouter(Router):
    name = "least_tokens"

    def choose(self, request: Request, replicas: Sequence[Replica]) -> Replica:
        self._require(replicas)
        return min(replicas, key=lambda r: (r.outstanding_tokens, r.replica_id))


class LeastKVPressureRouter(Router):
    name = "least_kv"

    def choose(self, request: Request, replicas: Sequence[Replica]) -> Replica:
        self._require(replicas)
        return min(replicas, key=lambda r: (r.kv_pressure, r.replica_id))


class SessionAffinityRouter(Router):
    name = "affinity"

    def __init__(self, spill_queue_depth: int = 16) -> None:
        if spill_queue_depth < 0:
            raise ValueError("spill_queue_depth must be >= 0")
        self.spill_queue_depth = spill_queue_depth

    def choose(self, request: Request, replicas: Sequence[Replica]) -> Replica:
        self._require(replicas)
        # Prefix locality beats the session hash: a replica whose prefix
        # pool actually holds the request's shared blocks serves it with
        # prefill skipped, so warmth is *measured* (a pool probe), not
        # guessed from the hash.  Ties and cold fleets fall back to the
        # session home so first-touch traffic still builds locality.
        if request.prefix_id is not None:
            warm = max(
                replicas,
                key=lambda r: (r.prefix_warmth(request), -r.replica_id),
            )
            if (
                warm.prefix_warmth(request) > 0
                and warm.queue_depth <= self.spill_queue_depth
            ):
                return warm
        home = replicas[request.session_id % len(replicas)]
        if home.queue_depth > self.spill_queue_depth:
            return min(replicas, key=lambda r: (r.outstanding_tokens, r.replica_id))
        return home


ROUTER_POLICIES: Dict[str, Callable[[], Router]] = {
    RoundRobinRouter.name: RoundRobinRouter,
    LeastOutstandingTokensRouter.name: LeastOutstandingTokensRouter,
    LeastKVPressureRouter.name: LeastKVPressureRouter,
    SessionAffinityRouter.name: SessionAffinityRouter,
}


def make_router(policy: str) -> Router:
    """Instantiate a fresh router for ``policy`` (stateful per run)."""
    try:
        factory = ROUTER_POLICIES[policy]
    except KeyError:
        raise ValueError(
            f"unknown router policy {policy!r}; known: {sorted(ROUTER_POLICIES)}"
        ) from None
    return factory()

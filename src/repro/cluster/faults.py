"""Seeded fault injection for the cluster simulator.

A denser replica is a bigger blast radius: TurboAttention's compressed
cache admits 3-4x more concurrent requests per GPU (paper §5), so one
crash evicts 3-4x more in-flight KV state than an FP16 replica losing the
same box.  This module makes that trade-off measurable by injecting a
deterministic, seeded schedule of faults into
:class:`~repro.cluster.simulator.ClusterSimulator`:

* **crash** — a replica dies: every admitted and queued request loses its
  KV state and is re-dispatched through the router (re-prefilled at real
  cost); the replica restarts empty after ``crash_downtime_s``.
* **stall** — a straggler: the replica keeps serving but every step takes
  ``stall_slowdown`` times longer for ``stall_duration_s`` (thermal
  throttling, a noisy neighbour, a flaky NVLink lane).
* **timeout** — a per-dispatch TTFT deadline: a request that has not
  produced its first token ``request_timeout_s`` after being handed to a
  replica is pulled back and retried elsewhere (the client-side deadline
  real gateways enforce).

Disaggregated prefill/decode fleets (:mod:`repro.migrate`) add faults on
the inter-pool link itself:

* **link_stall** — congestion on the migration link: every transfer
  started while the stall is active takes ``link_stall_slowdown`` times
  longer for ``link_stall_duration_s``.
* **drop / corrupt** — per-transfer outcomes rolled at send time from an
  independent keyed stream (:meth:`FaultInjector.migration_roll`): a
  *dropped* transfer is retried under the same capped backoff against a
  per-request migration budget (``max_migration_retries``; exhaustion
  degrades to local decode on the prefill replica), and a *corrupted*
  one is detected by the payload checksums on arrival and salvaged to
  the longest valid prefix (:mod:`repro.migrate.payload`).

Recovery is capped-exponential-backoff redispatch with a per-request
retry budget (``max_retries``); a request that exhausts it is recorded as
``FAILED`` — degraded, never lost, so conservation ("every submitted
request terminates exactly once") holds under any schedule.

The schedule is generated up front from ``numpy``'s seeded Generator
(Poisson processes per fault kind), so two runs with the same seed see
byte-identical fault timelines and two seeds see different ones.  Victims
are chosen at fire time by an event-carried ``salt`` over the replicas
alive at that instant, which keeps the schedule well-defined even when
the autoscaler grows the fleet mid-run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

__all__ = ["FaultConfig", "FaultEvent", "FaultInjector", "downtime_within"]


def downtime_within(
    windows: "List[tuple]", horizon_s: float
) -> float:
    """Replica-seconds of crash downtime falling inside ``[0, horizon_s]``.

    Each window is one replica's ``(crash_time, recovery_time)``; a crash
    near the end of a run schedules downtime extending *past* the
    makespan, and charging those phantom seconds against availability
    double-counts time the run never observed.  Distinct replicas may be
    down simultaneously — that genuinely costs the fleet two replicas'
    capacity, so overlapping windows are summed, not merged; a single
    replica can never overlap itself (it must recover before it can
    crash again).
    """
    total = 0.0
    for start, end in windows:
        total += max(0.0, min(float(end), horizon_s) - min(float(start), horizon_s))
    return total


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault occurrence."""

    time: float
    kind: str  # "crash" | "stall"
    #: Victim selector: ``salt % len(eligible)`` over replicas alive at
    #: fire time (deterministic, fleet-size-agnostic).
    salt: int
    #: Crash downtime or stall length, in simulated seconds.
    duration_s: float
    #: Step-latency multiplier while a stall is active (1.0 for crashes).
    slowdown: float = 1.0


@dataclass(frozen=True)
class FaultConfig:
    """Fault model knobs (all rates are per simulated second, fleet-wide)."""

    seed: int = 0
    crash_rate: float = 0.0
    stall_rate: float = 0.0
    crash_downtime_s: float = 30.0
    stall_duration_s: float = 10.0
    stall_slowdown: float = 4.0
    #: TTFT deadline per dispatch; ``None`` disables timeout faults.
    request_timeout_s: Optional[float] = None
    #: Re-dispatch budget per request; beyond it the request FAILs.
    max_retries: int = 3
    backoff_base_s: float = 0.5
    backoff_cap_s: float = 8.0
    #: Faults keep arriving this long past the last request arrival, so
    #: the drain phase is exposed to them too.
    horizon_pad_s: float = 30.0
    # -- migration-link faults (disaggregated mode only) ---------------------
    #: Probability one KV transfer is dropped in flight (rolled per send).
    migration_drop_rate: float = 0.0
    #: Probability one KV transfer arrives with corrupted payload bytes.
    migration_corrupt_rate: float = 0.0
    #: Re-send budget per request; beyond it decode runs locally on the
    #: prefill replica (slower, never lost).
    max_migration_retries: int = 2
    #: Poisson rate of link-congestion stalls (per simulated second).
    link_stall_rate: float = 0.0
    link_stall_duration_s: float = 5.0
    link_stall_slowdown: float = 4.0

    def __post_init__(self) -> None:
        if self.crash_rate < 0 or self.stall_rate < 0:
            raise ValueError("fault rates must be non-negative")
        if self.crash_downtime_s <= 0 or self.stall_duration_s <= 0:
            raise ValueError("fault durations must be positive")
        if self.stall_slowdown < 1.0:
            raise ValueError("stall_slowdown must be >= 1 (it is a slowdown)")
        if self.request_timeout_s is not None and self.request_timeout_s <= 0:
            raise ValueError("request_timeout_s must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base_s <= 0 or self.backoff_cap_s < self.backoff_base_s:
            raise ValueError("need 0 < backoff_base_s <= backoff_cap_s")
        if self.horizon_pad_s < 0:
            raise ValueError("horizon_pad_s must be non-negative")
        if not 0.0 <= self.migration_drop_rate <= 1.0:
            raise ValueError("migration_drop_rate must lie in [0, 1]")
        if not 0.0 <= self.migration_corrupt_rate <= 1.0:
            raise ValueError("migration_corrupt_rate must lie in [0, 1]")
        if self.migration_drop_rate + self.migration_corrupt_rate > 1.0:
            raise ValueError("migration drop + corrupt rates must not exceed 1")
        if self.max_migration_retries < 0:
            raise ValueError("max_migration_retries must be >= 0")
        if self.link_stall_rate < 0:
            raise ValueError("link_stall_rate must be non-negative")
        if self.link_stall_duration_s <= 0:
            raise ValueError("link_stall_duration_s must be positive")
        if self.link_stall_slowdown < 1.0:
            raise ValueError("link_stall_slowdown must be >= 1")

    def backoff(self, retries: int) -> float:
        """Capped exponential backoff before the ``retries``-th re-dispatch."""
        if retries < 1:
            raise ValueError("backoff is defined from the first retry on")
        return min(self.backoff_base_s * 2.0 ** (retries - 1), self.backoff_cap_s)


class FaultInjector:
    """Deterministic schedule generator for one cluster run."""

    def __init__(self, config: FaultConfig):
        self.config = config

    def schedule(self, horizon_s: float) -> List[FaultEvent]:
        """Fault events on ``[0, horizon_s)``, sorted by time.

        Each fault kind draws from its own child seed so adding one kind
        never perturbs another kind's timeline.
        """
        events: List[FaultEvent] = []
        kinds = (
            ("crash", self.config.crash_rate, self.config.crash_downtime_s, 1.0),
            (
                "stall",
                self.config.stall_rate,
                self.config.stall_duration_s,
                self.config.stall_slowdown,
            ),
            # Index 2: appending here keeps the crash/stall child seeds —
            # and therefore every existing golden trace — untouched.
            (
                "link_stall",
                self.config.link_stall_rate,
                self.config.link_stall_duration_s,
                self.config.link_stall_slowdown,
            ),
        )
        for index, (kind, rate, duration, slowdown) in enumerate(kinds):
            if rate <= 0:
                continue
            rng = np.random.default_rng([self.config.seed, index])
            t = 0.0
            while True:
                t += float(rng.exponential(1.0 / rate))
                if t >= horizon_s:
                    break
                events.append(
                    FaultEvent(
                        time=t,
                        kind=kind,
                        salt=int(rng.integers(1 << 30)),
                        duration_s=duration,
                        slowdown=slowdown,
                    )
                )
        events.sort(key=lambda e: (e.time, e.kind, e.salt))
        return events

    def migration_roll(self, request_id: int, attempt: int) -> str:
        """Outcome of one KV transfer: ``"drop"``, ``"corrupt"`` or ``"ok"``.

        One uniform draw from a stream keyed ``[seed, 7919, request_id,
        attempt]`` — independent of the Poisson schedules and of every
        other request/attempt, so retrying one transfer never perturbs
        another's fate and reruns are byte-identical.
        """
        u = float(
            np.random.default_rng(
                [self.config.seed, 7919, request_id, attempt]
            ).uniform()
        )
        if u < self.config.migration_drop_rate:
            return "drop"
        if u < self.config.migration_drop_rate + self.config.migration_corrupt_rate:
            return "corrupt"
        return "ok"

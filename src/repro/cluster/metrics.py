"""Cluster-level SLOs and summary metrics.

The single-engine :class:`repro.serving.metrics.ServingMetrics` reports
throughput and latency moments; a fleet operator additionally cares about
**goodput** — how many requests per second finish *within their service
level objective* — and tail attainment.  Following the SLO framing of
serving systems like DistServe/AlpaServe, a request counts toward goodput
only if both deadlines hold:

* **TTFT** (time to first token) ≤ ``slo.ttft_s`` — responsiveness;
* **TPOT** (mean time per output token) ≤ ``slo.tpot_s`` — streaming rate.

Everything here is pure aggregation over the per-request
:class:`~repro.serving.request.RequestRecord` objects collected from all
replicas, so conservation properties ("every request finishes exactly
once") are checkable by tests from the same data the operator sees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

# SLO moved to repro.serving.metrics in the overload PR (the engine needs
# deadlines for deadline-aware shedding); re-exported here unchanged.
from repro.serving.metrics import NAN, SLO, jain_index, nan_to_none_dict
from repro.serving.request import RequestRecord, RequestStatus

__all__ = [
    "SLO",
    "ReplicaStats",
    "ScaleEvent",
    "FaultCounters",
    "ClusterMetrics",
    "summarize_cluster",
]


def _percentile(values: Sequence[float], q: float) -> float:
    return float(np.percentile(np.asarray(values), q)) if values else NAN


@dataclass(frozen=True)
class ReplicaStats:
    """Per-replica share of the run."""

    replica_id: int
    completed: int
    peak_running: int
    preemptions: int
    kv_utilization: float
    drained: bool


@dataclass(frozen=True)
class ScaleEvent:
    """One autoscaler action."""

    time: float
    action: str  # "up" | "down"
    n_active: int  # active replicas after the action
    #: Which pool scaled: "" for unified fleets, "prefill"/"decode" when
    #: the disaggregated pools autoscale independently.
    pool: str = ""


@dataclass
class FaultCounters:
    """Running tally of injected faults and their recovery work.

    Mutable: the simulator increments it during the run and freezes the
    values into :class:`ClusterMetrics` at summary time.
    """

    crashes: int = 0
    stalls: int = 0
    timeouts: int = 0
    #: Re-dispatches actually issued (a failed request's last eviction
    #: consumes a retry but produces no dispatch).
    redispatches: int = 0
    #: Total scheduled replica downtime (crash durations).
    downtime_s: float = 0.0
    # -- migration-link faults (disaggregated mode) --------------------------
    #: KV transfers dropped in flight (each consumes migration budget).
    migration_drops: int = 0
    #: KV transfers that arrived with corrupted payload bytes.
    migration_corruptions: int = 0
    #: Link-congestion stall events on the inter-pool link.
    link_stalls: int = 0
    # -- checkpointing / warm restart (repro.recover) ------------------------
    #: Crashed replicas that came back through the snapshot+WAL path,
    #: and the ones that degraded all the way to a cold start.
    warm_restarts: int = 0
    cold_restores: int = 0
    snapshots_taken: int = 0
    #: Snapshot epochs found corrupted at restore time, and how many of
    #: those salvage recovered a usable prefix from.
    snapshot_corruptions: int = 0
    snapshot_salvages: int = 0
    #: Bytes persisting every snapshot cost at the admitted KV widths —
    #: the compression headline: turbo4 checkpoints ~4x cheaper than FP16.
    snapshot_bytes: float = 0.0
    #: Requests re-entered through restore on a warm restart, and the
    #: checkpointed tokens they resumed with instead of recomputing.
    recovered_requests: int = 0
    restored_prefill_tokens: int = 0
    restored_decode_tokens: int = 0
    #: Operator-initiated fleet ops completed (see repro.recover.ops).
    drains: int = 0
    rolling_restarts: int = 0


@dataclass(frozen=True)
class ClusterMetrics:
    """What a fleet operator reads off a cluster run."""

    completed: int
    total: int
    makespan: float
    output_tokens: int
    throughput_tokens_per_s: float
    #: Requests per second that finished within the SLO.
    goodput_rps: float
    #: Fraction of all submitted requests that met the SLO.
    slo_attainment: float
    p50_ttft: float
    p95_ttft: float
    p99_ttft: float
    p50_tpot: float
    p95_tpot: float
    p99_tpot: float
    preemptions: int
    peak_replicas: int
    final_replicas: int
    #: Requests whose retry budget ran out (terminal FAILED).
    failed: int = 0
    #: Fault-recovery re-dispatches summed over all requests.
    retries: int = 0
    #: Prompt tokens re-prefilled because a fault threw their KV away.
    wasted_prefill_tokens: int = 0
    #: Generated tokens lost to fault evictions.
    wasted_decode_tokens: int = 0
    crashes: int = 0
    stalls: int = 0
    timeouts: int = 0
    #: Total scheduled replica downtime (seconds of replica-time lost).
    downtime_s: float = 0.0
    #: Overload outcomes: admission rejections (cluster- or engine-level)
    #: and deliberate queue sheds (deadline-doomed / high-water victims).
    rejected: int = 0
    shed: int = 0
    #: Output tokens generated below the method's full KV precision.
    brownout_tokens: int = 0
    #: Circuit-breaker trips summed over all replicas.
    breaker_trips: int = 0
    #: Queue delay (arrival -> admission) percentiles over admitted work.
    p50_queue_delay: float = NAN
    p95_queue_delay: float = NAN
    p99_queue_delay: float = NAN
    # -- prefix cache / tenancy (repro.prefix) -------------------------------
    #: Fleet-wide prefix-cache hit ratio (prefill tokens skipped / tokens
    #: offered); NaN when no replica ran a pool.
    prefix_hit_ratio: float = NAN
    prefill_tokens_saved: int = 0
    #: Peak pool-resident shared blocks summed over replicas, and
    #: copy-on-write block copies over all requests.
    shared_blocks: int = 0
    cow_copies: int = 0
    #: Jain fairness index over per-tenant SLO attainment.
    fairness_jain: float = NAN
    # -- KV migration (repro.migrate; zero/NaN for unified fleets) -----------
    #: Completed prefill→decode handoffs and bytes shipped on the link
    #: (including bytes wasted by dropped/corrupted transfers).
    migrations: int = 0
    migrated_bytes: float = 0.0
    #: Re-sent transfers (drops, destination crashes, no-target waits).
    migration_retries: int = 0
    #: Prompt tokens re-prefilled after salvaged corrupt handoffs.
    salvage_recomputed_tokens: int = 0
    #: Requests that fell back to decoding on their prefill replica.
    local_decode_fallbacks: int = 0
    #: Handoff latency percentiles over successfully migrated requests.
    p50_handoff_latency: float = NAN
    p99_handoff_latency: float = NAN
    #: Link fault tallies (see FaultCounters).
    migration_drops: int = 0
    migration_corruptions: int = 0
    link_stalls: int = 0
    # -- checkpointing / warm restart (repro.recover; zero when off) ---------
    warm_restarts: int = 0
    cold_restores: int = 0
    snapshots_taken: int = 0
    snapshot_corruptions: int = 0
    snapshot_salvages: int = 0
    snapshot_bytes: float = 0.0
    #: Requests that re-entered through the restore path, and per-request
    #: warm recoveries summed over all requests.
    recovered_requests: int = 0
    recoveries: int = 0
    #: Checkpointed tokens resumed instead of recomputed on restore.
    restored_prefill_tokens: int = 0
    restored_decode_tokens: int = 0
    #: Operator-initiated fleet operations completed.
    drains: int = 0
    rolling_restarts: int = 0
    replicas: Tuple[ReplicaStats, ...] = field(default=())
    scale_events: Tuple[ScaleEvent, ...] = field(default=())

    @property
    def failed_rate(self) -> float:
        """Fraction of submitted requests that terminally failed."""
        return self.failed / self.total if self.total else 0.0

    @property
    def availability(self) -> float:
        """Fraction of fleet time not lost to crash downtime.

        Approximated against the run's makespan and final fleet size; a
        coarse operator signal, not a per-replica uptime integral.  The
        simulator clips each crash's downtime window to the makespan
        (:func:`repro.cluster.faults.downtime_within`) before it lands
        in ``downtime_s``, so scheduled downtime extending past the end
        of the run never deflates this number; the clamp here then only
        guards the ratio itself, pinning availability to [0, 1] under
        any schedule.
        """
        capacity = self.makespan * max(self.final_replicas, 1)
        if capacity <= 0:
            return 1.0
        return min(1.0, max(0.0, 1.0 - self.downtime_s / capacity))

    def as_dict(self) -> dict:
        return nan_to_none_dict(self._raw_dict())

    def _raw_dict(self) -> dict:
        return {
            "completed": self.completed,
            "total": self.total,
            "makespan_s": self.makespan,
            "throughput_tok_s": self.throughput_tokens_per_s,
            "goodput_rps": self.goodput_rps,
            "slo_attainment": self.slo_attainment,
            "p50_ttft_s": self.p50_ttft,
            "p95_ttft_s": self.p95_ttft,
            "p99_ttft_s": self.p99_ttft,
            "p50_tpot_s": self.p50_tpot,
            "p95_tpot_s": self.p95_tpot,
            "p99_tpot_s": self.p99_tpot,
            "preemptions": self.preemptions,
            "peak_replicas": self.peak_replicas,
            "final_replicas": self.final_replicas,
            "scale_ups": sum(1 for e in self.scale_events if e.action == "up"),
            "scale_downs": sum(1 for e in self.scale_events if e.action == "down"),
            "failed": self.failed,
            "failed_rate": self.failed_rate,
            "retries": self.retries,
            "wasted_prefill_tokens": self.wasted_prefill_tokens,
            "wasted_decode_tokens": self.wasted_decode_tokens,
            "crashes": self.crashes,
            "stalls": self.stalls,
            "timeouts": self.timeouts,
            "downtime_s": self.downtime_s,
            "availability": self.availability,
            "rejected": self.rejected,
            "shed": self.shed,
            "brownout_tokens": self.brownout_tokens,
            "breaker_trips": self.breaker_trips,
            "p50_queue_delay_s": self.p50_queue_delay,
            "p95_queue_delay_s": self.p95_queue_delay,
            "p99_queue_delay_s": self.p99_queue_delay,
            "prefix_hit_ratio": self.prefix_hit_ratio,
            "prefill_tokens_saved": self.prefill_tokens_saved,
            "shared_blocks": self.shared_blocks,
            "cow_copies": self.cow_copies,
            "fairness_jain": self.fairness_jain,
            "migrations": self.migrations,
            "migrated_bytes": self.migrated_bytes,
            "migration_retries": self.migration_retries,
            "salvage_recomputed_tokens": self.salvage_recomputed_tokens,
            "local_decode_fallbacks": self.local_decode_fallbacks,
            "p50_handoff_latency_s": self.p50_handoff_latency,
            "p99_handoff_latency_s": self.p99_handoff_latency,
            "migration_drops": self.migration_drops,
            "migration_corruptions": self.migration_corruptions,
            "link_stalls": self.link_stalls,
            "warm_restarts": self.warm_restarts,
            "cold_restores": self.cold_restores,
            "snapshots_taken": self.snapshots_taken,
            "snapshot_corruptions": self.snapshot_corruptions,
            "snapshot_salvages": self.snapshot_salvages,
            "snapshot_bytes": self.snapshot_bytes,
            "recovered_requests": self.recovered_requests,
            "recoveries": self.recoveries,
            "restored_prefill_tokens": self.restored_prefill_tokens,
            "restored_decode_tokens": self.restored_decode_tokens,
            "drains": self.drains,
            "rolling_restarts": self.rolling_restarts,
        }


def summarize_cluster(
    records_by_replica: Dict[int, List[RequestRecord]],
    slo: SLO,
    makespan: float,
    replica_stats: Sequence[ReplicaStats] = (),
    scale_events: Sequence[ScaleEvent] = (),
    peak_replicas: int = 0,
    final_replicas: int = 0,
    failed_records: Sequence[RequestRecord] = (),
    fault_counters: Optional[FaultCounters] = None,
    rejected_records: Sequence[RequestRecord] = (),
    base_kv_bits: Optional[float] = None,
    breaker_trips: int = 0,
    shared_blocks: int = 0,
) -> ClusterMetrics:
    """Aggregate per-replica request records into fleet metrics.

    ``failed_records`` are requests that exhausted their retry budget;
    they live with the cluster (their last replica evicted them), count
    toward ``total`` and the fault accounting, and never toward goodput.
    ``rejected_records`` are requests turned away by *cluster-level*
    admission before reaching any replica (engine-level rejections and
    sheds stay in their replica's records); they too count toward
    ``total`` so conservation is checkable from the returned data.
    """
    counters = fault_counters if fault_counters is not None else FaultCounters()
    records = [r for recs in records_by_replica.values() for r in recs]
    records += list(failed_records)
    records += list(rejected_records)
    finished = [r for r in records if r.status is RequestStatus.FINISHED]
    ttfts = [r.ttft for r in finished if r.ttft is not None]
    tpots = [r.tpot for r in finished if r.tpot is not None]
    delays = [
        r.admitted_at - r.request.arrival_time
        for r in records
        if r.admitted_at is not None
    ]
    output_tokens = sum(r.request.gen_len for r in finished)
    good = sum(1 for r in finished if slo.met_by(r))
    brownout_tokens = 0
    if base_kv_bits is not None:
        brownout_tokens = sum(
            r.generated
            for r in records
            if r.kv_bits is not None and r.kv_bits < base_kv_bits
        )
    lookup = sum(r.prefix_lookup_tokens for r in records)
    saved = sum(r.prefix_hit_tokens for r in records)
    submitted_by_tenant: Dict[int, int] = {}
    good_by_tenant: Dict[int, int] = {}
    for r in records:
        t = r.request.tenant_id
        submitted_by_tenant[t] = submitted_by_tenant.get(t, 0) + 1
        if slo.met_by(r):
            good_by_tenant[t] = good_by_tenant.get(t, 0) + 1
    fairness = jain_index(
        [good_by_tenant.get(t, 0) / n for t, n in submitted_by_tenant.items()]
    )
    handoffs = [r.handoff_latency for r in records if r.handoff_latency is not None]
    return ClusterMetrics(
        completed=len(finished),
        total=len(records),
        makespan=makespan,
        output_tokens=output_tokens,
        throughput_tokens_per_s=output_tokens / makespan if makespan > 0 else 0.0,
        goodput_rps=good / makespan if makespan > 0 else 0.0,
        slo_attainment=good / len(records) if records else 0.0,
        p50_ttft=_percentile(ttfts, 50),
        p95_ttft=_percentile(ttfts, 95),
        p99_ttft=_percentile(ttfts, 99),
        p50_tpot=_percentile(tpots, 50),
        p95_tpot=_percentile(tpots, 95),
        p99_tpot=_percentile(tpots, 99),
        preemptions=sum(r.preemptions for r in records),
        peak_replicas=peak_replicas,
        final_replicas=final_replicas,
        failed=sum(1 for r in records if r.status is RequestStatus.FAILED),
        retries=sum(r.retries for r in records),
        wasted_prefill_tokens=sum(r.wasted_prefill_tokens for r in records),
        wasted_decode_tokens=sum(r.wasted_decode_tokens for r in records),
        crashes=counters.crashes,
        stalls=counters.stalls,
        timeouts=counters.timeouts,
        downtime_s=counters.downtime_s,
        rejected=sum(1 for r in records if r.status is RequestStatus.REJECTED),
        shed=sum(1 for r in records if r.status is RequestStatus.SHED),
        brownout_tokens=brownout_tokens,
        breaker_trips=breaker_trips,
        p50_queue_delay=_percentile(delays, 50),
        p95_queue_delay=_percentile(delays, 95),
        p99_queue_delay=_percentile(delays, 99),
        prefix_hit_ratio=saved / lookup if lookup else NAN,
        prefill_tokens_saved=saved,
        shared_blocks=shared_blocks,
        cow_copies=sum(r.cow_copies for r in records),
        fairness_jain=fairness,
        migrations=sum(r.migrations for r in records),
        migrated_bytes=sum(r.migrated_bytes for r in records),
        migration_retries=sum(r.migration_retries for r in records),
        salvage_recomputed_tokens=sum(r.salvage_recomputed_tokens for r in records),
        local_decode_fallbacks=sum(1 for r in records if r.local_decode),
        p50_handoff_latency=_percentile(handoffs, 50),
        p99_handoff_latency=_percentile(handoffs, 99),
        migration_drops=counters.migration_drops,
        migration_corruptions=counters.migration_corruptions,
        link_stalls=counters.link_stalls,
        warm_restarts=counters.warm_restarts,
        cold_restores=counters.cold_restores,
        snapshots_taken=counters.snapshots_taken,
        snapshot_corruptions=counters.snapshot_corruptions,
        snapshot_salvages=counters.snapshot_salvages,
        snapshot_bytes=counters.snapshot_bytes,
        recovered_requests=counters.recovered_requests,
        recoveries=sum(r.recoveries for r in records),
        restored_prefill_tokens=counters.restored_prefill_tokens,
        restored_decode_tokens=counters.restored_decode_tokens,
        drains=counters.drains,
        rolling_restarts=counters.rolling_restarts,
        replicas=tuple(replica_stats),
        scale_events=tuple(scale_events),
    )

"""Attention substrate: exact reference, online softmax, flash attention.

These are the baselines TurboAttention is built on and compared against:

* :mod:`repro.attention.reference` — vanilla softmax attention (Eq. 2).
* :mod:`repro.attention.online_softmax` — the single-pass normalizer of
  Milakov & Gimelshein (2018) that flash attention fuses over tiles.
* :mod:`repro.attention.flash` — tiled FlashAttention (Dao et al., 2022)
  with optional FP16 storage emulation; exact w.r.t. the reference.
* :mod:`repro.attention.masks` — causal and padding masks.
"""

from repro.attention.reference import reference_attention, softmax
from repro.attention.online_softmax import OnlineSoftmaxState, online_softmax
from repro.attention.flash import flash_attention
from repro.attention.masks import causal_mask, NEG_INF
from repro.attention.split_k import merge_partials, split_k_decode

__all__ = [
    "reference_attention",
    "softmax",
    "OnlineSoftmaxState",
    "online_softmax",
    "flash_attention",
    "causal_mask",
    "NEG_INF",
    "merge_partials",
    "split_k_decode",
]

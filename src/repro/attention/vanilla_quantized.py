"""Vanilla (materializing) quantized attention — the §2.2 counterpoint.

Fine-grained token-wise/channel-wise quantization scales are easy to apply
to *vanilla* attention because the full score matrix ``S`` and probability
matrix ``P`` are materialized: every row/column can carry its own scale.
The cost is the O(n_q x n_k) intermediate that flash attention exists to
avoid.  TurboAttention's design constraint — per-tile scalar scales —
is exactly what lets quantization live *inside* the tiled loop.

This module implements the vanilla quantized path and reports its
intermediate-activation footprint, so the trade-off is measurable:

* accuracy: per-token scales are slightly tighter than per-tile scales;
* memory: the intermediates grow quadratically and exceed flash
  attention's O(tile) working set by orders of magnitude at long context.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.quant.integer_gemm import int_matmul
from repro.quant.schemes import quantize_symmetric

__all__ = ["VanillaQuantizedResult", "vanilla_quantized_attention", "intermediate_bytes"]


@dataclass
class VanillaQuantizedResult:
    """Output plus the working-set accounting of the vanilla path."""

    output: np.ndarray
    intermediate_bytes: float


def intermediate_bytes(n_q: int, n_k: int, n_heads: int, batch: int = 1) -> float:
    """Bytes of the materialized S (fp32) + P (fp16) matrices."""
    scores = batch * n_heads * n_q * n_k
    return scores * 4.0 + scores * 2.0


def vanilla_quantized_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    bits: int = 8,
    scale: Optional[float] = None,
    per_token: bool = True,
) -> VanillaQuantizedResult:
    """Quantized attention with full S/P materialization.

    ``per_token=True`` gives every query row and key/value token its own
    symmetric scale (the fine granularity flash tiling cannot host);
    ``False`` uses one scale per head (tile-compatible, for comparison).
    Shapes follow the library convention ``(heads, n, d)``.
    """
    q = np.asarray(q, dtype=np.float64)
    k = np.asarray(k, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    h, n_q, d = q.shape
    n_k = k.shape[1]
    if scale is None:
        scale = 1.0 / np.sqrt(d)
    axis = -1 if per_token else (-2, -1)
    # The paper's 119 headroom applies to the INT8 stage; narrower widths
    # use the full restricted signed range.
    max_code = 119 if bits == 8 else None

    qc, qs = quantize_symmetric(q, bits=bits, axis=axis, max_code=max_code)
    kc, ks = quantize_symmetric(k, bits=bits, axis=axis, max_code=max_code)
    vc, vs = quantize_symmetric(v, bits=bits, axis=axis, max_code=max_code)

    # S = (q_scale_row * k_scale_col) * int(QK^T): per-token scales form an
    # outer product over the full matrix — only possible because S exists.
    s_int = int_matmul(qc, np.swapaxes(kc, -1, -2))
    row_scale = qs if per_token else qs * np.ones((h, n_q, 1))
    col_scale = np.swapaxes(ks, -1, -2) if per_token else ks * np.ones((h, 1, n_k))
    s = row_scale * col_scale * s_int.astype(np.float64) * scale

    m = s.max(axis=-1, keepdims=True)
    p = np.exp(s - m)
    p /= p.sum(axis=-1, keepdims=True)

    pc, ps = quantize_symmetric(p, bits=bits, axis=axis, max_code=max_code)
    p_row = ps if per_token else ps * np.ones((h, n_q, 1))
    if per_token:
        # PV with per-token V scales requires the product split per token:
        # out = sum_t p_row * ps * Q(P)[:, t] * vs[t] * Q(V)[t, :]
        out = np.einsum(
            "hqt,ht,htd->hqd",
            pc.astype(np.float64),
            vs[..., 0].astype(np.float64),
            vc.astype(np.float64),
        ) * p_row
    else:
        out = p_row * vs * int_matmul(pc, vc).astype(np.float64)
    return VanillaQuantizedResult(
        output=out,
        intermediate_bytes=intermediate_bytes(n_q, n_k, h),
    )

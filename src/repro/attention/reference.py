"""Reference (vanilla) softmax attention — the exactness oracle.

Implements Eq. 2 of the paper directly:

    S = Q K^T / sqrt(d),   P = softmax(S),   H = P V

in float64, with an optional additive mask.  Every approximate kernel in
the library (flash, turbo) is tested against this implementation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["softmax", "reference_attention"]


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax (max-subtracted)."""
    x = np.asarray(x, dtype=np.float64)
    m = np.max(x, axis=axis, keepdims=True)
    e = np.exp(x - m)
    return e / np.sum(e, axis=axis, keepdims=True)


def reference_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    mask: Optional[np.ndarray] = None,
    scale: Optional[float] = None,
    return_lse: bool = False,
):
    """Exact attention.

    Parameters
    ----------
    q, k, v:
        Arrays of shape ``(..., n_q, d)``, ``(..., n_k, d)``,
        ``(..., n_k, d_v)``; leading batch/head axes broadcast.
    mask:
        Optional additive mask broadcastable to ``(..., n_q, n_k)``.
    scale:
        Score scale; defaults to ``1/sqrt(d)``.
    return_lse:
        Also return the row-wise log-sum-exp ``L`` (used to cross-check the
        flash/turbo kernels, which emit it for backward/split-K use).
    """
    q = np.asarray(q, dtype=np.float64)
    k = np.asarray(k, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    d = q.shape[-1]
    if scale is None:
        scale = 1.0 / np.sqrt(d)
    s = (q @ np.swapaxes(k, -1, -2)) * scale
    if mask is not None:
        s = s + mask
    p = softmax(s, axis=-1)
    out = p @ v
    if return_lse:
        m = np.max(s, axis=-1)
        lse = m + np.log(np.sum(np.exp(s - m[..., None]), axis=-1))
        return out, lse
    return out

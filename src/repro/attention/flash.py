"""Tiled FlashAttention (Dao et al., 2022) — the FP16 baseline kernel.

Processes the key/value sequence in tiles of ``block_k`` and query rows in
tiles of ``block_q``, fusing the three steps of Eq. 2 with the online
softmax so no ``n_q x n_k`` intermediate is ever materialized.

Two numeric modes:

* ``emulate_fp16=False`` (default) — float64 throughout; bitwise-comparable
  to the reference up to associativity, used for algorithm testing.
* ``emulate_fp16=True`` — Q/K/V and the probability tile are rounded to
  FP16 before each MatMul (FP32 accumulation), and the exponentiation runs
  in FP32, mirroring the stock FlashAttention precision recipe the paper
  describes in §2.2 (MatMuls on FP16 tensor cores, exp on FP32 CUDA cores).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.attention.masks import causal_mask_block
from repro.attention.online_softmax import OnlineSoftmaxState
from repro.fp.formats import fp16_matmul

__all__ = ["flash_attention"]


def _fp32_exp(x: np.ndarray) -> np.ndarray:
    """FP32 exponentiation (what stock FlashAttention uses on CUDA cores)."""
    return np.exp(x.astype(np.float32)).astype(np.float64)


def flash_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    block_q: int = 64,
    block_k: int = 64,
    causal: bool = False,
    scale: Optional[float] = None,
    emulate_fp16: bool = False,
    return_lse: bool = False,
):
    """Tiled flash attention over ``(..., n, d)`` tensors.

    Parameters mirror :func:`repro.attention.reference.reference_attention`;
    ``block_q``/``block_k`` are the tile sizes ``B_r``/``B_c`` and ``causal``
    applies the decode-aligned causal mask.
    """
    q = np.asarray(q, dtype=np.float64)
    k = np.asarray(k, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    n_q, d = q.shape[-2], q.shape[-1]
    n_k = k.shape[-2]
    d_v = v.shape[-1]
    if scale is None:
        scale = 1.0 / np.sqrt(d)
    offset = n_k - n_q

    matmul = fp16_matmul if emulate_fp16 else (lambda a, b: a @ b)
    exp_fn = _fp32_exp if emulate_fp16 else np.exp

    out = np.zeros(q.shape[:-1] + (d_v,), dtype=np.float64)
    lse = np.zeros(q.shape[:-1], dtype=np.float64)

    for qs in range(0, n_q, block_q):
        qe = min(qs + block_q, n_q)
        q_tile = q[..., qs:qe, :]
        state = OnlineSoftmaxState.initial(q.shape[:-2], qe - qs, d_v=d_v, exp_fn=exp_fn)
        for ks in range(0, n_k, block_k):
            ke = min(ks + block_k, n_k)
            if causal and ks > qe - 1 + offset:
                break  # tile is entirely in the future for every query row
            s_tile = matmul(q_tile, np.swapaxes(k[..., ks:ke, :], -1, -2)) * scale
            if causal:
                s_tile = s_tile + causal_mask_block(qs, qe - qs, ks, ke - ks, offset)
            if emulate_fp16:
                # P~ is stored in FP16 registers before the PV MatMul.
                state.update(
                    s_tile,
                    values=v[..., ks:ke, :],
                    p_transform=lambda p: p.astype(np.float16).astype(np.float64),
                    matmul=fp16_matmul,
                )
            else:
                state.update(s_tile, values=v[..., ks:ke, :])
        o_tile, l_tile = state.finalize()
        out[..., qs:qe, :] = o_tile
        lse[..., qs:qe] = l_tile
    if return_lse:
        return out, lse
    return out

"""Online softmax (Milakov & Gimelshein, 2018).

The single-pass normalizer that lets flash attention process key tiles
sequentially: it maintains, per query row, a running maximum ``m``, a
running exponential sum ``l`` and a running (unnormalized) output
accumulator, rescaling previous state by ``exp(m_old - m_new)`` whenever a
new tile raises the maximum.

The state-machine form here is used directly by the flash and turbo kernels
and is tested on its own against the two-pass softmax.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

__all__ = ["OnlineSoftmaxState", "online_softmax"]


@dataclass
class OnlineSoftmaxState:
    """Running state of the online softmax for a block of query rows.

    Attributes
    ----------
    m:
        Row-wise running maximum, shape ``(..., n_q)``.
    l:
        Row-wise running sum of ``exp(s - m)``, shape ``(..., n_q)``.
    acc:
        Running unnormalized output, shape ``(..., n_q, d_v)``; ``None``
        until the first update when value accumulation is requested.
    exp_fn:
        Exponential used for rescaling and probabilities.  The turbo kernel
        passes SAS here; the default is ``np.exp``.
    """

    m: np.ndarray
    l: np.ndarray
    acc: Optional[np.ndarray] = None
    exp_fn: Callable[[np.ndarray], np.ndarray] = field(default=np.exp)

    @classmethod
    def initial(
        cls,
        batch_shape,
        n_q: int,
        d_v: Optional[int] = None,
        exp_fn: Callable[[np.ndarray], np.ndarray] = np.exp,
    ) -> "OnlineSoftmaxState":
        shape = tuple(batch_shape) + (n_q,)
        m = np.full(shape, -np.inf, dtype=np.float64)
        l = np.zeros(shape, dtype=np.float64)
        acc = None
        if d_v is not None:
            acc = np.zeros(shape + (d_v,), dtype=np.float64)
        return cls(m=m, l=l, acc=acc, exp_fn=exp_fn)

    def update(
        self,
        scores: np.ndarray,
        values: Optional[np.ndarray] = None,
        p_transform: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        matmul: Optional[Callable[[np.ndarray, np.ndarray], np.ndarray]] = None,
    ) -> np.ndarray:
        """Fold one tile of scores (and optionally values) into the state.

        Parameters
        ----------
        scores:
            Tile of raw scores, shape ``(..., n_q, tile)``.
        values:
            Optional value tile, shape ``(..., tile, d_v)``; required when
            the state accumulates output.
        p_transform:
            Optional transform applied to the probability tile *before* the
            PV MatMul (e.g. FP16 rounding, or INT8 quantize/dequantize in
            the turbo kernel).  The row-sum ``l`` always uses the untrans-
            formed probabilities, matching Algorithm 1 where ``l`` is
            updated from ``P~`` and the quantization ``Q(P~)`` applies only
            to the output accumulation.
        matmul:
            MatMul used for the PV product; defaults to ``@``.

        Returns
        -------
        The tile's unnormalized probabilities ``exp(scores - m_new)`` (what
        Algorithm 1 calls ``P~``).
        """
        scores = np.asarray(scores, dtype=np.float64)
        m_new = np.maximum(self.m, scores.max(axis=-1))
        # Rows that are still fully masked keep m = -inf; exp of (-inf - -inf)
        # would be NaN, so guard the correction factor.
        with np.errstate(invalid="ignore"):
            corr = self.exp_fn(self.m - m_new)
        corr = np.where(np.isfinite(self.m), corr, 0.0)
        with np.errstate(invalid="ignore"):
            p = self.exp_fn(scores - m_new[..., None])
        p = np.where(np.isfinite(scores), p, 0.0)
        self.l = corr * self.l + p.sum(axis=-1)
        if self.acc is not None:
            if values is None:
                raise ValueError("state accumulates output but no values were given")
            p_used = p if p_transform is None else p_transform(p)
            mm = matmul if matmul is not None else (lambda a, b: a @ b)
            self.acc = corr[..., None] * self.acc + mm(
                p_used, np.asarray(values, dtype=np.float64)
            )
        self.m = m_new
        return p

    def finalize(self):
        """Return ``(output, logsumexp)``; output is None if not accumulated."""
        safe_l = np.where(self.l > 0, self.l, 1.0)
        out = None
        if self.acc is not None:
            out = self.acc / safe_l[..., None]
        lse = np.where(self.l > 0, self.m + np.log(safe_l), -np.inf)
        return out, lse


def online_softmax(scores: np.ndarray, tile: int = 64) -> np.ndarray:
    """Compute softmax over the last axis by streaming tiles.

    Functionally identical to a two-pass softmax; exists to test the state
    machine and to demonstrate the algorithm in isolation.
    """
    scores = np.asarray(scores, dtype=np.float64)
    n = scores.shape[-1]
    state = OnlineSoftmaxState.initial(scores.shape[:-2], scores.shape[-2])
    for start in range(0, n, tile):
        state.update(scores[..., start : start + tile])
    _, lse = state.finalize()
    return np.exp(scores - lse[..., None])

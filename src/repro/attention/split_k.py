"""Split-K decode attention (FlashDecoding / LeanAttention style).

Decode attention has one query row but a long key axis; a single CTA
processing it serially under-uses the GPU.  FlashDecoding (Dao et al.,
2023) and LeanAttention (Sanovar et al., 2024) — both cited by the paper
as the scheduling layer TurboAttention plugs into — split the key axis
into ``n_splits`` chunks processed independently, each producing a partial
``(output, logsumexp)`` pair, then merge:

    m*   = max_i m_i
    l*   = sum_i l_i * exp(m_i - m*)
    out* = sum_i out_i * l_i * exp(m_i - m*) / l*

The merge is exact — a property test in the suite checks bit-level
agreement with unsplit attention — and it composes with the quantized
cache: :func:`turbo_split_k_decode` runs each chunk through the integer
path of Algorithm 2 and merges the partials the same way.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro.attention.reference import reference_attention

__all__ = ["merge_partials", "split_k_decode", "turbo_split_k_chunks"]


def merge_partials(
    outs: Sequence[np.ndarray],
    lses: Sequence[np.ndarray],
) -> Tuple[np.ndarray, np.ndarray]:
    """Combine per-chunk (output, logsumexp) partials exactly.

    ``outs[i]`` has shape ``(..., d)``; ``lses[i]`` has shape ``(...,)``.
    Returns the merged output and the global logsumexp.  Chunks whose rows
    saw no keys (lse = -inf) contribute nothing.
    """
    if len(outs) != len(lses) or not outs:
        raise ValueError("need equal, non-zero numbers of outputs and lses")
    lse_stack = np.stack([np.asarray(l, dtype=np.float64) for l in lses])  # (s, ...)
    out_stack = np.stack([np.asarray(o, dtype=np.float64) for o in outs])  # (s, ..., d)
    m_star = lse_stack.max(axis=0)
    with np.errstate(invalid="ignore"):
        weights = np.exp(lse_stack - m_star)  # (s, ...)
    weights = np.where(np.isfinite(lse_stack), weights, 0.0)
    denom = weights.sum(axis=0)
    safe = np.where(denom > 0, denom, 1.0)
    merged = (weights[..., None] * out_stack).sum(axis=0) / safe[..., None]
    lse_total = np.where(denom > 0, m_star + np.log(safe), -np.inf)
    return merged, lse_total


def split_k_decode(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    n_splits: int = 4,
    scale: Optional[float] = None,
) -> np.ndarray:
    """Exact decode attention computed over ``n_splits`` key chunks.

    ``q`` is ``(..., 1, d)`` (or ``(..., n_q, d)``; the split is over the
    key axis and works for any query count as long as no causal structure
    crosses chunk boundaries, i.e. decode).
    """
    k = np.asarray(k, dtype=np.float64)
    n = k.shape[-2]
    if n_splits < 1:
        raise ValueError("n_splits must be >= 1")
    bounds = np.linspace(0, n, n_splits + 1, dtype=int)
    outs, lses = [], []
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        if hi == lo:
            continue
        out, lse = reference_attention(
            q, k[..., lo:hi, :], np.asarray(v)[..., lo:hi, :],
            scale=scale if scale is not None else 1.0 / np.sqrt(q.shape[-1]),
            return_lse=True,
        )
        outs.append(out)
        lses.append(lse)
    merged, _ = merge_partials(outs, lses)
    return merged


def turbo_split_k_chunks(
    fold_chunk: Callable[[int, int], Tuple[np.ndarray, np.ndarray]],
    n_total: int,
    n_splits: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generic split-K driver for quantized decode.

    ``fold_chunk(lo, hi)`` must return the partial ``(output, lse)`` for
    keys ``[lo, hi)`` — e.g. a closure over Algorithm 2's integer inner
    loop.  Returns the merged ``(output, lse)``.
    """
    bounds = np.linspace(0, n_total, n_splits + 1, dtype=int)
    outs, lses = [], []
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        if hi == lo:
            continue
        out, lse = fold_chunk(int(lo), int(hi))
        outs.append(out)
        lses.append(lse)
    return merge_partials(outs, lses)

"""Attention masks.

Masks are additive: 0 where attention is allowed, ``NEG_INF`` where it is
not.  ``NEG_INF`` is a large finite negative rather than ``-inf`` so masked
scores survive integer/FP16 round-trips without producing NaNs in
``-inf - (-inf)`` style expressions inside the tiled kernels.
"""

from __future__ import annotations

import numpy as np

__all__ = ["NEG_INF", "causal_mask", "causal_mask_block"]

NEG_INF = -1e30


def causal_mask(n_q: int, n_k: int) -> np.ndarray:
    """Additive causal mask for queries attending to keys.

    Query ``i`` (0-based, aligned to the *end* of the key sequence, i.e.
    query ``i`` corresponds to absolute position ``n_k - n_q + i``) may
    attend to keys ``j <= n_k - n_q + i``.  This alignment matches decode:
    with ``n_q == 1`` the single query sees every key.
    """
    if n_q > n_k:
        raise ValueError(f"more queries ({n_q}) than keys ({n_k})")
    q_pos = np.arange(n_k - n_q, n_k)[:, None]
    k_pos = np.arange(n_k)[None, :]
    mask = np.zeros((n_q, n_k), dtype=np.float64)
    mask[k_pos > q_pos] = NEG_INF
    return mask


def causal_mask_block(
    q_start: int, q_len: int, k_start: int, k_len: int, offset: int
) -> np.ndarray:
    """Causal mask for one (query-tile, key-tile) pair in a tiled kernel.

    ``offset`` is ``n_k_total - n_q_total`` — the absolute position of query
    row 0.  Returns a ``(q_len, k_len)`` additive mask.
    """
    q_pos = (q_start + np.arange(q_len) + offset)[:, None]
    k_pos = (k_start + np.arange(k_len))[None, :]
    mask = np.zeros((q_len, k_len), dtype=np.float64)
    mask[k_pos > q_pos] = NEG_INF
    return mask

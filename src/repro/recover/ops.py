"""Operator-initiated fleet operations (drains and rolling restarts)."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FleetOp"]

_KINDS = ("drain", "rolling_restart")


@dataclass(frozen=True)
class FleetOp:
    """One scheduled fleet operation.

    ``drain`` gracefully empties one replica: it stops accepting
    dispatches, its queued (not-yet-admitted) work is re-routed to the
    rest of the fleet at zero cost, residents finish or migrate out,
    then the replica restarts clean and rejoins.  ``rolling_restart``
    drains every replica this way, one at a time in id order, so the
    fleet never loses more than one member's capacity at once.  Both
    drop zero requests by construction — the conservation invariant the
    harness asserts across every ops cell.
    """

    #: Cluster time the operation begins.
    time: float
    kind: str  # "drain" | "rolling_restart"
    #: Target replica for ``drain`` (ignored by ``rolling_restart``).
    replica_id: int = 0
    #: How often the operator re-checks whether the current replica has
    #: finished emptying.
    poll_s: float = 0.5

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {self.kind!r}")
        if self.time < 0:
            raise ValueError("time must be non-negative")
        if self.replica_id < 0:
            raise ValueError("replica_id must be non-negative")
        if self.poll_s <= 0:
            raise ValueError("poll_s must be positive")

"""Checkpointing / warm-restart tunables."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RecoverConfig"]


@dataclass(frozen=True)
class RecoverConfig:
    """How replicas checkpoint and how crashed ones come back.

    Snapshots are taken per replica at kernel-event boundaries (the only
    instants fleet state is quiescent, which is what makes them crash-
    consistent and digest-stable); each one serializes the replica's
    live request records plus a miniature-but-faithful quantized KV
    state through :mod:`repro.core.serialization` — real packed codes,
    real CRC32 checksums — so corruption and salvage on restart exercise
    the production code path, exactly like :mod:`repro.migrate` does for
    handoffs.
    """

    #: Wall-clock (simulated) seconds between per-replica snapshots.
    snapshot_interval_s: float = 5.0
    #: Snapshot epochs retained per replica; the recovery ladder walks
    #: them newest-first (snapshot -> salvage -> previous epoch -> cold).
    keep_epochs: int = 2
    #: Recover corrupted snapshots via :func:`repro.core.serialization.
    #: salvage_state` (keep the longest valid block prefix).  ``False``
    #: makes any corrupt epoch unusable — the cold-restart ablation.
    salvage: bool = True
    #: Probability a written snapshot epoch is corrupted at rest (torn
    #: write / disk rot), rolled from a stream keyed
    #: ``[seed, replica, epoch]`` so reruns are byte-identical.
    corrupt_rate: float = 0.0
    #: Seed for the corruption rolls and the miniature payload contents
    #: (independent of :class:`repro.cluster.faults.FaultConfig.seed` so
    #: snapshot fate never perturbs the crash schedule).
    seed: int = 0
    #: Miniature serialized-payload geometry (see
    #: :class:`repro.migrate.MigrationConfig` for the rationale): the
    #: replica's resident context maps proportionally onto
    #: ``payload_blocks`` quantized blocks of ``payload_block_tokens``
    #: tokens x ``payload_heads`` heads x ``payload_head_dim`` dims.
    payload_blocks: int = 8
    payload_block_tokens: int = 16
    payload_heads: int = 2
    payload_head_dim: int = 8

    def __post_init__(self) -> None:
        if self.snapshot_interval_s <= 0:
            raise ValueError("snapshot_interval_s must be positive")
        if self.keep_epochs < 1:
            raise ValueError("keep_epochs must be >= 1")
        if not 0.0 <= self.corrupt_rate <= 1.0:
            raise ValueError("corrupt_rate must lie in [0, 1]")
        if self.payload_blocks < 2:
            raise ValueError("payload_blocks must be >= 2 (salvage needs a prefix)")
        if min(self.payload_block_tokens, self.payload_heads, self.payload_head_dim) < 1:
            raise ValueError("payload geometry fields must be positive")

    @property
    def payload_tokens(self) -> int:
        """Miniature tokens one snapshot payload carries."""
        return self.payload_blocks * self.payload_block_tokens

"""Write-ahead log of post-snapshot request lifecycle marks.

The snapshot captures a replica's state *as of* one instant; requests
dispatched to the replica after that instant exist nowhere in it.  The
WAL closes that window: every admission onto the replica (dispatch,
migrate-in acceptance, restore re-entry) appends one mark *before* the
engine mutates, and the log truncates at each new snapshot — so
``snapshot + WAL`` is always the complete set of requests the replica
holds, and warm restart replays the WAL'd tail as cold re-entries
(their KV was never checkpointed) while snapshot members resume at
their checkpointed progress.

Entries reuse the :mod:`repro.sim.trace` record schema verbatim —
``{i, clock, action, ev, t, label}`` — so a WAL is digestible and
diffable with exactly the tooling the trace layer already has
(:func:`repro.sim.trace.trace_digest`, ``python -m repro trace-diff``).
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.sim.trace import Record, trace_digest

__all__ = ["WriteAheadLog"]


class WriteAheadLog:
    """Per-replica append-only log, truncated at each snapshot epoch."""

    def __init__(self, clock: str):
        #: Stamped on every record, like a scheduler's trace clock name.
        self.clock = clock
        self._records: List[Record] = []
        self._next = 0

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> List[Record]:
        """The live entries (snapshot-epoch-relative), oldest first."""
        return list(self._records)

    def append(self, ev: str, rid: int, t: float) -> Record:
        """Log one lifecycle mark (``ev`` e.g. ``"submit"``) for ``rid``."""
        record: Record = {
            "i": self._next,
            "clock": self.clock,
            "action": "mark",
            "ev": ev,
            "t": float(t),
            "label": f"r{rid}",
        }
        self._next += 1
        self._records.append(record)
        return record

    def truncate(self) -> int:
        """A new snapshot epoch supersedes the log; returns entries dropped.

        The global sequence keeps counting across truncations so two
        appends never share an ``i`` — digests of successive windows stay
        distinct even for identical content.
        """
        dropped = len(self._records)
        self._records.clear()
        return dropped

    def request_ids(self, ev: str = "submit") -> List[int]:
        """Request ids carried by ``ev`` entries, oldest first, deduped."""
        seen: Set[int] = set()
        out: List[int] = []
        for record in self._records:
            if record["ev"] != ev:
                continue
            rid = int(record["label"][1:])
            if rid not in seen:
                seen.add(rid)
                out.append(rid)
        return out

    def replay_plan(self, snapshot_rids: Set[int]) -> Dict[int, str]:
        """Classify logged requests for restart: ``"warm"`` if the last
        snapshot holds checkpointed KV for them, ``"cold"`` otherwise
        (post-snapshot arrivals whose progress was never persisted)."""
        return {
            rid: ("warm" if rid in snapshot_rids else "cold")
            for rid in self.request_ids()
        }

    def digest(self) -> str:
        """blake2b over the canonical live entries (trace tooling)."""
        return trace_digest(self._records)

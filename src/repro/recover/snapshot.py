"""Crash-consistent engine snapshots and the restart recovery ladder.

A snapshot is taken at a kernel-event boundary — the only instant a
replica's state is quiescent — and captures everything a warm restart
needs: the live request records (progress copied by value, since live
records keep mutating), a miniature-but-faithful serialized KV state
built through the real :mod:`repro.core.serialization` schema (packed
codes + CRC32 checksums), the prefix pool's refcount summary, and the
brownout level.  Its byte cost is the *real* cost of persisting the
resident cache at the admitted KV widths — which is the whole point:
a turbo4 cache snapshots ~4x cheaper than FP16, so aggressive intervals
are affordable only under compression.

On restart the recovery ladder runs, newest epoch first:

1. **intact snapshot** — resume every captured request at its exact
   progress (the recompute range is empty);
2. **salvage** — a corrupt epoch (detected by the payload checksums, the
   same machinery :mod:`repro.migrate` uses on the wire) keeps its
   longest valid block prefix; the kept fraction maps onto each
   request's context, rounding down so the resume point never claims
   unverified tokens;
3. **previous epoch** — an unsalvageable epoch degrades to the one
   before it;
4. **cold start** — no usable epoch: every held request re-enters the
   classic retry path.  Degraded, never lost.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.core.buffer import DecodeBuffer
from repro.core.kvcache import QuantizedKVCache
from repro.core.serialization import (
    CacheCorruptionError,
    salvage_state,
    state_digest,
    state_from_arrays,
    state_to_arrays,
)
from repro.core.turbo import TurboKVState
from repro.guard.chaos import CORRUPTION_KINDS, ChaosInjector
from repro.migrate import kv_wire_bytes
from repro.recover.config import RecoverConfig
from repro.recover.wal import WriteAheadLog

__all__ = [
    "EngineSnapshot",
    "ReplicaRecoveryState",
    "RequestSnapshot",
    "corrupt_snapshot_payload",
    "snapshot_payload",
    "take_snapshot",
    "verify_snapshot",
]

# Child-stream salts: every snapshot RNG purpose draws from its own
# keyed stream so none perturbs another (or the fault schedules).
_PAYLOAD_SALT = 6299
_FATE_SALT = 3571
_KIND_SALT = 9973


@dataclass(frozen=True)
class RequestSnapshot:
    """One request's progress, copied by value at snapshot time."""

    rid: int
    prefilled: int
    generated: int
    first_token_at: Optional[float]
    kv_bits: Optional[float]

    @property
    def context_tokens(self) -> int:
        """KV tokens resident for this request when the snapshot ran."""
        return self.prefilled + self.generated


@dataclass(frozen=True)
class EngineSnapshot:
    """One crash-consistent checkpoint of a replica's engine."""

    replica_id: int
    epoch: int
    time: float
    requests: Tuple[RequestSnapshot, ...]
    #: Whether this epoch was corrupted at rest (rolled at write time
    #: from the seeded fate stream; discovered at restore time by the
    #: payload checksums).
    corrupt: bool
    #: Bytes persisting this snapshot costs at the admitted KV widths.
    nbytes: float
    #: Prefix-pool refcount summary (resident, referenced) — sharing is
    #: rebuilt from content addresses after restore, so counts suffice.
    prefix_resident: int = 0
    prefix_referenced: int = 0
    #: Brownout level name at snapshot time (None without a controller).
    brownout_level: Optional[str] = None
    #: blake2b identity over the canonical snapshot content, including
    #: the serialized KV payload's :func:`repro.core.serialization.
    #: state_digest` — two runs snapshotting the same state digest equal.
    digest: str = ""


@dataclass
class ReplicaRecoveryState:
    """Per-replica checkpoint bookkeeping the simulator carries."""

    snapshots: Deque[EngineSnapshot]
    wal: WriteAheadLog
    #: Next epoch number to write.
    epoch: int = 0
    #: Records evicted by a crash, held for the warm restart that ends
    #: the downtime (the cold path re-dispatches them immediately).
    pending: List[object] = field(default_factory=list)

    @classmethod
    def fresh(cls, replica_id: int, keep_epochs: int) -> "ReplicaRecoveryState":
        return cls(
            snapshots=deque(maxlen=keep_epochs),
            wal=WriteAheadLog(clock=f"replica{replica_id}"),
        )


def snapshot_payload(
    replica_id: int, epoch: int, config: RecoverConfig
) -> Dict[str, np.ndarray]:
    """Serialize the miniature faithful KV state for one snapshot epoch.

    Keyed ``[seed, salt, replica, epoch]`` — deterministic per epoch,
    independent of the migration payload streams (different salt) and of
    every other replica/epoch.
    """
    rng = np.random.default_rng([config.seed, _PAYLOAD_SALT, replica_id, epoch])
    heads, dim = config.payload_heads, config.payload_head_dim
    head_bits = np.full(heads, 4, dtype=np.int32)
    cache = QuantizedKVCache(
        heads, dim, head_bits=head_bits, block_size=config.payload_block_tokens
    )
    scale = np.ones((heads, 1, 1))
    for _ in range(config.payload_blocks):
        k = rng.integers(-100, 101, size=(heads, config.payload_block_tokens, dim))
        v = rng.integers(-100, 101, size=(heads, config.payload_block_tokens, dim))
        cache.append_block(
            k.astype(np.int8), v.astype(np.int8), k_scale=scale, v_scale=scale
        )
    buffer = DecodeBuffer(
        heads, dim, capacity=config.payload_block_tokens, k_scale=scale, v_scale=scale
    )
    state = TurboKVState(cache=cache, buffer=buffer, head_bits=head_bits)
    return state_to_arrays(state, checksums=True)


def corrupt_snapshot_payload(
    arrays: Dict[str, np.ndarray],
    replica_id: int,
    epoch: int,
    config: RecoverConfig,
):
    """Damage one snapshot payload the way rest corruption would.

    The corruption *kind* (bit flip, zeroed scale, NaN poison,
    truncation) and the victim array are both drawn from streams keyed
    ``[seed, salt, replica, epoch]``, so a given epoch is always damaged
    the same way — restarts replay byte-identically.  Returns
    ``(damaged_arrays, chaos_event)``.
    """
    kind_rng = np.random.default_rng([config.seed, _KIND_SALT, replica_id, epoch])
    kind = CORRUPTION_KINDS[int(kind_rng.integers(len(CORRUPTION_KINDS)))]
    injector_seed = int(
        np.random.default_rng(
            [config.seed, _FATE_SALT, replica_id, epoch]
        ).integers(1 << 31)
    )
    return ChaosInjector(seed=injector_seed).corrupt(arrays, kind)


def _roll_corrupt(replica_id: int, epoch: int, config: RecoverConfig) -> bool:
    """Seeded at-rest-fate roll for one written epoch."""
    if config.corrupt_rate <= 0.0:
        return False
    u = float(
        np.random.default_rng(
            [config.seed, _FATE_SALT, replica_id, epoch, 1]
        ).uniform()
    )
    return u < config.corrupt_rate


def take_snapshot(
    replica_id: int,
    engine,
    epoch: int,
    now: float,
    config: RecoverConfig,
    model,
    base_kv_bits: float,
) -> EngineSnapshot:
    """Checkpoint one replica's engine at a kernel-event boundary."""
    requests = []
    for rid in list(engine.running) + list(engine.waiting) + list(engine.migrating):
        rec = engine.records[rid]
        requests.append(
            RequestSnapshot(
                rid=rid,
                prefilled=rec.prefilled,
                generated=rec.generated,
                first_token_at=rec.first_token_at,
                kv_bits=rec.kv_bits,
            )
        )
    nbytes = sum(
        kv_wire_bytes(
            model,
            snap.context_tokens,
            snap.kv_bits if snap.kv_bits is not None else base_kv_bits,
        )
        for snap in requests
    )
    pool = engine.prefix_pool
    refcounts = pool.refcount_snapshot() if pool is not None else {}
    level = engine.brownout_level
    kv_digest = state_digest(snapshot_payload(replica_id, epoch, config))
    header = {
        "replica": replica_id,
        "epoch": epoch,
        "t": float(now),
        "kv": kv_digest,
        "prefix": refcounts,
        "brownout": level.name if level is not None else None,
    }
    h = hashlib.blake2b(digest_size=16)
    h.update(json.dumps(header, sort_keys=True).encode())
    for snap in requests:
        h.update(
            json.dumps(
                [snap.rid, snap.prefilled, snap.generated, snap.first_token_at,
                 snap.kv_bits],
                sort_keys=True,
            ).encode()
        )
    return EngineSnapshot(
        replica_id=replica_id,
        epoch=epoch,
        time=float(now),
        requests=tuple(requests),
        corrupt=_roll_corrupt(replica_id, epoch, config),
        nbytes=float(nbytes),
        prefix_resident=len(refcounts),
        prefix_referenced=sum(1 for c in refcounts.values() if c > 0),
        brownout_level=header["brownout"],
        digest=h.hexdigest(),
    )


def verify_snapshot(
    snapshot: EngineSnapshot, config: RecoverConfig
) -> Tuple[int, int]:
    """Run one epoch through the checksum/salvage machinery.

    Returns ``(kept_tokens, total_tokens)`` over the miniature payload:
    ``kept == total`` for an intact epoch, ``0`` for an unusable one
    (salvage disabled, dead prefix, or unsalvageable metadata) — the
    ladder then degrades to the previous epoch.
    """
    total = config.payload_tokens
    if not snapshot.corrupt:
        return total, total
    if not config.salvage:
        return 0, total
    arrays = snapshot_payload(snapshot.replica_id, snapshot.epoch, config)
    damaged, _event = corrupt_snapshot_payload(
        arrays, snapshot.replica_id, snapshot.epoch, config
    )
    try:
        state_from_arrays(damaged)
        return total, total  # the damage missed everything checksummed
    except CacheCorruptionError:
        pass
    try:
        result = salvage_state(damaged)
    except CacheCorruptionError:
        return 0, total  # metadata gone: nothing to anchor a prefix to
    return int(result.state.cache.seq_len), total

"""Crash-consistent checkpointing, WAL replay, and warm fleet restarts.

The fault layer (:mod:`repro.cluster.faults`) recovers a crash by cold
retry: every evicted request re-prefills from token zero on another
replica.  This package makes recovery *warm*: replicas periodically
snapshot their engine state (:mod:`repro.recover.snapshot`) — request
records, a checksummed serialized KV payload, prefix-pool refcounts,
brownout level — and log post-snapshot admissions to a write-ahead log
(:mod:`repro.recover.wal`).  A crashed replica then restarts by loading
the newest usable epoch (salvaging corrupt ones, degrading down the
ladder to cold start — never losing a request), replaying the WAL tail,
and resuming every checkpointed request at its exact ``[valid,
prompt_len)`` recompute range instead of a full re-prefill.

The same machinery powers operator-initiated graceful drains and
rolling restarts (:mod:`repro.recover.ops`): zero-drop fleet
operations the cluster simulator executes as first-class events.

The economic argument is the paper's: a 4.3-bit cache is ~0.27x FP16's
bytes to persist, so frequent checkpoints — the thing that makes warm
restart *cheap to keep warm* — are affordable only under compression
(``python -m repro recover``).
"""

from repro.recover.config import RecoverConfig
from repro.recover.ops import FleetOp
from repro.recover.snapshot import (
    EngineSnapshot,
    ReplicaRecoveryState,
    RequestSnapshot,
    corrupt_snapshot_payload,
    snapshot_payload,
    take_snapshot,
    verify_snapshot,
)
from repro.recover.wal import WriteAheadLog

__all__ = [
    "EngineSnapshot",
    "FleetOp",
    "RecoverConfig",
    "ReplicaRecoveryState",
    "RequestSnapshot",
    "WriteAheadLog",
    "corrupt_snapshot_payload",
    "snapshot_payload",
    "take_snapshot",
    "verify_snapshot",
]

"""The tile machine: executes instruction lists under capacity limits.

Models one CTA of an A100-class GPU:

* shared memory budget (A100: 164 KiB usable per CTA with the carve-out);
* register-file budget (A100: 256 KiB per SM; a single resident CTA may
  address all of it — using the full size models the best case, and any
  occupancy target can be expressed by shrinking the limits).

Every live buffer is charged ``elements x dtype_bytes`` against its space;
exceeding a budget raises :class:`CapacityError` at the allocating
instruction, which is exactly the failure a Triton kernel author hits when
a block size doesn't fit.  The machine also accumulates
:class:`repro.perf.counts.OpCounts`, so an executed program yields both a
numeric result and a cost-model input.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Tuple

import numpy as np

from repro.kernels.isa import DTYPE_BYTES, Instruction, Space
from repro.perf.counts import OpCounts

__all__ = ["MachineLimits", "CapacityError", "ResourceReport", "TileMachine"]


@dataclass(frozen=True)
class MachineLimits:
    """Per-CTA capacity limits in bytes."""

    smem_bytes: int = 164 * 1024
    reg_bytes: int = 256 * 1024


class CapacityError(RuntimeError):
    """A tile allocation exceeded its space's budget."""


@dataclass
class ResourceReport:
    """Peak usage and operation counts of one program execution."""

    peak_smem_bytes: int
    peak_reg_bytes: int
    counts: OpCounts

    def fits(self, limits: MachineLimits) -> bool:
        return (
            self.peak_smem_bytes <= limits.smem_bytes
            and self.peak_reg_bytes <= limits.reg_bytes
        )


@dataclass
class _Buffer:
    shape: Tuple[int, ...]
    dtype: str
    space: Space
    data: np.ndarray

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape)) * DTYPE_BYTES[self.dtype]


class TileMachine:
    """Interpreter for tile programs.

    ``hbm`` is the host-provided environment: named NumPy arrays the
    program may :class:`~repro.kernels.isa.Load` from and
    :class:`~repro.kernels.isa.Store` to.
    """

    def __init__(self, limits: MachineLimits = MachineLimits(), enforce: bool = True):
        self.limits = limits
        self.enforce = enforce
        self.hbm: Dict[str, np.ndarray] = {}
        self.buffers: Dict[str, _Buffer] = {}
        self.counts = OpCounts()
        self._usage = {Space.SMEM: 0, Space.REG: 0}
        self._peak = {Space.SMEM: 0, Space.REG: 0}

    # -- buffer management -------------------------------------------------
    def alloc(self, name: str, shape: Tuple[int, ...], dtype: str, space: Space) -> None:
        if name in self.buffers:
            raise KeyError(f"buffer {name!r} already allocated")
        if dtype not in DTYPE_BYTES:
            raise ValueError(f"unknown dtype {dtype!r}")
        buf = _Buffer(shape=tuple(shape), dtype=dtype, space=space,
                      data=np.zeros(shape, dtype=np.float64))
        if space is not Space.HBM:
            self._usage[space] += buf.nbytes
            self._peak[space] = max(self._peak[space], self._usage[space])
            budget = (
                self.limits.smem_bytes if space is Space.SMEM else self.limits.reg_bytes
            )
            if self.enforce and self._usage[space] > budget:
                raise CapacityError(
                    f"{space.value} over budget allocating {name!r}: "
                    f"{self._usage[space]} > {budget} bytes"
                )
        self.buffers[name] = buf

    def free(self, name: str) -> None:
        buf = self.buffers.pop(name)
        if buf.space is not Space.HBM:
            self._usage[buf.space] -= buf.nbytes

    def read(self, name: str) -> np.ndarray:
        return self.buffers[name].data

    def write(self, name: str, data: np.ndarray) -> None:
        buf = self.buffers[name]
        data = np.asarray(data, dtype=np.float64)
        if data.shape != buf.shape:
            raise ValueError(
                f"shape mismatch writing {name!r}: {data.shape} != {buf.shape}"
            )
        if buf.dtype in ("int8", "int32"):
            rounded = np.rint(data)
            if not np.allclose(rounded, data):
                raise ValueError(f"non-integer data written to integer buffer {name!r}")
            data = rounded
        buf.data = data

    def dtype_of(self, name: str) -> str:
        return self.buffers[name].dtype

    # -- execution ---------------------------------------------------------
    def run(self, program: Iterable[Instruction]) -> ResourceReport:
        for instr in program:
            instr.execute(self)
        return self.report()

    def report(self) -> ResourceReport:
        return ResourceReport(
            peak_smem_bytes=self._peak[Space.SMEM],
            peak_reg_bytes=self._peak[Space.REG],
            counts=self.counts,
        )

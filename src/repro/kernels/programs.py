"""Tile programs: FP16 flash attention and TurboAttention prefill.

Programs are flat instruction lists (loops unrolled at build time) over a
single attention head, mirroring one CTA's work in the real kernels.  Two
guarantees are tested:

* **numerics** — executing the turbo program reproduces
  :func:`repro.core.prefill.turbo_prefill` (and the flash program
  reproduces :func:`repro.attention.flash.flash_attention`) on the same
  inputs;
* **resources** — the resource report exposes the SMEM/register pressure
  of a block-size choice, reproducing the paper's observation that INT8
  tiles (1 byte/element) allow roughly twice the block size of FP16 tiles
  before shared memory overflows.

Values are computed in float64 (the library's storage-emulation convention);
buffer dtypes drive *capacity accounting and op classification*, exactly
like the rest of the performance model.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.kernels.isa import (
    Alloc,
    DequantizeTile,
    Elementwise,
    ExpApprox,
    Free,
    Instruction,
    Load,
    MMA,
    QuantizeTile,
    RowMax,
    RowSum,
    Space,
    Store,
)
from repro.kernels.machine import MachineLimits, TileMachine
from repro.sas.softmax import SAS, SASConfig

__all__ = [
    "build_flash_tile_program",
    "build_turbo_tile_program",
    "run_attention_program",
    "max_feasible_block",
]


def _softmax_update(
    sas_fn: Optional[Callable], tag: str, br: int, bc: int, d: int
) -> List[Instruction]:
    """Shared online-softmax update given a scores buffer ``s_{tag}``."""
    exp_fn = sas_fn if sas_fn is not None else np.exp
    is_sas = sas_fn is not None
    return [
        Alloc(f"m_new_{tag}", (br,), "fp32", Space.REG),
        RowMax(f"m_new_{tag}", f"s_{tag}"),
        Elementwise(f"m_new_{tag}", (f"m_new_{tag}", "m"), fn=np.maximum),
        Alloc(f"corr_{tag}", (br,), "fp32", Space.REG),
        Elementwise(
            f"corr_{tag}", ("m", f"m_new_{tag}"),
            fn=lambda m, mn: np.where(
                np.isfinite(m),
                np.where(np.isfinite(e := m - mn), exp_fn(e), 0.0),
                0.0,
            ),
        ),
        Alloc(f"p_{tag}", (br, bc), "fp32", Space.REG),
        ExpApprox(f"p_{tag}", f"s_{tag}", bias=f"m_new_{tag}", exp_fn=exp_fn, sas=is_sas),
        Alloc(f"psum_{tag}", (br,), "fp32", Space.REG),
        RowSum(f"psum_{tag}", f"p_{tag}"),
        Elementwise("l", (f"corr_{tag}", "l", f"psum_{tag}"), fn=lambda c, l, p: c * l + p),
        Elementwise("m", (f"m_new_{tag}",), fn=lambda x: x),
        Free(f"psum_{tag}"),
        Free(f"m_new_{tag}"),
    ]


def build_flash_tile_program(n: int, d: int, block_q: int, block_k: int) -> List[Instruction]:
    """FP16 flash attention (non-causal) over one head as a tile program.

    HBM environment expected: ``Q``, ``K``, ``V`` of shape ``(n, d)`` and a
    preallocated output ``O``.
    """
    if n % block_q or n % block_k:
        raise ValueError("program builder requires divisible tile sizes")
    prog: List[Instruction] = []
    for qs in range(0, n, block_q):
        br = block_q
        prog += [
            Alloc("q_tile", (br, d), "fp16", Space.SMEM),
            Load("q_tile", "Q", index=(slice(qs, qs + br),)),
            Alloc("o_acc", (br, d), "fp32", Space.REG),
            Alloc("m", (br,), "fp32", Space.REG),
            Elementwise("m", ("m",), fn=lambda x: np.full_like(x, -np.inf)),
            Alloc("l", (br,), "fp32", Space.REG),
        ]
        for ks in range(0, n, block_k):
            bc = block_k
            tag = f"{qs}_{ks}"
            prog += [
                Alloc("k_tile", (bc, d), "fp16", Space.SMEM),
                Load("k_tile", "K", index=(slice(ks, ks + bc),)),
                Alloc("v_tile", (bc, d), "fp16", Space.SMEM),
                Load("v_tile", "V", index=(slice(ks, ks + bc),)),
                Alloc(f"s_{tag}", (br, bc), "fp32", Space.REG),
                MMA(f"s_{tag}", "q_tile", "k_tile", transpose_b=True),
                Elementwise(f"s_{tag}", (f"s_{tag}",), fn=lambda s, sc=1.0 / np.sqrt(d): s * sc),
            ]
            prog += _softmax_update(None, tag, br, bc, d)
            prog += [
                Alloc(f"pv_{tag}", (br, d), "fp32", Space.REG),
                MMA(f"pv_{tag}", f"p_{tag}", "v_tile"),
                Elementwise(
                    "o_acc", (f"corr_{tag}", "o_acc", f"pv_{tag}"),
                    fn=lambda c, o, pv: c[:, None] * o + pv,
                ),
                Free(f"pv_{tag}"),
                Free(f"p_{tag}"),
                Free(f"corr_{tag}"),
                Free(f"s_{tag}"),
                Free("v_tile"),
                Free("k_tile"),
            ]
        prog += [
            Elementwise(
                "o_acc", ("o_acc", "l"),
                fn=lambda o, l: o / np.where(l > 0, l, 1.0)[:, None],
            ),
            Store("o_acc", "O", index=(slice(qs, qs + br),)),
            Free("l"),
            Free("m"),
            Free("o_acc"),
            Free("q_tile"),
        ]
    return prog


def build_turbo_tile_program(
    n: int,
    d: int,
    block_q: int,
    block_k: int,
    sas_config: SASConfig = SASConfig(),
    max_code: int = 119,
) -> List[Instruction]:
    """TurboAttention prefill inner loop (Algorithm 1, non-causal) for one
    head.  Same HBM environment as the flash program."""
    if n % block_q or n % block_k:
        raise ValueError("program builder requires divisible tile sizes")
    sas = SAS(sas_config)
    scale = 1.0 / np.sqrt(d)
    prog: List[Instruction] = []
    for qs in range(0, n, block_q):
        br = block_q
        prog += [
            Alloc("q_stage", (br, d), "fp16", Space.SMEM),
            Load("q_stage", "Q", index=(slice(qs, qs + br),)),
            Alloc("q_codes", (br, d), "int8", Space.SMEM),
            Alloc("q_scale", (), "fp32", Space.REG),
            QuantizeTile("q_codes", "q_scale", "q_stage", max_code=max_code),
            Free("q_stage"),
            Alloc("o_acc", (br, d), "fp32", Space.REG),
            Alloc("m", (br,), "fp32", Space.REG),
            Elementwise("m", ("m",), fn=lambda x: np.full_like(x, -np.inf)),
            Alloc("l", (br,), "fp32", Space.REG),
        ]
        for ks in range(0, n, block_k):
            bc = block_k
            tag = f"{qs}_{ks}"
            prog += [
                # Stage K/V through SMEM in FP16, quantize to INT8 in place.
                Alloc("kv_stage", (bc, d), "fp16", Space.SMEM),
                Load("kv_stage", "K", index=(slice(ks, ks + bc),)),
                Alloc("k_codes", (bc, d), "int8", Space.SMEM),
                Alloc("k_scale", (), "fp32", Space.REG),
                QuantizeTile("k_codes", "k_scale", "kv_stage", max_code=max_code),
                Load("kv_stage", "V", index=(slice(ks, ks + bc),)),
                Alloc("v_codes", (bc, d), "int8", Space.SMEM),
                Alloc("v_scale", (), "fp32", Space.REG),
                QuantizeTile("v_codes", "v_scale", "kv_stage", max_code=max_code),
                Free("kv_stage"),
                # Integer score MatMul + scale recovery.
                Alloc(f"s_int_{tag}", (br, bc), "int32", Space.REG),
                MMA(f"s_int_{tag}", "q_codes", "k_codes", transpose_b=True),
                Alloc(f"s_{tag}", (br, bc), "fp32", Space.REG),
                Elementwise(
                    f"s_{tag}", (f"s_int_{tag}", "q_scale", "k_scale"),
                    fn=lambda s, a, b, sc=scale: a * b * s * sc,
                ),
                Free(f"s_int_{tag}"),
            ]
            prog += _softmax_update(sas, tag, br, bc, d)
            prog += [
                # Quantize the probability tile and run the PV MatMul in INT8.
                Alloc(f"p_codes_{tag}", (br, bc), "int8", Space.REG),
                Alloc(f"p_scale_{tag}", (), "fp32", Space.REG),
                QuantizeTile(f"p_codes_{tag}", f"p_scale_{tag}", f"p_{tag}", max_code=max_code),
                Alloc(f"pv_int_{tag}", (br, d), "int32", Space.REG),
                MMA(f"pv_int_{tag}", f"p_codes_{tag}", "v_codes"),
                Elementwise(
                    "o_acc",
                    (f"corr_{tag}", "o_acc", f"pv_int_{tag}", f"p_scale_{tag}", "v_scale"),
                    fn=lambda c, o, pv, ps, vs: c[:, None] * o + ps * vs * pv,
                ),
                Free(f"pv_int_{tag}"),
                Free(f"p_codes_{tag}"),
                Free(f"p_scale_{tag}"),
                Free(f"p_{tag}"),
                Free(f"corr_{tag}"),
                Free(f"s_{tag}"),
                Free("v_codes"),
                Free("v_scale"),
                Free("k_codes"),
                Free("k_scale"),
            ]
        prog += [
            Elementwise(
                "o_acc", ("o_acc", "l"),
                fn=lambda o, l: o / np.where(l > 0, l, 1.0)[:, None],
            ),
            Store("o_acc", "O", index=(slice(qs, qs + br),)),
            Free("l"),
            Free("m"),
            Free("o_acc"),
            Free("q_scale"),
            Free("q_codes"),
        ]
    return prog


def run_attention_program(
    kind: str,
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    block_q: int = 64,
    block_k: int = 64,
    limits: MachineLimits = MachineLimits(),
    enforce: bool = True,
):
    """Build + execute a single-head program; returns ``(output, report)``."""
    q = np.asarray(q, dtype=np.float64)
    n, d = q.shape
    if kind == "flash":
        prog = build_flash_tile_program(n, d, block_q, block_k)
    elif kind == "turbo":
        prog = build_turbo_tile_program(n, d, block_q, block_k)
    else:
        raise ValueError(f"unknown program kind: {kind!r}")
    machine = TileMachine(limits=limits, enforce=enforce)
    machine.hbm["Q"] = q
    machine.hbm["K"] = np.asarray(k, dtype=np.float64)
    machine.hbm["V"] = np.asarray(v, dtype=np.float64)
    machine.hbm["O"] = np.zeros((n, d))
    report = machine.run(prog)
    return machine.hbm["O"], report


def max_feasible_block(
    kind: str, d: int, limits: MachineLimits = MachineLimits()
) -> int:
    """Largest square block size (power of two) whose program fits.

    Reproduces the paper's SRAM argument: for ``d = 128`` the INT8 turbo
    kernel fits noticeably larger tiles than the FP16 flash kernel.
    """
    rng = np.random.default_rng(0)
    best = 0
    b = 8
    while b <= 1024:
        n = 2 * b  # at least two key tiles so double-buffering shows up
        q, k, v = (rng.standard_normal((n, d)) for _ in range(3))
        try:
            _, report = run_attention_program(kind, q, k, v, block_q=b, block_k=b, limits=limits)
        except Exception:
            break
        if not report.fits(limits):
            break
        best = b
        b *= 2
    return best

"""Tile instruction set.

Instructions operate on named tile buffers living in one of three spaces:

* ``HBM`` — device memory; unbounded, but loads/stores are counted bytes.
* ``SMEM`` — shared memory; bounded per CTA (the flash-attention staging
  area for K/V tiles).
* ``REG`` — register file; bounded; where accumulators and the running
  max/sum vectors live.

Each instruction knows how to execute itself against a
:class:`repro.kernels.machine.TileMachine` environment (a dict of NumPy
arrays plus space bookkeeping) and what operation counts it contributes.
Dtypes are tracked per buffer ("fp32", "fp16", "int8", "int32"), and each
element is charged its dtype width toward the owning space's capacity —
this is exactly the pressure argument the paper makes for why INT8 tiles
allow larger blocks than FP16/FP32 ones (§2.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple

import numpy as np

__all__ = [
    "Space",
    "DTYPE_BYTES",
    "Instruction",
    "Alloc",
    "Free",
    "Load",
    "Store",
    "MMA",
    "RowMax",
    "RowSum",
    "ExpApprox",
    "Elementwise",
    "QuantizeTile",
    "DequantizeTile",
]


class Space(enum.Enum):
    HBM = "hbm"
    SMEM = "smem"
    REG = "reg"


DTYPE_BYTES = {"fp32": 4, "fp16": 2, "int8": 1, "int32": 4}


@dataclass
class Instruction:
    """Base class; subclasses implement ``execute(machine)``."""

    def execute(self, machine) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


@dataclass
class Alloc(Instruction):
    """Reserve a named tile buffer in a space."""

    name: str
    shape: Tuple[int, ...]
    dtype: str
    space: Space

    def execute(self, machine) -> None:
        machine.alloc(self.name, self.shape, self.dtype, self.space)


@dataclass
class Free(Instruction):
    """Release a buffer (capacity returns to the space)."""

    name: str

    def execute(self, machine) -> None:
        machine.free(self.name)


@dataclass
class Load(Instruction):
    """Copy ``src`` (HBM-resident array provided by the host) into ``dst``.

    The host array is looked up in the machine's HBM environment; ``index``
    optionally slices it first (tile selection).
    """

    dst: str
    src: str
    index: Optional[Tuple[slice, ...]] = None

    def execute(self, machine) -> None:
        data = machine.hbm[self.src]
        if self.index is not None:
            data = data[self.index]
        machine.write(self.dst, np.asarray(data))
        machine.counts.bytes_read += data.size * DTYPE_BYTES[machine.dtype_of(self.dst)]


@dataclass
class Store(Instruction):
    """Copy a buffer back to an HBM array (optionally into a slice)."""

    src: str
    dst: str
    index: Optional[Tuple[slice, ...]] = None

    def execute(self, machine) -> None:
        data = machine.read(self.src)
        if self.index is not None:
            machine.hbm[self.dst][self.index] = data
        else:
            machine.hbm[self.dst] = data.copy()
        machine.counts.bytes_written += data.size * DTYPE_BYTES[machine.dtype_of(self.src)]


@dataclass
class MMA(Instruction):
    """Tile MatMul ``dst = a @ b^T?`` with dtype-dependent accounting.

    INT8 operands charge ``int8_tc`` ops; FP16 operands charge ``fp16_tc``.
    Accumulation is int32 / fp32 respectively (the accumulator buffer's
    dtype must reflect that).
    """

    dst: str
    a: str
    b: str
    transpose_b: bool = False
    accumulate: bool = False

    def execute(self, machine) -> None:
        a = machine.read(self.a)
        b = machine.read(self.b)
        if self.transpose_b:
            b = np.swapaxes(b, -1, -2)
        if machine.dtype_of(self.a) == "int8":
            out = a.astype(np.int64) @ b.astype(np.int64)
            if np.abs(out).max(initial=0) > np.iinfo(np.int32).max:
                raise OverflowError("int32 accumulator overflow in MMA")
            machine.counts.int8_tc += 2 * a.shape[-2] * a.shape[-1] * b.shape[-1]
        else:
            out = a.astype(np.float64) @ b.astype(np.float64)
            machine.counts.fp16_tc += 2 * a.shape[-2] * a.shape[-1] * b.shape[-1]
        if self.accumulate:
            out = machine.read(self.dst) + out
        machine.write(self.dst, out)


@dataclass
class RowMax(Instruction):
    """``dst = max(dst_prev?, rowmax(src))`` over the last axis."""

    dst: str
    src: str
    combine: bool = False

    def execute(self, machine) -> None:
        m = machine.read(self.src).max(axis=-1)
        if self.combine:
            m = np.maximum(machine.read(self.dst), m)
        machine.write(self.dst, m)
        machine.counts.fp32_cuda += machine.read(self.src).size


@dataclass
class RowSum(Instruction):
    """``dst = rowsum(src)`` over the last axis."""

    dst: str
    src: str

    def execute(self, machine) -> None:
        machine.write(self.dst, machine.read(self.src).sum(axis=-1))
        machine.counts.fp32_cuda += machine.read(self.src).size


@dataclass
class ExpApprox(Instruction):
    """Exponential of ``src - bias[..., None]`` into ``dst``.

    ``exp_fn`` is ``np.exp`` (FP32 CUDA path) or a SAS instance (tensor-core
    path); accounting follows the choice.
    """

    dst: str
    src: str
    bias: Optional[str] = None
    exp_fn: Callable[[np.ndarray], np.ndarray] = field(default=np.exp)
    sas: bool = False

    def execute(self, machine) -> None:
        x = machine.read(self.src)
        if self.bias is not None:
            x = x - machine.read(self.bias)[..., None]
        with np.errstate(invalid="ignore", over="ignore"):
            out = self.exp_fn(x)
        out = np.where(np.isfinite(x), out, 0.0)
        machine.write(self.dst, out)
        if self.sas:
            machine.counts.fp16_tc += 8 * x.size
            machine.counts.fp32_cuda += 2 * x.size
        else:
            machine.counts.fp32_cuda += 8 * x.size


@dataclass
class Elementwise(Instruction):
    """Generic register-level elementwise op ``dst = fn(*srcs)``.

    Used for the online-softmax rescale arithmetic; charged as FP32 CUDA
    work proportional to the output size.
    """

    dst: str
    srcs: Tuple[str, ...]
    fn: Callable[..., np.ndarray] = field(default=lambda x: x)

    def execute(self, machine) -> None:
        args = [machine.read(s) for s in self.srcs]
        out = np.asarray(self.fn(*args), dtype=np.float64)
        machine.write(self.dst, out)
        machine.counts.fp32_cuda += out.size


@dataclass
class QuantizeTile(Instruction):
    """Symmetric INT8 quantization of a tile: emits codes + scalar scale."""

    dst_codes: str
    dst_scale: str
    src: str
    max_code: int = 119

    def execute(self, machine) -> None:
        x = machine.read(self.src)
        scale = max(float(np.abs(x).max()), 1e-12) / float(self.max_code)
        codes = np.clip(np.rint(x / scale), -self.max_code, self.max_code)
        machine.write(self.dst_codes, codes)
        machine.write(self.dst_scale, np.array(scale))
        machine.counts.fp32_cuda += 2 * x.size


@dataclass
class DequantizeTile(Instruction):
    """Integer progressive decode: ``dst = (codes + z) * s`` (int8 out)."""

    dst: str
    codes: str
    s_int: str
    z_int: str

    def execute(self, machine) -> None:
        codes = machine.read(self.codes)
        s = machine.read(self.s_int)
        z = machine.read(self.z_int)
        out = np.clip((codes + z) * s, -127, 127)
        machine.write(self.dst, out)
        machine.counts.int_alu += 8 * codes.size

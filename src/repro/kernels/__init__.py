"""Tile-level kernel VM.

The paper implements TurboAttention as Triton kernels whose block sizes
``B_r``/``B_c`` are "closely related to the device's SRAM capacity"
(§5.6).  This subpackage makes that relationship executable:

* :mod:`repro.kernels.isa` — a small tile instruction set (loads, MMAs,
  softmax ops, quantize/dequantize, stores) with operand spaces (HBM /
  shared memory / registers).
* :mod:`repro.kernels.machine` — :class:`TileMachine`, an interpreter that
  executes tile programs over NumPy buffers while enforcing per-space
  capacity limits and accumulating operation counts compatible with
  :class:`repro.perf.counts.OpCounts`.
* :mod:`repro.kernels.programs` — builders that emit the TurboAttention
  prefill inner loop (Algorithm 1) and the FP16 flash inner loop as tile
  programs; executing them reproduces the reference kernels bit-for-bit,
  and their resource reports answer "does this block size fit?".

This is the bridge between the numerics (:mod:`repro.core`) and the
performance model (:mod:`repro.perf`): one artifact that is simultaneously
correct (validated against the kernels) and resource-aware (validated
against the device limits).
"""

from repro.kernels.isa import (
    Space,
    Instruction,
    Alloc,
    Free,
    Load,
    Store,
    MMA,
    RowMax,
    RowSum,
    ExpApprox,
    Elementwise,
    QuantizeTile,
    DequantizeTile,
)
from repro.kernels.machine import TileMachine, MachineLimits, ResourceReport
from repro.kernels.programs import (
    build_flash_tile_program,
    build_turbo_tile_program,
    run_attention_program,
    max_feasible_block,
)

__all__ = [
    "Space",
    "Instruction",
    "Alloc",
    "Free",
    "Load",
    "Store",
    "MMA",
    "RowMax",
    "RowSum",
    "ExpApprox",
    "Elementwise",
    "QuantizeTile",
    "DequantizeTile",
    "TileMachine",
    "MachineLimits",
    "ResourceReport",
    "build_flash_tile_program",
    "build_turbo_tile_program",
    "run_attention_program",
    "max_feasible_block",
]

"""Synthetic evaluation tasks.

The paper evaluates on GSM8k / AQuA / BBH with 8-shot chain-of-thought
prompts (average prefill lengths 900 / 1304 / 1021) and 256 generated
tokens.  Those benchmarks need trained checkpoints; what KV-cache
quantization actually perturbs in them is *long-range retrieval through
the cache during generation*.  We therefore substitute constructed
associative-recall tasks that:

* store key/value pairs in the prompt (prefill), shaped with each model's
  channel-outlier profile,
* issue multi-hop retrieval queries during decode (mimicking CoT steps
  that must read earlier facts), and
* score the fraction of correct retrievals.

A method is "near-lossless" exactly when its compressed cache still
returns the right value for every query — the property Table 2 measures.
Task configs mirror the paper's prefill lengths and 256-step generations.
"""

from repro.tasks.recall import RecallTask, RecallResult, evaluate_backend
from repro.tasks.datasets import TASK_PRESETS, task_for_model
from repro.tasks.needle import NeedleTask, NeedleResult, evaluate_needle, depth_sweep

__all__ = [
    "RecallTask",
    "RecallResult",
    "evaluate_backend",
    "TASK_PRESETS",
    "task_for_model",
    "NeedleTask",
    "NeedleResult",
    "evaluate_needle",
    "depth_sweep",
]

"""Task presets mirroring the paper's benchmark suite.

Prefill lengths copy the paper's reported CoT prompt averages (GSM8k 900,
AQuA 1304, BBH 1021); all generate 256 steps.  Difficulty (pair count and
key sharpness) is staggered so the three tasks stress the cache
differently, the way the real benchmarks do: AQuA has the most stored
facts (longest prompts, densest retrieval), BBH intermediate, GSM8k the
sharpest queries.
"""

from __future__ import annotations

from typing import Dict

from repro.models.config import MODEL_PRESETS, ModelConfig
from repro.tasks.recall import RecallTask

__all__ = ["TASK_PRESETS", "task_for_model"]

TASK_PRESETS: Dict[str, RecallTask] = {
    "gsm8k_like": RecallTask(
        name="gsm8k_like",
        prefill_len=900,
        n_pairs=64,
        n_hops=256,
        beta=5.0,
        gamma=4.0,
        value_coherence=0.90,
        seed=11,
    ),
    "aqua_like": RecallTask(
        name="aqua_like",
        prefill_len=1304,
        n_pairs=96,
        n_hops=256,
        beta=5.0,
        gamma=4.0,
        value_coherence=0.93,
        seed=12,
    ),
    "bbh_like": RecallTask(
        name="bbh_like",
        prefill_len=1021,
        n_pairs=80,
        n_hops=256,
        beta=5.0,
        gamma=4.0,
        value_coherence=0.92,
        seed=13,
    ),
}


def task_for_model(task_name: str, model_name: str) -> tuple:
    """Resolve (task, model) preset pair, validating names."""
    if task_name not in TASK_PRESETS:
        raise KeyError(f"unknown task {task_name!r}; choose from {sorted(TASK_PRESETS)}")
    if model_name not in MODEL_PRESETS:
        raise KeyError(f"unknown model {model_name!r}; choose from {sorted(MODEL_PRESETS)}")
    model: ModelConfig = MODEL_PRESETS[model_name]
    return TASK_PRESETS[task_name], model

"""Needle-in-a-haystack retrieval through a compressed cache.

A single (key, value) fact — the needle — is stored at a controllable
depth inside a long distractor prompt; decode steps repeatedly query it.
Sweeping the depth probes whether cache compression degrades *where* a
fact lives:

* For KIVI/GEAR the most recent ``n_b`` tokens sit in the FP16 residual
  window — needles near the prompt's end are read losslessly.
* For TurboAttention the tail lives in the INT8 buffer (near-lossless)
  while older blocks are INT4/2 — a smaller but analogous recency effect.
* FP16 is flat at 100% everywhere.

The construction reuses the gain-decoupled geometry of
:mod:`repro.tasks.recall` (score margins independent of channel gains),
with ``n_pairs`` distractor pairs sharing the prompt so the needle must be
discriminated, not just detected.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List

import numpy as np

from repro.models.config import ModelConfig
from repro.tasks.recall import RecallTask, build_streams

__all__ = ["NeedleTask", "NeedleResult", "evaluate_needle", "depth_sweep"]


@dataclass(frozen=True)
class NeedleTask:
    """Single-fact retrieval at a fixed depth.

    ``depth`` is the needle's fractional position in the prompt (0 = very
    first token, 1 = last).  Other fields mirror :class:`RecallTask`.
    """

    name: str = "needle"
    prefill_len: int = 1024
    n_distractor_pairs: int = 63
    depth: float = 0.5
    n_probes: int = 64
    beta: float = 5.0
    gamma: float = 4.0
    value_coherence: float = 0.93
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.depth <= 1.0:
            raise ValueError("depth must lie in [0, 1]")
        if self.n_probes <= 0:
            raise ValueError("n_probes must be positive")


@dataclass
class NeedleResult:
    accuracy: float
    depth: float
    effective_bits: float


def evaluate_needle(
    backend_factory: Callable[[], object],
    task: NeedleTask,
    model: ModelConfig,
) -> NeedleResult:
    """Retrieval accuracy for one needle placement."""
    rng = np.random.default_rng(task.seed * 6121 + model.seed + int(task.depth * 1000))
    base = RecallTask(
        name=task.name,
        prefill_len=task.prefill_len,
        n_pairs=task.n_distractor_pairs + 1,
        n_hops=task.n_probes,
        beta=task.beta,
        gamma=task.gamma,
        value_coherence=task.value_coherence,
        seed=task.seed,
    )
    hkv, hq, d = model.n_kv_heads, model.n_heads, model.head_dim
    g = hq // hkv
    k_prompt, v_prompt, queries, values, gains_v = build_streams(base, model, rng)

    # Relocate pair 0 — the needle — to the requested depth, swapping its
    # row with whatever occupied that position.
    target = int(round(task.depth * (task.prefill_len - 1)))
    # Find pair 0's current position: its stored key matches query 0 best.
    scores = queries[0] @ k_prompt[0].T
    current = int(np.argmax(scores[0]))
    if current != target:
        for arr in (k_prompt, v_prompt):
            arr[:, [current, target], :] = arr[:, [target, current], :]

    q_prompt = np.repeat(
        rng.standard_normal((hkv, task.prefill_len, d)) * base.distractor_norm, g, axis=0
    )
    backend = backend_factory()
    _, state = backend.prefill(q_prompt, k_prompt, v_prompt, causal=True)

    codebooks = np.broadcast_to(values[None, :, :], (hkv,) + values.shape)
    u = np.zeros(d)
    u[0] = 1.0
    correct = 0
    total = 0
    for _ in range(task.n_probes):
        q_t = np.repeat(queries[:, 0, :], g, axis=0)
        k_noise = rng.standard_normal((hkv, d))
        k_noise[:, 0] = 0.0
        k_noise /= np.maximum(np.linalg.norm(k_noise, axis=-1, keepdims=True), 1e-12)
        k_t = k_noise * base.distractor_norm - task.gamma * u
        v_t = rng.standard_normal((hkv, d)) * base.distractor_norm
        out = backend.decode_step(q_t, k_t, v_t, state).reshape(hkv, g, d)
        for h in range(hkv):
            corrected = out[h] / gains_v[h]
            picks = np.argmax(codebooks[h] @ corrected.T, axis=0)
            correct += int(np.sum(picks == 0))
            total += g
    return NeedleResult(
        accuracy=correct / total,
        depth=task.depth,
        effective_bits=float(state.effective_bits_per_value()),
    )


def depth_sweep(
    backend_factory: Callable[[], object],
    model: ModelConfig,
    depths=(0.0, 0.25, 0.5, 0.75, 0.95, 1.0),
    task: NeedleTask = NeedleTask(),
    n_seeds: int = 3,
) -> List[NeedleResult]:
    """Evaluate one backend across needle depths.

    Each depth hosts a single fact, so per-run accuracy is quantized to
    head granularity; averaging over ``n_seeds`` independent needles gives
    a stable per-depth estimate.
    """
    results: List[NeedleResult] = []
    for depth in depths:
        accs, bits = [], []
        for s in range(n_seeds):
            res = evaluate_needle(
                backend_factory,
                replace(task, depth=float(depth), seed=task.seed + 101 * s),
                model,
            )
            accs.append(res.accuracy)
            bits.append(res.effective_bits)
        results.append(
            NeedleResult(
                accuracy=float(np.mean(accs)),
                depth=float(depth),
                effective_bits=float(np.mean(bits)),
            )
        )
    return results

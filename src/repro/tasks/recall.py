"""Multi-hop associative recall through an attention backend.

Task construction
-----------------
A codebook of ``n_pairs`` (key, value) pairs is embedded in the prompt:
position ``j`` of the prefill carries ``key_j`` in the key stream and
``value_j`` in the value stream; remaining positions hold distractors,
padding the prompt to the configured length (matching the paper's CoT
prompt sizes).

The geometry is engineered so the task is solved ~100% by an exact cache,
making any accuracy drop attributable to cache compression:

* Content vectors ``a_i`` are unit vectors orthogonal to a dedicated
  "relevance" channel ``u``.  Stored keys are ``g ∘ (beta a_i + gamma u)``
  where ``g`` is the head's channel-outlier gain vector; queries are
  ``(beta a_i + gamma u) / g``.  Scores are then *independent of the
  gains*: match = ``beta^2 + gamma^2``, wrong pair = ``beta^2 c_ij +
  gamma^2``, distractor ≈ ``-gamma^2``.  The gains still shape the stored
  key tensor — exactly the channel-outlier structure of Figure 4 that a
  quantizer must survive.
* Distractor keys carry ``-gamma u``, so the softmax suppresses the
  hundreds of irrelevant positions the way trained attention does.
* Values are gain-shaped unit vectors (Phi3-like profiles put strong
  outlier gains here, which is what breaks token-wise value quantization).

Evaluation
----------
After ``backend.prefill`` compresses the prompt, ``n_hops`` decode steps
each query one pair (teacher-forced chain), append a distractor K/V (so
buffers/residual windows advance as in real generation), and score whether
each head's output is closest (cosine) to the expected value in the
codebook.  Accuracy is the mean over hops and heads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Tuple

import numpy as np

from repro.models.config import ModelConfig
from repro.models.outliers import channel_scales

__all__ = ["RecallTask", "RecallResult", "evaluate_backend", "build_streams"]


@dataclass(frozen=True)
class RecallTask:
    """Configuration of one synthetic recall benchmark.

    Attributes
    ----------
    name:
        Identifier (e.g. ``"gsm8k_like"``).
    prefill_len:
        Prompt length; matches the paper's average CoT prompt sizes.
    n_pairs:
        Number of stored (key, value) pairs; more pairs = smaller score
        margins = harder retrieval.
    n_hops:
        Decode steps (the paper generates 256 tokens).
    beta:
        Content sharpness: the match-vs-wrong score margin scales with
        ``beta^2 (1 - max_cross_correlation) / sqrt(d)``.
    gamma:
        Relevance sharpness: distractor positions sit ``2 gamma^2 /
        sqrt(d)`` below pair positions in score.
    distractor_norm:
        Norm of distractor content noise.
    value_coherence:
        Pairwise cosine similarity of codebook values (0 = independent).
        Clustered values shrink the nearest-neighbour decoding margin, so
        value-cache quantization noise — not key scores — becomes the
        failure mode; this is the regime where the paper's channel-wise
        value quantization separates from KIVI's token-wise scheme.
    seed:
        Base RNG seed (combined with the model seed for determinism).
    """

    name: str
    prefill_len: int = 900
    n_pairs: int = 48
    n_hops: int = 256
    beta: float = 5.0
    gamma: float = 4.0
    distractor_norm: float = 0.5
    value_coherence: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_pairs > self.prefill_len:
            raise ValueError("n_pairs cannot exceed prefill_len")
        if self.beta <= 0 or self.gamma < 0:
            raise ValueError("beta must be positive and gamma non-negative")
        if not 0.0 <= self.value_coherence < 1.0:
            raise ValueError("value_coherence must lie in [0, 1)")


@dataclass
class RecallResult:
    """Accuracy plus cache statistics from one evaluation run."""

    accuracy: float
    effective_bits: float
    compression_ratio: float


def _unit_rows(rng: np.random.Generator, n: int, d: int, zero_first: bool = False) -> np.ndarray:
    """Random unit rows; optionally orthogonal to the relevance channel."""
    x = rng.standard_normal((n, d))
    if zero_first:
        x[:, 0] = 0.0
    return x / np.linalg.norm(x, axis=1, keepdims=True)


def build_streams(
    task: RecallTask, model: ModelConfig, rng: np.random.Generator
) -> Tuple[np.ndarray, ...]:
    """Construct the prompt tensors and codebooks for one run.

    Returns ``(k_prompt, v_prompt, queries, values, gains_v)``:

    * ``k_prompt``/``v_prompt`` — ``(kv_heads, prefill_len, head_dim)``;
    * ``queries`` — ``(kv_heads, n_pairs, head_dim)`` gain-corrected query
      vectors, one per pair per head;
    * ``values`` — ``(n_pairs, head_dim)`` logical answer vectors;
    * ``gains_v`` — ``(kv_heads, head_dim)`` value gains (for decoding).
    """
    hkv, d = model.n_kv_heads, model.head_dim
    n, m = task.prefill_len, task.n_pairs
    prof = model.outliers
    beta, gamma = task.beta, task.gamma

    u = np.zeros(d)
    u[0] = 1.0
    content = _unit_rows(rng, m, d, zero_first=True)          # a_i ⊥ u
    values = _unit_rows(rng, m, d)
    if task.value_coherence > 0.0:
        # Cluster values around a shared center: pairwise cosine ~= coherence.
        center = _unit_rows(rng, 1, d)[0]
        values = np.sqrt(task.value_coherence) * center + np.sqrt(
            1.0 - task.value_coherence
        ) * values
        values /= np.linalg.norm(values, axis=1, keepdims=True)
    positions = rng.choice(n, size=m, replace=False)
    logical_keys = beta * content + gamma * u                  # (m, d)

    gains_k = np.stack(
        [
            channel_scales(d, prof.key_outlier_fraction, prof.key_outlier_gain, prof.jitter, rng)
            for _ in range(hkv)
        ]
    )
    gains_v = np.stack(
        [
            channel_scales(d, prof.value_outlier_fraction, prof.value_outlier_gain, prof.jitter, rng)
            for _ in range(hkv)
        ]
    )

    noise = _unit_rows(rng, hkv * n, d, zero_first=True).reshape(hkv, n, d)
    k_prompt = (noise * task.distractor_norm - gamma * u) * gains_k[:, None, :]
    v_prompt = (
        _unit_rows(rng, hkv * n, d).reshape(hkv, n, d)
        * task.distractor_norm
        * gains_v[:, None, :]
    )
    for h in range(hkv):
        k_prompt[h, positions, :] = logical_keys * gains_k[h]
        v_prompt[h, positions, :] = values * gains_v[h]

    queries = logical_keys[None, :, :] / gains_k[:, None, :]  # (hkv, m, d)
    return k_prompt, v_prompt, queries, values, gains_v


def evaluate_backend(
    backend_factory: Callable[[], object],
    task: RecallTask,
    model: ModelConfig,
) -> RecallResult:
    """Score one attention backend on one task under one model profile."""
    rng = np.random.default_rng(task.seed * 7919 + model.seed)
    hkv, hq, d = model.n_kv_heads, model.n_heads, model.head_dim
    g = hq // hkv
    k_prompt, v_prompt, queries, values, gains_v = build_streams(task, model, rng)

    # Prompt-position queries are irrelevant (output discarded), but the
    # backend must compress the full prompt through its real prefill path.
    q_prompt = np.repeat(
        rng.standard_normal((hkv, task.prefill_len, d)) * task.distractor_norm, g, axis=0
    )
    backend = backend_factory()
    _, state = backend.prefill(q_prompt, k_prompt, v_prompt, causal=True)

    # Decoding happens in *logical* space: the head's output is divided by
    # its value gains before the nearest-neighbour match (the constructed
    # model "knows" its own projections, as a trained unembedding would).
    # Channel-wise quantizers put noise proportional to each channel's own
    # range, which stays small after gain correction; token-wise quantizers
    # let outlier channels inflate every channel's noise — the Figure 10
    # mechanism this task is designed to surface.
    codebooks = np.broadcast_to(values[None, :, :], (hkv,) + values.shape)

    u = np.zeros(d)
    u[0] = 1.0
    chain = rng.permutation(task.n_pairs)
    idx = int(rng.integers(task.n_pairs))
    correct = 0
    total = 0
    for _hop in range(task.n_hops):
        q_t = np.repeat(queries[:, idx, :], g, axis=0)          # (hq, d)
        # Appended K/V look like distractors: low relevance, noise values.
        k_noise = rng.standard_normal((hkv, d))
        k_noise[:, 0] = 0.0
        k_noise /= np.maximum(np.linalg.norm(k_noise, axis=-1, keepdims=True), 1e-12)
        k_t = (k_noise * task.distractor_norm - task.gamma * u) * np.stack(
            [np.ones(d)] * hkv
        )
        v_t = rng.standard_normal((hkv, d)) * task.distractor_norm
        out = backend.decode_step(q_t, k_t, v_t, state)         # (hq, d)
        out_heads = out.reshape(hkv, g, d)
        for h in range(hkv):
            corrected = out_heads[h] / gains_v[h]               # logical space
            sims = codebooks[h] @ corrected.T                   # (m, g)
            picks = np.argmax(sims, axis=0)
            correct += int(np.sum(picks == idx))
            total += g
        idx = int(chain[idx])

    return RecallResult(
        accuracy=correct / total,
        effective_bits=float(state.effective_bits_per_value()),
        compression_ratio=float(state.compression_ratio()),
    )

"""Discrete-event continuous-batching engine.

One engine iteration mirrors a vLLM-style step:

1. **Admission** — waiting requests (FCFS) are admitted while their full
   prompt fits in the allocator and the running batch is below
   ``max_batch``.
2. **Prefill** — each newly admitted request's prompt is processed (whole,
   unchunked); its latency comes from the cost model and is serialized
   with the decode step (single-GPU).
3. **Decode** — every running request advances one token; the batched
   decode latency is evaluated at the running batch size and the batch's
   mean context.
4. **Growth/preemption** — each generated token may require a new cache
   block; on OOM the most-recently-admitted request is preempted
   (vLLM-style recompute: blocks freed, request requeued *at the front*
   of the waiting queue).

Latencies come from :func:`repro.perf.tp.tp_step_latency` (which reduces
to :func:`repro.perf.e2e.e2e_step_latency` at ``tp=1``), so the same
calibration behind Figures 6/7a drives the serving behaviour, and a
replica may be tensor-parallel over several GPUs.

The engine exposes two driving modes:

* :meth:`run` — closed-loop: hand it a whole workload; it drains arrivals
  against its own clock until every request finishes (the seed behaviour).
* :meth:`start` / :meth:`submit` / :meth:`step` — open-loop: an external
  driver (the cluster simulator, :mod:`repro.cluster`) owns arrival
  dispatch and advances the engine one iteration at a time.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence

from dataclasses import dataclass

from repro.perf.attention_costs import MethodSpec
from repro.perf.e2e import ModelGeometry
from repro.perf.gpu import A100_80GB, GPUSpec
from repro.perf.tp import replica_kv_budget, tp_step_latency
from repro.serving.allocator import PagedKVAllocator
from repro.serving.metrics import ServingMetrics, summarize
from repro.serving.request import (
    Request,
    RequestRecord,
    RequestStatus,
    TERMINAL_STATUSES,
)

__all__ = ["EngineConfig", "ServingEngine"]


@dataclass(frozen=True)
class EngineConfig:
    """Engine tunables."""

    max_batch: int = 256
    block_tokens: int = 64
    kv_budget_bytes: Optional[float] = None  # default: HBM - weights - reserve
    reserve_gb: float = 6.5
    #: Apply the paper-harness memory calibration (workspace factors +
    #: per-query-head replication); see PagedKVAllocator.
    paper_harness_memory: bool = True
    #: Chunked prefill: process at most this many prompt tokens per engine
    #: iteration (one request at a time, FCFS), letting decode of other
    #: requests interleave.  ``None`` = whole-prompt prefill (the classic
    #: stall-inducing policy).
    prefill_chunk: Optional[int] = None
    #: Tensor-parallel degree of this replica: weights/KV shard across
    #: ``tp`` GPUs (pooling their HBM) and step latencies include the
    #: per-layer all-reduce cost.
    tp: int = 1
    max_iterations: int = 2_000_000


class ServingEngine:
    """Simulate serving a workload with one attention method."""

    def __init__(
        self,
        model: ModelGeometry,
        method: MethodSpec,
        config: EngineConfig = EngineConfig(),
        gpu: GPUSpec = A100_80GB,
    ):
        if config.tp < 1:
            raise ValueError("tp must be >= 1")
        self.model = model
        self.method = method
        self.config = config
        self.gpu = gpu
        budget = config.kv_budget_bytes
        if budget is None:
            budget = replica_kv_budget(
                model, tp=config.tp, gpu=gpu, reserve_gb=config.reserve_gb
            )
        self.allocator = PagedKVAllocator(
            model, method, budget_bytes=budget, block_tokens=config.block_tokens,
            paper_harness=config.paper_harness_memory,
        )
        #: External slowdown factor on every step's latency (fault
        #: injection models stragglers this way).  1.0 = healthy; it is a
        #: hardware condition, not run state, so :meth:`start` keeps it.
        self.time_scale = 1.0
        self.start()

    # -- latency helpers ------------------------------------------------------
    def _prefill_latency(self, n_tokens: int, kv_len: Optional[int] = None) -> float:
        return tp_step_latency(
            self.method, self.model, 1, n_tokens,
            kv_len if kv_len is not None else n_tokens,
            prefill=True, tp=self.config.tp, gpu=self.gpu,
        )

    def _decode_latency(self, batch: int, mean_ctx: float) -> float:
        return tp_step_latency(
            self.method, self.model, batch, 1, max(int(mean_ctx), 1),
            prefill=False, tp=self.config.tp, gpu=self.gpu,
        )

    # -- open-loop driving API ------------------------------------------------
    def start(self) -> None:
        """Reset all per-run state (records, queues, clock)."""
        self.records: Dict[int, RequestRecord] = {}
        self.waiting: Deque[int] = deque()
        self.running: List[int] = []  # admission order (preemption pops the tail)
        self.clock = 0.0
        self.iterations = 0
        self.peak_running = 0
        for rid in list(getattr(self.allocator, "_allocs", {})):
            self.allocator.release(rid)

    def submit(self, request: Request) -> None:
        """Enqueue one request (FCFS tail).  The caller owns arrival timing."""
        self.submit_record(RequestRecord(request=request))

    def submit_record(self, record: RequestRecord) -> None:
        """Enqueue an existing record — the fault-recovery re-dispatch path,
        where retry/waste accounting must survive the move across replicas."""
        rid = record.request.request_id
        if rid in self.records:
            raise ValueError(f"duplicate request_id {rid}")
        self.records[rid] = record
        self.waiting.append(rid)

    def cancel(self, request_id: int) -> Optional[RequestRecord]:
        """Pull one unfinished request off the engine (timeout eviction).

        Frees its KV blocks and removes the record entirely; returns the
        record so the caller can retry it elsewhere, or ``None`` if the
        request is unknown or already terminal.
        """
        record = self.records.get(request_id)
        if record is None or record.status in TERMINAL_STATUSES:
            return None
        self.allocator.release(request_id)
        if request_id in self.running:
            self.running.remove(request_id)
        if request_id in self.waiting:
            self.waiting.remove(request_id)
        return self.records.pop(request_id)

    def evict_unfinished(self) -> List[RequestRecord]:
        """Crash: drop every admitted/queued request and its KV state.

        Records of finished requests stay (history survives a process
        restart in the operator's logs); everything in flight is returned,
        oldest admission first, for the caller to re-dispatch.
        """
        evicted: List[RequestRecord] = []
        for rid in list(self.running) + list(self.waiting):
            self.allocator.release(rid)
            evicted.append(self.records.pop(rid))
        self.running.clear()
        self.waiting.clear()
        return evicted

    @property
    def busy(self) -> bool:
        """Does the engine have admitted or queued work?"""
        return bool(self.running or self.waiting)

    def advance_to(self, t: float) -> None:
        """Idle-jump the clock forward (never backward)."""
        if not self.busy and self.clock < t:
            self.clock = t

    @property
    def queue_depth(self) -> int:
        return len(self.waiting)

    @property
    def outstanding_tokens(self) -> int:
        """Prompt + generation tokens not yet produced, over waiting+running."""
        total = 0
        for rid in self.waiting:
            rec = self.records[rid]
            total += rec.request.prompt_len + rec.request.gen_len
        for rid in self.running:
            rec = self.records[rid]
            total += (rec.request.prompt_len - rec.prefilled) + (
                rec.request.gen_len - rec.generated
            )
        return total

    @property
    def kv_pressure(self) -> float:
        """Resident KV utilization plus queued prompt demand, as a fraction
        of device blocks.  >1 means the queue alone oversubscribes HBM."""
        if self.allocator.total_blocks == 0:
            return float("inf")
        queued = sum(
            self.allocator.blocks_for(self.records[rid].request.prompt_len)
            for rid in self.waiting
        )
        return (self.allocator.used_blocks + queued) / self.allocator.total_blocks

    def step(self) -> float:
        """One engine iteration (admission, prefill, decode, growth).

        Returns the simulated seconds consumed; advances :attr:`clock`.
        """
        self.iterations += 1
        records, waiting, running = self.records, self.waiting, self.running

        # Admission: reserve the full prompt, enter PREFILLING.
        while waiting and len(running) < self.config.max_batch:
            rid = waiting[0]
            rec = records[rid]
            if not self.allocator.grow(rid, rec.request.prompt_len):
                break
            waiting.popleft()
            rec.status = RequestStatus.PREFILLING
            rec.admitted_at = self.clock
            running.append(rid)
        self.peak_running = max(self.peak_running, len(running))

        # Prefill work.  Unchunked: every PREFILLING request finishes
        # its whole prompt this iteration (serialized).  Chunked: only
        # the oldest PREFILLING request advances, by one chunk.
        step_time = 0.0
        prefilling = [
            rid for rid in running
            if records[rid].status is RequestStatus.PREFILLING
        ]
        chunk = self.config.prefill_chunk
        if chunk is None:
            for rid in prefilling:
                rec = records[rid]
                step_time += self._prefill_latency(rec.request.prompt_len)
                rec.prefilled = rec.request.prompt_len
                rec.status = RequestStatus.RUNNING
        elif prefilling:
            rid = prefilling[0]
            rec = records[rid]
            n = min(chunk, rec.request.prompt_len - rec.prefilled)
            step_time += self._prefill_latency(n, kv_len=rec.prefilled + n)
            rec.prefilled += n
            if rec.prefilled >= rec.request.prompt_len:
                rec.status = RequestStatus.RUNNING

        # Batched decode for fully-prefilled requests.
        decoding = [
            rid for rid in running
            if records[rid].status is RequestStatus.RUNNING
        ]
        if decoding:
            mean_ctx = sum(records[rid].context_len for rid in decoding) / len(decoding)
            step_time += self._decode_latency(len(decoding), mean_ctx)
        if step_time == 0.0 and not decoding:
            # Nothing processable (all prefilling under chunking with
            # zero-size chunks cannot happen; guard anyway).
            step_time = 1e-6
        step_time *= self.time_scale
        self.clock += step_time

        # Token bookkeeping + cache growth (with preemption on OOM).
        finished: List[int] = []
        for rid in list(decoding):
            if records[rid].status is not RequestStatus.RUNNING:
                continue  # preempted earlier in this loop
            rec = records[rid]
            rec.generated += 1
            if rec.first_token_at is None:
                rec.first_token_at = self.clock
            if rec.done:
                rec.status = RequestStatus.FINISHED
                rec.finished_at = self.clock
                self.allocator.release(rid)
                finished.append(rid)
                continue
            if not self.allocator.grow(rid, rec.context_len + 1):
                # OOM: preempt the most recent admission that isn't this
                # request; if none, preempt this one.
                victim = next(
                    (v for v in reversed(running) if v != rid and v not in finished),
                    rid,
                )
                self.allocator.release(victim)
                records[victim].reset_for_requeue()
                running.remove(victim)
                waiting.appendleft(victim)
                if victim != rid:
                    # Retry the growth for the current request.
                    if not self.allocator.grow(rid, rec.context_len + 1):
                        self.allocator.release(rid)
                        rec.reset_for_requeue()
                        running.remove(rid)
                        waiting.appendleft(rid)
        for rid in finished:
            running.remove(rid)
        return step_time

    def summarize(self) -> ServingMetrics:
        """Aggregate the current records into operator metrics."""
        return summarize(list(self.records.values()), makespan=self.clock)

    # -- closed-loop simulation ------------------------------------------------
    def run(self, requests: Sequence[Request]) -> ServingMetrics:
        self.start()
        arrivals = sorted(requests, key=lambda r: (r.arrival_time, r.request_id))
        for r in arrivals:
            # Records exist up-front so `total` counts never-admitted
            # requests; arrival into the FCFS queue happens on the clock.
            self.records[r.request_id] = RequestRecord(request=r)
        arrival_idx = 0

        for _ in range(self.config.max_iterations):
            # Drain arrivals into the FCFS queue.
            while (
                arrival_idx < len(arrivals)
                and arrivals[arrival_idx].arrival_time <= self.clock
            ):
                self.waiting.append(arrivals[arrival_idx].request_id)
                arrival_idx += 1

            # Idle: jump to the next arrival.
            if not self.busy:
                if arrival_idx >= len(arrivals):
                    break
                self.clock = arrivals[arrival_idx].arrival_time
                continue

            self.step()

            if not self.busy and arrival_idx >= len(arrivals):
                break
        else:
            raise RuntimeError("engine iteration limit exceeded (livelock?)")

        return self.summarize()

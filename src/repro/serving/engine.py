"""Discrete-event continuous-batching engine.

One engine iteration mirrors a vLLM-style step:

1. **Admission** — waiting requests (FCFS) are admitted while their full
   prompt fits in the allocator and the running batch is below
   ``max_batch``.
2. **Prefill** — each newly admitted request's prompt is processed (whole,
   unchunked); its latency comes from the cost model and is serialized
   with the decode step (single-GPU).
3. **Decode** — every running request advances one token; the batched
   decode latency is evaluated at the running batch size and the batch's
   mean context.
4. **Growth/preemption** — each generated token may require a new cache
   block; on OOM the most-recently-admitted request is preempted
   (vLLM-style recompute: blocks freed, request requeued *at the front*
   of the waiting queue).

Latencies come from :func:`repro.perf.tp.tp_step_latency` (which reduces
to :func:`repro.perf.e2e.e2e_step_latency` at ``tp=1``), so the same
calibration behind Figures 6/7a drives the serving behaviour, and a
replica may be tensor-parallel over several GPUs.

The engine exposes two driving modes:

* :meth:`run` — closed-loop: hand it a whole workload; it drains arrivals
  against its own clock until every request finishes (the seed behaviour).
  The arrival/defer offer timeline lives on a
  :class:`repro.sim.EventScheduler` — the same kernel the cluster
  simulator drives — so ordering, monotonic time, and per-event tracing
  are kernel properties, not engine code.
* :meth:`start` / :meth:`submit` / :meth:`step` — open-loop: an external
  driver (the cluster simulator, :mod:`repro.cluster`) owns arrival
  dispatch and advances the engine one iteration at a time.

In both modes, attaching a :class:`repro.sim.TraceSink` records every
request-lifecycle transition (submit/admit/first-token/finish, plus
sheds, preemptions, cancels, evictions) as typed trace marks, making any
run replayable and diffable (``python -m repro trace-diff``).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from dataclasses import dataclass

from repro.sim.kernel import EventScheduler
from repro.sim.trace import TraceSink
from repro.overload.admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionVerdict,
)
from repro.overload.brownout import BrownoutConfig, BrownoutController
from repro.perf.attention_costs import MethodSpec
from repro.prefix.pool import PrefixCacheConfig, PrefixPool
from repro.perf.e2e import ModelGeometry
from repro.perf.gpu import A100_80GB, GPUSpec
from repro.perf.tp import (
    decode_step_latency_batch,
    replica_kv_budget,
    tp_step_latency,
)
from repro.serving.allocator import PagedKVAllocator
from repro.serving.columns import RequestColumns
from repro.serving.metrics import SLO, ServingMetrics, summarize
from repro.serving.request import (
    _STATUS_CODES,
    Request,
    RequestRecord,
    RequestStatus,
    TERMINAL_STATUSES,
)

import numpy as np

#: Status codes used by the vectorized step bookkeeping (see
#: :mod:`repro.serving.columns`).
_PREFILLING_CODE = _STATUS_CODES[RequestStatus.PREFILLING]
_RUNNING_CODE = _STATUS_CODES[RequestStatus.RUNNING]
_FINISHED_CODE = _STATUS_CODES[RequestStatus.FINISHED]

__all__ = ["ENGINE_EVENT_ORDER", "EngineConfig", "ServingEngine"]

#: The engine's closed event taxonomy (see :mod:`repro.sim.kernel`).
#: ``offer`` is the only *scheduled* kind — request arrivals and
#: admission-DEFER re-offers on the closed-loop clock.  The rest are
#: lifecycle marks emitted as requests move through the engine; they are
#: registered here because the kernel refuses unregistered kinds — the
#: taxonomy, like same-instant ordering, is pinned in one place.
ENGINE_EVENT_ORDER = {
    "offer": 0,
    # lifecycle marks (not scheduled; order classes document the taxonomy)
    "submit": 10,
    "reject": 11,
    "defer": 12,
    "admit": 13,
    "shed": 14,
    "first_token": 15,
    "preempt": 16,
    "finish": 17,
    "cancel": 18,
    "evict": 19,
    # disaggregated prefill/decode handoff marks (see repro.migrate)
    "prefill_ready": 20,
    "migrate_out": 21,
    "local_decode": 22,
    # warm-restart re-entry (see repro.recover); append-only — existing
    # order-class values are frozen by the golden trace fixtures.
    "restore": 23,
}


@dataclass(frozen=True)
class EngineConfig:
    """Engine tunables."""

    max_batch: int = 256
    block_tokens: int = 64
    kv_budget_bytes: Optional[float] = None  # default: HBM - weights - reserve
    reserve_gb: float = 6.5
    #: Apply the paper-harness memory calibration (workspace factors +
    #: per-query-head replication); see PagedKVAllocator.
    paper_harness_memory: bool = True
    #: Chunked prefill: process at most this many prompt tokens per engine
    #: iteration (one request at a time, FCFS), letting decode of other
    #: requests interleave.  ``None`` = whole-prompt prefill (the classic
    #: stall-inducing policy).
    prefill_chunk: Optional[int] = None
    #: Tensor-parallel degree of this replica: weights/KV shard across
    #: ``tp`` GPUs (pooling their HBM) and step latencies include the
    #: per-layer all-reduce cost.
    tp: int = 1
    max_iterations: int = 2_000_000
    # -- overload protection (all off by default; see repro.overload) -------
    #: Per-request deadlines.  Setting an SLO makes ``summarize`` report
    #: goodput/attainment; it does not by itself shed anything.
    slo: Optional[SLO] = None
    #: Deadline-aware shedding: at dequeue time, a request whose *best
    #: case* TTFT (wait so far + its lone-on-the-machine prefill) already
    #: exceeds ``slo.ttft_s`` is shed before any decode token is wasted.
    #: Requires ``slo``.
    deadline_shed: bool = False
    #: High-water KV-pressure shedding: while ``kv_pressure`` exceeds this
    #: mark, queued requests are shed lowest-priority-first (ties: the
    #: youngest arrival goes first).  ``None`` disables.
    shed_high_water: Optional[float] = None
    #: Token-bucket + KV-pressure admission gate on ``submit``.
    admission: Optional[AdmissionConfig] = None
    #: Precision-brownout controller for new admissions.
    brownout: Optional[BrownoutConfig] = None
    #: Content-addressed prefix KV cache (see :mod:`repro.prefix`):
    #: requests whose prompts share a prefix reference the same blocks,
    #: skip the cached span's prefill, and copy-on-write on divergence.
    #: ``None`` keeps every block private (the pre-prefix behaviour).
    prefix: Optional[PrefixCacheConfig] = None
    #: Disaggregated prefill pool member: requests stop at prefill
    #: completion and park in :attr:`ServingEngine.migrating` (KV pinned)
    #: until the cluster ships them to a decode replica — except requests
    #: flagged ``local_decode``, which decode here as the degraded
    #: fallback when the migration budget runs out.
    prefill_only: bool = False

    def __post_init__(self) -> None:
        if self.deadline_shed and self.slo is None:
            raise ValueError("deadline_shed requires an slo")
        if self.shed_high_water is not None and self.shed_high_water <= 0:
            raise ValueError("shed_high_water must be positive")


class ServingEngine:
    """Simulate serving a workload with one attention method."""

    def __init__(
        self,
        model: ModelGeometry,
        method: MethodSpec,
        config: EngineConfig = EngineConfig(),
        gpu: GPUSpec = A100_80GB,
        trace: Optional[TraceSink] = None,
        trace_clock: str = "engine",
    ):
        if config.tp < 1:
            raise ValueError("tp must be >= 1")
        self.model = model
        self.method = method
        self.config = config
        self.gpu = gpu
        #: Optional structured trace: the engine's scheduler emits every
        #: offer schedule/fire plus request-lifecycle marks to this sink
        #: (shared with the cluster's scheduler when fleet-driven).
        self.trace = trace
        self.trace_clock = trace_clock
        budget = config.kv_budget_bytes
        if budget is None:
            budget = replica_kv_budget(
                model, tp=config.tp, gpu=gpu, reserve_gb=config.reserve_gb
            )
        self.allocator = PagedKVAllocator(
            model, method, budget_bytes=budget, block_tokens=config.block_tokens,
            paper_harness=config.paper_harness_memory,
        )
        #: External slowdown factor on every step's latency (fault
        #: injection models stragglers this way).  1.0 = healthy; it is a
        #: hardware condition, not run state, so :meth:`start` keeps it.
        self.time_scale = 1.0
        # Pure-function caches (see _step_latency); they key only on
        # quantities the cost model sees, so they survive start() resets.
        self._latency_cache: Dict[tuple, float] = {}
        self._method_cache: Dict[float, MethodSpec] = {}
        self.start()

    # -- latency helpers ------------------------------------------------------
    # ``tp_step_latency`` is a pure function of (method, model, shape, tp,
    # gpu) and the engine's model/tp/gpu never change, so per-engine
    # memoization on (kv_bits, shape) returns the *same float object* the
    # cost model produced — bit-identical by construction.  Serving steps
    # revisit the same (batch, context) points constantly (the measured
    # hit rate on the cluster scenario is ~60%), which makes this the
    # single largest win on the simulator's hot path.
    _LATENCY_CACHE_MAX = 200_000

    def _method_at(self, kv_bits: Optional[float]) -> MethodSpec:
        """The cost-model spec at a (possibly browned-out) KV width."""
        if kv_bits is None or kv_bits == self.method.kv_bits:
            return self.method
        spec = self._method_cache.get(kv_bits)
        if spec is None:
            spec = self.method.with_bits(kv_bits)
            self._method_cache[kv_bits] = spec
        return spec

    def _step_latency(
        self, kv_bits: Optional[float], batch: int, q_len: int, kv_len: int,
        prefill: bool,
    ) -> float:
        key = (kv_bits, batch, q_len, kv_len, prefill)
        cached = self._latency_cache.get(key)
        if cached is None:
            if len(self._latency_cache) >= self._LATENCY_CACHE_MAX:
                self._latency_cache.clear()
            cached = tp_step_latency(
                self._method_at(kv_bits), self.model, batch, q_len, kv_len,
                prefill=prefill, tp=self.config.tp, gpu=self.gpu,
            )
            self._latency_cache[key] = cached
        return cached

    def _prefill_latency(
        self,
        n_tokens: int,
        kv_len: Optional[int] = None,
        kv_bits: Optional[float] = None,
    ) -> float:
        return self._step_latency(
            kv_bits, 1, n_tokens,
            kv_len if kv_len is not None else n_tokens, True,
        )

    def _decode_latency(
        self, batch: int, mean_ctx: float, kv_bits: Optional[float] = None
    ) -> float:
        return self._step_latency(kv_bits, batch, 1, max(int(mean_ctx), 1), False)

    def _bytes_scale(self, record: RequestRecord) -> float:
        """Allocator scale for a record admitted below full precision.

        Applies only to the record's *private* blocks — shared prefix
        blocks are stored at the max width across their sharers and are
        accounted by the pool at full method width.
        """
        if record.kv_bits is None:
            return 1.0
        return record.kv_bits / self.method.kv_bits

    def _grow(self, rid: int, tokens: int, bytes_scale: float = 1.0) -> bool:
        """Allocator growth that may reclaim cold shared blocks first:
        a private allocation never OOMs while the prefix pool holds
        unreferenced warm cache it could give back."""
        if self.prefix_pool is not None:
            need = self.allocator.blocks_needed(rid, tokens, bytes_scale)
            if need > self.allocator.free_blocks:
                self.prefix_pool.evict_to_free(need)
        return self.allocator.grow(rid, tokens, bytes_scale)

    def _release_request(self, rid: int) -> None:
        """Free everything a request holds: private blocks and prefix refs."""
        self.allocator.release(rid)
        if self.prefix_pool is not None:
            self.prefix_pool.release(rid)

    def prefix_warmth(self, request: Request) -> int:
        """Prompt tokens of ``request`` already resident in this engine's
        prefix pool (0 without a pool) — the router's locality score."""
        if self.prefix_pool is None or request.prefix_id is None:
            return 0
        return self.prefix_pool.probe(RequestRecord(request=request))

    # -- open-loop driving API ------------------------------------------------
    def start(self) -> None:
        """Reset all per-run state (records, queues, clock, controllers)."""
        #: The engine's event kernel.  Closed-loop :meth:`run` schedules
        #: request offers on it; in both modes it carries the lifecycle
        #: marks that make a run traceable/diffable.
        self.events = EventScheduler(
            ENGINE_EVENT_ORDER, clock=self.trace_clock, trace=self.trace
        )
        self.records: Dict[int, RequestRecord] = {}
        self.waiting: Deque[int] = deque()
        self.running: List[int] = []  # admission order (preemption pops the tail)
        #: Prefill-complete requests whose KV stays pinned here while the
        #: cluster migrates them to a decode replica (prefill_only mode).
        self.migrating: Dict[int, RequestRecord] = {}
        #: Newly prefill-complete request ids the cluster has not yet
        #: collected via :meth:`take_handoffs` (FIFO).
        self.handoff_ready: List[int] = []
        self.clock = 0.0
        self.iterations = 0
        self.peak_running = 0
        #: Tokens lost to ``cancel`` of in-flight requests whose records
        #: left the engine (the record's own waste fields travel with it).
        self.cancelled_wasted_prefill_tokens = 0
        self.cancelled_wasted_decode_tokens = 0
        #: Deadline/high-water shed tallies for operator visibility.
        self.deadline_sheds = 0
        self.high_water_sheds = 0
        self.admission: Optional[AdmissionController] = (
            AdmissionController(self.config.admission)
            if self.config.admission is not None
            else None
        )
        self.brownout: Optional[BrownoutController] = (
            BrownoutController(self.config.brownout)
            if self.config.brownout is not None
            else None
        )
        #: Array-of-struct bookkeeping for resident records: the hot
        #: lifecycle fields of every record in ``records`` live in these
        #: columns between submit (bind) and departure (unbind).
        self.columns = RequestColumns()
        self.allocator.release_all()
        if getattr(self.allocator, "shared_blocks", 0):
            self.allocator.release_shared_block(self.allocator.shared_blocks)
        self.prefix_pool: Optional[PrefixPool] = (
            PrefixPool(self.allocator, self.config.prefix)
            if self.config.prefix is not None
            else None
        )

    def submit(self, request: Request) -> AdmissionVerdict:
        """Offer one request (FCFS tail).  The caller owns arrival timing.

        Returns the admission verdict.  Without overload protection
        configured this is always ``ACCEPT`` (the PR-1 behaviour).  On
        ``REJECT`` the record is kept with status ``REJECTED``; on
        ``DEFER`` the record is *not* registered — the caller re-offers
        it after :meth:`defer_retry_s`.
        """
        return self.submit_record(RequestRecord(request=request))

    @property
    def defer_retry_s(self) -> float:
        """How long a deferred submission should wait before re-offering."""
        if self.config.admission is not None:
            return self.config.admission.defer_retry_s
        return 1.0

    def _admission_decision(
        self, record: RequestRecord
    ) -> Tuple[AdmissionVerdict, str]:
        cap = None
        if self.brownout is not None:
            if not self.brownout.admits_new_work:
                return AdmissionVerdict.REJECT, "shed_only"
            cap = self.brownout.request_token_cap
        if cap is not None and record.request.total_tokens > cap:
            max_defers = (
                self.config.admission.max_defers
                if self.config.admission is not None
                else 4
            )
            if record.defers >= max_defers:
                return AdmissionVerdict.REJECT, "brownout_cap"
            record.defers += 1
            return AdmissionVerdict.DEFER, "brownout_cap"
        if self.admission is not None:
            return self.admission.decide(
                record, self.clock, self.queue_depth, self.kv_pressure
            )
        return AdmissionVerdict.ACCEPT, "ok"

    def _mark(self, kind: str, label: str) -> None:
        """Lifecycle trace mark at the engine clock (no-op without a sink)."""
        if self.trace is not None:
            self.events.mark(kind, label, time=self.clock)

    def submit_record(self, record: RequestRecord) -> AdmissionVerdict:
        """Offer an existing record — also the fault-recovery re-dispatch
        path, where retry/waste accounting must survive the move across
        replicas.  Returns the admission verdict (see :meth:`submit`)."""
        rid = record.request.request_id
        if rid in self.records:
            raise ValueError(f"duplicate request_id {rid}")
        verdict, reason = self._admission_decision(record)
        if verdict is AdmissionVerdict.REJECT:
            record.mark_rejected(self.clock, reason)
            self.records[rid] = record
            self._mark("reject", f"r{rid}:{reason}")
            return verdict
        if verdict is AdmissionVerdict.DEFER:
            self._mark("defer", f"r{rid}:{reason}")
            return verdict
        if record.kv_bits is None:
            record.kv_bits = (
                self.brownout.bits_for(self.method)
                if self.brownout is not None
                else self.method.kv_bits
            )
        self.records[rid] = record
        self.waiting.append(rid)
        self.columns.bind(record)
        self._mark("submit", f"r{rid}")
        return verdict

    def cancel(self, request_id: int) -> Optional[RequestRecord]:
        """Pull one unfinished request off the engine (timeout eviction).

        Frees its KV blocks and removes the record entirely; returns the
        record so the caller can retry it elsewhere, or ``None`` if the
        request is unknown or already terminal.  Tokens already processed
        are charged to the engine's cancelled-waste counters — the record
        leaves, but the work it burned here stays on this engine's books.
        """
        record = self.records.get(request_id)
        if record is None or record.status in TERMINAL_STATUSES:
            return None
        self.cancelled_wasted_prefill_tokens += record.prefilled
        self.cancelled_wasted_decode_tokens += record.generated
        self._release_request(request_id)
        if request_id in self.running:
            self.running.remove(request_id)
        if request_id in self.waiting:
            self.waiting.remove(request_id)
        self.migrating.pop(request_id, None)
        if request_id in self.handoff_ready:
            self.handoff_ready.remove(request_id)
        self.columns.unbind(record)
        self._mark("cancel", f"r{request_id}")
        return self.records.pop(request_id)

    def evict_unfinished(self) -> List[RequestRecord]:
        """Crash: drop every admitted/queued request and its KV state.

        Records of finished requests stay (history survives a process
        restart in the operator's logs); everything in flight is returned,
        oldest admission first, for the caller to re-dispatch.  Processed
        tokens are charged to the cancelled-waste counters exactly like
        :meth:`cancel` — MIGRATING requests included — so an engine's own
        books never lose the work a departing record burned here.
        """
        evicted: List[RequestRecord] = []
        for rid in list(self.running) + list(self.waiting) + list(self.migrating):
            record = self.records.pop(rid)
            self.cancelled_wasted_prefill_tokens += record.prefilled
            self.cancelled_wasted_decode_tokens += record.generated
            self._release_request(rid)
            self.columns.unbind(record)
            evicted.append(record)
            self._mark("evict", f"r{rid}")
        self.running.clear()
        self.waiting.clear()
        self.migrating.clear()
        self.handoff_ready.clear()
        return evicted

    @property
    def busy(self) -> bool:
        """Does the engine have admitted or queued work?

        MIGRATING requests are deliberately excluded: their next
        transition is a *cluster* event (the transfer arriving), not an
        engine step, so an engine holding only pinned handoffs is idle.
        """
        return bool(self.running or self.waiting)

    # -- disaggregated handoff API (prefill_only mode; see repro.migrate) -----
    def take_handoffs(self) -> List[RequestRecord]:
        """Drain newly prefill-complete requests for the cluster to ship.

        The records stay registered here — KV pinned, status MIGRATING —
        until :meth:`release_migrated` (handoff accepted or abandoned) or
        :meth:`resume_local_decode` resolves them.
        """
        ready = [self.records[rid] for rid in self.handoff_ready]
        self.handoff_ready.clear()
        return ready

    def release_migrated(self, request_id: int) -> RequestRecord:
        """Unpin a migrated-out request: free its KV, drop its record.

        Called when the destination accepted the handoff (the request
        lives there now) or terminally refused it (the cluster owns the
        record either way).
        """
        rec = self.migrating.pop(request_id)
        self._release_request(request_id)
        self.columns.unbind(rec)
        self._mark("migrate_out", f"r{request_id}")
        return self.records.pop(request_id)

    def resume_local_decode(self, request_id: int) -> RequestRecord:
        """Degraded fallback: decode a pinned request on this replica.

        The migration budget ran out (or no decode replica exists); the
        prefilled KV is already resident, so the request re-enters the
        running batch directly — slower than a decode-pool replica, but
        never lost.
        """
        rec = self.migrating.pop(request_id)
        rec.local_decode = True
        rec.status = RequestStatus.RUNNING
        self.running.append(request_id)
        self._mark("local_decode", f"r{request_id}")
        return rec

    # -- warm-restart re-entry (see repro.recover) ----------------------------
    def restore_record(self, record: RequestRecord) -> bool:
        """Re-enter a warm-restarted request at its checkpointed progress.

        Differs from :meth:`submit_record` on purpose: admission control
        is bypassed (the work was admitted before the crash — re-gating
        could terminally reject already-paid-for work) and the KV for the
        checkpointed context is reserved up front, mirroring what loading
        the persisted cache blocks would occupy.  ``record.prefilled``
        below the prompt length *is* the recompute range — the engine's
        prefill path charges only ``[prefilled, prompt_len)``.

        Returns True when the request resumed warm.  False means the
        reservation failed (restored contexts lose their prefix sharing)
        or nothing was checkpointed: the request re-enters cold at the
        queue tail with its progress charged as waste — degraded, never
        lost.
        """
        rid = record.request.request_id
        if rid in self.records:
            raise ValueError(f"duplicate request_id {rid}")
        if record.kv_bits is None:
            record.kv_bits = (
                self.brownout.bits_for(self.method)
                if self.brownout is not None
                else self.method.kv_bits
            )
        self.records[rid] = record
        self.columns.bind(record)
        ctx = record.prefilled + record.generated
        prompt_len = record.request.prompt_len
        if ctx > 0 and self._grow(
            rid, max(prompt_len, ctx), self._bytes_scale(record)
        ):
            record.admitted_at = self.clock
            if record.prefilled >= prompt_len:
                if self.config.prefill_only and not record.local_decode:
                    # Prefill-pool member: the checkpoint caught this
                    # request between prefill and handoff — re-park it
                    # for the cluster to ship.
                    record.status = RequestStatus.MIGRATING
                    record.prefill_done_at = self.clock
                    self.migrating[rid] = record
                    self.handoff_ready.append(rid)
                else:
                    record.status = RequestStatus.RUNNING
                    self.running.append(rid)
            else:
                record.status = RequestStatus.PREFILLING
                self.running.append(rid)
            self.peak_running = max(self.peak_running, len(self.running))
            self._mark("restore", f"r{rid}")
            return True
        # Cold re-entry: charge whatever the checkpoint claimed to save.
        record.wasted_prefill_tokens += record.prefilled
        record.wasted_decode_tokens += record.generated
        record.prefilled = 0
        record.generated = 0
        record.first_token_at = None
        record.status = RequestStatus.WAITING
        self.waiting.append(rid)
        self._mark("restore", f"r{rid}:cold")
        return False

    @property
    def migration_blocked(self) -> bool:
        """Is admission wedged behind KV pinned by in-flight handoffs?

        True when nothing is running, handoffs hold blocks, and the head
        of the queue cannot allocate its prompt.  The engine cannot make
        progress by stepping (each step would burn the idle guard's
        1e-6 s); only a cluster event (the handoff resolving) frees it,
        so the fleet driver idle-jumps this replica instead of spinning.
        """
        if self.running or not self.migrating or not self.waiting:
            return False
        rid = self.waiting[0]
        rec = self.records[rid]
        need = self.allocator.blocks_needed(
            rid, rec.request.prompt_len, self._bytes_scale(rec)
        )
        return need > self.allocator.free_blocks

    def advance_to(self, t: float) -> None:
        """Idle-jump the clock forward (never backward)."""
        if not self.busy and self.clock < t:
            self.clock = t

    @property
    def queue_depth(self) -> int:
        return len(self.waiting)

    @property
    def outstanding_tokens(self) -> int:
        """Prompt + generation tokens not yet produced, over waiting+running."""
        total = 0
        for rid in self.waiting:
            rec = self.records[rid]
            total += rec.request.prompt_len + rec.request.gen_len
        for rid in self.running:
            rec = self.records[rid]
            total += (rec.request.prompt_len - rec.prefilled) + (
                rec.request.gen_len - rec.generated
            )
        return total

    @property
    def kv_pressure(self) -> float:
        """Resident KV utilization plus queued prompt demand, as a fraction
        of device blocks.  >1 means the queue alone oversubscribes HBM.
        Queued demand honours each record's admitted KV width."""
        if self.allocator.total_blocks == 0:
            return float("inf")
        queued = 0
        for rid in self.waiting:
            rec = self.records[rid]
            queued += self.allocator.blocks_for(
                rec.request.prompt_len - self._probe_warmth(rec),
                self._bytes_scale(rec),
            )
        return (self.allocator.used_blocks + queued) / self.allocator.total_blocks

    @property
    def queue_delay(self) -> float:
        """Age of the oldest waiting request (the brownout delay signal)."""
        if not self.waiting:
            return 0.0
        return max(
            0.0, self.clock - self.records[self.waiting[0]].request.arrival_time
        )

    @property
    def brownout_level(self):
        """Current :class:`~repro.overload.brownout.BrownoutLevel` (or None)."""
        return self.brownout.level if self.brownout is not None else None

    def _probe_warmth(self, rec: RequestRecord) -> int:
        """Read-only prefix-cache warmth for a record (0 without a pool)."""
        if self.prefix_pool is None or rec.request.prefix_id is None:
            return 0
        return self.prefix_pool.probe(rec)

    def _shed(self, rid: int, reason: str) -> None:
        """Terminal queue shed: keep the record, free everything else."""
        rec = self.records[rid]
        self._release_request(rid)
        self.waiting.remove(rid)
        rec.mark_shed(self.clock, reason)
        self.columns.unbind(rec)
        self._mark("shed", f"r{rid}:{reason}")

    def _shed_doomed(self, rid: int) -> bool:
        """Deadline-aware shed check at dequeue time.

        Uses a *lower bound* on the request's TTFT: the wait so far plus
        its prefill as if it were alone on the machine.  If even that
        best case misses the deadline, no schedule can save it — shed it
        before a single decode token is wasted.
        """
        if not self.config.deadline_shed:
            return False
        rec = self.records[rid]
        waited = self.clock - rec.request.arrival_time
        # The lower bound honours prefix-cache warmth: cached prompt spans
        # cost no prefill, so a warm request is harder to doom.
        cold = rec.request.prompt_len - self._probe_warmth(rec)
        best_prefill = (
            self._prefill_latency(
                cold, kv_len=rec.request.prompt_len, kv_bits=rec.kv_bits
            )
            * self.time_scale
            if cold > 0
            else 0.0
        )
        if waited + best_prefill <= self.config.slo.ttft_s:
            return False
        self._shed(rid, "deadline")
        self.deadline_sheds += 1
        return True

    def _shed_high_water(self) -> None:
        """Pressure-relief shedding: while KV pressure sits above the
        high-water mark, drop queued requests lowest-priority-first
        (ties: youngest arrival, then highest rid) — only waiting
        requests are victimized, so zero decode tokens are wasted."""
        high_water = self.config.shed_high_water
        if high_water is None:
            return
        while self.waiting and self.kv_pressure > high_water:
            victim = min(
                self.waiting,
                key=lambda rid: (
                    self.records[rid].request.priority,
                    -self.records[rid].request.arrival_time,
                    -rid,
                ),
            )
            self._shed(victim, "high_water")
            self.high_water_sheds += 1

    def step(self) -> float:
        """One engine iteration (shedding, admission, prefill, decode,
        growth).

        Returns the simulated seconds consumed; advances :attr:`clock`.
        """
        self.iterations += 1
        records, waiting, running = self.records, self.waiting, self.running

        # The warm prefix cache yields capacity back exactly when the
        # admission gate starts pushing back on the same signal.
        if self.prefix_pool is not None:
            self.prefix_pool.evict_under_pressure()

        # Overload controllers read the pre-iteration saturation signals.
        if self.brownout is not None:
            self.brownout.observe(self.clock, self.queue_delay, self.kv_pressure)
        self._shed_high_water()

        # Admission: reference shared prefix blocks, reserve the private
        # remainder, enter PREFILLING.  Requests that provably cannot
        # meet their TTFT deadline are shed here, before any capacity is
        # reserved for them.
        while waiting and len(running) < self.config.max_batch:
            rid = waiting[0]
            rec = records[rid]
            if self._shed_doomed(rid):
                continue
            acq = None
            if self.prefix_pool is not None and rec.request.prefix_id is not None:
                acq = self.prefix_pool.acquire(rec, self.clock)
            shared = acq.shared_tokens if acq is not None else 0
            if not self._grow(
                rid, rec.request.prompt_len - shared, self._bytes_scale(rec)
            ):
                if acq is not None:
                    self.prefix_pool.release(rid)
                break
            waiting.popleft()
            rec.status = RequestStatus.PREFILLING
            rec.admitted_at = self.clock
            if acq is not None:
                rec.shared_tokens = acq.shared_tokens
                rec.shared_tail_tokens = acq.tail_tokens
                rec.prefilled = max(rec.prefilled, acq.hit_tokens)
                rec.prefix_hit_tokens += acq.hit_tokens
                rec.prefix_lookup_tokens += rec.request.prompt_len
            if rec.prefilled >= rec.request.prompt_len:
                # Nothing left to prefill — a full prefix-cache hit, or a
                # migrated-in handoff whose KV arrived intact: straight
                # to decode.
                rec.status = RequestStatus.RUNNING
            running.append(rid)
            self._mark("admit", f"r{rid}")
        self.peak_running = max(self.peak_running, len(running))

        # From here on ``running`` membership is stable until the
        # prefill-handoff move below, so one slot gather serves both the
        # prefill and decode status scans (statuses change in between —
        # the *codes* are re-gathered per scan, the slots are not).
        cols = self.columns
        run_slots = (
            np.fromiter(
                (records[rid]._slot for rid in running),
                dtype=np.int64,
                count=len(running),
            )
            if running
            else None
        )

        # Prefill work.  Unchunked: every PREFILLING request finishes
        # its whole prompt this iteration (serialized).  Chunked: only
        # the oldest PREFILLING request advances, by one chunk.
        step_time = 0.0
        prefilling = (
            [
                running[i]
                for i in np.nonzero(cols.status[run_slots] == _PREFILLING_CODE)[0]
            ]
            if run_slots is not None
            else []
        )
        chunk = self.config.prefill_chunk
        if chunk is None:
            for rid in prefilling:
                rec = records[rid]
                # Cache-hit prompt spans (rec.prefilled head start) cost
                # no prefill compute; attention still spans the full
                # prompt context for the tokens that do run.
                step_time += self._prefill_latency(
                    rec.request.prompt_len - rec.prefilled,
                    kv_len=rec.request.prompt_len,
                    kv_bits=rec.kv_bits,
                )
                rec.prefilled = rec.request.prompt_len
                rec.status = RequestStatus.RUNNING
        elif prefilling:
            rid = prefilling[0]
            rec = records[rid]
            n = min(chunk, rec.request.prompt_len - rec.prefilled)
            step_time += self._prefill_latency(
                n, kv_len=rec.prefilled + n, kv_bits=rec.kv_bits
            )
            rec.prefilled += n
            if rec.prefilled >= rec.request.prompt_len:
                rec.status = RequestStatus.RUNNING

        # Disaggregated prefill pool: prefill-complete requests park for
        # migration instead of decoding here.  Local-decode fallbacks are
        # the exception — their migration budget already ran out.
        if self.config.prefill_only:
            for rid in running:
                rec = records[rid]
                if rec.status is RequestStatus.RUNNING and not rec.local_decode:
                    rec.status = RequestStatus.MIGRATING

        # Batched decode for fully-prefilled requests.  The batch's cost
        # uses its mean admitted KV width — browned-out requests read
        # fewer cache bytes per step, so a degraded batch decodes faster.
        if run_slots is not None:
            dec_mask = cols.status[run_slots] == _RUNNING_CODE
            dec_pos = np.nonzero(dec_mask)[0]
            dec_slots = run_slots[dec_pos]
            n_dec = len(dec_pos)
        else:
            dec_slots = dec_pos = None
            n_dec = 0
        if n_dec:
            dec_gen = cols.generated[dec_slots]
            # Context lengths are integers, so the batched sum is the
            # per-record sum exactly; kv widths are floats, where only a
            # left-to-right fold (accumulate, not pairwise np.sum)
            # reproduces the scalar loop bit-for-bit.
            mean_ctx = int((cols.prompt_len[dec_slots] + dec_gen).sum()) / n_dec
            bits_col = cols.kv_bits[dec_slots]
            if np.isnan(bits_col).any():
                mean_bits = None
            else:
                mean_bits = float(np.add.accumulate(bits_col)[-1]) / n_dec
            step_time += self._decode_latency(n_dec, mean_ctx, mean_bits)
        if step_time == 0.0 and not n_dec:
            # Nothing processable (all prefilling under chunking with
            # zero-size chunks cannot happen; guard anyway).
            step_time = 1e-6
        step_time *= self.time_scale
        self.clock += step_time

        # Hand prefill-complete requests to the cluster once their
        # prefill cost has been charged to the clock: KV stays pinned in
        # ``migrating``; the cluster collects them via take_handoffs().
        if self.config.prefill_only:
            for rid in [
                r for r in running if records[r].status is RequestStatus.MIGRATING
            ]:
                rec = records[rid]
                rec.prefill_done_at = self.clock
                running.remove(rid)
                self.migrating[rid] = rec
                self.handoff_ready.append(rid)
                self._mark("prefill_ready", f"r{rid}")

        # Token bookkeeping + cache growth (with preemption on OOM).
        if n_dec:
            decoding = [running[i] for i in dec_pos]
        else:
            decoding = []

        # Fast path: without a prefix pool there are no COW/shared-block
        # transitions, so the whole batch's bookkeeping is four column
        # scatters plus one allocator commit.  Any OOM along the way (or
        # a request with no allocation to grow) falls back to the scalar
        # loop below, which carries the preemption policy.
        if n_dec and self.prefix_pool is None and not self.config.prefill_only:
            alloc_index = self.allocator._index
            alloc_slots = np.fromiter(
                (alloc_index.get(rid, -1) for rid in decoding),
                dtype=np.int64,
                count=n_dec,
            )
            if alloc_slots.min() >= 0:
                gen_new = dec_gen + 1
                done = gen_new >= cols.gen_len[dec_slots]
                # Growth reserves the *next* token's block; shared prefix
                # tokens (always 0 without a pool, but kept for exactness
                # with records migrated in) never count against private
                # blocks.
                tokens = (
                    cols.prompt_len[dec_slots]
                    + gen_new
                    + 1
                    - cols.shared_tokens[dec_slots]
                )
                done_pos = np.nonzero(done)[0]
                release_ids = [decoding[i] for i in done_pos]
                if self.allocator.decode_commit(
                    alloc_slots, tokens, done, release_ids
                ):
                    cols.generated[dec_slots] = gen_new
                    first_new = ~cols.first_flag[dec_slots]
                    cols.first_flag[dec_slots] = True
                    cols.first_at[dec_slots[first_new]] = self.clock
                    # Rare transitions (first token, finish) keep their
                    # scalar in-batch-order walk so trace marks appear in
                    # exactly the order the scalar loop emitted them.
                    finished: List[int] = []
                    for i in np.nonzero(first_new | done)[0].tolist():
                        rid = decoding[i]
                        if first_new[i]:
                            self._mark("first_token", f"r{rid}")
                        if done[i]:
                            rec = records[rid]
                            cols.status[dec_slots[i]] = _FINISHED_CODE
                            rec.finished_at = self.clock
                            finished.append(rid)
                            self._mark("finish", f"r{rid}")
                            self.columns.unbind(rec)
                    for rid in finished:
                        running.remove(rid)
                    return step_time

        finished = []
        for rid in list(decoding):
            if records[rid].status is not RequestStatus.RUNNING:
                continue  # preempted earlier in this loop
            rec = records[rid]
            rec.generated += 1
            if rec.first_token_at is None:
                rec.first_token_at = self.clock
                self._mark("first_token", f"r{rid}")
            if rec.shared_tail_tokens and self.prefix_pool is not None:
                # First decode write lands inside the shared tail block:
                # copy-on-write — drop the shared reference and fold those
                # tokens into the private allocation grown below.
                self.prefix_pool.cow_tail(rid)
                rec.shared_tokens -= rec.shared_tail_tokens
                rec.shared_tail_tokens = 0
                rec.cow_copies += 1
            if rec.done:
                rec.status = RequestStatus.FINISHED
                rec.finished_at = self.clock
                self._release_request(rid)
                finished.append(rid)
                self._mark("finish", f"r{rid}")
                self.columns.unbind(rec)
                continue
            # Private growth covers only the non-shared context span.
            if not self._grow(
                rid, rec.context_len + 1 - rec.shared_tokens, self._bytes_scale(rec)
            ):
                # OOM: preempt the most recent admission that isn't this
                # request; if none, preempt this one.
                victim = next(
                    (v for v in reversed(running) if v != rid and v not in finished),
                    rid,
                )
                self._release_request(victim)
                records[victim].reset_for_requeue()
                running.remove(victim)
                waiting.appendleft(victim)
                self._mark("preempt", f"r{victim}")
                if victim != rid:
                    # Retry the growth for the current request.
                    if not self._grow(
                        rid,
                        rec.context_len + 1 - rec.shared_tokens,
                        self._bytes_scale(rec),
                    ):
                        self._release_request(rid)
                        rec.reset_for_requeue()
                        running.remove(rid)
                        waiting.appendleft(rid)
                        self._mark("preempt", f"r{rid}")
        for rid in finished:
            running.remove(rid)
        return step_time

    def decode_steps(self, t_limit: Optional[float] = None) -> int:
        """Advance many *homogeneous* decode iterations in one pass.

        A homogeneous stretch is one where :meth:`step` would do nothing
        but batched decode over a fixed set of RUNNING requests: no
        waiting queue (so no admission/shed attempts), no prefilling, no
        overload controllers, no prefix pool, and every request past its
        first token (so no lifecycle transitions, hence no trace marks).
        Under those conditions each step is fully determined by the
        batch's context trajectory, so the per-step cost-model calls
        collapse into one vectorized
        :func:`~repro.perf.tp.decode_step_latency_batch` evaluation and
        the per-step allocator growth into one :meth:`bulk_grow` — with
        clock, generated counts, and block state bit-identical to calling
        :meth:`step` that many times (the clock is folded left-to-right
        via ``np.add.accumulate``, the same float additions ``step``
        performs).

        Advances until (whichever comes first) the clock reaches
        ``t_limit`` (the last step may overshoot it, exactly like the
        scalar loop whose condition is checked *before* each step), or
        the next step would finish a request (the scalar path owns all
        transitions).  Returns the number of steps taken; 0 means "no
        homogeneous stretch here — take a scalar :meth:`step`".
        """
        cfg = self.config
        if (
            not self.running
            or self.waiting
            or self.prefix_pool is not None
            or self.brownout is not None
            or cfg.prefill_only
            or cfg.shed_high_water is not None
        ):
            return 0
        records, running = self.records, self.running
        cols = self.columns
        n = len(running)
        run_slots = np.fromiter(
            (records[rid]._slot for rid in running), dtype=np.int64, count=n
        )
        if not (
            (cols.status[run_slots] == _RUNNING_CODE).all()
            and cols.first_flag[run_slots].all()
        ):
            return 0
        gen = cols.generated[run_slots]
        # Stop one short of the earliest finish: the finishing step has
        # transitions (marks, releases) the scalar loop must own.  The
        # whole window's latencies are computed even when ``t_limit``
        # cuts the stretch short — the batch cost model's price is
        # per-call overhead, not array length, so one oversized call
        # beats chunked re-entry from the caller's advance loop.
        k_cap = int((cols.gen_len[run_slots] - gen).min()) - 1
        if k_cap < 1:
            return 0
        alloc_index = self.allocator._index
        alloc_slots = np.fromiter(
            (alloc_index.get(rid, -1) for rid in running), dtype=np.int64, count=n
        )
        if alloc_slots.min() < 0:
            return 0

        # Latency of each candidate step from the context trajectory
        # (the batch mean context advances by exactly one per step).
        ctx_sums = int((cols.prompt_len[run_slots] + gen).sum()) + n * np.arange(
            k_cap, dtype=np.int64
        )
        means = ctx_sums / n
        bits_col = cols.kv_bits[run_slots]
        if np.isnan(bits_col).any():
            spec = self.method
        else:
            spec = self._method_at(float(np.add.accumulate(bits_col)[-1]) / n)
        kv_lens = np.maximum(np.trunc(means), 1.0).astype(np.int64)
        step_times = (
            decode_step_latency_batch(
                spec, self.model, n, kv_lens, tp=self.config.tp, gpu=self.gpu
            )
            * self.time_scale
        )
        clocks = np.add.accumulate(np.concatenate(([self.clock], step_times)))
        if t_limit is None:
            k = k_cap
        else:
            # Steps run while the *pre-step* clock is below the limit.
            k = int(np.searchsorted(clocks[:k_cap], t_limit, side="left"))
        if k < 1:
            return 0
        if not self.allocator.bulk_grow(
            alloc_slots,
            cols.prompt_len[run_slots] + (gen + k) + 1 - cols.shared_tokens[run_slots],
        ):
            return 0
        cols.generated[run_slots] = gen + k
        self.clock = float(clocks[k])
        self.iterations += k
        return k

    def summarize(self) -> ServingMetrics:
        """Aggregate the current records into operator metrics."""
        return summarize(
            list(self.records.values()),
            makespan=self.clock,
            slo=self.config.slo,
            base_kv_bits=self.method.kv_bits,
            extra_wasted_prefill=self.cancelled_wasted_prefill_tokens,
            extra_wasted_decode=self.cancelled_wasted_decode_tokens,
            shared_blocks=(
                self.prefix_pool.peak_resident_blocks
                if self.prefix_pool is not None
                else 0
            ),
        )

    # -- closed-loop simulation ------------------------------------------------
    def run(self, requests: Sequence[Request]) -> ServingMetrics:
        self.start()
        # The event kernel carries the offer timeline.  Arrivals seed it;
        # DEFER verdicts re-enter at ``clock + defer_retry_s`` until
        # accepted or their defer budget turns into a terminal REJECT, so
        # every request ends up in ``records`` exactly once.  Engine
        # steps are atomic and may overshoot an offer's time, hence
        # ``pop_due`` (fire once the clock has passed it) rather than
        # ``pop``.
        events = self.events
        for r in sorted(requests, key=lambda r: (r.arrival_time, r.request_id)):
            events.schedule(
                r.arrival_time, "offer", RequestRecord(request=r),
                label=f"r{r.request_id}",
            )

        for _ in range(self.config.max_iterations):
            # Drain due offers into the FCFS queue (or terminal REJECT).
            for event in events.pop_due_batch(self.clock):
                record = event.payload
                if self.submit_record(record) is AdmissionVerdict.DEFER:
                    events.schedule(
                        self.clock + self.defer_retry_s, "offer", record,
                        label=f"r{record.request.request_id}",
                    )

            # Idle: jump to the next offer.
            if not self.busy:
                if events.empty:
                    break
                self.clock = events.next_time
                continue

            # Homogeneous decode stretches advance in bulk; the next
            # offer bounds the jump so due offers still land between
            # exactly the same steps as the scalar loop.
            if self.decode_steps(events.next_time) == 0:
                self.step()

            if not self.busy and events.empty:
                break
        else:
            raise RuntimeError("engine iteration limit exceeded (livelock?)")

        return self.summarize()

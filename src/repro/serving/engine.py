"""Discrete-event continuous-batching engine.

One engine iteration mirrors a vLLM-style step:

1. **Admission** — waiting requests (FCFS) are admitted while their full
   prompt fits in the allocator and the running batch is below
   ``max_batch``.
2. **Prefill** — each newly admitted request's prompt is processed (whole,
   unchunked); its latency comes from the cost model and is serialized
   with the decode step (single-GPU).
3. **Decode** — every running request advances one token; the batched
   decode latency is evaluated at the running batch size and the batch's
   mean context.
4. **Growth/preemption** — each generated token may require a new cache
   block; on OOM the most-recently-admitted request is preempted
   (vLLM-style recompute: blocks freed, request requeued).

Latencies come from :func:`repro.perf.e2e.e2e_step_latency`, so the same
calibration behind Figures 6/7a drives the serving behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.perf.attention_costs import MethodSpec
from repro.perf.e2e import ModelGeometry, e2e_step_latency
from repro.perf.gpu import A100_80GB, GPUSpec
from repro.serving.allocator import PagedKVAllocator
from repro.serving.metrics import ServingMetrics, summarize
from repro.serving.request import Request, RequestRecord, RequestStatus

__all__ = ["EngineConfig", "ServingEngine"]


@dataclass(frozen=True)
class EngineConfig:
    """Engine tunables."""

    max_batch: int = 256
    block_tokens: int = 64
    kv_budget_bytes: Optional[float] = None  # default: HBM - weights - reserve
    reserve_gb: float = 6.5
    #: Apply the paper-harness memory calibration (workspace factors +
    #: per-query-head replication); see PagedKVAllocator.
    paper_harness_memory: bool = True
    #: Chunked prefill: process at most this many prompt tokens per engine
    #: iteration (one request at a time, FCFS), letting decode of other
    #: requests interleave.  ``None`` = whole-prompt prefill (the classic
    #: stall-inducing policy).
    prefill_chunk: Optional[int] = None
    max_iterations: int = 2_000_000


class ServingEngine:
    """Simulate serving a workload with one attention method."""

    def __init__(
        self,
        model: ModelGeometry,
        method: MethodSpec,
        config: EngineConfig = EngineConfig(),
        gpu: GPUSpec = A100_80GB,
    ):
        self.model = model
        self.method = method
        self.config = config
        self.gpu = gpu
        budget = config.kv_budget_bytes
        if budget is None:
            budget = gpu.hbm_capacity_gb * 1e9 - model.weight_bytes - config.reserve_gb * 1e9
        self.allocator = PagedKVAllocator(
            model, method, budget_bytes=budget, block_tokens=config.block_tokens,
            paper_harness=config.paper_harness_memory,
        )

    # -- latency helpers ------------------------------------------------------
    def _prefill_latency(self, n_tokens: int, kv_len: Optional[int] = None) -> float:
        return e2e_step_latency(
            self.method, self.model, 1, n_tokens,
            kv_len if kv_len is not None else n_tokens,
            prefill=True, gpu=self.gpu,
        )

    def _decode_latency(self, batch: int, mean_ctx: float) -> float:
        return e2e_step_latency(
            self.method, self.model, batch, 1, max(int(mean_ctx), 1), prefill=False, gpu=self.gpu
        )

    # -- simulation ------------------------------------------------------------
    def run(self, requests: Sequence[Request]) -> ServingMetrics:
        records: Dict[int, RequestRecord] = {
            r.request_id: RequestRecord(request=r) for r in requests
        }
        arrivals = sorted(requests, key=lambda r: (r.arrival_time, r.request_id))
        arrival_idx = 0
        waiting: List[int] = []
        running: List[int] = []  # admission order (preemption pops the tail)
        clock = 0.0

        for _ in range(self.config.max_iterations):
            # Drain arrivals into the FCFS queue.
            while (
                arrival_idx < len(arrivals)
                and arrivals[arrival_idx].arrival_time <= clock
            ):
                waiting.append(arrivals[arrival_idx].request_id)
                arrival_idx += 1

            # Idle: jump to the next arrival.
            if not running and not waiting:
                if arrival_idx >= len(arrivals):
                    break
                clock = arrivals[arrival_idx].arrival_time
                continue

            # Admission: reserve the full prompt, enter PREFILLING.
            while waiting and len(running) < self.config.max_batch:
                rid = waiting[0]
                rec = records[rid]
                if not self.allocator.grow(rid, rec.request.prompt_len):
                    break
                waiting.pop(0)
                rec.status = RequestStatus.PREFILLING
                rec.admitted_at = clock
                running.append(rid)

            # Prefill work.  Unchunked: every PREFILLING request finishes
            # its whole prompt this iteration (serialized).  Chunked: only
            # the oldest PREFILLING request advances, by one chunk.
            step_time = 0.0
            prefilling = [
                rid for rid in running
                if records[rid].status is RequestStatus.PREFILLING
            ]
            chunk = self.config.prefill_chunk
            if chunk is None:
                for rid in prefilling:
                    rec = records[rid]
                    step_time += self._prefill_latency(rec.request.prompt_len)
                    rec.prefilled = rec.request.prompt_len
                    rec.status = RequestStatus.RUNNING
            elif prefilling:
                rid = prefilling[0]
                rec = records[rid]
                n = min(chunk, rec.request.prompt_len - rec.prefilled)
                step_time += self._prefill_latency(n, kv_len=rec.prefilled + n)
                rec.prefilled += n
                if rec.prefilled >= rec.request.prompt_len:
                    rec.status = RequestStatus.RUNNING

            # Batched decode for fully-prefilled requests.
            decoding = [
                rid for rid in running
                if records[rid].status is RequestStatus.RUNNING
            ]
            if decoding:
                mean_ctx = sum(records[rid].context_len for rid in decoding) / len(decoding)
                step_time += self._decode_latency(len(decoding), mean_ctx)
            if step_time == 0.0 and not decoding:
                # Nothing processable (all prefilling under chunking with
                # zero-size chunks cannot happen; guard anyway).
                step_time = 1e-6
            clock += step_time

            # Token bookkeeping + cache growth (with preemption on OOM).
            finished: List[int] = []
            for rid in list(decoding):
                if records[rid].status is not RequestStatus.RUNNING:
                    continue  # preempted earlier in this loop
                rec = records[rid]
                rec.generated += 1
                if rec.first_token_at is None:
                    rec.first_token_at = clock
                if rec.done:
                    rec.status = RequestStatus.FINISHED
                    rec.finished_at = clock
                    self.allocator.release(rid)
                    finished.append(rid)
                    continue
                if not self.allocator.grow(rid, rec.context_len + 1):
                    # OOM: preempt the most recent admission that isn't this
                    # request; if none, preempt this one.
                    victim = next(
                        (v for v in reversed(running) if v != rid and v not in finished),
                        rid,
                    )
                    self.allocator.release(victim)
                    records[victim].reset_for_requeue()
                    running.remove(victim)
                    waiting.insert(0, victim)
                    if victim != rid:
                        # Retry the growth for the current request.
                        if not self.allocator.grow(rid, rec.context_len + 1):
                            self.allocator.release(rid)
                            rec.reset_for_requeue()
                            running.remove(rid)
                            waiting.insert(0, rid)
            for rid in finished:
                running.remove(rid)

            if (
                not running
                and not waiting
                and arrival_idx >= len(arrivals)
            ):
                break
        else:
            raise RuntimeError("engine iteration limit exceeded (livelock?)")

        return summarize(list(records.values()), makespan=clock)

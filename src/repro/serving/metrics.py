"""Serving summary statistics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.serving.request import RequestRecord, RequestStatus

__all__ = ["ServingMetrics", "summarize"]


def _percentile(values: Sequence[float], q: float) -> float:
    return float(np.percentile(np.asarray(values), q)) if values else float("nan")


@dataclass(frozen=True)
class ServingMetrics:
    """What an operator reads off a serving run."""

    completed: int
    total: int
    makespan: float
    output_tokens: int
    throughput_tokens_per_s: float
    mean_ttft: float
    p95_ttft: float
    mean_tpot: float
    p95_tpot: float
    preemptions: int

    def as_dict(self) -> dict:
        return {
            "completed": self.completed,
            "total": self.total,
            "makespan_s": self.makespan,
            "throughput_tok_s": self.throughput_tokens_per_s,
            "mean_ttft_s": self.mean_ttft,
            "p95_ttft_s": self.p95_ttft,
            "mean_tpot_s": self.mean_tpot,
            "p95_tpot_s": self.p95_tpot,
            "preemptions": self.preemptions,
        }


def summarize(records: List[RequestRecord], makespan: float) -> ServingMetrics:
    """Aggregate per-request records into operator metrics."""
    finished = [r for r in records if r.status is RequestStatus.FINISHED]
    ttfts = [r.ttft for r in finished if r.ttft is not None]
    tpots = [r.tpot for r in finished if r.tpot is not None]
    output_tokens = sum(r.request.gen_len for r in finished)
    return ServingMetrics(
        completed=len(finished),
        total=len(records),
        makespan=makespan,
        output_tokens=output_tokens,
        throughput_tokens_per_s=output_tokens / makespan if makespan > 0 else 0.0,
        mean_ttft=float(np.mean(ttfts)) if ttfts else float("nan"),
        p95_ttft=_percentile(ttfts, 95),
        mean_tpot=float(np.mean(tpots)) if tpots else float("nan"),
        p95_tpot=_percentile(tpots, 95),
        preemptions=sum(r.preemptions for r in records),
    )

"""Array-of-struct request bookkeeping for the serving engine.

The engine's decode inner loop touches a handful of per-request fields
(status, generated count, first-token flag, admitted KV width) for every
running request on every step.  As plain dataclass attributes those
reads/writes are pointer-chasing Python; as preallocated NumPy columns
keyed by a recycled slot index they are single gather/scatter ops over
the whole batch.

:class:`RequestColumns` owns the columns and the free-list; a bound
:class:`~repro.serving.request.RequestRecord` stores ``(_cols, _slot)``
and its hot properties read/write the columns directly (see
``request.py``), so there is exactly one authoritative copy of each
field at any time — no mirror to drift out of sync.  Unbinding copies
the column values back into plain per-record storage, which is how
records survive leaving an engine (handoff, eviction, terminal states
read later by metrics).
"""

from __future__ import annotations

import numpy as np

from repro.serving.request import (
    _STATUS_CODES,
    RequestRecord,
)

__all__ = ["RequestColumns"]

_INIT_SLOTS = 64


class RequestColumns:
    """Preallocated per-request state columns with free-list recycling."""

    def __init__(self, capacity: int = _INIT_SLOTS):
        self.capacity = capacity
        #: :class:`RequestStatus` codes (index into ``request._STATUS_MEMBERS``).
        self.status = np.zeros(capacity, dtype=np.int8)
        self.generated = np.zeros(capacity, dtype=np.int64)
        self.prefilled = np.zeros(capacity, dtype=np.int64)
        #: ``first_token_at`` split into a validity flag plus a value so the
        #: "has the first token landed yet?" test is a plain boolean column.
        self.first_flag = np.zeros(capacity, dtype=bool)
        self.first_at = np.zeros(capacity, dtype=np.float64)
        #: Admitted KV width; NaN encodes ``None`` (not yet assigned).
        self.kv_bits = np.full(capacity, np.nan, dtype=np.float64)
        self.shared_tokens = np.zeros(capacity, dtype=np.int64)
        self.shared_tail_tokens = np.zeros(capacity, dtype=np.int64)
        # Immutable per-request geometry, copied at bind time so the
        # decode step can compute ``done`` / ``context_len`` without
        # touching the Request objects.
        self.prompt_len = np.zeros(capacity, dtype=np.int64)
        self.gen_len = np.zeros(capacity, dtype=np.int64)
        self._free = list(range(capacity - 1, -1, -1))

    def _grow(self) -> None:
        old = self.capacity
        self.capacity = old * 2
        for name in (
            "status", "generated", "prefilled", "first_flag", "first_at",
            "kv_bits", "shared_tokens", "shared_tail_tokens",
            "prompt_len", "gen_len",
        ):
            col = getattr(self, name)
            fresh = np.empty(self.capacity, dtype=col.dtype)
            fresh[:old] = col
            setattr(self, name, fresh)
        self._free.extend(range(self.capacity - 1, old - 1, -1))

    def bind(self, record: RequestRecord) -> int:
        """Move ``record``'s hot fields into a column slot.

        The record's properties switch to column mode, so every later
        read/write anywhere in the codebase hits the columns.  A record
        already bound elsewhere (a handoff arriving from another engine)
        is unbound from its old columns first — authority moves, values
        travel with it.
        """
        if record._cols is not None:
            record._cols.unbind(record)
        if not self._free:
            self._grow()
        slot = self._free.pop()
        # Read the plain values *before* flipping the record to column
        # mode; afterwards the properties resolve into the columns.
        status = record.status
        self.generated[slot] = record.generated
        self.prefilled[slot] = record.prefilled
        first = record.first_token_at
        self.first_flag[slot] = first is not None
        self.first_at[slot] = first if first is not None else 0.0
        bits = record.kv_bits
        self.kv_bits[slot] = np.nan if bits is None else bits
        self.shared_tokens[slot] = record.shared_tokens
        self.shared_tail_tokens[slot] = record.shared_tail_tokens
        self.prompt_len[slot] = record.request.prompt_len
        self.gen_len[slot] = record.request.gen_len
        self.status[slot] = _STATUS_CODES[status]
        record._cols = self
        record._slot = slot
        return slot

    def unbind(self, record: RequestRecord) -> None:
        """Copy column values back to plain storage and recycle the slot.

        No-op when the record is not bound to *these* columns (it may
        already live in another engine's columns).
        """
        if record._cols is not self:
            return
        slot = record._slot
        # Capture through the properties (still column-mode), then flip.
        status = record.status
        generated = record.generated
        prefilled = record.prefilled
        first = record.first_token_at
        bits = record.kv_bits
        shared = record.shared_tokens
        shared_tail = record.shared_tail_tokens
        record._cols = None
        record._slot = -1
        record.status = status
        record.generated = generated
        record.prefilled = prefilled
        record.first_token_at = first
        record.kv_bits = bits
        record.shared_tokens = shared
        record.shared_tail_tokens = shared_tail
        self.first_flag[slot] = False
        self.kv_bits[slot] = np.nan
        self._free.append(slot)

"""Workload generators."""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.serving.request import Request

__all__ = ["poisson_workload", "closed_batch_workload"]


def poisson_workload(
    n_requests: int,
    arrival_rate: float,
    prompt_range: Tuple[int, int] = (512, 1536),
    gen_range: Tuple[int, int] = (64, 256),
    rng: Optional[np.random.Generator] = None,
    n_sessions: Optional[int] = None,
) -> List[Request]:
    """Poisson arrivals with uniform prompt/generation lengths.

    ``arrival_rate`` is requests per second; inter-arrival times are
    exponential.  Lengths are inclusive-uniform over the given ranges —
    the defaults bracket the paper's chat-style workload (1k prompts, 125
    generated tokens).  ``n_sessions`` assigns each request a uniform
    session id in ``[0, n_sessions)`` for affinity routing; drawn after
    the length streams so existing seeded workloads are unchanged.
    """
    if n_requests <= 0:
        raise ValueError("n_requests must be positive")
    if arrival_rate <= 0:
        raise ValueError("arrival_rate must be positive")
    rng = rng if rng is not None else np.random.default_rng(0)
    arrivals = np.cumsum(rng.exponential(1.0 / arrival_rate, size=n_requests))
    prompts = rng.integers(prompt_range[0], prompt_range[1] + 1, size=n_requests)
    gens = rng.integers(gen_range[0], gen_range[1] + 1, size=n_requests)
    if n_sessions is not None:
        if n_sessions <= 0:
            raise ValueError("n_sessions must be positive")
        sessions = rng.integers(0, n_sessions, size=n_requests)
    else:
        sessions = np.zeros(n_requests, dtype=int)
    return [
        Request(
            request_id=i,
            arrival_time=float(arrivals[i]),
            prompt_len=int(prompts[i]),
            gen_len=int(gens[i]),
            session_id=int(sessions[i]),
        )
        for i in range(n_requests)
    ]


def closed_batch_workload(
    n_requests: int, prompt_len: int = 1024, gen_len: int = 125
) -> List[Request]:
    """All requests present at t=0 — the paper's Figure 7a setting."""
    return [
        Request(request_id=i, arrival_time=0.0, prompt_len=prompt_len, gen_len=gen_len)
        for i in range(n_requests)
    ]

"""Workload generators."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.serving.request import Request

__all__ = [
    "poisson_workload",
    "closed_batch_workload",
    "ramp_workload",
    "zipf_shared_workload",
]


def _zipf_probs(n: int, s: float) -> np.ndarray:
    """Normalized Zipf(s) pmf over ranks ``1..n`` (finite support)."""
    ranks = np.arange(1, n + 1, dtype=np.float64)
    p = ranks ** -s
    return p / p.sum()


def poisson_workload(
    n_requests: int,
    arrival_rate: float,
    prompt_range: Tuple[int, int] = (512, 1536),
    gen_range: Tuple[int, int] = (64, 256),
    rng: Optional[np.random.Generator] = None,
    n_sessions: Optional[int] = None,
) -> List[Request]:
    """Poisson arrivals with uniform prompt/generation lengths.

    ``arrival_rate`` is requests per second; inter-arrival times are
    exponential.  Lengths are inclusive-uniform over the given ranges —
    the defaults bracket the paper's chat-style workload (1k prompts, 125
    generated tokens).  ``n_sessions`` assigns each request a uniform
    session id in ``[0, n_sessions)`` for affinity routing; drawn after
    the length streams so existing seeded workloads are unchanged.
    """
    if n_requests <= 0:
        raise ValueError("n_requests must be positive")
    if arrival_rate <= 0:
        raise ValueError("arrival_rate must be positive")
    rng = rng if rng is not None else np.random.default_rng(0)
    arrivals = np.cumsum(rng.exponential(1.0 / arrival_rate, size=n_requests))
    prompts = rng.integers(prompt_range[0], prompt_range[1] + 1, size=n_requests)
    gens = rng.integers(gen_range[0], gen_range[1] + 1, size=n_requests)
    if n_sessions is not None:
        if n_sessions <= 0:
            raise ValueError("n_sessions must be positive")
        sessions = rng.integers(0, n_sessions, size=n_requests)
    else:
        sessions = np.zeros(n_requests, dtype=int)
    return [
        Request(
            request_id=i,
            arrival_time=float(arrivals[i]),
            prompt_len=int(prompts[i]),
            gen_len=int(gens[i]),
            session_id=int(sessions[i]),
        )
        for i in range(n_requests)
    ]


def ramp_workload(
    phases: Sequence[Tuple[float, float]],
    prompt_range: Tuple[int, int] = (512, 1536),
    gen_range: Tuple[int, int] = (64, 256),
    rng: Optional[np.random.Generator] = None,
) -> List[Request]:
    """Piecewise-Poisson arrivals: ``phases`` is ``[(rate, duration_s), ...]``.

    The overload-protection workload shape: a calm phase, a surge that
    drives the brownout controller through its levels, and a calm tail
    long enough to watch it recover to NORMAL.  Phase boundaries are on
    the arrival clock; lengths are drawn per request exactly as in
    :func:`poisson_workload`, and the whole stream is a deterministic
    function of ``rng``'s seed.
    """
    if not phases:
        raise ValueError("phases must be non-empty")
    for rate, duration in phases:
        if rate <= 0 or duration <= 0:
            raise ValueError("phase rates and durations must be positive")
    rng = rng if rng is not None else np.random.default_rng(0)
    arrivals: List[float] = []
    t0 = 0.0
    for rate, duration in phases:
        t = t0
        while True:
            t += float(rng.exponential(1.0 / rate))
            if t >= t0 + duration:
                break
            arrivals.append(t)
        t0 += duration
    n = len(arrivals)
    if n == 0:
        raise ValueError("phases produced no arrivals; lengthen them")
    prompts = rng.integers(prompt_range[0], prompt_range[1] + 1, size=n)
    gens = rng.integers(gen_range[0], gen_range[1] + 1, size=n)
    return [
        Request(
            request_id=i,
            arrival_time=arrivals[i],
            prompt_len=int(prompts[i]),
            gen_len=int(gens[i]),
        )
        for i in range(n)
    ]


def zipf_shared_workload(
    n_requests: int,
    arrival_rate: float,
    n_tenants: int = 1000,
    zipf_s: float = 1.4,
    prompts_per_tenant: int = 4,
    prefix_len_range: Tuple[int, int] = (256, 1024),
    suffix_len_range: Tuple[int, int] = (0, 256),
    gen_range: Tuple[int, int] = (64, 256),
    rng: Optional[np.random.Generator] = None,
) -> List[Request]:
    """Multi-tenant Poisson arrivals with Zipf-shared prompt prefixes.

    The fleet-scale sharing shape: tenants are drawn from a finite
    Zipf(``zipf_s``) popularity distribution (a few tenants dominate,
    the tail is long), and each tenant owns ``prompts_per_tenant``
    distinct system prompts, themselves Zipf-ranked within the tenant.
    A request's prompt is one such shared prefix — whose length is a
    fixed, per-prefix property drawn once from ``prefix_len_range``
    (content identity: the same prefix always has the same tokens) —
    followed by a private suffix from ``suffix_len_range``.  A zero
    suffix models an exact replay (identical prompt), which is what
    exercises shared-tail copy-on-write at the first decode token.

    Raising ``zipf_s`` concentrates traffic on fewer prefixes, so the
    achievable prefix-cache hit ratio rises monotonically with it — a
    property the workload tests pin.  Tenant ids double as session ids
    for affinity routing.  The whole stream is a deterministic function
    of ``rng``'s seed.
    """
    if n_requests <= 0:
        raise ValueError("n_requests must be positive")
    if arrival_rate <= 0:
        raise ValueError("arrival_rate must be positive")
    if n_tenants <= 0 or prompts_per_tenant <= 0:
        raise ValueError("n_tenants and prompts_per_tenant must be positive")
    if zipf_s <= 0:
        raise ValueError("zipf_s must be positive")
    if prefix_len_range[0] < 1:
        raise ValueError("prefix lengths must be >= 1")
    if suffix_len_range[0] < 0:
        raise ValueError("suffix lengths must be >= 0")
    rng = rng if rng is not None else np.random.default_rng(0)
    arrivals = np.cumsum(rng.exponential(1.0 / arrival_rate, size=n_requests))
    tenants = rng.choice(
        n_tenants, size=n_requests, p=_zipf_probs(n_tenants, zipf_s)
    )
    prompts = rng.choice(
        prompts_per_tenant,
        size=n_requests,
        p=_zipf_probs(prompts_per_tenant, zipf_s),
    )
    # Per-prefix content properties are drawn once, up front, so a
    # prefix's length never depends on when it is first requested.
    prefix_lens = rng.integers(
        prefix_len_range[0],
        prefix_len_range[1] + 1,
        size=n_tenants * prompts_per_tenant,
    )
    suffixes = rng.integers(
        suffix_len_range[0], suffix_len_range[1] + 1, size=n_requests
    )
    gens = rng.integers(gen_range[0], gen_range[1] + 1, size=n_requests)
    requests: List[Request] = []
    for i in range(n_requests):
        tenant = int(tenants[i])
        prefix_id = tenant * prompts_per_tenant + int(prompts[i])
        shared = int(prefix_lens[prefix_id])
        requests.append(
            Request(
                request_id=i,
                arrival_time=float(arrivals[i]),
                prompt_len=shared + int(suffixes[i]),
                gen_len=int(gens[i]),
                session_id=tenant,
                tenant_id=tenant,
                prefix_id=prefix_id,
                shared_prefix_len=shared,
            )
        )
    return requests


def closed_batch_workload(
    n_requests: int, prompt_len: int = 1024, gen_len: int = 125
) -> List[Request]:
    """All requests present at t=0 — the paper's Figure 7a setting."""
    return [
        Request(request_id=i, arrival_time=0.0, prompt_len=prompt_len, gen_len=gen_len)
        for i in range(n_requests)
    ]

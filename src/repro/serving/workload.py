"""Workload generators."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.serving.request import Request

__all__ = ["poisson_workload", "closed_batch_workload", "ramp_workload"]


def poisson_workload(
    n_requests: int,
    arrival_rate: float,
    prompt_range: Tuple[int, int] = (512, 1536),
    gen_range: Tuple[int, int] = (64, 256),
    rng: Optional[np.random.Generator] = None,
    n_sessions: Optional[int] = None,
) -> List[Request]:
    """Poisson arrivals with uniform prompt/generation lengths.

    ``arrival_rate`` is requests per second; inter-arrival times are
    exponential.  Lengths are inclusive-uniform over the given ranges —
    the defaults bracket the paper's chat-style workload (1k prompts, 125
    generated tokens).  ``n_sessions`` assigns each request a uniform
    session id in ``[0, n_sessions)`` for affinity routing; drawn after
    the length streams so existing seeded workloads are unchanged.
    """
    if n_requests <= 0:
        raise ValueError("n_requests must be positive")
    if arrival_rate <= 0:
        raise ValueError("arrival_rate must be positive")
    rng = rng if rng is not None else np.random.default_rng(0)
    arrivals = np.cumsum(rng.exponential(1.0 / arrival_rate, size=n_requests))
    prompts = rng.integers(prompt_range[0], prompt_range[1] + 1, size=n_requests)
    gens = rng.integers(gen_range[0], gen_range[1] + 1, size=n_requests)
    if n_sessions is not None:
        if n_sessions <= 0:
            raise ValueError("n_sessions must be positive")
        sessions = rng.integers(0, n_sessions, size=n_requests)
    else:
        sessions = np.zeros(n_requests, dtype=int)
    return [
        Request(
            request_id=i,
            arrival_time=float(arrivals[i]),
            prompt_len=int(prompts[i]),
            gen_len=int(gens[i]),
            session_id=int(sessions[i]),
        )
        for i in range(n_requests)
    ]


def ramp_workload(
    phases: Sequence[Tuple[float, float]],
    prompt_range: Tuple[int, int] = (512, 1536),
    gen_range: Tuple[int, int] = (64, 256),
    rng: Optional[np.random.Generator] = None,
) -> List[Request]:
    """Piecewise-Poisson arrivals: ``phases`` is ``[(rate, duration_s), ...]``.

    The overload-protection workload shape: a calm phase, a surge that
    drives the brownout controller through its levels, and a calm tail
    long enough to watch it recover to NORMAL.  Phase boundaries are on
    the arrival clock; lengths are drawn per request exactly as in
    :func:`poisson_workload`, and the whole stream is a deterministic
    function of ``rng``'s seed.
    """
    if not phases:
        raise ValueError("phases must be non-empty")
    for rate, duration in phases:
        if rate <= 0 or duration <= 0:
            raise ValueError("phase rates and durations must be positive")
    rng = rng if rng is not None else np.random.default_rng(0)
    arrivals: List[float] = []
    t0 = 0.0
    for rate, duration in phases:
        t = t0
        while True:
            t += float(rng.exponential(1.0 / rate))
            if t >= t0 + duration:
                break
            arrivals.append(t)
        t0 += duration
    n = len(arrivals)
    if n == 0:
        raise ValueError("phases produced no arrivals; lengthen them")
    prompts = rng.integers(prompt_range[0], prompt_range[1] + 1, size=n)
    gens = rng.integers(gen_range[0], gen_range[1] + 1, size=n)
    return [
        Request(
            request_id=i,
            arrival_time=arrivals[i],
            prompt_len=int(prompts[i]),
            gen_len=int(gens[i]),
        )
        for i in range(n)
    ]


def closed_batch_workload(
    n_requests: int, prompt_len: int = 1024, gen_len: int = 125
) -> List[Request]:
    """All requests present at t=0 — the paper's Figure 7a setting."""
    return [
        Request(request_id=i, arrival_time=0.0, prompt_len=prompt_len, gen_len=gen_len)
        for i in range(n_requests)
    ]

"""Continuous-batching serving simulator.

The paper's title claim is *high-throughput LLM serving*; Figure 7a
measures it as closed-batch throughput.  This subpackage extends that to
the setting a serving operator actually runs: requests arrive over time,
a continuous-batching engine admits them against a paged KV allocator,
and per-request latency (TTFT, TPOT) matters alongside throughput.

* :mod:`repro.serving.request` — request and per-request lifecycle record.
* :mod:`repro.serving.allocator` — paged KV allocator (vLLM-style block
  tables) whose per-token byte cost comes from the attention method's
  effective KV bits.
* :mod:`repro.serving.engine` — the discrete-event engine: admission,
  chunk-free prefill, batched decode, OOM-driven preemption; step
  latencies come from the :mod:`repro.perf` cost model (tensor-parallel
  replicas via :mod:`repro.perf.tp`).  Besides the closed-loop ``run``
  (whose offer timeline drives the shared :mod:`repro.sim` event
  kernel), it exposes an open-loop ``start``/``submit``/``step`` API
  that the cluster simulator (:mod:`repro.cluster`) drives; either mode
  can stream a structured event trace for replay/diffing.
* :mod:`repro.serving.workload` — Poisson arrival workload generators.
* :mod:`repro.serving.metrics` — summary statistics.

A compressed cache shows up here twice: more concurrent requests fit
(higher throughput at saturation) and admission queues drain faster
(lower tail TTFT) — the serving-level restatement of Figure 7a.
"""

from repro.serving.request import Request, RequestRecord, RequestStatus
from repro.serving.allocator import PagedKVAllocator
from repro.serving.engine import ServingEngine, EngineConfig
from repro.serving.workload import (
    poisson_workload,
    ramp_workload,
    zipf_shared_workload,
)
from repro.serving.metrics import SLO, ServingMetrics, jain_index, summarize

__all__ = [
    "Request",
    "RequestRecord",
    "RequestStatus",
    "PagedKVAllocator",
    "ServingEngine",
    "EngineConfig",
    "poisson_workload",
    "ramp_workload",
    "zipf_shared_workload",
    "SLO",
    "ServingMetrics",
    "jain_index",
    "summarize",
]

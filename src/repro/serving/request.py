"""Requests and their lifecycle records."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["Request", "RequestStatus", "TERMINAL_STATUSES", "RequestRecord"]


class RequestStatus(enum.Enum):
    WAITING = "waiting"
    PREFILLING = "prefilling"  # admitted; prompt partially processed
    RUNNING = "running"
    #: Prefill finished on a prefill-pool replica; the request's KV blocks
    #: stay pinned on the source while the handoff to a decode replica is
    #: in flight (see :mod:`repro.migrate`).  Non-terminal: it resolves to
    #: decode on the destination, local decode on the source, or a retry.
    MIGRATING = "migrating"
    FINISHED = "finished"
    #: Terminal failure: the retry budget ran out (crash/timeout recovery
    #: gave up).  Counted against availability, never against goodput.
    FAILED = "failed"
    #: Turned away at the door by admission control (token bucket, queue
    #: bound, KV-pressure gate, or a SHED_ONLY brownout).  No work was
    #: ever spent on the request.
    REJECTED = "rejected"
    #: Accepted into the queue but deliberately dropped before decode:
    #: either it provably could not meet its TTFT deadline at dequeue
    #: time, or it was a victim of high-water KV-pressure shedding.
    SHED = "shed"


#: Statuses from which a record never leaves.
TERMINAL_STATUSES = frozenset(
    {
        RequestStatus.FINISHED,
        RequestStatus.FAILED,
        RequestStatus.REJECTED,
        RequestStatus.SHED,
    }
)

#: Enum <-> small-int codes for the array-of-struct status column
#: (:mod:`repro.serving.columns`).  Codes are positional, so they are
#: stable as long as members are only appended.
_STATUS_MEMBERS = tuple(RequestStatus)
_STATUS_CODES = {member: code for code, member in enumerate(_STATUS_MEMBERS)}


@dataclass(frozen=True)
class Request:
    """One generation request."""

    request_id: int
    arrival_time: float
    prompt_len: int
    gen_len: int
    #: Conversation/session key for affinity routing: follow-up turns of
    #: one session share a KV prefix, so routers may pin a session to one
    #: replica.  0 (the default) means "no session".
    session_id: int = 0
    #: Scheduling priority under overload (higher = more important).
    #: High-water shedding victimizes the lowest priority first.
    priority: int = 0
    #: Owning tenant for rate limits / fair share (0 = the default
    #: anonymous tenant; see :mod:`repro.prefix.tenancy`).
    tenant_id: int = 0
    #: Content identity of the request's shared prompt prefix: requests
    #: carrying the same ``prefix_id`` share the same underlying token
    #: stream for their first ``shared_prefix_len`` tokens, so their KV
    #: blocks are content-addressed sharable (:mod:`repro.prefix.pool`).
    #: ``None`` = nothing sharable.
    prefix_id: Optional[int] = None
    #: Length of the shared prefix (0 means none; must not exceed
    #: ``prompt_len``, and equality means the whole prompt is shared —
    #: the tail block then diverges copy-on-write at the first decode).
    shared_prefix_len: int = 0

    def __post_init__(self) -> None:
        if self.prompt_len <= 0 or self.gen_len <= 0:
            raise ValueError("prompt_len and gen_len must be positive")
        if self.shared_prefix_len < 0 or self.shared_prefix_len > self.prompt_len:
            raise ValueError("shared_prefix_len must lie in [0, prompt_len]")
        if self.shared_prefix_len > 0 and self.prefix_id is None:
            raise ValueError("shared_prefix_len > 0 requires a prefix_id")

    @property
    def total_tokens(self) -> int:
        return self.prompt_len + self.gen_len


@dataclass
class RequestRecord:
    """Mutable lifecycle state tracked by the engine."""

    request: Request
    status: RequestStatus = RequestStatus.WAITING
    generated: int = 0
    #: Prompt tokens processed so far (chunked prefill).
    prefilled: int = 0
    admitted_at: Optional[float] = None
    first_token_at: Optional[float] = None
    finished_at: Optional[float] = None
    preemptions: int = 0
    #: Fault-recovery dispatches: incremented every time the request is
    #: pulled off a replica (crash, timeout) and sent back to the router.
    retries: int = 0
    #: Warm recoveries: times the request was resumed from a replica
    #: checkpoint after a crash/restart (see :mod:`repro.recover`).
    #: Unlike ``retries``, a recovery keeps checkpointed progress and
    #: never consumes the retry budget.
    recoveries: int = 0
    #: Cluster time the retry budget ran out (status FAILED).
    failed_at: Optional[float] = None
    #: Prompt tokens whose prefill work was thrown away by fault evictions
    #: (they are re-prefilled, at real cost, on the next replica).
    wasted_prefill_tokens: int = 0
    #: Generated tokens lost to fault evictions (regenerated after retry).
    wasted_decode_tokens: int = 0
    #: Effective KV bits this request was admitted at (the brownout
    #: controller may downshift below the method's full precision; ``None``
    #: until admission assigns a width).
    kv_bits: Optional[float] = None
    #: DEFER verdicts received so far (bounded; the budget's exhaustion
    #: turns the next DEFER into a REJECT so every request terminates).
    defers: int = 0
    #: Prompt tokens currently resident in *shared* prefix blocks (the
    #: engine allocates only ``context_len - shared_tokens`` privately).
    shared_tokens: int = 0
    #: Tokens of a shared partial tail block this request still reads;
    #: the first decode write triggers copy-on-write and zeroes this.
    shared_tail_tokens: int = 0
    #: Cumulative prompt tokens whose prefill was skipped via prefix-
    #: cache hits, and the tokens offered to the cache (the hit ratio's
    #: numerator/denominator) — monotone across preemptions/retries.
    prefix_hit_tokens: int = 0
    prefix_lookup_tokens: int = 0
    #: Copy-on-write block copies performed on behalf of this request.
    cow_copies: int = 0
    # -- disaggregated prefill/decode migration (repro.migrate) --------------
    #: Completed prefill→decode handoffs (the KV crossed the link and the
    #: decode replica accepted it).
    migrations: int = 0
    #: Migration attempts that had to be re-issued: dropped transfers,
    #: destination crashes/drains mid-flight, and no-target waits.  Bounded
    #: by the per-request migration budget (``max_migration_retries``).
    migration_retries: int = 0
    #: Wire bytes actually shipped on the inter-pool link for this request,
    #: including bytes wasted by dropped/corrupted transfers.
    migrated_bytes: float = 0.0
    #: Prompt tokens re-prefilled on the decode replica because a corrupted
    #: handoff salvaged only a prefix of the serialized KV state.
    salvage_recomputed_tokens: int = 0
    #: The migration budget ran out (or migration was impossible) and the
    #: request decoded on its prefill replica instead — slower, never lost.
    local_decode: bool = False
    #: Latency of the successful handoff: prefill completion → decode-
    #: replica acceptance (transfer + retries + defer waits).
    handoff_latency: Optional[float] = None
    #: Engine clock at which prefill completed on the source replica.
    prefill_done_at: Optional[float] = None
    #: Time the request was rejected/shed (terminal overload outcomes).
    rejected_at: Optional[float] = None
    shed_at: Optional[float] = None
    #: Why admission/shedding turned the request away (e.g. "queue_full",
    #: "kv_pressure", "deadline", "high_water", "shed_only").
    outcome_reason: Optional[str] = None

    @property
    def context_len(self) -> int:
        """Tokens currently held in the KV cache."""
        return self.request.prompt_len + self.generated

    @property
    def done(self) -> bool:
        return self.generated >= self.request.gen_len

    @property
    def ttft(self) -> Optional[float]:
        """Time to first token (arrival -> first generated token)."""
        if self.first_token_at is None:
            return None
        return self.first_token_at - self.request.arrival_time

    @property
    def tpot(self) -> Optional[float]:
        """Mean time per output token after the first."""
        if self.finished_at is None or self.first_token_at is None:
            return None
        if self.request.gen_len <= 1:
            return 0.0
        return (self.finished_at - self.first_token_at) / (self.request.gen_len - 1)

    def reset_for_requeue(self) -> None:
        """Preemption: all cache state is dropped; prefill happens again."""
        self.status = RequestStatus.WAITING
        self.generated = 0
        self.prefilled = 0
        self.admitted_at = None
        self.first_token_at = None
        self.shared_tokens = 0
        self.shared_tail_tokens = 0
        self.prefill_done_at = None
        self.preemptions += 1

    def reset_for_retry(self) -> None:
        """Fault eviction: like a preemption, but the lost work is charged
        to the fault accounting and the retry budget instead."""
        self.wasted_prefill_tokens += self.prefilled
        self.wasted_decode_tokens += self.generated
        self.status = RequestStatus.WAITING
        self.generated = 0
        self.prefilled = 0
        self.admitted_at = None
        self.first_token_at = None
        self.shared_tokens = 0
        self.shared_tail_tokens = 0
        self.prefill_done_at = None
        self.retries += 1

    def reset_for_recovery(
        self,
        prefilled: int,
        generated: int,
        first_token_at: Optional[float] = None,
    ) -> None:
        """Warm restart: resume from checkpointed progress.

        Unlike :meth:`reset_for_retry`, only the progress *beyond* what
        the checkpoint preserved is charged as waste, and no retry is
        consumed — the request never left its replica's fault domain, it
        came back with most of its work intact.  The clamp to zero
        covers a checkpoint older than a previous rollback (progress can
        only ever be re-lost once).
        """
        if prefilled < 0 or generated < 0:
            raise ValueError("recovered progress must be non-negative")
        self.wasted_prefill_tokens += max(0, self.prefilled - prefilled)
        self.wasted_decode_tokens += max(0, self.generated - generated)
        self.status = RequestStatus.WAITING
        self.prefilled = prefilled
        self.generated = generated
        self.admitted_at = None
        self.first_token_at = first_token_at if generated > 0 else None
        self.shared_tokens = 0
        self.shared_tail_tokens = 0
        self.prefill_done_at = None
        self.recoveries += 1

    def mark_failed(self, now: float) -> None:
        """Terminal failure after the retry budget is exhausted."""
        self.status = RequestStatus.FAILED
        self.failed_at = now

    def mark_rejected(self, now: float, reason: str) -> None:
        """Terminal admission rejection — zero work was spent."""
        self.status = RequestStatus.REJECTED
        self.rejected_at = now
        self.outcome_reason = reason

    def mark_shed(self, now: float, reason: str) -> None:
        """Terminal queue shed (deadline-doomed or high-water victim)."""
        self.status = RequestStatus.SHED
        self.shed_at = now
        self.outcome_reason = reason


# -- column binding (array-of-struct bookkeeping) ----------------------------
#
# While a record is resident in a serving engine, its hot lifecycle fields
# live in that engine's RequestColumns (repro.serving.columns) under slot
# ``_slot``; the properties installed below route reads/writes there so the
# columns are the single authoritative copy.  Unbound records (the default,
# and every record after it leaves an engine) use plain per-instance
# storage.  The properties are installed *after* the dataclass decorator
# has run so the generated __init__/__repr__ keep their field defaults.

RequestRecord._cols = None
RequestRecord._slot = -1


def _install_column_properties() -> None:
    def scalar(name, column, cast):
        plain = "_p_" + name

        def get(self):
            cols = self._cols
            if cols is None:
                return getattr(self, plain)
            return cast(getattr(cols, column)[self._slot])

        def set_(self, value):
            cols = self._cols
            if cols is None:
                object.__setattr__(self, plain, value)
            else:
                getattr(cols, column)[self._slot] = value

        setattr(RequestRecord, name, property(get, set_))

    scalar("generated", "generated", int)
    scalar("prefilled", "prefilled", int)
    scalar("shared_tokens", "shared_tokens", int)
    scalar("shared_tail_tokens", "shared_tail_tokens", int)

    def status_get(self):
        cols = self._cols
        if cols is None:
            return self._p_status
        return _STATUS_MEMBERS[cols.status[self._slot]]

    def status_set(self, value):
        cols = self._cols
        if cols is None:
            object.__setattr__(self, "_p_status", value)
        else:
            cols.status[self._slot] = _STATUS_CODES[value]

    RequestRecord.status = property(status_get, status_set)

    def first_get(self):
        cols = self._cols
        if cols is None:
            return self._p_first_token_at
        if not cols.first_flag[self._slot]:
            return None
        return float(cols.first_at[self._slot])

    def first_set(self, value):
        cols = self._cols
        if cols is None:
            object.__setattr__(self, "_p_first_token_at", value)
        elif value is None:
            cols.first_flag[self._slot] = False
        else:
            cols.first_flag[self._slot] = True
            cols.first_at[self._slot] = value

    RequestRecord.first_token_at = property(first_get, first_set)

    def bits_get(self):
        cols = self._cols
        if cols is None:
            return self._p_kv_bits
        value = cols.kv_bits[self._slot]
        if value != value:  # NaN encodes "not assigned"
            return None
        return float(value)

    def bits_set(self, value):
        cols = self._cols
        if cols is None:
            object.__setattr__(self, "_p_kv_bits", value)
        else:
            cols.kv_bits[self._slot] = float("nan") if value is None else value

    RequestRecord.kv_bits = property(bits_get, bits_set)


_install_column_properties()

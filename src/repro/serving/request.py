"""Requests and their lifecycle records."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["Request", "RequestStatus", "RequestRecord"]


class RequestStatus(enum.Enum):
    WAITING = "waiting"
    PREFILLING = "prefilling"  # admitted; prompt partially processed
    RUNNING = "running"
    FINISHED = "finished"


@dataclass(frozen=True)
class Request:
    """One generation request."""

    request_id: int
    arrival_time: float
    prompt_len: int
    gen_len: int
    #: Conversation/session key for affinity routing: follow-up turns of
    #: one session share a KV prefix, so routers may pin a session to one
    #: replica.  0 (the default) means "no session".
    session_id: int = 0

    def __post_init__(self) -> None:
        if self.prompt_len <= 0 or self.gen_len <= 0:
            raise ValueError("prompt_len and gen_len must be positive")

    @property
    def total_tokens(self) -> int:
        return self.prompt_len + self.gen_len


@dataclass
class RequestRecord:
    """Mutable lifecycle state tracked by the engine."""

    request: Request
    status: RequestStatus = RequestStatus.WAITING
    generated: int = 0
    #: Prompt tokens processed so far (chunked prefill).
    prefilled: int = 0
    admitted_at: Optional[float] = None
    first_token_at: Optional[float] = None
    finished_at: Optional[float] = None
    preemptions: int = 0

    @property
    def context_len(self) -> int:
        """Tokens currently held in the KV cache."""
        return self.request.prompt_len + self.generated

    @property
    def done(self) -> bool:
        return self.generated >= self.request.gen_len

    @property
    def ttft(self) -> Optional[float]:
        """Time to first token (arrival -> first generated token)."""
        if self.first_token_at is None:
            return None
        return self.first_token_at - self.request.arrival_time

    @property
    def tpot(self) -> Optional[float]:
        """Mean time per output token after the first."""
        if self.finished_at is None or self.first_token_at is None:
            return None
        if self.request.gen_len <= 1:
            return 0.0
        return (self.finished_at - self.first_token_at) / (self.request.gen_len - 1)

    def reset_for_requeue(self) -> None:
        """Preemption: all cache state is dropped; prefill happens again."""
        self.status = RequestStatus.WAITING
        self.generated = 0
        self.prefilled = 0
        self.admitted_at = None
        self.first_token_at = None
        self.preemptions += 1

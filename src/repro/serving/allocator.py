"""Paged KV cache allocator.

Memory is managed in fixed blocks of ``block_tokens`` tokens (the paper's
cache blocks double as allocation units — ``B_c = n_b = 64``).  Each
request owns an integer number of blocks covering its context; the final
block is partially used (internal fragmentation, reported).

Byte cost per token derives from the attention method's effective KV bits
and the model geometry — the same arithmetic as
:class:`repro.perf.memory.MemoryModel`, restated per token:

    bytes/token = 2 * kv_heads * head_dim * n_layers * kv_bits / 8

Storage is array-of-struct: per-request state lives in preallocated
NumPy columns (``blocks`` / ``tokens`` / ``bytes_scale``) keyed by a
recycled slot index, with a ``request_id -> slot`` map on the side.  The
serving engine grows every decoding request every step, so the hot path
is :meth:`decode_commit` — one vectorized growth-plus-release pass over
the whole decode batch that reproduces the sequential per-request
arithmetic exactly (integer block counts; the free-block trajectory is a
cumulative sum, so "would any request in order have hit OOM?" is a
single ``min`` test).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.perf.attention_costs import MethodSpec
from repro.perf.e2e import ModelGeometry

__all__ = ["PagedKVAllocator"]

_INIT_SLOTS = 64


@dataclass
class _Allocation:
    """Read-only view of one request's allocation (compatibility shim for
    callers that inspect :attr:`PagedKVAllocator._allocs`)."""

    blocks: int
    tokens: int
    #: Per-request multiplier on the method's bytes/token (brownout admits
    #: requests at a reduced KV width, so they pack into fewer blocks).
    bytes_scale: float = 1.0


class PagedKVAllocator:
    """Block-granular KV memory accounting for one device."""

    def __init__(
        self,
        model: ModelGeometry,
        method: MethodSpec,
        budget_bytes: float,
        block_tokens: int = 64,
        paper_harness: bool = True,
    ):
        """``paper_harness=True`` applies the method's workspace factor and
        per-query-head replication — the calibration of
        :func:`repro.perf.memory.paper_memory_model` — so serving capacity
        matches the Figure 6/7a OOM behaviour.  ``False`` gives the
        ideal-packed accounting."""
        if budget_bytes <= 0:
            raise ValueError("budget must be positive")
        if block_tokens <= 0:
            raise ValueError("block_tokens must be positive")
        self.block_tokens = block_tokens
        self.bytes_per_token = (
            2.0 * model.n_kv_heads * model.head_dim * model.n_layers * method.kv_bits / 8.0
        )
        if paper_harness:
            replication = max(1, model.n_heads // model.n_kv_heads)
            self.bytes_per_token *= method.cache_workspace_factor * replication
        self.total_blocks = int(budget_bytes // (self.bytes_per_token * block_tokens))
        self.free_blocks = self.total_blocks
        # Array-of-struct bookkeeping: request_id -> slot, slots recycled
        # through a free list; columns preallocated and doubled on demand.
        self._index: Dict[int, int] = {}
        self._free_slots: List[int] = list(range(_INIT_SLOTS - 1, -1, -1))
        self._slot_blocks = np.zeros(_INIT_SLOTS, dtype=np.int64)
        self._slot_tokens = np.zeros(_INIT_SLOTS, dtype=np.int64)
        self._slot_scale = np.ones(_INIT_SLOTS, dtype=np.float64)
        #: Blocks owned by the shared prefix pool (repro.prefix) rather
        #: than any single request; they count as used capacity.
        self.shared_blocks = 0

    # -- slot management ------------------------------------------------------
    def _acquire_slot(self, request_id: int) -> int:
        if not self._free_slots:
            old = len(self._slot_blocks)
            grow = old  # double
            self._slot_blocks = np.concatenate(
                [self._slot_blocks, np.zeros(grow, dtype=np.int64)]
            )
            self._slot_tokens = np.concatenate(
                [self._slot_tokens, np.zeros(grow, dtype=np.int64)]
            )
            self._slot_scale = np.concatenate(
                [self._slot_scale, np.ones(grow, dtype=np.float64)]
            )
            self._free_slots.extend(range(old + grow - 1, old - 1, -1))
        slot = self._free_slots.pop()
        self._index[request_id] = slot
        return slot

    def slot_of(self, request_id: int) -> int:
        """Slot index of an existing allocation (-1 when none).  Slots are
        stable for the allocation's lifetime, so callers batching
        :meth:`decode_commit` may cache them."""
        return self._index.get(request_id, -1)

    @property
    def _allocs(self) -> Dict[int, _Allocation]:
        """Compatibility view of per-request allocations (tests inspect it)."""
        return {
            rid: _Allocation(
                blocks=int(self._slot_blocks[slot]),
                tokens=int(self._slot_tokens[slot]),
                bytes_scale=float(self._slot_scale[slot]),
            )
            for rid, slot in self._index.items()
        }

    def request_ids(self) -> List[int]:
        """Request ids holding live allocations."""
        return list(self._index)

    # -- queries -----------------------------------------------------------
    def blocks_for(self, tokens: int, bytes_scale: float = 1.0) -> int:
        """Blocks covering ``tokens`` at ``bytes_scale`` times the method's
        bytes/token.  A brownout request stored at 2.3 effective bits under
        a 3.3-bit method has ``bytes_scale = 2.3/3.3`` and packs ~1.4x more
        tokens into each fixed-size block."""
        if bytes_scale == 1.0:
            return -(-tokens // self.block_tokens)
        if bytes_scale <= 0:
            raise ValueError("bytes_scale must be positive")
        eff = tokens * bytes_scale
        blocks = int(eff // self.block_tokens)
        return blocks + (1 if eff > blocks * self.block_tokens else 0)

    def _blocks_for_array(
        self, tokens: np.ndarray, bytes_scale: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`blocks_for` — elementwise-identical arithmetic
        (the ``bytes_scale == 1`` entries reduce to exact integer ceil-div
        through the float path because all involved values are exactly
        representable)."""
        if np.all(bytes_scale == 1.0):
            return -(-tokens // self.block_tokens)
        eff = tokens * bytes_scale
        blocks = (eff // self.block_tokens).astype(np.int64)
        return blocks + (eff > blocks * self.block_tokens)

    def can_allocate(self, request_id: int, tokens: int) -> bool:
        """Would growing/creating ``request_id`` to ``tokens`` succeed?"""
        slot = self._index.get(request_id)
        have = int(self._slot_blocks[slot]) if slot is not None else 0
        scale = float(self._slot_scale[slot]) if slot is not None else 1.0
        return self.blocks_for(tokens, scale) - have <= self.free_blocks

    def blocks_needed(
        self, request_id: int, tokens: int, bytes_scale: float = 1.0
    ) -> int:
        """Additional free blocks a :meth:`grow` to ``tokens`` would take
        (0 if the allocation already covers it).  Existing allocations
        keep their stored scale, exactly as ``grow`` does."""
        slot = self._index.get(request_id)
        have = int(self._slot_blocks[slot]) if slot is not None else 0
        scale = float(self._slot_scale[slot]) if slot is not None else bytes_scale
        return max(self.blocks_for(tokens, scale) - have, 0)

    @property
    def used_blocks(self) -> int:
        return self.total_blocks - self.free_blocks

    @property
    def utilization(self) -> float:
        """Fraction of device blocks currently allocated."""
        return self.used_blocks / self.total_blocks if self.total_blocks else 0.0

    @property
    def internal_fragmentation(self) -> float:
        """Allocated-but-unused token slots as a fraction of allocated."""
        if not self._index:
            return 0.0
        slots = np.fromiter(self._index.values(), dtype=np.int64, count=len(self._index))
        alloc_tokens = int(self._slot_blocks[slots].sum()) * self.block_tokens
        used_tokens = int(self._slot_tokens[slots].sum())
        if alloc_tokens == 0:
            return 0.0
        return (alloc_tokens - used_tokens) / alloc_tokens

    # -- mutations -----------------------------------------------------------
    def grow(self, request_id: int, tokens: int, bytes_scale: float = 1.0) -> bool:
        """Create or extend an allocation to cover ``tokens``; False = OOM.

        ``bytes_scale`` is fixed at the allocation's creation (the request's
        admitted KV width never changes mid-flight); growth calls reuse the
        stored scale.
        """
        slot = self._index.get(request_id)
        if slot is None:
            have = 0
            scale = bytes_scale
        else:
            have = int(self._slot_blocks[slot])
            scale = float(self._slot_scale[slot])
        need = self.blocks_for(tokens, scale) - have
        if need > self.free_blocks:
            return False
        self.free_blocks -= max(need, 0)
        if slot is None:
            slot = self._acquire_slot(request_id)
            self._slot_scale[slot] = scale
        self._slot_blocks[slot] = have + max(need, 0)
        self._slot_tokens[slot] = tokens
        return True

    def release(self, request_id: int) -> None:
        slot = self._index.pop(request_id, None)
        if slot is not None:
            self.free_blocks += int(self._slot_blocks[slot])
            self._slot_blocks[slot] = 0
            self._slot_tokens[slot] = 0
            self._slot_scale[slot] = 1.0
            self._free_slots.append(slot)

    def release_all(self) -> None:
        """Drop every per-request allocation (engine reset)."""
        for rid in list(self._index):
            self.release(rid)

    def decode_commit(
        self,
        slots: np.ndarray,
        tokens: np.ndarray,
        release_mask: np.ndarray,
        release_ids: List[int],
    ) -> bool:
        """One decode step's growth/release pass over the whole batch.

        ``slots``/``tokens``/``release_mask`` are aligned arrays in batch
        processing order: a release row frees the slot's blocks (request
        finished), a growth row extends the slot to ``tokens`` at its
        stored scale.  Returns False — with **no state mutated** — if the
        sequential per-request equivalent would have hit OOM anywhere
        along the way (the caller then falls back to the per-request loop
        with its preemption policy).  On success the final state is
        exactly the sequential loop's: block counts are integers, so the
        batched arithmetic is the same arithmetic.
        """
        if slots.size == 0:
            return True
        have = self._slot_blocks[slots]
        target = self._blocks_for_array(tokens, self._slot_scale[slots])
        need = np.maximum(target - have, 0)
        # Free-block trajectory of the in-order sequential loop: releases
        # add the row's held blocks, growths subtract the row's need.
        delta = np.where(release_mask, have, -need)
        trajectory = np.cumsum(delta)
        if self.free_blocks + int(trajectory.min()) < 0:
            return False
        self.free_blocks += int(trajectory[-1])
        grow_mask = ~release_mask
        gi = slots[grow_mask]
        self._slot_blocks[gi] = have[grow_mask] + need[grow_mask]
        self._slot_tokens[gi] = tokens[grow_mask]
        ri = slots[release_mask]
        self._slot_blocks[ri] = 0
        self._slot_tokens[ri] = 0
        self._slot_scale[ri] = 1.0
        for rid in release_ids:
            del self._index[rid]
        self._free_slots.extend(ri.tolist())
        return True

    def bulk_grow(self, slots: np.ndarray, tokens: np.ndarray) -> bool:
        """Grow every slot to its target token count, atomically.

        Equivalent to growing each slot once per simulated step until it
        reaches its target: block demand is monotone in tokens and no
        blocks are released in between, so the sequential free-block
        trajectory is monotone decreasing and "would any intermediate
        grow have OOMed?" collapses to one end-state test.  Returns False
        with no state mutated when the demand exceeds free blocks (the
        caller falls back to per-step growth and its preemption policy).
        """
        if slots.size == 0:
            return True
        have = self._slot_blocks[slots]
        target = self._blocks_for_array(tokens, self._slot_scale[slots])
        need = np.maximum(target - have, 0)
        total = int(need.sum())
        if total > self.free_blocks:
            return False
        self.free_blocks -= total
        self._slot_blocks[slots] = have + need
        self._slot_tokens[slots] = tokens
        return True

    # -- shared-pool slots (repro.prefix) -------------------------------------
    def take_shared_block(self) -> bool:
        """Move one free block into the shared prefix pool's ownership.

        Shared blocks hold content-addressed prefix KV that multiple
        requests reference; they are accounted at the method's full
        width (a shared block's width is the max across its sharers, so
        per-request ``bytes_scale`` discounts never apply to it).
        """
        if self.free_blocks < 1:
            return False
        self.free_blocks -= 1
        self.shared_blocks += 1
        return True

    def release_shared_block(self, n: int = 1) -> None:
        """Return ``n`` pool-owned blocks to the free list (eviction)."""
        if n < 0 or n > self.shared_blocks:
            raise ValueError(
                f"cannot release {n} shared blocks; pool owns {self.shared_blocks}"
            )
        self.shared_blocks -= n
        self.free_blocks += n

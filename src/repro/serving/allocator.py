"""Paged KV cache allocator.

Memory is managed in fixed blocks of ``block_tokens`` tokens (the paper's
cache blocks double as allocation units — ``B_c = n_b = 64``).  Each
request owns an integer number of blocks covering its context; the final
block is partially used (internal fragmentation, reported).

Byte cost per token derives from the attention method's effective KV bits
and the model geometry — the same arithmetic as
:class:`repro.perf.memory.MemoryModel`, restated per token:

    bytes/token = 2 * kv_heads * head_dim * n_layers * kv_bits / 8
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.perf.attention_costs import MethodSpec
from repro.perf.e2e import ModelGeometry

__all__ = ["PagedKVAllocator"]


@dataclass
class _Allocation:
    blocks: int
    tokens: int
    #: Per-request multiplier on the method's bytes/token (brownout admits
    #: requests at a reduced KV width, so they pack into fewer blocks).
    bytes_scale: float = 1.0


class PagedKVAllocator:
    """Block-granular KV memory accounting for one device."""

    def __init__(
        self,
        model: ModelGeometry,
        method: MethodSpec,
        budget_bytes: float,
        block_tokens: int = 64,
        paper_harness: bool = True,
    ):
        """``paper_harness=True`` applies the method's workspace factor and
        per-query-head replication — the calibration of
        :func:`repro.perf.memory.paper_memory_model` — so serving capacity
        matches the Figure 6/7a OOM behaviour.  ``False`` gives the
        ideal-packed accounting."""
        if budget_bytes <= 0:
            raise ValueError("budget must be positive")
        if block_tokens <= 0:
            raise ValueError("block_tokens must be positive")
        self.block_tokens = block_tokens
        self.bytes_per_token = (
            2.0 * model.n_kv_heads * model.head_dim * model.n_layers * method.kv_bits / 8.0
        )
        if paper_harness:
            replication = max(1, model.n_heads // model.n_kv_heads)
            self.bytes_per_token *= method.cache_workspace_factor * replication
        self.total_blocks = int(budget_bytes // (self.bytes_per_token * block_tokens))
        self.free_blocks = self.total_blocks
        self._allocs: Dict[int, _Allocation] = {}
        #: Blocks owned by the shared prefix pool (repro.prefix) rather
        #: than any single request; they count as used capacity.
        self.shared_blocks = 0

    # -- queries -----------------------------------------------------------
    def blocks_for(self, tokens: int, bytes_scale: float = 1.0) -> int:
        """Blocks covering ``tokens`` at ``bytes_scale`` times the method's
        bytes/token.  A brownout request stored at 2.3 effective bits under
        a 3.3-bit method has ``bytes_scale = 2.3/3.3`` and packs ~1.4x more
        tokens into each fixed-size block."""
        if bytes_scale == 1.0:
            return -(-tokens // self.block_tokens)
        if bytes_scale <= 0:
            raise ValueError("bytes_scale must be positive")
        eff = tokens * bytes_scale
        blocks = int(eff // self.block_tokens)
        return blocks + (1 if eff > blocks * self.block_tokens else 0)

    def can_allocate(self, request_id: int, tokens: int) -> bool:
        """Would growing/creating ``request_id`` to ``tokens`` succeed?"""
        current = self._allocs.get(request_id)
        have = current.blocks if current else 0
        scale = current.bytes_scale if current else 1.0
        return self.blocks_for(tokens, scale) - have <= self.free_blocks

    def blocks_needed(
        self, request_id: int, tokens: int, bytes_scale: float = 1.0
    ) -> int:
        """Additional free blocks a :meth:`grow` to ``tokens`` would take
        (0 if the allocation already covers it).  Existing allocations
        keep their stored scale, exactly as ``grow`` does."""
        current = self._allocs.get(request_id)
        have = current.blocks if current else 0
        scale = current.bytes_scale if current else bytes_scale
        return max(self.blocks_for(tokens, scale) - have, 0)

    @property
    def used_blocks(self) -> int:
        return self.total_blocks - self.free_blocks

    @property
    def utilization(self) -> float:
        """Fraction of device blocks currently allocated."""
        return self.used_blocks / self.total_blocks if self.total_blocks else 0.0

    @property
    def internal_fragmentation(self) -> float:
        """Allocated-but-unused token slots as a fraction of allocated."""
        alloc_tokens = sum(a.blocks * self.block_tokens for a in self._allocs.values())
        used_tokens = sum(a.tokens for a in self._allocs.values())
        if alloc_tokens == 0:
            return 0.0
        return (alloc_tokens - used_tokens) / alloc_tokens

    # -- mutations -----------------------------------------------------------
    def grow(self, request_id: int, tokens: int, bytes_scale: float = 1.0) -> bool:
        """Create or extend an allocation to cover ``tokens``; False = OOM.

        ``bytes_scale`` is fixed at the allocation's creation (the request's
        admitted KV width never changes mid-flight); growth calls reuse the
        stored scale.
        """
        current = self._allocs.get(request_id)
        have = current.blocks if current else 0
        scale = current.bytes_scale if current else bytes_scale
        need = self.blocks_for(tokens, scale) - have
        if need > self.free_blocks:
            return False
        self.free_blocks -= max(need, 0)
        self._allocs[request_id] = _Allocation(
            blocks=have + max(need, 0), tokens=tokens, bytes_scale=scale
        )
        return True

    def release(self, request_id: int) -> None:
        alloc = self._allocs.pop(request_id, None)
        if alloc is not None:
            self.free_blocks += alloc.blocks

    # -- shared-pool slots (repro.prefix) -------------------------------------
    def take_shared_block(self) -> bool:
        """Move one free block into the shared prefix pool's ownership.

        Shared blocks hold content-addressed prefix KV that multiple
        requests reference; they are accounted at the method's full
        width (a shared block's width is the max across its sharers, so
        per-request ``bytes_scale`` discounts never apply to it).
        """
        if self.free_blocks < 1:
            return False
        self.free_blocks -= 1
        self.shared_blocks += 1
        return True

    def release_shared_block(self, n: int = 1) -> None:
        """Return ``n`` pool-owned blocks to the free list (eviction)."""
        if n < 0 or n > self.shared_blocks:
            raise ValueError(
                f"cannot release {n} shared blocks; pool owns {self.shared_blocks}"
            )
        self.shared_blocks -= n
        self.free_blocks += n

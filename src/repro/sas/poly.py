"""Polynomial approximation of ``e^{-x}`` on ``[0, 1]`` (paper Eq. 15).

The paper fits a degree-3 polynomial by least squares:

    POLY(x) = -0.1025 x^3 + 0.4626 x^2 - 0.9922 x + 0.9996

:func:`fit_exp_poly` reproduces that fit (our refit recovers the published
coefficients to ~3 decimal places; the residual difference is the sampling
grid).  :func:`poly_eval` evaluates with Horner's rule, optionally rounding
every intermediate through FP16 to model tensor-core evaluation.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = ["PAPER_POLY_COEFFS", "poly_eval", "fit_exp_poly", "poly_max_error"]

# Highest degree first: (-0.1025) x^3 + 0.4626 x^2 - 0.9922 x + 0.9996.
PAPER_POLY_COEFFS: Tuple[float, ...] = (-0.1025, 0.4626, -0.9922, 0.9996)


def poly_eval(
    x: np.ndarray,
    coeffs: Sequence[float] = PAPER_POLY_COEFFS,
    emulate_fp16: bool = False,
) -> np.ndarray:
    """Evaluate the polynomial (highest degree first) via Horner's rule.

    With ``emulate_fp16=True`` every multiply-add result is rounded to FP16,
    modelling an evaluation that never leaves half-precision registers.
    """
    x = np.asarray(x, dtype=np.float64)
    if emulate_fp16:
        x = x.astype(np.float16).astype(np.float64)
    acc = np.full_like(x, float(coeffs[0]))
    for c in coeffs[1:]:
        acc = acc * x + float(c)
        if emulate_fp16:
            acc = acc.astype(np.float16).astype(np.float64)
    return acc


def fit_exp_poly(degree: int = 3, n_points: int = 2048) -> np.ndarray:
    """Least-squares fit of ``e^{-x}`` on ``[0, 1]``.

    Returns coefficients highest-degree-first, comparable to
    :data:`PAPER_POLY_COEFFS` for ``degree=3``.
    """
    if degree < 1:
        raise ValueError("degree must be >= 1")
    xs = np.linspace(0.0, 1.0, n_points)
    ys = np.exp(-xs)
    return np.polyfit(xs, ys, degree)


def poly_max_error(coeffs: Sequence[float] = PAPER_POLY_COEFFS, n_points: int = 100_001) -> float:
    """Max absolute error of the polynomial vs ``e^{-x}`` on ``[0, 1]``."""
    xs = np.linspace(0.0, 1.0, n_points)
    return float(np.max(np.abs(poly_eval(xs, coeffs) - np.exp(-xs))))

"""Lookup table for the integer part of the SAS exponent.

For scores normalized so ``x <= 0``, SAS computes ``e^{x}`` as
``LUT(|x|_int) * POLY(|x|_dec)``.  The table stores ``e^{-i}`` for
``i = 0 .. |n_r|`` plus a sentinel zero entry at index ``|n_r| + 1``
(Algorithm 3 sets values below the threshold to ``n_r + 1`` and relies on
``T[n_r + 1] = 0``).  With ``n_r = -6`` the whole table is 8 FP16 scalars —
it lives in registers on a real GPU.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ExpLUT"]


class ExpLUT:
    """Table of ``e^{-i}`` values with a zero sentinel.

    Parameters
    ----------
    threshold:
        The (negative) sparsity threshold ``n_r``; scores below it map to
        probability zero.  Default −6, the paper's setting.
    emulate_fp16:
        Store table entries rounded to FP16.
    """

    def __init__(self, threshold: int = -6, emulate_fp16: bool = False):
        if threshold >= 0:
            raise ValueError("SAS threshold n_r must be negative")
        self.threshold = int(threshold)
        depth = -self.threshold  # number of integer steps covered
        table = np.exp(-np.arange(depth + 1, dtype=np.float64))
        table = np.append(table, 0.0)  # sentinel: anything past n_r -> 0
        if emulate_fp16:
            table = table.astype(np.float16).astype(np.float64)
        self.table = table

    def __len__(self) -> int:
        return self.table.size

    @property
    def storage_bytes(self) -> int:
        """FP16 storage footprint of the table."""
        return self.table.size * 2

    def lookup(self, int_part: np.ndarray) -> np.ndarray:
        """Vectorized lookup of ``e^{-i}`` for non-negative integer ``i``.

        Indices beyond the table depth hit the zero sentinel.
        """
        idx = np.asarray(int_part, dtype=np.int64)
        if np.any(idx < 0):
            raise ValueError("integer parts must be non-negative")
        idx = np.minimum(idx, self.table.size - 1)
        return self.table[idx]

"""Sparse Activated Softmax (paper §4, Algorithm 3).

The attention kernels always call the exponential on *max-subtracted*
scores, so inputs are ``x <= 0``.  SAS computes::

    y = -x
    e^x = LUT(floor(y)) * POLY(y - floor(y))        for x >= n_r
    e^x = 0                                          for x <  n_r

:class:`SAS` is a callable drop-in for ``np.exp`` (the ``exp_fn`` hook of
:class:`repro.attention.online_softmax.OnlineSoftmaxState`), and
:func:`sas_softmax` is the standalone Algorithm 3 (normalize by row sums).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Sequence, Tuple

import numpy as np

from repro.sas.lut import ExpLUT
from repro.sas.poly import PAPER_POLY_COEFFS, poly_eval

__all__ = ["SASConfig", "SAS", "shared_sas", "sas_exp", "sas_softmax"]


@dataclass(frozen=True)
class SASConfig:
    """Configuration of the SAS approximation.

    Attributes
    ----------
    threshold:
        Sparsity threshold ``n_r`` (negative); paper uses −6.
    coeffs:
        Polynomial coefficients, highest degree first (Eq. 15 defaults).
    emulate_fp16:
        Run LUT entries and polynomial arithmetic through FP16 rounding,
        modelling the tensor-core execution path.
    """

    threshold: int = -6
    coeffs: Tuple[float, ...] = PAPER_POLY_COEFFS
    emulate_fp16: bool = False


class SAS:
    """Callable SAS exponential: ``SAS(config)(x) ~= exp(x)`` for x <= 0."""

    def __init__(self, config: SASConfig = SASConfig()):
        self.config = config
        self.lut = ExpLUT(threshold=config.threshold, emulate_fp16=config.emulate_fp16)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return sas_exp(
            x,
            lut=self.lut,
            coeffs=self.config.coeffs,
            threshold=self.config.threshold,
            emulate_fp16=self.config.emulate_fp16,
        )

    def max_abs_error(self, n_points: int = 100_001) -> float:
        """Worst-case |SAS(x) - exp(x)| over the active range [n_r, 0]."""
        xs = np.linspace(float(self.config.threshold), 0.0, n_points)
        return float(np.max(np.abs(self(xs) - np.exp(xs))))


@lru_cache(maxsize=128)
def shared_sas(config: SASConfig = SASConfig()) -> SAS:
    """Process-wide :class:`SAS` instance for a config.

    The instance is immutable after construction (a frozen config plus the
    precomputed LUT table), so the attention kernels share one per config
    instead of rebuilding the table every call — the decode loop otherwise
    pays an :class:`~repro.sas.lut.ExpLUT` construction per generated
    token.
    """
    return SAS(config)


def sas_exp(
    x: np.ndarray,
    lut: ExpLUT,
    coeffs: Sequence[float] = PAPER_POLY_COEFFS,
    threshold: int = -6,
    emulate_fp16: bool = False,
) -> np.ndarray:
    """Approximate ``exp(x)`` for ``x <= 0`` (vectorized Algorithm 3 core).

    Values below ``threshold`` (and non-finite values, which arise from the
    ``-inf`` initial running max of the online softmax) return exactly 0.
    Small positive values caused by upstream rounding are clamped to 0
    before the split, so the result never exceeds ``POLY(0) ~= 1``.
    """
    x = np.asarray(x, dtype=np.float64)
    finite = np.isfinite(x)
    active = finite & (x >= threshold)
    y = np.where(active, -np.minimum(x, 0.0), 0.0)
    y_int = np.floor(y)
    y_dec = y - y_int
    out = lut.lookup(y_int.astype(np.int64)) * poly_eval(
        y_dec, coeffs, emulate_fp16=emulate_fp16
    )
    return np.where(active, out, 0.0)


def sas_softmax(
    scores: np.ndarray,
    config: SASConfig = SASConfig(),
    axis: int = -1,
) -> np.ndarray:
    """Full Algorithm 3: max-subtract, sparsify, approximate, normalize.

    Rows whose every score fell below the threshold would produce a zero
    denominator; the max-subtraction guarantees at least one entry at
    ``x = 0`` per row, so the row sums are always >= POLY(0) > 0.
    """
    sas = SAS(config)
    scores = np.asarray(scores, dtype=np.float64)
    shifted = scores - np.max(scores, axis=axis, keepdims=True)
    p = sas(shifted)
    denom = p.sum(axis=axis, keepdims=True)
    return p / denom

"""SAS — Sparsity-based Softmax Approximation (paper §4, Algorithm 3).

Replaces FP32 exponentiation inside the attention loop with:

* a lookup table over the integer part of the (negative) exponent, which
  stays tiny because the sparsity threshold ``n_r`` zeroes everything below
  e.g. −6, and
* a degree-3 polynomial (Eq. 15) over the fractional part in ``[0, 1)``,
  evaluated in FP16 — tensor-core friendly.
"""

from repro.sas.poly import (
    PAPER_POLY_COEFFS,
    poly_eval,
    fit_exp_poly,
    poly_max_error,
)
from repro.sas.lut import ExpLUT
from repro.sas.softmax import SASConfig, SAS, sas_exp, sas_softmax

__all__ = [
    "PAPER_POLY_COEFFS",
    "poly_eval",
    "fit_exp_poly",
    "poly_max_error",
    "ExpLUT",
    "SASConfig",
    "SAS",
    "sas_exp",
    "sas_softmax",
]

"""Unified discrete-event simulation kernel.

The serving engine (:mod:`repro.serving.engine`) and the cluster
simulator (:mod:`repro.cluster.simulator`) used to carry two parallel
``heapq`` loops with the same obligations — deterministic same-instant
ordering, seeded reproducibility, livelock guards.  Every new scenario
(faults, brownout, prefix caching) had to be built and tested twice.
This package extracts the one kernel both drive:

* :mod:`repro.sim.kernel` — :class:`EventScheduler`: schedule/cancel,
  total same-instant ordering via ``(time, order_class, seq)``, a
  monotonic-time assertion, and a ``time_scale`` for straggler modeling.
  Every event *kind* must be registered with an order class up front —
  an unregistered kind raises instead of silently sorting by name.
* :mod:`repro.sim.trace` — structured tracing as a kernel feature: every
  scheduled/fired/cancelled event (and every lifecycle *mark* a consumer
  emits) becomes one typed record in a :class:`TraceSink`; the JSONL
  sink writes canonical JSON lines, and :func:`trace_digest` is blake2b
  over the canonicalized records — the byte-identity the determinism
  suite asserts.
* :mod:`repro.sim.replay` — :func:`diff_traces` compares two traces and
  reports the *first divergent event* with surrounding context, exposed
  as ``python -m repro trace-diff a.jsonl b.jsonl``.

Because both loops drive this kernel, determinism is a property proven
once (``tests/test_sim_kernel.py``) and inherited by every consumer,
whose own suites reduce to golden trace digests.
"""

from repro.sim.kernel import (
    Event,
    EventScheduler,
    MonotonicTimeError,
    UnknownEventKind,
)
from repro.sim.trace import (
    JsonlTraceSink,
    ListTraceSink,
    TraceSink,
    canonical_line,
    read_trace,
    trace_digest,
    trace_file_digest,
)
from repro.sim.replay import TraceDiff, diff_traces, format_diff

__all__ = [
    "Event",
    "EventScheduler",
    "MonotonicTimeError",
    "UnknownEventKind",
    "TraceSink",
    "ListTraceSink",
    "JsonlTraceSink",
    "canonical_line",
    "read_trace",
    "trace_digest",
    "trace_file_digest",
    "TraceDiff",
    "diff_traces",
    "format_diff",
]

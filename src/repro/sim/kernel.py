"""The discrete-event scheduler both simulation loops drive.

One kernel, two consumers: :meth:`repro.serving.ServingEngine.run`
feeds it request offers (arrivals and admission-DEFER re-offers) and
:class:`repro.cluster.ClusterSimulator` feeds it the fleet timeline
(arrivals, re-dispatches, faults, recoveries, timeouts).  The kernel
owns the three obligations the two loops used to duplicate:

**Total same-instant ordering.**  Events pop in ``(time, order_class,
seq)`` order.  The order class comes from a per-scheduler registry
mapping every event *kind* to a small integer — e.g. the cluster's
"replicas recover before faults strike before work is placed" rule —
and ``seq`` (scheduling order) breaks the remaining ties, so the order
is total and depends only on the schedule calls, never on hash order,
object identity, or event-kind names.  A kind that was never registered
raises :class:`UnknownEventKind` at schedule time: adding a new event
type forces a deliberate ordering decision instead of silently sorting
by whatever comparison the payload happens to support.

**Monotonic time.**  ``now`` is the time of the last fired event and
never decreases: scheduling into the past raises
:class:`MonotonicTimeError`, so a consumer bug (a backoff computed from
a stale clock, say) fails loudly at the call site instead of corrupting
the timeline.

**Observability.**  When a :class:`~repro.sim.trace.TraceSink` is
attached, every schedule/fire/cancel — and every lifecycle *mark* a
consumer emits via :meth:`EventScheduler.mark` — becomes one typed
record.  Determinism then stops being a convention and becomes a byte
digest (:func:`repro.sim.trace.trace_digest`) the test suite asserts.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, Iterator, List, Mapping, Optional

from repro.sim.trace import TraceSink

__all__ = ["Event", "EventScheduler", "MonotonicTimeError", "UnknownEventKind"]


class UnknownEventKind(KeyError):
    """An event kind was used without a registered order class."""


class MonotonicTimeError(ValueError):
    """An operation would move simulated time backwards."""


class Event:
    """One scheduled occurrence.  Returned by :meth:`EventScheduler.schedule`
    as a handle; pass it to :meth:`EventScheduler.cancel` to revoke it."""

    __slots__ = ("time", "kind", "payload", "label", "seq", "order", "cancelled", "fired")

    def __init__(
        self, time: float, kind: str, payload: Any, label: str, seq: int, order: int
    ):
        self.time = time
        self.kind = kind
        self.payload = payload
        self.label = label
        self.seq = seq
        self.order = order
        self.cancelled = False
        self.fired = False

    @property
    def live(self) -> bool:
        """Still pending: neither fired nor cancelled."""
        return not (self.cancelled or self.fired)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        return f"Event(t={self.time:.6g}, kind={self.kind!r}, label={self.label!r}, {state})"


class EventScheduler:
    """Seeded-simulation event kernel with deterministic total ordering.

    ``order`` pins the same-instant semantics: a mapping from event kind
    to its order class (lower fires first at equal times).  The mapping
    is closed — kinds outside it raise :class:`UnknownEventKind` — and
    it also covers *mark* kinds, so a scheduler's full event taxonomy
    lives in exactly one place.
    """

    def __init__(
        self,
        order: Mapping[str, int],
        *,
        clock: str = "sim",
        trace: Optional[TraceSink] = None,
        start: float = 0.0,
    ):
        self.order: Dict[str, int] = dict(order)
        #: Name stamped on every trace record this scheduler emits, so
        #: one sink can interleave several clocks (cluster + replicas).
        self.clock = clock
        self.trace = trace
        #: Time of the last fired event; never decreases.
        self.now = float(start)
        #: Multiplier applied to delays passed to :meth:`schedule_in`
        #: (straggler/stall modeling happens here, not in consumers).
        self.time_scale = 1.0
        self._heap: List[tuple] = []
        self._seq = 0
        self._live = 0

    # -- registry ------------------------------------------------------------
    def order_class(self, kind: str) -> int:
        try:
            return self.order[kind]
        except KeyError:
            raise UnknownEventKind(
                f"event kind {kind!r} has no order class on clock {self.clock!r}; "
                f"register it in the scheduler's order map (known: "
                f"{sorted(self.order)}) — same-instant ordering must be pinned "
                "explicitly, never inferred from names"
            ) from None

    # -- scheduling ----------------------------------------------------------
    def schedule(
        self, time: float, kind: str, payload: Any = None, label: str = ""
    ) -> Event:
        """Enqueue ``kind`` at absolute ``time``; returns a cancellable handle."""
        order = self.order_class(kind)
        if time < self.now:
            raise MonotonicTimeError(
                f"cannot schedule {kind!r} at t={time!r} before now={self.now!r} "
                f"on clock {self.clock!r}"
            )
        self._seq += 1
        event = Event(float(time), kind, payload, label, self._seq, order)
        heapq.heappush(self._heap, (event.time, order, event.seq, event))
        self._live += 1
        self._emit("schedule", event.kind, event.time, event.label)
        return event

    def schedule_in(
        self, delay: float, kind: str, payload: Any = None, label: str = ""
    ) -> Event:
        """Enqueue ``kind`` after ``delay`` simulated seconds, stretched by
        :attr:`time_scale` (a stalled clock schedules its futures late)."""
        if delay < 0:
            raise MonotonicTimeError(f"delay must be non-negative, got {delay!r}")
        return self.schedule(self.now + delay * self.time_scale, kind, payload, label)

    def cancel(self, event: Event) -> bool:
        """Revoke a pending event.  A cancelled event never fires; cancelling
        an already-fired or already-cancelled event is a no-op (False)."""
        if not event.live:
            return False
        event.cancelled = True
        self._live -= 1
        self._emit("cancel", event.kind, event.time, event.label)
        return True

    # -- consumption ---------------------------------------------------------
    def __len__(self) -> int:
        """Pending (live) events."""
        return self._live

    @property
    def empty(self) -> bool:
        return self._live == 0

    def _skim(self) -> None:
        """Drop cancelled entries off the top of the heap."""
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)

    @property
    def next_time(self) -> Optional[float]:
        """Time of the next live event (None when empty)."""
        self._skim()
        return self._heap[0][0] if self._heap else None

    def pop(self) -> Optional[Event]:
        """Fire the next live event, advancing :attr:`now` to its time."""
        self._skim()
        if not self._heap:
            return None
        event: Event = heapq.heappop(self._heap)[3]
        if event.time < self.now:  # pragma: no cover - schedule() forbids this
            raise MonotonicTimeError(
                f"event {event.kind!r} at t={event.time!r} fired after "
                f"now={self.now!r} on clock {self.clock!r}"
            )
        event.fired = True
        self._live -= 1
        self.now = event.time
        self._emit("fire", event.kind, event.time, event.label)
        return event

    def pop_due(self, now: float) -> Optional[Event]:
        """Fire the next live event only if it is due at ``now`` (consumers
        whose clocks overshoot event times — engine steps are atomic —
        drain with this instead of :meth:`pop`)."""
        next_time = self.next_time
        if next_time is None or next_time > now:
            return None
        return self.pop()

    def pop_batch(self) -> Iterator[Event]:
        """Lazily fire every live event at the head instant, in order.

        Captures the head time once, then yields :meth:`pop` results while
        the head stays at that instant — so an event a *handler* schedules
        at the same time is yielded too, in its registered order-class
        slot, exactly as a caller re-invoking :meth:`pop` in a loop would
        see it.  Laziness is the point: consumers keep their per-event
        handling between pops, but the batch shape lets them hoist the
        per-instant bookkeeping (fleet advance, autoscale) out of the
        per-event path.
        """
        t = self.next_time
        if t is None:
            return
        while True:
            next_time = self.next_time
            if next_time is None or next_time != t:
                return
            yield self.pop()  # type: ignore[misc]  # head is live, never None

    def pop_due_batch(self, now: float) -> Iterator[Event]:
        """Lazily fire every live event due at or before ``now``, in order.

        The generator re-checks the head each iteration, so events a
        handler schedules inside the drain window are yielded in this
        same sweep — byte-identical to a ``while pop_due(now)`` loop,
        without the per-call ``None`` sentinel handling at the call site.
        """
        while True:
            next_time = self.next_time
            if next_time is None or next_time > now:
                return
            yield self.pop()  # type: ignore[misc]  # head is due, never None

    # -- lifecycle marks ------------------------------------------------------
    def mark(self, kind: str, label: str = "", time: Optional[float] = None) -> None:
        """Emit a non-scheduled lifecycle record (request admitted, breaker
        tripped, replica scaled...) to the trace.  Marks share the closed
        kind registry but not the heap; ``time`` defaults to :attr:`now`."""
        self.order_class(kind)  # closed taxonomy applies to marks too
        if self.trace is not None:
            self._emit("mark", kind, self.now if time is None else time, label)

    def _emit(self, action: str, kind: str, time: float, label: str) -> None:
        if self.trace is not None:
            self.trace.emit(
                {
                    "clock": self.clock,
                    "action": action,
                    "ev": kind,
                    "t": float(time),
                    "label": label,
                }
            )

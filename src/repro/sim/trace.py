"""Structured event traces: typed records, canonical JSONL, byte digests.

Every record is one flat JSON object with a fixed schema:

``i``
    Sink-assigned sequence number (order of emission across *all* clocks
    sharing the sink — the interleaving is part of the trace).
``clock``
    Which scheduler emitted it (``"cluster"``, ``"replica0"``,
    ``"engine"``...).
``action``
    ``schedule`` | ``fire`` | ``cancel`` for kernel heap operations,
    ``mark`` for consumer lifecycle notes (request admitted, breaker
    tripped, replica scaled...).
``ev``
    The event kind, from the scheduler's closed order registry.
``t``
    Simulated time of the event (schedule time for ``schedule``/
    ``cancel``, fire time for ``fire``, the consumer's clock for
    ``mark``).
``label``
    Short human/diff-oriented payload summary (``"r17"``,
    ``"crash@replica2"``...), never an object repr.

**Canonical form.**  :func:`canonical_line` serializes a record with
sorted keys, minimal separators, and ``allow_nan=False``; floats use
Python's shortest-roundtrip repr.  Two runs are *byte-identical* iff
their canonical lines match, and :func:`trace_digest` collapses that to
one blake2b hex digest — what the determinism suite compares.
"""

from __future__ import annotations

import gzip
import hashlib
import io
import json
from typing import IO, Any, Dict, Iterable, List, Mapping, Optional, Union

__all__ = [
    "TraceSink",
    "ListTraceSink",
    "JsonlTraceSink",
    "canonical_line",
    "read_trace",
    "trace_digest",
    "trace_file_digest",
]

Record = Dict[str, Any]


def canonical_line(record: Mapping[str, Any]) -> str:
    """The one canonical serialization of a record (digest/diff unit)."""
    return json.dumps(
        record, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def trace_digest(records: Iterable[Mapping[str, Any]]) -> str:
    """blake2b over the canonicalized records, one hex digest per trace."""
    h = hashlib.blake2b(digest_size=16)
    for record in records:
        h.update(canonical_line(record).encode("utf-8"))
        h.update(b"\n")
    return h.hexdigest()


class TraceSink:
    """Base sink: assigns the global sequence number and dispatches the
    completed record to :meth:`_write`.  Subclasses store or stream."""

    def __init__(self) -> None:
        self._next = 0

    def emit(self, fields: Mapping[str, Any]) -> None:
        record: Record = {"i": self._next, **fields}
        self._next += 1
        self._write(record)

    def _write(self, record: Record) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources (no-op by default)."""

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ListTraceSink(TraceSink):
    """In-memory sink — the test suite's digest source."""

    def __init__(self) -> None:
        super().__init__()
        self.records: List[Record] = []

    def _write(self, record: Record) -> None:
        self.records.append(record)

    def digest(self) -> str:
        return trace_digest(self.records)


class JsonlTraceSink(TraceSink):
    """Streams canonical JSON lines to a path or file object.

    A path ending in ``.gz`` is gzip-compressed with ``mtime=0`` so the
    *compressed* bytes are reproducible too (golden fixtures are checked
    in gzipped).
    """

    def __init__(self, target: Union[str, IO[str]]):
        super().__init__()
        self._owns = isinstance(target, str)
        self._raw: Optional[IO[bytes]] = None
        if isinstance(target, str):
            if target.endswith(".gz"):
                # GzipFile over a fileobj (not gzip.open) so both the
                # mtime and the embedded-filename header fields stay
                # empty — the compressed bytes depend only on content.
                self._raw = open(target, "wb")
                self._fh: IO[str] = io.TextIOWrapper(
                    gzip.GzipFile(
                        filename="", fileobj=self._raw, mode="wb", mtime=0
                    ),
                    encoding="utf-8",
                )
            else:
                self._fh = open(target, "w", encoding="utf-8")
        else:
            self._fh = target

    def _write(self, record: Record) -> None:
        self._fh.write(canonical_line(record))
        self._fh.write("\n")

    def close(self) -> None:
        if self._owns:
            self._fh.close()
            if self._raw is not None:
                self._raw.close()
        else:
            self._fh.flush()


def read_trace(path: str) -> List[Record]:
    """Load a JSONL trace (transparently gunzipping ``.gz``)."""
    opener = gzip.open if path.endswith(".gz") else open
    records: List[Record] = []
    with opener(path, "rt", encoding="utf-8") as fh:  # type: ignore[operator]
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def trace_file_digest(path: str) -> str:
    """Digest of an on-disk trace (identical to digesting its records)."""
    return trace_digest(read_trace(path))

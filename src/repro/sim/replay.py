"""Trace replay diffing: find the first divergent event, with context.

Determinism failures are worthless as a boolean ("digests differ") —
the debugging currency is *which event diverged first* and what both
runs were doing around it.  :func:`diff_traces` walks two record
streams in lockstep, comparing canonical lines, and returns a
:class:`TraceDiff` naming the first divergence plus the shared records
leading up to it.  ``python -m repro trace-diff a.jsonl b.jsonl`` is the
CLI face (exit 0 = byte-identical, exit 1 = divergent, with the report
on stdout).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Mapping, Optional, Sequence

from repro.sim.trace import canonical_line, read_trace, trace_digest

__all__ = ["TraceDiff", "diff_traces", "format_diff", "diff_trace_files"]


@dataclass
class TraceDiff:
    """The first point where two traces disagree."""

    #: Record index of the first divergence (both streams agree before it).
    index: int
    #: The divergent record from each side (None = that stream ended early).
    a: Optional[Mapping[str, Any]]
    b: Optional[Mapping[str, Any]]
    #: Shared records immediately preceding the divergence, oldest first.
    context: List[Mapping[str, Any]] = field(default_factory=list)

    @property
    def kind(self) -> str:
        """Event kind at the divergence (for one-line reporting)."""
        rec = self.a if self.a is not None else self.b
        return str(rec.get("ev", "?")) if rec is not None else "?"


def diff_traces(
    a: Sequence[Mapping[str, Any]],
    b: Sequence[Mapping[str, Any]],
    context: int = 3,
) -> Optional[TraceDiff]:
    """First divergent record between two traces, or None if identical.

    Records are compared by canonical line, so key order and float
    formatting differences in the source files cannot mask or fake a
    divergence.
    """
    n = min(len(a), len(b))
    for i in range(n):
        if canonical_line(a[i]) != canonical_line(b[i]):
            return TraceDiff(
                index=i, a=a[i], b=b[i], context=list(a[max(0, i - context): i])
            )
    if len(a) != len(b):
        longer = a if len(a) > len(b) else b
        return TraceDiff(
            index=n,
            a=a[n] if len(a) > n else None,
            b=b[n] if len(b) > n else None,
            context=list(longer[max(0, n - context): n]),
        )
    return None


def format_diff(diff: Optional[TraceDiff], name_a: str = "a", name_b: str = "b") -> str:
    """Human-readable divergence report naming the first divergent event."""
    if diff is None:
        return "traces are byte-identical"
    lines = [
        f"first divergent event at record {diff.index} (kind={diff.kind!r})"
    ]
    if diff.context:
        lines.append("shared context before divergence:")
        lines += [f"  = {canonical_line(rec)}" for rec in diff.context]
    lines.append(
        f"  {name_a}: " + (canonical_line(diff.a) if diff.a is not None else "<end of trace>")
    )
    lines.append(
        f"  {name_b}: " + (canonical_line(diff.b) if diff.b is not None else "<end of trace>")
    )
    return "\n".join(lines)


def diff_trace_files(
    path_a: str, path_b: str, context: int = 3
) -> Optional[TraceDiff]:
    """Diff two on-disk JSONL traces (``.gz`` transparently supported)."""
    return diff_traces(read_trace(path_a), read_trace(path_b), context=context)


def trace_diff_main(path_a: str, path_b: str, context: int = 3) -> int:
    """CLI body for ``python -m repro trace-diff``: prints digests and, on
    divergence, the first divergent event; returns the process exit code
    (0 identical, 1 divergent, 2 unreadable input)."""
    import sys

    try:
        a, b = read_trace(path_a), read_trace(path_b)
    except OSError as exc:
        print(f"trace-diff: cannot read trace: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:  # malformed JSON line
        print(f"trace-diff: malformed trace: {exc}", file=sys.stderr)
        return 2
    print(f"{path_a}: {len(a)} records, digest {trace_digest(a)}")
    print(f"{path_b}: {len(b)} records, digest {trace_digest(b)}")
    diff = diff_traces(a, b, context=context)
    print(format_diff(diff, name_a=path_a, name_b=path_b))
    return 0 if diff is None else 1

"""Command-line interface.

    python -m repro info
    python -m repro eval    --model phi3ish --task gsm8k_like --method turbo_mixed
    python -m repro perf    --batch 4 --context 8192 --phase decode
    python -m repro serve   --rate 6 --requests 60 --method turbo_mixed
    python -m repro cluster --replicas 4 --policy least_kv --method turbo_mixed
    python -m repro cluster --faults --crash-rate 0.05 --timeout 30 --autoscale
    python -m repro cluster --faults --policy least_kv --trace run.jsonl
    python -m repro trace-diff run_a.jsonl run_b.jsonl
    python -m repro guard   --quick
    python -m repro overload --quick
    python -m repro prefix  --quick
    python -m repro harness table2 fig6 --quick
    python -m repro speed   --check --quick
    python -m repro profile cluster

Everything the CLI prints is produced by the same library calls the tests
and benchmarks exercise; the CLI adds no logic of its own.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

import repro
from repro.cluster import (
    SLO,
    AutoscalerConfig,
    ClusterConfig,
    ClusterSimulator,
    DisaggConfig,
    FaultConfig,
    ROUTER_POLICIES,
)
from repro.harness.common import accuracy_method_registry, render_table
from repro.models.config import MODEL_PRESETS
from repro.perf.attention_costs import METHODS, attention_latency
from repro.perf.e2e import ModelGeometry
from repro.perf.memory import paper_memory_model
from repro.recover import RecoverConfig
from repro.serving import ServingEngine, poisson_workload
from repro.sim import JsonlTraceSink, trace_file_digest
from repro.sim.replay import trace_diff_main
from repro.tasks import TASK_PRESETS, task_for_model
from repro.tasks.recall import evaluate_backend

__all__ = ["main", "build_parser"]


def _cmd_info(args: argparse.Namespace) -> int:
    del args
    print(f"repro {repro.__version__} — TurboAttention (MLSys 2025) reproduction")
    print(f"models : {', '.join(sorted(MODEL_PRESETS))}")
    print(f"tasks  : {', '.join(sorted(TASK_PRESETS))}")
    print(f"accuracy methods : {', '.join(sorted(accuracy_method_registry()))}")
    print(f"perf methods     : {', '.join(sorted(METHODS))}")
    return 0


def _cmd_eval(args: argparse.Namespace) -> int:
    registry = accuracy_method_registry()
    methods = [args.method] if args.method != "all" else list(registry)
    task, model = task_for_model(args.task, args.model)
    rows = []
    for name in methods:
        res = evaluate_backend(registry[name], task, model)
        rows.append([name, f"{res.accuracy * 100:.1f}", f"{res.effective_bits:.2f}"])
    print(render_table(
        ["method", "accuracy %", "bits/value"], rows,
        title=f"{args.task} on {args.model}",
    ))
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    model = ModelGeometry.phi3_medium()
    mem = paper_memory_model(model)
    prefill = args.phase == "prefill"
    geom = model.attention_geometry(
        args.batch, args.context if prefill else 1, args.context
    )
    base = attention_latency(METHODS["fp16"], geom, prefill)
    rows = []
    for name, spec in METHODS.items():
        fits = mem.fits(spec, args.batch, args.context)
        lat = attention_latency(spec, geom, prefill)
        rows.append([
            name,
            f"{lat * 1e3:.3f}",
            f"{base / lat:.2f}x",
            "yes" if fits else "OOM",
        ])
    print(render_table(
        ["method", f"{args.phase} latency (ms)", "vs fp16", "fits"],
        rows,
        title=f"Attention {args.phase}, batch={args.batch}, context={args.context} "
              f"(Phi3-medium, A100-80GB)",
    ))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    model = ModelGeometry.phi3_medium()
    workload = poisson_workload(
        args.requests, arrival_rate=args.rate, rng=np.random.default_rng(args.seed)
    )
    methods = [args.method] if args.method != "all" else list(METHODS)
    if args.trace and len(methods) > 1:
        print("--trace records one run: pick a single --method", file=sys.stderr)
        return 2
    rows = []
    for name in methods:
        sink = JsonlTraceSink(args.trace) if args.trace else None
        m = ServingEngine(model, METHODS[name], trace=sink).run(workload)
        if sink is not None:
            sink.close()
        rows.append([
            name, m.completed, f"{m.throughput_tokens_per_s:.0f}",
            f"{m.mean_ttft:.2f}", f"{m.p95_ttft:.2f}", m.preemptions,
        ])
    print(render_table(
        ["method", "done", "tok/s", "mean TTFT", "p95 TTFT", "preempt"], rows,
        title=f"Serving {args.requests} requests @ {args.rate}/s",
    ))
    if args.trace:
        print(f"trace: {args.trace} (digest {trace_file_digest(args.trace)})")
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    model = ModelGeometry.phi3_medium()
    workload = poisson_workload(
        args.requests,
        arrival_rate=args.rate,
        rng=np.random.default_rng(args.seed),
        n_sessions=args.sessions,
    )
    slo = SLO(ttft_s=args.slo_ttft, tpot_s=args.slo_tpot)
    autoscaler = None
    if args.autoscale:
        autoscaler = AutoscalerConfig(
            min_replicas=args.replicas, max_replicas=args.max_replicas
        )
    faults = None
    if args.faults:
        faults = FaultConfig(
            seed=args.fault_seed,
            crash_rate=args.crash_rate,
            stall_rate=args.stall_rate,
            crash_downtime_s=args.downtime,
            stall_slowdown=args.stall_slowdown,
            request_timeout_s=args.timeout,
            max_retries=args.max_retries,
            migration_drop_rate=args.migration_drop_rate,
            migration_corrupt_rate=args.migration_corrupt_rate,
            link_stall_rate=args.link_stall_rate,
        )
    recover = None
    if args.recover:
        recover = RecoverConfig(
            snapshot_interval_s=args.snapshot_interval,
            keep_epochs=args.keep_epochs,
            corrupt_rate=args.snapshot_corrupt_rate,
        )
    disagg = None
    if args.disagg:
        n_prefill = args.prefill
        n_decode = args.replicas - n_prefill
        if n_prefill < 1 or n_decode < 1:
            print("--disagg needs --replicas > --prefill >= 1", file=sys.stderr)
            return 2
        disagg = DisaggConfig(n_prefill=n_prefill, n_decode=n_decode)
    policies = list(ROUTER_POLICIES) if args.policy == "all" else [args.policy]
    if args.trace and len(policies) > 1:
        print("--trace records one run: pick a single --policy", file=sys.stderr)
        return 2
    rows = []
    for policy in policies:
        config = ClusterConfig(
            n_replicas=args.replicas,
            tp=args.tp,
            policy=policy,
            slo=slo,
            autoscaler=autoscaler,
            faults=faults,
            disagg=disagg,
            recover=recover,
        )
        sink = JsonlTraceSink(args.trace) if args.trace else None
        m = ClusterSimulator(
            model, METHODS[args.method], config, trace=sink
        ).run(workload)
        if sink is not None:
            sink.close()
        row = [
            policy,
            m.completed,
            f"{m.goodput_rps:.2f}",
            f"{m.slo_attainment * 100:.0f}%",
            f"{m.p50_ttft:.2f}", f"{m.p95_ttft:.2f}", f"{m.p99_ttft:.2f}",
            f"{m.p50_tpot * 1e3:.0f}", f"{m.p95_tpot * 1e3:.0f}",
            f"{m.p99_tpot * 1e3:.0f}",
            f"{m.final_replicas}/{m.peak_replicas}",
            m.preemptions,
        ]
        if faults is not None:
            row += [
                m.failed, m.retries, m.crashes + m.stalls + m.timeouts,
                m.wasted_prefill_tokens, f"{m.availability * 100:.0f}%",
            ]
        if recover is not None:
            row += [
                m.snapshots_taken, m.warm_restarts, m.recovered_requests,
                m.restored_prefill_tokens + m.restored_decode_tokens,
            ]
        rows.append(row)
    headers = [
        "policy", "done", "goodput/s", "SLO att",
        "p50 TTFT", "p95 TTFT", "p99 TTFT",
        "p50 TPOT ms", "p95 TPOT ms", "p99 TPOT ms",
        "replicas", "preempt",
    ]
    if faults is not None:
        headers += ["failed", "retries", "faults", "re-prefill tok", "avail"]
    if recover is not None:
        headers += ["snaps", "warm", "recovered", "restored tok"]
    title = (
        f"Cluster: {args.requests} requests @ {args.rate}/s, "
        f"{args.replicas} x tp={args.tp} replicas, method={args.method}, "
        f"SLO ttft<={args.slo_ttft}s tpot<={args.slo_tpot}s"
    )
    if faults is not None:
        title += (
            f", faults(seed={faults.seed}, crash={faults.crash_rate}/s, "
            f"stall={faults.stall_rate}/s)"
        )
    print(render_table(headers, rows, title=title))
    if args.trace:
        print(f"trace: {args.trace} (digest {trace_file_digest(args.trace)})")
    return 0


def _cmd_trace_diff(args: argparse.Namespace) -> int:
    return trace_diff_main(args.a, args.b, context=args.context)


def _cmd_guard(args: argparse.Namespace) -> int:
    from repro.harness.guard import main as guard_main

    guard_main(quick=args.quick)
    return 0


def _cmd_overload(args: argparse.Namespace) -> int:
    from repro.harness.overload import main as overload_main

    overload_main(quick=args.quick)
    return 0


def _cmd_disagg(args: argparse.Namespace) -> int:
    from repro.harness.disagg import main as disagg_main

    disagg_main(quick=args.quick)
    return 0


def _cmd_prefix(args: argparse.Namespace) -> int:
    from repro.harness.prefix import main as prefix_main

    prefix_main(quick=args.quick)
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    from repro.harness.recover import main as recover_main

    recover_main(quick=args.quick)
    return 0


def _cmd_speed(args: argparse.Namespace) -> int:
    import json

    from repro.perf import speed

    results = speed.run_speed_suite(quick=args.quick)
    if args.check:
        baseline = json.loads(args.baseline.read_text())
        rows, failures = speed.compare_to_baseline(
            results, baseline, tolerance=args.tolerance
        )
        scale = results["calibration_s"] / baseline["calibration_s"]
        print(speed.format_table(rows, scale))
        if failures:
            print(f"perf gate FAILED: {', '.join(failures)} regressed "
                  f"beyond {args.tolerance:.0%}")
            return 1
        print("perf gate OK")
        return 0
    print(json.dumps(results, indent=2))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import cProfile
    import pstats

    from repro.perf import speed

    scenarios = {
        "prefill": lambda: speed.bench_prefill(repeats=1),
        "decode": lambda: speed.bench_decode(repeats=1),
        "engine": speed.bench_engine,
        "cluster": speed.bench_cluster,
    }
    profiler = cProfile.Profile()
    profiler.enable()
    scenarios[args.scenario]()
    profiler.disable()
    pstats.Stats(profiler).sort_stats("cumulative").print_stats(args.top)
    return 0


def _cmd_harness(args: argparse.Namespace) -> int:
    from repro.harness.run_all import main as run_all_main

    argv = []
    if args.quick:
        argv.append("--quick")
    if args.names:
        argv += ["--only", *args.names]
    return run_all_main(argv)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="versions, presets, method registries").set_defaults(
        fn=_cmd_info
    )

    p_eval = sub.add_parser("eval", help="accuracy on a recall task")
    p_eval.add_argument("--model", default="phi3ish", choices=sorted(MODEL_PRESETS))
    p_eval.add_argument("--task", default="gsm8k_like", choices=sorted(TASK_PRESETS))
    p_eval.add_argument(
        "--method", default="all",
        choices=["all", *sorted(accuracy_method_registry())],
    )
    p_eval.set_defaults(fn=_cmd_eval)

    p_perf = sub.add_parser("perf", help="attention latency from the cost model")
    p_perf.add_argument("--batch", type=int, default=4)
    p_perf.add_argument("--context", type=int, default=8192)
    p_perf.add_argument("--phase", default="decode", choices=["prefill", "decode"])
    p_perf.set_defaults(fn=_cmd_perf)

    p_serve = sub.add_parser("serve", help="serving simulation")
    p_serve.add_argument("--rate", type=float, default=6.0)
    p_serve.add_argument("--requests", type=int, default=60)
    p_serve.add_argument("--method", default="all", choices=["all", *sorted(METHODS)])
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument("--trace", default=None, metavar="PATH",
                         help="write a JSONL event trace of the run "
                              "(.gz compresses; requires a single method)")
    p_serve.set_defaults(fn=_cmd_serve)

    p_cluster = sub.add_parser(
        "cluster", help="multi-replica cluster serving simulation"
    )
    p_cluster.add_argument("--replicas", type=int, default=2)
    p_cluster.add_argument("--tp", type=int, default=1,
                           help="tensor-parallel degree per replica")
    p_cluster.add_argument(
        "--policy", default="all", choices=["all", *ROUTER_POLICIES]
    )
    p_cluster.add_argument("--method", default="turbo_mixed", choices=sorted(METHODS))
    p_cluster.add_argument("--rate", type=float, default=8.0)
    p_cluster.add_argument("--requests", type=int, default=80)
    p_cluster.add_argument("--sessions", type=int, default=16)
    p_cluster.add_argument("--seed", type=int, default=0)
    p_cluster.add_argument("--slo-ttft", type=float, default=15.0,
                           help="TTFT deadline (s)")
    p_cluster.add_argument("--slo-tpot", type=float, default=0.25,
                           help="TPOT deadline (s)")
    p_cluster.add_argument("--autoscale", action="store_true",
                           help="enable the queue-depth autoscaler")
    p_cluster.add_argument("--max-replicas", type=int, default=8)
    p_cluster.add_argument("--faults", action="store_true",
                           help="enable seeded fault injection")
    p_cluster.add_argument("--fault-seed", type=int, default=0)
    p_cluster.add_argument("--crash-rate", type=float, default=0.05,
                           help="replica crashes per simulated second")
    p_cluster.add_argument("--stall-rate", type=float, default=0.05,
                           help="transient stalls per simulated second")
    p_cluster.add_argument("--stall-slowdown", type=float, default=4.0)
    p_cluster.add_argument("--downtime", type=float, default=30.0,
                           help="crash downtime before restart (s)")
    p_cluster.add_argument("--timeout", type=float, default=None,
                           help="per-dispatch TTFT deadline (s)")
    p_cluster.add_argument("--max-retries", type=int, default=3,
                           help="re-dispatch budget before a request FAILs")
    p_cluster.add_argument("--disagg", action="store_true",
                           help="split the fleet into prefill/decode pools "
                                "with KV migration between them")
    p_cluster.add_argument("--prefill", type=int, default=1,
                           help="prefill-pool size under --disagg (decode "
                                "pool gets the remaining replicas)")
    p_cluster.add_argument("--migration-drop-rate", type=float, default=0.0,
                           help="probability a KV transfer is dropped "
                                "(--faults + --disagg)")
    p_cluster.add_argument("--migration-corrupt-rate", type=float, default=0.0,
                           help="probability a KV transfer arrives corrupted "
                                "(--faults + --disagg)")
    p_cluster.add_argument("--recover", action="store_true",
                           help="crash-consistent checkpointing + warm "
                                "restart instead of cold retry")
    p_cluster.add_argument("--snapshot-interval", type=float, default=5.0,
                           help="seconds between per-replica snapshots "
                                "(--recover)")
    p_cluster.add_argument("--snapshot-corrupt-rate", type=float, default=0.0,
                           help="probability a written snapshot epoch is "
                                "corrupted at rest (--recover)")
    p_cluster.add_argument("--keep-epochs", type=int, default=2,
                           help="snapshot epochs retained per replica "
                                "(--recover)")
    p_cluster.add_argument("--link-stall-rate", type=float, default=0.0,
                           help="fleet link-congestion windows per second "
                                "(--faults + --disagg)")
    p_cluster.add_argument("--trace", default=None, metavar="PATH",
                           help="write a JSONL event trace of the run "
                                "(.gz compresses; requires a single policy)")
    p_cluster.set_defaults(fn=_cmd_cluster)

    p_td = sub.add_parser(
        "trace-diff",
        help="compare two JSONL event traces; exit 0 iff byte-identical, "
             "else print the first divergent event with context",
    )
    p_td.add_argument("a", help="first trace (.jsonl or .jsonl.gz)")
    p_td.add_argument("b", help="second trace")
    p_td.add_argument("--context", type=int, default=3,
                      help="shared records to print before the divergence")
    p_td.set_defaults(fn=_cmd_trace_diff)

    p_g = sub.add_parser(
        "guard",
        help="numerics-guard demo: chaos persistence matrix + precision "
             "escalation vs the analytic attention bound",
    )
    p_g.add_argument("--quick", action="store_true")
    p_g.set_defaults(fn=_cmd_guard)

    p_o = sub.add_parser(
        "overload",
        help="overload-protection demo: admission control, deadline "
             "shedding, and precision brownout on a surge workload",
    )
    p_o.add_argument("--quick", action="store_true")
    p_o.set_defaults(fn=_cmd_overload)

    p_d = sub.add_parser(
        "disagg",
        help="disaggregated prefill/decode demo: fault-tolerant KV "
             "migration, salvage recovery, and the compression-makes-"
             "it-viable comparison against a unified fleet",
    )
    p_d.add_argument("--quick", action="store_true")
    p_d.set_defaults(fn=_cmd_disagg)

    p_r = sub.add_parser(
        "recover",
        help="checkpointing & warm-restart demo: crash-consistent "
             "snapshots, WAL replay, the salvage recovery ladder, and "
             "graceful drain / rolling restart fleet ops",
    )
    p_r.add_argument("--quick", action="store_true")
    p_r.set_defaults(fn=_cmd_recover)

    p_p = sub.add_parser(
        "prefix",
        help="prefix-cache & multi-tenancy demo: content-addressed KV "
             "sharing, tenant fair share, and locality routing under "
             "Zipf traffic",
    )
    p_p.add_argument("--quick", action="store_true")
    p_p.set_defaults(fn=_cmd_prefix)

    p_sp = sub.add_parser(
        "speed",
        help="run the pinned speed scenarios (kernels, engine, cluster); "
             "--check gates against the committed baseline with machine "
             "normalization",
    )
    p_sp.add_argument("--quick", action="store_true", help="CI-sized scenarios")
    p_sp.add_argument(
        "--check", action="store_true",
        help="compare against --baseline; nonzero exit on regression",
    )
    p_sp.add_argument(
        "--baseline", type=Path, default=Path("BENCH_speed_baseline.json"),
        help="baseline JSON for --check (default: repo-root committed file)",
    )
    p_sp.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed fractional regression after normalization (default 0.25)",
    )
    p_sp.set_defaults(fn=_cmd_speed)

    p_pr = sub.add_parser(
        "profile",
        help="cProfile one pinned speed scenario, top cumulative functions",
    )
    p_pr.add_argument(
        "scenario", choices=["prefill", "decode", "engine", "cluster"]
    )
    p_pr.add_argument("--top", type=int, default=20, help="rows to print")
    p_pr.set_defaults(fn=_cmd_profile)

    p_h = sub.add_parser("harness", help="run table/figure regenerators")
    p_h.add_argument("names", nargs="*", help="subset (default: all)")
    p_h.add_argument("--quick", action="store_true")
    p_h.set_defaults(fn=_cmd_harness)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())

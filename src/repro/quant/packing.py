"""Sub-byte code packing.

The storage accounting elsewhere in the library charges INT4/INT2 codes at
their logical width; this module provides the *actual* bit-packing a
deployment would use, so the claimed footprints are realizable:

* INT4: two codes per byte (low nibble first).
* INT2: four codes per byte (lowest pair first).
* INT3: packed 8-codes-per-3-bytes via a 24-bit little-endian group.

Pack/unpack are exact inverses for codes within range; both operate on the
last axis and require (pad to) a multiple of the packing group.  The KV
cache can round-trip its blocks through these to validate that metadata +
packed payload equals the reported ``storage_bits``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["pack_codes", "unpack_codes", "packed_nbytes"]

_GROUP = {2: 4, 3: 8, 4: 2, 8: 1}


def packed_nbytes(n_codes: int, bits: int) -> int:
    """Bytes needed to pack ``n_codes`` values of width ``bits``."""
    if bits not in _GROUP:
        raise ValueError(f"unsupported pack width: {bits}")
    group = _GROUP[bits]
    n_groups = -(-n_codes // group)
    return n_groups * (group * bits // 8)


def pack_codes(codes: np.ndarray, bits: int) -> Tuple[np.ndarray, int]:
    """Pack unsigned codes along the last axis.

    Returns ``(packed, original_length)`` where ``packed`` is a uint8 array
    whose last axis holds the packed payload.  Codes must lie in
    ``[0, 2^bits - 1]``.
    """
    if bits not in _GROUP:
        raise ValueError(f"unsupported pack width: {bits}")
    codes = np.asarray(codes)
    if not np.issubdtype(codes.dtype, np.integer):
        raise TypeError("codes must be integers")
    hi = 2**bits - 1
    if codes.size and (codes.min() < 0 or codes.max() > hi):
        raise ValueError(f"codes out of range for {bits}-bit packing")
    n = codes.shape[-1]
    if bits == 8:
        return codes.astype(np.uint8), n

    group = _GROUP[bits]
    pad = (-n) % group
    if pad:
        codes = np.concatenate(
            [codes, np.zeros(codes.shape[:-1] + (pad,), dtype=codes.dtype)], axis=-1
        )
    c = codes.astype(np.uint32).reshape(codes.shape[:-1] + (-1, group))
    if bits == 4:
        packed = (c[..., 0] | (c[..., 1] << 4)).astype(np.uint8)
        packed = packed.reshape(packed.shape[:-1] + (-1,))
    elif bits == 2:
        packed = (
            c[..., 0] | (c[..., 1] << 2) | (c[..., 2] << 4) | (c[..., 3] << 6)
        ).astype(np.uint8)
        packed = packed.reshape(packed.shape[:-1] + (-1,))
    else:  # bits == 3: 8 codes -> 24 bits -> 3 bytes
        word = np.zeros(c.shape[:-1], dtype=np.uint32)
        for i in range(8):
            word |= c[..., i] << (3 * i)
        b0 = (word & 0xFF).astype(np.uint8)
        b1 = ((word >> 8) & 0xFF).astype(np.uint8)
        b2 = ((word >> 16) & 0xFF).astype(np.uint8)
        packed = np.stack([b0, b1, b2], axis=-1)
        packed = packed.reshape(packed.shape[:-2] + (-1,))
    return packed, n


def unpack_codes(packed: np.ndarray, bits: int, length: int) -> np.ndarray:
    """Inverse of :func:`pack_codes`; returns uint8 codes of ``length``."""
    if bits not in _GROUP:
        raise ValueError(f"unsupported pack width: {bits}")
    packed = np.asarray(packed, dtype=np.uint8)
    if bits == 8:
        return packed[..., :length]
    if bits == 4:
        lo = packed & 0x0F
        hi = packed >> 4
        codes = np.stack([lo, hi], axis=-1).reshape(packed.shape[:-1] + (-1,))
    elif bits == 2:
        parts = [(packed >> shift) & 0x3 for shift in (0, 2, 4, 6)]
        codes = np.stack(parts, axis=-1).reshape(packed.shape[:-1] + (-1,))
    else:  # bits == 3
        triple = packed.reshape(packed.shape[:-1] + (-1, 3)).astype(np.uint32)
        word = triple[..., 0] | (triple[..., 1] << 8) | (triple[..., 2] << 16)
        parts = [((word >> (3 * i)) & 0x7).astype(np.uint8) for i in range(8)]
        codes = np.stack(parts, axis=-1).reshape(packed.shape[:-1] + (-1,))
    return codes[..., :length].astype(np.uint8)

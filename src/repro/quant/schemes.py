"""Uniform quantization schemes (Eq. 3/4 of the paper).

Two families are provided:

* **Symmetric**: ``Q(x) = round(x / s)`` with ``s = max|x| / max_code`` and a
  zero-point of 0.  TurboAttention uses ``max_code = 119`` for its INT8 stage
  (Algorithm 1), leaving headroom below 127 so that decode-time outliers can
  be clamped into the *frozen* prefill scale without overflow.
* **Asymmetric**: ``Q(x) = round((x - min) / s)`` with
  ``s = (max - min) / (2^bits - 1)``, producing unsigned codes in
  ``[0, 2^bits - 1]``.  Used for the INT4/INT2 storage stage.

All functions take an ``axis`` argument: ``None`` means per-tensor statistics,
an integer (or tuple) means the reduction runs over that axis so each slice
along the *remaining* axes receives its own scale (per-channel / per-token
quantization).  Group quantization is built from these via
:func:`grouped_reshape`.

Note the paper's Eq. 4 swaps the "sym."/"asym." labels; we implement the
standard definitions, which also match Algorithm 1's use of
``s = max(abs(x)) / 119`` for the symmetric stage.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

__all__ = [
    "int_range",
    "symmetric_scale",
    "quantize_symmetric",
    "dequantize_symmetric",
    "quantize_asymmetric",
    "dequantize_asymmetric",
    "grouped_reshape",
    "grouped_unreshape",
]

Axis = Union[None, int, Tuple[int, ...]]

# Scale denominators below this threshold are snapped to a small epsilon so a
# constant-zero tensor quantizes to all-zero codes instead of dividing by 0.
_EPS = 1e-12

# Paper's symmetric INT8 code bound (Algorithm 1): max(abs(x)) / 119.
TURBO_INT8_MAX_CODE = 119


def int_range(bits: int, symmetric: bool) -> Tuple[int, int]:
    """Return the inclusive ``(lo, hi)`` integer code range for a scheme.

    Symmetric codes are signed and span ``[-(2^{b-1}-1), 2^{b-1}-1]`` (the
    "restricted" range that keeps negation closed).  Asymmetric codes are
    unsigned and span ``[0, 2^b - 1]``.
    """
    if bits < 2 or bits > 16:
        raise ValueError(f"unsupported bit-width: {bits}")
    if symmetric:
        hi = 2 ** (bits - 1) - 1
        return -hi, hi
    return 0, 2**bits - 1


def _keepdims_stat(x: np.ndarray, axis: Axis, fn) -> np.ndarray:
    """Reduce ``x`` over ``axis`` with keepdims so results broadcast back."""
    if axis is None:
        return fn(x)
    return fn(x, axis=axis, keepdims=True)


def symmetric_scale(
    x: np.ndarray, bits: int = 8, axis: Axis = None, max_code: Optional[int] = None
) -> np.ndarray:
    """Compute the symmetric scale ``max|x| / max_code``.

    ``max_code`` defaults to the restricted signed bound ``2^{b-1}-1``; pass
    :data:`TURBO_INT8_MAX_CODE` (119) for the paper's INT8 stage.
    """
    if max_code is None:
        max_code = int_range(bits, symmetric=True)[1]
    absmax = _keepdims_stat(np.abs(np.asarray(x, dtype=np.float64)), axis, np.max)
    return np.maximum(absmax, _EPS) / float(max_code)


def quantize_symmetric(
    x: np.ndarray,
    bits: int = 8,
    axis: Axis = None,
    max_code: Optional[int] = None,
    scale: Optional[np.ndarray] = None,
    clamp_code: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Symmetric quantization: returns ``(codes, scale)``.

    Parameters
    ----------
    x:
        Input tensor (any float dtype; promoted to float64).
    bits:
        Target bit-width.  Codes are returned as the narrowest signed NumPy
        integer dtype that holds them (int8 for <= 8 bits).
    axis:
        Reduction axis/axes for the scale statistics (see module docstring).
    max_code:
        Denominator of the scale; defaults to ``2^{b-1}-1``.
    scale:
        Pre-computed scale to reuse (the "universal scale" of the enhanced KV
        buffer, §3.3).  When given, out-of-range values are clamped — this is
        exactly the paper's outlier-clamping behaviour.
    clamp_code:
        Code magnitude bound used when clamping under a reused ``scale``.
        Defaults to ``max_code``.
    """
    x = np.asarray(x, dtype=np.float64)
    if max_code is None:
        max_code = int_range(bits, symmetric=True)[1]
    if scale is None:
        scale = symmetric_scale(x, bits=bits, axis=axis, max_code=max_code)
    else:
        scale = np.asarray(scale, dtype=np.float64)
    bound = int(max_code if clamp_code is None else clamp_code)
    codes = np.rint(x / scale)
    codes = np.clip(codes, -bound, bound)
    dtype = np.int8 if bits <= 8 else np.int16
    return codes.astype(dtype), scale


def dequantize_symmetric(codes: np.ndarray, scale: np.ndarray) -> np.ndarray:
    """Inverse of :func:`quantize_symmetric`: ``x_hat = codes * scale``."""
    return codes.astype(np.float64) * np.asarray(scale, dtype=np.float64)


def quantize_asymmetric(
    x: np.ndarray, bits: int, axis: Axis = None
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Asymmetric quantization: returns ``(codes, scale, zero_point)``.

    ``zero_point`` is the per-slice minimum (the paper's ``z = x_min``);
    codes are unsigned in ``[0, 2^bits - 1]``.
    """
    x = np.asarray(x, dtype=np.float64)
    lo, hi = int_range(bits, symmetric=False)
    xmin = _keepdims_stat(x, axis, np.min)
    xmax = _keepdims_stat(x, axis, np.max)
    scale = np.maximum(xmax - xmin, _EPS) / float(hi)
    codes = np.clip(np.rint((x - xmin) / scale), lo, hi)
    dtype = np.uint8 if bits <= 8 else np.uint16
    return codes.astype(dtype), scale, xmin


def dequantize_asymmetric(
    codes: np.ndarray, scale: np.ndarray, zero_point: np.ndarray
) -> np.ndarray:
    """Inverse of :func:`quantize_asymmetric`: ``x_hat = codes*s + z``."""
    return codes.astype(np.float64) * np.asarray(scale, dtype=np.float64) + np.asarray(
        zero_point, dtype=np.float64
    )


def grouped_reshape(x: np.ndarray, group_size: int, axis: int) -> np.ndarray:
    """Split ``axis`` of ``x`` into contiguous groups of ``group_size``.

    Returns a view-shaped array with ``axis`` replaced by two axes
    ``(n_groups, group_size)``.  The axis length must divide evenly; callers
    that handle ragged tails (e.g. KV caches) pad before grouping.
    """
    x = np.asarray(x)
    axis = axis % x.ndim
    n = x.shape[axis]
    if n % group_size != 0:
        raise ValueError(
            f"axis length {n} is not divisible by group size {group_size}"
        )
    new_shape = x.shape[:axis] + (n // group_size, group_size) + x.shape[axis + 1 :]
    return x.reshape(new_shape)


def grouped_unreshape(x: np.ndarray, axis: int) -> np.ndarray:
    """Inverse of :func:`grouped_reshape`: merge ``(axis, axis+1)`` back."""
    x = np.asarray(x)
    axis = axis % x.ndim
    new_shape = x.shape[:axis] + (x.shape[axis] * x.shape[axis + 1],) + x.shape[axis + 2 :]
    return x.reshape(new_shape)

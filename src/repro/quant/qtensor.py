"""Quantized-tensor container with honest storage accounting.

:class:`QuantizedTensor` bundles integer codes with their scales and
zero-points, remembers the scheme that produced them, and can report the
number of *bits actually stored* (codes + metadata).  The storage numbers
feed the memory model that reproduces the paper's ">4.4x KV cache
compression" claim and the OOM boundaries in Figure 6 / Figure 7a.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.quant.schemes import (
    dequantize_asymmetric,
    dequantize_symmetric,
    quantize_asymmetric,
    quantize_symmetric,
)

__all__ = ["Granularity", "QuantizedTensor"]


class Granularity(enum.Enum):
    """Statistic granularity of a quantizer."""

    PER_TENSOR = "per_tensor"
    PER_CHANNEL = "per_channel"
    PER_TOKEN = "per_token"
    PER_BLOCK = "per_block"
    PER_GROUP = "per_group"


@dataclass
class QuantizedTensor:
    """Integer codes plus the metadata needed to reconstruct values.

    Attributes
    ----------
    codes:
        Integer code array (signed for symmetric, unsigned for asymmetric).
    scale:
        Scale array broadcastable against ``codes``.
    zero_point:
        Zero-point array (``None`` for symmetric schemes).
    bits:
        Logical bit-width of the codes (the dtype may be wider; storage
        accounting uses this value).
    symmetric:
        Whether the scheme was symmetric.
    granularity:
        Granularity of the statistics, for introspection only.
    scale_bits:
        Bits used to store each scale entry (16 = FP16 scales; progressive
        quantization stores INT8 scales and passes 8).
    zero_bits:
        Bits per zero-point entry.
    """

    codes: np.ndarray
    scale: np.ndarray
    zero_point: Optional[np.ndarray] = None
    bits: int = 8
    symmetric: bool = True
    granularity: Granularity = Granularity.PER_TENSOR
    scale_bits: int = 16
    zero_bits: int = 16
    extra_bits: int = field(default=0, repr=False)

    @classmethod
    def from_float(
        cls,
        x: np.ndarray,
        bits: int,
        symmetric: bool,
        axis=None,
        granularity: Granularity = Granularity.PER_TENSOR,
        max_code: Optional[int] = None,
    ) -> "QuantizedTensor":
        """Quantize ``x`` with the given scheme and wrap the result."""
        if symmetric:
            codes, scale = quantize_symmetric(x, bits=bits, axis=axis, max_code=max_code)
            return cls(
                codes=codes,
                scale=scale,
                zero_point=None,
                bits=bits,
                symmetric=True,
                granularity=granularity,
            )
        codes, scale, zero = quantize_asymmetric(x, bits=bits, axis=axis)
        return cls(
            codes=codes,
            scale=scale,
            zero_point=zero,
            bits=bits,
            symmetric=False,
            granularity=granularity,
        )

    def dequantize(self) -> np.ndarray:
        """Reconstruct the float tensor."""
        if self.symmetric:
            return dequantize_symmetric(self.codes, self.scale)
        assert self.zero_point is not None
        return dequantize_asymmetric(self.codes, self.scale, self.zero_point)

    @property
    def shape(self):
        return self.codes.shape

    @property
    def storage_bits(self) -> int:
        """Total bits stored: codes + scales + zero-points + extras."""
        n = int(np.prod(self.codes.shape)) if self.codes.size else 0
        total = n * self.bits
        total += int(np.prod(self.scale.shape)) * self.scale_bits
        if self.zero_point is not None:
            total += int(np.prod(self.zero_point.shape)) * self.zero_bits
        return total + self.extra_bits

    @property
    def storage_bytes(self) -> float:
        return self.storage_bits / 8.0

    def effective_bits_per_value(self) -> float:
        """Average stored bits per element, including metadata overhead.

        This is the "Bit" column of Table 2 (e.g. grouped 4-bit with FP16
        scales lands slightly above 4.0).
        """
        n = int(np.prod(self.codes.shape))
        if n == 0:
            return 0.0
        return self.storage_bits / n

    def compression_ratio(self, reference_bits: int = 16) -> float:
        """Compression relative to a dense ``reference_bits`` tensor."""
        n = int(np.prod(self.codes.shape))
        if n == 0 or self.storage_bits == 0:
            return 1.0
        return (n * reference_bits) / self.storage_bits

"""Progressive quantization: INT8 (symmetric) -> INT4/INT2 (asymmetric).

This is the storage format of FlashQ (paper §2.3 and §3.1, Algorithm 1).
Stage one quantizes a tile symmetrically to INT8 (``s = max|x|/119``) so the
attention MatMuls can run on integer tensor cores.  Stage two re-compresses
the *INT8 codes themselves* channel-wise with an asymmetric quantizer whose
scale and zero-point are **integers** stored in INT8:

    s_int = ceil((max - min) / (2^bits - 1))
    z_int = round(min / s_int)
    q2    = round(q1 / s_int) - z_int            (codes in [0, 2^bits - 1])

Decompression back to INT8 is pure integer arithmetic —
``q1_hat = (q2 + z_int) * s_int`` — which is what makes the dequantization
path cheap enough to live inside the attention kernel (the contrast with
KIVI/GEAR-style FP16 dequantization is the core of Figure 1b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

__all__ = [
    "ProgressiveConfig",
    "ProgressiveBlock",
    "pq_compress",
    "pq_decompress_to_int8",
    "pq_dequantize",
]

_INT8_CLAMP = 127


@dataclass(frozen=True)
class ProgressiveConfig:
    """Configuration of the second (storage) quantization stage.

    Attributes
    ----------
    bits:
        Storage bit-width, 2 or 4 in the paper.
    token_axis:
        Axis indexing tokens inside a tile; channel statistics reduce over
        this axis (channel-wise quantization, Eq. 10).
    """

    bits: int = 4
    token_axis: int = -2

    def __post_init__(self) -> None:
        if self.bits not in (2, 3, 4, 8):
            raise ValueError(f"unsupported progressive bit-width: {self.bits}")


@dataclass
class ProgressiveBlock:
    """A progressively quantized tile of INT8 codes.

    ``codes`` are unsigned ``bits``-wide values; ``s_int``/``z_int`` are the
    integer scale and zero-point per channel (INT8-representable by
    construction).  ``float_scale`` carries the stage-1 symmetric FP16 scale
    of the tile so callers can reconstruct real values.
    """

    codes: np.ndarray
    s_int: np.ndarray
    z_int: np.ndarray
    bits: Union[int, np.ndarray]
    float_scale: np.ndarray

    @property
    def shape(self):
        return self.codes.shape

    @property
    def storage_bits(self) -> int:
        """Stored bits: packed codes + INT8 scale/zero + FP16 tile scale.

        ``bits`` may be a per-head array (head-wise mixed precision); it is
        broadcast against the code array so each element is charged its own
        width.
        """
        if self.codes.size == 0:
            return 0
        bits_map = np.broadcast_to(np.asarray(self.bits), self.codes.shape)
        meta = int(np.prod(self.s_int.shape)) * 8 + int(np.prod(self.z_int.shape)) * 8
        tile_scale = int(np.prod(np.shape(self.float_scale))) * 16
        return int(bits_map.sum()) + meta + tile_scale

    @property
    def storage_bytes(self) -> float:
        return self.storage_bits / 8.0

    def effective_bits_per_value(self) -> float:
        n = int(np.prod(self.codes.shape))
        return self.storage_bits / n if n else 0.0


def pq_compress(
    q1_codes: np.ndarray,
    bits: Union[int, np.ndarray],
    float_scale: np.ndarray,
    token_axis: int = -2,
) -> ProgressiveBlock:
    """Stage-2 compression of INT8 codes to ``bits`` (Algorithm 1, lines
    writing ``K^{q2}`` / ``V^{q2}``).

    Parameters
    ----------
    q1_codes:
        INT8 symmetric codes of a tile, shape ``(..., tokens, channels)`` by
        default (``token_axis`` selects the token axis).
    bits:
        Storage width (2 or 4), either a scalar or an array broadcastable to
        the channel statistics (e.g. shape ``(heads, 1, 1)`` for head-wise
        mixed precision, §3.2).
    float_scale:
        Stage-1 FP16 scale of the tile, retained for dequantization.
    """
    q1 = np.asarray(q1_codes, dtype=np.int32)
    bits_arr = np.asarray(bits)
    if np.any(~np.isin(bits_arr, (2, 3, 4, 8))):
        raise ValueError(f"unsupported progressive bit-width(s): {np.unique(bits_arr)}")
    hi = 2**bits_arr.astype(np.int32) - 1
    cmin = q1.min(axis=token_axis, keepdims=True)
    cmax = q1.max(axis=token_axis, keepdims=True)
    # Integer ceil-divide; a constant channel still gets scale 1.
    s_int = np.maximum((cmax - cmin + hi - 1) // hi, 1).astype(np.int32)
    z_int = np.rint(cmin / s_int).astype(np.int32)
    # round(q1 / s_int) in integer arithmetic: (q1 + s/2) // s for q1
    # shifted non-negative.  NumPy's rint on the float ratio is exact for
    # the magnitudes involved (|q1| <= 127), so use it for clarity.
    codes = np.rint(q1 / s_int).astype(np.int32) - z_int
    codes = np.clip(codes, 0, hi).astype(np.uint8)
    return ProgressiveBlock(
        codes=codes,
        s_int=s_int.astype(np.int16),
        z_int=z_int.astype(np.int16),
        bits=bits,
        float_scale=np.asarray(float_scale, dtype=np.float64),
    )


def pq_decompress_to_int8(block: ProgressiveBlock) -> np.ndarray:
    """Integer decompression back to INT8 codes (Algorithm 2, line
    ``K^{q1} = K^{q2} * s_int + z``).

    The result is clamped to the signed INT8 range; rounding in stage 2 can
    push reconstructions at most one scale step past the original extrema.
    """
    q1_hat = (block.codes.astype(np.int32) + block.z_int.astype(np.int32)) * block.s_int.astype(
        np.int32
    )
    return np.clip(q1_hat, -_INT8_CLAMP, _INT8_CLAMP).astype(np.int8)


def pq_dequantize(block: ProgressiveBlock, float_scale: Optional[np.ndarray] = None) -> np.ndarray:
    """Full dequantization to float: stage-2 integer decode, then stage-1
    symmetric scale.  ``float_scale`` overrides the stored tile scale."""
    scale = block.float_scale if float_scale is None else np.asarray(float_scale)
    return pq_decompress_to_int8(block).astype(np.float64) * scale

"""Quantization-error metrics.

Used by the head-selection ablation (Fig. 7b), the channel-vs-token
comparison (Fig. 10), and throughout the test suite to assert error bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

__all__ = [
    "mse",
    "max_abs_error",
    "relative_frobenius_error",
    "ErrorReport",
    "quantization_error_report",
]


def mse(x: np.ndarray, x_hat: np.ndarray) -> float:
    """Mean squared error."""
    x = np.asarray(x, dtype=np.float64)
    x_hat = np.asarray(x_hat, dtype=np.float64)
    return float(np.mean((x - x_hat) ** 2))


def max_abs_error(x: np.ndarray, x_hat: np.ndarray) -> float:
    """Element-wise worst-case absolute error."""
    return float(np.max(np.abs(np.asarray(x, dtype=np.float64) - np.asarray(x_hat, dtype=np.float64))))


def relative_frobenius_error(x: np.ndarray, x_hat: np.ndarray) -> float:
    """``||x - x_hat||_F / ||x||_F`` (0 for a perfect reconstruction)."""
    x = np.asarray(x, dtype=np.float64)
    denom = np.linalg.norm(x)
    if denom == 0.0:
        return 0.0
    return float(np.linalg.norm(x - np.asarray(x_hat, dtype=np.float64)) / denom)


@dataclass(frozen=True)
class ErrorReport:
    """Bundle of the three standard metrics."""

    mse: float
    max_abs: float
    rel_frobenius: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "mse": self.mse,
            "max_abs": self.max_abs,
            "rel_frobenius": self.rel_frobenius,
        }


def quantization_error_report(x: np.ndarray, x_hat: np.ndarray) -> ErrorReport:
    """Compute all three metrics at once."""
    return ErrorReport(
        mse=mse(x, x_hat),
        max_abs=max_abs_error(x, x_hat),
        rel_frobenius=relative_frobenius_error(x, x_hat),
    )

"""Integer matrix multiplication with scale algebra (paper Eq. 5/6).

GPU INT8 tensor cores multiply int8 operands into int32 accumulators; the
float result is recovered by multiplying with the operand scales.  For two
*symmetric* operands the algebra is just ``s_a * s_b * (A_q @ B_q)`` — the
three zero-point correction terms of Eq. 5 vanish, which is why
TurboAttention quantizes the compute stage symmetrically and reserves
asymmetric quantization for storage only.

:func:`int_matmul` guards against accumulator overflow: with int8 operands
bounded by 127 the worst-case accumulator magnitude is ``K * 127^2``, which
stays inside int32 for any inner dimension up to ~133k — far beyond
attention head dimensions — but the check is kept for safety because the
decode path multiplies decompressed (possibly clamp-extended) codes.  The
guard is *recoverable*: ``on_overflow="chunk"`` splits the inner dimension
into spans whose int32 partials cannot overflow and sums them in an int64
accumulator — exactly the split-K + wide-accumulator trick a real kernel
would use — instead of raising.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["int_matmul", "int32_headroom_ok", "scaled_int_matmul"]

_INT32_MAX = np.iinfo(np.int32).max


def _worst_case_acc(a: np.ndarray, b: np.ndarray) -> int:
    """Worst-case |accumulator| of ``a @ b`` from operand magnitudes."""
    k = a.shape[-1]
    return int(np.max(np.abs(a), initial=0)) * int(np.max(np.abs(b), initial=0)) * int(k)


def int32_headroom_ok(
    a_codes: np.ndarray, b_codes: np.ndarray, fraction: float = 1.0
) -> bool:
    """True when the worst-case accumulator of ``a @ b`` stays within
    ``fraction`` of the int32 range (the numerics guard's headroom check)."""
    a = np.asarray(a_codes)
    b = np.asarray(b_codes)
    return _worst_case_acc(a, b) <= int(fraction * _INT32_MAX)


def _chunked_int_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Split-K integer MatMul: int32-safe chunks, int64 accumulation."""
    k = a.shape[-1]
    per_step = int(np.max(np.abs(a), initial=0)) * int(np.max(np.abs(b), initial=0))
    if per_step > _INT32_MAX:
        # A single product already overflows int32 — no K-split can help;
        # the only recovery is a full-width accumulator throughout.
        return a.astype(np.int64) @ b.astype(np.int64)
    chunk = max(1, _INT32_MAX // max(per_step, 1))
    out_shape = np.broadcast_shapes(a.shape[:-2], b.shape[:-2]) + (
        a.shape[-2], b.shape[-1],
    )
    acc = np.zeros(out_shape, dtype=np.int64)
    for s in range(0, k, chunk):
        e = min(s + chunk, k)
        acc += (a[..., s:e].astype(np.int32) @ b[..., s:e, :].astype(np.int32)).astype(
            np.int64
        )
    return acc


def int_matmul(
    a_codes: np.ndarray, b_codes: np.ndarray, on_overflow: str = "raise"
) -> np.ndarray:
    """Exact integer MatMul with int32 accumulation.

    Both operands must be integer arrays; they are widened to int32 before
    the product, mirroring tensor-core IMMA semantics.  When the
    worst-case accumulator could exceed int32, ``on_overflow`` selects the
    reaction: ``"raise"`` (default) raises ``OverflowError``; ``"chunk"``
    recovers exactly via :func:`_chunked_int_matmul` (split-K int32
    partials summed in int64).
    """
    if on_overflow not in ("raise", "chunk"):
        raise ValueError(f"unknown on_overflow policy: {on_overflow!r}")
    a = np.asarray(a_codes)
    b = np.asarray(b_codes)
    if not np.issubdtype(a.dtype, np.integer) or not np.issubdtype(b.dtype, np.integer):
        raise TypeError("int_matmul requires integer operands")
    worst = _worst_case_acc(a, b)
    if worst > _INT32_MAX:
        if on_overflow == "chunk":
            return _chunked_int_matmul(a, b)
        raise OverflowError(
            f"int32 accumulator could overflow: worst case {worst} for "
            f"K={a.shape[-1]}"
        )
    # NumPy routes integer matmul through a naive C loop; float64 matmul
    # goes through BLAS.  With the worst-case |accumulator| bounded by
    # int32 (checked above, and far below 2**53), every product and every
    # partial sum is an exactly representable float64 integer, so the
    # dgemm result *is* the int32 IMMA result — bit-exact, ~20x faster.
    return (a.astype(np.float64) @ b.astype(np.float64)).astype(np.int32)


def scaled_int_matmul(
    a_codes: np.ndarray,
    a_scale: np.ndarray,
    b_codes: np.ndarray,
    b_scale: np.ndarray,
    a_zero: Optional[np.ndarray] = None,
    b_zero: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Float MatMul of quantized operands via integer arithmetic.

    Implements Eq. 5 in full generality.  For symmetric operands
    (``a_zero is b_zero is None``) this reduces to Eq. 6:
    ``O = s_a * s_b * (A_q @ B_q)``.

    Scales must broadcast against the *output*: for a ``(m, k) @ (k, n)``
    product, a per-row ``a_scale`` has shape ``(m, 1)`` and a per-column
    ``b_scale`` has shape ``(1, n)`` (per-tensor scalars always work).
    Zero-points, when given, are real values (the quantizer's ``x_min``) and
    must broadcast the same way.
    """
    acc = int_matmul(a_codes, b_codes).astype(np.float64)
    a_scale = np.asarray(a_scale, dtype=np.float64)
    b_scale = np.asarray(b_scale, dtype=np.float64)
    out = a_scale * b_scale * acc
    k = a_codes.shape[-1]
    if b_zero is not None:
        # s_a * z_b * sum_k Q(A)
        row_sum = np.asarray(a_codes, dtype=np.int64).sum(axis=-1, keepdims=True)
        out = out + a_scale * np.asarray(b_zero, dtype=np.float64) * row_sum
    if a_zero is not None:
        # s_b * z_a * sum_k Q(B)
        col_sum = np.asarray(b_codes, dtype=np.int64).sum(axis=-2, keepdims=True)
        out = out + b_scale * np.asarray(a_zero, dtype=np.float64) * col_sum
    if a_zero is not None and b_zero is not None:
        out = out + (
            np.asarray(a_zero, dtype=np.float64)
            * np.asarray(b_zero, dtype=np.float64)
            * float(k)
        )
    return out

"""Weight(-and-activation) quantizers for the composition study (Table 5).

The paper's Appendix E shows TurboAttention composing with linear-layer
quantization schemes: LLM.int8() and QServe's W4A8.  These operate on the
projection/FFN weights — orthogonal to the attention-side quantization — so
we implement faithful simplified versions over the NumPy transformer
substrate:

* :class:`LLMInt8Linear` — per-output-channel symmetric INT8 weights with
  mixed-precision decomposition: input features whose activation magnitude
  exceeds a threshold are processed in FP16 (Dettmers et al., 2022).
* :class:`QServeW4A8Linear` — progressive W4A8: weights stored INT4
  (per-channel asymmetric over INT8 symmetric codes, exactly the
  progressive scheme of :mod:`repro.quant.progressive`), activations
  quantized per-token to INT8 at call time.
* :class:`DenseLinear` — the FP16 reference.

All three expose ``__call__(x) -> y`` and ``storage_bits`` so the model
substrate can swap them in and the memory model can account for them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.fp.formats import fp16_matmul, quantize_to_format, FP16
from repro.quant.integer_gemm import int_matmul
from repro.quant.progressive import pq_compress, pq_decompress_to_int8
from repro.quant.schemes import quantize_symmetric, symmetric_scale

__all__ = ["DenseLinear", "LLMInt8Linear", "QServeW4A8Linear", "make_linear"]


@dataclass
class DenseLinear:
    """FP16 dense linear layer ``y = x @ W`` (weights stored FP16)."""

    weight: np.ndarray  # (in_features, out_features)

    def __post_init__(self) -> None:
        self.weight = quantize_to_format(self.weight, FP16)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return fp16_matmul(x, self.weight)

    @property
    def storage_bits(self) -> int:
        return int(np.prod(self.weight.shape)) * 16


class LLMInt8Linear:
    """LLM.int8()-style linear layer.

    Weights are quantized symmetrically per output channel to INT8.  At call
    time, input feature columns whose magnitude exceeds
    ``outlier_threshold`` anywhere in the batch are routed through an FP16
    side path using the original weights; the remainder runs as an INT8
    integer GEMM with per-token activation scales.
    """

    def __init__(self, weight: np.ndarray, outlier_threshold: float = 6.0):
        self.outlier_threshold = float(outlier_threshold)
        self._weight_fp16 = quantize_to_format(weight, FP16)
        # Per-output-channel symmetric INT8 (axis 0 reduces over input dim).
        self.w_codes, self.w_scale = quantize_symmetric(self._weight_fp16, bits=8, axis=0)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        flat = x.reshape(-1, x.shape[-1])
        col_max = np.abs(flat).max(axis=0)
        outliers = col_max > self.outlier_threshold
        y = np.zeros((flat.shape[0], self.w_codes.shape[1]), dtype=np.float64)
        if np.any(~outliers):
            sub = flat[:, ~outliers]
            a_codes, a_scale = quantize_symmetric(sub, bits=8, axis=-1)
            acc = int_matmul(a_codes, self.w_codes[~outliers, :]).astype(np.float64)
            y += a_scale * self.w_scale * acc
        if np.any(outliers):
            y += fp16_matmul(flat[:, outliers], self._weight_fp16[outliers, :])
        return y.reshape(x.shape[:-1] + (self.w_codes.shape[1],))

    @property
    def storage_bits(self) -> int:
        n = int(np.prod(self.w_codes.shape))
        return n * 8 + int(np.prod(self.w_scale.shape)) * 16


class QServeW4A8Linear:
    """QServe-style W4A8 linear layer with progressive weight storage.

    Weights: INT8 symmetric per output channel, then progressive INT4
    asymmetric per channel group (integer scales/zeros) — dequantized to
    INT8 codes once at load (QServe fuses this into the GEMM prologue).
    Activations: per-token symmetric INT8 at call time.
    """

    def __init__(self, weight: np.ndarray, group_size: int = 128):
        w_fp16 = quantize_to_format(weight, FP16)
        w8_codes, w_scale = quantize_symmetric(w_fp16, bits=8, axis=0)
        self.w_scale = w_scale
        # Progressive stage 2 over input-dim groups: treat the input axis as
        # the "token" axis of pq_compress.
        in_features = w8_codes.shape[0]
        gs = min(group_size, in_features)
        pad = (-in_features) % gs
        padded = np.pad(w8_codes, ((0, pad), (0, 0))) if pad else w8_codes
        grouped = padded.reshape(-1, gs, padded.shape[1])
        self._block = pq_compress(grouped, bits=4, float_scale=w_scale, token_axis=-2)
        w8_hat = pq_decompress_to_int8(self._block).reshape(padded.shape)
        self.w_codes = w8_hat[:in_features, :].astype(np.int8)
        self._in_features = in_features

    def __call__(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        a_codes, a_scale = quantize_symmetric(x, bits=8, axis=-1)
        acc = int_matmul(a_codes, self.w_codes).astype(np.float64)
        return a_scale * self.w_scale * acc

    @property
    def storage_bits(self) -> int:
        return self._block.storage_bits + int(np.prod(np.shape(self.w_scale))) * 16


def make_linear(weight: np.ndarray, scheme: str = "fp16", **kwargs):
    """Factory mapping a scheme name to a linear-layer implementation."""
    if scheme == "fp16":
        return DenseLinear(weight)
    if scheme == "llm_int8":
        return LLMInt8Linear(weight, **kwargs)
    if scheme == "qserve_w4a8":
        return QServeW4A8Linear(weight, **kwargs)
    raise ValueError(f"unknown linear quantization scheme: {scheme!r}")

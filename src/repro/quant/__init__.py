"""Quantization primitives used throughout the TurboAttention reproduction.

The subpackage provides:

* :mod:`repro.quant.schemes` — symmetric / asymmetric uniform quantizers with
  per-tensor, per-axis, and grouped granularity (Eq. 3/4 of the paper).
* :mod:`repro.quant.qtensor` — a container bundling integer codes with their
  scales/zero-points, able to report true storage cost and dequantize.
* :mod:`repro.quant.progressive` — two-stage progressive quantization
  (INT8 symmetric -> INT4/INT2 asymmetric with *integer* scales and
  zero-points), the storage format of FlashQ (paper §2.3, §3.1).
* :mod:`repro.quant.integer_gemm` — exact integer matrix multiplication with
  the scale algebra of Eq. 5/6.
* :mod:`repro.quant.error` — error metrics used by the ablations
  (Fig. 7b, Fig. 10).
* :mod:`repro.quant.weights` — weight-only quantizers (LLM.int8-like and
  QServe-like W4A8) used by the Table 5 composition experiment.
"""

from repro.quant.schemes import (
    int_range,
    symmetric_scale,
    quantize_symmetric,
    dequantize_symmetric,
    quantize_asymmetric,
    dequantize_asymmetric,
    grouped_reshape,
    grouped_unreshape,
)
from repro.quant.qtensor import QuantizedTensor, Granularity
from repro.quant.progressive import (
    ProgressiveConfig,
    ProgressiveBlock,
    pq_compress,
    pq_decompress_to_int8,
    pq_dequantize,
)
from repro.quant.integer_gemm import int_matmul, scaled_int_matmul
from repro.quant.packing import pack_codes, unpack_codes, packed_nbytes
from repro.quant.error import (
    mse,
    max_abs_error,
    relative_frobenius_error,
    quantization_error_report,
)

__all__ = [
    "int_range",
    "symmetric_scale",
    "quantize_symmetric",
    "dequantize_symmetric",
    "quantize_asymmetric",
    "dequantize_asymmetric",
    "grouped_reshape",
    "grouped_unreshape",
    "QuantizedTensor",
    "Granularity",
    "ProgressiveConfig",
    "ProgressiveBlock",
    "pq_compress",
    "pq_decompress_to_int8",
    "pq_dequantize",
    "int_matmul",
    "scaled_int_matmul",
    "pack_codes",
    "unpack_codes",
    "packed_nbytes",
    "mse",
    "max_abs_error",
    "relative_frobenius_error",
    "quantization_error_report",
]

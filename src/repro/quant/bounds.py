"""Analytical worst-case error bounds for the quantized attention pipeline.

The paper argues near-losslessness empirically; this module derives the
deterministic bounds behind that robustness, each verified against
measurements by property tests:

* **Symmetric quantization** (no clamping): ``|x - x_hat| <= s / 2``.
* **Progressive INT8 -> INT4/2**: the stage-2 reconstruction of an INT8
  code is off by at most ``s_int/2 + 1`` integer steps (rounding of the
  code plus rounding of the zero-point), so in real units
  ``|x - x_hat| <= s * (1/2 + s_int/2 + 1)`` with ``s_int <=
  ceil(range_int8 / (2^b - 1))``.
* **SAS**: ``|SAS(x) - e^x| <= poly_max_error + [x < n_r] * e^{n_r}`` —
  the polynomial fit error plus, below the threshold, the truncated tail.
* **Softmax sensitivity**: if every score moves by at most ``delta``, the
  probability vector moves by at most ``e^{2 delta} - 1`` in L1
  (a standard Gibbs-measure perturbation bound), so the attention output
  moves by at most ``(e^{2 delta} - 1) * max_t ||v_t||_inf`` plus the
  value-side reconstruction error.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.sas.poly import PAPER_POLY_COEFFS, poly_max_error

__all__ = [
    "symmetric_bound",
    "progressive_bound",
    "sas_bound",
    "softmax_l1_bound",
    "attention_output_bound",
]


def symmetric_bound(scale: Union[float, np.ndarray]) -> Union[float, np.ndarray]:
    """Round-to-nearest bound for symmetric quantization: ``s / 2``."""
    return np.asarray(scale) / 2.0


def progressive_bound(
    scale: Union[float, np.ndarray],
    int8_range: Union[float, np.ndarray],
    bits: int,
) -> np.ndarray:
    """Worst-case float error of the full INT8 -> INT``bits`` pipeline.

    ``int8_range`` is the per-channel max-minus-min of the INT8 codes the
    channel spans (<= 254); ``scale`` is the stage-1 symmetric scale.
    """
    hi = 2**bits - 1
    s_int = np.ceil(np.asarray(int8_range, dtype=np.float64) / hi)
    s_int = np.maximum(s_int, 1.0)
    # Stage-1 rounding (1/2 step) + stage-2 code rounding (s_int/2) +
    # zero-point rounding (<= s_int/2 more) in INT8 steps.
    return np.asarray(scale) * (0.5 + s_int)


def sas_bound(threshold: int = -6, coeffs=PAPER_POLY_COEFFS) -> float:
    """Uniform bound on ``|SAS(x) - e^x|`` over ``x <= 0``."""
    return float(poly_max_error(coeffs) + np.exp(threshold))


def softmax_l1_bound(delta: float) -> float:
    """L1 perturbation of a softmax whose logits each move <= ``delta``.

    If ``|s'_i - s_i| <= delta`` for all i then
    ``||softmax(s') - softmax(s)||_1 <= e^{2 delta} - 1``.
    """
    if delta < 0:
        raise ValueError("delta must be non-negative")
    return float(np.exp(2.0 * delta) - 1.0)


def attention_output_bound(
    score_delta: float,
    value_error: float,
    value_max: float,
) -> float:
    """Element-wise bound on the attention output perturbation.

    ``out' - out = (p' - p) V' + p (V' - V)``; with ``||p'-p||_1`` bounded
    by :func:`softmax_l1_bound` and ``||p||_1 = 1``:

        |Δout| <= (e^{2 δ} - 1) * (value_max + value_error) + value_error
    """
    p_l1 = softmax_l1_bound(score_delta)
    return p_l1 * (value_max + value_error) + value_error

"""Floating-point storage-format emulation.

The library stores "FP16" tensors as float32/float64 arrays that have been
rounded through ``np.float16`` (round-to-nearest-even), matching what a GPU
register holds after a half-precision load.  BF16 is emulated by truncating
the float32 mantissa to 7 bits, which is the hardware behaviour of
round-to-nearest for bfloat16 conversion units.

MatMuls that model tensor-core MMA instructions round *inputs* to the
storage format but accumulate in float32, which is how A100 HMMA behaves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "FloatFormat",
    "FP16",
    "BF16",
    "FP32",
    "quantize_to_format",
    "fp16_matmul",
]


@dataclass(frozen=True)
class FloatFormat:
    """Description of an IEEE-like floating-point storage format.

    Attributes
    ----------
    name:
        Human-readable name ("fp16", "bf16", "fp32").
    exponent_bits:
        Width of the exponent field.
    mantissa_bits:
        Width of the stored (explicit) mantissa field.
    bytes:
        Storage size in bytes, used by the performance model.
    """

    name: str
    exponent_bits: int
    mantissa_bits: int
    bytes: int

    @property
    def max_value(self) -> float:
        """Largest finite representable magnitude."""
        if self.name == "fp16":
            return float(np.finfo(np.float16).max)
        if self.name == "bf16":
            # Same exponent range as fp32, 8-bit significand precision.
            return float(np.finfo(np.float32).max)
        return float(np.finfo(np.float32).max)

    @property
    def eps(self) -> float:
        """Machine epsilon (unit roundoff * 2) of the format."""
        return 2.0 ** (-self.mantissa_bits)


FP16 = FloatFormat(name="fp16", exponent_bits=5, mantissa_bits=10, bytes=2)
BF16 = FloatFormat(name="bf16", exponent_bits=8, mantissa_bits=7, bytes=2)
FP32 = FloatFormat(name="fp32", exponent_bits=8, mantissa_bits=23, bytes=4)


def _round_bf16(x: np.ndarray) -> np.ndarray:
    """Round float32 values to bfloat16 precision (round-to-nearest-even)."""
    x32 = np.asarray(x, dtype=np.float32)
    bits = x32.view(np.uint32)
    # Round-to-nearest-even on the low 16 bits.
    rounding_bias = ((bits >> 16) & 1).astype(np.uint32) + np.uint32(0x7FFF)
    rounded = (bits + rounding_bias) & np.uint32(0xFFFF0000)
    return rounded.view(np.float32).astype(np.float64)


def quantize_to_format(x: np.ndarray, fmt: FloatFormat) -> np.ndarray:
    """Round ``x`` through the storage format ``fmt`` and return float64.

    This models a store-then-load round trip: the values are exactly
    representable in ``fmt`` but all downstream arithmetic stays in NumPy's
    native double precision so quantization effects are isolated to the
    rounding itself.
    """
    x = np.asarray(x, dtype=np.float64)
    if fmt.name == "fp32":
        return x.astype(np.float32).astype(np.float64)
    if fmt.name == "fp16":
        return x.astype(np.float16).astype(np.float64)
    if fmt.name == "bf16":
        return _round_bf16(x)
    raise ValueError(f"unknown float format: {fmt.name!r}")


def fp16_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Tensor-core-style half-precision MatMul.

    Inputs are rounded to FP16; the product accumulates in float32, which is
    the numeric behaviour of A100/H100 HMMA instructions (and what both
    FlashAttention and our TurboAttention kernels assume).
    """
    a16 = np.asarray(a, dtype=np.float64).astype(np.float16).astype(np.float32)
    b16 = np.asarray(b, dtype=np.float64).astype(np.float16).astype(np.float32)
    return (a16 @ b16).astype(np.float64)

"""Low-precision floating-point emulation.

GPUs execute the attention MatMuls in FP16 (tensor cores, FP32 accumulate)
and — in stock FlashAttention — the exponentiation in FP32 (CUDA cores).
This subpackage emulates those storage formats on top of float64 NumPy so
the rest of the library can reason about precision without GPU hardware.
"""

from repro.fp.formats import (
    FloatFormat,
    FP16,
    BF16,
    FP32,
    quantize_to_format,
    fp16_matmul,
)
from repro.fp.fp8 import FP8_E4M3, FP8_E5M2, quantize_fp8, fp8_matmul

__all__ = [
    "FloatFormat",
    "FP16",
    "BF16",
    "FP32",
    "quantize_to_format",
    "fp16_matmul",
    "FP8_E4M3",
    "FP8_E5M2",
    "quantize_fp8",
    "fp8_matmul",
]

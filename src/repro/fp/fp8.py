"""FP8 storage emulation (E4M3 and E5M2).

FlashAttention-3 — the paper's strongest baseline — offers FP8 attention
on Hopper.  Emulating the two OCP FP8 formats lets the library compare
TurboAttention's INT8 compute stage against an FP8 alternative on equal
footing (see :class:`repro.baselines.fp8_flash.FP8Attention`).

Rounding is round-to-nearest-even, implemented by scaling into the
format's subnormal-aware grid via float32 bit manipulation:

* **E4M3**: 4 exponent bits, 3 mantissa bits, max 448, no inf (NaN only).
* **E5M2**: 5 exponent bits, 2 mantissa bits, max 57344.

Values beyond the representable range saturate to the max magnitude (the
behaviour of NVIDIA's conversion instructions with saturation enabled,
which all attention kernels use).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.fp.formats import FloatFormat

__all__ = ["FP8_E4M3", "FP8_E5M2", "quantize_fp8", "fp8_matmul"]

FP8_E4M3 = FloatFormat(name="fp8_e4m3", exponent_bits=4, mantissa_bits=3, bytes=1)
FP8_E5M2 = FloatFormat(name="fp8_e5m2", exponent_bits=5, mantissa_bits=2, bytes=1)

_SPEC = {
    # name -> (max_normal, min_normal_exponent, mantissa_bits)
    "fp8_e4m3": (448.0, -6, 3),
    "fp8_e5m2": (57344.0, -14, 2),
}


def quantize_fp8(x: np.ndarray, fmt: FloatFormat = FP8_E4M3) -> np.ndarray:
    """Round ``x`` to the FP8 grid (round-to-nearest-even, saturating)."""
    if fmt.name not in _SPEC:
        raise ValueError(f"not an FP8 format: {fmt.name!r}")
    max_normal, min_exp, mant = _SPEC[fmt.name]
    x = np.asarray(x, dtype=np.float64)
    sign = np.sign(x)
    mag = np.abs(x)
    out = np.zeros_like(mag)

    finite = np.isfinite(mag) & (mag > 0)
    clipped = np.minimum(mag, max_normal)

    # Exponent of each value, clamped to the subnormal boundary.
    exp = np.floor(np.log2(np.where(finite, clipped, 1.0)))
    exp = np.maximum(exp, float(min_exp))
    # Quantum = 2^(exp - mantissa_bits); round to nearest even multiple.
    quantum = np.exp2(exp - mant)
    q = clipped / quantum
    rounded = np.rint(q)
    # Values that round up across a binade remain representable because
    # 2^{e+1} is on the next binade's grid.
    out = np.where(finite, rounded * quantum, 0.0)
    out = np.minimum(out, max_normal)
    return sign * out


def fp8_matmul(
    a: np.ndarray, b: np.ndarray, fmt: FloatFormat = FP8_E4M3
) -> np.ndarray:
    """Tensor-core-style FP8 MatMul: FP8 inputs, FP32 accumulation."""
    a8 = quantize_fp8(a, fmt)
    b8 = quantize_fp8(b, fmt)
    return (a8.astype(np.float32) @ b8.astype(np.float32)).astype(np.float64)


def fp8_tile_quantize(
    x: np.ndarray, fmt: FloatFormat = FP8_E4M3, target: float = 224.0
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-tile scaled FP8: scale the tile so its max lands at ``target``
    (half the E4M3 range, the standard FP8 attention recipe), then round.

    Returns ``(fp8_values, scale)`` with ``x ~= fp8_values * scale``.
    """
    x = np.asarray(x, dtype=np.float64)
    absmax = np.abs(x).max(axis=(-2, -1), keepdims=True)
    scale = np.maximum(absmax, 1e-12) / target
    return quantize_fp8(x / scale, fmt), scale

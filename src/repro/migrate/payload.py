"""The handoff codec: serialize, corrupt, and receive migrated KV state.

A real deployment ships the request's full quantized cache; simulating
that byte-for-byte would dominate runtime without changing *behavior*.
Instead each handoff that needs inspection (a corrupt roll, or a test)
builds a miniature-but-faithful :class:`~repro.core.turbo.TurboKVState`
— real quantized blocks, real CRC32 checksums, the real v2 schema — and
the request's prompt maps proportionally onto the miniature blocks.
The corruption/salvage path is therefore *exactly* the production code
path of :mod:`repro.core.serialization`, not a coin flip: a corrupted
payload is detected by the per-array checksum, salvaged to its longest
valid block prefix, and the kept fraction scales back up to an exact
token range the decode replica must re-prefill.

All randomness is keyed ``[seed, request_id, attempt]`` so payloads are
deterministic per attempt and never perturb any other RNG stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.core.buffer import DecodeBuffer
from repro.core.kvcache import QuantizedKVCache
from repro.core.serialization import (
    CacheCorruptionError,
    salvage_state,
    state_from_arrays,
    state_to_arrays,
)
from repro.core.turbo import TurboKVState
from repro.migrate.config import MigrationConfig

__all__ = ["HandoffOutcome", "build_payload", "corrupt_payload", "receive_payload"]

_LADDER = (2, 3, 4, 8)


def _storage_bits(kv_bits: float) -> int:
    """Snap an effective KV rate to the storage ladder the codec packs at.

    Effective rates carry scale/zero overhead (turbo4 = 4.3 means 4-bit
    codes + amortized metadata), so the payload packs at the *code* width:
    the largest ladder rung not above the effective rate, and 8 for FP16.
    """
    eligible = [b for b in _LADDER if b <= kv_bits]
    return eligible[-1] if eligible else _LADDER[0]


@dataclass(frozen=True)
class HandoffOutcome:
    """What the decode replica recovered from one arrived payload."""

    #: Prompt tokens whose KV survived verification (resume point).
    valid_tokens: int
    #: Exact ``[start, end)`` prompt range the destination must re-prefill
    #: (empty — ``start == end`` — when the payload verified intact).
    recompute_range: Tuple[int, int]
    #: Whether salvage ran (a checksum failed somewhere).
    salvaged: bool

    @property
    def intact(self) -> bool:
        return self.recompute_range[0] >= self.recompute_range[1]

    @property
    def recompute_tokens(self) -> int:
        start, end = self.recompute_range
        return max(0, end - start)


def build_payload(
    request_id: int,
    attempt: int,
    seed: int,
    kv_bits: float,
    config: MigrationConfig,
) -> Dict[str, np.ndarray]:
    """Serialize a miniature faithful KV state for one handoff attempt."""
    rng = np.random.default_rng([seed, request_id, attempt])
    heads = config.payload_heads
    dim = config.payload_head_dim
    bits = _storage_bits(kv_bits)
    head_bits = np.full(heads, bits, dtype=np.int32)
    cache = QuantizedKVCache(
        heads, dim, head_bits=head_bits, block_size=config.payload_block_tokens
    )
    scale = np.ones((heads, 1, 1))
    for _ in range(config.payload_blocks):
        k = rng.integers(-100, 101, size=(heads, config.payload_block_tokens, dim))
        v = rng.integers(-100, 101, size=(heads, config.payload_block_tokens, dim))
        cache.append_block(
            k.astype(np.int8), v.astype(np.int8), k_scale=scale, v_scale=scale
        )
    buffer = DecodeBuffer(
        heads, dim, capacity=config.payload_block_tokens, k_scale=scale, v_scale=scale
    )
    state = TurboKVState(cache=cache, buffer=buffer, head_bits=head_bits)
    return state_to_arrays(state, checksums=True)


def corrupt_payload(
    arrays: Dict[str, np.ndarray],
    request_id: int,
    attempt: int,
    seed: int,
    config: MigrationConfig,
) -> Dict[str, np.ndarray]:
    """Flip one byte of a packed code array in-place (transfer bit-rot).

    The victim block is drawn from ``[1, payload_blocks)`` — block 0 is
    spared so salvage always keeps a non-empty prefix and the recompute
    range is *strictly* smaller than a full re-prefill, which is the
    property the harness demonstrates.  The flip lands in the packed
    payload, so the per-array CRC32 catches it on receive.
    """
    rng = np.random.default_rng([seed, request_id, attempt, 104729])
    victim = int(rng.integers(1, config.payload_blocks))
    key = f"block{victim}.k.codes0"
    packed = np.array(arrays[key], copy=True)
    pos = int(rng.integers(0, packed.size))
    flat = packed.reshape(-1)
    flat[pos] = np.uint8(int(flat[pos]) ^ 0x40)
    out = dict(arrays)
    out[key] = packed
    return out


def receive_payload(
    arrays: Dict[str, np.ndarray],
    prompt_len: int,
    config: MigrationConfig,
) -> HandoffOutcome:
    """Verify an arrived payload and map the outcome onto prompt tokens.

    Intact payloads resume decode at ``prompt_len`` (nothing to redo).
    Corrupt payloads either salvage — the miniature kept-token fraction
    scales onto the prompt, rounding *down* so the resume point never
    claims unverified tokens — or, with salvage disabled, degrade to a
    full re-prefill on the destination.
    """
    total = config.payload_blocks * config.payload_block_tokens
    try:
        state_from_arrays(arrays)
    except CacheCorruptionError:
        if not config.salvage:
            return HandoffOutcome(
                valid_tokens=0, recompute_range=(0, prompt_len), salvaged=False
            )
        result = salvage_state(arrays)
        kept = result.state.cache.seq_len
        valid = prompt_len * kept // total
        return HandoffOutcome(
            valid_tokens=valid, recompute_range=(valid, prompt_len), salvaged=True
        )
    return HandoffOutcome(
        valid_tokens=prompt_len, recompute_range=(prompt_len, prompt_len), salvaged=False
    )

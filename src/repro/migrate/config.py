"""Policy knobs for prefill→decode KV migration."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MigrationConfig"]


@dataclass(frozen=True)
class MigrationConfig:
    """How KV handoffs behave on the way to a decode replica.

    The *rates* of migration faults (drop/corrupt/link-stall) live with
    the other fault machinery in :class:`repro.cluster.faults.FaultConfig`
    so one seed drives every fault stream; this config holds the
    response-side policy.
    """

    #: Recover corrupted arrivals via :func:`repro.core.serialization.
    #: salvage_state` (resume decode from the longest valid block prefix,
    #: re-prefilling only the tail).  ``False`` degrades a corrupt handoff
    #: to a full re-prefill on the destination — the ablation the harness
    #: uses to show salvage's value.
    salvage: bool = True
    #: Wait before re-offering a handoff the destination engine DEFERred
    #: (KV pressure; the request stays pinned on the source meanwhile).
    defer_retry_s: float = 0.25
    #: Miniature serialized-payload geometry used to *faithfully* exercise
    #: the checksum/salvage path on corrupt rolls without serializing a
    #: full-size cache: the real prompt maps proportionally onto
    #: ``payload_blocks`` quantized blocks of ``payload_block_tokens``
    #: tokens x ``payload_heads`` heads x ``payload_head_dim`` dims.
    payload_blocks: int = 8
    payload_block_tokens: int = 16
    payload_heads: int = 2
    payload_head_dim: int = 8

    def __post_init__(self) -> None:
        if self.defer_retry_s <= 0:
            raise ValueError("defer_retry_s must be positive")
        if self.payload_blocks < 2:
            raise ValueError("payload_blocks must be >= 2 (salvage needs a prefix)")
        if min(self.payload_block_tokens, self.payload_heads, self.payload_head_dim) < 1:
            raise ValueError("payload geometry fields must be positive")

"""Wire-cost model for KV migration over the inter-pool link.

The byte count is the exact KV footprint of the request at its admitted
width: ``2`` (K and V) x ``n_kv_heads * head_dim`` x ``n_layers`` x
tokens x ``kv_bits / 8``.  Because ``kv_bits`` is the *effective* rate
(codes + amortized scales, e.g. turbo4's 4.3), the ratio between two
widths on the wire matches the allocator's ``bytes_scale`` exactly —
a 4.3-bit cache costs 4.3/16 of FP16 to ship, which is the economic
argument for migrating compressed state.  The time charge comes from
:meth:`repro.perf.gpu.GPUSpec.transfer_time` (derated bandwidth + fixed
launch latency).
"""

from __future__ import annotations

from repro.perf.e2e import ModelGeometry
from repro.perf.gpu import GPUSpec

__all__ = ["kv_wire_bytes", "migration_transfer_time"]


def kv_wire_bytes(model: ModelGeometry, tokens: int, kv_bits: float) -> float:
    """Bytes of serialized KV state for ``tokens`` at ``kv_bits`` width."""
    if tokens <= 0:
        return 0.0
    if kv_bits <= 0:
        raise ValueError("kv_bits must be positive")
    per_token = 2.0 * model.n_kv_heads * model.head_dim * model.n_layers * kv_bits / 8.0
    return per_token * tokens


def migration_transfer_time(
    gpu: GPUSpec,
    model: ModelGeometry,
    tokens: int,
    kv_bits: float,
    slowdown: float = 1.0,
) -> float:
    """Seconds to ship one request's KV across the inter-pool link.

    ``slowdown`` > 1 models a congested/stalled link (the ``link_stall``
    fault) by stretching the whole transfer.
    """
    if slowdown < 1.0:
        raise ValueError("slowdown must be >= 1")
    return gpu.transfer_time(kv_wire_bytes(model, tokens, kv_bits)) * slowdown

"""KV-cache migration for disaggregated prefill/decode serving.

TurboAttention's compressed KV state is ~4.4x cheaper to *move* than
FP16, not just to hold — which is what makes disaggregated serving
(DistServe-style prefill and decode pools joined by a link) economically
viable.  This package supplies the two halves the cluster simulator
composes:

* :mod:`repro.migrate.link` — the wire-cost model: exact KV bytes for a
  request at its admitted KV width, charged over the
  :class:`repro.perf.gpu.GPUSpec` link-bandwidth model, so a 4-bit cache
  migrates proportionally cheaper than an FP16 one.
* :mod:`repro.migrate.payload` — the handoff codec: a request's KV state
  is serialized through the checksummed schema of
  :mod:`repro.core.serialization`, so a corrupted transfer is *detected*
  (CRC32 per array) and *salvaged* (:func:`~repro.core.serialization.
  salvage_state` recovers the longest valid block prefix), turning a bad
  handoff into an exact recompute range instead of a lost request.

:class:`MigrationConfig` holds the policy knobs; the seeded fault model
for the link itself (drops, corruption, congestion stalls) lives with
the other fault machinery in :mod:`repro.cluster.faults`.
"""

from repro.migrate.config import MigrationConfig
from repro.migrate.link import kv_wire_bytes, migration_transfer_time
from repro.migrate.payload import (
    HandoffOutcome,
    build_payload,
    corrupt_payload,
    receive_payload,
)

__all__ = [
    "MigrationConfig",
    "kv_wire_bytes",
    "migration_transfer_time",
    "HandoffOutcome",
    "build_payload",
    "corrupt_payload",
    "receive_payload",
]

"""TurboAttention (MLSys 2025) reproduction.

A from-scratch, NumPy-based implementation of *TurboAttention: Efficient
Attention Approximation for High Throughputs LLMs* — FlashQ blockwise
progressive quantization, head-wise mixed precision, the enhanced decode
buffer, and SAS (Sparse Activated Softmax) — together with the baselines it
is evaluated against (FlashAttention, KIVI, GEAR-L), a small transformer
substrate, synthetic long-range-retrieval tasks, and an analytical A100
performance model that regenerates the paper's latency/throughput figures.

Quick start::

    import numpy as np
    from repro import TurboAttention, TurboConfig

    rng = np.random.default_rng(0)
    h, n, d = 8, 512, 64
    q, k, v = (rng.standard_normal((h, n, d)) for _ in range(3))

    turbo = TurboAttention(TurboConfig(mixed_precision=True))
    out, state = turbo.prefill(q, k, v)           # quantized prefill
    q1, k1, v1 = (rng.standard_normal((h, d)) for _ in range(3))
    out_t = turbo.decode_step(q1, k1, v1, state)  # quantized decode
    print(state.compression_ratio())              # ~4-7x vs FP16
"""

from repro.core import TurboAttention, TurboConfig, TurboKVState
from repro.sas import SAS, SASConfig, sas_softmax
from repro.attention import flash_attention, reference_attention

__version__ = "1.0.0"

__all__ = [
    "TurboAttention",
    "TurboConfig",
    "TurboKVState",
    "SAS",
    "SASConfig",
    "sas_softmax",
    "flash_attention",
    "reference_attention",
    "__version__",
]

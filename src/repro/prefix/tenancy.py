"""Multi-tenant model: per-tenant rate limits, priority, fair share.

At million-user scale the admission gate cannot treat the queue as one
anonymous stream: a single tenant replaying a hot prompt can saturate
the token bucket and starve everyone else *while* enjoying a near-100%
prefix-cache hit rate.  The tenant model gives the gate two levers:

* **Per-tenant token buckets** — each tenant's sustained work rate is
  bounded independently of the global bucket (`rate_tokens_per_s`,
  `burst_tokens`), so one tenant's surge defers *that tenant*, not the
  fleet.
* **Weighted fair share under pressure** — when KV pressure crosses the
  gate's fair-share mark, a tenant whose share of admitted work exceeds
  ``slack`` times its weight-proportional entitlement is deferred first.
  Below the pressure mark the ledger only observes (work-conserving:
  idle capacity is never withheld for fairness).

The ledger is pure seeded-clock arithmetic — no wall time, no
randomness — so admission decisions stay byte-identical across reruns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

__all__ = ["TenantConfig", "TenantLedger"]


@dataclass(frozen=True)
class TenantConfig:
    """One tenant's admission contract."""

    tenant_id: int
    #: Sustained work-token (prompt + generation) rate; ``None`` = no
    #: per-tenant bucket (the global bucket still applies).
    rate_tokens_per_s: Optional[float] = None
    burst_tokens: float = 50_000.0
    #: Scheduling priority for the tenant's requests (engines shed
    #: lowest priority first; the prefix pool evicts their blocks first).
    priority: int = 0
    #: Fair-share weight: entitlement is ``weight / sum(weights of
    #: tenants seen so far)`` of admitted work.
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.rate_tokens_per_s is not None and self.rate_tokens_per_s <= 0:
            raise ValueError("rate_tokens_per_s must be positive (or None)")
        if self.burst_tokens <= 0:
            raise ValueError("burst_tokens must be positive")
        if self.weight <= 0:
            raise ValueError("weight must be positive")


@dataclass
class _TenantState:
    config: TenantConfig
    bucket: float
    last_refill: float = 0.0
    admitted_tokens: float = 0.0
    accepted: int = 0
    deferred: int = 0


class TenantLedger:
    """Per-tenant buckets and admitted-work shares behind the gate."""

    def __init__(
        self,
        tenants: Iterable[TenantConfig] = (),
        default: Optional[TenantConfig] = None,
    ):
        self._templates: Dict[int, TenantConfig] = {}
        for cfg in tenants:
            if cfg.tenant_id in self._templates:
                raise ValueError(f"duplicate tenant_id {cfg.tenant_id}")
            self._templates[cfg.tenant_id] = cfg
        #: Contract applied to tenants without an explicit entry.
        self.default = default
        self._states: Dict[int, _TenantState] = {}
        self.total_admitted_tokens = 0.0

    def _state(self, tenant_id: int) -> _TenantState:
        state = self._states.get(tenant_id)
        if state is None:
            template = self._templates.get(tenant_id, self.default)
            if template is None:
                template = TenantConfig(tenant_id=tenant_id)
            elif template.tenant_id != tenant_id:
                template = TenantConfig(
                    tenant_id=tenant_id,
                    rate_tokens_per_s=template.rate_tokens_per_s,
                    burst_tokens=template.burst_tokens,
                    priority=template.priority,
                    weight=template.weight,
                )
            state = _TenantState(config=template, bucket=template.burst_tokens)
            self._states[tenant_id] = state
        return state

    # -- token bucket ---------------------------------------------------------
    def has_budget(self, tenant_id: int, cost: float, now: float) -> bool:
        """Refill the tenant's bucket to ``now`` and check ``cost`` fits.

        Does not spend — the gate spends only on a final ACCEPT, so a
        decision deferred for other reasons never drains the bucket.
        """
        state = self._state(tenant_id)
        rate = state.config.rate_tokens_per_s
        if rate is None:
            return True
        if now > state.last_refill:
            state.bucket = min(
                state.config.burst_tokens,
                state.bucket + (now - state.last_refill) * rate,
            )
            state.last_refill = now
        return cost <= state.bucket

    def spend(self, tenant_id: int, cost: float) -> None:
        """Charge an accepted request to the tenant's bucket and share."""
        state = self._state(tenant_id)
        if state.config.rate_tokens_per_s is not None:
            state.bucket -= cost
        state.admitted_tokens += cost
        state.accepted += 1
        self.total_admitted_tokens += cost

    def note_deferred(self, tenant_id: int) -> None:
        self._state(tenant_id).deferred += 1

    # -- fair share -----------------------------------------------------------
    def over_fair_share(self, tenant_id: int, slack: float) -> bool:
        """Is the tenant's admitted-work share above ``slack`` times its
        weighted entitlement?  Entitlement is computed over the tenants
        seen so far (the gate cannot know about tenants that never
        showed up).  A tenant that has not yet consumed one burst's
        worth of work is never over-share: with thousands of seen
        tenants the proportional entitlement shrinks toward zero, and
        without the absolute floor *any* repeat tenant would be gated.
        """
        state = self._state(tenant_id)
        if self.total_admitted_tokens <= 0:
            return False
        if state.admitted_tokens <= state.config.burst_tokens:
            return False
        total_weight = sum(s.config.weight for s in self._states.values())
        entitlement = state.config.weight / total_weight
        share = state.admitted_tokens / self.total_admitted_tokens
        return share > slack * entitlement

    # -- introspection --------------------------------------------------------
    def priority_of(self, tenant_id: int) -> int:
        return self._state(tenant_id).config.priority

    def seen_tenants(self) -> Dict[int, Dict[str, float]]:
        """Per-tenant counters for operator visibility."""
        return {
            tid: {
                "accepted": s.accepted,
                "deferred": s.deferred,
                "admitted_tokens": s.admitted_tokens,
                "weight": s.config.weight,
            }
            for tid, s in sorted(self._states.items())
        }

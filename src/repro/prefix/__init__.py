"""Content-addressed prefix KV caching and multi-tenancy.

Two pieces compose into the serving stack's "millions of users" story:

* :mod:`repro.prefix.pool` — a refcounted, content-addressed block pool
  (hash-of-token-prefix -> shared quantized KV block) layered over the
  paged allocator, with copy-on-write on divergence and LRU + priority
  eviction of unreferenced blocks driven by the same KV-pressure signal
  the admission gate reads.  Shared system prompts and multi-turn
  session history skip redundant prefill; the paper's 4/2-bit FlashQ
  compression means far more shared blocks fit per GiB than FP16 could
  hold.
* :mod:`repro.prefix.tenancy` — per-tenant token-bucket rate limits,
  priorities, and weighted fair-share enforcement that
  :mod:`repro.overload.admission` applies under KV pressure, so the
  gate is fair per tenant, not just safe globally.

The engine enables the pool via ``EngineConfig(prefix=...)``; the
:mod:`repro.harness.prefix` scenario (``python -m repro prefix``) drives
thousands of tenants with Zipf-shared prompts through it and reports
cache-hit ratio, per-tenant fairness, and the TTFT win over a
no-sharing engine at the same KV budget.
"""

from repro.prefix.pool import (
    PrefixAcquisition,
    PrefixCacheConfig,
    PrefixPool,
    SharedBlock,
    prefix_block_keys,
)
from repro.prefix.tenancy import TenantConfig, TenantLedger

__all__ = [
    "PrefixAcquisition",
    "PrefixCacheConfig",
    "PrefixPool",
    "SharedBlock",
    "prefix_block_keys",
    "TenantConfig",
    "TenantLedger",
]

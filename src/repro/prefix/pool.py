"""Content-addressed prefix KV block pool with copy-on-write sharing.

Every request in the serving stack so far pays full prefill and owns
every KV block privately, even though fleet traffic is dominated by
*shared* prefixes: system prompts, few-shot scaffolds, multi-turn
session history.  TurboAttention makes the cache the cheap resource —
4/2-bit FlashQ blocks mean a GiB of HBM holds 4-8x more shared prefix
than FP16 could — so a paged, content-addressed prefix cache turns the
paper's compression into a throughput multiplier.

**Block identity.**  A prefix is a token stream; its cache blocks are
identified by a *hash chain* over whole blocks of ``block_tokens``
tokens: ``key_i = H(key_{i-1} || content_i)``.  Two requests share
block ``i`` iff their first ``(i+1) * block_tokens`` tokens are
identical — the content-addressed property.  The simulator does not
materialize token values; a workload models content identity with a
``prefix_id`` (all requests carrying the same id share the same
underlying token stream), so the chain is seeded from the id.  A prompt
that *is exactly* the shared prefix may additionally share the partial
tail block (key extended with the tail length); any longer prompt
diverges inside that block and keeps it private.

**Sharing rules** (the ``kv_bits`` ownership answer):

* A shared block's storage width is the **max across its sharers**.  A
  request admitted at lower precision (brownout) reads a
  wider-than-needed shared block for free; a request requiring *more*
  bits than the block currently stores re-prefills those tokens at the
  wider width (an ``upgrade`` — counted as a miss, the block stays
  shared).  Brownout downshifts therefore only ever apply to a
  request's **private tail blocks**; shared prefix blocks never degrade
  under a sharer's feet.
* **Copy-on-write**: the first decode token of a request whose prompt
  ends inside a shared tail block must not mutate its sharers' bytes —
  the request drops its reference and re-allocates the tail privately
  (:meth:`PrefixPool.cow_tail`).  Per-head precision escalation
  (:mod:`repro.guard.escalation`) rewriting a shared block likewise
  forces a private copy (:meth:`PrefixPool.cow_all`).

**Eviction.**  Blocks are refcounted; a block whose last sharer
releases it stays cached (warm) until evicted.  Eviction victimizes
only unreferenced blocks, lowest priority first, then least recently
used — driven by the same KV-pressure signal the admission gate reads
(the engine evicts when allocator utilization crosses
``PrefixCacheConfig.evict_pressure``, and on-demand when a private
allocation would otherwise OOM).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - annotation only; the pool is
    # duck-typed over the allocator to keep this package import-light.
    from repro.serving.allocator import PagedKVAllocator
    from repro.serving.request import RequestRecord

__all__ = [
    "PrefixCacheConfig",
    "SharedBlock",
    "PrefixAcquisition",
    "PrefixPool",
    "prefix_block_keys",
]


def prefix_block_keys(
    prefix_id: int, n_blocks: int, block_tokens: int, tail_tokens: int = 0
) -> List[str]:
    """Hash-chain block keys for the first ``n_blocks`` whole blocks of
    the prefix stream ``prefix_id`` (plus one partial-tail key when
    ``tail_tokens > 0``).

    ``key_i`` commits to the entire token prefix up to block ``i``: the
    chain folds each block's content digest into its predecessor's key,
    so equal keys imply equal token prefixes and a single diverging
    block changes every key after it.
    """
    if n_blocks < 0 or tail_tokens < 0:
        raise ValueError("n_blocks and tail_tokens must be >= 0")
    if tail_tokens >= block_tokens:
        raise ValueError("tail_tokens must be smaller than a block")
    keys: List[str] = []
    link = hashlib.blake2b(
        f"prefix:{prefix_id}:bt{block_tokens}".encode(), digest_size=16
    ).digest()
    for i in range(n_blocks):
        content = hashlib.blake2b(
            f"{prefix_id}:block:{i}".encode(), digest_size=16
        ).digest()
        link = hashlib.blake2b(link + content, digest_size=16).digest()
        keys.append(link.hex())
    if tail_tokens:
        tail = hashlib.blake2b(
            link + f"tail:{tail_tokens}".encode(), digest_size=16
        ).digest()
        keys.append(tail.hex())
    return keys


@dataclass(frozen=True)
class PrefixCacheConfig:
    """Prefix-cache tunables (presence on an engine config enables it).

    Attributes
    ----------
    evict_pressure:
        Allocator-utilization high-water mark: each engine iteration
        evicts unreferenced shared blocks (priority, then LRU) until
        utilization falls back under it.  The same resident-blocks
        signal feeds ``kv_pressure`` for admission and brownout, so the
        cache yields capacity exactly when the gate starts pushing back.
    max_pool_fraction:
        Hard cap on the fraction of device blocks the pool may hold
        (referenced + cached), so one giant hot prefix set cannot starve
        private decode growth outright.
    """

    evict_pressure: float = 0.9
    max_pool_fraction: float = 0.75

    def __post_init__(self) -> None:
        if not 0.0 < self.evict_pressure <= 1.0:
            raise ValueError("evict_pressure must lie in (0, 1]")
        if not 0.0 < self.max_pool_fraction <= 1.0:
            raise ValueError("max_pool_fraction must lie in (0, 1]")


@dataclass
class SharedBlock:
    """One pool-resident KV block (exactly one allocator block slot)."""

    key: str
    tokens: int
    #: Sharers: request id -> the KV width that sharer reads at.
    holders: Dict[int, float] = field(default_factory=dict)
    #: Storage width: max over all sharers past and present (stored data
    #: never narrows — see the module docstring's ownership rules).
    kv_bits: float = 0.0
    last_used: float = 0.0
    #: Highest scheduling priority that ever touched the block; eviction
    #: victimizes low priority first so a burst of batch traffic cannot
    #: flush an interactive tenant's system prompt.
    priority: int = 0
    #: Optional real payload (quantized arrays) for bit-exactness tests;
    #: the simulator itself only tracks accounting.
    payload: Optional[object] = None

    @property
    def refcount(self) -> int:
        return len(self.holders)


@dataclass(frozen=True)
class PrefixAcquisition:
    """What one :meth:`PrefixPool.acquire` bought a request."""

    #: Prompt tokens resident in shared blocks (hits + inserts + tail).
    shared_tokens: int = 0
    #: Tokens whose prefill is skipped (already-resident, wide-enough
    #: blocks) — the TTFT win.
    hit_tokens: int = 0
    #: Tokens of a shared *partial tail* block (0 if none); the first
    #: decode write to it triggers copy-on-write.
    tail_tokens: int = 0
    #: Blocks newly inserted (this request prefills them, then shares).
    inserted_blocks: int = 0
    #: Blocks re-prefilled at a wider width for this sharer.
    upgraded_blocks: int = 0


class PrefixPool:
    """Refcounted content-addressed block pool over a paged allocator."""

    def __init__(
        self,
        allocator: "PagedKVAllocator",
        config: PrefixCacheConfig = PrefixCacheConfig(),
    ):
        self.allocator = allocator
        self.config = config
        self.block_tokens = allocator.block_tokens
        self._blocks: Dict[str, SharedBlock] = {}
        self._held: Dict[int, List[str]] = {}
        self._tail_key: Dict[int, str] = {}
        self._key_cache: Dict[Tuple[int, int, int], List[str]] = {}
        # -- cumulative stats (operator counters, monotone) -----------------
        self.hits_tokens = 0
        self.lookup_tokens = 0
        self.inserted_blocks = 0
        self.upgraded_blocks = 0
        self.evicted_blocks = 0
        self.cow_copies = 0
        self.peak_resident_blocks = 0

    # -- queries -------------------------------------------------------------
    @property
    def resident_blocks(self) -> int:
        """Pool-owned allocator blocks (referenced + warm cache)."""
        return len(self._blocks)

    @property
    def referenced_blocks(self) -> int:
        return sum(1 for b in self._blocks.values() if b.holders)

    def refcount_snapshot(self) -> Dict[str, int]:
        """Frozen ``{block key -> refcount}`` view, sorted by key.

        The prefix-pool component of a crash-consistent engine snapshot
        (:mod:`repro.recover`).  Counts only: sharing is content-
        addressed, so a restart rebuilds the structure as restored
        requests re-reference their chains; the counts are the audit
        record of what was resident when the checkpoint ran.
        """
        return {
            key: self._blocks[key].refcount for key in sorted(self._blocks)
        }

    def _plan(self, record: "RequestRecord") -> Tuple[List[str], int]:
        """(chain keys, tail tokens) the record's prompt can share."""
        req = record.request
        if req.prefix_id is None or req.shared_prefix_len <= 0:
            return [], 0
        n_full = req.shared_prefix_len // self.block_tokens
        tail = (
            req.shared_prefix_len % self.block_tokens
            if req.prompt_len == req.shared_prefix_len
            else 0
        )
        cache_key = (req.prefix_id, n_full, tail)
        keys = self._key_cache.get(cache_key)
        if keys is None:
            keys = prefix_block_keys(
                req.prefix_id, n_full, self.block_tokens, tail_tokens=tail
            )
            self._key_cache[cache_key] = keys
        return keys, tail

    def probe(self, record: "RequestRecord") -> int:
        """Read-only warmth: prompt tokens already resident wide enough
        for this record.  Routers and deadline shedding call this; it
        never touches LRU state."""
        keys, tail = self._plan(record)
        bits = record.kv_bits if record.kv_bits is not None else 0.0
        warm = 0
        for i, key in enumerate(keys):
            block = self._blocks.get(key)
            if block is None or block.kv_bits < bits:
                continue
            warm += tail if tail and i == len(keys) - 1 else self.block_tokens
        return warm

    # -- acquisition / release ----------------------------------------------
    def acquire(self, record: "RequestRecord", now: float) -> PrefixAcquisition:
        """Reference (creating as needed) the shared blocks covering the
        record's prompt prefix.  Blocks the allocator cannot supply —
        even after evicting warm cache — simply stay private; sharing is
        best-effort and never fails an admission by itself."""
        rid = record.request.request_id
        if rid in self._held:
            raise ValueError(f"request {rid} already holds prefix blocks")
        keys, tail = self._plan(record)
        if not keys:
            return PrefixAcquisition()
        bits = (
            record.kv_bits if record.kv_bits is not None else 0.0
        )
        held: List[str] = []
        shared = hit = inserted = upgraded = 0
        tail_tokens = 0
        for i, key in enumerate(keys):
            is_tail = bool(tail) and i == len(keys) - 1
            tokens = tail if is_tail else self.block_tokens
            block = self._blocks.get(key)
            if block is None:
                if not self._take_block_slot():
                    break  # no capacity: the rest of the prefix is private
                block = SharedBlock(
                    key=key, tokens=tokens, kv_bits=bits,
                    last_used=now, priority=record.request.priority,
                )
                self._blocks[key] = block
                self.inserted_blocks += 1
                inserted += 1
            elif block.kv_bits < bits:
                # Stored too narrow for this sharer: re-prefill at the
                # wider width.  The block stays shared; width = max.
                block.kv_bits = bits
                self.upgraded_blocks += 1
                upgraded += 1
            else:
                hit += tokens
                self.hits_tokens += tokens
            block.holders[rid] = bits
            block.last_used = now
            block.priority = max(block.priority, record.request.priority)
            held.append(key)
            shared += tokens
            if is_tail:
                tail_tokens = tokens
        self.lookup_tokens += record.request.prompt_len
        if held:
            self._held[rid] = held
            if tail_tokens:
                self._tail_key[rid] = held[-1]
        self.peak_resident_blocks = max(
            self.peak_resident_blocks, self.resident_blocks
        )
        return PrefixAcquisition(
            shared_tokens=shared,
            hit_tokens=hit,
            tail_tokens=tail_tokens,
            inserted_blocks=inserted,
            upgraded_blocks=upgraded,
        )

    def release(self, rid: int) -> None:
        """Drop every reference ``rid`` holds.  Blocks stay warm-cached
        until evicted; unknown rids are a no-op (waiting requests never
        acquired)."""
        for key in self._held.pop(rid, []):
            self._blocks[key].holders.pop(rid, None)
        self._tail_key.pop(rid, None)

    def cow_tail(self, rid: int) -> Optional[object]:
        """Copy-on-write of the shared partial tail block: the first
        decode token must not mutate bytes other sharers read.  Drops
        ``rid``'s reference to the tail (the caller re-allocates those
        tokens privately) and returns a copy of the block's payload, if
        one is attached, for the private continuation."""
        key = self._tail_key.pop(rid, None)
        if key is None:
            return None
        block = self._blocks[key]
        block.holders.pop(rid, None)
        held = self._held.get(rid)
        if held and held[-1] == key:
            held.pop()
            if not held:
                del self._held[rid]
        self.cow_copies += 1
        return self._copy_payload(block.payload)

    def cow_all(self, rid: int) -> int:
        """Copy-on-write of *every* shared block ``rid`` holds — the
        per-head precision-escalation path, where the guard ladder wants
        to rewrite stored blocks at a wider width than other sharers
        hold.  Returns the token count the caller must re-allocate
        privately."""
        keys = self._held.get(rid, [])
        tokens = sum(self._blocks[k].tokens for k in keys)
        if keys:
            self.cow_copies += len(keys)
        self.release(rid)
        return tokens

    @staticmethod
    def _copy_payload(payload: Optional[object]) -> Optional[object]:
        if payload is None:
            return None
        copy = getattr(payload, "copy", None)
        return copy() if callable(copy) else payload

    # -- payloads (bit-exactness tests attach real quantized arrays) ---------
    def attach_payload(self, key: str, payload: object) -> None:
        self._blocks[key].payload = payload

    def payload(self, key: str) -> Optional[object]:
        return self._blocks[key].payload

    def held_keys(self, rid: int) -> Tuple[str, ...]:
        return tuple(self._held.get(rid, ()))

    # -- allocator plumbing and eviction --------------------------------------
    def _take_block_slot(self) -> bool:
        cap = int(self.allocator.total_blocks * self.config.max_pool_fraction)
        if self.resident_blocks >= cap:
            if not self._evict_one():
                return False
        if self.allocator.take_shared_block():
            return True
        # Allocator is full: try trading a cold cached block for the new
        # one (the new block is about to be referenced; cold loses).
        if self._evict_one():
            return self.allocator.take_shared_block()
        return False

    def _evict_one(self) -> bool:
        victim_key = None
        victim_rank = None
        for key, block in self._blocks.items():
            if block.holders:
                continue
            rank = (block.priority, block.last_used, key)
            if victim_rank is None or rank < victim_rank:
                victim_rank = rank
                victim_key = key
        if victim_key is None:
            return False
        del self._blocks[victim_key]
        self.allocator.release_shared_block()
        self.evicted_blocks += 1
        return True

    def evict_to_free(self, n_blocks: int) -> int:
        """Evict unreferenced blocks until the allocator has at least
        ``n_blocks`` free (or no victims remain).  Returns evictions."""
        evicted = 0
        while self.allocator.free_blocks < n_blocks and self._evict_one():
            evicted += 1
        return evicted

    def evict_under_pressure(self) -> int:
        """The KV-pressure eviction sweep: shrink the warm cache until
        allocator utilization is back under ``evict_pressure``."""
        evicted = 0
        while (
            self.allocator.utilization > self.config.evict_pressure
            and self._evict_one()
        ):
            evicted += 1
        return evicted

    # -- invariants -----------------------------------------------------------
    def check_invariants(self) -> List[str]:
        """Block-conservation audit; empty list = healthy.

        * every resident block occupies exactly one allocator slot;
        * refcounts are consistent with the per-request held lists
          (never negative — structurally a dict, so the check is that
          both sides agree);
        * no request references an evicted block.
        """
        problems: List[str] = []
        if self.allocator.shared_blocks != self.resident_blocks:
            problems.append(
                f"allocator accounts {self.allocator.shared_blocks} shared "
                f"blocks but pool holds {self.resident_blocks}"
            )
        holders_view: Dict[int, List[str]] = {}
        for key, block in self._blocks.items():
            if block.refcount < 0:  # pragma: no cover - structurally impossible
                problems.append(f"negative refcount on {key}")
            for rid in block.holders:
                holders_view.setdefault(rid, []).append(key)
        for rid, keys in self._held.items():
            for key in keys:
                if key not in self._blocks:
                    problems.append(f"request {rid} references evicted {key}")
                elif rid not in self._blocks[key].holders:
                    problems.append(f"request {rid} held list desynced on {key}")
        for rid, keys in holders_view.items():
            if set(keys) - set(self._held.get(rid, [])):
                problems.append(f"stray holder entry for request {rid}")
        return problems

"""Overload protection: degrade deliberately instead of collapsing.

The cluster survives crashes (:mod:`repro.cluster.faults`) and bad
numerics (:mod:`repro.guard`); this subpackage protects it from
*overload itself* — sustained demand beyond fleet capacity.  Three
mechanisms compose, each mapping a saturation signal the serving stack
already exposes onto a deliberate action:

* :mod:`repro.overload.admission` — a token bucket + KV-pressure gate in
  front of every submission, with ACCEPT/REJECT/DEFER verdicts, bounded
  queues, and typed terminal outcomes (``REJECTED`` is a first-class
  request status, never a silent drop).
* :mod:`repro.overload.brownout` — a hysteresis state machine
  (NORMAL -> BROWNOUT_4BIT -> BROWNOUT_2BIT -> SHED_ONLY) that downshifts
  *new* requests' KV precision along the guard layer's width ladder,
  shrinks per-request KV budgets, and recovers with cooldown.  This is
  the TurboAttention-specific move: precision is a capacity axis FP16
  fleets simply do not have.
* :mod:`repro.overload.breaker` — a per-replica circuit breaker
  (CLOSED/OPEN/HALF_OPEN) so a sick replica sheds its load to the fleet
  instead of feeding a retry storm.

Deadline-aware shedding lives in the engine itself
(:meth:`repro.serving.ServingEngine.step`): at dequeue time a request
whose best-case TTFT already exceeds its SLO is shed before a single
decode token is wasted on it.  The conservation invariant extends across
all of it: submitted = completed + failed + rejected + shed + in-flight,
byte-identical across reruns of the same seed.
"""

from repro.overload.admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionVerdict,
)
from repro.overload.breaker import BreakerConfig, BreakerState, CircuitBreaker
from repro.overload.brownout import (
    BrownoutConfig,
    BrownoutController,
    BrownoutLevel,
    BrownoutTransition,
)

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionVerdict",
    "BreakerConfig",
    "BreakerState",
    "CircuitBreaker",
    "BrownoutConfig",
    "BrownoutController",
    "BrownoutLevel",
    "BrownoutTransition",
]

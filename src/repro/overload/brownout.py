"""Precision brownout: spend KV quality to buy serving capacity.

TurboAttention's premise (§3.2-3.3; KIVI/GEAR in PAPERS.md) is that KV
precision is a *tunable* axis trading quality for memory and bandwidth.
At the serving layer that means the robust response to saturation is not
only rejecting work: a compressed-cache fleet can *brown out* — admit new
requests at a lower storage width, packing more concurrent contexts into
the same HBM and reading fewer bytes per decode step — and recover full
quality when load subsides.  FP16 has no such axis, which is exactly the
gap the overload harness measures.

The controller is a hysteresis state machine over four levels::

    NORMAL -> BROWNOUT_4BIT -> BROWNOUT_2BIT -> SHED_ONLY

driven by one scalar *stress* signal: the max of EWMA-smoothed queue
delay (normalized by ``delay_scale_s``) and EWMA-smoothed KV pressure
(normalized by ``kv_scale``).  Stress crossing ``enter_thresholds[i]``
moves one level deeper; falling below ``exit_thresholds[i]`` (strictly
lower — the hysteresis band) moves one level back.  Transitions are rate
limited to one per ``cooldown_s`` window, so the fleet cannot oscillate
faster than the cooldown no matter how the signals thrash; the
acceptance bound "<= 1 transition per cooldown window" is structural.

Precision mapping reuses the guard layer's width ladder
(:data:`repro.guard.escalation.DEFAULT_LADDER`) through
:func:`repro.core.headwise.snap_to_ladder`: each brownout level's target
width is snapped onto the ladder, and the admitted request's effective
bits keep the method's metadata overhead (the fractional part of its
``kv_bits``).  A method without a precision axis (``kind == "fp16"``)
passes through unchanged at every level.  ``SHED_ONLY`` admits nothing
new at all — the deepest rung protects in-flight work only.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.guard.escalation import DEFAULT_LADDER
from repro.perf.attention_costs import MethodSpec

__all__ = [
    "BrownoutLevel",
    "BrownoutConfig",
    "BrownoutTransition",
    "BrownoutController",
]


class BrownoutLevel(enum.IntEnum):
    NORMAL = 0
    BROWNOUT_4BIT = 1
    BROWNOUT_2BIT = 2
    SHED_ONLY = 3


#: Target storage width per degraded level (NORMAL uses the method's own).
_LEVEL_WIDTH = {
    BrownoutLevel.BROWNOUT_4BIT: 4,
    BrownoutLevel.BROWNOUT_2BIT: 2,
    BrownoutLevel.SHED_ONLY: 2,
}


@dataclass(frozen=True)
class BrownoutTransition:
    """One recorded level change."""

    time: float
    src: BrownoutLevel
    dst: BrownoutLevel
    stress: float


@dataclass(frozen=True)
class BrownoutConfig:
    """Hysteresis thresholds and the quality ladder.

    ``enter_thresholds[i]`` is the stress at which level ``i`` deepens to
    ``i+1``; ``exit_thresholds[i]`` (strictly lower) is the stress below
    which level ``i+1`` relaxes back to ``i``.  Both are in units of the
    normalized stress signal (1.0 = queue delay equals ``delay_scale_s``
    or KV pressure equals ``kv_scale``).
    """

    ladder: Tuple[int, ...] = DEFAULT_LADDER
    delay_scale_s: float = 5.0
    kv_scale: float = 1.5
    ewma_alpha: float = 0.3
    enter_thresholds: Tuple[float, float, float] = (1.0, 2.0, 4.0)
    exit_thresholds: Tuple[float, float, float] = (0.5, 1.0, 2.0)
    #: Minimum dwell between any two transitions (seconds).
    cooldown_s: float = 10.0
    #: Per-level cap on a new request's total tokens (prompt + gen):
    #: brownout also shrinks the per-request KV budget so one giant
    #: context cannot monopolize the squeezed cache.  ``None`` = no cap;
    #: the SHED_ONLY entry is ignored (nothing new is admitted there).
    request_token_caps: Tuple[Optional[int], ...] = (None, 8192, 4096, 0)

    def __post_init__(self) -> None:
        if len(self.enter_thresholds) != 3 or len(self.exit_thresholds) != 3:
            raise ValueError("need one enter/exit threshold per degraded level")
        if list(self.enter_thresholds) != sorted(self.enter_thresholds):
            raise ValueError("enter_thresholds must be ascending")
        if any(
            x >= e for x, e in zip(self.exit_thresholds, self.enter_thresholds)
        ):
            raise ValueError(
                "each exit threshold must sit strictly below its enter "
                "threshold (the hysteresis band)"
            )
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must lie in (0, 1]")
        if self.delay_scale_s <= 0 or self.kv_scale <= 0:
            raise ValueError("signal scales must be positive")
        if self.cooldown_s <= 0:
            raise ValueError("cooldown_s must be positive")
        if len(self.request_token_caps) != 4:
            raise ValueError("request_token_caps needs one entry per level")


class BrownoutController:
    """EWMA-driven hysteresis state machine over :class:`BrownoutLevel`."""

    def __init__(self, config: BrownoutConfig = BrownoutConfig()):
        self.config = config
        self.level = BrownoutLevel.NORMAL
        self.ewma_delay = 0.0
        self.ewma_kv = 0.0
        self.transitions: List[BrownoutTransition] = []
        self._last_transition: Optional[float] = None

    # -- signal path ---------------------------------------------------------
    @property
    def stress(self) -> float:
        """The scalar the thresholds compare against."""
        return max(
            self.ewma_delay / self.config.delay_scale_s,
            self.ewma_kv / self.config.kv_scale,
        )

    def observe(self, now: float, queue_delay: float, kv_pressure: float) -> None:
        """Fold one sample into the EWMAs and maybe transition one level.

        ``queue_delay`` is the engine's head-of-queue age (seconds);
        ``kv_pressure`` its resident + queued block demand fraction.
        """
        a = self.config.ewma_alpha
        self.ewma_delay += a * (queue_delay - self.ewma_delay)
        kv = min(kv_pressure, 1e6)  # inf-guard: an empty allocator reports inf
        self.ewma_kv += a * (kv - self.ewma_kv)

        if (
            self._last_transition is not None
            and now - self._last_transition < self.config.cooldown_s
        ):
            return
        stress = self.stress
        level = int(self.level)
        if level < int(BrownoutLevel.SHED_ONLY) and stress >= self.config.enter_thresholds[level]:
            self._move(now, BrownoutLevel(level + 1), stress)
        elif level > int(BrownoutLevel.NORMAL) and stress < self.config.exit_thresholds[level - 1]:
            self._move(now, BrownoutLevel(level - 1), stress)

    def _move(self, now: float, dst: BrownoutLevel, stress: float) -> None:
        self.transitions.append(
            BrownoutTransition(time=now, src=self.level, dst=dst, stress=stress)
        )
        self.level = dst
        self._last_transition = now

    # -- what the current level means for a new request ----------------------
    @property
    def admits_new_work(self) -> bool:
        return self.level is not BrownoutLevel.SHED_ONLY

    @property
    def request_token_cap(self) -> Optional[int]:
        return self.config.request_token_caps[int(self.level)]

    def bits_for(self, method: MethodSpec) -> float:
        """Effective KV bits a request admitted *now* is stored at.

        The level's target width is snapped onto the guard ladder; the
        method's metadata overhead (fractional bits for scales/zeros)
        rides on top, and a method already narrower than the target stays
        put — brownout only ever *reduces* precision.
        """
        if method.kind == "fp16" or self.level is BrownoutLevel.NORMAL:
            return method.kv_bits
        from repro.core.headwise import snap_to_ladder

        target = _LEVEL_WIDTH[self.level]
        snapped = int(
            snap_to_ladder(np.array([target], dtype=np.int32), self.config.ladder)[0]
        )
        base_width = int(method.kv_bits)
        metadata = method.kv_bits - base_width
        return min(base_width, snapped) + metadata

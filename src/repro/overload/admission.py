"""Admission control: a token bucket plus a KV-pressure gate.

The serving engine (PR 1) accepts every submission unconditionally and
lets the FCFS queue grow without bound — under sustained overload every
request's TTFT blows past its SLO and *zero* goodput survives, even
though the engine already exposes the saturation signals
(``queue_depth``, ``kv_pressure``).  Admission control turns those
signals into a decision made *before* any work is spent:

* **ACCEPT** — the request enters the queue; its work cost
  (``prompt_len + gen_len`` tokens) is deducted from the bucket.
* **REJECT** — terminal.  The request is recorded with status
  ``REJECTED`` and a reason; it is never silently dropped, so the
  conservation invariant extends to
  ``submitted = completed + failed + rejected + shed + in-flight``.
* **DEFER** — try again after ``defer_retry_s``.  Deferrals are bounded
  (``max_defers``); the budget's exhaustion turns the next DEFER into a
  REJECT so every request terminates.

The bucket refills at ``rate_tokens_per_s`` up to ``burst_tokens``: it
bounds the *sustained* work rate while letting bursts through, the
classic surge-protection shape.  The KV gate reads the engine's
``kv_pressure`` (resident + queued demand as a fraction of device
blocks): above ``kv_defer_pressure`` new work is deferred (the queue
alone will oversubscribe HBM), above ``kv_reject_pressure`` it is turned
away outright.  Everything is driven by the simulated clock passed in,
so runs stay byte-identical across reruns of the same seed.

Multi-tenancy (:mod:`repro.prefix.tenancy`) adds two tenant-aware gates
on top: a per-tenant token bucket (one tenant's surge defers *that
tenant*, not the fleet) and weighted fair-share enforcement that kicks
in only under KV pressure — a tenant holding more than ``slack`` times
its weight-proportional share of admitted work is deferred first, so
the gate is fair per tenant, not just safe globally.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

from repro.prefix.tenancy import TenantConfig, TenantLedger

if TYPE_CHECKING:  # pragma: no cover - annotation-only; avoids an import
    # cycle (serving.engine imports this module).
    from repro.serving.request import RequestRecord

__all__ = ["AdmissionVerdict", "AdmissionConfig", "AdmissionController"]


class AdmissionVerdict(enum.Enum):
    ACCEPT = "accept"
    REJECT = "reject"
    DEFER = "defer"


@dataclass(frozen=True)
class AdmissionConfig:
    """Admission-control tunables.

    Attributes
    ----------
    rate_tokens_per_s:
        Sustained work-token (prompt + generation) refill rate of the
        bucket.  ``None`` disables the bucket (gate on queue/KV only).
    burst_tokens:
        Bucket capacity: the largest burst admitted at once.
    max_queue_depth:
        Hard bound on the waiting queue; submissions past it are
        rejected (``queue_full``).  ``None`` = unbounded.
    kv_defer_pressure / kv_reject_pressure:
        KV-pressure gates (see module docstring);
        ``defer`` must not exceed ``reject``.
    defer_retry_s:
        How long a deferred submission waits before re-offering.
    max_defers:
        DEFER budget per request; exhausted -> REJECT (``defer_budget``).
    """

    rate_tokens_per_s: Optional[float] = None
    burst_tokens: float = 50_000.0
    max_queue_depth: Optional[int] = 64
    kv_defer_pressure: float = 1.5
    kv_reject_pressure: float = 3.0
    defer_retry_s: float = 1.0
    max_defers: int = 4
    #: Explicit per-tenant contracts (rate limits, priority, weight).
    tenants: Tuple[TenantConfig, ...] = ()
    #: Contract applied to tenants without an explicit entry; ``None``
    #: leaves unknown tenants unlimited (weight 1, no bucket).
    default_tenant: Optional[TenantConfig] = None
    #: Weighted fair-share gate: above ``fair_share_pressure`` KV
    #: pressure, a tenant whose admitted-work share exceeds
    #: ``fair_share_slack`` times its weighted entitlement is deferred
    #: (``fair_share``).  ``None`` slack disables the gate.
    fair_share_slack: Optional[float] = 2.0
    fair_share_pressure: float = 1.0

    def __post_init__(self) -> None:
        if self.fair_share_slack is not None and self.fair_share_slack < 1.0:
            raise ValueError("fair_share_slack must be >= 1 (or None)")
        if self.fair_share_pressure < 0:
            raise ValueError("fair_share_pressure must be >= 0")
        if self.rate_tokens_per_s is not None and self.rate_tokens_per_s <= 0:
            raise ValueError("rate_tokens_per_s must be positive (or None)")
        if self.burst_tokens <= 0:
            raise ValueError("burst_tokens must be positive")
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1 (or None)")
        if self.kv_defer_pressure > self.kv_reject_pressure:
            raise ValueError("kv_defer_pressure must not exceed kv_reject_pressure")
        if self.kv_defer_pressure <= 0:
            raise ValueError("KV pressure gates must be positive")
        if self.defer_retry_s <= 0:
            raise ValueError("defer_retry_s must be positive")
        if self.max_defers < 0:
            raise ValueError("max_defers must be >= 0")


class AdmissionController:
    """Deterministic token-bucket + pressure gate in front of a queue."""

    def __init__(self, config: AdmissionConfig):
        self.config = config
        self.bucket = config.burst_tokens
        self._last_refill = 0.0
        #: Verdict tallies for operator visibility.
        self.accepted = 0
        self.rejected = 0
        self.deferred = 0
        #: Per-tenant buckets and fair-share ledger (always present; it
        #: is inert when no tenant has a bucket and slack is None).
        self.tenants = TenantLedger(
            config.tenants, default=config.default_tenant
        )

    def _refill(self, now: float) -> None:
        if self.config.rate_tokens_per_s is None:
            return
        if now > self._last_refill:
            self.bucket = min(
                self.config.burst_tokens,
                self.bucket + (now - self._last_refill) * self.config.rate_tokens_per_s,
            )
            self._last_refill = now

    @staticmethod
    def cost(record: RequestRecord) -> float:
        """Work cost of one request in bucket tokens."""
        return float(record.request.total_tokens)

    def decide(
        self,
        record: RequestRecord,
        now: float,
        queue_depth: int,
        kv_pressure: float,
    ) -> Tuple[AdmissionVerdict, str]:
        """One admission decision.  Mutates the bucket only on ACCEPT and
        the record's ``defers`` counter only on DEFER."""
        cfg = self.config
        tenant = record.request.tenant_id
        self._refill(now)
        verdict, reason = AdmissionVerdict.ACCEPT, "ok"
        if cfg.max_queue_depth is not None and queue_depth >= cfg.max_queue_depth:
            verdict, reason = AdmissionVerdict.REJECT, "queue_full"
        elif kv_pressure >= cfg.kv_reject_pressure:
            verdict, reason = AdmissionVerdict.REJECT, "kv_pressure"
        elif kv_pressure >= cfg.kv_defer_pressure:
            verdict, reason = AdmissionVerdict.DEFER, "kv_pressure"
        elif not self.tenants.has_budget(tenant, self.cost(record), now):
            verdict, reason = AdmissionVerdict.DEFER, "tenant_rate"
        elif (
            cfg.fair_share_slack is not None
            and kv_pressure >= cfg.fair_share_pressure
            and self.tenants.over_fair_share(tenant, cfg.fair_share_slack)
        ):
            verdict, reason = AdmissionVerdict.DEFER, "fair_share"
        elif (
            cfg.rate_tokens_per_s is not None
            and self.cost(record) > self.bucket
        ):
            # A bucket with no refill rate is disabled, not a lifetime
            # cap (the docstring's contract); only gate when it refills.
            verdict, reason = AdmissionVerdict.DEFER, "token_bucket"

        if verdict is AdmissionVerdict.DEFER and record.defers >= cfg.max_defers:
            verdict, reason = AdmissionVerdict.REJECT, "defer_budget"
        if verdict is AdmissionVerdict.ACCEPT:
            if cfg.rate_tokens_per_s is not None:
                self.bucket -= self.cost(record)
            self.tenants.spend(tenant, self.cost(record))
            self.accepted += 1
        elif verdict is AdmissionVerdict.DEFER:
            record.defers += 1
            self.tenants.note_deferred(tenant)
            self.deferred += 1
        else:
            self.rejected += 1
        return verdict, reason

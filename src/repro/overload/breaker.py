"""Per-replica circuit breaker: overload spills instead of cascading.

A replica that keeps timing out dispatches (stalled hardware, a queue it
will never drain) is worse than a crashed one: the router keeps feeding
it work that each costs a timeout eviction, a retry, and re-prefill on
another replica — the classic retry-storm cascade.  The breaker follows
the standard three-state pattern:

* **CLOSED** — healthy; dispatches flow.  ``failure_threshold``
  *consecutive* dispatch timeouts trip it.
* **OPEN** — the router skips the replica entirely for
  ``open_duration_s`` (load spills to the rest of the fleet).
* **HALF_OPEN** — after the window, up to ``half_open_probes`` probe
  dispatches are allowed through.  A probe that produces a first token
  closes the breaker; a probe that times out re-trips it for a fresh
  window.

The breaker is advisory at the fleet edge: if *every* dispatchable
replica's breaker is open, the simulator routes anyway (an open breaker
must never make the whole fleet unreachable — shedding that work is the
admission controller's job, not the breaker's).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["BreakerState", "BreakerConfig", "CircuitBreaker"]


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerConfig:
    """Trip/probe tunables."""

    failure_threshold: int = 3
    open_duration_s: float = 30.0
    half_open_probes: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.open_duration_s <= 0:
            raise ValueError("open_duration_s must be positive")
        if self.half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")


class CircuitBreaker:
    """Consecutive-failure breaker with half-open probing."""

    def __init__(self, config: BreakerConfig = BreakerConfig()):
        self.config = config
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_until = 0.0
        self._probes_in_flight = 0
        #: Times the breaker tripped (CLOSED/HALF_OPEN -> OPEN).
        self.trips = 0

    def state(self, now: float) -> BreakerState:
        """Current state; OPEN decays to HALF_OPEN once the window ends."""
        if self._state is BreakerState.OPEN and now >= self._opened_until:
            self._state = BreakerState.HALF_OPEN
            self._probes_in_flight = 0
        return self._state

    def allows(self, now: float) -> bool:
        """May the router dispatch to this replica right now?"""
        state = self.state(now)
        if state is BreakerState.CLOSED:
            return True
        if state is BreakerState.OPEN:
            return False
        return self._probes_in_flight < self.config.half_open_probes

    def record_dispatch(self, now: float) -> None:
        """A dispatch was actually routed here (counts half-open probes)."""
        if self.state(now) is BreakerState.HALF_OPEN:
            self._probes_in_flight += 1

    def record_failure(self, now: float) -> None:
        """One dispatch timeout on this replica."""
        self._consecutive_failures += 1
        state = self.state(now)
        tripped = state is BreakerState.HALF_OPEN or (
            state is BreakerState.CLOSED
            and self._consecutive_failures >= self.config.failure_threshold
        )
        if tripped:
            self._state = BreakerState.OPEN
            self._opened_until = now + self.config.open_duration_s
            self._consecutive_failures = 0
            self._probes_in_flight = 0
            self.trips += 1

    def record_success(self, now: float) -> None:
        """A dispatch here produced its first token in time."""
        self._consecutive_failures = 0
        if self.state(now) is not BreakerState.OPEN:
            self._state = BreakerState.CLOSED
            self._probes_in_flight = 0

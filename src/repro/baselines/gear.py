"""GEAR-L baseline (Kang et al., 2024): quantization + low-rank residual.

GEAR-L compresses the KV cache with group-wise uniform quantization (we use
the KCVT layout the paper's Table 2 references: keys per-channel, values
per-token, like KIVI) and then approximates the *quantization error* with a
rank-``r`` SVD whose factors are stored in FP16:

    X  ~=  Dequant(Q(X)) + U_r S_r V_r^T

A recent-token FP16 residual window is kept exactly as in KIVI.  The extra
low-rank factors buy accuracy at the cost of extra memory and — in the
performance model — extra decode-time reconstruction FLOPs (the "GEAR has
high dequantization overhead" effect of Figure 6).

The low-rank term is computed per flushed group and per head, a streaming
variant of the paper's construction that preserves its error-compensation
behaviour while staying compatible with autoregressive flushing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.baselines.base import AttentionBackend, DecodeState
from repro.baselines.kivi import _quantize_key_group, _quantize_value_group
from repro.fp.formats import FP16, quantize_to_format
from repro.quant.qtensor import QuantizedTensor

__all__ = ["GEARConfig", "GEARState", "GEARAttention", "low_rank_factors"]


@dataclass(frozen=True)
class GEARConfig:
    """GEAR-L hyper-parameters (paper notation: ``GEAR-L_{r=4}``)."""

    bits: int = 4
    group_size: int = 64
    residual: int = 64
    rank: int = 4

    def __post_init__(self) -> None:
        if self.bits not in (2, 3, 4, 8):
            raise ValueError(f"unsupported GEAR bit-width: {self.bits}")
        if self.rank < 1:
            raise ValueError("rank must be >= 1")


def low_rank_factors(err: np.ndarray, rank: int) -> Tuple[np.ndarray, np.ndarray]:
    """Rank-``rank`` factors of a ``(heads, t, d)`` error tensor.

    Returns ``(A, B)`` with shapes ``(heads, t, r)`` and ``(heads, r, d)``
    such that ``A @ B`` is the best rank-``r`` approximation per head.
    Factors are rounded to FP16, as GEAR stores them.
    """
    err = np.asarray(err, dtype=np.float64)
    h, t, d = err.shape
    r = min(rank, t, d)
    a = np.empty((h, t, r))
    b = np.empty((h, r, d))
    for i in range(h):
        u, s, vt = np.linalg.svd(err[i], full_matrices=False)
        a[i] = u[:, :r] * s[:r]
        b[i] = vt[:r, :]
    return quantize_to_format(a, FP16), quantize_to_format(b, FP16)


class _Group:
    """One flushed group: quantized backbone + low-rank error factors."""

    def __init__(self, qt: QuantizedTensor, a: np.ndarray, b: np.ndarray, shape):
        self.qt = qt
        self.a = a
        self.b = b
        self.shape = shape

    def dequantize(self) -> np.ndarray:
        base = self.qt.dequantize().reshape(self.shape)
        return base + self.a @ self.b

    @property
    def storage_bits(self) -> int:
        return (
            self.qt.storage_bits
            + int(np.prod(self.a.shape)) * 16
            + int(np.prod(self.b.shape)) * 16
        )


class GEARState(DecodeState):
    """Quantized+low-rank groups plus an FP16 residual window."""

    def __init__(self, config: GEARConfig, n_heads: int, head_dim: int):
        self.config = config
        self.n_heads = n_heads
        self.head_dim = head_dim
        self.k_groups: List[_Group] = []
        self.v_groups: List[_Group] = []
        self.k_resid = np.zeros((n_heads, 0, head_dim), dtype=np.float64)
        self.v_resid = np.zeros((n_heads, 0, head_dim), dtype=np.float64)

    def _flush_group(self, chunk_k: np.ndarray, chunk_v: np.ndarray) -> None:
        cfg = self.config
        qk = _quantize_key_group(chunk_k, cfg.bits)
        err_k = chunk_k - qk.dequantize()
        ak, bk = low_rank_factors(err_k, cfg.rank)
        self.k_groups.append(_Group(qk, ak, bk, chunk_k.shape))

        qv = _quantize_value_group(chunk_v, cfg.bits, cfg.group_size)
        err_v = chunk_v - qv.dequantize().reshape(chunk_v.shape)
        av, bv = low_rank_factors(err_v, cfg.rank)
        self.v_groups.append(_Group(qv, av, bv, chunk_v.shape))

    def ingest(self, k: np.ndarray, v: np.ndarray) -> None:
        k = quantize_to_format(k, FP16)
        v = quantize_to_format(v, FP16)
        self.k_resid = np.concatenate([self.k_resid, k], axis=1)
        self.v_resid = np.concatenate([self.v_resid, v], axis=1)
        g = self.config.group_size
        while self.k_resid.shape[1] >= self.config.residual and self.k_resid.shape[1] >= g:
            chunk_k, self.k_resid = self.k_resid[:, :g, :], self.k_resid[:, g:, :]
            chunk_v, self.v_resid = self.v_resid[:, :g, :], self.v_resid[:, g:, :]
            self._flush_group(chunk_k, chunk_v)

    def dequantized(self) -> Tuple[np.ndarray, np.ndarray]:
        k_parts = [grp.dequantize() for grp in self.k_groups] + [self.k_resid]
        v_parts = [grp.dequantize() for grp in self.v_groups] + [self.v_resid]
        return np.concatenate(k_parts, axis=1), np.concatenate(v_parts, axis=1)

    @property
    def seq_len(self) -> int:
        return len(self.k_groups) * self.config.group_size + self.k_resid.shape[1]

    def _logical_elements(self) -> int:
        return 2 * self.seq_len * self.n_heads * self.head_dim

    @property
    def storage_bits(self) -> int:
        total = sum(grp.storage_bits for grp in self.k_groups)
        total += sum(grp.storage_bits for grp in self.v_groups)
        total += int(np.prod(self.k_resid.shape)) * 16
        total += int(np.prod(self.v_resid.shape)) * 16
        return total


class GEARAttention(AttentionBackend):
    """GEAR-L compression + exact FlashAttention on reconstructed KV."""

    name = "gear"

    def __init__(self, config: GEARConfig = GEARConfig()):
        self.config = config

    def prefill(
        self,
        q: np.ndarray,
        k: np.ndarray,
        v: np.ndarray,
        causal: bool = True,
        scale: Optional[float] = None,
    ) -> Tuple[np.ndarray, GEARState]:
        k = np.asarray(k, dtype=np.float64)
        v = np.asarray(v, dtype=np.float64)
        out = self._flash_over(np.asarray(q, dtype=np.float64), k, v, causal=causal, scale=scale)
        state = GEARState(self.config, n_heads=k.shape[0], head_dim=k.shape[-1])
        state.ingest(k, v)
        return out, state

    def decode_step(
        self,
        q_t: np.ndarray,
        k_t: np.ndarray,
        v_t: np.ndarray,
        state: GEARState,
        scale: Optional[float] = None,
    ) -> np.ndarray:
        k_t = np.asarray(k_t, dtype=np.float64).reshape(state.n_heads, 1, state.head_dim)
        v_t = np.asarray(v_t, dtype=np.float64).reshape(state.n_heads, 1, state.head_dim)
        state.ingest(k_t, v_t)
        k_full, v_full = state.dequantized()
        q = np.asarray(q_t, dtype=np.float64)[:, None, :]
        out = self._flash_over(q, k_full, v_full, causal=False, scale=scale)
        return out[:, 0, :]

"""Baseline attention/KV-compression methods the paper compares against.

All baselines implement :class:`repro.baselines.base.AttentionBackend`, the
same prefill/decode interface as :class:`repro.core.turbo.TurboAttention`,
so the task harness and performance model can sweep methods uniformly:

* :class:`repro.baselines.fp16_cache.FP16Attention` — FlashAttention over
  an uncompressed FP16 cache (the paper's exact baseline).
* :class:`repro.baselines.kivi.KIVIAttention` — per-channel key / per-token
  value asymmetric group quantization with an FP16 residual window
  (Liu et al., 2024).
* :class:`repro.baselines.gear.GEARAttention` — GEAR-L: group quantization
  plus rank-``r`` low-rank compensation of the quantization residual, with
  an FP16 residual window (Kang et al., 2024).
"""

from repro.baselines.base import AttentionBackend, DecodeState
from repro.baselines.fp16_cache import FP16Attention
from repro.baselines.kivi import KIVIAttention, KIVIConfig
from repro.baselines.gear import GEARAttention, GEARConfig
from repro.baselines.fp8_flash import FP8Attention, FP8State

__all__ = [
    "AttentionBackend",
    "DecodeState",
    "FP16Attention",
    "KIVIAttention",
    "KIVIConfig",
    "GEARAttention",
    "GEARConfig",
    "FP8Attention",
    "FP8State",
]

"""Common interface for attention backends.

An :class:`AttentionBackend` owns a KV-representation strategy and exposes
the two phases of generation:

* ``prefill(q, k, v)`` — process the prompt, return the attention output
  and an opaque per-layer state object;
* ``decode_step(q_t, k_t, v_t, state)`` — process one generated token.

States report ``storage_bits`` so the memory/throughput models can compare
methods honestly (codes + scales + zero-points + residual windows + any
low-rank factors).

Shapes follow the core kernels: ``q`` is ``(q_heads, n, d)``, ``k``/``v``
are ``(kv_heads, n, d)`` with ``q_heads`` a multiple of ``kv_heads``;
decode vectors drop the token axis.
"""

from __future__ import annotations

import abc
from typing import Any, Optional, Tuple

import numpy as np

from repro.attention.flash import flash_attention

__all__ = ["AttentionBackend", "DecodeState", "gqa_expand"]


def gqa_expand(x: np.ndarray, q_heads: int) -> np.ndarray:
    """Repeat KV heads so ``x`` matches ``q_heads`` (grouped-query attn)."""
    kv_heads = x.shape[0]
    if q_heads == kv_heads:
        return x
    if q_heads % kv_heads != 0:
        raise ValueError(f"q_heads {q_heads} not a multiple of kv_heads {kv_heads}")
    return np.repeat(x, q_heads // kv_heads, axis=0)


class DecodeState(abc.ABC):
    """Opaque per-layer KV state with storage accounting."""

    @property
    @abc.abstractmethod
    def seq_len(self) -> int:
        """Tokens currently represented."""

    @property
    @abc.abstractmethod
    def storage_bits(self) -> int:
        """Total bits the representation occupies."""

    @property
    def storage_bytes(self) -> float:
        return self.storage_bits / 8.0

    def effective_bits_per_value(self) -> float:
        """Average stored bits per K/V element, metadata included."""
        n = self._logical_elements()
        return self.storage_bits / n if n else 0.0

    def compression_ratio(self, reference_bits: int = 16) -> float:
        n = self._logical_elements()
        if n == 0 or self.storage_bits == 0:
            return 1.0
        return (n * reference_bits) / self.storage_bits

    @abc.abstractmethod
    def _logical_elements(self) -> int:
        """Number of K/V scalars represented (2 * seq * heads * dim)."""


class AttentionBackend(abc.ABC):
    """Prefill/decode attention with a method-specific KV representation."""

    #: Human-readable method name used by the harness tables.
    name: str = "base"

    @abc.abstractmethod
    def prefill(
        self,
        q: np.ndarray,
        k: np.ndarray,
        v: np.ndarray,
        causal: bool = True,
        scale: Optional[float] = None,
    ) -> Tuple[np.ndarray, Any]:
        """Process the prompt; return ``(output, state)``."""

    @abc.abstractmethod
    def decode_step(
        self,
        q_t: np.ndarray,
        k_t: np.ndarray,
        v_t: np.ndarray,
        state: Any,
        scale: Optional[float] = None,
    ) -> np.ndarray:
        """Process one generated token; return its attention output."""

    # Shared helper: exact FP16 flash attention over explicit K/V arrays.
    @staticmethod
    def _flash_over(
        q: np.ndarray,
        k: np.ndarray,
        v: np.ndarray,
        causal: bool,
        scale: Optional[float],
    ) -> np.ndarray:
        k = gqa_expand(k, q.shape[0])
        v = gqa_expand(v, q.shape[0])
        return flash_attention(q, k, v, causal=causal, scale=scale, emulate_fp16=True)

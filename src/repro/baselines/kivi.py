"""KIVI baseline (Liu et al., 2024): asymmetric KV cache group quantization.

KIVI's layout, reproduced here:

* **Key cache — per-channel**: tokens are grouped along the sequence axis
  (group size ``g``, 64 in the paper's best-accuracy mode); within each
  group every channel gets its own asymmetric scale/zero (statistics over
  the ``g`` tokens).
* **Value cache — per-token**: every token row is quantized with asymmetric
  statistics over channel groups of size ``g``.
* **FP16 residual window**: the most recent ``n_b`` tokens stay in full
  precision and are only quantized once a full group has accumulated.

Attention always runs over the *dequantized* cache (+ FP16 residual) with
exact FlashAttention — this is the "decompress to FP16 then FlashAttention"
pipeline whose dequantization latency Figure 1b charges against KIVI.
Prefill compute is exact; quantization error enters through decode reads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.baselines.base import AttentionBackend, DecodeState
from repro.fp.formats import FP16, quantize_to_format
from repro.quant.qtensor import Granularity, QuantizedTensor

__all__ = ["KIVIConfig", "KIVIState", "KIVIAttention"]


@dataclass(frozen=True)
class KIVIConfig:
    """KIVI hyper-parameters (paper notation: ``KIVI_{g=64, n_b=64}``)."""

    bits: int = 4
    group_size: int = 64
    residual: int = 64

    def __post_init__(self) -> None:
        if self.bits not in (2, 3, 4, 8):
            raise ValueError(f"unsupported KIVI bit-width: {self.bits}")
        if self.group_size <= 0 or self.residual <= 0:
            raise ValueError("group_size and residual must be positive")


def _quantize_key_group(chunk: np.ndarray, bits: int) -> QuantizedTensor:
    """Per-channel asymmetric quantization of a ``(heads, g, d)`` chunk."""
    return QuantizedTensor.from_float(
        chunk, bits=bits, symmetric=False, axis=-2, granularity=Granularity.PER_CHANNEL
    )


def _quantize_value_group(chunk: np.ndarray, bits: int, group_size: int) -> QuantizedTensor:
    """Per-token (channel-grouped) asymmetric quantization of a chunk."""
    h, t, d = chunk.shape
    gc = min(group_size, d)
    if d % gc:
        gc = d  # fall back to whole-row statistics for awkward dims
    grouped = chunk.reshape(h, t, d // gc, gc)
    qt = QuantizedTensor.from_float(
        grouped, bits=bits, symmetric=False, axis=-1, granularity=Granularity.PER_TOKEN
    )
    return qt


class KIVIState(DecodeState):
    """Quantized groups + FP16 residual window."""

    def __init__(self, config: KIVIConfig, n_heads: int, head_dim: int):
        self.config = config
        self.n_heads = n_heads
        self.head_dim = head_dim
        self.k_groups: List[QuantizedTensor] = []
        self.v_groups: List[QuantizedTensor] = []
        self.k_resid = np.zeros((n_heads, 0, head_dim), dtype=np.float64)
        self.v_resid = np.zeros((n_heads, 0, head_dim), dtype=np.float64)

    # -- construction -----------------------------------------------------
    def ingest(self, k: np.ndarray, v: np.ndarray) -> None:
        """Append tokens, flushing full groups out of the residual window."""
        k = quantize_to_format(k, FP16)
        v = quantize_to_format(v, FP16)
        self.k_resid = np.concatenate([self.k_resid, k], axis=1)
        self.v_resid = np.concatenate([self.v_resid, v], axis=1)
        g = self.config.group_size
        while self.k_resid.shape[1] >= self.config.residual and self.k_resid.shape[1] >= g:
            chunk_k, self.k_resid = self.k_resid[:, :g, :], self.k_resid[:, g:, :]
            chunk_v, self.v_resid = self.v_resid[:, :g, :], self.v_resid[:, g:, :]
            self.k_groups.append(_quantize_key_group(chunk_k, self.config.bits))
            self.v_groups.append(
                _quantize_value_group(chunk_v, self.config.bits, g)
            )

    # -- reads ------------------------------------------------------------
    def dequantized(self) -> Tuple[np.ndarray, np.ndarray]:
        """Full K/V as the attention kernel sees them (lossy + residual)."""
        h, d = self.n_heads, self.head_dim
        k_parts = [qt.dequantize() for qt in self.k_groups] + [self.k_resid]
        v_parts = [qt.dequantize().reshape(h, -1, d) for qt in self.v_groups] + [self.v_resid]
        return np.concatenate(k_parts, axis=1), np.concatenate(v_parts, axis=1)

    # -- accounting ---------------------------------------------------------
    @property
    def seq_len(self) -> int:
        g = self.config.group_size
        return len(self.k_groups) * g + self.k_resid.shape[1]

    def _logical_elements(self) -> int:
        return 2 * self.seq_len * self.n_heads * self.head_dim

    @property
    def storage_bits(self) -> int:
        total = sum(qt.storage_bits for qt in self.k_groups)
        total += sum(qt.storage_bits for qt in self.v_groups)
        total += int(np.prod(self.k_resid.shape)) * 16
        total += int(np.prod(self.v_resid.shape)) * 16
        return total


class KIVIAttention(AttentionBackend):
    """KIVI cache compression + exact FlashAttention on dequantized KV."""

    name = "kivi"

    def __init__(self, config: KIVIConfig = KIVIConfig()):
        self.config = config

    def prefill(
        self,
        q: np.ndarray,
        k: np.ndarray,
        v: np.ndarray,
        causal: bool = True,
        scale: Optional[float] = None,
    ) -> Tuple[np.ndarray, KIVIState]:
        k = np.asarray(k, dtype=np.float64)
        v = np.asarray(v, dtype=np.float64)
        out = self._flash_over(np.asarray(q, dtype=np.float64), k, v, causal=causal, scale=scale)
        state = KIVIState(self.config, n_heads=k.shape[0], head_dim=k.shape[-1])
        state.ingest(k, v)
        return out, state

    def decode_step(
        self,
        q_t: np.ndarray,
        k_t: np.ndarray,
        v_t: np.ndarray,
        state: KIVIState,
        scale: Optional[float] = None,
    ) -> np.ndarray:
        k_t = np.asarray(k_t, dtype=np.float64).reshape(state.n_heads, 1, state.head_dim)
        v_t = np.asarray(v_t, dtype=np.float64).reshape(state.n_heads, 1, state.head_dim)
        state.ingest(k_t, v_t)
        k_full, v_full = state.dequantized()
        q = np.asarray(q_t, dtype=np.float64)[:, None, :]
        out = self._flash_over(q, k_full, v_full, causal=False, scale=scale)
        return out[:, 0, :]

"""FP8 flash attention backend (FlashAttention-3-style low precision).

Q/K/V tiles are scaled per (head, tile) so their maxima sit at half the
E4M3 range, rounded to FP8, and multiplied on (emulated) FP8 tensor cores
with FP32 accumulation; the probability tile takes the same treatment for
the PV MatMul.  The KV cache stores FP8 values plus one FP16 scale per
(head, tile) — 8.25 effective bits, between FP16 and the INT4/2
progressive cache.

This is the "just use FP8" alternative to FlashQ's INT8 stage: comparable
compute-rate benefits on Hopper, but only ~2x cache compression and no
head-wise 2/4-bit path.  The accuracy harness can sweep it alongside the
other methods.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.baselines.base import AttentionBackend, DecodeState, gqa_expand
from repro.fp.fp8 import FP8_E4M3, fp8_tile_quantize
from repro.attention.masks import causal_mask_block
from repro.attention.online_softmax import OnlineSoftmaxState

__all__ = ["FP8State", "FP8Attention"]

_TILE = 64


class FP8State(DecodeState):
    """FP8 values + per-(head, tile) scales, tiled along the sequence."""

    def __init__(self, n_heads: int, head_dim: int, tile: int = _TILE):
        self.n_heads = n_heads
        self.head_dim = head_dim
        self.tile = tile
        self.k_vals = np.zeros((n_heads, 0, head_dim))
        self.v_vals = np.zeros((n_heads, 0, head_dim))
        self.k_scales: list = []
        self.v_scales: list = []
        self._pending_k = np.zeros((n_heads, 0, head_dim))
        self._pending_v = np.zeros((n_heads, 0, head_dim))

    def _flush(self, force: bool = False) -> None:
        while self._pending_k.shape[1] >= self.tile or (
            force and self._pending_k.shape[1] > 0
        ):
            n = min(self.tile, self._pending_k.shape[1])
            chunk_k, self._pending_k = (
                self._pending_k[:, :n, :],
                self._pending_k[:, n:, :],
            )
            chunk_v, self._pending_v = (
                self._pending_v[:, :n, :],
                self._pending_v[:, n:, :],
            )
            k8, ks = fp8_tile_quantize(chunk_k, FP8_E4M3)
            v8, vs = fp8_tile_quantize(chunk_v, FP8_E4M3)
            self.k_vals = np.concatenate([self.k_vals, k8 * ks], axis=1)
            self.v_vals = np.concatenate([self.v_vals, v8 * vs], axis=1)
            self.k_scales.append(ks)
            self.v_scales.append(vs)

    def ingest(self, k: np.ndarray, v: np.ndarray) -> None:
        self._pending_k = np.concatenate([self._pending_k, k], axis=1)
        self._pending_v = np.concatenate([self._pending_v, v], axis=1)
        self._flush()

    def dequantized(self) -> Tuple[np.ndarray, np.ndarray]:
        """Stored values (already scale-applied) + exact pending tail."""
        return (
            np.concatenate([self.k_vals, self._pending_k], axis=1),
            np.concatenate([self.v_vals, self._pending_v], axis=1),
        )

    @property
    def seq_len(self) -> int:
        return self.k_vals.shape[1] + self._pending_k.shape[1]

    def _logical_elements(self) -> int:
        return 2 * self.seq_len * self.n_heads * self.head_dim

    @property
    def storage_bits(self) -> int:
        stored = 2 * self.k_vals.shape[1] * self.n_heads * self.head_dim * 8
        scales = (len(self.k_scales) + len(self.v_scales)) * self.n_heads * 16
        pending = 2 * self._pending_k.shape[1] * self.n_heads * self.head_dim * 16
        return stored + scales + pending


class FP8Attention(AttentionBackend):
    """Flash attention with FP8 tile quantization (FA3 low-precision mode)."""

    name = "fp8"

    def __init__(self, tile: int = _TILE):
        self.tile = tile

    def _flash_fp8(
        self, q: np.ndarray, k: np.ndarray, v: np.ndarray, causal: bool, scale: Optional[float]
    ) -> np.ndarray:
        q = np.asarray(q, dtype=np.float64)
        k = gqa_expand(np.asarray(k, dtype=np.float64), q.shape[0])
        v = gqa_expand(np.asarray(v, dtype=np.float64), q.shape[0])
        n_q, d = q.shape[-2], q.shape[-1]
        n_k = k.shape[-2]
        sm_scale = scale if scale is not None else 1.0 / np.sqrt(d)
        offset = n_k - n_q
        out = np.zeros_like(q)
        for qs in range(0, n_q, self.tile):
            qe = min(qs + self.tile, n_q)
            q8, q_sc = fp8_tile_quantize(q[:, qs:qe, :], FP8_E4M3)
            state = OnlineSoftmaxState.initial(q.shape[:-2], qe - qs, d_v=d)
            for ks in range(0, n_k, self.tile):
                ke = min(ks + self.tile, n_k)
                if causal and ks > qe - 1 + offset:
                    break
                k8, k_sc = fp8_tile_quantize(k[:, ks:ke, :], FP8_E4M3)
                s_tile = (
                    q_sc * k_sc * (q8.astype(np.float32) @ np.swapaxes(k8, -1, -2).astype(np.float32))
                ) * sm_scale
                if causal:
                    s_tile = s_tile + causal_mask_block(qs, qe - qs, ks, ke - ks, offset)
                v8, v_sc = fp8_tile_quantize(v[:, ks:ke, :], FP8_E4M3)

                def pv_mm(p, vals, v_sc=v_sc):
                    p8, p_sc = fp8_tile_quantize(p, FP8_E4M3)
                    return p_sc * v_sc * (
                        p8.astype(np.float32) @ (vals / v_sc).astype(np.float32)
                    )

                state.update(
                    s_tile,
                    values=v8 * v_sc,
                    matmul=pv_mm,
                )
            o_tile, _ = state.finalize()
            out[:, qs:qe, :] = o_tile
        return out

    def prefill(
        self,
        q: np.ndarray,
        k: np.ndarray,
        v: np.ndarray,
        causal: bool = True,
        scale: Optional[float] = None,
    ):
        k = np.asarray(k, dtype=np.float64)
        v = np.asarray(v, dtype=np.float64)
        out = self._flash_fp8(q, k, v, causal=causal, scale=scale)
        state = FP8State(k.shape[0], k.shape[-1], tile=self.tile)
        state.ingest(k, v)
        return out, state

    def decode_step(
        self,
        q_t: np.ndarray,
        k_t: np.ndarray,
        v_t: np.ndarray,
        state: FP8State,
        scale: Optional[float] = None,
    ) -> np.ndarray:
        k_t = np.asarray(k_t, dtype=np.float64).reshape(state.n_heads, 1, state.head_dim)
        v_t = np.asarray(v_t, dtype=np.float64).reshape(state.n_heads, 1, state.head_dim)
        state.ingest(k_t, v_t)
        k_full, v_full = state.dequantized()
        q = np.asarray(q_t, dtype=np.float64)[:, None, :]
        out = self._flash_fp8(q, k_full, v_full, causal=False, scale=scale)
        return out[:, 0, :]

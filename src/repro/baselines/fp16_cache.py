"""FP16 FlashAttention baseline: exact attention, uncompressed cache.

This is the paper's "FlashAttention / FP16" row — no accuracy change, full
16-bit KV memory footprint.  The cache simply concatenates FP16-rounded
key/value vectors.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.baselines.base import AttentionBackend, DecodeState
from repro.fp.formats import FP16, quantize_to_format

__all__ = ["FP16State", "FP16Attention"]


class FP16State(DecodeState):
    """Dense FP16 key/value arrays of shape ``(kv_heads, n, d)``."""

    def __init__(self, k: np.ndarray, v: np.ndarray):
        self.k = quantize_to_format(k, FP16)
        self.v = quantize_to_format(v, FP16)

    def append(self, k_t: np.ndarray, v_t: np.ndarray) -> None:
        k_t = quantize_to_format(k_t, FP16).reshape(self.k.shape[0], 1, -1)
        v_t = quantize_to_format(v_t, FP16).reshape(self.v.shape[0], 1, -1)
        self.k = np.concatenate([self.k, k_t], axis=1)
        self.v = np.concatenate([self.v, v_t], axis=1)

    @property
    def seq_len(self) -> int:
        return self.k.shape[1]

    def _logical_elements(self) -> int:
        return 2 * int(np.prod(self.k.shape))  # k and v have equal shapes

    @property
    def storage_bits(self) -> int:
        return self._logical_elements() * 16 // 2 * 2  # 16 bits per element


class FP16Attention(AttentionBackend):
    """Exact FlashAttention over an FP16 cache."""

    name = "fp16"

    def prefill(
        self,
        q: np.ndarray,
        k: np.ndarray,
        v: np.ndarray,
        causal: bool = True,
        scale: Optional[float] = None,
    ) -> Tuple[np.ndarray, FP16State]:
        state = FP16State(k, v)
        out = self._flash_over(q, state.k, state.v, causal=causal, scale=scale)
        return out, state

    def decode_step(
        self,
        q_t: np.ndarray,
        k_t: np.ndarray,
        v_t: np.ndarray,
        state: FP16State,
        scale: Optional[float] = None,
    ) -> np.ndarray:
        state.append(k_t, v_t)
        q = np.asarray(q_t, dtype=np.float64)[:, None, :]
        out = self._flash_over(q, state.k, state.v, causal=False, scale=scale)
        return out[:, 0, :]

"""Run every table/figure harness and print the paper-style outputs.

Usage::

    python -m repro.harness.run_all [--quick]
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.harness import (
    ablations,
    cluster,
    disagg,
    faults,
    guard,
    needle,
    overload,
    prefix,
    recover,
    serving_sim,
    fig1,
    fig4,
    fig5,
    fig6,
    fig7a,
    fig7b,
    fig10,
    table1,
    table2,
    table3,
    table4,
    table5,
)

RUNNERS = {
    "fig1": fig1,
    "table1": table1,
    "table2": table2,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7a": fig7a,
    "fig7b": fig7b,
    "table3": table3,
    "table4": table4,
    "table5": table5,
    "fig10": fig10,
    "ablations": ablations,
    "serving": serving_sim,
    "cluster": cluster,
    "faults": faults,
    "disagg": disagg,
    "recover": recover,
    "overload": overload,
    "prefix": prefix,
    "guard": guard,
    "needle": needle,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="shrunken workloads")
    parser.add_argument(
        "--only", nargs="*", choices=sorted(RUNNERS), help="subset of experiments"
    )
    args = parser.parse_args(argv)
    names = args.only if args.only else list(RUNNERS)
    for name in names:
        t0 = time.time()
        print(f"\n{'=' * 72}\n== {name}\n{'=' * 72}")
        RUNNERS[name].main(quick=args.quick)
        print(f"[{name}: {time.time() - t0:.1f}s]")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Prefix-cache & multi-tenancy experiment: shared prompts are capacity.

Fleet traffic is dominated by shared prompt prefixes (system prompts,
few-shot scaffolds, session history) spread over thousands of tenants
with Zipf popularity.  This harness drives the content-addressed prefix
pool (:mod:`repro.prefix`) with exactly that shape and measures what
sharing buys at an *equal KV byte budget*:

* **Cache hits** — the Zipf-shared stream should resolve more than half
  of its offered prompt tokens from the pool (hit ratio > 0.5), because
  popular prefixes stay resident across requests and tenants.
* **TTFT win** — cache-hit prompt spans skip prefill compute, so the
  prefix engine's median TTFT beats the no-sharing engine's on the
  identical arrival stream, same allocator, same method.
* **Tenant fairness** — with per-tenant token buckets and weighted
  fair-share admission on top, hog tenants are deferred instead of
  monopolizing the fleet; the Jain index over per-tenant SLO attainment
  is reported for each mode.
* **Prefix locality routing** — on a fleet, the affinity router probes
  replica pools for *measured* warmth, so its fleet-wide hit ratio beats
  locality-blind round-robin on the same stream.
* **Conservation** — every submitted request terminates exactly once and
  every pool passes its block-conservation audit after the run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.cluster import ClusterConfig, ClusterSimulator
from repro.cluster.metrics import ClusterMetrics
from repro.harness.common import render_table
from repro.overload import AdmissionConfig
from repro.perf.attention_costs import METHODS
from repro.perf.e2e import ModelGeometry
from repro.prefix import PrefixCacheConfig, TenantConfig
from repro.serving import ServingEngine, zipf_shared_workload
from repro.serving.engine import EngineConfig
from repro.serving.metrics import SLO, ServingMetrics

__all__ = ["run", "main", "PREFIX_SLO", "PREFIX_METHOD", "tenancy_config"]

#: The method whose compressed cache the pool shares.
PREFIX_METHOD = "turbo4"

#: Deadlines the fairness/goodput numbers are judged against.
PREFIX_SLO = SLO(ttft_s=15.0, tpot_s=0.25)


def tenancy_config(slo: SLO = PREFIX_SLO) -> EngineConfig:
    """Prefix pool + multi-tenant admission (buckets and fair share).

    Every tenant gets the same default contract — a sustained per-tenant
    token rate far below the hog tenants' Zipf demand — so the heavy
    hitters are deferred while the long tail sails through.
    """
    return EngineConfig(
        slo=slo,
        prefix=PrefixCacheConfig(),
        admission=AdmissionConfig(
            max_queue_depth=None,
            default_tenant=TenantConfig(
                tenant_id=0, rate_tokens_per_s=2_000.0, burst_tokens=20_000.0
            ),
            fair_share_slack=2.0,
            fair_share_pressure=1.0,
            max_defers=8,
        ),
    )


@dataclass
class PrefixCell:
    """One single-engine mode on the shared workload."""

    mode: str  # "open" | "prefix" | "tenancy"
    metrics: ServingMetrics
    pool_problems: Tuple[str, ...]

    @property
    def conserved(self) -> bool:
        m = self.metrics
        return m.completed + m.failed + m.rejected + m.shed == m.total


@dataclass
class FleetCell:
    """One routing policy over a prefix-pooled fleet."""

    policy: str
    metrics: ClusterMetrics
    pool_problems: Tuple[str, ...]

    @property
    def conserved(self) -> bool:
        m = self.metrics
        return m.completed + m.failed + m.rejected + m.shed == m.total


def _workload(quick: bool) -> list:
    n = 400 if quick else 1200
    return zipf_shared_workload(
        n,
        arrival_rate=20.0,
        n_tenants=600 if quick else 2000,
        zipf_s=1.6,
        rng=np.random.default_rng(23),
    )


def _engine_config(mode: str) -> EngineConfig:
    if mode == "open":
        return EngineConfig(slo=PREFIX_SLO)
    if mode == "prefix":
        return EngineConfig(slo=PREFIX_SLO, prefix=PrefixCacheConfig())
    if mode == "tenancy":
        return tenancy_config()
    raise ValueError(f"unknown mode {mode!r}")


def run(quick: bool = False) -> Tuple[List[PrefixCell], List[FleetCell]]:
    model = ModelGeometry.phi3_medium()
    method = METHODS[PREFIX_METHOD]
    requests = _workload(quick)

    cells: List[PrefixCell] = []
    for mode in ("open", "prefix", "tenancy"):
        engine = ServingEngine(model, method, _engine_config(mode))
        metrics = engine.run(requests)
        problems: Tuple[str, ...] = ()
        if engine.prefix_pool is not None:
            problems = tuple(engine.prefix_pool.check_invariants())
        cells.append(PrefixCell(mode=mode, metrics=metrics, pool_problems=problems))

    fleet_requests = requests[: len(requests) // 2]
    fleet_cells: List[FleetCell] = []
    for policy in ("round_robin", "affinity"):
        sim = ClusterSimulator(
            model,
            method,
            ClusterConfig(
                n_replicas=3,
                policy=policy,
                slo=PREFIX_SLO,
                engine=EngineConfig(prefix=PrefixCacheConfig()),
            ),
        )
        metrics = sim.run(fleet_requests)
        problems: List[str] = []
        for replica in sim.replicas:
            if replica.engine.prefix_pool is not None:
                problems.extend(replica.engine.prefix_pool.check_invariants())
        fleet_cells.append(
            FleetCell(policy=policy, metrics=metrics, pool_problems=tuple(problems))
        )
    return cells, fleet_cells


def _fmt_ratio(value: float) -> str:
    return "-" if value != value else f"{value * 100:.0f}%"


def main(quick: bool = False) -> str:
    cells, fleet_cells = run(quick=quick)
    rows = []
    for c in cells:
        m = c.metrics
        rows.append(
            [
                c.mode,
                m.completed,
                m.rejected,
                m.shed,
                _fmt_ratio(m.prefix_hit_ratio),
                m.prefill_tokens_saved,
                m.shared_blocks,
                m.cow_copies,
                f"{m.p50_ttft:.2f}",
                f"{m.goodput_rps:.2f}",
                f"{m.fairness_jain:.3f}" if m.fairness_jain == m.fairness_jain else "-",
            ]
        )
    table = render_table(
        [
            "mode", "done", "rej", "shed", "hit", "saved tok",
            "shared blk", "cow", "p50 TTFT", "goodput/s", "Jain",
        ],
        rows,
        title=(
            "Prefix sharing under Zipf multi-tenant traffic "
            f"({PREFIX_METHOD}, Phi3-medium, equal KV budget): "
            f"TTFT<={PREFIX_SLO.ttft_s:.0f}s, TPOT<={PREFIX_SLO.tpot_s}s"
        ),
    )

    fleet_rows = [
        [
            f.policy,
            f.metrics.completed,
            _fmt_ratio(f.metrics.prefix_hit_ratio),
            f.metrics.prefill_tokens_saved,
            f.metrics.shared_blocks,
            f"{f.metrics.p50_ttft:.2f}",
            f"{f.metrics.goodput_rps:.2f}",
        ]
        for f in fleet_cells
    ]
    fleet_table = render_table(
        ["policy", "done", "hit", "saved tok", "shared blk", "p50 TTFT", "goodput/s"],
        fleet_rows,
        title="Prefix locality routing (3 replicas, pooled, same stream)",
    )

    by_mode = {c.mode: c for c in cells}
    by_policy = {f.policy: f for f in fleet_cells}
    open_m = by_mode["open"].metrics
    prefix_m = by_mode["prefix"].metrics
    rr, aff = by_policy["round_robin"].metrics, by_policy["affinity"].metrics
    all_pools_clean = not any(c.pool_problems for c in cells) and not any(
        f.pool_problems for f in fleet_cells
    )
    checks = [
        (
            "cache hits dominate: hit ratio "
            f"{prefix_m.prefix_hit_ratio:.2f} > 0.5 "
            f"({'OK' if prefix_m.prefix_hit_ratio > 0.5 else 'VIOLATED'})"
        ),
        (
            "sharing wins TTFT at equal KV budget: p50 "
            f"{prefix_m.p50_ttft:.2f}s vs no-sharing {open_m.p50_ttft:.2f}s "
            f"({'OK' if prefix_m.p50_ttft < open_m.p50_ttft else 'VIOLATED'})"
        ),
        (
            "prefix locality routing: affinity fleet hit ratio "
            f"{aff.prefix_hit_ratio:.2f} >= round-robin {rr.prefix_hit_ratio:.2f} "
            f"({'OK' if aff.prefix_hit_ratio >= rr.prefix_hit_ratio else 'VIOLATED'})"
        ),
        (
            "conservation: completed + failed + rejected + shed == submitted "
            f"({'OK' if all(c.conserved for c in cells) and all(f.conserved for f in fleet_cells) else 'VIOLATED'})"
        ),
        (
            "block conservation: every pool passes its invariant audit "
            f"({'OK' if all_pools_clean else 'VIOLATED'})"
        ),
    ]
    text = (
        table + "\n" + fleet_table + "\nChecks:\n"
        + "\n".join(f"  - {c}" for c in checks)
    )
    print(text)
    return text


if __name__ == "__main__":
    main()

"""Table 5 (Appendix E): composing TurboAttention with weight quantization.

The paper stacks TurboAttention on LLM.int8() and on QServe W4A8 and shows
the accuracy deltas are additive-but-small.  On a random-weight substrate
greedy tokens flip chaotically (tiny logit margins), so we report three
fidelity metrics against the all-FP16 model under a shared teacher-forced
trajectory:

* **token agreement** — per-step argmax match (the chaotic one);
* **logit cosine** — mean cosine similarity of the step logits (smooth);
* **logit KL** — mean KL(softmax(ref) || softmax(candidate)).

The paper's claim maps to: adding TurboAttention on top of a weight
quantizer moves the smooth metrics only marginally compared to the weight
quantizer alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core import TurboAttention, TurboConfig
from repro.harness.common import render_table
from repro.models.config import MODEL_PRESETS
from repro.models.generation import forced_decode, generate, logit_divergence, token_agreement
from repro.models.transformer import TransformerLM

__all__ = ["Table5Row", "run", "main"]


@dataclass
class Table5Row:
    method: str
    agreement: float
    logit_cosine: float
    logit_kl: float


def _mean_cosine(a: np.ndarray, b: np.ndarray) -> float:
    num = np.sum(a * b, axis=-1)
    den = np.linalg.norm(a, axis=-1) * np.linalg.norm(b, axis=-1)
    return float(np.mean(num / np.maximum(den, 1e-12)))


def run(quick: bool = False) -> List[Table5Row]:
    cfg = MODEL_PRESETS["llama3ish"]
    prompt_len = 64 if quick else 128
    n_tokens = 24 if quick else 64
    rng = np.random.default_rng(42)
    prompt = rng.integers(0, cfg.vocab_size, size=prompt_len)

    reference = TransformerLM(cfg, linear_scheme="fp16")
    trajectory = generate(reference, prompt, n_tokens).tokens
    ref = forced_decode(reference, prompt, trajectory, keep_logits=True)

    def turbo_factory():
        return TurboAttention(TurboConfig(kv_bits=4))

    variants = {
        "fp16": ("fp16", None),
        "turbo_only": ("fp16", turbo_factory),
        "llm_int8": ("llm_int8", None),
        "llm_int8+turbo": ("llm_int8", turbo_factory),
        "qserve_w4a8": ("qserve_w4a8", None),
        "qserve_w4a8+turbo": ("qserve_w4a8", turbo_factory),
    }
    rows: List[Table5Row] = []
    for name, (scheme, factory) in variants.items():
        candidate = TransformerLM(cfg, attention_factory=factory, linear_scheme=scheme)
        cand = forced_decode(candidate, prompt, trajectory, keep_logits=True)
        rows.append(
            Table5Row(
                method=name,
                agreement=token_agreement(ref.tokens, cand.tokens),
                logit_cosine=_mean_cosine(ref.logits, cand.logits),
                logit_kl=logit_divergence(ref.logits, cand.logits),
            )
        )
    return rows


def main(quick: bool = False) -> str:
    rows = run(quick=quick)
    text = render_table(
        ["model", "method", "token agree %", "logit cosine", "logit KL"],
        [
            [
                "llama3ish",
                r.method,
                f"{r.agreement * 100:.2f}",
                f"{r.logit_cosine:.4f}",
                f"{r.logit_kl:.4f}",
            ]
            for r in rows
        ],
        title="Table 5: composition with weight quantization",
    )
    print(text)
    return text


if __name__ == "__main__":
    main()

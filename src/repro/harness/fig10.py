"""Figure 10: channel-wise vs token-wise group quantization error.

Quantizes shaped value caches both ways at several bit-widths and reports
the relative Frobenius reconstruction error.  The paper's finding: on
models with channel-dimension outliers (all three, Phi3 most extreme),
channel-wise grouping has strictly lower error — the justification for
FlashQ's channel-wise stage 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.harness.common import render_table
from repro.models.config import MODEL_PRESETS
from repro.models.synthetic_stats import synthetic_qkv
from repro.quant.error import relative_frobenius_error
from repro.quant.schemes import dequantize_asymmetric, quantize_asymmetric

__all__ = ["Fig10Row", "run", "main"]


@dataclass
class Fig10Row:
    model: str
    bits: int
    channelwise_error: float
    tokenwise_error: float


def _group_quant_error(x: np.ndarray, bits: int, axis: int) -> float:
    """Asymmetric group quantization error; stats reduce over ``axis``."""
    codes, scale, zero = quantize_asymmetric(x, bits=bits, axis=axis)
    x_hat = dequantize_asymmetric(codes, scale, zero)
    return relative_frobenius_error(x, x_hat)


def run(quick: bool = False) -> List[Fig10Row]:
    n_tokens = 256 if quick else 1024
    rows: List[Fig10Row] = []
    for model_name in ("llama3ish", "qwen2ish", "phi3ish"):
        model = MODEL_PRESETS[model_name]
        rng = np.random.default_rng(model.seed + 55)
        v = synthetic_qkv(model, n_tokens, rng).v
        for bits in (2, 3, 4):
            rows.append(
                Fig10Row(
                    model=model_name,
                    bits=bits,
                    # channel-wise: stats over tokens (axis -2)
                    channelwise_error=_group_quant_error(v, bits, axis=-2),
                    # token-wise: stats over channels (axis -1)
                    tokenwise_error=_group_quant_error(v, bits, axis=-1),
                )
            )
    return rows


def main(quick: bool = False) -> str:
    rows = run(quick=quick)
    text = render_table(
        ["model", "bits", "channelwise err", "tokenwise err", "token/channel"],
        [
            [
                r.model,
                r.bits,
                f"{r.channelwise_error:.4f}",
                f"{r.tokenwise_error:.4f}",
                f"{r.tokenwise_error / max(r.channelwise_error, 1e-12):.2f}x",
            ]
            for r in rows
        ],
        title="Figure 10: value-cache quantization error, channel- vs token-wise",
    )
    print(text)
    return text


if __name__ == "__main__":
    main()

"""Design-choice ablations beyond the paper's printed tables.

DESIGN.md calls out four tunables whose values the paper fixes by fiat
(§5.2); these sweeps justify them:

* **SAS threshold ``n_r``** — accuracy and LUT size vs threshold; the
  paper picks −6.
* **Decode buffer size ``n_b``** — decode accuracy and buffer memory vs
  capacity; the paper picks 64.
* **Two-bit head fraction** — the accuracy/compression frontier behind
  "half the heads at 2-bit".
* **SAS polynomial degree** — approximation error vs evaluation cost
  behind the degree-3 choice (Eq. 15).
* **INT8 vs FP8** — the paper's symmetric INT8 compute stage against a
  FlashAttention-3-style FP8 (E4M3) pipeline.

Each sweep returns structured rows; ``main`` prints them all.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List

import numpy as np

from repro.baselines import FP8Attention, FP16Attention
from repro.core import TurboAttention, TurboConfig
from repro.harness.common import render_table
from repro.models.config import MODEL_PRESETS
from repro.sas.lut import ExpLUT
from repro.sas.poly import fit_exp_poly, poly_max_error
from repro.sas.softmax import SASConfig
from repro.tasks import TASK_PRESETS
from repro.tasks.recall import evaluate_backend

__all__ = [
    "Int8VsFp8Point",
    "ThresholdPoint",
    "BufferPoint",
    "FractionPoint",
    "DegreePoint",
    "sweep_sas_threshold",
    "sweep_buffer_size",
    "sweep_two_bit_fraction",
    "sweep_poly_degree",
    "run",
    "main",
]


@dataclass
class Int8VsFp8Point:
    method: str
    accuracy: float
    effective_bits: float


@dataclass
class ThresholdPoint:
    threshold: int
    accuracy: float
    lut_bytes: int
    truncation_mass: float  # softmax mass a uniform worst case would drop


@dataclass
class BufferPoint:
    buffer_size: int
    accuracy: float
    max_buffer_bits: int


@dataclass
class FractionPoint:
    fraction: float
    accuracy: float
    effective_bits: float


@dataclass
class DegreePoint:
    degree: int
    max_error: float
    fma_per_element: int


def _ablation_task(quick: bool):
    task = replace(TASK_PRESETS["aqua_like"], value_coherence=0.95)
    if quick:
        task = replace(task, prefill_len=320, n_hops=32)
    return task


def sweep_sas_threshold(quick: bool = False) -> List[ThresholdPoint]:
    model = MODEL_PRESETS["phi3ish"]
    task = _ablation_task(quick)
    points = []
    for n_r in (-2, -4, -6, -8, -10):
        cfg = TurboConfig(sas=SASConfig(threshold=n_r))
        res = evaluate_backend(lambda c=cfg: TurboAttention(c), task, model)
        # Mass of exp(x) on (-inf, n_r] relative to a unit peak: e^{n_r}.
        points.append(
            ThresholdPoint(
                threshold=n_r,
                accuracy=res.accuracy,
                lut_bytes=ExpLUT(threshold=n_r).storage_bytes,
                truncation_mass=float(np.exp(n_r)),
            )
        )
    return points


def sweep_buffer_size(quick: bool = False) -> List[BufferPoint]:
    model = MODEL_PRESETS["phi3ish"]
    task = _ablation_task(quick)
    points = []
    for n_b in (8, 16, 32, 64, 128):
        cfg = TurboConfig(buffer_size=n_b, block_k=n_b)
        res = evaluate_backend(lambda c=cfg: TurboAttention(c), task, model)
        max_bits = 2 * n_b * model.n_kv_heads * model.head_dim * 8
        points.append(
            BufferPoint(buffer_size=n_b, accuracy=res.accuracy, max_buffer_bits=max_bits)
        )
    return points


def sweep_two_bit_fraction(quick: bool = False) -> List[FractionPoint]:
    model = MODEL_PRESETS["phi3ish"]
    task = _ablation_task(quick)
    points = []
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        cfg = TurboConfig(mixed_precision=True, two_bit_fraction=frac)
        res = evaluate_backend(lambda c=cfg: TurboAttention(c), task, model)
        points.append(
            FractionPoint(
                fraction=frac, accuracy=res.accuracy, effective_bits=res.effective_bits
            )
        )
    return points


def sweep_poly_degree(quick: bool = False) -> List[DegreePoint]:
    del quick
    points = []
    for degree in (1, 2, 3, 4, 5):
        coeffs = tuple(fit_exp_poly(degree=degree))
        points.append(
            DegreePoint(
                degree=degree,
                max_error=poly_max_error(coeffs),
                fma_per_element=degree,  # Horner: one FMA per degree
            )
        )
    return points


def sweep_int8_vs_fp8(quick: bool = False) -> List[Int8VsFp8Point]:
    """FlashQ's INT8 compute stage vs an FP8 (E4M3) flash baseline.

    FP8 is FlashAttention-3's low-precision recipe; the sweep shows the
    paper's symmetric INT8-with-headroom stage is both more accurate (119
    uniform levels vs a 3-bit mantissa) and far more compressible (the
    progressive INT4/2 cache vs FP8's fixed 8 bits)."""
    model = MODEL_PRESETS["phi3ish"]
    task = _ablation_task(quick)
    methods = {
        "fp16": FP16Attention,
        "fp8_e4m3": FP8Attention,
        "turbo_int8_4bit": lambda: TurboAttention(TurboConfig(kv_bits=4)),
        "turbo_int8_mixed": lambda: TurboAttention(TurboConfig(mixed_precision=True)),
    }
    points = []
    for name, factory in methods.items():
        res = evaluate_backend(factory, task, model)
        points.append(
            Int8VsFp8Point(
                method=name, accuracy=res.accuracy, effective_bits=res.effective_bits
            )
        )
    return points


def run(quick: bool = False):
    return {
        "int8_vs_fp8": sweep_int8_vs_fp8(quick),
        "sas_threshold": sweep_sas_threshold(quick),
        "buffer_size": sweep_buffer_size(quick),
        "two_bit_fraction": sweep_two_bit_fraction(quick),
        "poly_degree": sweep_poly_degree(quick),
    }


def main(quick: bool = False) -> str:
    res = run(quick=quick)
    blocks = [
        render_table(
            ["method", "accuracy %", "bits/value"],
            [
                [p.method, f"{p.accuracy * 100:.1f}", f"{p.effective_bits:.2f}"]
                for p in res["int8_vs_fp8"]
            ],
            title="Ablation: INT8 (FlashQ) vs FP8-E4M3 (FA3-style) compute stage",
        ),
        render_table(
            ["n_r", "accuracy %", "LUT bytes", "truncated mass"],
            [
                [p.threshold, f"{p.accuracy * 100:.1f}", p.lut_bytes, f"{p.truncation_mass:.1e}"]
                for p in res["sas_threshold"]
            ],
            title="Ablation: SAS sparsity threshold (paper: -6)",
        ),
        render_table(
            ["n_b", "accuracy %", "max buffer KiB"],
            [
                [p.buffer_size, f"{p.accuracy * 100:.1f}", f"{p.max_buffer_bits / 8192:.1f}"]
                for p in res["buffer_size"]
            ],
            title="Ablation: decode buffer size (paper: 64)",
        ),
        render_table(
            ["2-bit fraction", "accuracy %", "bits/value"],
            [
                [f"{p.fraction:.2f}", f"{p.accuracy * 100:.1f}", f"{p.effective_bits:.2f}"]
                for p in res["two_bit_fraction"]
            ],
            title="Ablation: head-wise 2-bit fraction (paper: 0.5)",
        ),
        render_table(
            ["degree", "max |err|", "FMA/elt"],
            [
                [p.degree, f"{p.max_error:.2e}", p.fma_per_element]
                for p in res["poly_degree"]
            ],
            title="Ablation: SAS polynomial degree (paper: 3)",
        ),
    ]
    text = "\n\n".join(blocks)
    print(text)
    return text


if __name__ == "__main__":
    main()

"""Disaggregated prefill/decode extension experiment: compression makes
migration viable.

Splitting a fleet into a prefill pool and a decode pool removes
prefill/decode interference — prompt chunks no longer queue behind the
resident decode batch's attention reads — but it costs two things that
both scale with KV width:

* every finished prompt must ship its KV over the interconnect
  (:func:`repro.migrate.kv_wire_bytes` — linear in ``kv_bits``), and
* the decode pool alone must hold the fleet's entire resident KV, with
  the prefill GPUs' memory sitting idle.

So the same 16 -> 4.3-bit compression TurboAttention argues for at the
kernel level is what decides whether disaggregation *wins* at the fleet
level: FP16 decode pools thrash their allocator and lose tail latency,
while the compressed fleet turns the same split into a p99-TTFT win on
identical hardware.  A seeded migration-fault schedule (transfer drops,
payload corruption, link congestion; :mod:`repro.cluster.faults`) then
shows the robustness half: corrupted handoffs resume from the salvaged
prefix (recompute strictly less than a full re-prefill), drops retry
under a budget, and every request still terminates exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.cluster import (
    ClusterConfig,
    ClusterMetrics,
    ClusterSimulator,
    DisaggConfig,
    FaultConfig,
)
from repro.harness.common import render_table
from repro.migrate import MigrationConfig, kv_wire_bytes
from repro.perf.attention_costs import METHODS
from repro.perf.e2e import ModelGeometry
from repro.serving.engine import EngineConfig
from repro.serving.workload import ramp_workload

__all__ = ["run", "main", "DISAGG_METHODS", "FAULT_SCHEDULE", "N_PREFILL", "N_DECODE"]

DISAGG_METHODS = ("fp16", "turbo4")
#: Equal hardware in both fleets: 4 unified replicas vs 2 prefill + 2
#: decode.
N_PREFILL = 2
N_DECODE = 2
PREFILL_CHUNK = 256

#: Migration-heavy schedule: frequent transfer drops and payload
#: corruption, occasional link congestion, plus the familiar low-rate
#: crash/stall background.
FAULT_SCHEDULE = FaultConfig(
    seed=7,
    crash_rate=0.005,
    stall_rate=0.005,
    crash_downtime_s=10.0,
    stall_duration_s=8.0,
    stall_slowdown=4.0,
    request_timeout_s=90.0,
    max_retries=3,
    migration_drop_rate=0.12,
    migration_corrupt_rate=0.12,
    max_migration_retries=2,
    link_stall_rate=0.02,
    link_stall_duration_s=5.0,
    link_stall_slowdown=4.0,
    horizon_pad_s=20.0,
)


@dataclass
class DisaggCell:
    method: str
    fleet: str  # "unified" | "disagg"
    faulted: bool
    salvage: bool
    metrics: ClusterMetrics


def _workload(quick: bool) -> list:
    # Prompt-heavy ramp: long prompts make unified steps pay the decode
    # batch's attention reads under every prefill chunk, while the rates
    # stay below either pool's saturation so tails measure interference,
    # not raw capacity.
    scale = 0.5 if quick else 1.0
    return ramp_workload(
        [(0.6, 10.0 * scale), (1.6, 25.0 * scale), (0.6, 10.0 * scale)],
        prompt_range=(3072, 6144),
        gen_range=(256, 512),
        rng=np.random.default_rng(21),
    )


def _simulate(
    method: str,
    disagg: bool,
    faults: Optional[FaultConfig],
    requests: list,
    salvage: bool = True,
) -> ClusterMetrics:
    config = ClusterConfig(
        n_replicas=N_PREFILL + N_DECODE,
        policy="least_kv",
        engine=EngineConfig(prefill_chunk=PREFILL_CHUNK),
        faults=faults,
        disagg=DisaggConfig(
            n_prefill=N_PREFILL,
            n_decode=N_DECODE,
            migration=MigrationConfig(salvage=salvage),
        )
        if disagg
        else None,
    )
    model = ModelGeometry.phi3_medium()
    return ClusterSimulator(model, METHODS[method], config).run(requests)


def run(quick: bool = False) -> List[DisaggCell]:
    requests = _workload(quick)
    cells: List[DisaggCell] = []
    for method in DISAGG_METHODS:
        for disagg in (False, True):
            cells.append(
                DisaggCell(
                    method=method,
                    fleet="disagg" if disagg else "unified",
                    faulted=False,
                    salvage=True,
                    metrics=_simulate(method, disagg, None, requests),
                )
            )
    # The robustness cells run on the compressed fleet (the configuration
    # the clean cells just showed is the one worth deploying).
    for disagg in (False, True):
        cells.append(
            DisaggCell(
                method="turbo4",
                fleet="disagg" if disagg else "unified",
                faulted=True,
                salvage=True,
                metrics=_simulate(method="turbo4", disagg=disagg,
                                  faults=FAULT_SCHEDULE, requests=requests),
            )
        )
    cells.append(
        DisaggCell(
            method="turbo4",
            fleet="disagg",
            faulted=True,
            salvage=False,
            metrics=_simulate(method="turbo4", disagg=True,
                              faults=FAULT_SCHEDULE, requests=requests,
                              salvage=False),
        )
    )
    return cells


def _find(cells: List[DisaggCell], method: str, fleet: str, faulted: bool,
          salvage: bool = True) -> DisaggCell:
    for c in cells:
        if (c.method, c.fleet, c.faulted, c.salvage) == (
            method, fleet, faulted, salvage
        ):
            return c
    raise KeyError((method, fleet, faulted, salvage))


def main(quick: bool = False) -> str:
    cells = run(quick=quick)
    rows = [
        [
            c.method,
            c.fleet,
            ("faults" if c.faulted else "clean")
            + ("" if c.salvage else "/nosalvage"),
            c.metrics.completed,
            c.metrics.failed,
            f"{c.metrics.p50_ttft:.2f}",
            f"{c.metrics.p99_ttft:.2f}",
            f"{c.metrics.goodput_rps:.2f}",
            c.metrics.migrations,
            c.metrics.migration_drops,
            c.metrics.migration_corruptions,
            c.metrics.salvage_recomputed_tokens,
            c.metrics.local_decode_fallbacks,
            "-"
            if c.metrics.migrations == 0
            else f"{c.metrics.p50_handoff_latency * 1e3:.1f}",
        ]
        for c in cells
    ]
    table = render_table(
        [
            "method", "fleet", "run", "done", "failed", "p50 TTFT", "p99 TTFT",
            "goodput/s", "migr", "drops", "corrupt", "salvage tok",
            "fallbacks", "p50 handoff (ms)",
        ],
        rows,
        title=(
            f"Disaggregated serving ({N_PREFILL}P+{N_DECODE}D vs "
            f"{N_PREFILL + N_DECODE} unified, Phi3-medium, chunk="
            f"{PREFILL_CHUNK}): ramp workload, migration faults "
            f"seed={FAULT_SCHEDULE.seed}, drop={FAULT_SCHEDULE.migration_drop_rate}, "
            f"corrupt={FAULT_SCHEDULE.migration_corrupt_rate}"
        ),
    )

    tu = _find(cells, "turbo4", "unified", False)
    td = _find(cells, "turbo4", "disagg", False)
    fu = _find(cells, "fp16", "unified", False)
    fd = _find(cells, "fp16", "disagg", False)
    sal = _find(cells, "turbo4", "disagg", True, salvage=True)
    nosal = _find(cells, "turbo4", "disagg", True, salvage=False)
    model = ModelGeometry.phi3_medium()
    wire_ratio = kv_wire_bytes(model, 1000, METHODS["turbo4"].kv_bits) / kv_wire_bytes(
        model, 1000, METHODS["fp16"].kv_bits
    )
    checks = [
        (
            "disaggregation wins on compressed KV: turbo4 p99 TTFT "
            f"{td.metrics.p99_ttft:.2f}s disagg vs {tu.metrics.p99_ttft:.2f}s "
            f"unified on identical hardware "
            f"({'OK' if td.metrics.p99_ttft < tu.metrics.p99_ttft else 'VIOLATED'})"
        ),
        (
            "FP16 cannot afford the split: fp16 p99 TTFT "
            f"{fd.metrics.p99_ttft:.2f}s disagg vs {fu.metrics.p99_ttft:.2f}s "
            "unified — the decode pool alone must hold the fleet's KV "
            f"({'OK' if fd.metrics.p99_ttft > fu.metrics.p99_ttft else 'SURPRISE'})"
        ),
        (
            "migration wire cost scales with KV width: turbo4 ships "
            f"{wire_ratio:.2f}x the bytes of fp16 per token "
            f"({'OK' if abs(wire_ratio - METHODS['turbo4'].kv_bits / 16.0) < 1e-9 else 'VIOLATED'})"
        ),
        (
            "salvage beats full re-prefill: corrupted handoffs recompute "
            f"{sal.metrics.salvage_recomputed_tokens} tokens with salvage vs "
            f"{nosal.metrics.salvage_recomputed_tokens} without "
            f"({'OK' if sal.metrics.salvage_recomputed_tokens < nosal.metrics.salvage_recomputed_tokens else 'VIOLATED'})"
        ),
        (
            "conservation: every cell terminates all requests exactly once "
            f"({'OK' if all(c.metrics.completed + c.metrics.failed + c.metrics.rejected + c.metrics.shed == c.metrics.total for c in cells) else 'VIOLATED'})"
        ),
    ]
    text = table + "\nChecks:\n" + "\n".join(f"  - {c}" for c in checks)
    print(text)
    return text


if __name__ == "__main__":
    main()

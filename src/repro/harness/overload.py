"""Overload-protection experiment: degrade deliberately, keep goodput.

An unprotected FCFS engine under sustained overload collapses: the queue
grows without bound, every request's TTFT blows past the SLO, and
goodput approaches zero even though the engine is busy the whole time.
This harness drives protected and unprotected engines through the same
seeded ramp workload (calm -> ~2.5x-capacity surge -> calm) and measures
what the :mod:`repro.overload` stack buys:

* **Admission + shedding** — the protected engine turns away or sheds
  the work it provably cannot serve in time, so the work it *does* admit
  still meets its deadlines: strictly higher SLO goodput than the
  unprotected engine on the identical arrival stream.
* **Precision brownout** — the TurboAttention-specific lever: under
  stress the controller downshifts new requests' KV precision along the
  guard layer's width ladder, buying capacity FP16 has no access to, so
  the protected Turbo engine sustains more goodput than the protected
  FP16 engine under the same surge.
* **Recovery without oscillation** — the hysteresis state machine ends
  the run back at NORMAL, with at most one transition per cooldown
  window (no flapping at a threshold).
* **Conservation** — every submitted request terminates exactly once:
  completed + failed + rejected + shed == submitted, and the whole run
  is a deterministic function of the workload seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.harness.common import render_table
from repro.overload import AdmissionConfig, BrownoutConfig, BrownoutLevel
from repro.overload.brownout import BrownoutTransition
from repro.perf.attention_costs import METHODS
from repro.perf.e2e import ModelGeometry
from repro.serving import ServingEngine, ramp_workload
from repro.serving.engine import EngineConfig
from repro.serving.metrics import SLO, ServingMetrics

__all__ = ["run", "main", "OVERLOAD_METHODS", "OVERLOAD_SLO", "protected_config"]

OVERLOAD_METHODS = ("fp16", "turbo4")

#: The deadline every run is judged against (same shape as the cluster
#: harnesses: responsiveness + streaming rate).
OVERLOAD_SLO = SLO(ttft_s=15.0, tpot_s=0.25)

#: Brownout tuning for the surge below: stress 1.0 at 2.5 s of queue
#: delay, cooldown short enough to watch recovery inside the run.
BROWNOUT = BrownoutConfig(
    delay_scale_s=2.5,
    kv_scale=1.5,
    cooldown_s=6.0,
)


def protected_config(slo: SLO = OVERLOAD_SLO) -> EngineConfig:
    """The full protection stack: admission, shedding, brownout."""
    return EngineConfig(
        slo=slo,
        deadline_shed=True,
        shed_high_water=2.5,
        admission=AdmissionConfig(
            rate_tokens_per_s=8_000.0,
            burst_tokens=30_000.0,
            max_queue_depth=48,
        ),
        brownout=BROWNOUT,
    )


@dataclass
class OverloadCell:
    method: str
    protected: bool
    metrics: ServingMetrics
    transitions: Tuple[BrownoutTransition, ...]
    final_level: BrownoutLevel

    @property
    def conserved(self) -> bool:
        m = self.metrics
        return m.completed + m.failed + m.rejected + m.shed == m.total


def _workload(quick: bool) -> list:
    surge = 20.0 if quick else 25.0
    #: The calm tail must outlast enough cooldown windows for the
    #: controller to walk back down to NORMAL (3 levels x cooldown).
    phases = [(4.0, 8.0), (surge, 12.0 if quick else 20.0), (3.0, 35.0)]
    return ramp_workload(phases, rng=np.random.default_rng(11))


def _oscillation_free(
    transitions: Tuple[BrownoutTransition, ...], cooldown_s: float
) -> bool:
    """At most one transition per cooldown window (hysteresis held)."""
    times = [t.time for t in transitions]
    return all(b - a >= cooldown_s for a, b in zip(times, times[1:]))


def run(quick: bool = False) -> List[OverloadCell]:
    model = ModelGeometry.phi3_medium()
    requests = _workload(quick)
    cells: List[OverloadCell] = []
    for method in OVERLOAD_METHODS:
        for protected in (False, True):
            config = (
                protected_config() if protected else EngineConfig(slo=OVERLOAD_SLO)
            )
            engine = ServingEngine(model, METHODS[method], config)
            metrics = engine.run(requests)
            brownout = engine.brownout
            cells.append(
                OverloadCell(
                    method=method,
                    protected=protected,
                    metrics=metrics,
                    transitions=tuple(brownout.transitions) if brownout else (),
                    final_level=(
                        brownout.level if brownout else BrownoutLevel.NORMAL
                    ),
                )
            )
    return cells


def main(quick: bool = False) -> str:
    cells = run(quick=quick)
    rows = []
    for c in cells:
        m = c.metrics
        rows.append(
            [
                c.method,
                "protected" if c.protected else "open",
                m.completed,
                m.rejected,
                m.shed,
                f"{m.goodput_rps:.2f}",
                f"{m.slo_attainment * 100:.0f}%",
                m.brownout_tokens,
                f"{m.mean_kv_bits:.1f}",
                f"{m.p99_ttft:.1f}",
                len(c.transitions),
            ]
        )
    table = render_table(
        [
            "method", "mode", "done", "rej", "shed", "goodput/s",
            "SLO att.", "brownout tok", "mean bits", "p99 TTFT", "trans",
        ],
        rows,
        title=(
            "Overload ramp (calm -> surge -> calm, Phi3-medium): "
            f"TTFT<={OVERLOAD_SLO.ttft_s:.0f}s, TPOT<={OVERLOAD_SLO.tpot_s}s, "
            f"cooldown={BROWNOUT.cooldown_s:.0f}s"
        ),
    )

    lookup = {(c.method, c.protected): c for c in cells}
    turbo_open = lookup[("turbo4", False)].metrics
    turbo_prot = lookup[("turbo4", True)]
    fp16_prot = lookup[("fp16", True)].metrics
    recovered = turbo_prot.final_level is BrownoutLevel.NORMAL
    steady = _oscillation_free(turbo_prot.transitions, BROWNOUT.cooldown_s)
    checks = [
        (
            "protection wins under overload: turbo4 protected "
            f"{turbo_prot.metrics.goodput_rps:.2f}/s vs open "
            f"{turbo_open.goodput_rps:.2f}/s goodput "
            f"({'OK' if turbo_prot.metrics.goodput_rps > turbo_open.goodput_rps else 'VIOLATED'})"
        ),
        (
            "precision is capacity: turbo4 brownout sustains "
            f"{turbo_prot.metrics.goodput_rps:.2f}/s vs protected fp16 "
            f"{fp16_prot.goodput_rps:.2f}/s "
            f"({'OK' if turbo_prot.metrics.goodput_rps > fp16_prot.goodput_rps else 'VIOLATED'})"
        ),
        (
            "brownout recovery: "
            f"{' -> '.join(t.dst.name for t in turbo_prot.transitions) or 'no transitions'}, "
            f"final={turbo_prot.final_level.name} "
            f"({'OK' if recovered and steady else 'VIOLATED'}: back to NORMAL, "
            ">=1 cooldown between transitions)"
        ),
        (
            "conservation: completed + failed + rejected + shed == submitted "
            f"({'OK' if all(c.conserved for c in cells) else 'VIOLATED'})"
        ),
    ]
    text = table + "\nChecks:\n" + "\n".join(f"  - {c}" for c in checks)
    print(text)
    return text


if __name__ == "__main__":
    main()

"""Table 1: qualitative capability matrix of the compared techniques.

Static content, but generated from the implemented method registry so the
table can't drift from the code: each row's claims are cross-checked
against the cost-model :class:`repro.perf.attention_costs.MethodSpec` and
the accuracy backends actually shipped.
"""

from __future__ import annotations

from typing import List

from repro.harness.common import render_table
from repro.perf.attention_costs import METHODS

__all__ = ["run", "main"]


def run(quick: bool = False) -> List[List[str]]:
    del quick  # static table
    rows = [
        # technique, QKV proj, KV compression, attention execution, MLP,
        # memory, latency
        ["ATOM", "Quantized", "yes", "-", "Quantized", "down", "down"],
        ["QuaRot", "Quantized", "yes", "-", "Quantized", "down", "down"],
        ["QServe", "Quantized", "yes", "-", "Quantized", "down2", "down"],
        ["KIVI", "-", "yes", "-", "-", "down", "up*"],
        ["GEAR", "-", "yes", "-", "-", "down", "up*"],
        ["FlashAttention", "-", "-", "Flash", "-", "none", "down"],
        ["TurboAttention", "-", "yes", "Flash+Quantized", "-", "down2", "down2"],
    ]
    # Consistency checks against the implemented cost model.
    assert METHODS["turbo4"].kind == "turbo" and METHODS["turbo4"].kv_bits < 16
    assert METHODS["kivi4"].kind == "dequant"  # dequant overhead -> up*
    return rows


def main(quick: bool = False) -> str:
    headers = ["Technique", "QKV Proj", "KV Compress", "Attention", "MLP", "Memory", "Latency"]
    text = render_table(headers, run(quick), title="Table 1: technique capability matrix")
    text += "\n(up* = dequantization overhead can raise attention latency; down2 = strong reduction)"
    print(text)
    return text


if __name__ == "__main__":
    main()

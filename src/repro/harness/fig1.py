"""Figure 1: latency profile of Phi3-medium on A100.

Three panels:

* **1a** — share of end-to-end generation time spent in attention as the
  prompt grows (8:1 prompt:output ratio), for the FP16 pipeline; the paper
  shows attention rising to ~80% at >80k contexts.
* **1b** — attention *kernel* time share by phase (MatMul / softmax /
  dequantization / other) per method, from the tile-level simulator.
* **1c** — end-to-end time share (linear vs attention internals) per
  method.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.harness.common import render_table
from repro.perf.attention_costs import METHODS
from repro.perf.e2e import ModelGeometry, phase_breakdown
from repro.perf.kernelsim import simulate_attention_kernel

__all__ = ["run", "main", "Fig1aPoint"]

FIG1B_METHODS = ("fp16", "kivi4", "gear4", "turbo_mixed")


@dataclass
class Fig1aPoint:
    prompt_len: int
    attention_share: float


def run_fig1a(
    model: ModelGeometry, prompt_lens: Sequence[int], batch: int = 8
) -> List[Fig1aPoint]:
    """Attention share of total generation time, FP16, 8:1 prompt:output.

    Batch 8: the paper profiles a serving configuration where the decode
    weight reads amortize across the batch, so the per-step cost is
    attention-(KV-)dominated — that's what pushes the attention share to
    ~80% at >80k contexts.
    """
    points = []
    for n in prompt_lens:
        parts = phase_breakdown(METHODS["fp16"], model, batch, n, max(1, n // 8))
        points.append(Fig1aPoint(prompt_len=n, attention_share=parts["attention"] / parts["total"]))
    return points


def run_fig1b(
    model: ModelGeometry, context: int = 8192, batch: int = 4
) -> Dict[str, Dict[str, float]]:
    """Per-method decode-kernel phase shares."""
    out: Dict[str, Dict[str, float]] = {}
    for name in FIG1B_METHODS:
        t = simulate_attention_kernel(
            METHODS[name], model.attention_geometry(batch, 1, context), prefill=False
        )
        total = t.pop("total")
        shares = {k: v / total for k, v in t.items() if v > 0}
        shares["total_us"] = total * 1e6  # absolute, so shares aren't misread
        out[name] = shares
    return out


def run_fig1c(
    model: ModelGeometry, context: int = 8192, batch: int = 4, gen_len: int = 256
) -> Dict[str, Dict[str, float]]:
    """End-to-end linear/attention split per method."""
    out: Dict[str, Dict[str, float]] = {}
    for name in FIG1B_METHODS:
        parts = phase_breakdown(METHODS[name], model, batch, context, gen_len)
        out[name] = {
            "linear": parts["linear"] / parts["total"],
            "attention": parts["attention"] / parts["total"],
            "total_s": parts["total"],
        }
    return out


def run(quick: bool = False):
    model = ModelGeometry.phi3_medium()
    lens = (1024, 4096, 16384, 32768) if quick else (1024, 4096, 8192, 16384, 32768, 65536, 98304)
    return {
        "fig1a": run_fig1a(model, lens),
        "fig1b": run_fig1b(model, context=4096 if quick else 8192),
        "fig1c": run_fig1c(model, context=4096 if quick else 8192),
    }


def main(quick: bool = False) -> str:
    res = run(quick=quick)
    blocks = []
    blocks.append(
        render_table(
            ["prompt", "attention share %"],
            [[p.prompt_len, f"{p.attention_share * 100:.1f}"] for p in res["fig1a"]],
            title="Figure 1a: attention share of e2e latency (FP16, 8:1)",
        )
    )
    phases = sorted({p for d in res["fig1b"].values() for p in d if p != "total_us"})
    blocks.append(
        render_table(
            ["method"] + phases + ["total (us)"],
            [
                [m]
                + [f"{res['fig1b'][m].get(p, 0) * 100:.1f}" for p in phases]
                + [f"{res['fig1b'][m]['total_us']:.0f}"]
                for m in res["fig1b"]
            ],
            title="Figure 1b: decode attention-kernel time share by phase (%)",
        )
    )
    blocks.append(
        render_table(
            ["method", "linear %", "attention %", "total (s)"],
            [
                [
                    m,
                    f"{d['linear'] * 100:.1f}",
                    f"{d['attention'] * 100:.1f}",
                    f"{d['total_s']:.3f}",
                ]
                for m, d in res["fig1c"].items()
            ],
            title="Figure 1c: end-to-end time share",
        )
    )
    text = "\n\n".join(blocks)
    print(text)
    return text


if __name__ == "__main__":
    main()

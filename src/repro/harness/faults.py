"""Fault-tolerance extension experiment: compression vs blast radius.

TurboAttention's capacity argument (§5) cuts both ways at fleet scale: a
compressed cache packs 3-4x more concurrent requests into one replica,
so a single crash evicts 3-4x more in-flight KV state.  This harness
subjects TurboAttention and baseline fleets to an *identical seeded fault
schedule* (crashes, stalls, request timeouts — see
:mod:`repro.cluster.faults`) and asks which effect wins:

* **Degradation** — how much goodput does each method give up between the
  healthy run and the faulted run on the same workload?
* **Blast radius** — how many prefill tokens does each method re-compute
  after crashes (the wasted work that grows with admitted density)?
* **Graceful degradation** — no request is ever lost untracked: every
  submitted request terminates exactly once, completed or failed, and the
  whole run reproduces seed-for-seed.

The headline claim mirrors the paper's: even paying a larger blast
radius per crash, the compressed fleet's faster recovery (re-prefill is
cheaper, queues drain quicker) keeps its goodput above FP16's under the
same faults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.cluster import ClusterConfig, ClusterMetrics, ClusterSimulator, FaultConfig
from repro.harness.common import render_table
from repro.perf.attention_costs import METHODS
from repro.perf.e2e import ModelGeometry
from repro.serving import poisson_workload

__all__ = ["run", "main", "FAULT_METHODS", "FAULT_SCHEDULE", "N_REPLICAS"]

FAULT_METHODS = ("fp16", "kivi4", "turbo_mixed")
N_REPLICAS = 3

#: The shared schedule: every method's fleet sees the same crashes at the
#: same instants, the same stalls, and the same TTFT deadline.
FAULT_SCHEDULE = FaultConfig(
    seed=7,
    crash_rate=0.04,
    stall_rate=0.05,
    crash_downtime_s=10.0,
    stall_duration_s=8.0,
    stall_slowdown=4.0,
    request_timeout_s=60.0,
    max_retries=3,
    horizon_pad_s=20.0,
)


@dataclass
class FaultCell:
    method: str
    healthy: ClusterMetrics
    faulted: ClusterMetrics

    @property
    def degradation(self) -> float:
        """Fractional goodput lost to the fault schedule."""
        if self.healthy.goodput_rps <= 0:
            return 0.0
        return 1.0 - self.faulted.goodput_rps / self.healthy.goodput_rps


def _workload(quick: bool) -> list:
    n = 48 if quick else 120
    return poisson_workload(
        n,
        arrival_rate=6.0,
        prompt_range=(256, 6144),
        gen_range=(64, 320),
        rng=np.random.default_rng(12),
        n_sessions=24,
    )


def run(quick: bool = False) -> List[FaultCell]:
    model = ModelGeometry.phi3_medium()
    requests = _workload(quick)
    cells: List[FaultCell] = []
    for method in FAULT_METHODS:
        metrics: Dict[bool, ClusterMetrics] = {}
        for faulted in (False, True):
            sim = ClusterSimulator(
                model,
                METHODS[method],
                ClusterConfig(
                    n_replicas=N_REPLICAS,
                    policy="least_kv",
                    faults=FAULT_SCHEDULE if faulted else None,
                ),
            )
            metrics[faulted] = sim.run(requests)
        cells.append(
            FaultCell(method=method, healthy=metrics[False], faulted=metrics[True])
        )
    return cells


def main(quick: bool = False) -> str:
    cells = run(quick=quick)
    rows = [
        [
            c.method,
            c.faulted.completed,
            c.faulted.failed,
            f"{c.healthy.goodput_rps:.2f}",
            f"{c.faulted.goodput_rps:.2f}",
            f"{c.degradation * 100:.0f}%",
            c.faulted.retries,
            c.faulted.wasted_prefill_tokens,
            f"{c.faulted.p99_ttft:.2f}",
            f"{c.faulted.availability * 100:.0f}%",
        ]
        for c in cells
    ]
    table = render_table(
        [
            "method", "done", "failed", "goodput/s clean", "goodput/s faults",
            "degraded", "retries", "re-prefill tok", "p99 TTFT (s)", "avail",
        ],
        rows,
        title=(
            f"Faulted fleet ({N_REPLICAS} replicas, least_kv, Phi3-medium): "
            f"seed={FAULT_SCHEDULE.seed}, crash={FAULT_SCHEDULE.crash_rate}/s, "
            f"stall={FAULT_SCHEDULE.stall_rate}/s x{FAULT_SCHEDULE.stall_slowdown}, "
            f"timeout={FAULT_SCHEDULE.request_timeout_s}s"
        ),
    )

    lookup = {c.method: c for c in cells}
    turbo, fp16 = lookup["turbo_mixed"], lookup["fp16"]
    checks = [
        (
            "goodput under identical faults: turbo_mixed "
            f"{turbo.faulted.goodput_rps:.2f}/s vs fp16 "
            f"{fp16.faulted.goodput_rps:.2f}/s "
            f"({turbo.faulted.goodput_rps / fp16.faulted.goodput_rps:.2f}x)"
            if fp16.faulted.goodput_rps > 0
            else "WARNING: fp16 fleet made no goodput under faults"
        ),
        (
            "blast radius per crash (re-prefilled tokens): turbo_mixed "
            f"{turbo.faulted.wasted_prefill_tokens} vs fp16 "
            f"{fp16.faulted.wasted_prefill_tokens} — denser replicas lose "
            "more in-flight KV per failure"
        ),
        (
            "conservation: every cell terminates all requests exactly once "
            f"({'OK' if all(c.faulted.completed + c.faulted.failed == c.faulted.total for c in cells) else 'VIOLATED'})"
        ),
    ]
    text = table + "\nChecks:\n" + "\n".join(f"  - {c}" for c in checks)
    print(text)
    return text


if __name__ == "__main__":
    main()

"""Figure 7b: head-selection strategy ablation.

Sweeps the number of 2-bit heads (0..n_kv_heads) and compares the paper's
priority metric (Eq. 11) against entropy / min-max / variation / random
selection, on the AQuA-matched task with the MHA (8-KV-head) model, the
analogue of the paper's LLaMA3-8B sweep.

Two measurements per point:

* task accuracy through the full TurboAttention backend;
* cache reconstruction error (relative Frobenius) of the selected mixed-
  precision assignment on shaped K/V — the "quantization error" curve the
  paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List

import numpy as np

from repro.core import TurboAttention, TurboConfig
from repro.core.headwise import (
    HeadSelectionMethod,
    assign_head_bits,
    select_two_bit_heads,
)
from repro.harness.common import render_table
from repro.models.config import MODEL_PRESETS
from repro.tasks.recall import build_streams, evaluate_backend
from repro.quant.progressive import pq_compress, pq_dequantize
from repro.quant.schemes import quantize_symmetric
from repro.tasks import TASK_PRESETS

__all__ = ["Fig7bPoint", "run", "main", "SELECTION_METHODS"]

SELECTION_METHODS = ("priority", "entropy", "minmax", "variation", "random")


@dataclass
class Fig7bPoint:
    method: str
    n_two_bit: int
    accuracy: float
    cache_error: float


def _cache_error(k: np.ndarray, v: np.ndarray, head_bits: np.ndarray) -> float:
    """Reconstruction error of K+V under a head-bit assignment.

    Mirrors the kernel path: per-head INT8 symmetric then progressive
    channel-wise stage 2 at the assigned widths.
    """
    err_num = 0.0
    err_den = 0.0
    for x in (k, v):
        codes, scale = quantize_symmetric(x, bits=8, axis=(-2, -1), max_code=119)
        block = pq_compress(codes, bits=head_bits.reshape(-1, 1, 1), float_scale=scale)
        x_hat = pq_dequantize(block)
        err_num += float(np.linalg.norm(x - x_hat) ** 2)
        err_den += float(np.linalg.norm(x) ** 2)
    return float(np.sqrt(err_num / err_den))


def run(quick: bool = False) -> List[Fig7bPoint]:
    model = MODEL_PRESETS["phi3ish"]  # MHA, 8 KV heads like LLaMA3-8B
    # Harder variant of the AQuA task: clustered values leave little margin,
    # so the *choice* of which heads drop to 2-bit moves accuracy — the
    # regime the paper's Figure 7b operates in.
    task = replace(TASK_PRESETS["aqua_like"], value_coherence=0.96, n_pairs=112)
    if quick:
        task = replace(task, prefill_len=320, n_hops=32)
    # Selection statistics come from the same prompt K/V the task stores —
    # the paper likewise selects heads from the model's observed stats.
    stream_rng = np.random.default_rng(task.seed * 7919 + model.seed)
    k_prompt, v_prompt, _q, _vals, _gv = build_streams(task, model, stream_rng)
    sample_k, sample_v = k_prompt, v_prompt
    n_heads = model.n_kv_heads
    counts = range(0, n_heads + 1, 2 if quick else 1)
    points: List[Fig7bPoint] = []
    for method in SELECTION_METHODS:
        for n_two in counts:
            mask = select_two_bit_heads(
                sample_k, sample_v, n_two, method=HeadSelectionMethod(method),
                rng=np.random.default_rng(5),
            )
            bits = assign_head_bits(mask)
            cache_err = _cache_error(sample_k, sample_v, bits)

            def eval_factory(bits_arr=bits):
                class _FixedBits(TurboAttention):
                    """Backend with the ablation's head-bit assignment.

                    The sweep selects heads from a *shared statistics
                    sample*, not from the task's own K/V, so every method
                    is judged on the same assignment it would make offline
                    — matching the paper's protocol.
                    """

                    def choose_head_bits(self, k, v):
                        return bits_arr

                return _FixedBits(TurboConfig(mixed_precision=True))

            res = evaluate_backend(eval_factory, task, model)
            points.append(
                Fig7bPoint(
                    method=method, n_two_bit=n_two,
                    accuracy=res.accuracy, cache_error=cache_err,
                )
            )
    return points


def main(quick: bool = False) -> str:
    points = run(quick=quick)
    by_n: Dict[int, Dict[str, Fig7bPoint]] = {}
    for p in points:
        by_n.setdefault(p.n_two_bit, {})[p.method] = p
    acc_rows = [
        [n] + [f"{by_n[n][m].accuracy * 100:.1f}" for m in SELECTION_METHODS]
        for n in sorted(by_n)
    ]
    err_rows = [
        [n] + [f"{by_n[n][m].cache_error:.4f}" for m in SELECTION_METHODS]
        for n in sorted(by_n)
    ]
    text = render_table(
        ["#2-bit heads"] + list(SELECTION_METHODS), acc_rows,
        title="Figure 7b: accuracy (%) vs #2-bit heads by selection method",
    )
    text += "\n\n" + render_table(
        ["#2-bit heads"] + list(SELECTION_METHODS), err_rows,
        title="Figure 7b (aux): cache reconstruction error",
    )
    print(text)
    return text


if __name__ == "__main__":
    main()

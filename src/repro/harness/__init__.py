"""Experiment harness: one runner per paper table/figure.

Every module exposes ``run(quick=False)`` returning structured results and
``main()`` printing them in the paper's layout.  ``quick=True`` shrinks
workloads for CI/tests; benchmarks call the full versions.

| Paper artifact | Runner |
|---|---|
| Figure 1a/1b/1c | :mod:`repro.harness.fig1` |
| Table 1         | :mod:`repro.harness.table1` |
| Figure 4/8/9    | :mod:`repro.harness.fig4` |
| Figure 5        | :mod:`repro.harness.fig5` |
| Table 2         | :mod:`repro.harness.table2` |
| Figure 6        | :mod:`repro.harness.fig6` |
| Figure 7a       | :mod:`repro.harness.fig7a` |
| Figure 7b       | :mod:`repro.harness.fig7b` |
| Table 3         | :mod:`repro.harness.table3` |
| Table 4         | :mod:`repro.harness.table4` |
| Table 5         | :mod:`repro.harness.table5` |
| Figure 10       | :mod:`repro.harness.fig10` |

Run everything: ``python -m repro.harness.run_all [--quick]``.
"""

from repro.harness.common import render_table

__all__ = ["render_table"]

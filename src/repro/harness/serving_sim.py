"""Serving-level extension experiment (beyond the paper's Figure 7a).

Figure 7a measures closed-batch throughput.  Production serving is an
open system: requests arrive over time and tail latency matters.  This
harness serves identical Poisson workloads under each attention method on
the continuous-batching engine and reports throughput, TTFT/TPOT
percentiles, and preemption counts — showing that the compressed cache's
batch headroom translates into *lower tail latency and graceful behaviour
under overload*, not just higher peak throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.harness.common import render_table
from repro.perf.attention_costs import METHODS
from repro.perf.e2e import ModelGeometry
from repro.serving import ServingEngine, poisson_workload
from repro.serving.metrics import ServingMetrics
from repro.serving.workload import closed_batch_workload

__all__ = ["run", "main", "SERVING_METHODS"]

SERVING_METHODS = ("fp16", "kivi4", "gear4", "turbo4", "turbo_mixed")


@dataclass
class ServingCell:
    method: str
    scenario: str
    metrics: ServingMetrics


def run(quick: bool = False) -> List[ServingCell]:
    model = ModelGeometry.phi3_medium()
    n = 40 if quick else 120
    scenarios = {
        "poisson_moderate": poisson_workload(
            n, arrival_rate=4.0, rng=np.random.default_rng(1)
        ),
        "poisson_overload": poisson_workload(
            n, arrival_rate=8.0, rng=np.random.default_rng(2)
        ),
        "closed_batch": closed_batch_workload(48 if quick else 192),
    }
    cells: List[ServingCell] = []
    for scenario, requests in scenarios.items():
        for name in SERVING_METHODS:
            engine = ServingEngine(model, METHODS[name])
            cells.append(
                ServingCell(method=name, scenario=scenario, metrics=engine.run(requests))
            )
    return cells


def main(quick: bool = False) -> str:
    cells = run(quick=quick)
    by_scenario: Dict[str, List[ServingCell]] = {}
    for c in cells:
        by_scenario.setdefault(c.scenario, []).append(c)
    blocks = []
    for scenario, group in by_scenario.items():
        rows = [
            [
                c.method,
                c.metrics.completed,
                f"{c.metrics.throughput_tokens_per_s:.0f}",
                f"{c.metrics.mean_ttft:.2f}",
                f"{c.metrics.p95_ttft:.2f}",
                f"{c.metrics.p95_tpot * 1e3:.1f}",
                c.metrics.preemptions,
            ]
            for c in group
        ]
        blocks.append(
            render_table(
                ["method", "done", "tok/s", "mean TTFT (s)", "p95 TTFT (s)", "p95 TPOT (ms)", "preempt"],
                rows,
                title=f"Serving simulation [{scenario}] (Phi3-medium, A100-80GB)",
            )
        )
    text = "\n\n".join(blocks)
    print(text)
    return text


if __name__ == "__main__":
    main()

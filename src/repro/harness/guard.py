"""Guard extension experiment: chaos persistence matrix + escalation vs bound.

TurboAttention's all-integer KV path has no FP16 residual to hide behind
(unlike KIVI/GEAR): a corrupted scale, a NaN'd tile, or a drifted decode
distribution is decoded straight into the attention output.  This harness
exercises the :mod:`repro.guard` subsystem end to end:

* **Chaos matrix** — every corruption kind from
  :mod:`repro.guard.chaos` (bit flip, scale zeroing, NaN poisoning,
  truncation) is injected into a serialized KV state and must be either
  *detected* with a typed :class:`~repro.guard.errors.CacheCorruptionError`
  or *salvaged* to a valid sequence prefix with the affected token range
  reported — zero silent-wrong-output cases.  The stealth variants
  (checksums re-stamped after corruption) show what the semantic
  validators catch on their own; a stealthy bit flip inside a code payload
  is valid-by-construction data, which is exactly the argument for
  computing checksums at write time.

* **Escalation vs bound** — two runs over an *identical* seeded decode
  stream whose values turn outlier-heavy mid-stream.  Without the guard,
  the frozen universal buffer scale clamps the outliers forever and the
  measured attention error blows past the analytic
  :func:`~repro.quant.bounds.attention_output_bound` built from the
  quantizer's own promises.  With the guard, clamp-hot heads escalate
  2 -> 4 -> 8 bits and regrow the frozen scale at flush boundaries, and
  the measured tail error stays inside the bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core import (
    TurboAttention,
    TurboConfig,
    TurboKVState,
    salvage_state,
    state_from_arrays,
    state_to_arrays,
)
from repro.guard import (
    CORRUPTION_KINDS,
    CacheCorruptionError,
    ChaosInjector,
    EscalationConfig,
    GuardConfig,
)
from repro.harness.common import render_table
from repro.quant.bounds import attention_output_bound

__all__ = ["run", "main", "ChaosCell", "EscalationRun"]


# --------------------------------------------------------------------------
# Part 1: chaos persistence matrix
# --------------------------------------------------------------------------

@dataclass
class ChaosCell:
    kind: str
    stealth: bool
    target_key: str
    detected: Optional[str]       # typed error class name, or None
    salvage_kept: int
    salvage_ranges: List[Tuple[int, int]]
    salvage_total: int
    prefix_valid: bool

    @property
    def silent_wrong_output(self) -> bool:
        """True iff corruption slipped through *and* salvage misreported.

        A stealthy bit flip is valid-by-construction data (detected is
        None) but salvage still reports a consistent state, so the only
        dangerous cell is one where damage was visible yet the salvaged
        prefix does not line up with the reported recompute ranges.
        """
        return self.detected is not None and not self.prefix_valid


def _make_state(seed: int = 0) -> Tuple[TurboKVState, int]:
    rng = np.random.default_rng(seed)
    h, n, d = 4, 88, 32  # 2 full blocks + 24 staged buffer tokens
    q = rng.standard_normal((h, n, d))
    k = rng.standard_normal((h, n, d))
    v = rng.standard_normal((h, n, d))
    turbo = TurboAttention(TurboConfig(block_q=32, block_k=32, buffer_size=32))
    _, state = turbo.prefill(q, k, v)
    return state, n


def _chaos_matrix(seed: int = 7) -> List[ChaosCell]:
    state, total = _make_state()
    arrays = state_to_arrays(state)
    injector = ChaosInjector(seed=seed)
    cells: List[ChaosCell] = []
    for kind in CORRUPTION_KINDS:
        for stealth in (False, True):
            corrupted, event = injector.corrupt(arrays, kind, stealth=stealth)
            detected: Optional[str] = None
            try:
                state_from_arrays(corrupted)
            except CacheCorruptionError as err:
                detected = type(err).__name__
            res = salvage_state(corrupted)
            prefix_valid = (
                not res.recompute_ranges
                or (
                    res.recovered_tokens == res.recompute_ranges[0][0]
                    and res.recompute_ranges[-1][1] == total
                )
            )
            cells.append(ChaosCell(
                kind=kind,
                stealth=stealth,
                target_key=event.key,
                detected=detected,
                salvage_kept=res.recovered_tokens,
                salvage_ranges=res.recompute_ranges,
                salvage_total=total,
                prefix_valid=prefix_valid,
            ))
    return cells


# --------------------------------------------------------------------------
# Part 2: escalation vs the analytic attention bound
# --------------------------------------------------------------------------

@dataclass
class EscalationRun:
    name: str
    steps: int
    escalations: int
    regrows: int
    final_bits: List[int]
    #: Max measured |out - exact| over the tail window (escalation settled).
    tail_error: float
    #: The guard's quality contract: attention_output_bound built from the
    #: *guarded* state's reconstruction promises.  Both runs are held to
    #: the same contract.
    tail_bound: float

    @property
    def within_bound(self) -> bool:
        return self.tail_error <= self.tail_bound


def _value_promise(state: TurboKVState) -> float:
    """Worst-case value reconstruction error the quantizer *promises*:
    ``s/2`` for the symmetric INT8 buffer, ``s*(1/2 + s_int)`` for each
    progressive block (see :mod:`repro.quant.bounds`).  Clamping breaks
    this promise — which is what the experiment demonstrates."""
    worst = float(np.max(state.buffer.v_scale)) / 2.0
    for block in state.cache.blocks:
        worst = max(
            worst,
            float((block.v.float_scale * (0.5 + block.v.s_int)).max()),
        )
    return worst


def _score_promise(state: TurboKVState, q_t: np.ndarray, k_hist: np.ndarray,
                   attn_scale: float, mc: int) -> float:
    """Worst-case score perturbation if K storage honors its promise.

    ``|q_hat . k_hat - q . k| <= ||q_hat||_1 * kerr + qerr * ||k||_1`` per
    head, with ``kerr`` the per-head key reconstruction promise (INT8
    buffer: ``s/2``; progressive block: ``s * (1/2 + s_int)``) and ``qerr``
    the query's own INT8 rounding step.
    """
    h, d = q_t.shape
    kerr = state.buffer.k_scale.reshape(-1) / 2.0
    for block in state.cache.blocks:
        per_head = block.k.float_scale.reshape(-1) * (
            0.5 + block.k.s_int.reshape(h, -1).max(axis=-1)
        )
        kerr = np.maximum(kerr, per_head)
    q_absmax = np.maximum(np.abs(q_t).max(axis=-1), 1e-12)
    q_err = q_absmax / float(mc) / 2.0
    q_l1 = np.abs(q_t).sum(axis=-1) + d * q_err
    k_l1 = np.abs(k_hist).sum(axis=-1).max(axis=-1)
    delta = attn_scale * (q_l1 * kerr + q_err * (k_l1 + d * kerr))
    return float(delta.max())


def _exact_step(q_t: np.ndarray, k_hist: np.ndarray, v_hist: np.ndarray,
                attn_scale: float) -> np.ndarray:
    s = np.einsum("hd,hnd->hn", q_t, k_hist) * attn_scale
    m = s.max(axis=-1, keepdims=True)
    p = np.exp(s - m)
    p = p / p.sum(axis=-1, keepdims=True)
    return np.einsum("hn,hnd->hd", p, v_hist)


def _escalation_experiment(quick: bool = False) -> List[EscalationRun]:
    """Identical seeded decode stream, with and without the guard.

    The stream's values drift to a large positive mean mid-run (the
    systematic activation drift that hurts a frozen scale the most: the
    clamping error doesn't cancel across tokens).  The escalator's quality
    target is 8-bit, so every head escalates 4 -> 8 at its first flush and
    clamp-hot heads regrow the frozen scale when the drift arrives.

    Both runs are judged against the *same* quality contract: the
    analytic :func:`attention_output_bound` evaluated from the guarded
    state's reconstruction promises (its scales, its ``s_int``, its
    widths).  The guarded run's measured error honors the contract; the
    unguarded run — identical inputs — violates it, because frozen-scale
    clamping is precisely the failure mode the promises exclude.
    """
    h, d = 4, 16
    n0 = 16          # < block_k: every cache block is built by decode flushes
    steps = 96 if quick else 160
    outlier_from = 24
    drift_mean, drift_std = 40.0, 4.0
    config = TurboConfig(block_q=32, block_k=32, buffer_size=16, kv_bits=4)
    guard = GuardConfig(
        escalation=EscalationConfig(
            ladder=(2, 4, 8), quality_bits=8, patience=1, cooldown=8,
            clamp_threshold=0.02,
        )
    )
    attn_scale = 1.0 / np.sqrt(d)
    tail_from = steps - max(steps // 4, 8)
    mc = config.int8_max_code

    # Generate the shared stream once.
    stream = np.random.default_rng(456)
    prompt = np.random.default_rng(123).standard_normal((3, h, n0, d))
    tokens = []
    for t in range(steps):
        q_t = stream.standard_normal((h, d))
        k_t = stream.standard_normal((h, d))
        v_t = stream.standard_normal((h, d))
        if t >= outlier_from:
            v_t = drift_mean + drift_std * v_t
        tokens.append((q_t, k_t, v_t))

    # Guarded run first: its state defines the quality contract.
    results = {}
    contract_bound = np.inf
    for name, g in (("guarded", guard), ("no-guard", None)):
        turbo = TurboAttention(config, guard=g)
        _, state = turbo.prefill(prompt[0], prompt[1], prompt[2])
        k_hist, v_hist = [prompt[1]], [prompt[2]]
        tail_err = 0.0
        for t, (q_t, k_t, v_t) in enumerate(tokens):
            k_hist.append(k_t[:, None, :])
            v_hist.append(v_t[:, None, :])
            out = turbo.decode_step(q_t, k_t, v_t, state)
            if t < tail_from:
                continue
            k_all = np.concatenate(k_hist, axis=-2)
            v_all = np.concatenate(v_hist, axis=-2)
            exact = _exact_step(q_t, k_all, v_all, attn_scale)
            tail_err = max(tail_err, float(np.abs(out - exact).max()))
            if name == "guarded":
                bound = attention_output_bound(
                    _score_promise(state, q_t, k_all, attn_scale, mc),
                    _value_promise(state),
                    float(np.abs(v_all).max()),
                )
                contract_bound = min(contract_bound, bound)
        report = state.report
        results[name] = EscalationRun(
            name=name,
            steps=steps,
            escalations=report.escalations if report else 0,
            regrows=report.scale_regrows if report else 0,
            final_bits=[int(b) for b in state.cache.head_bits],
            tail_error=tail_err,
            tail_bound=np.nan,
        )
    for r in results.values():
        r.tail_bound = float(contract_bound)
    return [results["no-guard"], results["guarded"]]


# --------------------------------------------------------------------------
# Harness entry points
# --------------------------------------------------------------------------

def run(quick: bool = False):
    return _chaos_matrix(), _escalation_experiment(quick=quick)


def main(quick: bool = False) -> str:
    cells, runs = run(quick=quick)

    chaos_rows = [
        [
            c.kind,
            "stealth" if c.stealth else "stale-crc",
            c.target_key,
            c.detected or "(valid data)",
            f"{c.salvage_kept}/{c.salvage_total}",
            ", ".join(f"[{s}, {e})" for s, e in c.salvage_ranges) or "-",
            "OK" if c.prefix_valid else "BROKEN",
        ]
        for c in cells
    ]
    chaos_table = render_table(
        ["corruption", "mode", "key hit", "detected as", "kept tok",
         "recompute", "prefix"],
        chaos_rows,
        title="Chaos persistence matrix (seeded injector, serialized KV state)",
    )

    esc_rows = [
        [
            r.name,
            r.steps,
            r.escalations,
            r.regrows,
            "/".join(str(b) for b in r.final_bits),
            f"{r.tail_error:.3f}",
            f"{r.tail_bound:.3f}",
            "yes" if r.within_bound else "VIOLATED",
        ]
        for r in runs
    ]
    esc_table = render_table(
        ["run", "steps", "escalations", "scale regrows", "final bits",
         "tail err", "bound", "within"],
        esc_rows,
        title=("Escalation vs attention_output_bound (identical seeded decode "
               "stream, value distribution drifts to mean 40 mid-run)"),
    )

    stale = [c for c in cells if not c.stealth]
    stealthy = [c for c in cells if c.stealth]
    lookup = {r.name: r for r in runs}
    unguarded, guarded = lookup["no-guard"], lookup["guarded"]
    checks = [
        (
            "stale-CRC corruption (realistic storage fault): "
            f"{sum(1 for c in stale if c.detected)}/{len(stale)} kinds detected "
            "with typed errors"
        ),
        (
            "stealth corruption caught semantically: "
            + ", ".join(
                "{}={}".format(
                    c.kind,
                    "yes" if c.detected
                    else "no (valid data — why checksums are stamped at write time)",
                )
                for c in stealthy
            )
        ),
        (
            "salvage always returns a valid sequence prefix + exact recompute "
            f"ranges ({'OK' if all(c.prefix_valid for c in cells) else 'VIOLATED'})"
        ),
        (
            "silent wrong output cases: "
            f"{sum(1 for c in cells if c.silent_wrong_output)}"
        ),
        (
            f"no-guard run: tail error {unguarded.tail_error:.3f} vs bound "
            f"{unguarded.tail_bound:.3f} — "
            f"{'VIOLATES' if not unguarded.within_bound else 'within'} "
            f"({unguarded.tail_error / max(unguarded.tail_bound, 1e-12):.1f}x); "
            "frozen-scale clamping breaks the quantizer's promise"
        ),
        (
            f"guarded run: {guarded.escalations} escalations, "
            f"{guarded.regrows} scale regrows, final bits "
            f"{'/'.join(str(b) for b in guarded.final_bits)}; tail error "
            f"{guarded.tail_error:.3f} stays within bound {guarded.tail_bound:.3f} "
            f"({'OK' if guarded.within_bound else 'VIOLATED'})"
        ),
    ]
    text = (
        chaos_table + "\n\n" + esc_table
        + "\nChecks:\n" + "\n".join(f"  - {c}" for c in checks)
    )
    print(text)
    return text


if __name__ == "__main__":
    main()

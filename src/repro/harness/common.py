"""Shared harness utilities: table rendering and method registries."""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from repro.baselines import (
    FP16Attention,
    GEARAttention,
    GEARConfig,
    KIVIAttention,
    KIVIConfig,
)
from repro.core import TurboAttention, TurboConfig

__all__ = ["render_table", "accuracy_method_registry"]


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Plain-text table with aligned columns (markdown-ish)."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def accuracy_method_registry() -> Dict[str, Callable[[], object]]:
    """Backend factories for the accuracy experiments (Table 2 row set).

    Naming follows the paper: the 4-bit group (KIVI/GEAR at 4-bit vs
    TurboAttention uniform 4-bit) and the 3-bit group (KIVI/GEAR at 3-bit
    vs TurboAttention head-wise mixed 2/4-bit, which matches the 3-bit
    simulated cache size).
    """
    return {
        "fp16": FP16Attention,
        "kivi_4bit": lambda: KIVIAttention(KIVIConfig(bits=4)),
        "gear_4bit": lambda: GEARAttention(GEARConfig(bits=4)),
        "turbo_4bit": lambda: TurboAttention(TurboConfig(kv_bits=4)),
        "kivi_3bit": lambda: KIVIAttention(KIVIConfig(bits=3)),
        "gear_3bit": lambda: GEARAttention(GEARConfig(bits=3)),
        "turbo_mixed": lambda: TurboAttention(TurboConfig(mixed_precision=True)),
    }

"""Checkpointing / warm-restart extension experiment: compression makes
aggressive checkpointing affordable, and checkpoints turn crashes from
re-prefill storms into bounded recompute.

The baseline fleet recovers from a crash the only way a stateless
gateway can: every evicted request is re-dispatched and re-prefilled
from token zero.  With :mod:`repro.recover` enabled, each replica takes
periodic crash-consistent snapshots (request progress + a
checksum-verified KV payload through the real
:mod:`repro.core.serialization` schema) and appends post-snapshot
lifecycle marks to a write-ahead log; a warm restart loads the newest
usable epoch (salvaging corrupt ones to their longest valid prefix,
degrading to the previous epoch, then to cold start — never losing a
request) and resumes every held request at an exact ``[valid,
prompt_len)`` recompute range.

Two headline claims, both measured under an *identical* seeded crash
schedule:

* warm restart strictly reduces wasted tokens **and** p99 TTFT versus
  cold retry — the recompute range does the work a full re-prefill did;
* the snapshot itself is ~4x cheaper to persist on the compressed cache
  (bytes scale with ``kv_bits``: 4.3-bit turbo4 vs FP16), which is what
  makes short snapshot intervals viable in the first place.

A third set of cells exercises the operator surface: graceful drain and
rolling restart complete with zero dropped and zero failed requests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.cluster import (
    ClusterConfig,
    ClusterMetrics,
    ClusterSimulator,
    FaultConfig,
)
from repro.harness.common import render_table
from repro.perf.attention_costs import METHODS
from repro.perf.e2e import ModelGeometry
from repro.recover import FleetOp, RecoverConfig
from repro.serving.engine import EngineConfig
from repro.serving.workload import ramp_workload

__all__ = ["run", "main", "FAULT_SCHEDULE", "RECOVER", "RECOVER_CORRUPT"]

N_REPLICAS = 2
PREFILL_CHUNK = 256

#: Crash-heavy schedule: short downtimes so the restart cost (not the
#: outage itself) dominates, no TTFT deadline so the waste comparison is
#: pure re-prefill vs recompute-range.
FAULT_SCHEDULE = FaultConfig(
    seed=7,
    crash_rate=0.04,
    crash_downtime_s=4.0,
    max_retries=5,
    horizon_pad_s=10.0,
)

RECOVER = RecoverConfig(snapshot_interval_s=1.5, keep_epochs=2, seed=11)
#: At-rest corruption cell: most epochs damaged, exercising the full
#: salvage -> previous-epoch -> cold-start ladder.
RECOVER_CORRUPT = RecoverConfig(
    snapshot_interval_s=1.5, keep_epochs=2, seed=11, corrupt_rate=0.6
)

#: Operator schedule for the clean fleet-ops cell: one targeted drain,
#: then a full rolling restart while traffic keeps flowing.
FLEET_OPS = (
    FleetOp(time=5.0, kind="drain", replica_id=1),
    FleetOp(time=12.0, kind="rolling_restart"),
)


@dataclass
class RecoverCell:
    method: str
    run_kind: str  # "cold" | "warm" | "warm/corrupt" | "ops"
    metrics: ClusterMetrics


def _workload(quick: bool) -> list:
    scale = 0.5 if quick else 1.0
    return ramp_workload(
        [(0.8, 15.0 * scale), (1.6, 25.0 * scale), (0.8, 15.0 * scale)],
        prompt_range=(3072, 6144),
        gen_range=(192, 384),
        rng=np.random.default_rng(21),
    )


def _simulate(
    method: str,
    requests: list,
    faults: Optional[FaultConfig] = FAULT_SCHEDULE,
    recover: Optional[RecoverConfig] = None,
    ops: Tuple[FleetOp, ...] = (),
    n_replicas: int = N_REPLICAS,
) -> ClusterMetrics:
    config = ClusterConfig(
        n_replicas=n_replicas,
        policy="least_kv",
        engine=EngineConfig(prefill_chunk=PREFILL_CHUNK),
        faults=faults,
        recover=recover,
        ops=ops,
    )
    model = ModelGeometry.phi3_medium()
    return ClusterSimulator(model, METHODS[method], config).run(requests)


def run(quick: bool = False) -> List[RecoverCell]:
    requests = _workload(quick)
    cells = [
        RecoverCell("turbo4", "cold", _simulate("turbo4", requests)),
        RecoverCell(
            "turbo4", "warm", _simulate("turbo4", requests, recover=RECOVER)
        ),
        RecoverCell(
            "fp16", "warm", _simulate("fp16", requests, recover=RECOVER)
        ),
        RecoverCell(
            "turbo4",
            "warm/corrupt",
            _simulate("turbo4", requests, recover=RECOVER_CORRUPT),
        ),
        RecoverCell(
            "turbo4",
            "ops",
            _simulate(
                "turbo4", requests, faults=None, recover=RECOVER,
                ops=FLEET_OPS, n_replicas=3,
            ),
        ),
    ]
    return cells


def _find(cells: List[RecoverCell], method: str, run_kind: str) -> RecoverCell:
    for c in cells:
        if (c.method, c.run_kind) == (method, run_kind):
            return c
    raise KeyError((method, run_kind))


def _wasted(m: ClusterMetrics) -> int:
    return m.wasted_prefill_tokens + m.wasted_decode_tokens


def main(quick: bool = False) -> str:
    cells = run(quick=quick)
    rows = [
        [
            c.method,
            c.run_kind,
            c.metrics.completed,
            c.metrics.failed,
            f"{c.metrics.p50_ttft:.2f}",
            f"{c.metrics.p99_ttft:.2f}",
            _wasted(c.metrics),
            c.metrics.crashes,
            c.metrics.snapshots_taken,
            f"{c.metrics.snapshot_bytes / 2**30:.1f}",
            c.metrics.recovered_requests,
            c.metrics.restored_prefill_tokens
            + c.metrics.restored_decode_tokens,
            c.metrics.snapshot_corruptions,
            c.metrics.snapshot_salvages,
            c.metrics.drains,
            f"{c.metrics.availability * 100:.1f}%",
        ]
        for c in cells
    ]
    table = render_table(
        [
            "method", "run", "done", "failed", "p50 TTFT", "p99 TTFT",
            "wasted tok", "crashes", "snaps", "snap GiB", "recovered",
            "restored tok", "corrupt", "salvaged", "drains", "avail",
        ],
        rows,
        title=(
            f"Checkpointing & warm restart ({N_REPLICAS} replicas, "
            f"Phi3-medium, chunk={PREFILL_CHUNK}): crash schedule "
            f"seed={FAULT_SCHEDULE.seed} rate={FAULT_SCHEDULE.crash_rate}/s "
            f"downtime={FAULT_SCHEDULE.crash_downtime_s}s, snapshots every "
            f"{RECOVER.snapshot_interval_s}s"
        ),
    )

    cold = _find(cells, "turbo4", "cold")
    warm = _find(cells, "turbo4", "warm")
    fp16 = _find(cells, "fp16", "warm")
    corrupt = _find(cells, "turbo4", "warm/corrupt")
    ops = _find(cells, "turbo4", "ops")
    snap_ratio = (
        fp16.metrics.snapshot_bytes / warm.metrics.snapshot_bytes
        if warm.metrics.snapshot_bytes
        else float("inf")
    )
    per_token_ratio = 16.0 / METHODS["turbo4"].kv_bits
    checks = [
        (
            "warm restart wastes fewer tokens than cold retry under the "
            f"same crashes: {_wasted(warm.metrics)} vs {_wasted(cold.metrics)} "
            f"({'OK' if _wasted(warm.metrics) < _wasted(cold.metrics) else 'VIOLATED'})"
        ),
        (
            "warm restart wins p99 TTFT under the same crashes: "
            f"{warm.metrics.p99_ttft:.2f}s vs {cold.metrics.p99_ttft:.2f}s "
            f"({'OK' if warm.metrics.p99_ttft < cold.metrics.p99_ttft else 'VIOLATED'})"
        ),
        (
            "compression pays for the checkpoints: turbo4 persists "
            f"{per_token_ratio:.2f}x fewer bytes per cached token than fp16 "
            f"(measured totals {snap_ratio:.2f}x cheaper) "
            f"({'OK' if snap_ratio > 2.0 else 'VIOLATED'})"
        ),
        (
            "the recovery ladder degrades, never loses: corrupt-at-rest run "
            f"hit {corrupt.metrics.snapshot_corruptions} corrupt epochs, "
            f"salvaged {corrupt.metrics.snapshot_salvages}, failed "
            f"{corrupt.metrics.failed} "
            f"({'OK' if corrupt.metrics.snapshot_corruptions > 0 else 'VIOLATED'})"
        ),
        (
            "fleet ops drop nothing: drain + rolling restart completed "
            f"{ops.metrics.completed}/{ops.metrics.total} with "
            f"{ops.metrics.failed} failures, {ops.metrics.drains} drains, "
            f"{ops.metrics.rolling_restarts} rolling restart "
            f"({'OK' if ops.metrics.failed == 0 and ops.metrics.drains >= 4 and ops.metrics.rolling_restarts == 1 else 'VIOLATED'})"
        ),
        (
            "conservation: every cell terminates all requests exactly once "
            f"({'OK' if all(c.metrics.completed + c.metrics.failed + c.metrics.rejected + c.metrics.shed == c.metrics.total for c in cells) else 'VIOLATED'})"
        ),
    ]
    text = table + "\nChecks:\n" + "\n".join(f"  - {c}" for c in checks)
    print(text)
    return text


if __name__ == "__main__":
    main()

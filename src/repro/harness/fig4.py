"""Figures 4, 8, 9: Q/K/V channel min-max distributions.

Figure 4 plots per-channel min/max of Q, K, V for Phi3-mini and LLaMA3-8B,
showing a minority of large-magnitude channels in Q/K (and in V for Phi3).
Figures 8/9 compare channel-wise vs token-wise min-max *gap* distributions
of the value cache for both models.

We compute the same statistics from the shaped synthetic Q/K/V tensors and
summarize each distribution by quantiles plus an outlier ratio (p99 gap /
median gap) — the number a reader would eyeball from the paper's scatter
plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.harness.common import render_table
from repro.models.config import MODEL_PRESETS
from repro.models.synthetic_stats import synthetic_qkv

__all__ = ["GapStats", "gap_stats", "run", "main"]


@dataclass
class GapStats:
    """Summary of a min-max gap distribution."""

    median: float
    p99: float
    maximum: float

    @property
    def outlier_ratio(self) -> float:
        """p99 / median — >> 1 indicates heavy channel outliers."""
        return self.p99 / self.median if self.median > 0 else float("inf")


def gap_stats(x: np.ndarray, axis: str) -> GapStats:
    """Gap distribution of a ``(heads, tokens, channels)`` tensor.

    ``axis="channel"``: one gap per (head, channel), reduced over tokens —
    what channel-wise quantization sees.  ``axis="token"``: one gap per
    (head, token), reduced over channels — what token-wise quantization
    sees.
    """
    if axis == "channel":
        gaps = x.max(axis=1) - x.min(axis=1)
    elif axis == "token":
        gaps = x.max(axis=2) - x.min(axis=2)
    else:
        raise ValueError(f"axis must be 'channel' or 'token', got {axis!r}")
    flat = gaps.ravel()
    return GapStats(
        median=float(np.median(flat)),
        p99=float(np.percentile(flat, 99)),
        maximum=float(flat.max()),
    )


def run(quick: bool = False) -> Dict[str, Dict[str, GapStats]]:
    n_tokens = 256 if quick else 2048
    out: Dict[str, Dict[str, GapStats]] = {}
    for model_name in ("llama3ish", "qwen2ish", "phi3ish"):
        model = MODEL_PRESETS[model_name]
        rng = np.random.default_rng(model.seed + 100)
        qkv = synthetic_qkv(model, n_tokens, rng)
        out[model_name] = {
            "q_channel": gap_stats(qkv.q, "channel"),
            "k_channel": gap_stats(qkv.k, "channel"),
            "v_channel": gap_stats(qkv.v, "channel"),
            "v_token": gap_stats(qkv.v, "token"),
            "k_token": gap_stats(qkv.k, "token"),
        }
    return out


def main(quick: bool = False) -> str:
    res = run(quick=quick)
    rows: List[List[str]] = []
    for model, stats in res.items():
        for key, s in stats.items():
            rows.append(
                [model, key, f"{s.median:.2f}", f"{s.p99:.2f}", f"{s.maximum:.2f}", f"{s.outlier_ratio:.2f}"]
            )
    text = render_table(
        ["model", "tensor/axis", "median gap", "p99 gap", "max gap", "p99/median"],
        rows,
        title="Figures 4/8/9: min-max gap distributions (channel vs token)",
    )
    print(text)
    return text


if __name__ == "__main__":
    main()

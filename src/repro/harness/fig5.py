"""Figure 5: polynomial fit quality for the SAS decimal part.

Reports the paper's published coefficients (Eq. 15) against a fresh
least-squares refit, the max/mean absolute error of each over ``[0, 1]``,
and the error profile at a few sample points — everything the figure's
fitted-curve plot conveys.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.harness.common import render_table
from repro.sas.poly import PAPER_POLY_COEFFS, fit_exp_poly, poly_eval, poly_max_error

__all__ = ["run", "main"]


def run(quick: bool = False) -> Dict[str, object]:
    del quick
    refit = fit_exp_poly(degree=3)
    xs = np.linspace(0.0, 1.0, 11)
    return {
        "paper_coeffs": PAPER_POLY_COEFFS,
        "refit_coeffs": tuple(float(c) for c in refit),
        "paper_max_err": poly_max_error(PAPER_POLY_COEFFS),
        "refit_max_err": poly_max_error(tuple(refit)),
        "paper_mean_err": float(
            np.mean(np.abs(poly_eval(np.linspace(0, 1, 10001), PAPER_POLY_COEFFS) - np.exp(-np.linspace(0, 1, 10001))))
        ),
        "samples": [
            (float(x), float(poly_eval(np.array([x]), PAPER_POLY_COEFFS)[0]), float(np.exp(-x)))
            for x in xs
        ],
    }


def main(quick: bool = False) -> str:
    res = run(quick=quick)
    lines = [
        "Figure 5: POLY(x) ~= e^{-x} on [0, 1]",
        f"paper coeffs : {res['paper_coeffs']}",
        f"refit coeffs : {tuple(round(c, 4) for c in res['refit_coeffs'])}",
        f"max |err| paper={res['paper_max_err']:.2e} refit={res['refit_max_err']:.2e}",
        f"mean |err| paper={res['paper_mean_err']:.2e}",
    ]
    lines.append(
        render_table(
            ["x", "POLY(x)", "e^-x", "err"],
            [[f"{x:.1f}", f"{p:.6f}", f"{e:.6f}", f"{abs(p - e):.2e}"] for x, p, e in res["samples"]],
        )
    )
    text = "\n".join(lines)
    print(text)
    return text


if __name__ == "__main__":
    main()

"""Table 2: accuracy on CoT-style retrieval tasks across models/methods.

Paper layout: rows = methods at 4-bit and 3-bit/mixed budgets, columns =
(model x task) accuracy plus the all-cell average.  Our substitution
replaces GSM8k/AQuA/BBH with the matched recall tasks (see
``repro.tasks``); FP16 solves them ~100%, so the table reads as "retention
under compression" exactly like the paper's accuracy columns.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List

from repro.harness.common import accuracy_method_registry, render_table
from repro.models.config import MODEL_PRESETS
from repro.tasks import TASK_PRESETS
from repro.tasks.recall import evaluate_backend

__all__ = ["Table2Cell", "run", "main"]

EVAL_MODELS = ("llama3ish", "qwen2ish", "phi3ish")
EVAL_TASKS = ("gsm8k_like", "aqua_like", "bbh_like")


@dataclass
class Table2Cell:
    method: str
    model: str
    task: str
    accuracy: float
    effective_bits: float


def run(quick: bool = False) -> List[Table2Cell]:
    """Evaluate every (method, model, task) cell.

    ``quick`` shrinks prompts/hops ~8x for CI; the ranking is preserved,
    absolute accuracies shift slightly.
    """
    cells: List[Table2Cell] = []
    for method_name, factory in accuracy_method_registry().items():
        for model_name in EVAL_MODELS:
            model = MODEL_PRESETS[model_name]
            for task_name in EVAL_TASKS:
                task = TASK_PRESETS[task_name]
                if quick:
                    task = replace(
                        task,
                        prefill_len=max(192, task.prefill_len // 8),
                        n_hops=32,
                        n_pairs=max(32, task.n_pairs // 2),
                    )
                res = evaluate_backend(factory, task, model)
                cells.append(
                    Table2Cell(
                        method=method_name,
                        model=model_name,
                        task=task_name,
                        accuracy=res.accuracy,
                        effective_bits=res.effective_bits,
                    )
                )
    return cells


def as_rows(cells: List[Table2Cell]) -> List[List[str]]:
    methods: Dict[str, Dict[str, Table2Cell]] = {}
    for c in cells:
        methods.setdefault(c.method, {})[f"{c.model}/{c.task}"] = c
    rows = []
    for method, by_key in methods.items():
        accs = [c.accuracy for c in by_key.values()]
        bits = sum(c.effective_bits for c in by_key.values()) / len(by_key)
        row = [method, f"{bits:.2f}"]
        for model in EVAL_MODELS:
            for task in EVAL_TASKS:
                row.append(f"{by_key[f'{model}/{task}'].accuracy * 100:.1f}")
        row.append(f"{sum(accs) / len(accs) * 100:.1f}")
        rows.append(row)
    return rows


def main(quick: bool = False) -> str:
    cells = run(quick=quick)
    headers = ["method", "bits"]
    headers += [f"{m[:6]}/{t[:5]}" for m in EVAL_MODELS for t in EVAL_TASKS]
    headers.append("avg")
    text = render_table(headers, as_rows(cells), title="Table 2: recall accuracy (%)")
    print(text)
    return text


if __name__ == "__main__":
    main()

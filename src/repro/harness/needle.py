"""Needle-in-a-haystack depth sweep (extension experiment).

Long-context evaluations routinely probe retrieval as a function of the
fact's depth in the prompt.  Under cache compression the sweep exposes
*where* each method's fidelity lives:

* FP16 — flat 100%.
* TurboAttention — high accuracy over the compressed body, rising to
  ~100% near the prompt tail, whose tokens still sit in the INT8 decode
  buffer (universal scale, §3.3).
* KIVI at 2-bit — collapses over the quantized body and only recovers for
  needles inside its FP16 residual window.

This is the per-position view of the same mechanism Table 2 aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.baselines import FP16Attention, KIVIAttention, KIVIConfig
from repro.core import TurboAttention, TurboConfig
from repro.harness.common import render_table
from repro.models.config import MODEL_PRESETS
from repro.tasks.needle import NeedleResult, NeedleTask, depth_sweep

__all__ = ["run", "main", "NEEDLE_METHODS", "DEPTHS"]

DEPTHS = (0.0, 0.25, 0.5, 0.75, 0.95, 1.0)

NEEDLE_METHODS = {
    "fp16": FP16Attention,
    "kivi_4bit": lambda: KIVIAttention(KIVIConfig(bits=4)),
    "kivi_2bit": lambda: KIVIAttention(KIVIConfig(bits=2)),
    "turbo_mixed": lambda: TurboAttention(TurboConfig(mixed_precision=True)),
    "turbo_2bit": lambda: TurboAttention(TurboConfig(kv_bits=2)),
}


def run(quick: bool = False) -> Dict[str, List[NeedleResult]]:
    model = MODEL_PRESETS["phi3ish"]
    # 1050 tokens: 16 full 64-token blocks + a 26-token INT8 buffer tail.
    task = NeedleTask(
        prefill_len=520 if quick else 1050,
        n_probes=16 if quick else 32,
        n_distractor_pairs=95,
        value_coherence=0.96,
    )
    n_seeds = 2 if quick else 4
    return {
        name: depth_sweep(factory, model, depths=DEPTHS, task=task, n_seeds=n_seeds)
        for name, factory in NEEDLE_METHODS.items()
    }


def main(quick: bool = False) -> str:
    res = run(quick=quick)
    rows = [
        [name] + [f"{r.accuracy * 100:.0f}" for r in sweep]
        for name, sweep in res.items()
    ]
    text = render_table(
        ["method"] + [f"depth {d:.2f}" for d in DEPTHS],
        rows,
        title="Needle-in-a-haystack retrieval accuracy (%) by depth (phi3ish)",
    )
    print(text)
    return text


if __name__ == "__main__":
    main()

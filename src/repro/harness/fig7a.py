"""Figure 7a: throughput vs batch size (Phi3-medium, ctx 1k, gen 125).

Per-method tokens/s curves over a batch sweep with OOM cutoffs, plus each
method's maximum throughput and its ratio to the FP16 baseline — the
paper's headline 2.37x number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.harness.common import render_table
from repro.perf.attention_costs import METHODS
from repro.perf.e2e import ModelGeometry
from repro.perf.memory import paper_memory_model
from repro.perf.throughput import ThroughputPoint, generation_throughput, max_throughput

__all__ = ["run", "main", "PROMPT_LEN", "GEN_LEN"]

PROMPT_LEN = 1024
GEN_LEN = 125
CURVE_METHODS = ("fp16", "kivi4", "gear4", "turbo4", "turbo_mixed")


@dataclass
class Fig7aResult:
    curves: Dict[str, List[ThroughputPoint]]
    best: Dict[str, ThroughputPoint]


def run(quick: bool = False) -> Fig7aResult:
    model = ModelGeometry.phi3_medium()
    mem = paper_memory_model(model)
    batches: Sequence[int] = (1, 4, 16, 64, 128) if quick else (1, 2, 4, 8, 16, 32, 64, 96, 128, 192, 256)
    curves: Dict[str, List[ThroughputPoint]] = {}
    best: Dict[str, ThroughputPoint] = {}
    for name in CURVE_METHODS:
        spec = METHODS[name]
        curves[name] = [
            generation_throughput(spec, model, b, PROMPT_LEN, GEN_LEN, memory=mem)
            for b in batches
        ]
        best[name] = max_throughput(spec, model, PROMPT_LEN, GEN_LEN, memory=mem)
    return Fig7aResult(curves=curves, best=best)


def main(quick: bool = False) -> str:
    res = run(quick=quick)
    batches = [p.batch for p in next(iter(res.curves.values()))]
    rows = []
    for i, b in enumerate(batches):
        row = [b]
        for m in CURVE_METHODS:
            p = res.curves[m][i]
            row.append("OOM" if p.oom else f"{p.tokens_per_second:.0f}")
        rows.append(row)
    text = render_table(
        ["batch"] + list(CURVE_METHODS),
        rows,
        title="Figure 7a: throughput (tokens/s), Phi3-medium, ctx 1k, gen 125",
    )
    base = res.best["fp16"].tokens_per_second
    summary = [
        [
            m,
            res.best[m].batch,
            f"{res.best[m].tokens_per_second:.0f}",
            f"{res.best[m].tokens_per_second / base:.2f}x",
        ]
        for m in CURVE_METHODS
    ]
    text += "\n\n" + render_table(
        ["method", "best batch", "max tokens/s", "vs fp16"], summary,
        title="Maximum throughput",
    )
    print(text)
    return text


if __name__ == "__main__":
    main()

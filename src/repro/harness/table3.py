"""Table 3: block-size ablation.

The paper sweeps (B_r, B_c) over {32, 64, 128}^2-ish pairs on GSM8k with
Phi3-mini and finds TurboAttention robust (accuracy within ~0.5 points).
We run the same sweep of the kernel tile sizes on the matched task; the
cache block size follows ``B_c`` so the ablation also exercises different
progressive-quantization granularities.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Tuple

from repro.core import TurboAttention, TurboConfig
from repro.harness.common import render_table
from repro.models.config import MODEL_PRESETS
from repro.tasks import TASK_PRESETS
from repro.tasks.recall import evaluate_backend

__all__ = ["Table3Row", "BLOCK_SIZES", "run", "main"]

BLOCK_SIZES: Tuple[Tuple[int, int], ...] = (
    (32, 32),
    (32, 64),
    (64, 32),
    (64, 64),
    (64, 128),
    (128, 64),
    (128, 128),
)


@dataclass
class Table3Row:
    block_q: int
    block_k: int
    accuracy: float
    effective_bits: float


def run(quick: bool = False) -> List[Table3Row]:
    model = MODEL_PRESETS["phi3ish"]
    task = TASK_PRESETS["gsm8k_like"]
    if quick:
        task = replace(task, prefill_len=256, n_hops=32)
    rows: List[Table3Row] = []
    for bq, bk in BLOCK_SIZES:
        factory = lambda bq=bq, bk=bk: TurboAttention(
            TurboConfig(block_q=bq, block_k=bk, buffer_size=bk)
        )
        res = evaluate_backend(factory, task, model)
        rows.append(
            Table3Row(
                block_q=bq, block_k=bk, accuracy=res.accuracy, effective_bits=res.effective_bits
            )
        )
    return rows


def main(quick: bool = False) -> str:
    rows = run(quick=quick)
    text = render_table(
        ["(B_r, B_c)", "dataset", "accuracy %", "bits/val"],
        [
            [f"({r.block_q},{r.block_k})", "gsm8k_like", f"{r.accuracy * 100:.2f}", f"{r.effective_bits:.2f}"]
            for r in rows
        ],
        title="Table 3: TurboAttention block-size ablation (phi3ish)",
    )
    print(text)
    return text


if __name__ == "__main__":
    main()

"""Figure 6: attention speedup over FlashAttention-FP16.

Four panels, all Phi3-medium on one A100-80GB:

* prefill and decode speedup vs **batch size** (1-64) at context 1k;
* prefill and decode speedup vs **context length** (4k-32k) at batch 4,
  with OOM markers where a configuration does not fit.

Speedups are ratios of cost-model attention latencies; OOM comes from the
calibrated memory model.  Expected shape: Turbo 1.2-1.8x prefill and up to
~1.7x+ decode; KIVI/GEAR *below* 1.0 in decode (dequantization overhead);
FP16 itself OOMs past ~4k context at batch 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.harness.common import render_table
from repro.perf.attention_costs import METHODS, attention_latency
from repro.perf.e2e import ModelGeometry
from repro.perf.memory import paper_memory_model

__all__ = ["SpeedupPoint", "run", "main"]

SWEEP_METHODS = ("turbo_mixed", "turbo4", "kivi4", "gear4")


@dataclass
class SpeedupPoint:
    method: str
    batch: int
    context: int
    phase: str  # "prefill" | "decode"
    speedup: Optional[float]  # None = OOM (either method or baseline)
    baseline_oom: bool


def _sweep(
    model: ModelGeometry,
    batches: Sequence[int],
    contexts: Sequence[int],
    phase: str,
) -> List[SpeedupPoint]:
    mem = paper_memory_model(model)
    points: List[SpeedupPoint] = []
    prefill = phase == "prefill"
    for batch in batches:
        for ctx in contexts:
            geom = model.attention_geometry(batch, ctx if prefill else 1, ctx)
            base_fits = mem.fits(METHODS["fp16"], batch, ctx)
            # The paper plots compressed-method bars past the FP16 OOM
            # boundary; the ratio there is against the *modelled* FP16
            # latency (marked with the baseline-OOM flag).
            base = attention_latency(METHODS["fp16"], geom, prefill)
            for name in SWEEP_METHODS:
                if not mem.fits(METHODS[name], batch, ctx):
                    points.append(
                        SpeedupPoint(name, batch, ctx, phase, None, baseline_oom=not base_fits)
                    )
                    continue
                lat = attention_latency(METHODS[name], geom, prefill)
                points.append(
                    SpeedupPoint(name, batch, ctx, phase, base / lat, baseline_oom=not base_fits)
                )
    return points


def run(quick: bool = False) -> Dict[str, List[SpeedupPoint]]:
    model = ModelGeometry.phi3_medium()
    batches = (1, 4, 16, 64) if quick else (1, 2, 4, 8, 16, 32, 64)
    contexts = (4096, 16384, 32768) if quick else (4096, 8192, 16384, 32768)
    return {
        "batch_sweep_prefill": _sweep(model, batches, [1024], "prefill"),
        "batch_sweep_decode": _sweep(model, batches, [1024], "decode"),
        "ctx_sweep_prefill": _sweep(model, [4], contexts, "prefill"),
        "ctx_sweep_decode": _sweep(model, [4], contexts, "decode"),
    }


def _fmt(p: SpeedupPoint) -> str:
    if p.speedup is None:
        return "OOM"
    # "*" marks cells where the FP16 baseline itself OOMs (ratio is against
    # the modelled FP16 latency, as in the paper's annotated bars).
    return f"{p.speedup:.2f}x" + ("*" if p.baseline_oom else "")


def main(quick: bool = False) -> str:
    res = run(quick=quick)
    blocks = []
    for panel, points in res.items():
        by_x: Dict[int, Dict[str, SpeedupPoint]] = {}
        x_is_batch = "batch" in panel
        for p in points:
            x = p.batch if x_is_batch else p.context
            by_x.setdefault(x, {})[p.method] = p
        rows = [
            [x] + [_fmt(by_x[x][m]) for m in SWEEP_METHODS] for x in sorted(by_x)
        ]
        blocks.append(
            render_table(
                [("batch" if x_is_batch else "context")] + list(SWEEP_METHODS),
                rows,
                title=f"Figure 6 [{panel}]: speedup vs FlashAttention-FP16",
            )
        )
    text = "\n\n".join(blocks)
    print(text)
    return text


if __name__ == "__main__":
    main()

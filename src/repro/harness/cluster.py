"""Cluster-serving extension experiment: methods × router policies.

The serving harness (:mod:`repro.harness.serving_sim`) shows what one
engine gains from a compressed cache; this harness asks the fleet-level
question: with N replicas sharing an arrival stream, how do attention
methods and router policies interact?  Two claims are checked:

* **Routing** — KV-pressure-aware dispatch (``least_kv``) matches or beats
  round-robin on p99 TTFT: when replicas run near their memory capacity,
  spreading by *cache demand* avoids the queueing that blind cycling
  causes behind long-prompt pileups.
* **Capacity** — at an identical per-replica HBM budget, TurboAttention's
  smaller KV footprint admits several times more concurrent requests per
  replica than FP16, which is where its cluster goodput advantage
  comes from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.cluster import ClusterConfig, ClusterMetrics, ClusterSimulator, ROUTER_POLICIES
from repro.harness.common import render_table
from repro.perf.attention_costs import METHODS
from repro.perf.e2e import ModelGeometry
from repro.serving import poisson_workload

__all__ = ["run", "main", "CLUSTER_METHODS", "CLUSTER_POLICIES", "N_REPLICAS"]

CLUSTER_METHODS = ("fp16", "kivi4", "gear4", "turbo_mixed")
CLUSTER_POLICIES = tuple(ROUTER_POLICIES)
N_REPLICAS = 3


@dataclass
class ClusterCell:
    method: str
    policy: str
    workload: str
    metrics: ClusterMetrics

    @property
    def peak_concurrency(self) -> int:
        """Largest admitted batch any replica reached."""
        return max((s.peak_running for s in self.metrics.replicas), default=0)


def _workloads(quick: bool) -> Dict[str, list]:
    n = 48 if quick else 120
    return {
        # Chat-style steady stream: short prompts, moderate rate.
        "steady": poisson_workload(
            n, arrival_rate=8.0, rng=np.random.default_rng(11), n_sessions=16
        ),
        # Heavy-tailed prompts past the FP16 fleet's memory capacity —
        # the regime where KV-aware routing has something to balance.
        "bursty": poisson_workload(
            n,
            arrival_rate=6.0,
            prompt_range=(256, 6144),
            gen_range=(64, 320),
            rng=np.random.default_rng(12),
            n_sessions=24,
        ),
    }


def run(quick: bool = False) -> List[ClusterCell]:
    model = ModelGeometry.phi3_medium()
    cells: List[ClusterCell] = []
    for workload_name, requests in _workloads(quick).items():
        for method in CLUSTER_METHODS:
            for policy in CLUSTER_POLICIES:
                sim = ClusterSimulator(
                    model,
                    METHODS[method],
                    ClusterConfig(n_replicas=N_REPLICAS, policy=policy),
                )
                cells.append(
                    ClusterCell(
                        method=method,
                        policy=policy,
                        workload=workload_name,
                        metrics=sim.run(requests),
                    )
                )
    return cells


def main(quick: bool = False) -> str:
    cells = run(quick=quick)
    by_key: Dict[Tuple[str, str], List[ClusterCell]] = {}
    for c in cells:
        by_key.setdefault((c.workload, c.method), []).append(c)

    blocks = []
    for (workload, method), group in by_key.items():
        rows = [
            [
                c.policy,
                c.metrics.completed,
                f"{c.metrics.goodput_rps:.2f}",
                f"{c.metrics.slo_attainment * 100:.0f}%",
                f"{c.metrics.p50_ttft:.2f}",
                f"{c.metrics.p99_ttft:.2f}",
                f"{c.metrics.p99_tpot * 1e3:.0f}",
                c.peak_concurrency,
                c.metrics.preemptions,
            ]
            for c in group
        ]
        blocks.append(
            render_table(
                [
                    "policy", "done", "goodput/s", "SLO att",
                    "p50 TTFT (s)", "p99 TTFT (s)", "p99 TPOT (ms)",
                    "peak conc", "preempt",
                ],
                rows,
                title=(
                    f"Cluster [{workload}] method={method} "
                    f"({N_REPLICAS} replicas, Phi3-medium, A100-80GB each)"
                ),
            )
        )

    # Headline checks.
    lookup = {(c.workload, c.method, c.policy): c for c in cells}
    checks = []
    routing_wins = [
        (w, m)
        for w in _workloads(quick)
        for m in CLUSTER_METHODS
        if lookup[(w, m, "least_kv")].metrics.p99_ttft
        <= lookup[(w, m, "round_robin")].metrics.p99_ttft
    ]
    checks.append(
        f"least_kv p99 TTFT <= round_robin on {len(routing_wins)}/"
        f"{len(CLUSTER_METHODS) * 2} workload x method cells "
        f"(e.g. {routing_wins[0][0]}/{routing_wins[0][1]})"
        if routing_wins
        else "WARNING: least_kv never beat round_robin on p99 TTFT"
    )
    fp16 = lookup[("bursty", "fp16", "round_robin")].peak_concurrency
    turbo = lookup[("bursty", "turbo_mixed", "round_robin")].peak_concurrency
    checks.append(
        f"peak admitted concurrency per replica (bursty, equal HBM): "
        f"turbo_mixed {turbo} vs fp16 {fp16} "
        f"({turbo / fp16:.1f}x)" if fp16 else "n/a"
    )
    blocks.append("Checks:\n" + "\n".join(f"  - {c}" for c in checks))

    text = "\n\n".join(blocks)
    print(text)
    return text


if __name__ == "__main__":
    main()

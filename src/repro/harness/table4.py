"""Table 4 (Appendix C): isolating FlashQ vs SAS accuracy impact.

Four configurations on the AQuA-matched task with the LLaMA3-like model:

* FP16 — exact baseline.
* FlashQ-4bit — quantized cache + integer MatMuls, exact FP32 softmax.
* SAS — exact FP16 cache/MatMuls, approximate softmax.
* FlashQ-4bit + SAS — full TurboAttention.

The paper finds both components individually near-lossless with the
combination slightly additive.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List

from repro.baselines.fp16_cache import FP16Attention
from repro.core import TurboAttention, TurboConfig
from repro.harness.common import render_table
from repro.models.config import MODEL_PRESETS
from repro.sas.softmax import SAS
from repro.tasks import TASK_PRESETS
from repro.tasks.recall import evaluate_backend

__all__ = ["Table4Row", "run", "main"]


class _SASOnlyAttention(FP16Attention):
    """Exact FP16 cache and MatMuls, SAS in place of the softmax exp.

    Implemented by monkey-free subclassing: we reuse the quantized kernel
    with ``quantize_matmuls=False`` so only the exponential changes.
    """

    name = "sas_only"

    def __init__(self):
        self._turbo = TurboAttention(
            TurboConfig(use_sas=True, quantize_matmuls=False, kv_bits=8)
        )

    def prefill(self, q, k, v, causal=True, scale=None):
        return self._turbo.prefill(q, k, v, causal=causal, scale=scale)

    def decode_step(self, q_t, k_t, v_t, state, scale=None):
        return self._turbo.decode_step(q_t, k_t, v_t, state, scale=scale)


@dataclass
class Table4Row:
    method: str
    accuracy: float


def run(quick: bool = False) -> List[Table4Row]:
    model = MODEL_PRESETS["llama3ish"]
    task = TASK_PRESETS["aqua_like"]
    if quick:
        task = replace(task, prefill_len=256, n_hops=32)
    variants = {
        "fp16": FP16Attention,
        "flashq_4bit": lambda: TurboAttention(TurboConfig(kv_bits=4, use_sas=False)),
        "sas": _SASOnlyAttention,
        "flashq_4bit+sas": lambda: TurboAttention(TurboConfig(kv_bits=4, use_sas=True)),
    }
    return [
        Table4Row(method=name, accuracy=evaluate_backend(f, task, model).accuracy)
        for name, f in variants.items()
    ]


def main(quick: bool = False) -> str:
    rows = run(quick=quick)
    text = render_table(
        ["model", "dataset", "method", "accuracy %"],
        [["llama3ish", "aqua_like", r.method, f"{r.accuracy * 100:.2f}"] for r in rows],
        title="Table 4: FlashQ vs SAS accuracy isolation",
    )
    print(text)
    return text


if __name__ == "__main__":
    main()

"""Transformer substrate.

A from-scratch NumPy decoder-only transformer (RMSNorm, RoPE, grouped-query
attention, SwiGLU) with pluggable attention backends, plus generators for
synthetic Q/K/V tensors whose channel-outlier statistics mimic the models
the paper profiles (Figure 4 / Figures 8-9): LLaMA3-like, Qwen2-like, and
Phi3-like (the latter with pronounced value-channel outliers).

The weights are seeded-random but *structured*: selected K/V projection
channels are scaled up to create the per-channel outliers that drive the
accuracy differences between channel-wise and token-wise quantization.
"""

from repro.models.config import ModelConfig, MODEL_PRESETS
from repro.models.outliers import OutlierProfile, channel_scales
from repro.models.rope import rope_frequencies, apply_rope
from repro.models.layers import RMSNorm, SwiGLU, softmax_logits
from repro.models.transformer import TransformerLM
from repro.models.generation import generate, token_agreement
from repro.models.synthetic_stats import synthetic_qkv, SyntheticQKV

__all__ = [
    "ModelConfig",
    "MODEL_PRESETS",
    "OutlierProfile",
    "channel_scales",
    "rope_frequencies",
    "apply_rope",
    "RMSNorm",
    "SwiGLU",
    "softmax_logits",
    "TransformerLM",
    "generate",
    "token_agreement",
    "synthetic_qkv",
    "SyntheticQKV",
]

"""Synthetic Q/K/V tensors with model-shaped channel statistics.

The distribution-profiling figures (4, 8, 9, 10) and the retrieval tasks
need raw Q/K/V tensors whose channel min-max structure matches the models
the paper profiles.  :func:`synthetic_qkv` draws Gaussian token content and
applies the per-channel outlier gains of the model's
:class:`repro.models.outliers.OutlierProfile`, head by head — the same
shaping the transformer substrate injects through its projections, but
available without running a model (cheap enough for property tests).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.config import ModelConfig
from repro.models.outliers import channel_scales

__all__ = ["SyntheticQKV", "synthetic_qkv"]


@dataclass
class SyntheticQKV:
    """Per-head Q/K/V tensors of shape ``(heads, tokens, head_dim)``."""

    q: np.ndarray
    k: np.ndarray
    v: np.ndarray


def synthetic_qkv(
    config: ModelConfig,
    n_tokens: int,
    rng: np.random.Generator,
    token_std: float = 1.0,
) -> SyntheticQKV:
    """Draw shaped Q/K/V for ``config``.

    Query heads follow the key outlier profile (Figure 4 shows Q and K
    sharing the large-channel pattern); value heads follow the value
    profile.  Query tensors have ``config.n_heads`` heads, K/V have
    ``config.n_kv_heads``.
    """
    prof = config.outliers
    dh = config.head_dim

    def draw(n_heads: int, fraction: float, gain: float, bias_std: float) -> np.ndarray:
        x = rng.standard_normal((n_heads, n_tokens, dh)) * token_std
        for h in range(n_heads):
            gains = channel_scales(dh, fraction, gain, prof.jitter, rng)
            bias = rng.standard_normal(dh) * bias_std * token_std
            x[h] = (x[h] + bias) * gains
        return x

    return SyntheticQKV(
        q=draw(
            config.n_heads, prof.key_outlier_fraction, prof.key_outlier_gain,
            prof.key_channel_bias,
        ),
        k=draw(
            config.n_kv_heads, prof.key_outlier_fraction, prof.key_outlier_gain,
            prof.key_channel_bias,
        ),
        v=draw(
            config.n_kv_heads, prof.value_outlier_fraction, prof.value_outlier_gain,
            prof.value_channel_bias,
        ),
    )

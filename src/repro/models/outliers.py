"""Channel-outlier shaping.

The paper's Figure 4 (and Appendix D, Figures 8-10) shows that Q/K tensors
— and for Phi-3 also V tensors — carry a minority of channels with
magnitudes far above the rest, and that this *channel-wise* structure is
why channel-wise quantization (FlashQ, KIVI keys) beats token-wise
quantization on such models.  We reproduce the structure generatively: a
fraction of channels receives a multiplicative gain, log-normally jittered
so outlier channels are themselves uneven (which is what the head-priority
metric's ``std`` term detects).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["OutlierProfile", "channel_scales"]


@dataclass(frozen=True)
class OutlierProfile:
    """How strongly K/V channels deviate from isotropy.

    ``*_fraction`` is the fraction of channels boosted; ``*_gain`` the mean
    multiplicative boost.  ``jitter`` is the sigma of the log-normal spread
    applied to boosted channels.
    """

    key_outlier_fraction: float = 0.05
    key_outlier_gain: float = 4.0
    value_outlier_fraction: float = 0.0
    value_outlier_gain: float = 1.0
    jitter: float = 0.35
    #: Std-dev of a per-channel additive bias (in units of the token noise
    #: std), applied gain-scaled.  Real K/V caches carry systematic channel
    #: means; within a channel, tokens cluster tightly around that mean
    #: while a token row spans the full between-channel spread.  This is
    #: what makes channel-wise (asymmetric) quantization strictly better on
    #: real models — the Figure 10 effect.
    key_channel_bias: float = 0.75
    value_channel_bias: float = 1.0

    def __post_init__(self) -> None:
        for frac in (self.key_outlier_fraction, self.value_outlier_fraction):
            if not 0.0 <= frac <= 1.0:
                raise ValueError("outlier fractions must lie in [0, 1]")
        if self.key_outlier_gain < 1.0 or self.value_outlier_gain < 1.0:
            raise ValueError("outlier gains must be >= 1")
        if self.key_channel_bias < 0.0 or self.value_channel_bias < 0.0:
            raise ValueError("channel biases must be non-negative")


def channel_scales(
    n_channels: int,
    fraction: float,
    gain: float,
    jitter: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Per-channel multiplicative scales with a boosted minority.

    Returns a positive vector of length ``n_channels`` equal to 1 for
    ordinary channels and ``~ gain * LogNormal(0, jitter)`` for the chosen
    outlier channels.
    """
    scales = np.ones(n_channels, dtype=np.float64)
    n_out = int(round(fraction * n_channels))
    if n_out == 0 or gain <= 1.0:
        return scales
    idx = rng.choice(n_channels, size=n_out, replace=False)
    scales[idx] = gain * rng.lognormal(mean=0.0, sigma=jitter, size=n_out)
    return scales

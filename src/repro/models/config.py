"""Model configurations.

Presets are *scaled-down analogues* of the models the paper evaluates — the
layer counts and widths are shrunk so the NumPy substrate runs in seconds,
but the architectural features that matter to KV quantization are kept:

* ``llama3ish`` — grouped-query attention (4 query heads per KV head, like
  LLaMA3-8B's 32/8), moderate K-channel outliers.
* ``qwen2ish`` — GQA with a different grouping, moderate outliers.
* ``phi3ish`` — full multi-head attention and *strong value-channel
  outliers*, reproducing the Phi-3 distribution of Figures 4/9 that breaks
  token-wise value quantization.
* ``phi3_medium_ish`` — perf-model stand-in for Phi3-medium; only its
  geometry is used (by :mod:`repro.perf`), never its weights.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.models.outliers import OutlierProfile

__all__ = ["ModelConfig", "MODEL_PRESETS"]


@dataclass(frozen=True)
class ModelConfig:
    """Decoder-only transformer geometry + outlier shaping.

    Attributes mirror the usual HF config fields; ``outliers`` controls the
    synthetic channel-outlier structure injected into the K/V projections.
    """

    name: str
    n_layers: int
    n_heads: int
    n_kv_heads: int
    head_dim: int
    d_ff: int
    vocab_size: int = 512
    rope_theta: float = 10_000.0
    outliers: OutlierProfile = field(default_factory=OutlierProfile)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_heads % self.n_kv_heads != 0:
            raise ValueError("n_heads must be a multiple of n_kv_heads")
        if min(self.n_layers, self.n_heads, self.n_kv_heads, self.head_dim, self.d_ff) <= 0:
            raise ValueError("all dimensions must be positive")

    @property
    def d_model(self) -> int:
        return self.n_heads * self.head_dim

    @property
    def kv_dim(self) -> int:
        return self.n_kv_heads * self.head_dim

    def param_count(self) -> int:
        """Approximate parameter count (used by the memory model)."""
        d = self.d_model
        per_layer = (
            d * d  # Wq
            + 2 * d * self.kv_dim  # Wk, Wv
            + d * d  # Wo
            + 3 * d * self.d_ff  # SwiGLU gate/up/down
            + 2 * d  # norms
        )
        return self.n_layers * per_layer + 2 * self.vocab_size * d + d


MODEL_PRESETS = {
    "llama3ish": ModelConfig(
        name="llama3ish",
        n_layers=4,
        n_heads=8,
        n_kv_heads=2,
        head_dim=32,
        d_ff=512,
        outliers=OutlierProfile(
            key_outlier_fraction=0.08,
            key_outlier_gain=6.0,
            value_outlier_fraction=0.05,
            value_outlier_gain=3.0,
            key_channel_bias=0.75,
            value_channel_bias=1.0,
        ),
        seed=1,
    ),
    "qwen2ish": ModelConfig(
        name="qwen2ish",
        n_layers=4,
        n_heads=8,
        n_kv_heads=4,
        head_dim=32,
        d_ff=512,
        outliers=OutlierProfile(
            key_outlier_fraction=0.10,
            key_outlier_gain=5.0,
            value_outlier_fraction=0.06,
            value_outlier_gain=3.5,
            key_channel_bias=0.75,
            value_channel_bias=1.2,
        ),
        seed=2,
    ),
    "phi3ish": ModelConfig(
        name="phi3ish",
        n_layers=4,
        n_heads=8,
        n_kv_heads=8,
        head_dim=32,
        d_ff=512,
        outliers=OutlierProfile(
            key_outlier_fraction=0.08,
            key_outlier_gain=6.0,
            value_outlier_fraction=0.10,
            value_outlier_gain=8.0,
            key_channel_bias=0.75,
            value_channel_bias=2.0,
        ),
        seed=3,
    ),
    # Geometry-only stand-in for Phi3-medium (perf model; 40 heads of 128,
    # 10 KV heads, 40 layers — matching the real model's attention shape).
    "phi3_medium_ish": ModelConfig(
        name="phi3_medium_ish",
        n_layers=40,
        n_heads=40,
        n_kv_heads=10,
        head_dim=128,
        d_ff=17_920,
        vocab_size=32_064,
        seed=4,
    ),
}

"""Autoregressive generation and fidelity metrics.

:func:`generate` drives a :class:`repro.models.transformer.TransformerLM`
through prefill + greedy decode.  :func:`token_agreement` measures the
fraction of positions where two generations picked the same token — the
"near-lossless" criterion used in place of benchmark accuracy for the
random-weight substrate (a compression scheme that never flips a greedy
token cannot change any downstream task answer).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.models.transformer import TransformerLM

__all__ = [
    "GenerationResult",
    "generate",
    "forced_decode",
    "token_agreement",
    "teacher_forced_agreement",
    "logit_divergence",
]


@dataclass
class GenerationResult:
    """Tokens plus per-step logits (logits optional to save memory)."""

    tokens: np.ndarray
    logits: Optional[np.ndarray] = None


def generate(
    model: TransformerLM,
    prompt_ids: np.ndarray,
    n_tokens: int,
    keep_logits: bool = False,
) -> GenerationResult:
    """Greedy generation of ``n_tokens`` after a prompt.

    The model is reset first, so back-to-back calls are independent.
    """
    model.reset()
    prompt_ids = np.asarray(prompt_ids, dtype=np.int64)
    logits = model.prefill(prompt_ids)
    next_token = int(np.argmax(logits[-1]))
    tokens: List[int] = [next_token]
    steps: List[np.ndarray] = [logits[-1]] if keep_logits else []
    for _ in range(n_tokens - 1):
        step_logits = model.decode_step(next_token)
        next_token = int(np.argmax(step_logits))
        tokens.append(next_token)
        if keep_logits:
            steps.append(step_logits)
    return GenerationResult(
        tokens=np.asarray(tokens, dtype=np.int64),
        logits=np.stack(steps) if keep_logits else None,
    )


def forced_decode(
    model: TransformerLM,
    prompt_ids: np.ndarray,
    forced_tokens: np.ndarray,
    keep_logits: bool = False,
) -> GenerationResult:
    """Teacher-forced decode: feed ``forced_tokens`` regardless of argmax.

    Returns the tokens the model *would* have picked at each step.  Because
    every model consumes the same input sequence, per-step argmax agreement
    isolates the fidelity of one attention/cache read from the chaotic
    trajectory divergence of free-running generation — the right metric for
    a random-weight substrate.
    """
    model.reset()
    prompt_ids = np.asarray(prompt_ids, dtype=np.int64)
    forced_tokens = np.asarray(forced_tokens, dtype=np.int64)
    logits = model.prefill(prompt_ids)
    picks: List[int] = [int(np.argmax(logits[-1]))]
    steps: List[np.ndarray] = [logits[-1]] if keep_logits else []
    for t in range(forced_tokens.shape[0] - 1):
        step_logits = model.decode_step(int(forced_tokens[t]))
        picks.append(int(np.argmax(step_logits)))
        if keep_logits:
            steps.append(step_logits)
    return GenerationResult(
        tokens=np.asarray(picks, dtype=np.int64),
        logits=np.stack(steps) if keep_logits else None,
    )


def teacher_forced_agreement(
    reference_model: TransformerLM,
    candidate_model: TransformerLM,
    prompt_ids: np.ndarray,
    n_tokens: int,
) -> float:
    """Per-step argmax agreement under a shared forced trajectory.

    The reference model generates greedily; both models are then replayed
    teacher-forced on that trajectory and their per-step picks compared.
    """
    ref_gen = generate(reference_model, prompt_ids, n_tokens)
    ref_forced = forced_decode(reference_model, prompt_ids, ref_gen.tokens)
    cand_forced = forced_decode(candidate_model, prompt_ids, ref_gen.tokens)
    return token_agreement(ref_forced.tokens, cand_forced.tokens)


def token_agreement(reference: np.ndarray, candidate: np.ndarray) -> float:
    """Fraction of matching tokens over the common prefix length."""
    a = np.asarray(reference)
    b = np.asarray(candidate)
    n = min(a.shape[0], b.shape[0])
    if n == 0:
        return 1.0
    return float(np.mean(a[:n] == b[:n]))


def logit_divergence(ref_logits: np.ndarray, cand_logits: np.ndarray) -> float:
    """Mean KL divergence KL(softmax(ref) || softmax(cand)) per step."""
    ref = np.asarray(ref_logits, dtype=np.float64)
    cand = np.asarray(cand_logits, dtype=np.float64)
    ref = ref - ref.max(axis=-1, keepdims=True)
    cand = cand - cand.max(axis=-1, keepdims=True)
    logp = ref - np.log(np.exp(ref).sum(axis=-1, keepdims=True))
    logq = cand - np.log(np.exp(cand).sum(axis=-1, keepdims=True))
    p = np.exp(logp)
    return float(np.mean((p * (logp - logq)).sum(axis=-1)))

"""Transformer building blocks: RMSNorm, SwiGLU, logit softmax.

Matrix multiplications go through the pluggable linear layers of
:mod:`repro.quant.weights`, so the Table 5 composition experiment can swap
FP16 / LLM.int8 / QServe-W4A8 projections without touching the model code.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["RMSNorm", "SwiGLU", "softmax_logits", "silu"]


class RMSNorm:
    """Root-mean-square layer norm with a learned gain."""

    def __init__(self, weight: np.ndarray, eps: float = 1e-6):
        self.weight = np.asarray(weight, dtype=np.float64)
        self.eps = eps

    def __call__(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        rms = np.sqrt(np.mean(x * x, axis=-1, keepdims=True) + self.eps)
        return x / rms * self.weight


def silu(x: np.ndarray) -> np.ndarray:
    """SiLU / swish activation, numerically stable for large |x|."""
    x = np.asarray(x, dtype=np.float64)
    return x * (0.5 * (1.0 + np.tanh(0.5 * x)))  # sigmoid via tanh, overflow-free


class SwiGLU:
    """Gated MLP: ``down(silu(gate(x)) * up(x))``.

    ``gate``/``up``/``down`` are linear-layer callables (see
    :func:`repro.quant.weights.make_linear`).
    """

    def __init__(
        self,
        gate: Callable[[np.ndarray], np.ndarray],
        up: Callable[[np.ndarray], np.ndarray],
        down: Callable[[np.ndarray], np.ndarray],
    ):
        self.gate = gate
        self.up = up
        self.down = down

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.down(silu(self.gate(x)) * self.up(x))


def softmax_logits(logits: np.ndarray) -> np.ndarray:
    """Stable softmax over the vocabulary axis."""
    logits = np.asarray(logits, dtype=np.float64)
    m = logits.max(axis=-1, keepdims=True)
    e = np.exp(logits - m)
    return e / e.sum(axis=-1, keepdims=True)

"""Decoder-only transformer with pluggable attention backends.

The model is forward-only (inference reproduction) and deliberately small;
its role is to exercise the attention backends end-to-end — prefill, cache
construction, buffered decode — inside a realistic residual-stream
computation (RMSNorm -> QKV -> RoPE -> attention -> output projection ->
SwiGLU), with K/V projections shaped to produce the channel-outlier
statistics of Figure 4.

Weights are seeded-random, so the model is not a trained language model;
accuracy experiments use either logit/token *agreement* against the FP16
backend (:mod:`repro.models.generation`) or the constructed retrieval tasks
(:mod:`repro.tasks`), both of which measure exactly what KV-cache
quantization perturbs.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.baselines.fp16_cache import FP16Attention
from repro.models.config import ModelConfig
from repro.models.layers import RMSNorm, SwiGLU
from repro.models.outliers import channel_scales
from repro.models.rope import apply_rope, rope_frequencies
from repro.quant.weights import make_linear

__all__ = ["TransformerLM"]


class _Layer:
    """One transformer block's weights and callables."""

    def __init__(self, config: ModelConfig, rng: np.random.Generator, linear_scheme: str):
        d = config.d_model
        kv = config.kv_dim
        ff = config.d_ff
        scale = 1.0 / np.sqrt(d)

        def w(shape):
            return rng.standard_normal(shape) * scale

        wk = w((d, kv))
        wv = w((d, kv))
        # Inject per-channel outliers head-wise (Figure 4 structure).
        prof = config.outliers
        for h in range(config.n_kv_heads):
            sl = slice(h * config.head_dim, (h + 1) * config.head_dim)
            wk[:, sl] *= channel_scales(
                config.head_dim, prof.key_outlier_fraction, prof.key_outlier_gain,
                prof.jitter, rng,
            )
            wv[:, sl] *= channel_scales(
                config.head_dim, prof.value_outlier_fraction, prof.value_outlier_gain,
                prof.jitter, rng,
            )

        self.wq = make_linear(w((d, d)), linear_scheme)
        self.wk = make_linear(wk, linear_scheme)
        self.wv = make_linear(wv, linear_scheme)
        self.wo = make_linear(w((d, d)), linear_scheme)
        self.mlp = SwiGLU(
            make_linear(w((d, ff)), linear_scheme),
            make_linear(w((d, ff)), linear_scheme),
            make_linear(w((ff, d)), linear_scheme),
        )
        self.attn_norm = RMSNorm(np.ones(d))
        self.mlp_norm = RMSNorm(np.ones(d))


class TransformerLM:
    """Inference-only transformer language model.

    Parameters
    ----------
    config:
        Geometry and outlier profile.
    attention_factory:
        Zero-argument callable producing one attention backend per layer
        (:class:`repro.core.TurboAttention` or any
        :class:`repro.baselines.base.AttentionBackend`).  Defaults to the
        exact FP16 backend.
    linear_scheme:
        Projection/FFN weight quantization: ``"fp16"`` (default),
        ``"llm_int8"``, or ``"qserve_w4a8"`` (Table 5).
    """

    def __init__(
        self,
        config: ModelConfig,
        attention_factory: Optional[Callable[[], object]] = None,
        linear_scheme: str = "fp16",
    ):
        self.config = config
        rng = np.random.default_rng(config.seed)
        d = config.d_model
        self.embedding = rng.standard_normal((config.vocab_size, d)) / np.sqrt(d)
        self.layers: List[_Layer] = [
            _Layer(config, rng, linear_scheme) for _ in range(config.n_layers)
        ]
        self.final_norm = RMSNorm(np.ones(d))
        self.w_out = make_linear(
            rng.standard_normal((d, config.vocab_size)) / np.sqrt(d), linear_scheme
        )
        factory = attention_factory if attention_factory is not None else FP16Attention
        self.backends = [factory() for _ in range(config.n_layers)]
        self.freqs = rope_frequencies(config.head_dim, config.rope_theta)
        self.reset()

    # -- state --------------------------------------------------------------
    def reset(self) -> None:
        """Drop all KV state and the position counter."""
        self.kv_states: List[Optional[object]] = [None] * self.config.n_layers
        self._pos = 0

    @property
    def kv_storage_bits(self) -> int:
        """Total KV bits across layers (0 before prefill)."""
        return sum(
            int(s.storage_bits) for s in self.kv_states if s is not None
        )

    # -- shape helpers --------------------------------------------------------
    def _split_heads(self, x: np.ndarray, n_heads: int) -> np.ndarray:
        """``(n, heads*dim) -> (heads, n, dim)``."""
        n = x.shape[0]
        return x.reshape(n, n_heads, self.config.head_dim).transpose(1, 0, 2)

    def _merge_heads(self, x: np.ndarray) -> np.ndarray:
        """``(heads, n, dim) -> (n, heads*dim)``."""
        h, n, dh = x.shape
        return x.transpose(1, 0, 2).reshape(n, h * dh)

    # -- forward --------------------------------------------------------------
    def prefill(self, token_ids: np.ndarray) -> np.ndarray:
        """Process a prompt; returns logits of shape ``(n, vocab)``."""
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if self._pos != 0:
            raise RuntimeError("prefill on a non-fresh model; call reset() first")
        x = self.embedding[token_ids]
        positions = np.arange(token_ids.shape[0])
        for i, layer in enumerate(self.layers):
            h = layer.attn_norm(x)
            q = self._split_heads(layer.wq(h), self.config.n_heads)
            k = self._split_heads(layer.wk(h), self.config.n_kv_heads)
            v = self._split_heads(layer.wv(h), self.config.n_kv_heads)
            q = apply_rope(q, positions, self.freqs)
            k = apply_rope(k, positions, self.freqs)
            out, state = self.backends[i].prefill(q, k, v, causal=True)
            self.kv_states[i] = state
            x = x + layer.wo(self._merge_heads(out))
            x = x + layer.mlp(layer.mlp_norm(x))
        self._pos = token_ids.shape[0]
        return self.w_out(self.final_norm(x))

    def decode_step(self, token_id: int) -> np.ndarray:
        """Process one generated token; returns logits of shape ``(vocab,)``."""
        if self._pos == 0:
            raise RuntimeError("decode before prefill")
        x = self.embedding[int(token_id)][None, :]
        position = np.array([self._pos])
        for i, layer in enumerate(self.layers):
            h = layer.attn_norm(x)
            q = self._split_heads(layer.wq(h), self.config.n_heads)
            k = self._split_heads(layer.wk(h), self.config.n_kv_heads)
            v = self._split_heads(layer.wv(h), self.config.n_kv_heads)
            q = apply_rope(q, position, self.freqs)
            k = apply_rope(k, position, self.freqs)
            out = self.backends[i].decode_step(
                q[:, 0, :], k[:, 0, :], v[:, 0, :], self.kv_states[i]
            )
            x = x + layer.wo(out.reshape(1, -1))
            x = x + layer.mlp(layer.mlp_norm(x))
        self._pos += 1
        return self.w_out(self.final_norm(x))[0]

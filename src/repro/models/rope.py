"""Rotary positional embeddings (RoPE).

Standard half-dimension pairing: channel pairs ``(2i, 2i+1)`` rotate with
angular frequency ``theta^{-2i/d}``.  Applied to Q and K before attention,
as in LLaMA/Qwen/Phi.
"""

from __future__ import annotations

import numpy as np

__all__ = ["rope_frequencies", "apply_rope"]


def rope_frequencies(head_dim: int, theta: float = 10_000.0) -> np.ndarray:
    """Inverse frequencies for each channel pair; shape ``(head_dim // 2,)``."""
    if head_dim % 2 != 0:
        raise ValueError("RoPE requires an even head dimension")
    exponents = np.arange(0, head_dim, 2, dtype=np.float64) / head_dim
    return theta**-exponents


def apply_rope(
    x: np.ndarray, positions: np.ndarray, freqs: np.ndarray
) -> np.ndarray:
    """Rotate ``x`` of shape ``(..., n, head_dim)`` by position-dependent angles.

    ``positions`` has shape ``(n,)`` (absolute token positions — decode
    passes the running offset so cached keys stay consistent).
    """
    x = np.asarray(x, dtype=np.float64)
    positions = np.asarray(positions, dtype=np.float64)
    angles = positions[:, None] * freqs[None, :]  # (n, d/2)
    cos, sin = np.cos(angles), np.sin(angles)
    x1 = x[..., 0::2]
    x2 = x[..., 1::2]
    out = np.empty_like(x)
    out[..., 0::2] = x1 * cos - x2 * sin
    out[..., 1::2] = x1 * sin + x2 * cos
    return out

"""Pinned wall-clock speed trajectory for the kernels and simulators.

Accuracy experiments pin their *numbers* with golden files; this module
pins the *speed* the repo produces them at.  Four scenarios cover the
three layers the hot loops live in:

* ``prefill`` / ``decode`` — the attention kernels themselves (one long
  prompt; one long homogeneous decode stretch through the bulk API);
* ``engine`` — a single :class:`~repro.serving.ServingEngine` closed
  loop, measured in simulated requests per wall-second;
* ``cluster`` — a three-replica :class:`~repro.cluster.ClusterSimulator`
  in the long-generation decode regime where the batched decode path
  dominates.

Wall-clock numbers are machine-dependent, so the regression gate never
compares raw seconds across machines: every run also times a fixed
NumPy probe (:func:`calibrate`) and the gate scales the committed
baseline by the probe ratio before applying its tolerance.  The
committed baseline (``BENCH_speed_baseline.json``) carries the probe
time of the machine that wrote it; CI fails when a quick-mode metric
regresses more than 25% beyond what the probe ratio predicts.

:data:`PRE_PR` records the same scenarios measured on the pre-PR
per-tile / per-span / per-step loop implementation (same machine, same
seeds) — the denominator of the speedups ``benchmarks/test_speed.py``
asserts and writes to ``BENCH_speed.json``.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.cluster import ClusterConfig, ClusterSimulator
from repro.core.config import TurboConfig
from repro.core.decode import turbo_decode_steps
from repro.core.prefill import turbo_prefill
from repro.perf.attention_costs import METHODS
from repro.perf.e2e import ModelGeometry
from repro.serving import ServingEngine, poisson_workload

__all__ = [
    "GATED_METRICS",
    "PRE_PR",
    "bench_cluster",
    "bench_decode",
    "bench_engine",
    "bench_prefill",
    "calibrate",
    "compare_to_baseline",
    "format_table",
    "run_speed_suite",
]

MODEL = ModelGeometry(
    n_layers=32, n_heads=32, n_kv_heads=8, head_dim=128,
    d_ff=11008, vocab_size=32000,
)

#: The same scenarios measured at the pre-PR loop implementation
#: (commit 62d9bec: per-tile prefill, per-span decode, per-step engine
#: advance), on the machine whose probe time is recorded alongside.
#: These are *historical* denominators, never re-measured.
PRE_PR = {
    "calibration_s": 0.060,
    "prefill_s": 0.5906,
    "decode_s": 1.1208,
    "engine_rps": 3383.0,
    "cluster_rps": 263.7,
}

#: Metrics the CI gate checks, with their improvement direction.
GATED_METRICS: Tuple[Tuple[str, str], ...] = (
    ("prefill_s", "lower"),
    ("decode_s", "lower"),
    ("engine_rps", "higher"),
    ("cluster_rps", "higher"),
)


def _best_of(fn: Callable[[], None], repeats: int) -> float:
    best = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def calibrate(repeats: int = 3) -> float:
    """Machine-speed probe: a fixed float64 GEMM + exp workload.

    The probe exercises the two primitives every scenario bottlenecks on
    (BLAS matmul, elementwise transcendentals), so its wall time tracks
    how the scenarios themselves scale across machines.
    """
    rng = np.random.default_rng(1234)
    a = rng.standard_normal((512, 512))
    b = rng.standard_normal((512, 512))

    def probe() -> None:
        acc = a
        for _ in range(8):
            acc = a @ b
            np.exp(-np.abs(acc) / np.abs(acc).max())

    return _best_of(probe, repeats)


def bench_prefill(quick: bool = False, repeats: int = 3) -> Dict[str, float]:
    """One long-prompt prefill through :func:`turbo_prefill`."""
    n = 512 if quick else 1024
    hq, hkv, d = 8, 2, 64
    rng = np.random.default_rng(0)
    q = rng.standard_normal((hq, n, d))
    k = rng.standard_normal((hkv, n, d))
    v = rng.standard_normal((hkv, n, d))
    cfg = TurboConfig()
    bits = np.full(hkv, 4, dtype=np.int32)
    wall = _best_of(lambda: turbo_prefill(q, k, v, cfg, bits), repeats)
    return {"prefill_s": wall, "prefill_us_per_token": wall / n * 1e6}


def bench_decode(quick: bool = False, repeats: int = 3) -> Dict[str, float]:
    """One homogeneous decode stretch through :func:`turbo_decode_steps`."""
    n = 512 if quick else 1024
    steps = 64 if quick else 192
    hq, hkv, d = 8, 2, 64
    rng = np.random.default_rng(0)
    cfg = TurboConfig()
    q = rng.standard_normal((hq, n, d))
    k = rng.standard_normal((hkv, n, d))
    v = rng.standard_normal((hkv, n, d))
    bits = np.full(hkv, 4, dtype=np.int32)
    res = turbo_prefill(q, k, v, cfg, bits)
    qs = rng.standard_normal((steps, hq, d))
    ks = rng.standard_normal((steps, hkv, d))
    vs = rng.standard_normal((steps, hkv, d))
    best = float("inf")
    for _ in range(max(1, repeats)):
        # Fresh cache/buffer copies each round: decode appends state.
        r = turbo_prefill(q, k, v, cfg, bits)
        t0 = time.perf_counter()
        turbo_decode_steps(qs, ks, vs, r.cache, r.buffer, cfg)
        best = min(best, time.perf_counter() - t0)
    del res
    return {"decode_s": best, "decode_ms_per_token": best / steps * 1e3}


def bench_engine(quick: bool = False, repeats: int = 5) -> Dict[str, float]:
    """Single-engine closed loop: simulated requests per wall-second."""
    n_req = 120 if quick else 400
    requests = poisson_workload(
        n_req, arrival_rate=40.0, prompt_range=(128, 1024),
        gen_range=(32, 160), rng=np.random.default_rng(11), n_sessions=16,
    )
    best = float("inf")
    for _ in range(max(1, repeats)):
        # Engines are single-run objects: a fresh one per round.
        engine = ServingEngine(MODEL, METHODS["turbo_mixed"])
        t0 = time.perf_counter()
        metrics = engine.run(requests)
        best = min(best, time.perf_counter() - t0)
        total = metrics.completed + metrics.failed + metrics.rejected + metrics.shed
        assert total == n_req
    return {"engine_wall_s": best, "engine_rps": n_req / best}


def bench_cluster(quick: bool = False, repeats: int = 5) -> Dict[str, float]:
    """Three-replica fleet in the long-generation decode regime."""
    n_req = 80 if quick else 300
    requests = poisson_workload(
        n_req, arrival_rate=4.0, prompt_range=(128, 1024),
        gen_range=(512, 1536), rng=np.random.default_rng(7), n_sessions=16,
    )
    best = float("inf")
    for _ in range(max(1, repeats)):
        sim = ClusterSimulator(
            MODEL, METHODS["turbo_mixed"],
            ClusterConfig(n_replicas=3, policy="least_kv"),
        )
        t0 = time.perf_counter()
        metrics = sim.run(requests)
        best = min(best, time.perf_counter() - t0)
        total = metrics.completed + metrics.failed + metrics.rejected + metrics.shed
        assert total == n_req
    return {"cluster_wall_s": best, "cluster_rps": n_req / best}


def run_speed_suite(quick: bool = False) -> Dict[str, float]:
    """Run every scenario; returns one flat metric dict (plus the probe)."""
    out: Dict[str, float] = {"quick": bool(quick), "calibration_s": calibrate()}
    out.update(bench_prefill(quick))
    out.update(bench_decode(quick))
    out.update(bench_engine(quick))
    out.update(bench_cluster(quick))
    return out


def compare_to_baseline(
    current: Dict[str, float],
    baseline: Dict[str, float],
    tolerance: float = 0.25,
) -> Tuple[List[dict], List[str]]:
    """Gate ``current`` against ``baseline`` with machine normalization.

    The probe ratio ``scale = current.calibration_s /
    baseline.calibration_s`` predicts how the baseline would measure on
    this machine; a metric fails when it lands more than ``tolerance``
    beyond that prediction in the regression direction.  Returns the
    per-metric comparison rows and the list of failing metric names.
    """
    scale = current["calibration_s"] / baseline["calibration_s"]
    rows: List[dict] = []
    failures: List[str] = []
    for name, direction in GATED_METRICS:
        base = baseline[name]
        cur = current[name]
        if direction == "lower":
            expected = base * scale
            ok = cur <= expected * (1.0 + tolerance)
            ratio = cur / expected
        else:
            expected = base / scale
            ok = cur >= expected / (1.0 + tolerance)
            ratio = expected / cur
        if not ok:
            failures.append(name)
        rows.append(
            {
                "metric": name,
                "direction": direction,
                "baseline": base,
                "expected": expected,
                "current": cur,
                "regression": ratio,
                "ok": ok,
            }
        )
    return rows, failures


def format_table(rows: List[dict], scale: float) -> str:
    """Render comparison rows as the before/after table CI prints."""
    lines = [
        f"machine probe ratio: {scale:.3f}x baseline",
        f"{'metric':<14} {'baseline':>10} {'expected':>10} "
        f"{'current':>10} {'regress':>8}  status",
    ]
    for r in rows:
        lines.append(
            f"{r['metric']:<14} {r['baseline']:>10.4g} {r['expected']:>10.4g} "
            f"{r['current']:>10.4g} {r['regression']:>7.2f}x  "
            f"{'OK' if r['ok'] else 'FAIL'}"
        )
    return "\n".join(lines)

"""Tile-level attention kernel simulator (Figure 1b phase breakdown).

Walks the actual flash-attention tiling loop — query tiles outer, key/value
tiles inner — and charges every phase of every tile to a per-phase timer:

    load_kv -> (dequant) -> qk_matmul -> softmax -> (quantize) -> pv_matmul

using the same per-element constants and device rates as the roofline
model in :mod:`repro.perf.attention_costs`.  Unlike the roofline (which
takes ``max(memory, compute)`` over a whole kernel), the simulator models a
*non-overlapped* pipeline, which is the right lens for answering "what
fraction of kernel time does each phase consume" — the question Figure 1b
asks.  Totals therefore sit slightly above the roofline latency; the
harness only uses the *shares*.

The simulator is also where the method differences are most visible:

* ``fp16``: softmax (FP32 CUDA exponentiation) dominates compute;
* ``kivi``/``gear``: a dequantization phase appears and grows with context
  because every decode step re-expands the whole cache to FP16;
* ``turbo``: matmuls halve (INT8), softmax shrinks to the SAS polynomial,
  dequantization is integer and tiny.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.perf.attention_costs import (
    FP16_DEQUANT_OPS,
    PQ_DEQUANT_INT_OPS,
    QUANT_FP32_OPS,
    SAS_FP16_TC_OPS,
    SAS_FP32_OPS,
    SOFTMAX_FP32_OPS,
    AttentionGeometry,
    MethodSpec,
)
from repro.perf.counts import OpCounts
from repro.perf.gpu import GPUSpec, A100_80GB

__all__ = ["simulate_attention_kernel"]

PHASES = (
    "load_q",
    "load_kv",
    "dequant",
    "qk_matmul",
    "softmax",
    "quantize",
    "pv_matmul",
    "store",
    "overhead",
)


def _phase_time(gpu: GPUSpec, counts: OpCounts) -> float:
    """Non-overlapped time of one phase: memory plus compute."""
    return gpu.memory_time(counts) + gpu.tensor_time(counts) + gpu.cuda_time(counts)


def simulate_attention_kernel(
    method: MethodSpec,
    geom: AttentionGeometry,
    prefill: bool,
    gpu: Optional[GPUSpec] = None,
    block_q: int = 64,
    block_k: int = 64,
) -> Dict[str, float]:
    """Per-phase seconds for one attention call.

    Returns a dict over :data:`PHASES` plus ``"total"``.
    """
    gpu = gpu if gpu is not None else A100_80GB
    per_head = geom.batch * geom.n_heads
    per_kv_head = geom.batch * geom.n_kv_heads
    d = geom.head_dim
    times = {p: 0.0 for p in PHASES}

    is_turbo = method.kind == "turbo"
    is_dequant = method.kind == "dequant"
    kv_elem_bytes = method.kv_bits / 8.0 if is_turbo else 2.0

    n_q_tiles = max(1, -(-geom.q_len // block_q))
    q_tile = min(block_q, geom.q_len)
    n_k_tiles = max(1, -(-geom.kv_len // block_k))
    k_tile = min(block_k, geom.kv_len)

    # Separate decompression kernel for the KIVI/GEAR pipeline (reads the
    # packed cache, writes FP16 KV that the flash kernel below re-reads).
    if is_dequant and not prefill:
        packed = geom.kv_elements * method.kv_bits / 8.0
        c = OpCounts(
            bytes_read=packed,
            bytes_written=2.0 * geom.kv_elements,
            fp16_cuda=FP16_DEQUANT_OPS * geom.kv_elements,
        )
        if method.lowrank_rank > 0:
            c.fp16_tc = 2.0 * method.lowrank_rank * geom.kv_elements
            c.bytes_read += 2.0 * method.lowrank_rank * (
                geom.kv_elements / d + geom.kv_elements / geom.kv_len
            )
        times["dequant"] += _phase_time(gpu, c)
        times["overhead"] += gpu.kernel_overhead_us * 1e-6

    causal_fraction = (
        (geom.kv_len + 1) / (2.0 * geom.kv_len) if geom.causal and geom.q_len > 1 else 1.0
    )

    for _qi in range(n_q_tiles):
        # Q tile load (+ quantization for turbo).
        q_elems = per_head * q_tile * d
        times["load_q"] += _phase_time(gpu, OpCounts(bytes_read=2.0 * q_elems))
        if is_turbo:
            times["quantize"] += _phase_time(gpu, OpCounts(fp32_cuda=QUANT_FP32_OPS * q_elems))
        inner = max(1, int(round(n_k_tiles * causal_fraction)))
        for _ki in range(inner):
            kv_elems = 2.0 * per_kv_head * k_tile * d
            times["load_kv"] += _phase_time(
                gpu, OpCounts(bytes_read=kv_elems * kv_elem_bytes)
            )
            if is_turbo and not prefill:
                times["dequant"] += _phase_time(
                    gpu, OpCounts(int_alu=PQ_DEQUANT_INT_OPS * kv_elems)
                )
            if is_turbo and prefill:
                times["quantize"] += _phase_time(
                    gpu, OpCounts(fp32_cuda=QUANT_FP32_OPS * kv_elems)
                )
            score_elems = per_head * q_tile * k_tile
            mm = OpCounts()
            if is_turbo:
                mm.int8_tc = 2.0 * score_elems * d
            else:
                mm.fp16_tc = 2.0 * score_elems * d
            times["qk_matmul"] += _phase_time(gpu, mm)
            sm = OpCounts()
            if is_turbo:
                sm.fp16_tc = SAS_FP16_TC_OPS * score_elems
                sm.fp32_cuda = SAS_FP32_OPS * score_elems
            else:
                sm.fp32_cuda = SOFTMAX_FP32_OPS * score_elems
            times["softmax"] += _phase_time(gpu, sm)
            if is_turbo:
                times["quantize"] += _phase_time(
                    gpu, OpCounts(fp32_cuda=QUANT_FP32_OPS * score_elems)
                )
            pv = OpCounts()
            if is_turbo:
                pv.int8_tc = 2.0 * score_elems * d
            else:
                pv.fp16_tc = 2.0 * score_elems * d
            times["pv_matmul"] += _phase_time(gpu, pv)
        # Output tile store.
        times["store"] += _phase_time(gpu, OpCounts(bytes_written=2.0 * q_elems))

    # Cache write during prefill (progressive for turbo, packing kernel for
    # KIVI/GEAR, plain FP16 append otherwise).
    if prefill:
        if is_turbo:
            times["quantize"] += _phase_time(
                gpu,
                OpCounts(
                    int_alu=PQ_DEQUANT_INT_OPS * geom.kv_elements,
                    bytes_written=geom.kv_elements * method.kv_bits / 8.0,
                ),
            )
        elif is_dequant:
            times["quantize"] += _phase_time(
                gpu,
                OpCounts(
                    bytes_read=2.0 * geom.kv_elements,
                    bytes_written=geom.kv_elements * method.kv_bits / 8.0,
                    fp16_cuda=FP16_DEQUANT_OPS * geom.kv_elements,
                ),
            )
            times["overhead"] += gpu.kernel_overhead_us * 1e-6
        else:
            times["store"] += _phase_time(
                gpu, OpCounts(bytes_written=2.0 * geom.kv_elements)
            )

    times["overhead"] += gpu.kernel_overhead_us * 1e-6
    times["total"] = sum(times[p] for p in PHASES)
    return times

"""End-to-end model step latency: projections + FFN + attention.

Combines the per-method attention costs with a cost model of the linear
parts (QKV/O projections, SwiGLU FFN, LM head), which the paper keeps in
FP16 ("all other parts of the model are maintained in FP16").  This is
what Figure 1a/1c and the throughput model consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.perf.attention_costs import (
    AttentionGeometry,
    MethodSpec,
    attention_counts,
)
from repro.perf.counts import OpCounts
from repro.perf.gpu import GPUSpec, A100_80GB

__all__ = ["ModelGeometry", "linear_counts", "e2e_step_latency", "phase_breakdown"]


@dataclass(frozen=True)
class ModelGeometry:
    """Transformer geometry for the performance model.

    ``phi3_medium()`` matches the model the paper benchmarks (Phi3-medium:
    40 layers, 40 heads x 128, 10 KV heads, FFN 17920, vocab 32064).
    """

    n_layers: int
    n_heads: int
    n_kv_heads: int
    head_dim: int
    d_ff: int
    vocab_size: int
    weight_bits: float = 16.0

    @property
    def d_model(self) -> int:
        return self.n_heads * self.head_dim

    @property
    def kv_dim(self) -> int:
        return self.n_kv_heads * self.head_dim

    @property
    def linear_params(self) -> float:
        """Parameters in projections + FFN (per all layers) + LM head."""
        d = self.d_model
        per_layer = d * d + 2 * d * self.kv_dim + d * d + 3 * d * self.d_ff
        return self.n_layers * per_layer + d * self.vocab_size

    @property
    def weight_bytes(self) -> float:
        return self.linear_params * self.weight_bits / 8.0

    @classmethod
    def phi3_medium(cls) -> "ModelGeometry":
        return cls(
            n_layers=40,
            n_heads=40,
            n_kv_heads=10,
            head_dim=128,
            d_ff=17_920,
            vocab_size=32_064,
        )

    def attention_geometry(
        self, batch: int, q_len: int, kv_len: int, causal: bool = True
    ) -> AttentionGeometry:
        return AttentionGeometry(
            batch=batch,
            n_heads=self.n_heads,
            n_kv_heads=self.n_kv_heads,
            head_dim=self.head_dim,
            q_len=q_len,
            kv_len=kv_len,
            causal=causal,
        )


def linear_counts(model: ModelGeometry, batch: int, q_len: int) -> OpCounts:
    """Counts for every linear layer of one forward pass.

    GEMM FLOPs are ``2 * params * tokens``; weights are read once per pass
    (decode is weight-bandwidth-bound at small batch, the usual LLM
    roofline), activations once per layer.
    """
    tokens = batch * q_len
    c = OpCounts(kernel_launches=6 * model.n_layers + 1)
    c.fp16_tc = 2.0 * model.linear_params * tokens
    c.bytes_read = model.weight_bytes + 10.0 * tokens * model.d_model * 2.0
    c.bytes_written = 8.0 * tokens * model.d_model * 2.0
    return c


def e2e_step_latency(
    method: MethodSpec,
    model: ModelGeometry,
    batch: int,
    q_len: int,
    kv_len: int,
    prefill: bool,
    gpu: Optional[GPUSpec] = None,
) -> float:
    """Latency (s) of one full-model forward step (all layers)."""
    gpu = gpu if gpu is not None else A100_80GB
    attn = attention_counts(
        method, model.attention_geometry(batch, q_len, kv_len), prefill
    ) * model.n_layers
    lin = linear_counts(model, batch, q_len)
    # Attention and linear kernels are dependent (serialized) per layer.
    return gpu.latency(attn) + gpu.latency(lin)


def phase_breakdown(
    method: MethodSpec,
    model: ModelGeometry,
    batch: int,
    prompt_len: int,
    gen_len: int,
    gpu: Optional[GPUSpec] = None,
) -> Dict[str, float]:
    """Seconds per phase for a full generation (Figure 1a/1c shares).

    Phases: ``linear`` (projections/FFN), ``attention`` (everything inside
    the attention kernels, including any dequantization pipeline).
    """
    gpu = gpu if gpu is not None else A100_80GB
    # Prefill.
    attn = gpu.latency(
        attention_counts(method, model.attention_geometry(batch, prompt_len, prompt_len), True)
        * model.n_layers
    )
    lin = gpu.latency(linear_counts(model, batch, prompt_len))
    # Decode steps at the midpoint KV length (trapezoidal approximation).
    mid_kv = prompt_len + gen_len // 2
    attn += gen_len * gpu.latency(
        attention_counts(method, model.attention_geometry(batch, 1, mid_kv, causal=True), False)
        * model.n_layers
    )
    lin += gen_len * gpu.latency(linear_counts(model, batch, 1))
    return {"linear": lin, "attention": attn, "total": lin + attn}

"""Operation/byte counting primitives for the cost model.

:class:`OpCounts` is a small algebra: kernels produce counts, counts add
and scale, and a :class:`repro.perf.gpu.GPUSpec` converts them to seconds.
Keeping the counts explicit (instead of returning opaque latencies) makes
the model auditable — every figure harness can print where the time went.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["OpCounts"]


@dataclass
class OpCounts:
    """Work performed by one (or several) kernels.

    All ``*_tc``/``*_cuda``/``int_alu`` fields are operation counts (FLOPs
    or integer ops; a fused multiply-add counts as 2).  ``bytes_*`` are HBM
    traffic.  ``kernel_launches`` carries fixed per-kernel overhead.
    """

    fp16_tc: float = 0.0
    int8_tc: float = 0.0
    fp32_cuda: float = 0.0
    fp16_cuda: float = 0.0
    int_alu: float = 0.0
    bytes_read: float = 0.0
    bytes_written: float = 0.0
    kernel_launches: float = 0.0

    # The algebra is spelled out field-by-field rather than via
    # ``dataclasses.fields`` reflection: counts are built and scaled on the
    # serving engine's per-step latency path, where the reflective dict
    # comprehension was a measured hotspot.  Same arithmetic, same fields.
    def __add__(self, other: "OpCounts") -> "OpCounts":
        return OpCounts(
            fp16_tc=self.fp16_tc + other.fp16_tc,
            int8_tc=self.int8_tc + other.int8_tc,
            fp32_cuda=self.fp32_cuda + other.fp32_cuda,
            fp16_cuda=self.fp16_cuda + other.fp16_cuda,
            int_alu=self.int_alu + other.int_alu,
            bytes_read=self.bytes_read + other.bytes_read,
            bytes_written=self.bytes_written + other.bytes_written,
            kernel_launches=self.kernel_launches + other.kernel_launches,
        )

    def __mul__(self, factor: float) -> "OpCounts":
        return OpCounts(
            fp16_tc=self.fp16_tc * factor,
            int8_tc=self.int8_tc * factor,
            fp32_cuda=self.fp32_cuda * factor,
            fp16_cuda=self.fp16_cuda * factor,
            int_alu=self.int_alu * factor,
            bytes_read=self.bytes_read * factor,
            bytes_written=self.bytes_written * factor,
            kernel_launches=self.kernel_launches * factor,
        )

    __rmul__ = __mul__

    @property
    def total_bytes(self) -> float:
        return self.bytes_read + self.bytes_written

    @property
    def total_ops(self) -> float:
        return self.fp16_tc + self.int8_tc + self.fp32_cuda + self.fp16_cuda + self.int_alu

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(OpCounts)}

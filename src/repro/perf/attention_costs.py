"""Per-method attention kernel cost models.

Four method families, matching the paper's Figure 6/7 sweep:

* ``fp16`` — stock FlashAttention: FP16 tensor-core MatMuls, FP32 CUDA-core
  softmax, FP16 KV cache.
* ``turbo`` — TurboAttention: INT8 tensor-core MatMuls, SAS softmax
  (tensor-core polynomial + tiny LUT), progressive INT4/2 cache read with
  *integer* in-kernel dequantization, fused quantization of Q/K/V tiles.
* ``kivi`` — KV cache stored INT4/2 with FP16 group metadata, but attention
  requires a *separate dequantization pass*: read compressed cache, write
  FP16 KV to HBM, then run stock FP16 FlashAttention over it.  This is the
  "decompress then FlashAttention" pipeline whose overhead Figure 1b/6
  charges against KIVI.
* ``gear`` — like ``kivi`` plus a rank-``r`` low-rank reconstruction GEMM
  per decode step and FP16 factor reads.

Counts are parameterized by :class:`AttentionGeometry`; the per-element
constants below are the calibration knobs of the model and are documented
inline.  They were set so that the FP16 prefill softmax share lands in the
paper's ">30% of attention execution time" regime (§4) — everything else
follows from datasheet rates and byte counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from repro.perf.counts import OpCounts
from repro.perf.gpu import GPUSpec, A100_80GB

__all__ = [
    "AttentionGeometry",
    "MethodSpec",
    "METHODS",
    "attention_counts",
    "attention_latency",
]

# --- calibration constants (ops per score element unless noted) -----------
#: FP32 CUDA ops per score element in stock flash softmax: exponentiation
#: (SFU), running max, subtract, rescale multiply, row-sum accumulate.
SOFTMAX_FP32_OPS = 8.0
#: SAS per-element work executed as FP16 tensor-core FLOPs: degree-3 Horner
#: (3 FMA = 6 FLOPs) plus the LUT multiply.
SAS_FP16_TC_OPS = 8.0
#: Residual FP32 bookkeeping SAS cannot remove (max/sum in the online
#: softmax accumulator).
SAS_FP32_OPS = 2.0
#: FP32 ops per element to quantize an activation tile to INT8
#: (scale reciprocal multiply + round; the tile max reduction amortizes).
QUANT_FP32_OPS = 2.0
#: Integer ALU ops per cached element for progressive integer
#: dequantization inside the turbo kernel: unpack nibbles (shift/mask),
#: widen, multiply by s_int, add z_int, and re-layout into the IMMA operand
#: format.  This per-element work does not shrink with the storage width,
#: which is why the measured decode speedup (paper: up to 1.7x) sits well
#: below the raw 4.4x byte reduction.
PQ_DEQUANT_INT_OPS = 8.0
#: FP16 CUDA ops per cached element for KIVI/GEAR-style float
#: dequantization (unpack, subtract zero-point, scale multiply, convert).
FP16_DEQUANT_OPS = 4.0


@dataclass(frozen=True)
class AttentionGeometry:
    """Shape of one attention call (one layer, all heads, whole batch)."""

    batch: int
    n_heads: int
    n_kv_heads: int
    head_dim: int
    q_len: int
    kv_len: int
    causal: bool = True

    def __post_init__(self) -> None:
        if self.n_heads % self.n_kv_heads != 0:
            raise ValueError("n_heads must be a multiple of n_kv_heads")
        if min(self.batch, self.head_dim, self.q_len, self.kv_len) <= 0:
            raise ValueError("geometry dimensions must be positive")

    @property
    def score_elements(self) -> float:
        """Entries of the S/P matrices actually computed."""
        full = self.batch * self.n_heads * self.q_len * self.kv_len
        if self.causal and self.q_len > 1:
            # Triangular fraction for square prefill; decode (q_len=1)
            # attends to everything.
            return full * (self.kv_len + 1) / (2 * self.kv_len)
        return full

    @property
    def q_elements(self) -> float:
        return self.batch * self.n_heads * self.q_len * self.head_dim

    @property
    def kv_elements(self) -> float:
        """K plus V elements (hence the factor 2)."""
        return 2.0 * self.batch * self.n_kv_heads * self.kv_len * self.head_dim

    @property
    def o_elements(self) -> float:
        return self.q_elements


@dataclass(frozen=True)
class MethodSpec:
    """Cost-model description of one attention method."""

    name: str
    kind: str  # "fp16" | "turbo" | "dequant"
    #: Effective stored bits per KV element including group metadata.
    kv_bits: float = 16.0
    #: Rank of the GEAR low-rank reconstruction (0 = none).
    lowrank_rank: int = 0
    #: Peak-resident multiplier on the KV footprint.  The paper's
    #: measurement harness (HuggingFace PyTorch) reallocates the FP16 cache
    #: on every append (``torch.cat``) and keeps dequantized working copies
    #: for the decompress-then-flash baselines, so the transient footprint
    #: sits well above the packed size; TurboAttention appends into
    #: preallocated compressed blocks.  Calibrated against the paper's
    #: observed OOM boundaries (Figure 6: FP16 OOMs past ~4k context at
    #: batch 4 while the compressed methods reach 32k).
    cache_workspace_factor: float = 1.0

    def with_bits(self, kv_bits: float) -> "MethodSpec":
        return replace(self, kv_bits=kv_bits)


def _matmul_flops(geom: AttentionGeometry) -> float:
    """FLOPs of QK^T plus PV (2 ops per MAC each)."""
    return 4.0 * geom.score_elements * geom.head_dim


def _fp16_flash(geom: AttentionGeometry, cache_resident: bool) -> OpCounts:
    """Stock FlashAttention.  ``cache_resident``: KV already in HBM as FP16
    cache (decode) vs produced by the projection (prefill, also written)."""
    c = OpCounts(kernel_launches=1)
    c.fp16_tc = _matmul_flops(geom)
    c.fp32_cuda = SOFTMAX_FP32_OPS * geom.score_elements
    c.bytes_read = 2.0 * (geom.q_elements + geom.kv_elements)
    c.bytes_written = 2.0 * geom.o_elements
    if not cache_resident:
        c.bytes_written += 2.0 * geom.kv_elements  # write the FP16 cache
    return c


def _turbo(geom: AttentionGeometry, kv_bits: float, prefill: bool) -> OpCounts:
    c = OpCounts(kernel_launches=1)
    c.int8_tc = _matmul_flops(geom)
    c.fp16_tc = SAS_FP16_TC_OPS * geom.score_elements
    c.fp32_cuda = SAS_FP32_OPS * geom.score_elements
    # Quantize the probability tile for the PV MatMul.
    c.fp32_cuda += QUANT_FP32_OPS * geom.score_elements
    if prefill:
        # Read FP16 activations from the (fused) projection, quantize all
        # three tiles, write the progressive cache.
        c.bytes_read = 2.0 * (geom.q_elements + geom.kv_elements)
        c.fp32_cuda += QUANT_FP32_OPS * (geom.q_elements + geom.kv_elements)
        c.int_alu = PQ_DEQUANT_INT_OPS * geom.kv_elements  # stage-2 compress
        c.bytes_written = 2.0 * geom.o_elements + geom.kv_elements * kv_bits / 8.0
    else:
        # Read the compressed cache, dequantize to INT8 in integer math.
        c.bytes_read = 2.0 * geom.q_elements + geom.kv_elements * kv_bits / 8.0
        c.fp32_cuda += QUANT_FP32_OPS * geom.q_elements
        c.int_alu = PQ_DEQUANT_INT_OPS * geom.kv_elements
        c.bytes_written = 2.0 * geom.o_elements
    return c


def _dequant_pipeline(
    geom: AttentionGeometry, kv_bits: float, prefill: bool, rank: int
) -> OpCounts:
    """KIVI/GEAR: separate (de)compression kernels around FP16 flash."""
    flash = _fp16_flash(geom, cache_resident=True)
    extra = OpCounts(kernel_launches=1)
    if prefill:
        # Prefill attention is exact over the projection's FP16 output; a
        # compression kernel then reads FP16 KV and writes the packed cache.
        extra.bytes_read = 2.0 * geom.kv_elements
        extra.bytes_written = geom.kv_elements * kv_bits / 8.0
        extra.fp16_cuda = FP16_DEQUANT_OPS * geom.kv_elements
        if rank > 0:
            # SVD factor build is charged as a few GEMM-equivalent passes.
            extra.fp16_tc = 8.0 * geom.kv_elements * rank
            extra.bytes_written += 2.0 * rank * (
                geom.kv_elements / geom.head_dim + geom.kv_elements / geom.kv_len
            )
    else:
        # Decompression kernel: read packed cache, write FP16 KV, then the
        # flash kernel re-reads that FP16 KV (already counted in `flash`).
        extra.bytes_read = geom.kv_elements * kv_bits / 8.0
        extra.bytes_written = 2.0 * geom.kv_elements
        extra.fp16_cuda = FP16_DEQUANT_OPS * geom.kv_elements
        if rank > 0:
            # Low-rank reconstruction GEMM: A (t x r) @ B (r x d) per head
            # for both K and V, plus factor reads.
            extra.fp16_tc += 2.0 * rank * geom.kv_elements
            extra.bytes_read += 2.0 * rank * (
                geom.kv_elements / geom.head_dim + geom.kv_elements / geom.kv_len
            )
    return flash + extra


#: Effective bits include group metadata: KIVI/GEAR group-of-64 FP16
#: scale+zero adds 0.5 bits/element; GEAR's rank-4 factors add ~0.6 more at
#: the paper's head sizes.  Turbo stores INT8 scales/zeros (0.25 bits) plus
#: one FP16 tile scale (amortized).
METHODS: Dict[str, MethodSpec] = {
    "fp16": MethodSpec(name="fp16", kind="fp16", kv_bits=16.0, cache_workspace_factor=3.25),
    "turbo4": MethodSpec(name="turbo4", kind="turbo", kv_bits=4.3, cache_workspace_factor=1.2),
    "turbo_mixed": MethodSpec(
        name="turbo_mixed", kind="turbo", kv_bits=3.3, cache_workspace_factor=1.2
    ),
    "turbo2": MethodSpec(name="turbo2", kind="turbo", kv_bits=2.3, cache_workspace_factor=1.2),
    "kivi4": MethodSpec(name="kivi4", kind="dequant", kv_bits=4.5, cache_workspace_factor=2.0),
    "kivi2": MethodSpec(name="kivi2", kind="dequant", kv_bits=2.5, cache_workspace_factor=2.0),
    "gear4": MethodSpec(
        name="gear4", kind="dequant", kv_bits=5.1, lowrank_rank=4, cache_workspace_factor=2.0
    ),
}


def attention_counts(
    method: MethodSpec, geom: AttentionGeometry, prefill: bool
) -> OpCounts:
    """Operation counts of one attention call under ``method``."""
    if method.kind == "fp16":
        return _fp16_flash(geom, cache_resident=not prefill)
    if method.kind == "turbo":
        return _turbo(geom, method.kv_bits, prefill)
    if method.kind == "dequant":
        return _dequant_pipeline(geom, method.kv_bits, prefill, method.lowrank_rank)
    raise ValueError(f"unknown method kind: {method.kind!r}")


def attention_latency(
    method: MethodSpec,
    geom: AttentionGeometry,
    prefill: bool,
    gpu: Optional[GPUSpec] = None,
) -> float:
    """Roofline latency (seconds) of one attention call."""
    gpu = gpu if gpu is not None else A100_80GB
    return gpu.latency(attention_counts(method, geom, prefill))

"""End-to-end generation throughput (Figure 7a).

Throughput = generated tokens / wall time for a (prompt, generation)
workload at a given batch, with OOM enforced by the memory model.  Maximum
throughput sweeps the batch axis — compressed caches admit much larger
batches before OOM, which is where TurboAttention's 2.37x over FP16 comes
from (its per-step latency advantage compounds with the batch headroom).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.perf.attention_costs import MethodSpec
from repro.perf.e2e import ModelGeometry, e2e_step_latency
from repro.perf.gpu import GPUSpec, A100_80GB
from repro.perf.memory import MemoryModel

__all__ = ["ThroughputPoint", "generation_throughput", "max_throughput"]


@dataclass(frozen=True)
class ThroughputPoint:
    """One (batch, throughput) measurement; ``oom`` marks infeasibility."""

    batch: int
    tokens_per_second: float
    latency_seconds: float
    oom: bool


def generation_throughput(
    method: MethodSpec,
    model: ModelGeometry,
    batch: int,
    prompt_len: int,
    gen_len: int,
    gpu: Optional[GPUSpec] = None,
    memory: Optional[MemoryModel] = None,
) -> ThroughputPoint:
    """Tokens/s for one workload, or an OOM marker."""
    gpu = gpu if gpu is not None else A100_80GB
    memory = memory if memory is not None else MemoryModel(model, gpu)
    if not memory.fits(method, batch, prompt_len + gen_len):
        return ThroughputPoint(batch=batch, tokens_per_second=0.0, latency_seconds=float("inf"), oom=True)
    total = e2e_step_latency(method, model, batch, prompt_len, prompt_len, prefill=True, gpu=gpu)
    # Decode at the trapezoidal-midpoint KV length.
    mid_kv = prompt_len + gen_len // 2
    total += gen_len * e2e_step_latency(method, model, batch, 1, mid_kv, prefill=False, gpu=gpu)
    return ThroughputPoint(
        batch=batch,
        tokens_per_second=batch * gen_len / total,
        latency_seconds=total,
        oom=False,
    )


def max_throughput(
    method: MethodSpec,
    model: ModelGeometry,
    prompt_len: int,
    gen_len: int,
    gpu: Optional[GPUSpec] = None,
    memory: Optional[MemoryModel] = None,
    batch_limit: int = 4096,
) -> ThroughputPoint:
    """Best tokens/s over feasible batch sizes (powers of two + max batch)."""
    gpu = gpu if gpu is not None else A100_80GB
    memory = memory if memory is not None else MemoryModel(model, gpu)
    best: Optional[ThroughputPoint] = None
    candidates = [1 << i for i in range(0, batch_limit.bit_length())]
    candidates.append(memory.max_batch(method, prompt_len + gen_len, limit=batch_limit))
    for batch in sorted(set(b for b in candidates if 0 < b <= batch_limit)):
        point = generation_throughput(
            method, model, batch, prompt_len, gen_len, gpu=gpu, memory=memory
        )
        if point.oom:
            break
        if best is None or point.tokens_per_second > best.tokens_per_second:
            best = point
    if best is None:
        return ThroughputPoint(batch=0, tokens_per_second=0.0, latency_seconds=float("inf"), oom=True)
    return best

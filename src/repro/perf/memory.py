"""HBM capacity model: weights + KV cache + activations -> OOM boundaries.

Reproduces the paper's out-of-memory behaviour: Phi3-medium FP16 on one
A100-80GB OOMs beyond ~4k context at batch 4 (Figure 6), while the
compressed caches keep fitting to 32k; and the maximum feasible batch at a
given context is what drives the 2.37x maximum-throughput result
(Figure 7a).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.perf.attention_costs import MethodSpec
from repro.perf.e2e import ModelGeometry
from repro.perf.gpu import GPUSpec, A100_80GB

__all__ = ["MemoryModel", "paper_memory_model"]


@dataclass
class MemoryModel:
    """Capacity accounting for one model on one GPU.

    ``activation_overhead`` reserves per-token working memory (logits,
    residual stream, workspace); ``framework_overhead_gb`` reserves the
    CUDA context / allocator slack every real deployment loses.
    """

    model: ModelGeometry
    gpu: GPUSpec = A100_80GB
    framework_overhead_gb: float = 6.0
    activation_bytes_per_token: Optional[float] = None
    #: KV head replication factor.  The paper's Triton kernels (and its
    #: KIVI/GEAR baselines) operate per *query* head, materializing the KV
    #: cache at ``n_heads`` rather than the GQA-packed ``n_kv_heads``; pass
    #: ``n_heads // n_kv_heads`` to reproduce the paper's footprints (and
    #: hence its OOM boundaries), or leave 1 for an ideal packed cache.
    kv_replication: int = 1

    def __post_init__(self) -> None:
        if self.activation_bytes_per_token is None:
            # Residual stream + QKV + FFN intermediate (FP16), one layer
            # live at a time, plus logits workspace amortized.
            d = self.model.d_model
            self.activation_bytes_per_token = 2.0 * (4 * d + 2 * self.model.d_ff)

    def kv_bytes(self, method: MethodSpec, batch: int, context: int) -> float:
        """Peak-resident KV cache bytes for all layers at ``context`` tokens.

        Includes the method's workspace factor (append-reallocation
        transients / dequantized working copies) and the configured head
        replication — see the field docstrings.
        """
        elements = (
            2.0
            * batch
            * context
            * self.model.n_kv_heads
            * self.kv_replication
            * self.model.head_dim
            * self.model.n_layers
        )
        return elements * method.kv_bits / 8.0 * method.cache_workspace_factor

    def total_bytes(self, method: MethodSpec, batch: int, context: int) -> float:
        acts = self.activation_bytes_per_token * batch * context
        return (
            self.model.weight_bytes
            + self.kv_bytes(method, batch, context)
            + acts
            + self.framework_overhead_gb * 1e9
        )

    def fits(self, method: MethodSpec, batch: int, context: int) -> bool:
        return self.total_bytes(method, batch, context) <= self.gpu.hbm_capacity_gb * 1e9

    def max_batch(self, method: MethodSpec, context: int, limit: int = 4096) -> int:
        """Largest batch that fits at ``context`` tokens (0 if none)."""
        lo, hi = 0, limit
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self.fits(method, mid, context):
                lo = mid
            else:
                hi = mid - 1
        return lo

    def max_context(self, method: MethodSpec, batch: int, limit: int = 1 << 22) -> int:
        """Largest context that fits at ``batch`` (0 if none)."""
        lo, hi = 0, limit
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self.fits(method, batch, mid):
                lo = mid
            else:
                hi = mid - 1
        return lo


def paper_memory_model(model: ModelGeometry, gpu: GPUSpec = A100_80GB) -> MemoryModel:
    """Memory model calibrated to the paper's measurement harness.

    Uses per-query-head KV materialization (``kv_replication = group
    size``) and a 10 GB framework reserve, which together place the FP16
    OOM boundary just past 4k context at batch 4 — matching Figure 6 —
    while the compressed methods reach 32k.  Use this for the figure
    harnesses; instantiate :class:`MemoryModel` directly for ideal-packed
    accounting.
    """
    return MemoryModel(
        model,
        gpu=gpu,
        framework_overhead_gb=6.5,
        kv_replication=max(1, model.n_heads // model.n_kv_heads),
    )

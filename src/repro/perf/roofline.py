"""Roofline classification of attention kernels.

Given a method and geometry, report the quantities a performance engineer
reads off a roofline plot: arithmetic intensity (ops per HBM byte), the
device's balance point, which resource binds, and the headroom to the
next bottleneck.  Used by the docs/examples and tested for consistency
with the latency model (the binding resource must be the one whose time
the roofline `max` selects).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.perf.attention_costs import AttentionGeometry, MethodSpec, attention_counts
from repro.perf.counts import OpCounts
from repro.perf.gpu import A100_80GB, GPUSpec

__all__ = ["RooflinePoint", "roofline"]


@dataclass(frozen=True)
class RooflinePoint:
    """Where one kernel sits on the device's roofline."""

    method: str
    phase: str
    arithmetic_intensity: float  # total ops / total bytes
    bound: str  # "memory" | "tensor" | "cuda"
    memory_time: float
    tensor_time: float
    cuda_time: float
    utilization: float  # time of binding resource / total latency proxy

    @property
    def compute_time(self) -> float:
        return self.tensor_time + self.cuda_time

    @property
    def latency(self) -> float:
        return max(self.memory_time, self.compute_time)

    def headroom(self) -> float:
        """How much the non-binding side could grow before it binds (x)."""
        if self.bound == "memory":
            return self.memory_time / max(self.compute_time, 1e-30)
        return self.compute_time / max(self.memory_time, 1e-30)


def roofline(
    method: MethodSpec,
    geom: AttentionGeometry,
    prefill: bool,
    gpu: Optional[GPUSpec] = None,
) -> RooflinePoint:
    """Classify one attention call on the device roofline."""
    gpu = gpu if gpu is not None else A100_80GB
    counts: OpCounts = attention_counts(method, geom, prefill)
    mem = gpu.memory_time(counts)
    tc = gpu.tensor_time(counts)
    cuda = gpu.cuda_time(counts)
    if mem >= tc + cuda:
        bound = "memory"
        binding = mem
    elif tc >= cuda:
        bound = "tensor"
        binding = tc + cuda
    else:
        bound = "cuda"
        binding = tc + cuda
    total = max(mem, tc + cuda)
    return RooflinePoint(
        method=method.name,
        phase="prefill" if prefill else "decode",
        arithmetic_intensity=counts.total_ops / max(counts.total_bytes, 1e-30),
        bound=bound,
        memory_time=mem,
        tensor_time=tc,
        cuda_time=cuda,
        utilization=binding / max(total, 1e-30),
    )

"""Analytical A100 performance model.

The paper's efficiency results (Figures 1, 6, 7a) come from Triton kernels
on an A100-80GB.  Without the hardware we reproduce the *shape* of those
results from first principles, using the same roofline arguments the paper
makes:

* MatMuls run on tensor cores — FP16 at 312 TFLOPS, INT8 at 624 TOPS.
* Exponentiation runs on FP32 CUDA cores at ~3% of FP16 tensor throughput
  (the §2.4 bottleneck SAS removes).
* Decode attention is memory-bound on KV-cache bytes; compressing the
  cache divides those bytes, while KIVI/GEAR-style "decompress to FP16
  then FlashAttention" pipelines *add* traffic and CUDA-core work.

Modules:

* :mod:`repro.perf.gpu` — device specification (A100 defaults).
* :mod:`repro.perf.counts` — operation/byte counting primitives.
* :mod:`repro.perf.attention_costs` — per-method attention kernel costs.
* :mod:`repro.perf.e2e` — whole-model step latency (linear + attention).
* :mod:`repro.perf.memory` — weight/KV footprints, max batch, OOM.
* :mod:`repro.perf.throughput` — end-to-end tokens/s.
* :mod:`repro.perf.kernelsim` — tile-level kernel simulator producing the
  phase breakdowns of Figure 1b.
* :mod:`repro.perf.tp` — tensor-parallel sharding costs (per-layer
  all-reduce from the link-bandwidth model, pooled replica KV budgets).
"""

from repro.perf.gpu import GPUSpec, A100_80GB
from repro.perf.counts import OpCounts
from repro.perf.attention_costs import (
    AttentionGeometry,
    attention_counts,
    attention_latency,
    METHODS,
)
from repro.perf.e2e import ModelGeometry, e2e_step_latency, phase_breakdown
from repro.perf.memory import MemoryModel
from repro.perf.tp import replica_kv_budget, tp_step_latency
from repro.perf.throughput import generation_throughput, max_throughput
from repro.perf.roofline import RooflinePoint, roofline

__all__ = [
    "GPUSpec",
    "A100_80GB",
    "OpCounts",
    "AttentionGeometry",
    "attention_counts",
    "attention_latency",
    "METHODS",
    "ModelGeometry",
    "e2e_step_latency",
    "phase_breakdown",
    "MemoryModel",
    "replica_kv_budget",
    "tp_step_latency",
    "generation_throughput",
    "max_throughput",
    "RooflinePoint",
    "roofline",
]

"""GPU device specification and the roofline latency rule.

Rates are peak numbers from NVIDIA's A100 datasheet (SXM 80GB):

* FP16 tensor core: 312 TFLOPS        * INT8 tensor core: 624 TOPS
* FP32 CUDA core:   19.5 TFLOPS       * FP16 CUDA core:   78  TFLOPS
* HBM2e bandwidth:  2039 GB/s         * capacity:         80  GB

``mma_efficiency``/``mem_efficiency`` derate peak to achievable (flash
attention kernels typically reach 50-70% of peak MMA and ~80% of peak
bandwidth).  The latency rule is::

    latency = max(memory_time, tensor_time + cuda_time) + overhead

Tensor-core and CUDA-core work is summed, not maxed: inside a flash
attention tile loop the softmax (CUDA) is data-dependent on the scores
(tensor) of the same tile, so the two pipelines serialize — which is
exactly why FP32 exponentiation shows up as 30%+ of kernel time (§4) and
why moving it to tensor-core-friendly SAS pays off.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perf.counts import OpCounts

__all__ = ["GPUSpec", "A100_80GB", "H100_80GB"]


@dataclass(frozen=True)
class GPUSpec:
    """Throughput/capacity description of one GPU."""

    name: str
    fp16_tensor_tflops: float
    int8_tensor_tops: float
    fp32_cuda_tflops: float
    fp16_cuda_tflops: float
    int_alu_tops: float
    hbm_bandwidth_gbps: float
    hbm_capacity_gb: float
    mma_efficiency: float = 0.6
    #: INT8 IMMA pipelines reach a smaller fraction of their (2x) peak than
    #: FP16 HMMA in attention-shaped kernels (operand layout conversions,
    #: no async-copy INT4 paths) — calibrated so the prefill speedup lands
    #: in the paper's "up to 1.8x" regime rather than an ideal 2x.
    int8_mma_efficiency: float = 0.52
    cuda_efficiency: float = 0.7
    mem_efficiency: float = 0.8
    kernel_overhead_us: float = 5.0
    #: Per-direction NVLink bandwidth between peers in one TP group
    #: (A100 NVLink3: 600 GB/s bidirectional = 300 GB/s each way).
    link_bandwidth_gbps: float = 300.0
    #: Fraction of peak link bandwidth NCCL ring collectives achieve.
    link_efficiency: float = 0.75
    #: Per-hop launch/sync latency of one collective step (NCCL ring hop).
    link_latency_us: float = 2.0

    def _rate(self, peak_tera: float, eff: float) -> float:
        """Achievable ops/s from a peak tera-rate and an efficiency."""
        return peak_tera * 1e12 * eff

    def tensor_time(self, counts: OpCounts) -> float:
        """Seconds of tensor-core work."""
        t = counts.fp16_tc / self._rate(self.fp16_tensor_tflops, self.mma_efficiency)
        t += counts.int8_tc / self._rate(self.int8_tensor_tops, self.int8_mma_efficiency)
        return t

    def cuda_time(self, counts: OpCounts) -> float:
        """Seconds of CUDA-core (non-tensor) work."""
        t = counts.fp32_cuda / self._rate(self.fp32_cuda_tflops, self.cuda_efficiency)
        t += counts.fp16_cuda / self._rate(self.fp16_cuda_tflops, self.cuda_efficiency)
        t += counts.int_alu / self._rate(self.int_alu_tops, self.cuda_efficiency)
        return t

    def memory_time(self, counts: OpCounts) -> float:
        """Seconds of HBM traffic."""
        bw = self.hbm_bandwidth_gbps * 1e9 * self.mem_efficiency
        return (counts.bytes_read + counts.bytes_written) / bw

    def latency(self, counts: OpCounts) -> float:
        """Roofline latency in seconds, including per-kernel overheads."""
        compute = self.tensor_time(counts) + self.cuda_time(counts)
        mem = self.memory_time(counts)
        return max(compute, mem) + counts.kernel_launches * self.kernel_overhead_us * 1e-6

    def transfer_time(self, nbytes: float) -> float:
        """Seconds to ship ``nbytes`` point-to-point over one link.

        The KV-migration cost model for disaggregated prefill/decode
        fleets: one bandwidth term at the derated link rate plus one
        fixed launch/sync latency.  Zero-size transfers cost zero (no
        message, no launch), and the cost is strictly monotone in bytes
        above that — properties the test suite pins.
        """
        if nbytes <= 0:
            return 0.0
        bw = self.link_bandwidth_gbps * 1e9 * self.link_efficiency
        return nbytes / bw + self.link_latency_us * 1e-6

    def allreduce_time(self, nbytes: float, ranks: int) -> float:
        """Seconds for a ring all-reduce of ``nbytes`` across ``ranks`` peers.

        Ring collective: ``2 * (ranks - 1)`` steps, each moving
        ``nbytes / ranks`` over one link, plus a fixed per-step hop latency.
        The bandwidth term shrinks toward ``2 * nbytes / bw`` as ranks grow
        while the latency term grows linearly — which is what makes
        tensor-parallel scaling saturate.
        """
        if ranks <= 1 or nbytes <= 0:
            return 0.0
        bw = self.link_bandwidth_gbps * 1e9 * self.link_efficiency
        steps = 2 * (ranks - 1)
        return steps * (nbytes / ranks) / bw + steps * self.link_latency_us * 1e-6


A100_80GB = GPUSpec(
    name="A100-SXM-80GB",
    fp16_tensor_tflops=312.0,
    int8_tensor_tops=624.0,
    fp32_cuda_tflops=19.5,
    fp16_cuda_tflops=78.0,
    int_alu_tops=19.5,
    hbm_bandwidth_gbps=2039.0,
    hbm_capacity_gb=80.0,
)

# H100 SXM (dense rates, no structured sparsity): the device
# FlashAttention-3 targets.  Useful for projecting whether TurboAttention's
# advantages persist on Hopper — the FP32-exponentiation penalty shrinks
# (larger SFU/CUDA throughput relative to A100) but the INT8-vs-FP16 tensor
# ratio and the KV-bandwidth arithmetic are unchanged.
H100_80GB = GPUSpec(
    name="H100-SXM-80GB",
    fp16_tensor_tflops=989.5,
    int8_tensor_tops=1978.9,
    fp32_cuda_tflops=66.9,
    fp16_cuda_tflops=133.8,
    int_alu_tops=66.9,
    hbm_bandwidth_gbps=3350.0,
    hbm_capacity_gb=80.0,
    link_bandwidth_gbps=450.0,  # NVLink4: 900 GB/s bidirectional
)

"""Tensor-parallel sharding cost model.

Megatron-style intra-layer tensor parallelism over ``tp`` GPUs:

* **Compute/bytes shard.**  Attention heads and FFN columns are split
  across ranks, so every FLOP/byte field of the per-rank :class:`OpCounts`
  is the single-GPU count divided by ``tp``.  Kernel-launch overhead does
  *not* shard — each rank launches the same kernels — which is one of the
  two terms that caps scaling.
* **Collectives.**  Each decoder layer performs two all-reduces over the
  token activations (after the attention output projection and after the
  FFN down projection), costed by :meth:`repro.perf.gpu.GPUSpec.allreduce_time`
  from the link-bandwidth model.  This is the other saturating term: the
  bandwidth component amortizes with ``tp`` but the per-hop latency grows
  linearly with the ring size.
* **Memory.**  Weights and KV cache shard across ranks, so a ``tp``-way
  replica pools ``tp`` HBMs: the KV budget grows superlinearly per rank
  because the weight shard shrinks (:func:`replica_kv_budget`).

``tp_step_latency(..., tp=1)`` is exactly
:func:`repro.perf.e2e.e2e_step_latency` — no collectives, no sharding —
so the single-GPU serving engine is the ``tp=1`` special case.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.perf.attention_costs import MethodSpec, attention_counts
from repro.perf.counts import OpCounts
from repro.perf.e2e import ModelGeometry, linear_counts
from repro.perf.gpu import GPUSpec, A100_80GB

__all__ = [
    "shard_counts",
    "allreduce_bytes_per_layer",
    "tp_step_latency",
    "replica_kv_budget",
]

#: All-reduced activations travel in FP16.
_ACT_BYTES = 2.0


def shard_counts(counts: OpCounts, tp: int) -> OpCounts:
    """Per-rank counts: FLOPs and HBM bytes divide by ``tp``; the kernel
    launch count (fixed per-rank overhead) does not."""
    if tp <= 1:
        return counts
    sharded = counts * (1.0 / tp)
    return replace(sharded, kernel_launches=counts.kernel_launches)


def allreduce_bytes_per_layer(model: ModelGeometry, batch: int, q_len: int) -> float:
    """FP16 bytes moved by ONE of a layer's two activation all-reduces."""
    return _ACT_BYTES * batch * q_len * model.d_model


def tp_step_latency(
    method: MethodSpec,
    model: ModelGeometry,
    batch: int,
    q_len: int,
    kv_len: int,
    prefill: bool,
    tp: int = 1,
    gpu: Optional[GPUSpec] = None,
) -> float:
    """Latency (s) of one full-model forward step on a ``tp``-way replica."""
    if tp < 1:
        raise ValueError("tp must be >= 1")
    gpu = gpu if gpu is not None else A100_80GB
    attn = attention_counts(
        method, model.attention_geometry(batch, q_len, kv_len), prefill
    ) * model.n_layers
    lin = linear_counts(model, batch, q_len)
    compute = gpu.latency(shard_counts(attn, tp)) + gpu.latency(shard_counts(lin, tp))
    if tp == 1:
        return compute
    # Two activation all-reduces per decoder layer (attention out, FFN out).
    ar = 2 * model.n_layers * gpu.allreduce_time(
        allreduce_bytes_per_layer(model, batch, q_len), tp
    )
    return compute + ar


def replica_kv_budget(
    model: ModelGeometry,
    tp: int = 1,
    gpu: Optional[GPUSpec] = None,
    reserve_gb: float = 6.5,
) -> float:
    """Pooled KV-cache byte budget of one ``tp``-way replica.

    Each rank reserves ``reserve_gb`` for activations/workspace and holds a
    ``1/tp`` weight shard; the rest of all ``tp`` HBMs is KV capacity.
    """
    if tp < 1:
        raise ValueError("tp must be >= 1")
    gpu = gpu if gpu is not None else A100_80GB
    return tp * (gpu.hbm_capacity_gb * 1e9 - reserve_gb * 1e9) - model.weight_bytes

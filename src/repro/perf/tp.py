"""Tensor-parallel sharding cost model.

Megatron-style intra-layer tensor parallelism over ``tp`` GPUs:

* **Compute/bytes shard.**  Attention heads and FFN columns are split
  across ranks, so every FLOP/byte field of the per-rank :class:`OpCounts`
  is the single-GPU count divided by ``tp``.  Kernel-launch overhead does
  *not* shard — each rank launches the same kernels — which is one of the
  two terms that caps scaling.
* **Collectives.**  Each decoder layer performs two all-reduces over the
  token activations (after the attention output projection and after the
  FFN down projection), costed by :meth:`repro.perf.gpu.GPUSpec.allreduce_time`
  from the link-bandwidth model.  This is the other saturating term: the
  bandwidth component amortizes with ``tp`` but the per-hop latency grows
  linearly with the ring size.
* **Memory.**  Weights and KV cache shard across ranks, so a ``tp``-way
  replica pools ``tp`` HBMs: the KV budget grows superlinearly per rank
  because the weight shard shrinks (:func:`replica_kv_budget`).

``tp_step_latency(..., tp=1)`` is exactly
:func:`repro.perf.e2e.e2e_step_latency` — no collectives, no sharding —
so the single-GPU serving engine is the ``tp=1`` special case.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.perf.attention_costs import MethodSpec, attention_counts
from repro.perf.counts import OpCounts
from repro.perf.e2e import ModelGeometry, linear_counts
from repro.perf.gpu import GPUSpec, A100_80GB

__all__ = [
    "shard_counts",
    "allreduce_bytes_per_layer",
    "tp_step_latency",
    "decode_step_latency_batch",
    "replica_kv_budget",
]

#: All-reduced activations travel in FP16.
_ACT_BYTES = 2.0


def shard_counts(counts: OpCounts, tp: int) -> OpCounts:
    """Per-rank counts: FLOPs and HBM bytes divide by ``tp``; the kernel
    launch count (fixed per-rank overhead) does not."""
    if tp <= 1:
        return counts
    sharded = counts * (1.0 / tp)
    return replace(sharded, kernel_launches=counts.kernel_launches)


def allreduce_bytes_per_layer(model: ModelGeometry, batch: int, q_len: int) -> float:
    """FP16 bytes moved by ONE of a layer's two activation all-reduces."""
    return _ACT_BYTES * batch * q_len * model.d_model


def tp_step_latency(
    method: MethodSpec,
    model: ModelGeometry,
    batch: int,
    q_len: int,
    kv_len: int,
    prefill: bool,
    tp: int = 1,
    gpu: Optional[GPUSpec] = None,
) -> float:
    """Latency (s) of one full-model forward step on a ``tp``-way replica."""
    if tp < 1:
        raise ValueError("tp must be >= 1")
    gpu = gpu if gpu is not None else A100_80GB
    attn = attention_counts(
        method, model.attention_geometry(batch, q_len, kv_len), prefill
    ) * model.n_layers
    lin = linear_counts(model, batch, q_len)
    compute = gpu.latency(shard_counts(attn, tp)) + gpu.latency(shard_counts(lin, tp))
    if tp == 1:
        return compute
    # Two activation all-reduces per decoder layer (attention out, FFN out).
    ar = 2 * model.n_layers * gpu.allreduce_time(
        allreduce_bytes_per_layer(model, batch, q_len), tp
    )
    return compute + ar


def decode_step_latency_batch(
    method: MethodSpec,
    model: ModelGeometry,
    batch: int,
    kv_lens,
    tp: int = 1,
    gpu: Optional[GPUSpec] = None,
):
    """Vectorized ``tp_step_latency(..., q_len=1, prefill=False)`` over an
    array of context lengths.

    Returns a float64 array where element ``i`` is **bit-identical** to
    the scalar ``tp_step_latency(method, model, batch, 1, kv_lens[i],
    prefill=False, tp, gpu)``: every arithmetic step below mirrors the
    scalar model's expressions in the same association order, element-wise
    (NumPy does not fuse or reorder float64 ufunc chains), so each lane
    performs the same IEEE-754 operations the scalar call would.  The
    serving simulator's bulk decode advance
    (:meth:`repro.serving.engine.ServingEngine.decode_steps`) leans on
    this equivalence to collapse thousands of per-step cost-model calls —
    the property tests in ``tests/test_speed_exactness.py`` pin it.

    Only decode shapes are supported (``q_len == 1``; causal masking is
    then a no-op, matching :class:`AttentionGeometry.score_elements`).
    """
    import numpy as np

    if tp < 1:
        raise ValueError("tp must be >= 1")
    gpu = gpu if gpu is not None else A100_80GB
    kv = np.asarray(kv_lens, dtype=np.int64)
    h, hkv, d = model.n_heads, model.n_kv_heads, model.head_dim
    # AttentionGeometry views, q_len = 1 (decode attends to everything).
    score = batch * h * kv
    q_el = batch * h * d
    kv_el = 2.0 * batch * hkv * kv * d
    o_el = q_el

    kind = method.kind
    kv_bits = method.kv_bits
    # Per-field counts, mirroring attention_counts() expression by
    # expression (the in-place ``+=`` accumulation order included).
    if kind == "turbo":
        launches = 1.0
        int8_tc = 4.0 * score * d
        fp16_tc = 8.0 * score  # SAS_FP16_TC_OPS
        fp32 = 2.0 * score  # SAS_FP32_OPS
        fp32 = fp32 + 2.0 * score  # QUANT_FP32_OPS (P tile)
        fp32 = fp32 + 2.0 * q_el  # QUANT_FP32_OPS (query)
        int_alu = 8.0 * kv_el  # PQ_DEQUANT_INT_OPS
        fp16_cuda = 0.0 * score
        bytes_read = 2.0 * q_el + kv_el * kv_bits / 8.0
        bytes_written = (2.0 * o_el) + 0.0 * score
    elif kind == "fp16":
        launches = 1.0
        int8_tc = 0.0 * score
        fp16_tc = 4.0 * score * d
        fp32 = 8.0 * score  # SOFTMAX_FP32_OPS
        int_alu = 0.0 * score
        fp16_cuda = 0.0 * score
        bytes_read = 2.0 * (q_el + kv_el)
        bytes_written = (2.0 * o_el) + 0.0 * score
    elif kind == "dequant":
        launches = 2.0  # flash + decompression kernel
        int8_tc = 0.0 * score
        fp16_tc = 4.0 * score * d
        fp32 = 8.0 * score
        int_alu = 0.0 * score
        fp16_cuda = 4.0 * kv_el  # FP16_DEQUANT_OPS
        bytes_read = 2.0 * (q_el + kv_el) + (kv_el * kv_bits / 8.0)
        bytes_written = (2.0 * o_el) + (2.0 * kv_el)
        rank = method.lowrank_rank
        if rank > 0:
            fp16_tc = fp16_tc + 2.0 * rank * kv_el
            bytes_read = bytes_read + 2.0 * rank * (kv_el / d + kv_el / kv)
    else:
        raise ValueError(f"unknown method kind: {kind!r}")

    # counts * n_layers, then the tp shard (launches do not shard).
    nl = model.n_layers
    launches = launches * nl
    if tp > 1:
        # Scalar path: (counts * n_layers) * (1/tp), two multiplies.
        int8_tc = (int8_tc * nl) * (1.0 / tp)
        fp16_tc = (fp16_tc * nl) * (1.0 / tp)
        fp32 = (fp32 * nl) * (1.0 / tp)
        fp16_cuda = (fp16_cuda * nl) * (1.0 / tp)
        int_alu = (int_alu * nl) * (1.0 / tp)
        bytes_read = (bytes_read * nl) * (1.0 / tp)
        bytes_written = (bytes_written * nl) * (1.0 / tp)
    else:
        int8_tc = int8_tc * nl
        fp16_tc = fp16_tc * nl
        fp32 = fp32 * nl
        fp16_cuda = fp16_cuda * nl
        int_alu = int_alu * nl
        bytes_read = bytes_read * nl
        bytes_written = bytes_written * nl

    # GPUSpec.latency, element-wise.
    tensor_t = fp16_tc / gpu._rate(gpu.fp16_tensor_tflops, gpu.mma_efficiency)
    tensor_t += int8_tc / gpu._rate(gpu.int8_tensor_tops, gpu.int8_mma_efficiency)
    cuda_t = fp32 / gpu._rate(gpu.fp32_cuda_tflops, gpu.cuda_efficiency)
    cuda_t += fp16_cuda / gpu._rate(gpu.fp16_cuda_tflops, gpu.cuda_efficiency)
    cuda_t += int_alu / gpu._rate(gpu.int_alu_tops, gpu.cuda_efficiency)
    mem_bw = gpu.hbm_bandwidth_gbps * 1e9 * gpu.mem_efficiency
    mem_t = (bytes_read + bytes_written) / mem_bw
    attn_lat = np.maximum(tensor_t + cuda_t, mem_t) + (
        launches * gpu.kernel_overhead_us * 1e-6
    )

    # The linear stack's cost does not depend on kv_len: one scalar
    # evaluation through the *same* code path the scalar model uses.
    lin = linear_counts(model, batch, 1)
    lin_lat = gpu.latency(shard_counts(lin, tp))
    total = attn_lat + lin_lat
    if tp > 1:
        ar = 2 * model.n_layers * gpu.allreduce_time(
            allreduce_bytes_per_layer(model, batch, 1), tp
        )
        total = total + ar
    return total


def replica_kv_budget(
    model: ModelGeometry,
    tp: int = 1,
    gpu: Optional[GPUSpec] = None,
    reserve_gb: float = 6.5,
) -> float:
    """Pooled KV-cache byte budget of one ``tp``-way replica.

    Each rank reserves ``reserve_gb`` for activations/workspace and holds a
    ``1/tp`` weight shard; the rest of all ``tp`` HBMs is KV capacity.
    """
    if tp < 1:
        raise ValueError("tp must be >= 1")
    gpu = gpu if gpu is not None else A100_80GB
    return tp * (gpu.hbm_capacity_gb * 1e9 - reserve_gb * 1e9) - model.weight_bytes

"""Persist and restore a compressed KV cache (prefix caching).

Serving systems cache the KV state of common prompt prefixes to skip
re-prefilling.  With TurboAttention the persisted artifact is the
*compressed* cache — packed INT4/2 codes + integer metadata — a fraction
of the FP16 state's size.  This example prefills a prompt, saves the state
to disk, reloads it in a "new process", and continues decoding with
bit-identical results.

    python examples/cache_persistence.py
"""

import os
import tempfile

import numpy as np

from repro.core import TurboAttention, TurboConfig, load_state, save_state


def main() -> None:
    rng = np.random.default_rng(0)
    n_heads, n_tokens, head_dim = 8, 1024, 64
    q, k, v = (rng.standard_normal((n_heads, n_tokens, head_dim)) for _ in range(3))

    turbo = TurboAttention(TurboConfig(mixed_precision=True))
    _, state = turbo.prefill(q, k, v, causal=True)
    fp16_bytes = 2 * state.seq_len * n_heads * head_dim * 2

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "prefix_cache.npz")
        save_state(path, state)
        on_disk = os.path.getsize(path)
        print(f"prompt tokens           : {state.seq_len}")
        print(f"FP16 cache would be     : {fp16_bytes / 1024:.0f} KiB")
        print(f"persisted compressed    : {on_disk / 1024:.0f} KiB "
              f"({fp16_bytes / on_disk:.1f}x smaller)")

        restored = load_state(path)

    # Continue decoding from both states: identical results.
    q1, k1, v1 = (rng.standard_normal((n_heads, head_dim)) for _ in range(3))
    out_a = turbo.decode_step(q1, k1, v1, state)
    out_b = turbo.decode_step(q1, k1, v1, restored)
    print(f"decode after reload identical: {np.array_equal(out_a, out_b)}")


if __name__ == "__main__":
    main()

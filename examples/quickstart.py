"""Quickstart: quantized attention in a dozen lines.

Runs TurboAttention (FlashQ + SAS) over random multi-head Q/K/V, decodes a
few tokens against the compressed cache, and compares against exact
attention.

    python examples/quickstart.py
"""

import numpy as np

from repro import TurboAttention, TurboConfig, reference_attention
from repro.attention.masks import causal_mask


def main() -> None:
    rng = np.random.default_rng(0)
    n_heads, n_tokens, head_dim = 8, 512, 64
    q, k, v = (rng.standard_normal((n_heads, n_tokens, head_dim)) for _ in range(3))

    # Head-wise mixed precision: half the heads stored at 2-bit, half at
    # 4-bit, chosen by the paper's priority metric (Eq. 11/12).
    turbo = TurboAttention(TurboConfig(mixed_precision=True))

    # --- prefill: quantized flash-attention + compressed cache ----------
    out, state = turbo.prefill(q, k, v, causal=True)
    exact = reference_attention(q, k, v, mask=causal_mask(n_tokens, n_tokens))
    rel = np.linalg.norm(out - exact) / np.linalg.norm(exact)
    print(f"prefill relative error vs exact attention : {rel:.4f}")
    print(f"KV cache compression vs FP16              : {state.compression_ratio():.2f}x")
    print(f"effective bits per cached value           : {state.effective_bits_per_value():.2f}")
    print(f"per-head storage bits                     : {state.head_bits.tolist()}")

    # --- decode: one token at a time against the compressed cache -------
    for step in range(3):
        q_t, k_t, v_t = (rng.standard_normal((n_heads, head_dim)) for _ in range(3))
        out_t = turbo.decode_step(q_t, k_t, v_t, state)
        print(f"decode step {step}: output norm {np.linalg.norm(out_t):.3f}, "
              f"cache now {state.seq_len} tokens "
              f"({len(state.buffer)} staged in the INT8 buffer)")


if __name__ == "__main__":
    main()

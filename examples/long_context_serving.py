"""Capacity-plan a long-context serving deployment with the cost model.

Answers the questions an inference engineer asks before adopting a KV
compression scheme on one A100-80GB with a Phi3-medium-class model:

* how far does the context reach before OOM, per method?
* what is the attention speedup at my batch/context point?
* what is the best sustainable throughput for a chat workload?

    python examples/long_context_serving.py
"""

from repro.harness.common import render_table
from repro.perf import METHODS, ModelGeometry, attention_latency, max_throughput
from repro.perf.memory import paper_memory_model

CONTEXTS = (4096, 8192, 16384, 32768, 65536)
SHOW = ("fp16", "kivi4", "gear4", "turbo4", "turbo_mixed")


def main() -> None:
    model = ModelGeometry.phi3_medium()
    mem = paper_memory_model(model)

    # --- context reach at batch 4 ---------------------------------------
    rows = []
    for name in SHOW:
        spec = METHODS[name]
        rows.append([
            name,
            f"{spec.kv_bits:.1f}",
            f"{mem.max_context(spec, 4):,}",
            f"{mem.max_batch(spec, 8192)}",
        ])
    print(render_table(
        ["method", "KV bits", "max context @ batch 4", "max batch @ 8k"], rows,
        title="Memory reach (A100-80GB, Phi3-medium-class)",
    ))

    # --- decode latency sweep --------------------------------------------
    rows = []
    for ctx in CONTEXTS:
        geom = model.attention_geometry(4, 1, ctx)
        base = attention_latency(METHODS["fp16"], geom, prefill=False)
        row = [f"{ctx:,}"]
        for name in SHOW:
            if not mem.fits(METHODS[name], 4, ctx):
                row.append("OOM")
                continue
            lat = attention_latency(METHODS[name], geom, prefill=False)
            row.append(f"{lat * 1e3:.2f}ms ({base / lat:.2f}x)")
        rows.append(row)
    print()
    print(render_table(
        ["context"] + list(SHOW), rows,
        title="Decode attention latency per step, batch 4 (speedup vs FP16)",
    ))

    # --- chat-workload throughput ----------------------------------------
    rows = []
    base = max_throughput(METHODS["fp16"], model, 1024, 125, memory=mem)
    for name in SHOW:
        p = max_throughput(METHODS[name], model, 1024, 125, memory=mem)
        rows.append([
            name, p.batch, f"{p.tokens_per_second:.0f}",
            f"{p.tokens_per_second / base.tokens_per_second:.2f}x",
        ])
    print()
    print(render_table(
        ["method", "best batch", "tokens/s", "vs fp16"], rows,
        title="Max throughput, 1k prompt + 125 generated",
    ))


if __name__ == "__main__":
    main()

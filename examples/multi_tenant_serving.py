"""Multi-tenant serving: shared prefixes are capacity, tenancy is fairness.

Drives a Zipf-shared multi-tenant stream (many tenants reusing a few hot
system prompts) through three engines at the *same KV byte budget* and
narrates what the `repro.prefix` stack does:

1. Content-addressed sharing: how many prompt tokens the pool resolved
   from cache, the prefill compute that skipped, and the TTFT this buys
   over the no-sharing engine on the identical stream.
2. Copy-on-write: exact-replay prompts share their tail block until the
   first decode token diverges them, so sharing never corrupts output.
3. Tenant fairness: per-tenant token buckets plus weighted fair-share
   admission defer the hog tenants; the Jain index over per-tenant SLO
   attainment rises toward 1 while the sharing win is kept.

    python examples/multi_tenant_serving.py [--requests 300] [--tenants 200]
"""

import argparse
from collections import Counter

import numpy as np

from repro.harness.common import render_table
from repro.harness.prefix import PREFIX_SLO, tenancy_config
from repro.perf import METHODS, ModelGeometry
from repro.prefix import PrefixCacheConfig
from repro.serving import ServingEngine, zipf_shared_workload
from repro.serving.engine import EngineConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=300)
    parser.add_argument("--tenants", type=int, default=200)
    parser.add_argument("--seed", type=int, default=23)
    args = parser.parse_args()

    model = ModelGeometry.phi3_medium()
    method = METHODS["turbo4"]
    workload = zipf_shared_workload(
        args.requests,
        arrival_rate=20.0,
        n_tenants=args.tenants,
        zipf_s=1.6,
        rng=np.random.default_rng(args.seed),
    )
    hot = Counter(r.prefix_id for r in workload).most_common(3)
    print(
        f"Zipf-shared workload: {len(workload)} requests, "
        f"{args.tenants} tenants; hottest prefixes "
        + ", ".join(f"#{pid} x{n}" for pid, n in hot) + "\n"
    )

    # 1. Sharing: same stream, same KV budget, with and without the pool.
    open_metrics = ServingEngine(
        model, method, EngineConfig(slo=PREFIX_SLO)
    ).run(workload)
    pooled = ServingEngine(
        model, method, EngineConfig(slo=PREFIX_SLO, prefix=PrefixCacheConfig())
    )
    pooled_metrics = pooled.run(workload)
    print("1) Content-addressed sharing (equal KV byte budget):")
    print(render_table(
        ["engine", "hit ratio", "prefill tok saved", "p50 TTFT", "goodput/s"],
        [
            ["no sharing", "-", 0, f"{open_metrics.p50_ttft:.2f}",
             f"{open_metrics.goodput_rps:.2f}"],
            ["prefix pool", f"{pooled_metrics.prefix_hit_ratio * 100:.0f}%",
             pooled_metrics.prefill_tokens_saved,
             f"{pooled_metrics.p50_ttft:.2f}",
             f"{pooled_metrics.goodput_rps:.2f}"],
        ],
    ))
    assert pooled_metrics.p50_ttft < open_metrics.p50_ttft, "sharing must win"
    speedup = open_metrics.p50_ttft / pooled_metrics.p50_ttft
    print(f"   sharing wins TTFT: p50 {speedup:.1f}x faster on the identical stream\n")

    # 2. Copy-on-write kept sharing safe: exact replays shared even their
    # tail block, then diverged privately at the first decode token.
    print("2) Copy-on-write on shared tails:")
    print(f"   peak resident shared blocks: {pooled_metrics.shared_blocks}")
    print(f"   COW block copies at decode divergence: {pooled_metrics.cow_copies}")
    problems = pooled.prefix_pool.check_invariants()
    print(f"   pool audit after run (refcounts, residency, accounting): "
          f"{'clean' if not problems else problems}\n")
    assert problems == [], "block conservation violated"

    # 3. Fairness: tenant buckets + weighted fair share on top of the pool.
    fair = ServingEngine(model, method, tenancy_config())
    fair_metrics = fair.run(workload)
    print("3) Tenant fairness (buckets + weighted fair share):")
    print(render_table(
        ["engine", "done", "rejected", "Jain fairness", "p50 TTFT"],
        [
            ["prefix pool",
             pooled_metrics.completed, pooled_metrics.rejected,
             f"{pooled_metrics.fairness_jain:.3f}",
             f"{pooled_metrics.p50_ttft:.2f}"],
            ["+ tenancy",
             fair_metrics.completed, fair_metrics.rejected,
             f"{fair_metrics.fairness_jain:.3f}",
             f"{fair_metrics.p50_ttft:.2f}"],
        ],
    ))
    print(f"   fairness: Jain index {pooled_metrics.fairness_jain:.3f} -> "
          f"{fair_metrics.fairness_jain:.3f} with tenancy gates on")


if __name__ == "__main__":
    main()

"""End-to-end generation through the transformer substrate.

Builds the LLaMA3-like NumPy transformer twice — once with the exact FP16
attention backend, once with TurboAttention — generates from the same
prompt, and reports per-step fidelity (teacher-forced agreement and logit
divergence) plus the KV memory each run held.

    python examples/llm_generation.py [--model llama3ish] [--tokens 48]
"""

import argparse

import numpy as np

from repro.core import TurboAttention, TurboConfig
from repro.harness.common import render_table
from repro.models import MODEL_PRESETS, TransformerLM, generate
from repro.models.generation import forced_decode, logit_divergence, token_agreement


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="llama3ish", choices=sorted(MODEL_PRESETS))
    parser.add_argument("--tokens", type=int, default=48)
    args = parser.parse_args()

    cfg = MODEL_PRESETS[args.model]
    rng = np.random.default_rng(7)
    prompt = rng.integers(0, cfg.vocab_size, size=96)

    reference = TransformerLM(cfg)
    trajectory = generate(reference, prompt, args.tokens).tokens
    ref = forced_decode(reference, prompt, trajectory, keep_logits=True)
    ref_kv_bits = reference.kv_storage_bits

    rows = []
    for name, factory in [
        ("turbo 4-bit", lambda: TurboAttention(TurboConfig(kv_bits=4))),
        ("turbo mixed 2/4", lambda: TurboAttention(TurboConfig(mixed_precision=True))),
        ("turbo 2-bit", lambda: TurboAttention(TurboConfig(kv_bits=2))),
    ]:
        candidate = TransformerLM(cfg, attention_factory=factory)
        cand = forced_decode(candidate, prompt, trajectory, keep_logits=True)
        rows.append([
            name,
            f"{token_agreement(ref.tokens, cand.tokens) * 100:.1f}",
            f"{logit_divergence(ref.logits, cand.logits):.4f}",
            f"{ref_kv_bits / candidate.kv_storage_bits:.2f}x",
        ])

    print(f"model={cfg.name}: {cfg.n_layers} layers, {cfg.n_heads} heads "
          f"({cfg.n_kv_heads} KV), d={cfg.d_model}")
    print(f"prompt 96 tokens, {args.tokens} generated; "
          f"reference KV = {ref_kv_bits / 8 / 1024:.1f} KiB\n")
    print(render_table(
        ["backend", "token agreement %", "logit KL", "KV compression"], rows,
        title="Generation fidelity vs the FP16 backend (teacher-forced)",
    ))
    print("\nNote: the substrate uses random weights, so greedy tokens flip on"
          "\ntiny logit margins; logit KL is the faithful fidelity signal here.")


if __name__ == "__main__":
    main()

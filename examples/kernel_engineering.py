"""Kernel-engineering tour: rooflines, phase breakdowns, block feasibility.

The workflow for porting TurboAttention to a new device or model shape:

1. classify the kernels on the device roofline (what binds?);
2. inspect the per-phase time breakdown of the decode kernel;
3. check which tile sizes fit the CTA's shared-memory/register budget,
   using the tile VM whose turbo program is bit-identical to the kernel.

    python examples/kernel_engineering.py
"""

import numpy as np

from repro.harness.common import render_table
from repro.kernels import MachineLimits, max_feasible_block, run_attention_program
from repro.perf import METHODS, ModelGeometry, roofline
from repro.perf.kernelsim import simulate_attention_kernel


def main() -> None:
    model = ModelGeometry.phi3_medium()

    # --- 1. roofline classification -------------------------------------
    rows = []
    for name in ("fp16", "turbo_mixed", "kivi4"):
        for phase, prefill, geom in (
            ("prefill", True, model.attention_geometry(4, 8192, 8192)),
            ("decode", False, model.attention_geometry(4, 1, 8192)),
        ):
            p = roofline(METHODS[name], geom, prefill)
            rows.append([
                name, phase, f"{p.arithmetic_intensity:.1f}", p.bound,
                f"{p.headroom():.1f}x",
            ])
    print(render_table(
        ["method", "phase", "ops/byte", "bound by", "headroom"], rows,
        title="Roofline classification (A100, batch 4, 8k context)",
    ))

    # --- 2. decode kernel phase breakdown --------------------------------
    print()
    rows = []
    for name in ("fp16", "kivi4", "turbo_mixed"):
        t = simulate_attention_kernel(
            METHODS[name], model.attention_geometry(4, 1, 8192), prefill=False
        )
        total = t.pop("total")
        top = sorted(t.items(), key=lambda kv: -kv[1])[:3]
        rows.append([
            name, f"{total * 1e6:.0f}",
            ", ".join(f"{k} {v / total * 100:.0f}%" for k, v in top if v > 0),
        ])
    print(render_table(
        ["method", "total (us)", "top phases"], rows,
        title="Decode kernel phase breakdown",
    ))

    # --- 3. block-size feasibility ---------------------------------------
    print()
    rows = []
    for label, limits in (
        ("A100 CTA", MachineLimits()),
        ("smem-tight (20K)", MachineLimits(smem_bytes=20 * 1024, reg_bytes=8 << 20)),
    ):
        rows.append([
            label,
            max_feasible_block("flash", 128, limits=limits),
            max_feasible_block("turbo", 128, limits=limits),
        ])
    print(render_table(
        ["budget", "flash max block", "turbo max block"], rows,
        title="Largest feasible square tile, head dim 128",
    ))

    # --- bonus: prove the tile program computes the real thing -----------
    rng = np.random.default_rng(0)
    q, k, v = (rng.standard_normal((128, 64)) for _ in range(3))
    from repro.core.config import TurboConfig
    from repro.core.prefill import turbo_prefill

    out_vm, _ = run_attention_program("turbo", q, k, v, block_q=64, block_k=64)
    out_kernel = turbo_prefill(
        q[None], k[None], v[None], TurboConfig(), np.array([4]), causal=False
    ).output[0]
    print(f"\ntile-VM output identical to the kernel: {np.array_equal(out_vm, out_kernel)}")


if __name__ == "__main__":
    main()

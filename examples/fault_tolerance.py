"""Fault injection and graceful degradation in the cluster simulator.

Walks the questions a fleet operator asks once hardware starts failing,
using the seeded fault layer (`repro.cluster.faults`) on a Phi3-medium
fleet:

1. What does one crash cost? (anatomy of eviction, backoff, re-prefill)
2. How do knobs trade failures for latency? (retry budget sweep)
3. Does compression help or hurt under faults? (blast radius vs goodput)

    python examples/fault_tolerance.py [--requests 60] [--rate 6.0]
"""

import argparse
from dataclasses import replace

import numpy as np

from repro.cluster import (
    SLO,
    ClusterConfig,
    ClusterSimulator,
    FaultConfig,
    FaultInjector,
)
from repro.harness.common import render_table
from repro.perf import METHODS, ModelGeometry
from repro.serving import poisson_workload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=60)
    parser.add_argument("--rate", type=float, default=6.0, help="requests/second")
    args = parser.parse_args()

    model = ModelGeometry.phi3_medium()
    slo = SLO(ttft_s=15.0, tpot_s=0.25)
    workload = poisson_workload(
        args.requests, arrival_rate=args.rate,
        prompt_range=(256, 6144), gen_range=(64, 320),
        rng=np.random.default_rng(12), n_sessions=24,
    )

    # 1. Anatomy of a fault schedule: the injector is pure and seeded, so
    # you can print the timeline a run will face before running it.
    faults = FaultConfig(
        seed=7, crash_rate=0.04, stall_rate=0.05,
        crash_downtime_s=10.0, stall_duration_s=8.0, stall_slowdown=4.0,
        request_timeout_s=60.0, max_retries=3,
    )
    horizon = workload[-1].arrival_time + faults.horizon_pad_s
    schedule = FaultInjector(faults).schedule(horizon)
    print("1) The seeded fault timeline (same every run with this seed):")
    rows = [
        [f"{e.time:.1f}", e.kind, f"{e.duration_s:.0f}",
         f"x{e.slowdown:.0f}" if e.kind == "stall" else "-"]
        for e in schedule
    ]
    print(render_table(
        ["t (s)", "fault", "duration (s)", "slowdown"], rows,
        title=f"{len(schedule)} faults over a {horizon:.0f}s horizon",
    ))

    # 2. Retry budget: generous budgets trade failed requests for tail
    # latency (every retry re-prefills the prompt from scratch).
    print("\n2) Retry budget sweep (3 turbo_mixed replicas, same faults):")
    rows = []
    harsh = FaultConfig(
        seed=7, crash_rate=0.1, stall_rate=0.05,
        crash_downtime_s=10.0, stall_duration_s=8.0, stall_slowdown=4.0,
        request_timeout_s=10.0, max_retries=3,
    )
    for budget in (0, 1, 3, 8):
        cfg = ClusterConfig(
            n_replicas=3, policy="least_kv", slo=slo,
            faults=replace(harsh, max_retries=budget),
        )
        m = ClusterSimulator(model, METHODS["turbo_mixed"], cfg).run(workload)
        rows.append([
            budget, m.completed, m.failed, m.retries,
            m.wasted_prefill_tokens, f"{m.p99_ttft:.1f}",
        ])
    print(render_table(
        ["max_retries", "done", "failed", "retries", "re-prefill tok",
         "p99 TTFT (s)"],
        rows,
        title="Failures are a knob, not an accident (timeout 10s, heavy crashes)",
    ))

    # 3. The blast-radius trade-off: a compressed replica packs more
    # in-flight KV, so each crash wastes more work — but recovery is
    # faster too.  Which wins?
    print("\n3) Compression under an identical fault schedule:")
    rows = []
    for method in ("fp16", "turbo_mixed"):
        out = {}
        for label, f in (("clean", None), ("faulted", faults)):
            cfg = ClusterConfig(n_replicas=3, policy="least_kv", slo=slo, faults=f)
            out[label] = ClusterSimulator(model, METHODS[method], cfg).run(workload)
        m, c = out["faulted"], out["clean"]
        rows.append([
            method, f"{c.goodput_rps:.2f}", f"{m.goodput_rps:.2f}",
            m.failed, m.wasted_prefill_tokens, f"{m.availability * 100:.0f}%",
        ])
    print(render_table(
        ["method", "goodput/s clean", "goodput/s faults", "failed",
         "re-prefill tok", "avail"],
        rows,
        title="Blast radius grows with density; goodput still favours compression",
    ))
    print(
        "\nEvery submitted request terminated exactly once (completed or"
        "\nfailed-after-retries): the fleet degrades, it never loses work"
        "\nuntracked — and the whole run reproduces seed-for-seed."
    )


if __name__ == "__main__":
    main()

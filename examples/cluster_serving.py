"""Size and route a replica fleet under SLO-bound traffic.

Walks the capacity-planning questions a deployment actually asks, using
the cluster simulator (`repro.cluster`) on a Phi3-medium-class model:

1. How does tensor parallelism trade latency for GPUs? (tp sweep)
2. Which router policy holds the p99 TTFT under bursty traffic?
3. How many FP16 replicas does it take to match one TurboAttention
   replica's goodput — i.e. what is the compressed cache worth in GPUs?

    python examples/cluster_serving.py [--requests 60] [--rate 6.0]
"""

import argparse

import numpy as np

from repro.cluster import SLO, ClusterConfig, ClusterSimulator, ROUTER_POLICIES
from repro.harness.common import render_table
from repro.perf import METHODS, ModelGeometry
from repro.perf.tp import tp_step_latency
from repro.serving import poisson_workload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=60)
    parser.add_argument("--rate", type=float, default=6.0, help="requests/second")
    args = parser.parse_args()

    model = ModelGeometry.phi3_medium()
    slo = SLO(ttft_s=10.0, tpot_s=0.2)

    # 1. Tensor-parallel sharding: per-step decode latency vs GPUs.
    print("1) Tensor parallelism (decode step, batch 8, 4k context):")
    rows = []
    for tp in (1, 2, 4, 8):
        lat = tp_step_latency(
            METHODS["turbo_mixed"], model, 8, 1, 4096, prefill=False, tp=tp
        )
        rows.append([tp, f"{lat * 1e3:.2f}", f"{1e3 * lat * tp:.2f}"])
    print(render_table(
        ["tp", "step latency (ms)", "GPU-ms per step"], rows,
        title="All-reduce costs cap the scaling (latency saturates)",
    ))

    # Bursty workload: heavy-tailed prompts at a rate past FP16 capacity.
    workload = poisson_workload(
        args.requests, arrival_rate=args.rate,
        prompt_range=(256, 6144), gen_range=(64, 320),
        rng=np.random.default_rng(12), n_sessions=24,
    )

    # 2. Router policies on a 3-replica FP16 fleet under pressure.
    print("\n2) Router policies (3 FP16 replicas, bursty traffic):")
    rows = []
    for policy in ROUTER_POLICIES:
        config = ClusterConfig(n_replicas=3, policy=policy, slo=slo)
        m = ClusterSimulator(model, METHODS["fp16"], config).run(workload)
        rows.append([
            policy, f"{m.goodput_rps:.2f}", f"{m.slo_attainment * 100:.0f}%",
            f"{m.p99_ttft:.2f}", m.preemptions,
        ])
    print(render_table(
        ["policy", "goodput/s", "SLO att", "p99 TTFT (s)", "preempt"], rows,
        title="Load-aware routing tames the tail",
    ))

    # 3. GPUs needed to hold the SLO: FP16 fleet sizes vs one turbo replica.
    print("\n3) Fleet sizing at equal SLO (least_kv routing):")
    rows = []
    for method, n in (("turbo_mixed", 1), ("fp16", 1), ("fp16", 2), ("fp16", 4)):
        config = ClusterConfig(n_replicas=n, policy="least_kv", slo=slo)
        m = ClusterSimulator(model, METHODS[method], config).run(workload)
        peak = max((s.peak_running for s in m.replicas), default=0)
        rows.append([
            f"{n} x {method}", f"{m.goodput_rps:.2f}",
            f"{m.slo_attainment * 100:.0f}%", f"{m.p99_ttft:.2f}", peak,
        ])
    print(render_table(
        ["fleet", "goodput/s", "SLO att", "p99 TTFT (s)", "peak conc/replica"],
        rows,
        title="A compressed cache is worth GPUs",
    ))
    print(
        "\nThe single TurboAttention replica admits more concurrent requests"
        "\nthan FP16 replicas can hold collectively at the same per-GPU HBM"
        "\nbudget — KV compression converts directly into fleet capacity."
    )


if __name__ == "__main__":
    main()

"""Overload protection: admission control, shedding, and precision brownout.

Walks a ramp workload (calm -> surge -> calm) through a protected
serving engine and narrates what the `repro.overload` stack does at each
stage:

1. The brownout timeline: NORMAL -> BROWNOUT -> recovery, with the
   stress signal and cooldown that drove each transition.
2. Where the surge went: accepted / rejected / shed, per reason, and
   the conservation invariant that accounts for every request.
3. What brownout bought: per-request KV bits, brownout tokens, and the
   goodput comparison against an unprotected engine on the same stream.

    python examples/overload_brownout.py [--surge 25.0] [--seed 11]
"""

import argparse
from collections import Counter

import numpy as np

from repro.harness.common import render_table
from repro.overload import AdmissionConfig, BrownoutConfig, BrownoutLevel
from repro.perf import METHODS, ModelGeometry
from repro.serving import SLO, ServingEngine, ramp_workload
from repro.serving.engine import EngineConfig
from repro.serving.request import RequestStatus


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--surge", type=float, default=25.0,
                        help="surge-phase arrival rate (requests/second)")
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args()

    model = ModelGeometry.phi3_medium()
    method = METHODS["turbo4"]
    slo = SLO(ttft_s=15.0, tpot_s=0.25)
    phases = [(4.0, 8.0), (args.surge, 20.0), (3.0, 35.0)]
    workload = ramp_workload(phases, rng=np.random.default_rng(args.seed))
    print(f"Ramp workload: {' -> '.join(f'{r:.0f} rps x {d:.0f}s' for r, d in phases)}"
          f" ({len(workload)} requests)\n")

    brownout = BrownoutConfig(delay_scale_s=2.5, kv_scale=1.5, cooldown_s=6.0)
    config = EngineConfig(
        slo=slo,
        deadline_shed=True,
        shed_high_water=2.5,
        admission=AdmissionConfig(
            rate_tokens_per_s=8_000.0, burst_tokens=30_000.0, max_queue_depth=48,
        ),
        brownout=brownout,
    )
    engine = ServingEngine(model, method, config)
    metrics = engine.run(workload)

    # 1. The brownout timeline: every transition the hysteresis state
    # machine took, with the EWMA stress that triggered it.  Cooldown
    # guarantees at most one transition per window — no flapping.
    print("1) Brownout timeline (cooldown "
          f"{brownout.cooldown_s:.0f}s, enter {brownout.enter_thresholds}, "
          f"exit {brownout.exit_thresholds}):")
    rows = [
        [f"{t.time:.1f}", t.src.name, t.dst.name, f"{t.stress:.2f}"]
        for t in engine.brownout.transitions
    ]
    print(render_table(["t (s)", "from", "to", "stress"], rows))
    assert engine.brownout.level is BrownoutLevel.NORMAL, "did not recover"
    print(f"   final level: {engine.brownout.level.name} (recovered)\n")

    # 2. Where the surge went.  Nothing is silently dropped: every
    # terminal record carries a status and a reason.
    records = list(engine.records.values())
    by_status = Counter(r.status.value for r in records)
    reasons = Counter(
        r.outcome_reason for r in records if r.outcome_reason is not None
    )
    print("2) Where the surge went:")
    print(render_table(
        ["status", "requests"], [[s, n] for s, n in sorted(by_status.items())],
    ))
    print(render_table(
        ["reject/shed reason", "requests"],
        [[s, n] for s, n in sorted(reasons.items())],
    ))
    terminal = (
        by_status.get("finished", 0) + by_status.get("failed", 0)
        + by_status.get("rejected", 0) + by_status.get("shed", 0)
    )
    assert terminal == len(records) == len(workload), "conservation violated"
    print(f"   conservation: {by_status.get('finished', 0)} finished + "
          f"{by_status.get('rejected', 0)} rejected + "
          f"{by_status.get('shed', 0)} shed == {len(workload)} submitted\n")

    # 3. What brownout bought.  Requests admitted during a brownout run
    # at reduced KV precision (visible per-request) — smaller KV blocks,
    # faster decode — which is capacity an FP16 fleet cannot reach.
    bits = Counter(
        r.kv_bits for r in records if r.status is RequestStatus.FINISHED
    )
    print("3) Per-request KV precision of finished work:")
    print(render_table(
        ["kv bits", "requests"], [[f"{b:.1f}", n] for b, n in sorted(bits.items())],
    ))
    open_metrics = ServingEngine(
        model, method, EngineConfig(slo=slo)
    ).run(workload)
    print(f"   brownout tokens (generated below {method.kv_bits} bits): "
          f"{metrics.brownout_tokens}")
    print(f"   goodput: protected {metrics.goodput_rps:.2f}/s vs unprotected "
          f"{open_metrics.goodput_rps:.2f}/s on the identical stream "
          f"({metrics.goodput_rps / open_metrics.goodput_rps:.1f}x)")


if __name__ == "__main__":
    main()

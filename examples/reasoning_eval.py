"""Evaluate KV-compression methods on a CoT-style retrieval benchmark.

A miniature of the paper's Table 2: multi-hop associative recall through a
~900-token prompt (the GSM8k-CoT prompt size) under every cache scheme,
on the Phi3-like model whose value cache carries heavy channel outliers.

    python examples/reasoning_eval.py [--model phi3ish] [--task gsm8k_like]
"""

import argparse

from repro.baselines import (
    FP16Attention,
    GEARAttention,
    GEARConfig,
    KIVIAttention,
    KIVIConfig,
)
from repro.core import TurboAttention, TurboConfig
from repro.harness.common import render_table
from repro.tasks import task_for_model
from repro.tasks.recall import evaluate_backend

METHODS = {
    "FP16 (exact)": FP16Attention,
    "KIVI 4-bit": lambda: KIVIAttention(KIVIConfig(bits=4)),
    "KIVI 2-bit": lambda: KIVIAttention(KIVIConfig(bits=2)),
    "GEAR-L 4-bit": lambda: GEARAttention(GEARConfig(bits=4)),
    "Turbo 4-bit": lambda: TurboAttention(TurboConfig(kv_bits=4)),
    "Turbo mixed 2/4": lambda: TurboAttention(TurboConfig(mixed_precision=True)),
    "Turbo 2-bit": lambda: TurboAttention(TurboConfig(kv_bits=2)),
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="phi3ish",
                        choices=["llama3ish", "qwen2ish", "phi3ish"])
    parser.add_argument("--task", default="gsm8k_like",
                        choices=["gsm8k_like", "aqua_like", "bbh_like"])
    args = parser.parse_args()

    task, model = task_for_model(args.task, args.model)
    print(f"task={task.name} (prompt {task.prefill_len}, {task.n_hops} hops), "
          f"model={model.name}\n")

    rows = []
    for name, factory in METHODS.items():
        res = evaluate_backend(factory, task, model)
        rows.append([
            name,
            f"{res.accuracy * 100:.1f}",
            f"{res.effective_bits:.2f}",
            f"{res.compression_ratio:.2f}x",
        ])
    print(render_table(
        ["method", "accuracy %", "bits/value", "compression"], rows,
        title="Retrieval accuracy under KV-cache compression",
    ))


if __name__ == "__main__":
    main()

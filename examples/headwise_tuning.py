"""Tune head-wise mixed precision for a memory budget.

Demonstrates the Eq. 11 priority metric directly: draws shaped K/V
statistics for the Phi3-like model, sweeps the number of 2-bit heads, and
reports cache error + storage for each point and selection strategy — the
workflow a practitioner would run to pick `two_bit_fraction` for a new
model.

    python examples/headwise_tuning.py
"""

import numpy as np

from repro.core.headwise import (
    HeadSelectionMethod,
    assign_head_bits,
    head_priority,
    select_two_bit_heads,
)
from repro.harness.common import render_table
from repro.models import MODEL_PRESETS, synthetic_qkv
from repro.quant.progressive import pq_compress, pq_dequantize
from repro.quant.schemes import quantize_symmetric


def cache_error(x: np.ndarray, head_bits: np.ndarray) -> float:
    codes, scale = quantize_symmetric(x, bits=8, axis=(-2, -1), max_code=119)
    block = pq_compress(codes, bits=head_bits.reshape(-1, 1, 1), float_scale=scale)
    return float(np.linalg.norm(x - pq_dequantize(block)) / np.linalg.norm(x))


def main() -> None:
    model = MODEL_PRESETS["phi3ish"]
    rng = np.random.default_rng(42)
    sample = synthetic_qkv(model, 1024, rng)

    print("Per-head priority scores (gap x std, Eq. 11); higher = keep 4-bit:")
    scores = head_priority(sample.k) + head_priority(sample.v)
    for h, s in enumerate(scores):
        print(f"  head {h}: {s:10.2f}")
    print()

    rows = []
    for n_two in range(model.n_kv_heads + 1):
        row = [n_two, f"{2 + 2 * (1 - n_two / model.n_kv_heads):.2f}"]
        for method in ("priority", "random"):
            mask = select_two_bit_heads(
                sample.k, sample.v, n_two,
                method=HeadSelectionMethod(method), rng=np.random.default_rng(0),
            )
            bits = assign_head_bits(mask)
            err = cache_error(sample.k, bits) + cache_error(sample.v, bits)
            row.append(f"{err:.4f}")
        rows.append(row)

    print(render_table(
        ["#2-bit heads", "avg bits", "error (priority)", "error (random)"], rows,
        title="Cache error vs compression for head-selection strategies",
    ))
    print("\nPick the largest #2-bit heads whose priority-selected error is "
          "acceptable; the paper uses half the heads.")


if __name__ == "__main__":
    main()

"""Serve a live request stream under different KV-cache schemes.

Simulates a production chat deployment (Phi3-medium-class model, one
A100-80GB) receiving Poisson request traffic, with continuous batching and
a paged KV allocator.  Compare how each attention method holds up as the
arrival rate climbs past what the FP16 cache can absorb.

    python examples/serving_simulation.py [--rate 6.0] [--requests 80]
"""

import argparse

import numpy as np

from repro.harness.common import render_table
from repro.perf import METHODS, ModelGeometry
from repro.serving import ServingEngine, poisson_workload

SHOW = ("fp16", "kivi4", "gear4", "turbo_mixed")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rate", type=float, default=6.0, help="requests/second")
    parser.add_argument("--requests", type=int, default=80)
    args = parser.parse_args()

    model = ModelGeometry.phi3_medium()
    workload = poisson_workload(
        args.requests, arrival_rate=args.rate, rng=np.random.default_rng(7)
    )
    total_tokens = sum(r.gen_len for r in workload)
    print(
        f"workload: {args.requests} requests @ {args.rate}/s, "
        f"{total_tokens} output tokens, prompts 512-1536\n"
    )

    rows = []
    for name in SHOW:
        engine = ServingEngine(model, METHODS[name])
        m = engine.run(workload)
        rows.append([
            name,
            f"{m.throughput_tokens_per_s:.0f}",
            f"{m.mean_ttft:.2f}",
            f"{m.p95_ttft:.2f}",
            f"{m.p95_tpot * 1e3:.0f}",
            m.preemptions,
            f"{engine.allocator.utilization * 100:.0f}%",
        ])
    print(render_table(
        ["method", "tok/s", "mean TTFT (s)", "p95 TTFT (s)", "p95 TPOT (ms)",
         "preemptions", "final KV util"],
        rows,
        title="Open-system serving comparison",
    ))
    print("\nThe compressed caches keep admission latency flat where the FP16"
          "\ncache is forced to queue and preempt — the serving-level payoff of"
          "\nthe paper's >4.4x KV compression.")


if __name__ == "__main__":
    main()

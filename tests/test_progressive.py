"""Tests for progressive quantization (INT8 -> INT4/2, integer scales)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.quant.progressive import (
    ProgressiveConfig,
    pq_compress,
    pq_decompress_to_int8,
    pq_dequantize,
)
from repro.quant.schemes import quantize_symmetric

int8_blocks = hnp.arrays(
    dtype=np.int64,
    shape=st.tuples(st.integers(2, 8), st.integers(2, 32), st.integers(2, 16)),
    elements=st.integers(-119, 119),
)


def _random_codes(rng, shape=(2, 64, 32)):
    return rng.integers(-119, 120, size=shape).astype(np.int8)


class TestCompress:
    def test_codes_in_range(self, rng):
        q1 = _random_codes(rng)
        for bits in (2, 4):
            block = pq_compress(q1, bits=bits, float_scale=np.ones((2, 1, 1)))
            assert block.codes.min() >= 0
            assert block.codes.max() <= 2**bits - 1

    def test_integer_metadata_int8_representable(self, rng):
        q1 = _random_codes(rng)
        block = pq_compress(q1, bits=2, float_scale=np.ones((2, 1, 1)))
        assert np.all(np.abs(block.s_int) <= 127)
        assert np.all(np.abs(block.z_int) <= 127)

    def test_reconstruction_error_bound(self, rng):
        """|q1_hat - q1| <= s_int per element (one stage-2 step)."""
        q1 = _random_codes(rng)
        for bits in (2, 3, 4):
            block = pq_compress(q1, bits=bits, float_scale=np.ones((2, 1, 1)))
            q1_hat = pq_decompress_to_int8(block).astype(np.int32)
            err = np.abs(q1_hat - q1.astype(np.int32))
            assert np.all(err <= block.s_int.astype(np.int32) + 1)

    def test_error_monotone_in_bits(self, rng):
        q1 = _random_codes(rng)
        errs = {}
        for bits in (2, 4, 8):
            block = pq_compress(q1, bits=bits, float_scale=np.ones((2, 1, 1)))
            errs[bits] = np.abs(
                pq_decompress_to_int8(block).astype(np.int32) - q1.astype(np.int32)
            ).mean()
        assert errs[8] <= errs[4] <= errs[2]

    def test_int8_stage2_lossless_for_small_ranges(self, rng):
        # A channel spanning <= 2^bits - 1 int8 levels gets s_int = 1,
        # which is exact integer arithmetic.
        q1 = rng.integers(-7, 8, size=(1, 32, 4)).astype(np.int8)
        block = pq_compress(q1, bits=4, float_scale=np.ones((1, 1, 1)))
        np.testing.assert_array_equal(pq_decompress_to_int8(block), q1)

    def test_per_head_bits(self, rng):
        q1 = _random_codes(rng, shape=(4, 64, 16))
        bits = np.array([2, 4, 2, 4]).reshape(-1, 1, 1)
        block = pq_compress(q1, bits=bits, float_scale=np.ones((4, 1, 1)))
        hi = (2**bits - 1).reshape(-1)
        for h in range(4):
            assert block.codes[h].max() <= hi[h]
        # 4-bit heads must reconstruct more accurately than 2-bit heads.
        q1_hat = pq_decompress_to_int8(block).astype(np.int32)
        err = np.abs(q1_hat - q1.astype(np.int32)).mean(axis=(1, 2))
        assert err[1] < err[0] and err[3] < err[2]

    def test_invalid_bits_raise(self, rng):
        with pytest.raises(ValueError):
            pq_compress(_random_codes(rng), bits=5, float_scale=1.0)

    @given(int8_blocks, st.sampled_from([2, 4]))
    @settings(max_examples=40, deadline=None)
    def test_decompress_never_overflows_int8(self, q1, bits):
        block = pq_compress(q1, bits=bits, float_scale=1.0)
        out = pq_decompress_to_int8(block)
        assert out.dtype == np.int8
        assert np.all(out >= -127) and np.all(out <= 127)


class TestDequantize:
    def test_full_pipeline_error(self, rng):
        """Float -> INT8 -> INT4 -> float error stays proportional to the
        stage scales."""
        x = rng.standard_normal((2, 64, 32))
        codes, scale = quantize_symmetric(x, bits=8, axis=(-2, -1), max_code=119)
        block = pq_compress(codes, bits=4, float_scale=scale)
        x_hat = pq_dequantize(block)
        # Worst case: stage-1 half step + stage-2 one integer step.
        bound = scale * (0.5 + block.s_int.max() + 1)
        assert np.max(np.abs(x - x_hat)) <= np.max(bound)

    def test_scale_override(self, rng):
        q1 = _random_codes(rng, shape=(1, 8, 4))
        block = pq_compress(q1, bits=8, float_scale=np.full((1, 1, 1), 2.0))
        a = pq_dequantize(block)
        b = pq_dequantize(block, float_scale=np.full((1, 1, 1), 4.0))
        np.testing.assert_allclose(b, 2.0 * a)


class TestStorageAccounting:
    def test_scalar_bits(self, rng):
        q1 = _random_codes(rng, shape=(2, 64, 32))
        block = pq_compress(q1, bits=4, float_scale=np.ones((2, 1, 1)))
        n = 2 * 64 * 32
        meta = 2 * 2 * 32 * 8  # s_int + z_int per (head, channel), int8
        tile = 2 * 16  # fp16 per head
        assert block.storage_bits == n * 4 + meta + tile

    def test_per_head_bits_accounting(self, rng):
        q1 = _random_codes(rng, shape=(2, 64, 32))
        bits = np.array([2, 4]).reshape(-1, 1, 1)
        block = pq_compress(q1, bits=bits, float_scale=np.ones((2, 1, 1)))
        n_head = 64 * 32
        expected_codes = n_head * 2 + n_head * 4
        assert block.storage_bits - expected_codes == 2 * 2 * 32 * 8 + 2 * 16

    def test_effective_bits(self, rng):
        q1 = _random_codes(rng, shape=(1, 64, 64))
        block = pq_compress(q1, bits=4, float_scale=np.ones((1, 1, 1)))
        eff = block.effective_bits_per_value()
        assert 4.0 < eff < 4.5  # metadata adds fraction of a bit


class TestProgressiveConfig:
    def test_valid(self):
        assert ProgressiveConfig(bits=2).bits == 2

    def test_invalid(self):
        with pytest.raises(ValueError):
            ProgressiveConfig(bits=7)

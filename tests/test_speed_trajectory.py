"""The pinned speed scenarios, the machine-normalized gate, and its CLI.

These are the tier-1 counterparts of ``benchmarks/test_speed.py``: the
scenarios run at quick size (seconds, not minutes), the gate logic is
exercised on synthetic numbers in both directions, and the ``speed`` /
``profile`` subcommands run end to end.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.perf import speed


@pytest.fixture(scope="module")
def quick_suite():
    return speed.run_speed_suite(quick=True)


class TestScenarios:
    def test_suite_reports_every_gated_metric(self, quick_suite):
        for name, _direction in speed.GATED_METRICS:
            assert quick_suite[name] > 0
        assert quick_suite["calibration_s"] > 0
        assert quick_suite["quick"] is True

    def test_derived_rates_are_consistent(self, quick_suite):
        assert quick_suite["engine_rps"] == pytest.approx(
            120 / quick_suite["engine_wall_s"]
        )
        assert quick_suite["cluster_rps"] == pytest.approx(
            80 / quick_suite["cluster_wall_s"]
        )
        assert quick_suite["prefill_us_per_token"] == pytest.approx(
            quick_suite["prefill_s"] / 512 * 1e6
        )
        assert quick_suite["decode_ms_per_token"] == pytest.approx(
            quick_suite["decode_s"] / 64 * 1e3
        )

    def test_pre_pr_records_every_gated_metric(self):
        for name, _direction in speed.GATED_METRICS:
            assert name in speed.PRE_PR
        assert speed.PRE_PR["calibration_s"] > 0


class TestGate:
    BASELINE = {
        "calibration_s": 0.05,
        "prefill_s": 0.10,
        "decode_s": 0.20,
        "engine_rps": 1000.0,
        "cluster_rps": 500.0,
    }

    def test_identical_numbers_pass(self):
        current = dict(self.BASELINE)
        rows, failures = speed.compare_to_baseline(current, self.BASELINE)
        assert failures == []
        assert all(r["ok"] for r in rows)

    def test_slower_machine_is_normalized_not_failed(self):
        # 2x slower probe -> 2x slower walls and 2x lower rates are
        # exactly what the gate predicts; no failure.
        current = {
            "calibration_s": 0.10,
            "prefill_s": 0.20,
            "decode_s": 0.40,
            "engine_rps": 500.0,
            "cluster_rps": 250.0,
        }
        _rows, failures = speed.compare_to_baseline(current, self.BASELINE)
        assert failures == []

    def test_regression_beyond_tolerance_fails_both_directions(self):
        current = dict(self.BASELINE)
        current["prefill_s"] = self.BASELINE["prefill_s"] * 1.30
        current["cluster_rps"] = self.BASELINE["cluster_rps"] / 1.30
        rows, failures = speed.compare_to_baseline(current, self.BASELINE)
        assert set(failures) == {"prefill_s", "cluster_rps"}
        table = speed.format_table(rows, 1.0)
        assert "FAIL" in table and "OK" in table

    def test_committed_baseline_carries_the_gated_metrics(self):
        path = Path(__file__).resolve().parent.parent / "BENCH_speed_baseline.json"
        baseline = json.loads(path.read_text())
        for name, _direction in speed.GATED_METRICS:
            assert name in baseline
        assert baseline["quick"] is True


class TestCli:
    def test_speed_json_output(self, capsys):
        assert main(["speed", "--quick"]) == 0
        out = json.loads(capsys.readouterr().out)
        assert "cluster_rps" in out

    def test_speed_check_passes_against_self(self, tmp_path, capsys):
        results = speed.run_speed_suite(quick=True)
        baseline = tmp_path / "base.json"
        baseline.write_text(json.dumps(results))
        # Two back-to-back quick runs still jitter; the CLI path under
        # test is the gate plumbing, not the 25% CI threshold, so give
        # the self-comparison generous headroom.
        assert main([
            "speed", "--quick", "--check",
            "--baseline", str(baseline), "--tolerance", "1.0",
        ]) == 0
        assert "perf gate OK" in capsys.readouterr().out

    def test_speed_check_fails_on_regression(self, tmp_path, capsys):
        # An impossible baseline (1000x the probe-predicted rates) must
        # trip the gate and name the offenders.
        impossible = {
            "calibration_s": 0.05,
            "prefill_s": 1e-9,
            "decode_s": 1e-9,
            "engine_rps": 1e12,
            "cluster_rps": 1e12,
        }
        baseline = tmp_path / "base.json"
        baseline.write_text(json.dumps(impossible))
        assert main(["speed", "--quick", "--check", "--baseline", str(baseline)]) == 1
        assert "perf gate FAILED" in capsys.readouterr().out

    def test_profile_prints_cumulative_top(self, capsys):
        assert main(["profile", "prefill", "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "cumulative" in out
        assert "turbo_prefill" in out

"""Property tests: quantization round-trips stay inside the analytic bounds.

Seeded, generator-driven versions of the paper's losslessness claims:

* ``dequant(quant(x))`` never strays further from ``x`` than the
  deterministic bounds in :mod:`repro.quant.bounds` predict, at INT8,
  INT4 and INT2, for both symmetric and asymmetric schemes and for the
  full progressive (BPQ) pipeline.
* Progressive compress -> decompress is **exactly** idempotent on tiles
  that already sit on the stage-2 grid (one decompressed tile
  re-compresses to the identical block), and on arbitrary tiles the
  iterated round-trip reaches such a fixed point in a few steps — the
  property that makes re-compression of cached tiles safe.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.quant.bounds import progressive_bound, symmetric_bound
from repro.quant.progressive import (
    pq_compress,
    pq_decompress_to_int8,
    pq_dequantize,
)
from repro.quant.schemes import (
    TURBO_INT8_MAX_CODE,
    dequantize_asymmetric,
    dequantize_symmetric,
    int_range,
    quantize_asymmetric,
    quantize_symmetric,
)

BITS = (2, 4, 8)


def tile(seed, shape=(16, 32), spread=4.0):
    rng = np.random.default_rng(seed)
    return rng.normal(0.0, spread, size=shape) * rng.lognormal(0.0, 1.0)


class TestSymmetricRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 10_000), st.sampled_from(BITS))
    def test_error_within_bound(self, seed, bits):
        x = tile(seed)
        codes, scale = quantize_symmetric(x, bits=bits, axis=-1)
        err = np.abs(x - dequantize_symmetric(codes, scale))
        assert np.all(err <= symmetric_bound(scale) + 1e-12)

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 10_000), st.sampled_from(BITS))
    def test_codes_in_restricted_range(self, seed, bits):
        codes, _ = quantize_symmetric(tile(seed), bits=bits, axis=-1)
        lo, hi = int_range(bits, symmetric=True)
        assert codes.min() >= lo and codes.max() <= hi

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10_000), st.sampled_from(BITS))
    def test_round_trip_is_idempotent_under_reused_scale(self, seed, bits):
        """Quantizing a reconstruction with the same scale is exact: the
        reconstruction already lies on the code grid."""
        x = tile(seed)
        codes, scale = quantize_symmetric(x, bits=bits, axis=-1)
        x_hat = dequantize_symmetric(codes, scale)
        codes2, _ = quantize_symmetric(x_hat, bits=bits, scale=scale)
        np.testing.assert_array_equal(codes, codes2)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10_000))
    def test_paper_int8_stage_uses_119(self, seed):
        x = tile(seed)
        codes, scale = quantize_symmetric(
            x, bits=8, max_code=TURBO_INT8_MAX_CODE
        )
        assert np.abs(codes).max() <= TURBO_INT8_MAX_CODE
        assert np.all(
            np.abs(x - dequantize_symmetric(codes, scale))
            <= symmetric_bound(scale) + 1e-12
        )


class TestAsymmetricRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 10_000), st.sampled_from(BITS))
    def test_error_within_half_step(self, seed, bits):
        x = tile(seed)
        codes, scale, zero = quantize_asymmetric(x, bits=bits, axis=-2)
        err = np.abs(x - dequantize_asymmetric(codes, scale, zero))
        assert np.all(err <= scale / 2.0 + 1e-12)

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 10_000), st.sampled_from(BITS))
    def test_codes_unsigned_full_range(self, seed, bits):
        codes, _, _ = quantize_asymmetric(tile(seed), bits=bits, axis=-2)
        lo, hi = int_range(bits, symmetric=False)
        assert codes.min() >= lo and codes.max() <= hi
        # Each channel's extrema land on the range ends (tight fit).
        assert np.all(codes.min(axis=-2) == 0)
        assert np.all(codes.max(axis=-2) == hi)


class TestProgressiveRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 10_000), st.sampled_from((2, 4)))
    def test_float_error_within_progressive_bound(self, seed, bits):
        x = tile(seed)
        q1, scale = quantize_symmetric(x, bits=8, max_code=TURBO_INT8_MAX_CODE)
        block = pq_compress(q1, bits=bits, float_scale=scale)
        int8_range = q1.astype(np.int32).max(axis=-2, keepdims=True) - q1.astype(
            np.int32
        ).min(axis=-2, keepdims=True)
        bound = progressive_bound(scale, int8_range, bits)
        err = np.abs(x - pq_dequantize(block))
        assert np.all(err <= bound + 1e-12)

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 10_000), st.sampled_from((2, 4)))
    def test_int8_code_error_within_one_scale_step(self, seed, bits):
        """In INT8-code units the stage-2 error is at most ``s_int``:
        half a step of code rounding plus half a step of zero-point
        rounding."""
        q1, scale = quantize_symmetric(
            tile(seed), bits=8, max_code=TURBO_INT8_MAX_CODE
        )
        block = pq_compress(q1, bits=bits, float_scale=scale)
        err = np.abs(
            q1.astype(np.int32) - pq_decompress_to_int8(block).astype(np.int32)
        )
        assert np.all(err <= block.s_int.astype(np.int32))


def grid_tile(seed, bits, tokens=16, channels=8):
    """A tile of INT8 codes that lies exactly on a stage-2 grid.

    Every channel spans the full unsigned code range ``[0, 2^bits - 1]``
    with integer scale ``s`` and zero-point ``z``, so re-compression must
    recover ``(s, z)`` and the codes verbatim.
    """
    rng = np.random.default_rng(seed)
    hi = 2**bits - 1
    s = rng.integers(1, max(127 // (2 * hi), 1) + 1, size=(1, channels))
    z = rng.integers(-hi, hi + 1, size=(1, channels))
    codes = rng.integers(0, hi + 1, size=(tokens, channels))
    codes[0, :] = 0  # pin the channel extrema so the range is exactly
    codes[1, :] = hi  # hi * s and the recomputed scale is exactly s
    q1 = (codes + z) * s
    assert np.abs(q1).max() <= 127
    return q1, codes, s, z


class TestProgressiveIdempotence:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 10_000), st.sampled_from((2, 4)))
    def test_exact_on_grid_aligned_tiles(self, seed, bits):
        q1, codes, s, z = grid_tile(seed, bits)
        scale = np.float64(1.0)
        block = pq_compress(q1, bits=bits, float_scale=scale)
        np.testing.assert_array_equal(block.codes, codes)
        np.testing.assert_array_equal(block.s_int.astype(np.int64), s)
        np.testing.assert_array_equal(block.z_int.astype(np.int64), z)
        # Decompression is exact, so compress o decompress is identity...
        d1 = pq_decompress_to_int8(block)
        np.testing.assert_array_equal(d1.astype(np.int64), q1)
        # ...and a second round trip reproduces the block bit-for-bit.
        block2 = pq_compress(d1, bits=bits, float_scale=scale)
        np.testing.assert_array_equal(block.codes, block2.codes)
        np.testing.assert_array_equal(block.s_int, block2.s_int)
        np.testing.assert_array_equal(block.z_int, block2.z_int)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10_000), st.sampled_from((2, 4)))
    def test_arbitrary_tiles_reach_a_fixed_point(self, seed, bits):
        """Re-compressing a decompressed tile can shift it (the channel
        range shrinks, so the grid moves), but the iteration contracts:
        within a few round trips the tile lands on a grid and stays."""
        rng = np.random.default_rng(seed)
        q = rng.integers(-119, 120, size=(16, 8)).astype(np.int32)
        scale = np.float64(1.0)
        for _ in range(32):
            nxt = pq_decompress_to_int8(
                pq_compress(q, bits=bits, float_scale=scale)
            ).astype(np.int32)
            if np.array_equal(nxt, q):
                break
            q = nxt
        else:
            pytest.fail("progressive round-trip did not reach a fixed point")
        # The fixed point really is fixed.
        again = pq_decompress_to_int8(
            pq_compress(q, bits=bits, float_scale=scale)
        ).astype(np.int32)
        np.testing.assert_array_equal(again, q)

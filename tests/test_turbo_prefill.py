"""Tests for the TurboAttention prefill kernel (Algorithm 1)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.attention.masks import causal_mask
from repro.attention.reference import reference_attention
from repro.core.config import TurboConfig
from repro.core.prefill import quantize_tile, turbo_prefill


def _bits(h, b=4):
    return np.full(h, b, dtype=np.int32)


class TestQuantizeTile:
    def test_scale_per_leading_index(self, rng):
        x = rng.standard_normal((3, 2, 8, 4))
        codes, scale = quantize_tile(x, 119)
        assert scale.shape == (3, 2, 1, 1)
        assert np.abs(codes).max() <= 119

    def test_reused_scale(self, rng):
        x = rng.standard_normal((1, 8, 4))
        _, scale = quantize_tile(x, 119)
        codes2, _ = quantize_tile(x * 100, 119, scale=scale)
        assert np.abs(codes2).max() == 119  # clamped


class TestPrefillAccuracy:
    def test_close_to_reference(self, qkv):
        q, k, v = qkv
        cfg = TurboConfig(block_q=32, block_k=32, kv_bits=4)
        res = turbo_prefill(q, k, v, cfg, _bits(4), causal=False)
        expected = reference_attention(q, k, v)
        rel = np.linalg.norm(res.output - expected) / np.linalg.norm(expected)
        assert rel < 0.05

    def test_causal_close_to_reference(self, qkv):
        q, k, v = qkv
        n = q.shape[1]
        cfg = TurboConfig(block_q=32, block_k=32)
        res = turbo_prefill(q, k, v, cfg, _bits(4), causal=True)
        expected = reference_attention(q, k, v, mask=causal_mask(n, n))
        rel = np.linalg.norm(res.output - expected) / np.linalg.norm(expected)
        assert rel < 0.05

    def test_exact_mode_matches_flash(self, qkv):
        """With SAS and quantized MatMuls disabled the kernel degenerates
        to (fp16) flash attention."""
        q, k, v = qkv
        cfg = TurboConfig(use_sas=False, quantize_matmuls=False)
        res = turbo_prefill(q, k, v, cfg, _bits(4, 8), causal=False)
        expected = reference_attention(q, k, v)
        rel = np.linalg.norm(res.output - expected) / np.linalg.norm(expected)
        assert rel < 5e-3

    def test_lse_close(self, qkv):
        q, k, v = qkv
        cfg = TurboConfig(block_q=32, block_k=32)
        res = turbo_prefill(q, k, v, cfg, _bits(4), causal=False)
        _, lse = reference_attention(q, k, v, return_lse=True)
        assert np.max(np.abs(res.lse - lse)) < 0.05

    @pytest.mark.parametrize("bq,bk", [(16, 16), (16, 48), (48, 16), (96, 96), (128, 64)])
    def test_block_size_robustness(self, qkv, bq, bk):
        q, k, v = qkv
        n = q.shape[1]
        cfg = TurboConfig(block_q=bq, block_k=bk)
        res = turbo_prefill(q, k, v, cfg, _bits(4), causal=True)
        expected = reference_attention(q, k, v, mask=causal_mask(n, n))
        rel = np.linalg.norm(res.output - expected) / np.linalg.norm(expected)
        assert rel < 0.05

    def test_error_monotone_in_bits(self, qkv):
        q, k, v = qkv
        errs = {}
        for bits in (2, 4, 8):
            cfg = TurboConfig(block_q=32, block_k=32)
            res = turbo_prefill(q, k, v, cfg, _bits(4, bits), causal=False)
            # Storage bits only affect the cache, not the prefill output;
            # measure decode-path reconstruction via the cache instead.
            k_hat_blocks = [
                blk_k.astype(np.float64) * ks
                for blk_k, _, ks, _, _ in res.cache.iter_decompressed()
            ]
            k_hat = np.concatenate(k_hat_blocks, axis=1)
            errs[bits] = np.linalg.norm(k_hat - k[:, : k_hat.shape[1], :])
        assert errs[8] <= errs[4] <= errs[2]

    def test_gqa_grouping(self, rng):
        hq, hkv, n, d = 8, 2, 64, 16
        q = rng.standard_normal((hq, n, d))
        k = rng.standard_normal((hkv, n, d))
        v = rng.standard_normal((hkv, n, d))
        cfg = TurboConfig(block_q=32, block_k=32)
        res = turbo_prefill(q, k, v, cfg, _bits(hkv), causal=False)
        expected = reference_attention(
            q, np.repeat(k, 4, axis=0), np.repeat(v, 4, axis=0)
        )
        rel = np.linalg.norm(res.output - expected) / np.linalg.norm(expected)
        assert rel < 0.05
        assert res.cache.n_heads == hkv  # cache stores only KV heads

    def test_gqa_head_mismatch_raises(self, rng):
        q = rng.standard_normal((6, 32, 8))
        k = rng.standard_normal((4, 32, 8))
        with pytest.raises(ValueError):
            turbo_prefill(q, k, k, TurboConfig(), _bits(4))


class TestPrefillStorage:
    def test_full_blocks_cached_tail_buffered(self, rng):
        h, n, d = 2, 100, 16
        q, k, v = (rng.standard_normal((h, n, d)) for _ in range(3))
        cfg = TurboConfig(block_q=32, block_k=32, buffer_size=32)
        res = turbo_prefill(q, k, v, cfg, _bits(h), causal=True)
        assert res.cache.seq_len == 96  # 3 full blocks
        assert len(res.buffer) == 4  # ragged tail
        assert res.cache.seq_len + len(res.buffer) == n

    def test_exact_multiple_no_tail(self, rng):
        h, n, d = 2, 96, 16
        q, k, v = (rng.standard_normal((h, n, d)) for _ in range(3))
        cfg = TurboConfig(block_q=32, block_k=32, buffer_size=32)
        res = turbo_prefill(q, k, v, cfg, _bits(h), causal=True)
        assert res.cache.seq_len == 96 and len(res.buffer) == 0

    def test_universal_scale_from_prefill_max(self, rng):
        h, n, d = 2, 64, 16
        q, k, v = (rng.standard_normal((h, n, d)) for _ in range(3))
        cfg = TurboConfig(block_q=32, block_k=32)
        res = turbo_prefill(q, k, v, cfg, _bits(h), causal=True)
        expected = np.abs(k).max(axis=(-2, -1), keepdims=True) / 119
        np.testing.assert_allclose(res.buffer.k_scale, expected)

    def test_mixed_head_bits_respected(self, rng):
        h, n, d = 4, 64, 16
        q, k, v = (rng.standard_normal((h, n, d)) for _ in range(3))
        bits = np.array([2, 4, 2, 4], dtype=np.int32)
        res = turbo_prefill(q, k, v, TurboConfig(), bits, causal=True)
        blk = res.cache.blocks[0]
        assert blk.k.codes[0].max() <= 3 and blk.k.codes[1].max() <= 15

    @given(st.integers(10, 150))
    @settings(max_examples=15, deadline=None)
    def test_token_conservation_property(self, n):
        rng = np.random.default_rng(n)
        q, k, v = (rng.standard_normal((2, n, 8)) for _ in range(3))
        cfg = TurboConfig(block_q=32, block_k=32, buffer_size=32)
        res = turbo_prefill(q, k, v, cfg, _bits(2), causal=True)
        assert res.cache.seq_len + len(res.buffer) == n
        assert res.cache.seq_len % 32 == 0

"""Tests for the overload-protection stack: admission, brownout, breaker,
and their integration into the serving engine."""

import numpy as np
import pytest

from repro.overload import (
    AdmissionConfig,
    AdmissionController,
    AdmissionVerdict,
    BreakerConfig,
    BreakerState,
    BrownoutConfig,
    BrownoutController,
    BrownoutLevel,
    CircuitBreaker,
)
from repro.perf.attention_costs import METHODS
from repro.perf.e2e import ModelGeometry
from repro.serving import SLO, ServingEngine, ramp_workload
from repro.serving.engine import EngineConfig
from repro.serving.request import Request, RequestRecord, RequestStatus
from repro.serving.workload import poisson_workload


@pytest.fixture(scope="module")
def model():
    return ModelGeometry.phi3_medium()


def record(rid=0, prompt=512, gen=64, arrival=0.0, priority=0):
    return RequestRecord(
        request=Request(rid, arrival, prompt, gen, priority=priority)
    )


class TestAdmissionController:
    def test_accepts_when_unloaded(self):
        ctl = AdmissionController(AdmissionConfig())
        verdict, reason = ctl.decide(record(), now=0.0, queue_depth=0, kv_pressure=0.0)
        assert verdict is AdmissionVerdict.ACCEPT and reason == "ok"
        assert ctl.accepted == 1

    def test_queue_full_rejects(self):
        ctl = AdmissionController(AdmissionConfig(max_queue_depth=4))
        verdict, reason = ctl.decide(record(), 0.0, queue_depth=4, kv_pressure=0.0)
        assert verdict is AdmissionVerdict.REJECT and reason == "queue_full"

    def test_kv_gates_defer_then_reject(self):
        cfg = AdmissionConfig(kv_defer_pressure=1.5, kv_reject_pressure=3.0)
        ctl = AdmissionController(cfg)
        assert ctl.decide(record(), 0.0, 0, 1.6)[0] is AdmissionVerdict.DEFER
        assert ctl.decide(record(1), 0.0, 0, 3.5)[0] is AdmissionVerdict.REJECT

    def test_token_bucket_defers_and_refills(self):
        ctl = AdmissionController(
            AdmissionConfig(rate_tokens_per_s=100.0, burst_tokens=500.0)
        )
        big = record(prompt=400, gen=200)  # cost 600 > burst 500
        verdict, reason = ctl.decide(big, 0.0, 0, 0.0)
        assert verdict is AdmissionVerdict.DEFER and reason == "token_bucket"
        # After 1 s the bucket has refilled to its cap and admits it.
        verdict, _ = ctl.decide(big, 1.0, 0, 0.0)
        assert verdict is AdmissionVerdict.DEFER  # 500 cap still < 600
        small = record(1, prompt=300, gen=100)  # cost 400 <= 500
        assert ctl.decide(small, 2.0, 0, 0.0)[0] is AdmissionVerdict.ACCEPT
        assert ctl.bucket == pytest.approx(100.0)

    def test_bucket_only_charged_on_accept(self):
        ctl = AdmissionController(
            AdmissionConfig(rate_tokens_per_s=100.0, burst_tokens=1000.0)
        )
        ctl.decide(record(), 0.0, 0, 5.0)  # REJECT: kv
        assert ctl.bucket == pytest.approx(1000.0)

    def test_defer_budget_exhaustion_becomes_terminal_reject(self):
        ctl = AdmissionController(AdmissionConfig(max_defers=2))
        rec = record()
        for _ in range(2):
            verdict, _ = ctl.decide(rec, 0.0, 0, 2.0)
            assert verdict is AdmissionVerdict.DEFER
        verdict, reason = ctl.decide(rec, 0.0, 0, 2.0)
        assert verdict is AdmissionVerdict.REJECT and reason == "defer_budget"
        assert rec.defers == 2

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AdmissionConfig(kv_defer_pressure=4.0, kv_reject_pressure=3.0)
        with pytest.raises(ValueError):
            AdmissionConfig(rate_tokens_per_s=-1.0)
        with pytest.raises(ValueError):
            AdmissionConfig(max_defers=-1)


class TestBrownoutController:
    CFG = BrownoutConfig(
        delay_scale_s=1.0, kv_scale=1.0, ewma_alpha=1.0, cooldown_s=5.0
    )

    def test_starts_normal_and_admits(self):
        ctl = BrownoutController(self.CFG)
        assert ctl.level is BrownoutLevel.NORMAL
        assert ctl.admits_new_work
        assert ctl.request_token_cap is None

    def test_enter_edge_is_inclusive_exit_edge_exclusive(self):
        # alpha=1.0 makes the EWMA track the raw sample exactly.
        ctl = BrownoutController(self.CFG)
        ctl.observe(0.0, queue_delay=0.999, kv_pressure=0.0)
        assert ctl.level is BrownoutLevel.NORMAL  # below enter[0]
        ctl.observe(1.0, queue_delay=1.0, kv_pressure=0.0)
        assert ctl.level is BrownoutLevel.BROWNOUT_4BIT  # stress >= 1.0 enters
        # Inside the hysteresis band [exit, enter) nothing moves.
        ctl.observe(10.0, queue_delay=0.5, kv_pressure=0.0)
        assert ctl.level is BrownoutLevel.BROWNOUT_4BIT
        ctl.observe(20.0, queue_delay=0.499, kv_pressure=0.0)
        assert ctl.level is BrownoutLevel.NORMAL  # stress < exit[0] leaves

    def test_cooldown_bounds_transition_rate(self):
        ctl = BrownoutController(self.CFG)
        ctl.observe(0.0, 10.0, 0.0)
        assert ctl.level is BrownoutLevel.BROWNOUT_4BIT
        ctl.observe(1.0, 10.0, 0.0)  # within cooldown: held
        assert ctl.level is BrownoutLevel.BROWNOUT_4BIT
        ctl.observe(5.0, 10.0, 0.0)  # cooldown over: one more step
        assert ctl.level is BrownoutLevel.BROWNOUT_2BIT
        times = [t.time for t in ctl.transitions]
        assert all(b - a >= self.CFG.cooldown_s for a, b in zip(times, times[1:]))

    def test_shed_only_is_the_floor(self):
        ctl = BrownoutController(self.CFG)
        for t in (0.0, 5.0, 10.0, 15.0, 20.0):
            ctl.observe(t, 100.0, 0.0)
        assert ctl.level is BrownoutLevel.SHED_ONLY
        assert not ctl.admits_new_work
        assert ctl.request_token_cap == 0
        assert len(ctl.transitions) == 3  # it cannot go deeper

    def test_kv_pressure_inf_guard(self):
        ctl = BrownoutController(self.CFG)
        ctl.observe(0.0, 0.0, float("inf"))
        assert np.isfinite(ctl.stress)

    def test_bits_ladder_snap(self):
        ctl = BrownoutController(self.CFG)
        turbo = METHODS["turbo4"]  # 4.3 bits: 4-bit storage + 0.3 metadata
        assert ctl.bits_for(turbo) == turbo.kv_bits  # NORMAL: unchanged
        ctl.level = BrownoutLevel.BROWNOUT_4BIT
        assert ctl.bits_for(turbo) == pytest.approx(turbo.kv_bits)  # min(4, 4)
        ctl.level = BrownoutLevel.BROWNOUT_2BIT
        assert ctl.bits_for(turbo) == pytest.approx(2.3)  # 2-bit + metadata

    def test_fp16_has_no_precision_axis(self):
        ctl = BrownoutController(self.CFG)
        ctl.level = BrownoutLevel.BROWNOUT_2BIT
        assert ctl.bits_for(METHODS["fp16"]) == 16.0

    def test_brownout_never_raises_precision(self):
        ctl = BrownoutController(self.CFG)
        ctl.level = BrownoutLevel.BROWNOUT_4BIT  # target 4 > turbo2's 2
        assert ctl.bits_for(METHODS["turbo2"]) == METHODS["turbo2"].kv_bits

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BrownoutConfig(exit_thresholds=(1.0, 2.0, 4.0))  # not below enter
        with pytest.raises(ValueError):
            BrownoutConfig(enter_thresholds=(4.0, 2.0, 1.0))  # not ascending
        with pytest.raises(ValueError):
            BrownoutConfig(ewma_alpha=0.0)
        with pytest.raises(ValueError):
            BrownoutConfig(cooldown_s=0.0)


class TestCircuitBreaker:
    CFG = BreakerConfig(failure_threshold=2, open_duration_s=10.0)

    def test_trips_on_consecutive_failures_only(self):
        b = CircuitBreaker(self.CFG)
        b.record_failure(0.0)
        b.record_success(1.0)  # success resets the streak
        b.record_failure(2.0)
        assert b.state(3.0) is BreakerState.CLOSED
        b.record_failure(4.0)
        assert b.state(5.0) is BreakerState.OPEN
        assert b.trips == 1
        assert not b.allows(5.0)

    def test_open_decays_to_half_open_probe(self):
        b = CircuitBreaker(self.CFG)
        b.record_failure(0.0)
        b.record_failure(0.0)
        assert b.state(9.9) is BreakerState.OPEN
        assert b.state(10.0) is BreakerState.HALF_OPEN
        assert b.allows(10.0)
        b.record_dispatch(10.0)
        assert not b.allows(10.5)  # probe budget (1) consumed

    def test_half_open_success_closes(self):
        b = CircuitBreaker(self.CFG)
        b.record_failure(0.0)
        b.record_failure(0.0)
        b.record_dispatch(10.0)
        b.record_success(11.0)
        assert b.state(11.0) is BreakerState.CLOSED
        assert b.allows(11.0)

    def test_half_open_failure_retrips_immediately(self):
        b = CircuitBreaker(self.CFG)
        b.record_failure(0.0)
        b.record_failure(0.0)
        b.record_dispatch(10.0)
        b.record_failure(11.0)  # one failure suffices in HALF_OPEN
        assert b.state(11.0) is BreakerState.OPEN
        assert b.trips == 2

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BreakerConfig(failure_threshold=0)
        with pytest.raises(ValueError):
            BreakerConfig(open_duration_s=0.0)


SLO_TEST = SLO(ttft_s=15.0, tpot_s=0.25)


def overloaded(n=120, rate=20.0, seed=0):
    return poisson_workload(n, arrival_rate=rate, rng=np.random.default_rng(seed))


class TestEngineOverload:
    def test_plain_engine_unchanged_without_protection(self, model):
        """No overload config => every submission is accepted, nothing is
        rejected or shed — the PR-1 behaviour is the default."""
        engine = ServingEngine(model, METHODS["turbo4"], EngineConfig())
        m = engine.run(overloaded(n=30, rate=6.0))
        assert m.rejected == 0 and m.shed == 0
        assert m.completed == m.total == 30
        assert engine.brownout is None and engine.admission is None

    def test_submit_returns_verdict(self, model):
        engine = ServingEngine(
            model, METHODS["turbo4"],
            EngineConfig(admission=AdmissionConfig(max_queue_depth=1)),
        )
        engine.start()
        assert engine.submit(Request(0, 0.0, 512, 32)) is AdmissionVerdict.ACCEPT
        assert engine.submit(Request(1, 0.0, 512, 32)) is AdmissionVerdict.REJECT
        rec = engine.records[1]
        assert rec.status is RequestStatus.REJECTED
        assert rec.outcome_reason == "queue_full"
        assert rec.rejected_at is not None

    def test_duplicate_request_id_still_rejected(self, model):
        engine = ServingEngine(model, METHODS["turbo4"], EngineConfig())
        engine.start()
        engine.submit(Request(0, 0.0, 128, 8))
        with pytest.raises(ValueError):
            engine.submit(Request(0, 0.0, 128, 8))

    def test_deadline_shed_requires_slo(self, model):
        with pytest.raises(ValueError):
            EngineConfig(deadline_shed=True)

    def test_deadline_shedding_kills_doomed_requests_before_decode(self, model):
        engine = ServingEngine(
            model, METHODS["turbo4"],
            EngineConfig(slo=SLO(ttft_s=0.001, tpot_s=0.25), deadline_shed=True),
        )
        m = engine.run(overloaded(n=20, rate=50.0))
        shed = [
            r for r in engine.records.values()
            if r.status is RequestStatus.SHED
        ]
        assert m.shed == len(shed) > 0
        for r in shed:
            assert r.outcome_reason == "deadline"
            assert r.generated == 0  # zero decode tokens wasted
            assert r.shed_at is not None

    def test_high_water_shedding_prefers_low_priority(self, model):
        # Calibrate the mark so the queue must shrink to roughly one
        # request's worth of KV demand: the two priority-0 requests are
        # shed (highest rid first) and the priority-1 request survives.
        probe = ServingEngine(model, METHODS["turbo4"], EngineConfig())
        probe.start()
        probe.submit(Request(0, 0.0, 4096, 64, priority=1))
        mark = probe.kv_pressure * 1.1
        engine = ServingEngine(
            model, METHODS["turbo4"],
            EngineConfig(slo=SLO_TEST, shed_high_water=mark),
        )
        engine.start()
        engine.submit(Request(0, 0.0, 4096, 64, priority=1))
        engine.submit(Request(1, 0.0, 4096, 64, priority=0))
        engine.submit(Request(2, 0.0, 4096, 64, priority=0))
        while engine.busy:
            engine.step()
        sheds = {
            rid: r for rid, r in engine.records.items()
            if r.status is RequestStatus.SHED
        }
        assert set(sheds) == {1, 2}  # low priority shed, high survived
        assert all(r.outcome_reason == "high_water" for r in sheds.values())
        assert all(r.generated == 0 for r in sheds.values())
        assert engine.records[0].status is RequestStatus.FINISHED

    def test_brownout_assigns_reduced_bits_to_new_admissions(self, model):
        cfg = EngineConfig(
            slo=SLO_TEST,
            brownout=BrownoutConfig(
                delay_scale_s=1.0, kv_scale=1.0, ewma_alpha=1.0, cooldown_s=1.0
            ),
        )
        engine = ServingEngine(model, METHODS["turbo4"], cfg)
        # Arrivals must span the stressed window: bits are assigned at
        # admission time, so only requests arriving *during* the brownout
        # get the reduced width.
        wl = ramp_workload(
            [(2.0, 5.0), (20.0, 25.0), (2.0, 5.0)],
            prompt_range=(2048, 4096),
            rng=np.random.default_rng(0),
        )
        m = engine.run(wl)
        bits = {
            r.kv_bits for r in engine.records.values()
            if r.status is RequestStatus.FINISHED
        }
        assert bits - {4.3, 2.3} == set()  # only ladder-snapped widths
        assert 2.3 in bits  # the surge actually drove a downshift
        assert m.brownout_tokens > 0
        assert m.mean_kv_bits < METHODS["turbo4"].kv_bits

    def test_cancel_counts_generated_tokens_as_wasted(self, model):
        engine = ServingEngine(model, METHODS["turbo4"], EngineConfig())
        engine.start()
        engine.submit(Request(0, 0.0, 512, 64))
        for _ in range(6):  # prefill + a few decode steps
            engine.step()
        rec = engine.records[0]
        assert rec.generated > 0
        generated, prefilled = rec.generated, rec.prefilled
        engine.cancel(0)
        assert engine.cancelled_wasted_decode_tokens == generated
        assert engine.cancelled_wasted_prefill_tokens == prefilled
        m = engine.summarize()
        assert m.wasted_decode_tokens >= generated
        assert m.wasted_prefill_tokens >= prefilled

    def test_protected_run_is_deterministic(self, model):
        cfg = EngineConfig(
            slo=SLO_TEST, deadline_shed=True, shed_high_water=2.5,
            admission=AdmissionConfig(
                rate_tokens_per_s=8_000.0, burst_tokens=20_000.0,
                max_queue_depth=32,
            ),
            brownout=BrownoutConfig(delay_scale_s=2.5, cooldown_s=5.0),
        )
        wl = ramp_workload(
            [(4.0, 5.0), (25.0, 10.0), (3.0, 10.0)],
            rng=np.random.default_rng(3),
        )
        a = ServingEngine(model, METHODS["turbo4"], cfg).run(wl)
        b = ServingEngine(model, METHODS["turbo4"], cfg).run(wl)
        assert a.as_dict() == b.as_dict()

    def test_conservation_under_full_protection(self, model):
        cfg = EngineConfig(
            slo=SLO_TEST, deadline_shed=True, shed_high_water=2.5,
            admission=AdmissionConfig(
                rate_tokens_per_s=6_000.0, burst_tokens=15_000.0,
                max_queue_depth=16, max_defers=2,
            ),
            brownout=BrownoutConfig(delay_scale_s=2.0, cooldown_s=4.0),
        )
        engine = ServingEngine(model, METHODS["turbo4"], cfg)
        wl = overloaded(n=150, rate=25.0)
        m = engine.run(wl)
        assert m.completed + m.failed + m.rejected + m.shed == m.total == len(wl)
        assert m.rejected > 0  # the protection actually engaged
        # Every terminal reject/shed carries a reason and a timestamp.
        for r in engine.records.values():
            if r.status is RequestStatus.REJECTED:
                assert r.outcome_reason and r.rejected_at is not None
            elif r.status is RequestStatus.SHED:
                assert r.outcome_reason and r.shed_at is not None

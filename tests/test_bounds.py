"""Property tests: measured errors never exceed the analytical bounds."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.attention.reference import reference_attention, softmax
from repro.quant.bounds import (
    attention_output_bound,
    progressive_bound,
    sas_bound,
    softmax_l1_bound,
    symmetric_bound,
)
from repro.quant.progressive import pq_compress, pq_dequantize
from repro.quant.schemes import dequantize_symmetric, quantize_symmetric
from repro.sas.softmax import SAS

arrays = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 4), st.integers(4, 32), st.integers(2, 16)),
    elements=st.floats(min_value=-100, max_value=100, allow_nan=False),
)


class TestSymmetricBound:
    @given(arrays)
    @settings(max_examples=40, deadline=None)
    def test_never_exceeded(self, x):
        codes, scale = quantize_symmetric(x, bits=8)
        err = np.abs(x - dequantize_symmetric(codes, scale)).max()
        assert err <= float(symmetric_bound(scale)) + 1e-12


class TestProgressiveBound:
    @given(arrays, st.sampled_from([2, 3, 4]))
    @settings(max_examples=40, deadline=None)
    def test_never_exceeded(self, x, bits):
        codes, scale = quantize_symmetric(x, bits=8, axis=(-2, -1), max_code=119)
        block = pq_compress(codes, bits=bits, float_scale=scale)
        x_hat = pq_dequantize(block)
        int8_range = codes.astype(np.int32).max(axis=-2, keepdims=True) - codes.astype(
            np.int32
        ).min(axis=-2, keepdims=True)
        bound = progressive_bound(scale, int8_range, bits)
        assert np.all(np.abs(x - x_hat) <= bound + 1e-9)

    def test_bound_tight_enough_to_matter(self, rng):
        """The bound is within ~4x of the observed worst case (not vacuous)."""
        x = rng.standard_normal((2, 64, 16))
        codes, scale = quantize_symmetric(x, bits=8, axis=(-2, -1), max_code=119)
        block = pq_compress(codes, bits=2, float_scale=scale)
        measured = np.abs(x - pq_dequantize(block)).max()
        int8_range = codes.astype(np.int32).max(axis=-2) - codes.astype(np.int32).min(axis=-2)
        bound = progressive_bound(scale.max(), int8_range.max(), 2)
        assert measured <= bound
        assert bound <= 4.0 * measured


class TestSASBound:
    def test_uniform_bound_over_active_range(self):
        sas = SAS()
        xs = np.linspace(-20, 0, 200_001)
        err = np.abs(sas(xs) - np.exp(xs)).max()
        assert err <= sas_bound(-6) + 1e-12

    def test_bound_components(self):
        # Below the threshold the error is exactly e^x <= e^{n_r}.
        sas = SAS()
        x = np.array([-6.5, -10.0])
        err = np.abs(sas(x) - np.exp(x))
        assert np.all(err <= np.exp(-6))


class TestSoftmaxBound:
    @given(
        hnp.arrays(np.float64, (6, 20), elements=st.floats(-10, 10)),
        st.floats(min_value=0.001, max_value=0.5),
    )
    @settings(max_examples=40, deadline=None)
    def test_l1_perturbation(self, scores, delta):
        rng = np.random.default_rng(int(delta * 1e6))
        noise = rng.uniform(-delta, delta, size=scores.shape)
        p = softmax(scores)
        p2 = softmax(scores + noise)
        l1 = np.abs(p - p2).sum(axis=-1).max()
        assert l1 <= softmax_l1_bound(delta) + 1e-9

    def test_negative_delta_raises(self):
        with pytest.raises(ValueError):
            softmax_l1_bound(-0.1)


class TestAttentionBound:
    @given(st.floats(0.001, 0.2), st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_output_perturbation(self, delta, seed):
        rng = np.random.default_rng(seed)
        q = rng.standard_normal((1, 4, 8))
        k = rng.standard_normal((1, 16, 8))
        v = rng.standard_normal((1, 16, 8))
        v_err = 0.02
        out = reference_attention(q, k, v, scale=1.0)
        # Perturb scores via keys is nonlinear; perturb directly instead:
        s = q @ np.swapaxes(k, -1, -2)
        noise = rng.uniform(-delta, delta, size=s.shape)
        p2 = softmax(s + noise)
        v2 = v + rng.uniform(-v_err, v_err, size=v.shape)
        out2 = p2 @ v2
        measured = np.abs(out2 - out).max()
        bound = attention_output_bound(delta, v_err, np.abs(v).max())
        assert measured <= bound + 1e-9

"""Tests for symmetric/asymmetric uniform quantization."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.quant.schemes import (
    dequantize_asymmetric,
    dequantize_symmetric,
    grouped_reshape,
    grouped_unreshape,
    int_range,
    quantize_asymmetric,
    quantize_symmetric,
    symmetric_scale,
)

finite_arrays = hnp.arrays(
    dtype=np.float64,
    shape=hnp.array_shapes(min_dims=2, max_dims=3, min_side=2, max_side=16),
    elements=st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
)


class TestIntRange:
    @pytest.mark.parametrize(
        "bits,symmetric,expected",
        [
            (8, True, (-127, 127)),
            (8, False, (0, 255)),
            (4, True, (-7, 7)),
            (4, False, (0, 15)),
            (2, True, (-1, 1)),
            (2, False, (0, 3)),
        ],
    )
    def test_ranges(self, bits, symmetric, expected):
        assert int_range(bits, symmetric) == expected

    @pytest.mark.parametrize("bits", [0, 1, 17])
    def test_invalid_bits(self, bits):
        with pytest.raises(ValueError):
            int_range(bits, True)


class TestSymmetric:
    def test_roundtrip_error_bound(self, rng):
        x = rng.standard_normal((8, 64))
        codes, scale = quantize_symmetric(x, bits=8)
        x_hat = dequantize_symmetric(codes, scale)
        assert np.max(np.abs(x - x_hat)) <= scale / 2 + 1e-12

    def test_codes_in_range(self, rng):
        x = rng.standard_normal((8, 64)) * 100
        codes, _ = quantize_symmetric(x, bits=8)
        assert codes.min() >= -127 and codes.max() <= 127
        assert codes.dtype == np.int8

    def test_paper_max_code_119(self, rng):
        x = rng.standard_normal(256)
        codes, scale = quantize_symmetric(x, bits=8, max_code=119)
        assert np.abs(codes).max() <= 119
        # The extremal element maps exactly to +-119.
        assert np.abs(codes).max() == 119

    def test_per_axis_scales(self, rng):
        x = rng.standard_normal((4, 32)) * np.array([[1.0], [10.0], [100.0], [0.1]])
        codes, scale = quantize_symmetric(x, bits=8, axis=-1)
        assert scale.shape == (4, 1)
        x_hat = dequantize_symmetric(codes, scale)
        # Per-row error follows the per-row scale, not the global max.
        for i in range(4):
            assert np.max(np.abs(x[i] - x_hat[i])) <= scale[i, 0] / 2 + 1e-12

    def test_reused_scale_clamps(self):
        scale = np.array(1.0 / 119.0)
        x = np.array([10.0, -10.0, 0.5])  # 10/scale = 1190 -> clamp
        codes, _ = quantize_symmetric(x, bits=8, scale=scale, max_code=119)
        assert codes[0] == 119 and codes[1] == -119

    def test_zero_tensor(self):
        codes, scale = quantize_symmetric(np.zeros((3, 3)), bits=8)
        assert np.all(codes == 0)
        assert np.all(np.isfinite(scale))

    @given(finite_arrays)
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_bound_property(self, x):
        codes, scale = quantize_symmetric(x, bits=8)
        x_hat = dequantize_symmetric(codes, scale)
        assert np.max(np.abs(x - x_hat)) <= np.max(scale) / 2 + 1e-9

    @given(finite_arrays)
    @settings(max_examples=50, deadline=None)
    def test_error_bound_monotone_in_bits(self, x):
        # Pointwise max error is NOT monotone in bits — a coarse grid
        # can land luckily close to a value the finer grid misses
        # (e.g. x = [[150, 43], [43, 43]]: the 4-bit grid nearly hits
        # 43, the 8-bit grid doesn't).  What more bits buy is a tighter
        # *guarantee*: each width meets its own half-scale bound, and
        # those bounds shrink with bits.
        bounds = {}
        for b in (2, 4, 8):
            codes, scale = quantize_symmetric(x, bits=b)
            err = np.abs(x - dequantize_symmetric(codes, scale)).max()
            bounds[b] = np.max(scale) / 2
            assert err <= bounds[b] + 1e-9
        assert bounds[8] <= bounds[4] + 1e-9
        assert bounds[4] <= bounds[2] + 1e-9


class TestAsymmetric:
    def test_roundtrip_error_bound(self, rng):
        x = rng.standard_normal((8, 64)) + 3.0  # shifted: asym shines
        codes, scale, zero = quantize_asymmetric(x, bits=4)
        x_hat = dequantize_asymmetric(codes, scale, zero)
        assert np.max(np.abs(x - x_hat)) <= np.max(scale) / 2 + 1e-12

    def test_codes_unsigned(self, rng):
        x = rng.standard_normal((8, 64))
        codes, _, _ = quantize_asymmetric(x, bits=4)
        assert codes.dtype == np.uint8
        assert codes.min() >= 0 and codes.max() <= 15

    def test_zero_point_is_min(self, rng):
        x = rng.standard_normal((4, 16))
        _, _, zero = quantize_asymmetric(x, bits=4, axis=-1)
        np.testing.assert_allclose(zero[..., 0], x.min(axis=-1))

    def test_asym_beats_sym_on_shifted_data(self, rng):
        x = rng.standard_normal(512) * 0.1 + 5.0
        ac, as_, az = quantize_asymmetric(x, bits=4)
        asym_err = np.abs(x - dequantize_asymmetric(ac, as_, az)).max()
        sc, ss = quantize_symmetric(x, bits=4)
        sym_err = np.abs(x - dequantize_symmetric(sc, ss)).max()
        assert asym_err < sym_err

    def test_constant_tensor(self):
        x = np.full((4, 4), 2.5)
        codes, scale, zero = quantize_asymmetric(x, bits=2)
        x_hat = dequantize_asymmetric(codes, scale, zero)
        np.testing.assert_allclose(x_hat, x, atol=1e-9)

    @given(finite_arrays)
    @settings(max_examples=50, deadline=None)
    def test_range_property(self, x):
        codes, scale, zero = quantize_asymmetric(x, bits=2, axis=-1)
        assert codes.max() <= 3
        x_hat = dequantize_asymmetric(codes, scale, zero)
        # Reconstruction stays within the observed min/max per slice.
        assert np.all(x_hat >= x.min(axis=-1, keepdims=True) - 1e-9)
        assert np.all(x_hat <= x.max(axis=-1, keepdims=True) + np.max(scale) + 1e-9)


class TestGroupedReshape:
    def test_roundtrip(self, rng):
        x = rng.standard_normal((4, 64, 8))
        g = grouped_reshape(x, 16, axis=1)
        assert g.shape == (4, 4, 16, 8)
        back = grouped_unreshape(g, axis=1)
        np.testing.assert_array_equal(back, x)

    def test_indivisible_raises(self, rng):
        with pytest.raises(ValueError):
            grouped_reshape(rng.standard_normal((4, 63)), 16, axis=1)

    def test_negative_axis(self, rng):
        x = rng.standard_normal((4, 64))
        g = grouped_reshape(x, 8, axis=-1)
        assert g.shape == (4, 8, 8)


class TestSymmetricScale:
    def test_default_denominator(self, rng):
        x = rng.standard_normal(64)
        s = symmetric_scale(x, bits=8)
        assert s == pytest.approx(np.abs(x).max() / 127)

    def test_axis_shapes(self, rng):
        x = rng.standard_normal((3, 5, 7))
        assert symmetric_scale(x, axis=(-2, -1)).shape == (3, 1, 1)
        assert symmetric_scale(x, axis=-1).shape == (3, 5, 1)
